// Dataset analysis: load a bipartite graph from a KONECT edge list or
// Matrix Market file (or generate a KONECT-like synthetic stand-in) and
// report the Fig. 9-style statistics: sizes, degrees, wedges, butterflies,
// clustering coefficient, and the top butterfly-dense vertices.
//
//   ./dataset_analysis --file out.github            # KONECT edge list
//   ./dataset_analysis --mtx graph.mtx              # Matrix Market
//   ./dataset_analysis --preset "Record Labels" --scale 0.05
#include <algorithm>
#include <iostream>
#include <numeric>

#include "count/local_counts.hpp"
#include "count/top_pairs.hpp"
#include "gen/konect_like.hpp"
#include "graph/components.hpp"
#include "graph/io_edgelist.hpp"
#include "graph/io_mtx.hpp"
#include "graph/stats.hpp"
#include "la/count.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace bfc;
  const Cli cli(argc, argv);

  graph::BipartiteGraph g;
  std::string source;
  if (cli.has("file")) {
    source = cli.get("file", "");
    g = graph::load_edgelist(source);
  } else if (cli.has("mtx")) {
    source = cli.get("mtx", "");
    g = graph::load_mtx(source);
  } else {
    const std::string preset_name = cli.get("preset", "arXiv cond-mat");
    const double scale = cli.get_double("scale", 0.05);
    source = preset_name + " (synthetic, scale=" + std::to_string(scale) + ")";
    g = gen::make_konect_like(gen::konect_preset(preset_name), scale,
                              static_cast<std::uint64_t>(cli.get_int("seed", 42)));
  }

  std::cout << "dataset: " << source << "\n";
  const graph::GraphSummary s = graph::summarize(g);
  std::cout << s << "\n\n";

  Timer timer;
  const count_t butterflies = la::count_butterflies(g);
  std::cout << "butterflies: " << Table::num(butterflies) << "  (counted in "
            << Table::fixed(timer.seconds(), 3) << " s)\n";
  std::cout << "clustering coefficient: "
            << Table::fixed(graph::clustering_coefficient(g, butterflies), 6)
            << "\n\n";

  // Which algorithm family fits this dataset (the paper's §V rule)?
  std::cout << "partitioning rule: |V1|" << (g.n1() < g.n2() ? " < " : " >= ")
            << "|V2| -> prefer "
            << (g.n2() <= g.n1() ? "invariants 1-4 (partition V2, CSC)"
                                 : "invariants 5-8 (partition V1, CSR)")
            << "\n\n";

  // Top butterfly-dense vertices on each side.
  auto top5 = [](const std::vector<count_t>& b) {
    std::vector<vidx_t> idx(b.size());
    std::iota(idx.begin(), idx.end(), 0);
    std::partial_sort(idx.begin(), idx.begin() + std::min<std::size_t>(5, idx.size()),
                      idx.end(), [&](vidx_t x, vidx_t y) {
                        return b[static_cast<std::size_t>(x)] >
                               b[static_cast<std::size_t>(y)];
                      });
    idx.resize(std::min<std::size_t>(5, idx.size()));
    return idx;
  };
  const auto b1 = count::butterflies_per_v1(g);
  const auto b2 = count::butterflies_per_v2(g);
  Table table({"side", "vertex", "butterflies", "degree"});
  for (const vidx_t u : top5(b1))
    table.add_row({"V1", Table::num(u),
                   Table::num(b1[static_cast<std::size_t>(u)]),
                   Table::num(g.csr().row_degree(u))});
  for (const vidx_t v : top5(b2))
    table.add_row({"V2", Table::num(v),
                   Table::num(b2[static_cast<std::size_t>(v)]),
                   Table::num(g.csc().row_degree(v))});
  table.print(std::cout);

  // Structure: components, 2-core, degree tails, densest 2xk biclique.
  const graph::Components components = graph::connected_components(g);
  const graph::CorePruneResult core = graph::two_core_prune(g);
  std::cout << "\ncomponents: " << components.count << "; 2-core keeps "
            << core.subgraph.edge_count() << "/" << g.edge_count()
            << " edges (pruned " << core.removed_v1 << " V1 + "
            << core.removed_v2 << " V2 vertices in " << core.rounds
            << " rounds)\n";
  std::cout << "degree p50/p90/p99 V1: " << graph::degree_percentile_v1(g, 50)
            << "/" << graph::degree_percentile_v1(g, 90) << "/"
            << graph::degree_percentile_v1(g, 99)
            << "   V2: " << graph::degree_percentile_v2(g, 50) << "/"
            << graph::degree_percentile_v2(g, 90) << "/"
            << graph::degree_percentile_v2(g, 99) << "\n";
  const count::Biclique2 biclique = count::max_biclique_2xk(g);
  if (!biclique.columns.empty()) {
    std::cout << "densest 2xk biclique: V1 pair (" << biclique.a << ", "
              << biclique.b << ") spanning " << biclique.columns.size()
              << " shared V2 vertices = "
              << Table::num(choose2(static_cast<count_t>(
                     biclique.columns.size())))
              << " butterflies\n";
  }
  return 0;
}
