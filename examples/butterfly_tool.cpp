// butterfly_tool: a command-line front end over the whole library — what a
// downstream user runs against their own KONECT / MatrixMarket files.
//
//   butterfly_tool count   --file out.github [--invariant 2] [--engine wedge]
//                          [--threads 4] [--approx edge --samples 10000]
//   butterfly_tool stats   --file graph.mtx
//   butterfly_tool peel    --file out.github --k 100 [--mode tip|wing]
//   butterfly_tool pairs   --file out.github [--top 10]
//   butterfly_tool prune   --file out.github [--to pruned.bin]
//   butterfly_tool convert --file out.github --to graph.mtx
//
// Inputs: --file <path> (KONECT edge list), --mtx <path>, --bin <path>, or
// --preset "<name>" --scale <s> for a synthetic stand-in.
//
// Add --stats to any command to print the kernel metrics the run recorded
// (wedges expanded, lines processed, peel rounds, parse counters, ...);
// requires a build with the default BFC_METRICS=ON for nonzero values.
#include <iostream>
#include <string>

#include "count/approx.hpp"
#include "count/baselines.hpp"
#include "count/top_pairs.hpp"
#include "gen/konect_like.hpp"
#include "graph/components.hpp"
#include "graph/io_binary.hpp"
#include "graph/io_edgelist.hpp"
#include "graph/io_mtx.hpp"
#include "graph/stats.hpp"
#include "la/count.hpp"
#include "obs/metrics.hpp"
#include "peel/peeling.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace bfc;

graph::BipartiteGraph load_input(const Cli& cli) {
  if (cli.has("file")) return graph::load_edgelist(cli.get("file", ""));
  if (cli.has("mtx")) return graph::load_mtx(cli.get("mtx", ""));
  if (cli.has("bin")) return graph::load_binary(cli.get("bin", ""));
  const std::string preset = cli.get("preset", "arXiv cond-mat");
  return gen::make_konect_like(
      gen::konect_preset(preset), cli.get_double("scale", 0.05),
      static_cast<std::uint64_t>(cli.get_int("seed", 42)));
}

int cmd_count(const Cli& cli, const graph::BipartiteGraph& g) {
  Timer timer;
  if (cli.has("approx")) {
    count::ApproxOptions opts;
    opts.samples = cli.get_int_at_least("samples", 10000, 1);
    opts.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
    const std::string kind = cli.get("approx", "edge");
    count::ApproxResult r;
    if (kind == "vertex") r = count::approx_vertex_sampling(g, opts);
    else if (kind == "edge") r = count::approx_edge_sampling(g, opts);
    else if (kind == "wedge") r = count::approx_wedge_sampling(g, opts);
    else {
      std::cerr << "unknown --approx kind: " << kind
                << " (vertex|edge|wedge)\n";
      return 1;
    }
    std::cout << "approx butterflies (" << kind << ", " << r.samples
              << " samples): " << Table::fixed(r.estimate, 1) << " ± "
              << Table::fixed(r.standard_error, 1) << "  ["
              << Table::fixed(timer.seconds(), 3) << " s]\n";
    return 0;
  }

  la::CountOptions opts;
  const std::string engine = cli.get("engine", "wedge");
  if (engine == "unblocked") opts.engine = la::Engine::kUnblocked;
  else if (engine == "wedge") opts.engine = la::Engine::kWedge;
  else if (engine == "blocked") opts.engine = la::Engine::kBlocked;
  else {
    std::cerr << "unknown --engine: " << engine
              << " (unblocked|wedge|blocked)\n";
    return 1;
  }
  opts.threads = static_cast<int>(cli.get_int_at_least("threads", 1, 1));
  opts.block_size = static_cast<vidx_t>(cli.get_int_at_least("block-size", 32, 1));

  count_t result;
  if (cli.has("invariant")) {
    const auto inv =
        la::invariant_from_number(static_cast<int>(cli.get_int("invariant", 2)));
    result = la::count_butterflies(g, inv, opts);
    std::cout << la::name(inv) << " (" << engine << "): ";
  } else {
    result = la::count_butterflies(g);
    std::cout << "auto-selected invariant: ";
  }
  std::cout << Table::num(result) << " butterflies  ["
            << Table::fixed(timer.seconds(), 3) << " s]\n";
  return 0;
}

int cmd_stats(const graph::BipartiteGraph& g) {
  std::cout << graph::summarize(g) << '\n';
  const count_t butterflies = la::count_butterflies(g);
  std::cout << "butterflies=" << Table::num(butterflies)
            << " clustering=" << Table::fixed(
                   graph::clustering_coefficient(g, butterflies), 6)
            << '\n';
  return 0;
}

int cmd_peel(const Cli& cli, const graph::BipartiteGraph& g) {
  const count_t k = cli.get_int_at_least("k", 1, 0);
  const std::string mode = cli.get("mode", "tip");
  Timer timer;
  if (mode == "tip") {
    const std::string side_name = cli.get("side", "v1");
    const peel::Side side =
        side_name == "v2" ? peel::Side::kV2 : peel::Side::kV1;
    const peel::TipPeelResult r = peel::k_tip(g, k, side);
    std::cout << k << "-tip (" << side_name << "): removed "
              << r.removed_vertices << " vertices in " << r.rounds
              << " rounds; " << r.subgraph.edge_count() << "/"
              << g.edge_count() << " edges remain  ["
              << Table::fixed(timer.seconds(), 3) << " s]\n";
  } else if (mode == "wing") {
    const peel::WingPeelResult r = peel::k_wing(g, k);
    std::cout << k << "-wing: removed " << r.removed_edges << " edges in "
              << r.rounds << " rounds; " << r.subgraph.edge_count() << "/"
              << g.edge_count() << " edges remain  ["
              << Table::fixed(timer.seconds(), 3) << " s]\n";
  } else {
    std::cerr << "unknown --mode: " << mode << " (tip|wing)\n";
    return 1;
  }
  return 0;
}

int cmd_pairs(const Cli& cli, const graph::BipartiteGraph& g) {
  const auto top = static_cast<std::size_t>(cli.get_int_at_least("top", 10, 1));
  Table table({"V1 pair", "shared neighbours", "butterflies"});
  for (const count::VertexPair& p : count::top_wedge_pairs_v1(g, top))
    table.add_row({"(" + std::to_string(p.a) + ", " + std::to_string(p.b) +
                       ")",
                   Table::num(p.wedges), Table::num(p.butterflies())});
  table.print(std::cout);
  return 0;
}

int cmd_prune(const Cli& cli, const graph::BipartiteGraph& g) {
  Timer timer;
  const graph::CorePruneResult r = graph::two_core_prune(g);
  std::cout << "2-core: kept " << r.subgraph.edge_count() << "/"
            << g.edge_count() << " edges; pruned " << r.removed_v1 << " V1 + "
            << r.removed_v2 << " V2 vertices in " << r.rounds << " rounds  ["
            << Table::fixed(timer.seconds(), 3) << " s]\n";
  const std::string to = cli.get("to", "");
  if (!to.empty()) {
    if (to.ends_with(".mtx")) graph::save_mtx(to, r.subgraph);
    else if (to.ends_with(".bin")) graph::save_binary(to, r.subgraph);
    else graph::save_edgelist(to, r.subgraph);
    std::cout << "wrote " << to << '\n';
  }
  return 0;
}

int cmd_convert(const Cli& cli, const graph::BipartiteGraph& g) {
  const std::string to = cli.get("to", "");
  if (to.empty()) {
    std::cerr << "convert: missing --to <output path>\n";
    return 1;
  }
  if (to.ends_with(".mtx")) graph::save_mtx(to, g);
  else if (to.ends_with(".bin")) graph::save_binary(to, g);
  else graph::save_edgelist(to, g);
  std::cout << "wrote " << to << " (|V1|=" << g.n1() << " |V2|=" << g.n2()
            << " |E|=" << g.edge_count() << ")\n";
  return 0;
}

void print_metrics_table() {
  Table table({"metric", "kind", "value"});
  for (const obs::MetricSnapshot& m : obs::Registry::instance().snapshot()) {
    switch (m.kind) {
      case obs::MetricSnapshot::Kind::kCounter:
        table.add_row({m.name, "counter", Table::num(m.value)});
        break;
      case obs::MetricSnapshot::Kind::kGauge:
        table.add_row({m.name, "gauge", Table::fixed(m.gauge, 6)});
        break;
      case obs::MetricSnapshot::Kind::kHistogram:
        table.add_row({m.name, "histogram",
                       "count=" + Table::num(m.hist_count) +
                           " sum=" + Table::num(m.hist_sum) +
                           " min=" + Table::num(m.hist_min) +
                           " max=" + Table::num(m.hist_max)});
        break;
    }
  }
  if (table.rows() == 0) {
    std::cout << "(no metrics recorded"
              << (obs::kMetricsEnabled
                      ? ")\n"
                      : "; rebuild with -DBFC_METRICS=ON)\n");
    return;
  }
  std::cout << '\n';
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  if (cli.positional().empty()) {
    std::cerr << "usage: butterfly_tool <count|stats|peel|convert> "
                 "[--file|--mtx|--bin|--preset ...] [options]\n";
    return 1;
  }
  try {
    const graph::BipartiteGraph g = load_input(cli);
    const std::string& command = cli.positional()[0];
    int rc = 1;
    if (command == "count") rc = cmd_count(cli, g);
    else if (command == "stats") rc = cmd_stats(g);
    else if (command == "peel") rc = cmd_peel(cli, g);
    else if (command == "pairs") rc = cmd_pairs(cli, g);
    else if (command == "prune") rc = cmd_prune(cli, g);
    else if (command == "convert") rc = cmd_convert(cli, g);
    else {
      std::cerr << "unknown command: " << command << '\n';
      return 1;
    }
    if (cli.has("stats")) print_metrics_table();
    return rc;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
