// Streaming maintenance: keep an exact butterfly count while edges arrive
// and expire, without ever recounting — the dynamic companion to the batch
// algorithms. Simulates a sliding-window stream over a KONECT-like graph
// and periodically cross-checks against a from-scratch recount.
//
//   ./streaming_updates [--window 2000] [--events 10000] [--seed 42]
#include <algorithm>
#include <deque>
#include <iostream>

#include "count/baselines.hpp"
#include "chk/checked_math.hpp"
#include "count/dynamic.hpp"
#include "gen/konect_like.hpp"
#include "sparse/ops.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace bfc;
  const Cli cli(argc, argv);
  const auto window = static_cast<std::size_t>(cli.get_int_at_least("window", 2000, 1));
  const auto events = cli.get_int_at_least("events", 10000, 0);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));

  // Edge stream: edges of a synthetic affiliation graph in random order.
  const auto g =
      gen::make_konect_like(gen::konect_preset("arXiv cond-mat"), 0.1, seed);
  auto stream = sparse::edges(g.csr());
  Rng rng(seed + 1);
  std::shuffle(stream.begin(), stream.end(), rng);
  std::cout << "stream of " << stream.size() << " edges over |V1|=" << g.n1()
            << " |V2|=" << g.n2() << ", sliding window " << window << "\n\n";

  count::DynamicButterflyCounter counter(g.n1(), g.n2());
  std::deque<std::pair<vidx_t, vidx_t>> live;
  count_t created_total = 0, destroyed_total = 0;

  Table table({"event", "|E| live", "butterflies", "created so far",
               "destroyed so far", "recount check"});
  Timer timer;
  const auto limit =
      std::min<std::int64_t>(events, static_cast<std::int64_t>(stream.size()));
  // limit / 5 is 0 for < 5 events, and n % 0 is UB — clamp the checkpoint
  // interval to 1 so tiny runs checkpoint every event instead.
  const auto checkpoint = std::max<std::int64_t>(1, limit / 5);
  for (std::int64_t e = 0; e < limit; ++e) {
    const auto& [u, v] = stream[static_cast<std::size_t>(e)];
    created_total = chk::checked_add(created_total, counter.insert(u, v));
    live.emplace_back(u, v);
    if (live.size() > window) {
      const auto& [ou, ov] = live.front();
      destroyed_total += counter.remove(ou, ov);
      live.pop_front();
    }
    if ((e + 1) % checkpoint == 0) {
      // Cross-check against a full recount of the live window.
      const auto snapshot = graph::BipartiteGraph::from_edges(
          g.n1(), g.n2(), {live.begin(), live.end()});
      const count_t recount = count::wedge_reference(snapshot);
      if (recount != counter.butterflies()) {
        std::cerr << "FATAL: incremental count drifted: "
                  << counter.butterflies() << " != " << recount << '\n';
        return 1;
      }
      table.add_row({Table::num(e + 1), Table::num(counter.edge_count()),
                     Table::num(counter.butterflies()),
                     Table::num(created_total), Table::num(destroyed_total),
                     "ok"});
    }
  }
  table.print(std::cout);
  std::cout << "\nprocessed " << limit << " events in "
            << Table::fixed(timer.seconds(), 3)
            << " s; every checkpoint matched a from-scratch recount.\n";
  return 0;
}
