// Quickstart: build a small bipartite graph, count its butterflies with the
// default API and with each of the paper's eight algorithms, and peel it.
//
//   ./quickstart
#include <iostream>

#include "graph/bipartite_graph.hpp"
#include "la/count.hpp"
#include "peel/peeling.hpp"

int main() {
  using namespace bfc;

  // An author–paper style graph: V1 = {0..4} authors, V2 = {0..3} papers.
  // Authors 0-2 collaborate heavily (papers 0-1), authors 3-4 lightly.
  const graph::BipartiteGraph g = graph::BipartiteGraph::from_edges(
      5, 4,
      {{0, 0}, {0, 1}, {1, 0}, {1, 1}, {2, 0}, {2, 1},  // dense core
       {3, 2}, {3, 3}, {4, 2}});

  std::cout << "graph: |V1|=" << g.n1() << " |V2|=" << g.n2()
            << " |E|=" << g.edge_count() << "\n";

  // The one-liner: picks the best invariant/engine automatically.
  std::cout << "butterflies: " << la::count_butterflies(g) << "\n\n";

  // The whole family — every loop invariant yields the same count.
  for (const la::Invariant inv : la::all_invariants()) {
    std::cout << la::name(inv) << " ("
              << (la::traits(inv).family == la::Family::kColumns
                      ? "partitions V2"
                      : "partitions V1")
              << ", "
              << (la::traits(inv).look_ahead ? "look-ahead" : "look-behind")
              << "): " << la::count_butterflies(g, inv) << "\n";
  }

  // Peeling: the 1-tip keeps only vertices lying on at least one butterfly,
  // which isolates the dense author core.
  const peel::TipPeelResult tip = peel::k_tip(g, 1);
  std::cout << "\n1-tip: removed " << tip.removed_vertices
            << " authors, kept edges " << tip.subgraph.edge_count() << "\n";
  for (vidx_t u = 0; u < g.n1(); ++u)
    std::cout << "  author " << u << ": "
              << (tip.kept[static_cast<std::size_t>(u)] ? "kept" : "peeled")
              << "\n";
  return 0;
}
