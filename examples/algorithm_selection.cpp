// Algorithm selection walkthrough: the paper's §V observes that the right
// member of the family depends on the graph's shape — partition the smaller
// vertex set, prefer look-ahead updates. This example measures all eight
// invariants on two mirrored rectangular graphs and prints the ranking,
// demonstrating how a downstream user would pick (or just call the
// convenience overload, which applies the rule automatically).
//
//   ./algorithm_selection [--n 4000] [--edges 20000] [--seed 42]
#include <algorithm>
#include <iostream>
#include <vector>

#include "gen/generators.hpp"
#include "la/count.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace bfc;
  const Cli cli(argc, argv);
  const auto n = static_cast<vidx_t>(cli.get_int_at_least("n", 4000, 1));
  const auto edges = static_cast<offset_t>(cli.get_int_at_least("edges", 20000, 0));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));

  struct Scenario {
    const char* label;
    vidx_t n1, n2;
  };
  const Scenario scenarios[] = {
      {"wide  (|V1| = n/8, |V2| = 2n)", static_cast<vidx_t>(n / 8),
       static_cast<vidx_t>(2 * n)},
      {"tall  (|V1| = 2n, |V2| = n/8)", static_cast<vidx_t>(2 * n),
       static_cast<vidx_t>(n / 8)},
  };

  for (const Scenario& sc : scenarios) {
    const auto g = gen::chung_lu(gen::power_law_weights(sc.n1, 0.6),
                                 gen::power_law_weights(sc.n2, 0.6), edges,
                                 seed);
    std::cout << "scenario: " << sc.label << "  |E|=" << g.edge_count()
              << "\n";

    struct Row {
      la::Invariant inv;
      double secs;
    };
    std::vector<Row> rows;
    count_t expected = -1;
    for (const la::Invariant inv : la::all_invariants()) {
      Timer timer;
      const count_t c = la::count_butterflies(g, inv);
      const double secs = timer.seconds();
      if (expected < 0) expected = c;
      if (c != expected) {
        std::cerr << "count mismatch!\n";
        return 1;
      }
      rows.push_back({inv, secs});
    }
    std::sort(rows.begin(), rows.end(),
              [](const Row& a, const Row& b) { return a.secs < b.secs; });

    Table table({"rank", "invariant", "partitions", "peer", "seconds"});
    int rank = 1;
    for (const Row& r : rows) {
      const la::InvariantTraits t = la::traits(r.inv);
      table.add_row({Table::num(rank++), la::name(r.inv),
                     t.family == la::Family::kColumns ? "V2 (CSC)" : "V1 (CSR)",
                     t.look_ahead ? "look-ahead" : "look-behind",
                     Table::fixed(r.secs, 3)});
    }
    table.print(std::cout);

    const bool smaller_is_v2 = g.n2() <= g.n1();
    const la::Family best_family = la::traits(rows.front().inv).family;
    std::cout << "butterflies = " << Table::num(expected)
              << "; fastest partitions "
              << (best_family == la::Family::kColumns ? "V2" : "V1")
              << ", the smaller set is "
              << (smaller_is_v2 ? "V2" : "V1") << " -> rule "
              << ((best_family == la::Family::kColumns) == smaller_is_v2
                      ? "CONFIRMED"
                      : "violated (noise at this size)")
              << "\n\n";
  }

  std::cout << "the convenience overload la::count_butterflies(g) applies "
               "this selection automatically.\n";
  return 0;
}
