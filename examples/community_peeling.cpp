// Community discovery via butterfly peeling (§IV of the paper): plant dense
// blocks in a noisy bipartite graph, then show how the k-tip and k-wing
// subgraphs sharpen onto the planted structure as k grows, and how the full
// tip decomposition separates block vertices from background.
//
//   ./community_peeling [--rows 60] [--noise 0.01] [--seed 42]
#include <algorithm>
#include <iostream>

#include "gen/generators.hpp"
#include "peel/decompose.hpp"
#include "peel/peeling.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace bfc;
  const Cli cli(argc, argv);

  gen::BlockCommunitySpec spec;
  spec.blocks = 3;
  spec.block_rows = static_cast<vidx_t>(cli.get_int_at_least("rows", 60, 1));
  spec.block_cols = spec.block_rows;
  spec.extra_rows = spec.block_rows;  // one block's worth of background
  spec.extra_cols = spec.block_cols;
  spec.p_in = 0.25;
  spec.p_out = cli.get_double("noise", 0.01);
  const auto g =
      gen::block_community(spec, static_cast<std::uint64_t>(cli.get_int("seed", 42)));

  const vidx_t block_vertices = spec.blocks * spec.block_rows;
  std::cout << "planted " << spec.blocks << " blocks of " << spec.block_rows
            << "x" << spec.block_cols << " (p_in=" << spec.p_in << ") over "
            << spec.p_out << " background noise; |V1|=" << g.n1()
            << " |V2|=" << g.n2() << " |E|=" << g.edge_count() << "\n\n";

  // Sweep k and measure precision/recall of "kept V1 vertex is a block
  // vertex" — peeling should sharpen onto the planted communities.
  Table table({"k", "kept V1", "block kept", "precision", "recall",
               "kept |E|", "rounds"});
  // bfc-analyze: checked-accumulation-ok threshold sweep bounded by the 4096 literal
  for (count_t k = 1; k <= 4096; k *= 8) {
    const peel::TipPeelResult r = peel::k_tip(g, k);
    vidx_t kept = 0, block_kept = 0;
    for (vidx_t u = 0; u < g.n1(); ++u) {
      if (!r.kept[static_cast<std::size_t>(u)]) continue;
      ++kept;
      if (u < block_vertices) ++block_kept;
    }
    if (kept == 0) break;
    table.add_row(
        {Table::num(k), Table::num(kept), Table::num(block_kept),
         Table::fixed(static_cast<double>(block_kept) / kept, 3),
         Table::fixed(static_cast<double>(block_kept) / block_vertices, 3),
         Table::num(r.subgraph.edge_count()), Table::num(r.rounds)});
  }
  table.print(std::cout);

  // The decomposition view: block vertices should carry much larger tip
  // numbers than background vertices.
  const peel::TipDecomposition d = peel::tip_decomposition(g);
  count_t best_background = 0;
  count_t worst_block = d.max_tip;
  for (vidx_t u = 0; u < g.n1(); ++u) {
    const count_t theta = d.tip_number[static_cast<std::size_t>(u)];
    if (u < block_vertices)
      worst_block = std::min(worst_block, theta);
    else
      best_background = std::max(best_background, theta);
  }
  std::cout << "\ntip numbers: max θ=" << d.max_tip << ", worst block vertex θ="
            << worst_block << ", best background vertex θ=" << best_background
            << "\n"
            << (worst_block > best_background
                    ? "-> a single threshold separates the planted blocks "
                      "from the noise\n"
                    : "-> thresholds overlap at this noise level\n");

  // k-wing on the densest region for comparison.
  const peel::WingPeelResult wing = peel::k_wing(g, 8);
  std::cout << "8-wing keeps " << wing.subgraph.edge_count() << "/"
            << g.edge_count() << " edges after " << wing.rounds
            << " rounds\n";
  return 0;
}
