// bfc-shard-host: one LocalShard behind a Unix-domain socket — the failure
// domain unit of the sharded serving plane. The process owns the V1 range
// [--lo, --hi) of an (--n1 × --n2) graph, serves the transport.hpp protocol
// (publish, pin, persist/restore, the five query kinds) and nothing else;
// killing it loses exactly one range, which the ShardSupervisor restarts
// and restores from the last checkpoint.
//
//   bfc-shard-host --socket PATH --shard K --n1 N --n2 M --lo L --hi H
//                  [--restore FILE] [--crash-at N] [--idle-ms MS]
//
// --restore  warm-start from a LocalShard checkpoint before serving
// --crash-at arm svc::fault kShardHostCrash: _exit(137) before replying to
//            request N+1 (checked builds only; release hosts ignore it)
// --idle-ms  per-connection idle budget (default 10000)
//
// The host prints "READY <pid>" on stdout once the socket is listening —
// the supervisor waits for a successful ping instead, but the line makes
// manual runs debuggable. PR_SET_PDEATHSIG ties the host's lifetime to its
// parent so a killed bench never leaks host processes.
#include <signal.h>
#include <sys/prctl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "shard/shard.hpp"
#include "shard/transport.hpp"
#include "svc/fault.hpp"

namespace {

[[noreturn]] void usage(const char* why) {
  std::fprintf(stderr,
               "bfc-shard-host: %s\n"
               "usage: bfc-shard-host --socket PATH --shard K --n1 N --n2 M "
               "--lo L --hi H [--restore FILE] [--crash-at N] [--idle-ms MS]\n",
               why);
  std::exit(2);
}

long parse_long(const char* s) {
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0') usage("bad integer argument");
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string restore_path;
  long shard_id = -1, n1 = -1, n2 = -1, lo = -1, hi = -1;
  long crash_at = -1, idle_ms = 10000;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--socket")
      socket_path = next();
    else if (arg == "--shard")
      shard_id = parse_long(next());
    else if (arg == "--n1")
      n1 = parse_long(next());
    else if (arg == "--n2")
      n2 = parse_long(next());
    else if (arg == "--lo")
      lo = parse_long(next());
    else if (arg == "--hi")
      hi = parse_long(next());
    else if (arg == "--restore")
      restore_path = next();
    else if (arg == "--crash-at")
      crash_at = parse_long(next());
    else if (arg == "--idle-ms")
      idle_ms = parse_long(next());
    else
      usage(("unknown flag " + arg).c_str());
  }
  if (socket_path.empty() || shard_id < 0 || n1 < 0 || n2 < 0 || lo < 0 ||
      hi < 0)
    usage("missing required flag");

  // Die with the parent (supervisor/bench); orphan hosts would otherwise
  // hold the socket path and poison the next run.
  (void)::prctl(PR_SET_PDEATHSIG, SIGKILL);
  ::signal(SIGPIPE, SIG_IGN);

  using namespace bfc;
  try {
    shard::LocalShard shard(static_cast<int>(shard_id),
                            static_cast<vidx_t>(n1), static_cast<vidx_t>(n2),
                            static_cast<vidx_t>(lo), static_cast<vidx_t>(hi));
    if (!restore_path.empty()) shard.restore(restore_path);
    if (crash_at >= 0)
      svc::fault::arm(svc::fault::Point::kShardHostCrash,
                      static_cast<std::uint64_t>(crash_at), 1);

    const int lfd = shard::listen_unix(socket_path);
    std::printf("READY %d\n", static_cast<int>(::getpid()));
    std::fflush(stdout);

    for (;;) {
      const int fd = ::accept(lfd, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        break;
      }
      shard::serve_connection(fd, shard, static_cast<int>(idle_ms));
      ::close(fd);
    }
    ::close(lfd);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bfc-shard-host: fatal: %s\n", e.what());
    return 1;
  }
  return 0;
}
