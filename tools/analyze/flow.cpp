#include "flow.hpp"

#include <algorithm>
#include <set>

namespace bfc::analyze {
namespace {

using Tokens = std::vector<Token>;

const std::set<std::string>& control_keywords() {
  static const std::set<std::string> kWords = {
      "if",     "for",    "while",    "switch",        "catch",
      "return", "sizeof", "alignof",  "decltype",      "noexcept",
      "new",    "delete", "throw",    "static_assert", "alignas",
      "do",     "else",   "try",      "case",          "default",
      "goto",   "break",  "continue", "operator",      "requires",
  };
  return kWords;
}

[[nodiscard]] bool is_type_punct(const Token& t) {
  return t.kind == Tok::kPunct &&
         (t.text == "::" || t.text == "*" || t.text == "&" ||
          t.text == "&&");
}

/// Skips a template argument list starting at the '<' at `i`; returns the
/// index one past the matching '>', or `i` when this does not look like a
/// closed template list before `end` (caller treats it as an expression).
[[nodiscard]] std::size_t skip_template(const Tokens& t, std::size_t i,
                                        std::size_t end) {
  int depth = 0;
  for (std::size_t j = i; j < end && j < i + 64; ++j) {
    if (t[j].kind != Tok::kPunct) continue;
    if (t[j].text == "<") ++depth;
    else if (t[j].text == ">") {
      if (--depth == 0) return j + 1;
    } else if (t[j].text == ">>") {
      depth -= 2;
      if (depth <= 0) return j + 1;
    } else if (t[j].text == ";" || t[j].text == "{") {
      break;  // statement ended before the list closed: not a template
    }
  }
  return i;
}

// ------------------------------------------------------- statement parsing

std::size_t parse_one(const Tokens& t, std::size_t p, std::size_t to,
                      Stmt& out);

/// Simple / return / throw / break / continue statement: consumes to the
/// ';' at depth 0. Nested braces (lambda bodies, brace-initializers)
/// become child kBlock statements so scope-tracking walks see into them.
std::size_t parse_simple(const Tokens& t, std::size_t p, std::size_t to,
                         Stmt& out) {
  out.begin = p;
  if (t[p].ident("return")) out.kind = Stmt::Kind::kReturn;
  else if (t[p].ident("throw")) out.kind = Stmt::Kind::kThrow;
  else if (t[p].ident("break")) out.kind = Stmt::Kind::kBreak;
  else if (t[p].ident("continue")) out.kind = Stmt::Kind::kContinue;
  else out.kind = Stmt::Kind::kSimple;
  std::size_t q = p;
  while (q < to) {
    if (t[q].punct("(") || t[q].punct("[")) {
      const std::size_t close = match_bracket(t, q);
      q = close >= to ? to : close + 1;
      continue;
    }
    if (t[q].punct("{")) {
      const std::size_t close = match_bracket(t, q);
      if (close >= to) {
        q = to;
        break;
      }
      Stmt child;
      child.kind = Stmt::Kind::kBlock;
      child.begin = q;
      child.end = close + 1;
      child.blocks.clear();
      Stmt inner;
      inner.kind = Stmt::Kind::kBlock;
      // Parse the nested region; attach its statements as this child's
      // blocks so walkers recurse naturally.
      child.blocks = parse_stmts(t, q + 1, close);
      out.blocks.push_back(std::move(child));
      q = close + 1;
      continue;
    }
    if (t[q].punct(";")) {
      ++q;
      break;
    }
    if (t[q].punct("}")) break;  // malformed: end of the enclosing block
    ++q;
  }
  out.end = q;
  return q;
}

/// `if`, loops, `switch`, `try`, `{` blocks, labels; falls back to
/// parse_simple. Returns one past the statement.
std::size_t parse_one(const Tokens& t, std::size_t p, std::size_t to,
                      Stmt& out) {
  const Token& tok = t[p];
  if (tok.punct("{")) {
    const std::size_t close = match_bracket(t, p);
    out.kind = Stmt::Kind::kBlock;
    out.begin = p;
    if (close >= to) {
      out.end = to;
      return to;
    }
    out.blocks = parse_stmts(t, p + 1, close);
    out.end = close + 1;
    return out.end;
  }
  if (tok.ident("if")) {
    out.kind = Stmt::Kind::kIf;
    out.begin = p;
    std::size_t q = p + 1;
    if (q < to && t[q].ident("constexpr")) ++q;
    if (q >= to || !t[q].punct("(")) return parse_simple(t, p, to, out);
    const std::size_t close = match_bracket(t, q);
    if (close >= to) {
      out.end = to;
      return to;
    }
    out.cond_begin = q + 1;
    out.cond_end = close;
    std::size_t r = close + 1;
    Stmt then_s;
    r = parse_one(t, r, to, then_s);
    out.blocks.push_back(std::move(then_s));
    if (r < to && t[r].ident("else")) {
      Stmt else_s;
      r = parse_one(t, r + 1, to, else_s);
      out.blocks.push_back(std::move(else_s));
    }
    out.end = r;
    return r;
  }
  if (tok.ident("for") || tok.ident("while")) {
    out.kind = Stmt::Kind::kLoop;
    out.begin = p;
    std::size_t q = p + 1;
    if (q >= to || !t[q].punct("(")) return parse_simple(t, p, to, out);
    const std::size_t close = match_bracket(t, q);
    if (close >= to) {
      out.end = to;
      return to;
    }
    out.cond_begin = q + 1;
    out.cond_end = close;
    Stmt body;
    const std::size_t r = parse_one(t, close + 1, to, body);
    out.blocks.push_back(std::move(body));
    out.end = r;
    return r;
  }
  if (tok.ident("do")) {
    out.kind = Stmt::Kind::kLoop;
    out.begin = p;
    Stmt body;
    std::size_t r = parse_one(t, p + 1, to, body);
    out.blocks.push_back(std::move(body));
    // while (cond) ;
    if (r < to && t[r].ident("while") && r + 1 < to && t[r + 1].punct("(")) {
      const std::size_t close = match_bracket(t, r + 1);
      if (close < to) {
        out.cond_begin = r + 2;
        out.cond_end = close;
        r = close + 1;
        if (r < to && t[r].punct(";")) ++r;
      } else {
        r = to;
      }
    }
    out.end = r;
    return r;
  }
  if (tok.ident("switch")) {
    out.kind = Stmt::Kind::kSwitch;
    out.begin = p;
    std::size_t q = p + 1;
    if (q >= to || !t[q].punct("(")) return parse_simple(t, p, to, out);
    const std::size_t close = match_bracket(t, q);
    if (close >= to) {
      out.end = to;
      return to;
    }
    out.cond_begin = q + 1;
    out.cond_end = close;
    Stmt body;
    const std::size_t r = parse_one(t, close + 1, to, body);
    out.blocks.push_back(std::move(body));
    out.end = r;
    return r;
  }
  if (tok.ident("try")) {
    out.kind = Stmt::Kind::kTry;
    out.begin = p;
    Stmt body;
    std::size_t r = parse_one(t, p + 1, to, body);
    out.blocks.push_back(std::move(body));
    while (r < to && t[r].ident("catch")) {
      std::size_t q = r + 1;
      if (q < to && t[q].punct("(")) {
        const std::size_t close = match_bracket(t, q);
        q = close >= to ? to : close + 1;
      }
      Stmt handler;
      r = parse_one(t, q, to, handler);
      out.blocks.push_back(std::move(handler));
    }
    out.end = r;
    return r;
  }
  return parse_simple(t, p, to, out);
}

}  // namespace

std::vector<Stmt> parse_stmts(const Tokens& t, std::size_t from,
                              std::size_t to) {
  std::vector<Stmt> out;
  std::size_t p = from;
  while (p < to) {
    if (t[p].punct(";")) {
      ++p;
      continue;
    }
    // `case expr:` / `default:` markers: consume, keep parsing the
    // following statements in the same (switch-body) sequence.
    if (t[p].ident("case")) {
      std::size_t q = p + 1;
      int depth = 0;
      while (q < to) {
        if (t[q].kind == Tok::kPunct) {
          const std::string& s = t[q].text;
          if (s == "(" || s == "[" || s == "{") ++depth;
          else if (s == ")" || s == "]" || s == "}") --depth;
          else if (s == ":" && depth == 0) break;
        }
        ++q;
      }
      p = q < to ? q + 1 : to;
      continue;
    }
    if (t[p].ident("default") && p + 1 < to && t[p + 1].punct(":")) {
      p += 2;
      continue;
    }
    if (t[p].punct("}")) break;  // malformed input; stop rather than spin
    Stmt s;
    const std::size_t next = parse_one(t, p, to, s);
    out.push_back(std::move(s));
    if (next <= p) break;  // defensive: never loop forever on odd input
    p = next;
  }
  return out;
}

// ---------------------------------------------------- declaration parsing

std::optional<DeclInfo> parse_decl(const Tokens& t, std::size_t begin,
                                   std::size_t end) {
  std::size_t p = begin;
  std::vector<std::size_t> idents;  // indices of kIdent tokens in the run
  std::size_t run_begin = p;
  while (p < end) {
    const Token& tok = t[p];
    if (tok.kind == Tok::kIdent) {
      if (control_keywords().count(tok.text) != 0) return std::nullopt;
      idents.push_back(p);
      ++p;
      if (p < end && t[p].punct("<")) {
        const std::size_t past = skip_template(t, p, end);
        if (past == p) return std::nullopt;  // expression, not a decl
        p = past;
      }
      continue;
    }
    if (is_type_punct(tok)) {
      ++p;
      continue;
    }
    break;
  }
  (void)run_begin;
  if (idents.size() < 2) return std::nullopt;
  const std::size_t name_at = idents.back();
  // A name directly after '::' is a qualified reference (call/static use),
  // not a declared local.
  if (name_at > begin && t[name_at - 1].punct("::")) return std::nullopt;
  if (p >= end) return std::nullopt;

  DeclInfo d;
  d.name = t[name_at].text;
  d.name_at = name_at;
  for (std::size_t j = begin; j < name_at; ++j) {
    if (!d.type.empty()) d.type += ' ';
    d.type += t[j].text;
  }
  d.init_begin = d.init_end = p;

  if (t[p].punct(";")) return d;
  if (t[p].punct("=")) {
    d.init_begin = p + 1;
    std::size_t q = p + 1;
    int depth = 0;
    while (q < end) {
      if (t[q].kind == Tok::kPunct) {
        const std::string& s = t[q].text;
        if (s == "(" || s == "[" || s == "{") ++depth;
        else if (s == ")" || s == "]" || s == "}") --depth;
        else if (depth == 0 && (s == ";" || s == ",")) break;
      }
      ++q;
    }
    d.init_end = q;
    return d;
  }
  if (t[p].punct("(") || t[p].punct("{")) {
    const std::size_t close = match_bracket(t, p);
    if (close >= end) return std::nullopt;
    // `int f(int);` local function declarations would match here; the
    // rules only care about object declarations, and the tree has no
    // block-scope function declarations, so accept the ambiguity.
    d.init_begin = p + 1;
    d.init_end = close;
    return d;
  }
  return std::nullopt;
}

bool type_mentions(const std::string& type, const char* ident) {
  const std::string needle(ident);
  std::size_t pos = 0;
  while ((pos = type.find(needle, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || type[pos - 1] == ' ';
    const std::size_t after = pos + needle.size();
    const bool right_ok = after == type.size() || type[after] == ' ';
    if (left_ok && right_ok) return true;
    pos = after;
  }
  return false;
}

bool FuncInfo::ret_type_mentions(const char* ident) const {
  return std::any_of(ret_type.begin(), ret_type.end(),
                     [&](const std::string& s) { return s == ident; });
}

// ----------------------------------------------------- function extraction

namespace {

/// Parses one parameter declaration (token range) into type text + name.
[[nodiscard]] Param parse_param(const Tokens& t, std::size_t from,
                                std::size_t to) {
  // Strip a default argument.
  for (std::size_t j = from; j < to; ++j) {
    if (t[j].punct("=")) {
      to = j;
      break;
    }
    if (t[j].punct("(") || t[j].punct("[") || t[j].punct("<")) break;
  }
  Param p;
  std::size_t last_ident = to;
  for (std::size_t j = from; j < to; ++j)
    if (t[j].kind == Tok::kIdent) last_ident = j;
  // The trailing identifier is the name iff it is not the only token of a
  // type-only (unnamed) parameter and is not a template argument.
  const bool named =
      last_ident < to && last_ident > from &&
      (last_ident + 1 == to || t[last_ident + 1].punct("[")) &&
      !t[last_ident - 1].punct("<") && !t[last_ident - 1].punct("::") &&
      !t[last_ident - 1].punct(",");
  const std::size_t type_end = named ? last_ident : to;
  for (std::size_t j = from; j < type_end; ++j) {
    if (!p.type.empty()) p.type += ' ';
    p.type += t[j].text;
  }
  if (named) p.name = t[last_ident].text;
  return p;
}

}  // namespace

std::vector<FuncInfo> extract_functions(const SourceFile& f) {
  const Tokens& t = f.lex.tokens;
  std::vector<FuncInfo> out;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent || !t[i + 1].punct("(")) continue;
    if (control_keywords().count(t[i].text) != 0) continue;
    const std::size_t params_close = match_bracket(t, i + 1);
    if (params_close >= t.size()) continue;

    // Scan past trailing qualifiers / trailing return / ctor init list for
    // the body '{'. Anything outside the expected shapes means this was a
    // call or declaration, not a definition.
    std::size_t j = params_close + 1;
    bool body_found = false;
    std::size_t body_open = 0;
    bool failed = false;
    while (j < t.size() && !body_found && !failed) {
      const Token& tok = t[j];
      if (tok.punct(";") || tok.punct(")") || tok.punct(",") ||
          tok.punct("=")) {
        failed = true;
        break;
      }
      if (tok.punct("{")) {
        body_found = true;
        body_open = j;
        break;
      }
      if (tok.punct(":")) {
        // Constructor initializer list: `ident (args)` or `ident {args}`
        // entries separated by commas, then the body brace.
        ++j;
        for (;;) {
          while (j < t.size() &&
                 (t[j].kind == Tok::kIdent || t[j].punct("::")))
            ++j;
          if (j < t.size() && t[j].punct("<")) {
            const std::size_t past = skip_template(t, j, t.size());
            if (past == j) {
              failed = true;
              break;
            }
            j = past;
          }
          if (j >= t.size() ||
              !(t[j].punct("(") || t[j].punct("{"))) {
            failed = true;
            break;
          }
          const std::size_t close = match_bracket(t, j);
          if (close >= t.size()) {
            failed = true;
            break;
          }
          j = close + 1;
          if (j < t.size() && t[j].punct(",")) {
            ++j;
            continue;
          }
          if (j < t.size() && t[j].punct("{")) {
            body_found = true;
            body_open = j;
          } else {
            failed = true;
          }
          break;
        }
        break;
      }
      if (tok.ident("noexcept") && j + 1 < t.size() && t[j + 1].punct("(")) {
        const std::size_t close = match_bracket(t, j + 1);
        if (close >= t.size()) {
          failed = true;
          break;
        }
        j = close + 1;
        continue;
      }
      if (tok.kind == Tok::kIdent || tok.punct("&") || tok.punct("&&") ||
          tok.punct("->") || tok.punct("::") || tok.punct("<") ||
          tok.punct(">") || tok.punct("*")) {
        ++j;
        continue;
      }
      failed = true;
    }
    if (!body_found || failed) continue;
    const std::size_t body_close = match_bracket(t, body_open);
    if (body_close >= t.size()) continue;

    FuncInfo fn;
    fn.name = t[i].text;
    fn.body_open = body_open;
    fn.body_close = body_close;

    // Qualified names (`Class::method`, `Class::~Class`): the qualifier
    // belongs to the name, not the return type.
    std::size_t name_start = i;
    while (name_start >= 2 && t[name_start - 1].punct("::") &&
           t[name_start - 2].kind == Tok::kIdent)
      name_start -= 2;
    if (name_start >= 1 && t[name_start - 1].punct("~")) --name_start;
    for (std::size_t b = name_start; b-- > 0;) {
      const Token& tok = t[b];
      const bool type_like =
          (tok.kind == Tok::kIdent &&
           control_keywords().count(tok.text) == 0) ||
          is_type_punct(tok) || tok.punct("<") || tok.punct(">");
      if (!type_like || name_start - b > 12) break;
      fn.ret_type.insert(fn.ret_type.begin(), tok.text);
    }

    // Parameters: depth-0 comma split of (i+1, params_close).
    std::size_t field_begin = i + 2;
    int depth = 0;
    for (std::size_t q = i + 2; q <= params_close; ++q) {
      const bool at_end = q == params_close;
      if (!at_end && t[q].kind == Tok::kPunct) {
        const std::string& s = t[q].text;
        if (s == "(" || s == "[" || s == "{" || s == "<") ++depth;
        else if (s == ")" || s == "]" || s == "}" || s == ">") --depth;
      }
      if (at_end || (depth == 0 && t[q].punct(","))) {
        if (q > field_begin)
          fn.params.push_back(parse_param(t, field_begin, q));
        field_begin = q + 1;
      }
    }

    fn.body = parse_stmts(t, body_open + 1, body_close);
    out.push_back(std::move(fn));
    i = body_close;  // bodies do not nest; skipping avoids lambda misfires
  }
  return out;
}

}  // namespace bfc::analyze
