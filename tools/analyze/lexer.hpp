// Token-level C++ lexer for bfc-analyze. This is NOT a compiler frontend:
// it produces the token stream the project's rules need — identifiers,
// numbers, string/char literals, punctuation — with line/column positions,
// while routing comments into a per-line side table (suppression markers
// and `// seq_cst:` justifications live there). Matching on tokens instead
// of raw text is what kills the grep-era false positives: a `std::mutex`
// inside a comment or a string literal is not a finding.
//
// Deliberate simplifications (documented, not accidental): preprocessor
// directives are lexed like ordinary tokens (the rules anchor on call-shaped
// macro names, so that is what they want), and templates are not parsed —
// rules that need nesting walk the bracket structure themselves.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace bfc::analyze {

enum class Tok {
  kIdent,
  kNumber,
  kString,  // text = literal contents WITHOUT quotes, escapes unprocessed
  kChar,    // text = contents without quotes
  kPunct,
};

struct Token {
  Tok kind = Tok::kPunct;
  std::string text;
  int line = 1;
  int col = 1;

  [[nodiscard]] bool is(Tok k, const char* s) const {
    return kind == k && text == s;
  }
  [[nodiscard]] bool ident(const char* s) const { return is(Tok::kIdent, s); }
  [[nodiscard]] bool punct(const char* s) const { return is(Tok::kPunct, s); }
};

struct LexedFile {
  std::vector<Token> tokens;
  /// line -> all comment text that STARTS on that line (// and /* */),
  /// concatenated with a separating space.
  std::map<int, std::string> comments;
  /// Raw source lines, index = line - 1 (used for finding snippets).
  std::vector<std::string> lines;
  /// Lines that carry at least one non-comment token.
  std::set<int> code_lines;
};

/// Lexes a whole translation unit. Never throws on malformed input: an
/// unterminated literal is closed at end of file (the analyzer must degrade
/// gracefully on code it half-understands, not crash the lint gate).
[[nodiscard]] LexedFile lex(const std::string& source);

/// Index of the matching closer for the opener at `i` ('(', '[' or '{'),
/// or tokens.size() when unbalanced. Angle brackets are NOT bracketed —
/// this walks real bracket structure only.
[[nodiscard]] std::size_t match_bracket(const std::vector<Token>& tokens,
                                        std::size_t i);

}  // namespace bfc::analyze
