// Content-hash incremental cache for bfc-analyze. Rules are pure functions
// over one lexed file plus the shared registry, so per-file findings can be
// replayed verbatim as long as (a) the file's bytes are unchanged and (b) the
// tool itself — rule set, rule revision, registry — is unchanged. The cache
// stores findings WITHOUT fingerprints; fingerprints carry cross-file
// ordinals, so the engine recomputes them over the merged result list.
//
// Invalidation is deliberately coarse: one tool hash over every rule
// name/summary, a hand-bumped revision constant, and the registry contents.
// Any of those changing drops the whole cache — correctness over cleverness;
// a cold run is cheap enough, a stale finding replayed forever is not.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "registry.hpp"
#include "rules.hpp"

namespace bfc::analyze {

/// Bump whenever rule BEHAVIOR changes without a rule name/summary change,
/// so caches written by older binaries are not replayed.
inline constexpr int kCacheRevision = 1;

struct CacheEntry {
  std::string content_hash;        // hex64 fnv1a of the file's source lines
  std::vector<Finding> findings;   // fingerprint field left empty
};

struct CacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
};

struct Cache {
  std::string tool_hash;                    // hex64; "" = freshly created
  std::map<std::string, CacheEntry> files;  // keyed by repo-relative path

  /// Missing or unparseable file yields an empty cache (a cache must never
  /// turn into a hard error — worst case is a cold run).
  [[nodiscard]] static Cache load(const std::string& path);
  [[nodiscard]] static Cache parse(const std::string& json_text);

  [[nodiscard]] std::string render() const;
  /// Throws std::runtime_error when the file cannot be written.
  void save(const std::string& path) const;
};

/// Hex64 fnv1a over the file's raw source lines (joined with '\n').
[[nodiscard]] std::string content_hash(const LexedFile& lex);

/// Hex64 fnv1a over rule names + summaries, kCacheRevision, and the registry
/// entries (null registry hashes as a distinct marker).
[[nodiscard]] std::string compute_tool_hash(const Registry* registry);

/// Drop-in replacement for run_rules(): consults `cache` per file, replays
/// cached findings on content-hash hits, runs the full rule set on misses,
/// and updates `cache` in place so the caller can save() it. The tool-hash
/// check (clearing the cache wholesale on mismatch) happens here, not in
/// load(), so stats reflect what actually got skipped.
[[nodiscard]] std::vector<Finding> run_rules_cached(
    const std::vector<SourceFile>& files, const Registry* registry,
    Cache& cache, CacheStats& stats);

}  // namespace bfc::analyze
