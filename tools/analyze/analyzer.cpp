#include "analyzer.hpp"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "obs/json.hpp"

namespace bfc::analyze {
namespace {

namespace fs = std::filesystem;
using bfc::obs::Json;

[[nodiscard]] std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

[[nodiscard]] std::string hex64(std::uint64_t v) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[v & 0xF];
    v >>= 4;
  }
  return out;
}

[[nodiscard]] bool wanted_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

}  // namespace

Baseline Baseline::parse(const std::string& json_text) {
  Baseline b;
  const Json doc = Json::parse(json_text);
  const auto& obj = doc.as_object();
  const auto version = obj.find("version");
  if (version == obj.end() || version->second.as_int() != 1)
    throw std::runtime_error("baseline: unsupported version (want 1)");
  const auto findings = obj.find("findings");
  if (findings == obj.end()) return b;
  for (const Json& f : findings->second.as_array()) {
    const auto& fo = f.as_object();
    const auto fp = fo.find("fingerprint");
    if (fp == fo.end())
      throw std::runtime_error("baseline: finding without fingerprint");
    b.fingerprints.push_back(fp->second.as_string());
  }
  return b;
}

Baseline Baseline::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read baseline " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

std::vector<Finding> run_rules(const std::vector<SourceFile>& files,
                               const Registry* registry) {
  RuleContext ctx;
  ctx.registry = registry;
  for (const Rule& r : all_rules()) ctx.rule_names.emplace_back(r.name);

  std::vector<Finding> out;
  for (const SourceFile& f : files)
    for (const Rule& r : all_rules()) r.run(f, ctx, out);

  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.col, a.rule) <
           std::tie(b.file, b.line, b.col, b.rule);
  });
  fingerprint(out);
  return out;
}

std::vector<Finding> check_registry_documented(const Registry& registry,
                                               const std::string& docs_blob) {
  std::vector<Finding> out;
  for (const RegistryEntry& e : registry.entries) {
    if (e.kind == "tag") continue;  // tag keys are documented via span tables
    std::string needle = e.name;
    if (!needle.empty() && needle.back() == '.') needle.pop_back();
    if (docs_blob.find(needle) != std::string::npos) continue;
    out.push_back(Finding{
        "metric-registry", registry.path, e.line, 1,
        "registry " + e.kind + " '" + e.name +
            "' is not mentioned anywhere under docs/; document it (operators "
            "discover telemetry through docs/telemetry.md, not the source)",
        e.kind + " " + e.name, ""});
  }
  fingerprint(out);
  return out;
}

void fingerprint(std::vector<Finding>& findings) {
  std::map<std::string, int> ordinals;
  for (Finding& f : findings) {
    const std::string h =
        hex64(fnv1a(f.rule + "|" + f.file + "|" + f.snippet));
    const int ord = ordinals[h]++;
    f.fingerprint = h + ":" + std::to_string(ord);
  }
}

std::vector<Finding> diff_baseline(const std::vector<Finding>& findings,
                                   const Baseline& baseline) {
  std::map<std::string, int> waived;
  for (const std::string& fp : baseline.fingerprints) ++waived[fp];
  std::vector<Finding> fresh;
  for (const Finding& f : findings) {
    const auto it = waived.find(f.fingerprint);
    if (it != waived.end() && it->second > 0) {
      --it->second;
      continue;
    }
    fresh.push_back(f);
  }
  return fresh;
}

std::string render_text(const std::vector<Finding>& findings) {
  std::ostringstream out;
  for (const Finding& f : findings) {
    out << f.file << ":" << f.line << ":" << f.col << ": [" << f.rule << "] "
        << f.message << "\n";
    if (!f.snippet.empty()) out << "    " << f.snippet << "\n";
  }
  out << findings.size() << " finding" << (findings.size() == 1 ? "" : "s")
      << "\n";
  return out.str();
}

namespace {

[[nodiscard]] Json finding_json(const Finding& f) {
  Json j = Json::object();
  j["rule"] = f.rule;
  j["file"] = f.file;
  j["line"] = static_cast<std::int64_t>(f.line);
  j["col"] = static_cast<std::int64_t>(f.col);
  j["message"] = f.message;
  j["snippet"] = f.snippet;
  j["fingerprint"] = f.fingerprint;
  return j;
}

}  // namespace

std::string render_json(const std::vector<Finding>& findings) {
  Json doc = Json::object();
  doc["version"] = static_cast<std::int64_t>(1);
  doc["count"] = static_cast<std::int64_t>(findings.size());
  Json arr = Json::array();
  for (const Finding& f : findings) arr.push_back(finding_json(f));
  doc["findings"] = std::move(arr);
  return doc.dump(2) + "\n";
}

std::string render_sarif(const std::vector<Finding>& findings) {
  Json rules = Json::array();
  for (const Rule& r : all_rules()) {
    Json rj = Json::object();
    rj["id"] = std::string(r.name);
    Json desc = Json::object();
    desc["text"] = std::string(r.summary);
    rj["shortDescription"] = std::move(desc);
    rules.push_back(std::move(rj));
  }
  Json driver = Json::object();
  driver["name"] = "bfc-analyze";
  driver["informationUri"] =
      "https://example.invalid/bfc/docs/static-analysis.md";
  driver["rules"] = std::move(rules);
  Json tool = Json::object();
  tool["driver"] = std::move(driver);

  Json results = Json::array();
  for (const Finding& f : findings) {
    Json msg = Json::object();
    msg["text"] = f.message;
    Json artifact = Json::object();
    artifact["uri"] = f.file;
    Json region = Json::object();
    region["startLine"] = static_cast<std::int64_t>(f.line);
    region["startColumn"] = static_cast<std::int64_t>(f.col);
    if (!f.snippet.empty()) {
      Json snip = Json::object();
      snip["text"] = f.snippet;
      region["snippet"] = std::move(snip);
    }
    Json physical = Json::object();
    physical["artifactLocation"] = std::move(artifact);
    physical["region"] = std::move(region);
    Json location = Json::object();
    location["physicalLocation"] = std::move(physical);
    Json locations = Json::array();
    locations.push_back(std::move(location));
    Json fps = Json::object();
    fps["bfcAnalyze/v1"] = f.fingerprint;
    Json result = Json::object();
    result["ruleId"] = f.rule;
    result["level"] = "error";
    result["message"] = std::move(msg);
    result["locations"] = std::move(locations);
    result["partialFingerprints"] = std::move(fps);
    results.push_back(std::move(result));
  }
  Json run = Json::object();
  run["tool"] = std::move(tool);
  run["results"] = std::move(results);
  Json runs = Json::array();
  runs.push_back(std::move(run));
  Json doc = Json::object();
  doc["$schema"] =
      "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
      "Schemata/sarif-schema-2.1.0.json";
  doc["version"] = "2.1.0";
  doc["runs"] = std::move(runs);
  return doc.dump(2) + "\n";
}

std::string render_baseline(const std::vector<Finding>& findings) {
  Json doc = Json::object();
  doc["version"] = static_cast<std::int64_t>(1);
  Json arr = Json::array();
  for (const Finding& f : findings) {
    Json j = Json::object();
    j["rule"] = f.rule;
    j["file"] = f.file;
    j["fingerprint"] = f.fingerprint;
    j["line"] = static_cast<std::int64_t>(f.line);
    j["snippet"] = f.snippet;
    arr.push_back(std::move(j));
  }
  doc["findings"] = std::move(arr);
  return doc.dump(2) + "\n";
}

std::vector<SourceFile> load_tree(const std::string& root,
                                  const std::vector<std::string>& paths) {
  std::vector<std::string> rel_files;
  const fs::path base(root);
  for (const std::string& p : paths) {
    const fs::path full = base / p;
    if (fs::is_regular_file(full)) {
      rel_files.push_back(p);
      continue;
    }
    if (!fs::is_directory(full))
      throw std::runtime_error("no such path under root: " + p);
    for (const auto& entry : fs::recursive_directory_iterator(full)) {
      if (!entry.is_regular_file() || !wanted_extension(entry.path()))
        continue;
      rel_files.push_back(
          fs::relative(entry.path(), base).generic_string());
    }
  }
  std::sort(rel_files.begin(), rel_files.end());
  rel_files.erase(std::unique(rel_files.begin(), rel_files.end()),
                  rel_files.end());
  std::vector<SourceFile> out;
  out.reserve(rel_files.size());
  for (const std::string& rel : rel_files)
    out.push_back(SourceFile::from_disk((base / rel).string(), rel));
  return out;
}

}  // namespace bfc::analyze
