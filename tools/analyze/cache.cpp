#include "cache.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "analyzer.hpp"  // fingerprint()
#include "obs/json.hpp"

namespace bfc::analyze {
namespace {

using bfc::obs::Json;

[[nodiscard]] std::uint64_t fnv1a_init() { return 1469598103934665603ULL; }

void fnv1a_feed(std::uint64_t& h, const std::string& s) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  // Separator byte so {"ab","c"} and {"a","bc"} hash differently.
  h ^= 0xFFU;
  h *= 1099511628211ULL;
}

[[nodiscard]] std::string hex64(std::uint64_t v) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[v & 0xF];
    v >>= 4;
  }
  return out;
}

[[nodiscard]] Json finding_to_json(const Finding& f) {
  Json j = Json::object();
  j["rule"] = f.rule;
  j["line"] = static_cast<std::int64_t>(f.line);
  j["col"] = static_cast<std::int64_t>(f.col);
  j["message"] = f.message;
  j["snippet"] = f.snippet;
  return j;
}

[[nodiscard]] Finding finding_from_json(const Json& j,
                                        const std::string& file) {
  const auto& o = j.as_object();
  Finding f;
  f.file = file;
  const auto get = [&o](const char* key) -> const Json& {
    const auto it = o.find(key);
    if (it == o.end())
      throw std::runtime_error(std::string("cache finding missing ") + key);
    return it->second;
  };
  f.rule = get("rule").as_string();
  f.line = static_cast<int>(get("line").as_int());
  f.col = static_cast<int>(get("col").as_int());
  f.message = get("message").as_string();
  f.snippet = get("snippet").as_string();
  return f;
}

}  // namespace

Cache Cache::parse(const std::string& json_text) {
  Cache c;
  const Json doc = Json::parse(json_text);
  const auto& obj = doc.as_object();
  const auto version = obj.find("version");
  if (version == obj.end() || version->second.as_int() != 1)
    throw std::runtime_error("cache: unsupported version (want 1)");
  const auto tool = obj.find("tool");
  if (tool != obj.end()) c.tool_hash = tool->second.as_string();
  const auto files = obj.find("files");
  if (files == obj.end()) return c;
  for (const Json& fj : files->second.as_array()) {
    const auto& fo = fj.as_object();
    const auto path = fo.find("path");
    const auto hash = fo.find("hash");
    if (path == fo.end() || hash == fo.end())
      throw std::runtime_error("cache: file entry missing path/hash");
    CacheEntry entry;
    entry.content_hash = hash->second.as_string();
    const auto findings = fo.find("findings");
    if (findings != fo.end())
      for (const Json& j : findings->second.as_array())
        entry.findings.push_back(
            finding_from_json(j, path->second.as_string()));
    c.files[path->second.as_string()] = std::move(entry);
  }
  return c;
}

Cache Cache::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Cache{};
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    return parse(buf.str());
  } catch (const std::exception&) {
    return Cache{};  // corrupt cache = cold run, never an error
  }
}

std::string Cache::render() const {
  Json doc = Json::object();
  doc["version"] = static_cast<std::int64_t>(1);
  doc["tool"] = tool_hash;
  Json arr = Json::array();
  for (const auto& [path, entry] : files) {
    Json fj = Json::object();
    fj["path"] = path;
    fj["hash"] = entry.content_hash;
    Json findings = Json::array();
    for (const Finding& f : entry.findings)
      findings.push_back(finding_to_json(f));
    fj["findings"] = std::move(findings);
    arr.push_back(std::move(fj));
  }
  doc["files"] = std::move(arr);
  return doc.dump(2) + "\n";
}

void Cache::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write cache " + path);
  out << render();
}

std::string content_hash(const LexedFile& lex) {
  std::uint64_t h = fnv1a_init();
  for (const std::string& line : lex.lines) fnv1a_feed(h, line);
  return hex64(h);
}

std::string compute_tool_hash(const Registry* registry) {
  std::uint64_t h = fnv1a_init();
  fnv1a_feed(h, "bfc-analyze-cache-rev-" + std::to_string(kCacheRevision));
  for (const Rule& r : all_rules()) {
    fnv1a_feed(h, r.name);
    fnv1a_feed(h, r.summary);
  }
  if (registry == nullptr) {
    fnv1a_feed(h, "<no-registry>");
  } else {
    for (const RegistryEntry& e : registry->entries) {
      fnv1a_feed(h, e.kind);
      fnv1a_feed(h, e.name);
    }
  }
  return hex64(h);
}

std::vector<Finding> run_rules_cached(const std::vector<SourceFile>& files,
                                      const Registry* registry, Cache& cache,
                                      CacheStats& stats) {
  const std::string tool = compute_tool_hash(registry);
  if (cache.tool_hash != tool) {
    cache.files.clear();
    cache.tool_hash = tool;
  }

  RuleContext ctx;
  ctx.registry = registry;
  for (const Rule& r : all_rules()) ctx.rule_names.emplace_back(r.name);

  std::vector<Finding> out;
  for (const SourceFile& f : files) {
    const std::string hash = content_hash(f.lex);
    const auto it = cache.files.find(f.path);
    if (it != cache.files.end() && it->second.content_hash == hash) {
      ++stats.hits;
      out.insert(out.end(), it->second.findings.begin(),
                 it->second.findings.end());
      continue;
    }
    ++stats.misses;
    std::vector<Finding> fresh;
    for (const Rule& r : all_rules()) r.run(f, ctx, fresh);
    out.insert(out.end(), fresh.begin(), fresh.end());
    CacheEntry entry;
    entry.content_hash = hash;
    entry.findings = std::move(fresh);
    cache.files[f.path] = std::move(entry);
  }
  // Entries are merged in place, never pruned: a subset run (CI analyzing
  // only the files changed since the merge base) must not evict the rest
  // of the tree. Entries for deleted files are harmless — lookups are
  // keyed by path + content hash, and the tool hash bounds their lifetime.

  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.col, a.rule) <
           std::tie(b.file, b.line, b.col, b.rule);
  });
  fingerprint(out);
  return out;
}

}  // namespace bfc::analyze
