// A lexed source file plus the project-rule metadata the engine layers on
// top of the raw token stream: per-line suppression markers and snippet
// extraction for findings/baselines.
//
// Suppression syntax (documented in docs/static-analysis.md):
//
//   // bfc-analyze: <rule>-ok <why>
//
// The rationale is MANDATORY — a bare marker does not suppress and instead
// surfaces as a `suppression` finding, so "I silenced the tool" always
// carries a reviewable sentence of justification. A marker on a line of its
// own applies to the next code line (clang-tidy NOLINTNEXTLINE style).
//
// Two legacy spellings from the grep-era lint rules keep working so the
// migration does not churn every historical call site:
//   // bfc-lint: raw-sync-ok            (suppresses rule raw-sync)
//   // seq_cst: <why>                   (suppresses rule seq-cst)
#pragma once

#include <string>
#include <vector>

#include "lexer.hpp"

namespace bfc::analyze {

struct Suppression {
  std::string rule;
  std::string why;  // empty = malformed marker (does not suppress)
  int line = 0;
  bool legacy = false;
  mutable bool used = false;  // for unused-suppression reporting
};

struct SourceFile {
  std::string path;  // repo-relative, '/'-separated — what findings report
  LexedFile lex;
  std::vector<Suppression> suppressions;

  [[nodiscard]] static SourceFile from_string(std::string path,
                                              const std::string& content);
  /// Throws std::runtime_error when the file cannot be read.
  [[nodiscard]] static SourceFile from_disk(const std::string& abs_path,
                                            std::string rel_path);

  [[nodiscard]] bool line_has_code(int line) const {
    return lex.code_lines.count(line) != 0;
  }
  /// Trimmed, whitespace-collapsed source line (1-based); "" out of range.
  [[nodiscard]] std::string snippet(int line) const;

  /// True when a well-formed suppression for `rule` covers `line` — on the
  /// line itself or on a marker-only line directly above it.
  [[nodiscard]] bool suppressed(const std::string& rule, int line) const;

  /// True when the path starts with any of the given '/'-terminated-or-file
  /// prefixes ("src/svc/", "bench/serving.cpp").
  [[nodiscard]] bool under(std::initializer_list<const char*> prefixes) const;
};

}  // namespace bfc::analyze
