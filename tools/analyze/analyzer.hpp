// The engine: file discovery, rule dispatch, content-based fingerprints,
// baseline load/diff/write, and the three output formats (text, JSON,
// SARIF 2.1.0). main.cpp is a thin CLI over this so tests/test_analyze.cpp
// can drive everything in-process on string fixtures.
#pragma once

#include <string>
#include <vector>

#include "model.hpp"
#include "registry.hpp"
#include "rules.hpp"

namespace bfc::analyze {

struct Baseline {
  /// fingerprint -> accepted count (a multiset: N known findings with the
  /// same fingerprint waive exactly N occurrences).
  std::vector<std::string> fingerprints;

  [[nodiscard]] static Baseline parse(const std::string& json_text);
  [[nodiscard]] static Baseline load(const std::string& path);
};

/// Runs every rule over `files`, fingerprints the findings, and sorts them
/// (file, line, col, rule). `registry` may be null.
[[nodiscard]] std::vector<Finding> run_rules(
    const std::vector<SourceFile>& files, const Registry* registry);

/// Registry-vs-docs consistency: every metric/span entry's literal text must
/// appear somewhere under the docs tree, so the registry cannot grow names
/// the operator documentation never explains. `docs_blob` is the
/// concatenated content of all docs files.
[[nodiscard]] std::vector<Finding> check_registry_documented(
    const Registry& registry, const std::string& docs_blob);

/// Fills `fingerprint` on each finding: fnv1a(rule|file|snippet) in hex plus
/// an ordinal among same-hash findings, so baselines survive line shifts but
/// a SECOND identical violation in the same file is still new.
void fingerprint(std::vector<Finding>& findings);

/// Findings whose fingerprints are not covered by the baseline multiset.
[[nodiscard]] std::vector<Finding> diff_baseline(
    const std::vector<Finding>& findings, const Baseline& baseline);

[[nodiscard]] std::string render_text(const std::vector<Finding>& findings);
[[nodiscard]] std::string render_json(const std::vector<Finding>& findings);
[[nodiscard]] std::string render_sarif(const std::vector<Finding>& findings);
/// The checked-in baseline format (version 1), also valid --format=json
/// input for humans diffing it.
[[nodiscard]] std::string render_baseline(
    const std::vector<Finding>& findings);

/// Recursively collects *.cpp / *.hpp / *.h under root/<path> for each path,
/// lexes them, and returns them sorted by repo-relative path.
[[nodiscard]] std::vector<SourceFile> load_tree(
    const std::string& root, const std::vector<std::string>& paths);

}  // namespace bfc::analyze
