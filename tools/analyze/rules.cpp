#include "rules.hpp"

#include <algorithm>
#include <cctype>
#include <set>

namespace bfc::analyze {
namespace {

using Tokens = std::vector<Token>;

[[nodiscard]] std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

[[nodiscard]] bool is_countish_name(const std::string& ident) {
  const std::string l = lower(ident);
  return l.find("butterfl") != std::string::npos ||
         l.find("wedge") != std::string::npos;
}

[[nodiscard]] bool starts_with(const std::string& s, const char* prefix) {
  return s.compare(0, std::string(prefix).size(), prefix) == 0;
}

[[nodiscard]] bool is_metric_ns(const std::string& s) {
  return starts_with(s, "svc.") || starts_with(s, "obs.") ||
         starts_with(s, "chk.");
}

/// Skips a chain of subscripts after the token at `i` (which indexes the
/// identifier); returns the index of the first token past the chain.
[[nodiscard]] std::size_t skip_subscripts(const Tokens& t, std::size_t i) {
  std::size_t j = i + 1;
  while (j < t.size() && t[j].punct("[")) {
    const std::size_t close = match_bracket(t, j);
    if (close >= t.size()) return t.size();
    j = close + 1;
  }
  return j;
}

// ---------------------------------------------------------------- raw-sync

/// std:: synchronisation primitives outside the annotated wrapper layer.
/// Promotes lint.sh rule C from grep to tokens: matches the real qualified
/// name, so comments, strings, and bfc::Mutex never fire.
void rule_raw_sync(const SourceFile& f, const RuleContext&,
                   std::vector<Finding>& out) {
  if (!f.under({"src/"})) return;
  if (f.path == "src/util/sync.hpp") return;  // the wrapper layer itself
  static const std::set<std::string> kPrimitives = {
      "mutex",          "shared_mutex",     "recursive_mutex",
      "timed_mutex",    "condition_variable",
      "condition_variable_any",             "scoped_lock",
      "lock_guard",     "unique_lock",      "shared_lock",
  };
  const Tokens& t = f.lex.tokens;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (!t[i].ident("std") || !t[i + 1].punct("::")) continue;
    if (t[i + 2].kind != Tok::kIdent || kPrimitives.count(t[i + 2].text) == 0)
      continue;
    emit(f, "raw-sync", t[i],
         "raw std::" + t[i + 2].text +
             "; use the annotated wrappers in util/sync.hpp (bfc::Mutex, "
             "bfc::MutexLock, ...) so clang TSA sees the lock graph",
         out);
  }
}

// ----------------------------------------------------------------- seq-cst

/// Atomic operations on hot-path files must spell the memory order.
/// Promotes lint.sh rule D: instead of grepping lines, walk the argument
/// list of each atomic member call and look for a memory_order argument.
void rule_seq_cst(const SourceFile& f, const RuleContext&,
                  std::vector<Finding>& out) {
  if (!f.under({"src/obs/", "src/svc/", "src/shard/", "bench/serving.cpp"}))
    return;
  static const std::set<std::string> kOps = {
      "load",      "store",     "exchange",
      "fetch_add", "fetch_sub", "fetch_and",
      "fetch_or",  "fetch_xor", "compare_exchange_weak",
      "compare_exchange_strong",
  };
  const Tokens& t = f.lex.tokens;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (!(t[i].punct(".") || t[i].punct("->"))) continue;
    if (t[i + 1].kind != Tok::kIdent || kOps.count(t[i + 1].text) == 0)
      continue;
    if (!t[i + 2].punct("(")) continue;
    const std::size_t close = match_bracket(t, i + 2);
    if (close >= t.size()) continue;
    // Every atomic op except load() takes at least one argument; an empty
    // call like `handle->store()` is some other class's accessor.
    if (close == i + 3 && t[i + 1].text != "load") continue;
    bool has_order = false;
    for (std::size_t j = i + 3; j < close; ++j) {
      if (t[j].kind == Tok::kIdent &&
          (starts_with(t[j].text, "memory_order") || t[j].text == "order")) {
        has_order = true;
        break;
      }
    }
    if (has_order) continue;
    // The justification comment may sit on the line of the call OR on the
    // line of the closing paren of a multi-line call.
    if (f.suppressed("seq-cst", t[i + 1].line) ||
        f.suppressed("seq-cst", t[close].line))
      continue;
    emit(f, "seq-cst", t[i + 1],
         "atomic ." + t[i + 1].text +
             "() without an explicit memory order on a hot path; spell the "
             "order (or justify seq_cst in a suppression)",
         out);
  }
}

// ------------------------------------------------------ checked-accumulation

/// Butterfly/wedge count accumulation must run through chk::checked_* so the
/// BFC_CHECKED build traps overflow. Targets: identifiers declared count_t
/// in this file, plus anything whose name says butterfly/wedge. ++/-- stay
/// legal (steps of 1 cannot overflow a count that fit memory).
void rule_checked_accumulation(const SourceFile& f, const RuleContext&,
                               std::vector<Finding>& out) {
  if (f.under({"src/obs/", "src/util/", "src/chk/"})) return;
  const Tokens& t = f.lex.tokens;

  std::set<std::string> declared;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!t[i].ident("count_t")) continue;
    std::size_t j = i + 1;
    if (t[j].punct("&") || t[j].punct("*")) continue;  // alias/pointer decl
    if (t[j].kind != Tok::kIdent) continue;
    if (j + 1 < t.size() && t[j + 1].punct("(")) continue;  // function decl
    declared.insert(t[j].text);
  }

  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent) continue;
    const bool by_name = is_countish_name(t[i].text);
    const bool by_decl = declared.count(t[i].text) != 0;
    if (!by_name && !by_decl) continue;
    // A declared-set match must be a plain local use, not a member of some
    // other object; name-based matches fire through member access too.
    if (!by_name && i > 0 &&
        (t[i - 1].punct(".") || t[i - 1].punct("->") || t[i - 1].punct("::")))
      continue;
    const std::size_t op_at = skip_subscripts(t, i);
    if (op_at >= t.size() || t[op_at].kind != Tok::kPunct) continue;
    const std::string& op = t[op_at].text;

    if (op == "+=" || op == "-=" || op == "*=") {
      emit(f, "checked-accumulation", t[i],
           "raw " + op + " on count accumulator '" + t[i].text +
               "'; use chk::checked_add/checked_mul so BFC_CHECKED traps "
               "overflow (see chk/checked_math.hpp)",
           out);
      continue;
    }
    if (op != "=") continue;
    // `x = <expr>`: fine when the RHS goes through chk::; flagged when it
    // re-accumulates x itself with raw +/-/* at expression depth 0.
    std::size_t j = op_at + 1;
    if (j + 1 < t.size() && t[j].ident("chk") && t[j + 1].punct("::")) continue;
    if (j < t.size() && t[j].kind == Tok::kIdent &&
        starts_with(t[j].text, "checked_"))
      continue;
    bool rhs_self = false;
    bool rhs_raw_op = false;
    int depth = 0;
    for (; j < t.size(); ++j) {
      if (t[j].kind == Tok::kPunct) {
        const std::string& p = t[j].text;
        if (p == "(" || p == "[" || p == "{") ++depth;
        else if (p == ")" || p == "]" || p == "}") {
          if (--depth < 0) break;
        } else if (depth == 0 && (p == ";" || p == ",")) {
          break;
        } else if (depth == 0 && (p == "+" || p == "-" || p == "*")) {
          rhs_raw_op = true;
        }
      } else if (t[j].kind == Tok::kIdent && t[j].text == t[i].text) {
        rhs_self = true;
      }
    }
    if (rhs_self && rhs_raw_op) {
      emit(f, "checked-accumulation", t[i],
           "raw arithmetic re-accumulates count '" + t[i].text +
               "'; route through chk::checked_* (chk/checked_math.hpp)",
           out);
    }
  }
}

// ---------------------------------------------------------- epoch-discipline

/// Snapshot/shard-view lifetime and cache-keying. Two shapes:
///  (a) `.get()` on a SnapshotPtr/ShardViewPtr-typed name — the raw pointer
///      outlives nothing; keep the shared_ptr (PR 7's restore bug).
///  (b) a CacheKey aggregate-init whose FIRST field carries no epoch /
///      signature / version component — such entries survive publishes and
///      serve stale counts.
void rule_epoch_discipline(const SourceFile& f, const RuleContext&,
                           std::vector<Finding>& out) {
  if (!f.under({"src/svc/", "src/shard/", "bench/", "examples/"})) return;
  const Tokens& t = f.lex.tokens;

  std::set<std::string> ptr_names;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!(t[i].ident("SnapshotPtr") || t[i].ident("ShardViewPtr"))) continue;
    std::size_t j = i + 1;
    while (j < t.size() && (t[j].punct("&") || t[j].punct("*"))) ++j;
    if (j >= t.size() || t[j].kind != Tok::kIdent) continue;
    if (j + 1 < t.size() && t[j + 1].punct("(")) continue;  // function decl
    ptr_names.insert(t[j].text);
  }
  for (std::size_t i = 0; i + 4 < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent || ptr_names.count(t[i].text) == 0) continue;
    if (!(t[i + 1].punct(".") || t[i + 1].punct("->"))) continue;
    if (!t[i + 2].ident("get")) continue;
    if (!t[i + 3].punct("(") || !t[i + 4].punct(")")) continue;
    emit(f, "epoch-discipline", t[i],
         "raw .get() escapes the lifetime of snapshot/view '" + t[i].text +
             "'; pass the shared_ptr (or a reference whose owner is pinned "
             "on this stack frame)",
         out);
  }

  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!t[i].ident("CacheKey")) continue;
    if (i > 0 && (t[i - 1].ident("struct") || t[i - 1].ident("class")))
      continue;  // the definition itself
    std::size_t open = i + 1;
    if (open < t.size() && t[open].kind == Tok::kIdent) ++open;  // `CacheKey k{`
    if (open >= t.size() || !t[open].punct("{")) continue;
    const std::size_t close = match_bracket(t, open);
    if (close >= t.size()) continue;
    bool keyed = false;
    bool empty = true;
    int depth = 0;
    for (std::size_t j = open + 1; j < close; ++j) {
      if (t[j].kind == Tok::kPunct) {
        const std::string& p = t[j].text;
        if (p == "(" || p == "[" || p == "{") ++depth;
        else if (p == ")" || p == "]" || p == "}") --depth;
        else if (p == "," && depth == 0) break;  // end of first field
        continue;
      }
      empty = false;
      if (t[j].kind == Tok::kIdent) {
        const std::string l = lower(t[j].text);
        if (l.find("epoch") != std::string::npos ||
            l.find("sig") != std::string::npos ||
            l.find("version") != std::string::npos)
          keyed = true;
      }
    }
    if (empty || !keyed) {
      emit(f, "epoch-discipline", t[i],
           "CacheKey built without an epoch/signature/version in its leading "
           "field; entries would survive snapshot publishes and serve stale "
           "counts",
           out);
    }
  }
}

// ---------------------------------------------------- cancellation-checkpoint

/// A kernel that accepts a CancelToken and then never mentions it again can
/// neither checkpoint nor forward cancellation — long scans become
/// uncancellable exactly where the ROADMAP needs them cooperative.
void rule_cancellation_checkpoint(const SourceFile& f, const RuleContext&,
                                  std::vector<Finding>& out) {
  if (!f.under({"src/la/", "src/count/", "src/shard/", "src/svc/"})) return;
  const Tokens& t = f.lex.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!t[i].ident("CancelToken")) continue;
    std::size_t j = i + 1;
    while (j < t.size() && (t[j].punct("&") || t[j].punct("*"))) ++j;
    if (j >= t.size() || t[j].kind != Tok::kIdent) continue;
    const std::string param = t[j].text;
    // Make sure this is a parameter: the next structural token at depth 0
    // must be the `)` that closes a parameter list (a `;`/`{`/`}` first
    // means it was a local or member declaration instead).
    std::size_t k = j + 1;
    int depth = 0;
    bool is_param = false;
    for (; k < t.size(); ++k) {
      if (t[k].kind != Tok::kPunct) continue;
      const std::string& p = t[k].text;
      if (p == "(" || p == "[" || p == "{") {
        if (p == "{" && depth == 0) break;
        ++depth;
      } else if (p == "]" || p == "}") {
        --depth;
      } else if (p == ")") {
        if (depth == 0) {
          is_param = true;
          break;
        }
        --depth;
      } else if (depth == 0 && p == ";") {
        break;
      }
    }
    if (!is_param) continue;
    // Walk from the `)` to either `;` (pure declaration — fine) or the `{`
    // that opens the body.
    std::size_t body_open = t.size();
    for (std::size_t m = k + 1; m < t.size(); ++m) {
      if (t[m].punct(";")) break;
      if (t[m].punct("{")) {
        body_open = m;
        break;
      }
    }
    if (body_open >= t.size()) continue;
    const std::size_t body_close = match_bracket(t, body_open);
    bool consulted = false;
    for (std::size_t m = body_open + 1; m < body_close && m < t.size(); ++m) {
      if (t[m].kind == Tok::kIdent && t[m].text == param) {
        consulted = true;
        break;
      }
    }
    if (!consulted) {
      emit(f, "cancellation-checkpoint", t[j],
           "kernel accepts CancelToken '" + param +
               "' but the body never checkpoints or forwards it; call " +
               param + ".checkpoint(\"where\") inside the long loop",
           out);
    }
  }
}

// ------------------------------------------------------------ metric-registry

/// Every svc./obs./chk. metric literal handed to the metrics facade must
/// exist in tools/analyze/metrics.registry — the same file report_lint
/// checks OpenMetrics dumps against, so code, lint, and docs cannot drift
/// apart silently. Absorbs lint.sh rule E.
void rule_metric_registry(const SourceFile& f, const RuleContext& ctx,
                          std::vector<Finding>& out) {
  if (ctx.registry == nullptr) return;
  static const std::set<std::string> kMacros = {
      "BFC_COUNT_ADD", "BFC_GAUGE_SET", "BFC_HIST_OBSERVE"};
  static const std::set<std::string> kMethods = {"counter", "gauge",
                                                 "histogram"};
  const Tokens& t = f.lex.tokens;
  const auto check_first_arg = [&](std::size_t open) {
    const std::size_t close = match_bracket(t, open);
    if (close >= t.size()) return;
    int depth = 0;
    for (std::size_t j = open + 1; j < close; ++j) {
      if (t[j].kind == Tok::kPunct) {
        const std::string& p = t[j].text;
        if (p == "(" || p == "[" || p == "{") ++depth;
        else if (p == ")" || p == "]" || p == "}") --depth;
        else if (p == "," && depth == 0) break;  // first argument only
        continue;
      }
      if (t[j].kind != Tok::kString || !is_metric_ns(t[j].text)) continue;
      if (!ctx.registry->matches("metric", t[j].text)) {
        emit(f, "metric-registry", t[j],
             "metric literal \"" + t[j].text +
                 "\" is not declared in tools/analyze/metrics.registry; add "
                 "it there and document it in docs/telemetry.md",
             out);
      }
    }
  };
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind == Tok::kIdent && kMacros.count(t[i].text) != 0 &&
        t[i + 1].punct("(")) {
      check_first_arg(i + 1);
    } else if ((t[i].punct(".") || t[i].punct("->")) && i + 2 < t.size() &&
               t[i + 1].kind == Tok::kIdent &&
               kMethods.count(t[i + 1].text) != 0 && t[i + 2].punct("(")) {
      check_first_arg(i + 2);
    }
  }
}

// --------------------------------------------------------------- span-pairing

/// obs::Span stores the name POINTER (literal-lifetime contract) and tag
/// keys feed dashboards — both must be string literals, and namespaced
/// names must exist in the registry so span queries in report_lint keep
/// matching what the code emits.
void rule_span_pairing(const SourceFile& f, const RuleContext& ctx,
                       std::vector<Finding>& out) {
  if (f.path == "src/obs/spans.hpp" || f.path == "src/obs/spans.cpp") return;
  const Tokens& t = f.lex.tokens;

  /// Collects args [open+1, close); returns false when unbalanced.
  const auto span_args = [&](std::size_t open, std::size_t& close) {
    close = match_bracket(t, open);
    return close < t.size();
  };
  const auto args_have_ident = [&](std::size_t open, std::size_t close,
                                   std::initializer_list<const char*> names) {
    for (std::size_t j = open + 1; j < close; ++j) {
      if (t[j].kind != Tok::kIdent) continue;
      for (const char* n : names)
        if (t[j].text == n) return true;
    }
    return false;
  };
  const auto check_name_args = [&](std::size_t open, std::size_t close,
                                   const Token& at) {
    bool literal = false;
    for (std::size_t j = open + 1; j < close; ++j) {
      if (t[j].kind != Tok::kString) continue;
      literal = true;
      if (ctx.registry != nullptr && is_metric_ns(t[j].text) &&
          !ctx.registry->matches("span", t[j].text)) {
        emit(f, "span-pairing", t[j],
             "span name \"" + t[j].text +
                 "\" is not declared as a span in "
                 "tools/analyze/metrics.registry",
             out);
      }
    }
    if (!literal) {
      emit(f, "span-pairing", at,
           "span name must be a string literal: SpanRecord keeps the "
           "pointer, so a temporary name dangles after the call",
           out);
    }
  };

  for (std::size_t i = 0; i < t.size(); ++i) {
    // `Span sp(ctx, "name")`, `obs::Span(ctx, "name")`, `open_span(...)`.
    if (t[i].ident("Span") || t[i].ident("open_span")) {
      if (i > 0 && (t[i - 1].ident("class") || t[i - 1].ident("struct") ||
                    t[i - 1].punct("~") || t[i - 1].ident("explicit")))
        continue;
      std::size_t open = i + 1;
      if (t[i].text == "Span" && open < t.size() &&
          t[open].kind == Tok::kIdent)
        ++open;  // variable name between type and paren
      if (open >= t.size() || !t[open].punct("(")) continue;
      std::size_t close = 0;
      if (!span_args(open, close)) continue;
      // Declarations/definitions of span helpers mention parameter types.
      if (args_have_ident(open, close,
                          {"TraceContext", "string_view", "char"}))
        continue;
      check_name_args(open, close, t[i]);
      continue;
    }
    // `sp.tag("key", v)` / `sp->add_tag(...)` / free `span_tag(sp, "key", v)`.
    const bool member_tag =
        (t[i].punct(".") || t[i].punct("->")) && i + 2 < t.size() &&
        (t[i + 1].ident("tag") || t[i + 1].ident("add_tag")) &&
        t[i + 2].punct("(");
    const bool free_tag =
        t[i].ident("span_tag") && i + 1 < t.size() && t[i + 1].punct("(") &&
        (i == 0 || !t[i - 1].punct("."));
    if (!member_tag && !free_tag) continue;
    const std::size_t open = member_tag ? i + 2 : i + 1;
    std::size_t close = 0;
    if (!span_args(open, close)) continue;
    if (args_have_ident(open, close, {"TraceContext", "string_view", "char",
                                      "SpanPtr", "Span"}))
      continue;  // declaration, not a call
    const Token* key = nullptr;
    for (std::size_t j = open + 1; j < close; ++j) {
      if (t[j].kind == Tok::kString) {
        key = &t[j];
        break;
      }
    }
    if (key == nullptr) continue;  // dynamic key: allowed, values vary
    if (ctx.registry != nullptr && !ctx.registry->matches("tag", key->text)) {
      emit(f, "span-pairing", *key,
           "span tag key \"" + key->text +
               "\" is not declared as a tag in "
               "tools/analyze/metrics.registry",
           out);
    }
    i = close;
  }

  // BFC_TRACE_SCOPE names in the svc./obs./chk. namespaces are queried by
  // tooling as spans too — keep them in the registry.
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (!t[i].ident("BFC_TRACE_SCOPE") || !t[i + 1].punct("(")) continue;
    if (t[i + 2].kind != Tok::kString || !is_metric_ns(t[i + 2].text))
      continue;
    if (ctx.registry != nullptr &&
        !ctx.registry->matches("span", t[i + 2].text)) {
      emit(f, "span-pairing", t[i + 2],
           "trace scope \"" + t[i + 2].text +
               "\" is not declared as a span in "
               "tools/analyze/metrics.registry",
           out);
    }
  }
}

// ---------------------------------------------------------------- suppression

/// The meta-rule: a suppression that cannot work (no rationale, unknown rule
/// name, mangled spelling) must be a finding, not a silent no-op — otherwise
/// an author believes a violation is waived when it is not.
void rule_suppression(const SourceFile& f, const RuleContext& ctx,
                      std::vector<Finding>& out) {
  for (const auto& s : f.suppressions) {
    Token at;
    at.line = s.line;
    at.col = 1;
    if (s.rule.empty()) {
      out.push_back(Finding{"suppression", f.path, s.line, 1,
                            "empty bfc-analyze suppression marker",
                            f.snippet(s.line), ""});
      continue;
    }
    const bool known =
        std::find(ctx.rule_names.begin(), ctx.rule_names.end(), s.rule) !=
        ctx.rule_names.end();
    if (!known) {
      out.push_back(Finding{
          "suppression", f.path, s.line, 1,
          "suppression names unknown rule '" + s.rule +
              "' (run bfc-analyze --list-rules for the catalog)",
          f.snippet(s.line), ""});
    } else if (s.why.empty()) {
      out.push_back(Finding{
          "suppression", f.path, s.line, 1,
          "suppression for '" + s.rule +
              "' has no rationale; write WHY the violation is acceptable "
              "(// bfc-analyze: " +
              s.rule + "-ok <why>)",
          f.snippet(s.line), ""});
    }
  }
}

}  // namespace

void emit(const SourceFile& f, const char* rule, const Token& tok,
          std::string message, std::vector<Finding>& out) {
  if (f.suppressed(rule, tok.line)) return;
  out.push_back(Finding{rule, f.path, tok.line, tok.col, std::move(message),
                        f.snippet(tok.line), ""});
}

const std::vector<Rule>& all_rules() {
  static const std::vector<Rule> kRules = [] {
    std::vector<Rule> rules = {
      {"epoch-discipline",
       "snapshot/shard-view lifetime escapes and epoch-less cache keys",
       rule_epoch_discipline},
      {"checked-accumulation",
       "butterfly/wedge count math outside chk::checked_*",
       rule_checked_accumulation},
      {"raw-sync", "std sync primitives outside util/sync.hpp",
       rule_raw_sync},
      {"seq-cst", "atomic ops without explicit memory orders on hot paths",
       rule_seq_cst},
      {"cancellation-checkpoint",
       "kernels that accept a CancelToken and never consult it",
       rule_cancellation_checkpoint},
      {"metric-registry",
       "metric literals missing from tools/analyze/metrics.registry",
       rule_metric_registry},
      {"span-pairing",
       "span/tag literal lifetime and registry consistency",
       rule_span_pairing},
      {"suppression", "malformed or unknown suppression markers",
       rule_suppression},
    };
    // The flow-sensitive families (rules_flow.cpp) ride on the same
    // engine; keeping them in one registry means baselines, suppressions
    // and the suppression meta-rule see them like any other rule.
    for (Rule& r : flow_rules()) rules.push_back(std::move(r));
    return rules;
  }();
  return kRules;
}

}  // namespace bfc::analyze
