// The telemetry-name registry: the single source of truth for metric, span,
// and tag-key names shared by bfc-analyze (rule metric-registry / span-pairing)
// and bench/report_lint (--families). Format, one entry per line:
//
//   metric svc.cache.hits
//   metric svc.slo.violations.<kind>     # <seg> matches exactly one segment
//   metric svc.latency_us.               # trailing '.' = dynamic prefix
//   span   svc.query.<kind>
//   tag    epoch
//
// '#' starts a comment; blank lines are ignored.
#pragma once

#include <string>
#include <vector>

namespace bfc::analyze {

struct RegistryEntry {
  std::string kind;  // "metric" | "span" | "tag"
  std::string name;
  int line = 0;  // in the registry file, for diagnostics
};

struct Registry {
  std::string path;  // as loaded, for diagnostics
  std::vector<RegistryEntry> entries;

  /// Parses the format above; malformed lines land in `errors` (line, text).
  [[nodiscard]] static Registry parse(std::string path,
                                      const std::string& content,
                                      std::vector<std::pair<int, std::string>>*
                                          errors = nullptr);
  /// Throws std::runtime_error when the file cannot be read.
  [[nodiscard]] static Registry load(const std::string& path);

  /// True when `literal` (as written in source, e.g. "svc.slo.violations.p99"
  /// or the dynamic prefix "svc.shard.") matches an entry of `kind`.
  /// Matching is segment-wise: `<x>` entry segments match any one literal
  /// segment; a literal ending in '.' is a prefix and matches when some
  /// entry extends it.
  [[nodiscard]] bool matches(const std::string& kind,
                             const std::string& literal) const;
};

/// Segment-wise match of one literal against one entry name; exposed for the
/// same logic to be reused by report_lint's family mangling tests.
[[nodiscard]] bool registry_name_matches(const std::string& entry,
                                         const std::string& literal);

}  // namespace bfc::analyze
