// The four flow-sensitive rule families, built on the flow layer
// (flow.hpp): lifetime-escape, fd-lifecycle, retry-idempotence and
// deadline-propagation. Each one encodes an invariant that a shipped bug
// actually violated (the PR 9 Cursor-over-temporary bugs, the call_host
// fd double-close, RemoteShard's retry/deadline contracts), as a
// branch/merge-approximating walk over each function body:
//
//  * lifetime-escape     a view type (string_view / span / wire::Cursor)
//                        must not be bound to the buffer of a temporary
//                        materialised at a call site, and a view over a
//                        local owner must not be returned or stored
//                        beyond the owner's scope.
//  * fd-lifecycle        an fd from socket()/open()/connect_unix() is an
//                        abstract value in {open, closed, sentinel};
//                        states merge at joins, catch handlers enter with
//                        the merge of states at every may-throw point in
//                        the try body. Close-on-closed, use-after-close
//                        and open-at-exit are findings.
//  * retry-idempotence   a retry loop (fall-through catch + backoff
//                        signal) may only wrap calls that are idempotent
//                        per the annotation table below; apply/persist/
//                        restore/publish stay single-attempt.
//  * deadline-propagation a function taking a Deadline/timeout parameter
//                        must thread it (or a value derived from it) into
//                        every blocking leg, and no blocking call may run
//                        while a MutexLock/WriterLock/SharedLock guard is
//                        live.
//
// All four are may-analyses over the region tree: evaluating both arms of
// every branch and merging errs on the loud side, and anything deliberate
// is silenced with a suppress-with-rationale marker at the call site.
#include <algorithm>
#include <cctype>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "flow.hpp"
#include "rules.hpp"

namespace bfc::analyze {
namespace {

using Tokens = std::vector<Token>;

[[nodiscard]] bool is_call_at(const Tokens& t, std::size_t i) {
  return i + 1 < t.size() && t[i].kind == Tok::kIdent && t[i + 1].punct("(");
}

[[nodiscard]] bool range_mentions(const Tokens& t, std::size_t a,
                                  std::size_t b, const std::string& name) {
  for (std::size_t i = a; i < b && i < t.size(); ++i)
    if (t[i].kind == Tok::kIdent && t[i].text == name) return true;
  return false;
}

[[nodiscard]] std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

[[nodiscard]] bool mentions_any(const std::string& type,
                                const std::set<std::string>& names) {
  std::size_t start = 0;
  while (start <= type.size()) {
    const std::size_t sp = type.find(' ', start);
    const std::string word =
        type.substr(start, sp == std::string::npos ? sp : sp - start);
    if (names.count(word) != 0) return true;
    if (sp == std::string::npos) break;
    start = sp + 1;
  }
  return false;
}

// ============================ lifetime-escape ============================

const std::set<std::string>& view_type_names() {
  static const std::set<std::string> k = {"string_view", "span", "Cursor"};
  return k;
}

const std::set<std::string>& owner_type_names() {
  static const std::set<std::string> k = {
      "string", "vector", "deque", "ostringstream", "stringstream",
      "istringstream", "Payload", "Frame"};
  return k;
}

/// Calls that return an OWNING object by value: binding a view straight to
/// one leaves the view pointing into a temporary that dies at the end of
/// the statement. The dominant idiom in this codebase is the opposite —
/// span-returning accessors over long-lived graph buffers (neighbors_*,
/// row, ...) — so the deny-list names the known owner-returners: the
/// std::string builders plus the wire/RPC entry points the shipped Cursor
/// bugs went through. Calls not listed are assumed view-safe.
const std::set<std::string>& owner_returning_calls() {
  static const std::set<std::string> k = {
      "rpc",       "call_host", "substr", "str",    "to_string",
      "serialize", "dump",      "render", "format", "join",
      "concat",    "string"};
  return k;
}

struct LifetimeScan {
  const SourceFile& f;
  const Tokens& t;
  std::vector<Finding>& out;
  std::map<std::string, std::string> local_type;  // locals + params
  std::set<std::string> owners;  // locals / by-value params with owning type
  std::map<std::string, std::string> view_over;  // view local -> owner local
  bool ret_view = false;

  [[nodiscard]] bool is_view_typed(const std::string& name) const {
    const auto it = local_type.find(name);
    return it != local_type.end() &&
           mentions_any(it->second, view_type_names());
  }

  /// Token index of a call materialising an owning temporary in [a, b),
  /// or t.size() when no owner-returning call occurs there.
  [[nodiscard]] std::size_t temp_call(std::size_t a, std::size_t b) const {
    for (std::size_t i = a; i < b; ++i) {
      if (!is_call_at(t, i)) continue;
      const std::string& callee = t[i].text;
      if (owner_returning_calls().count(callee) == 0) continue;
      const bool member =
          i >= 2 && (t[i - 1].punct(".") || t[i - 1].punct("->"));
      if (member) {
        const std::string recv =
            t[i - 2].kind == Tok::kIdent ? t[i - 2].text : "";
        // string_view::substr returns another view — only owner-typed (or
        // unknown) receivers materialise an owning temporary.
        if (!recv.empty() && is_view_typed(recv)) continue;
      }
      return i;
    }
    return t.size();
  }

  void handle_decl(const DeclInfo& d) {
    local_type[d.name] = d.type;
    const bool by_ref = d.type.find('&') != std::string::npos ||
                        d.type.find('*') != std::string::npos;
    if (!mentions_any(d.type, view_type_names())) {
      if (!by_ref && mentions_any(d.type, owner_type_names()))
        owners.insert(d.name);
      return;
    }
    if (d.init_begin >= d.init_end) return;
    const std::size_t bad = temp_call(d.init_begin, d.init_end);
    if (bad != t.size()) {
      emit(f, "lifetime-escape", t[bad],
           "view '" + d.name + "' is bound to the buffer of a temporary "
           "returned by '" + t[bad].text + "(...)'; the temporary dies at "
           "the end of this statement and the view dangles — bind the "
           "owning result to a named local first "
           "(docs/static-analysis.md#lifetime-escape)",
           out);
      return;
    }
    // No temporary: remember which local owner the view looks into, for
    // the return/store checks below.
    for (std::size_t i = d.init_begin; i < d.init_end; ++i) {
      if (t[i].kind != Tok::kIdent) continue;
      if (owners.count(t[i].text) != 0) {
        view_over[d.name] = t[i].text;
        break;
      }
      const auto it = view_over.find(t[i].text);
      if (it != view_over.end()) {
        view_over[d.name] = it->second;
        break;
      }
    }
  }

  void handle_assign(const Stmt& s) {
    // Exact shape `LHS = V ;` with V a view over a local: storing it into
    // anything that is not itself a local outlives the owner.
    if (s.end - s.begin != 4 || t[s.begin].kind != Tok::kIdent ||
        !t[s.begin + 1].punct("=") || t[s.begin + 2].kind != Tok::kIdent)
      return;
    const std::string& lhs = t[s.begin].text;
    const std::string& rhs = t[s.begin + 2].text;
    const auto it = view_over.find(rhs);
    if (it == view_over.end() || local_type.count(lhs) != 0) return;
    emit(f, "lifetime-escape", t[s.begin],
         "view '" + rhs + "' over local '" + it->second + "' is stored "
         "into '" + lhs + "', which outlives this scope — the view "
         "dangles once '" + it->second + "' is destroyed "
         "(docs/static-analysis.md#lifetime-escape)",
         out);
  }

  void handle_return(const Stmt& s) {
    if (!ret_view) return;
    std::size_t a = s.begin + 1;
    std::size_t b = s.end;
    if (b > a && t[b - 1].punct(";")) --b;
    if (b <= a) return;
    if (b - a == 1 && t[a].kind == Tok::kIdent) {
      const std::string& x = t[a].text;
      if (owners.count(x) != 0) {
        emit(f, "lifetime-escape", t[a],
             "returning a view implicitly constructed from local owner '" +
                 x + "'; its buffer is destroyed when the function returns "
                 "(docs/static-analysis.md#lifetime-escape)",
             out);
      } else if (view_over.count(x) != 0) {
        emit(f, "lifetime-escape", t[a],
             "returning view '" + x + "', which is bound to local '" +
                 view_over[x] + "'; the owner is destroyed when the "
                 "function returns (docs/static-analysis.md#lifetime-escape)",
             out);
      }
      return;
    }
    // `return owner.method(...)` — any method on a dying local owner.
    if (t[a].kind == Tok::kIdent && owners.count(t[a].text) != 0 &&
        a + 2 < b && (t[a + 1].punct(".") || t[a + 1].punct("->")) &&
        is_call_at(t, a + 2)) {
      emit(f, "lifetime-escape", t[a],
           "returning a view derived from local owner '" + t[a].text +
               "' via '" + t[a + 2].text + "(...)'; the owner is destroyed "
               "when the function returns "
               "(docs/static-analysis.md#lifetime-escape)",
           out);
    }
  }

  void walk(const std::vector<Stmt>& ss) {
    for (const Stmt& s : ss) {
      switch (s.kind) {
        case Stmt::Kind::kSimple:
          if (const auto d = parse_decl(t, s.begin, s.end)) handle_decl(*d);
          else handle_assign(s);
          break;
        case Stmt::Kind::kReturn:
          handle_return(s);
          break;
        default:
          walk(s.blocks);
          break;
      }
    }
  }
};

void run_lifetime_escape(const SourceFile& f, const RuleContext&,
                         std::vector<Finding>& out) {
  for (const FuncInfo& fn : extract_functions(f)) {
    LifetimeScan scan{f, f.lex.tokens, out, {}, {}, {}, false};
    scan.ret_view = fn.ret_type_mentions("string_view") ||
                    fn.ret_type_mentions("span") ||
                    fn.ret_type_mentions("Cursor");
    for (const Param& p : fn.params) {
      if (p.name.empty()) continue;
      scan.local_type[p.name] = p.type;
      const bool by_value = p.type.find('&') == std::string::npos &&
                            p.type.find('*') == std::string::npos;
      if (by_value && mentions_any(p.type, owner_type_names()))
        scan.owners.insert(p.name);
    }
    scan.walk(fn.body);
  }
}

// ============================= fd-lifecycle ==============================

enum : unsigned { kOpen = 1u, kClosed = 2u, kNull = 4u };

struct FdVar {
  unsigned mask = 0;
  std::size_t origin = 0;  // token index of the creating call / sentinel
};

struct FdState {
  std::map<std::string, FdVar> vars;
  bool live = true;
};

[[nodiscard]] FdState dead_state() {
  FdState s;
  s.live = false;
  return s;
}

void join_into(FdState& a, const FdState& b) {
  if (!b.live) return;
  if (!a.live) {
    a = b;
    return;
  }
  for (const auto& [name, v] : b.vars) {
    auto it = a.vars.find(name);
    if (it == a.vars.end()) {
      a.vars[name] = v;
    } else {
      it->second.mask |= v.mask;
      if (it->second.origin == 0) it->second.origin = v.origin;
    }
  }
}

const std::set<std::string>& fd_creators() {
  static const std::set<std::string> k = {
      "socket",        "open",         "openat",       "creat",
      "accept",        "accept4",      "dup",          "eventfd",
      "epoll_create",  "epoll_create1", "memfd_create", "timerfd_create",
      "signalfd",      "inotify_init", "inotify_init1", "connect_unix",
      "listen_unix"};
  return k;
}

/// Calls that cannot throw — everything else inside a try body is a
/// may-throw point whose pre-state feeds the catch-entry merge.
const std::set<std::string>& nothrow_calls() {
  static const std::set<std::string> k = {
      "close",     "strerror", "memcpy",   "memmove",  "memset",
      "strncpy",   "strlen",   "snprintf", "unlink",   "kill",
      "waitpid",   "read",     "write",    "send",     "recv",
      "poll",      "fcntl",    "setsockopt", "getsockopt", "shutdown",
      "listen",    "bind",     "htons",    "htonl",    "ntohs",
      "ntohl",     "_exit",    "abort",    "exit",     "perror",
      "signal",    "sigaction", "free",    "move",     "data",
      "c_str",     "size",     "empty",    "begin",    "end",
      "count",     "fires",    "sizeof"};
  return k;
}

struct GuardTest {
  std::string var;
  bool null_if_true = false;
  bool ok = false;
};

struct FdMachine {
  const SourceFile& f;
  const Tokens& t;
  std::vector<Finding>& out;
  std::set<std::string> reported;

  std::vector<FdState*> break_tgt;
  std::vector<FdState*> continue_tgt;
  std::vector<FdState*> try_tgt;

  void report(const Token& tok, const std::string& key, std::string msg) {
    if (!reported
             .insert(key + "@" + std::to_string(tok.line) + ":" +
                     std::to_string(tok.col))
             .second)
      return;
    emit(f, "fd-lifecycle", tok, std::move(msg), out);
  }

  [[nodiscard]] bool may_throw(std::size_t a, std::size_t b) const {
    for (std::size_t i = a; i < b && i + 1 < t.size(); ++i)
      if (is_call_at(t, i) && nothrow_calls().count(t[i].text) == 0)
        return true;
    return false;
  }

  void merge_throw_if(std::size_t a, std::size_t b, const FdState& st) {
    if (!try_tgt.empty() && may_throw(a, b)) join_into(*try_tgt.back(), st);
  }

  /// `require(false, ...)`, `unavailable(...)`, `timed_out(...)`, _exit...
  [[nodiscard]] bool noreturn_stmt(std::size_t a, std::size_t b) const {
    std::size_t i = a;
    while (i < b) {
      if (t[i].punct("::")) {
        ++i;
        continue;
      }
      if (t[i].kind == Tok::kIdent && i + 1 < b && t[i + 1].punct("::")) {
        i += 2;
        continue;
      }
      break;
    }
    if (i >= b || !is_call_at(t, i)) return false;
    const std::string& s = t[i].text;
    if (s == "_exit" || s == "exit" || s == "abort" || s == "quick_exit" ||
        s == "terminate" || s == "unavailable" || s == "timed_out")
      return true;
    return s == "require" && i + 2 < b && t[i + 2].ident("false");
  }

  [[nodiscard]] std::size_t find_creator(std::size_t a, std::size_t b) const {
    for (std::size_t i = a; i < b && i + 1 < t.size(); ++i)
      if (is_call_at(t, i) && fd_creators().count(t[i].text) != 0) return i;
    return t.size();
  }

  [[nodiscard]] bool neg_literal(std::size_t a, std::size_t b) const {
    return b - a == 2 && t[a].punct("-") && t[a + 1].kind == Tok::kNumber;
  }

  [[nodiscard]] GuardTest parse_guard(std::size_t a, std::size_t b,
                                      const FdState& st) const {
    for (std::size_t i = a; i + 2 < b && i + 2 < t.size(); ++i) {
      if (t[i].kind != Tok::kIdent || st.vars.count(t[i].text) == 0) continue;
      if (t[i + 1].kind != Tok::kPunct) continue;
      const std::string& op = t[i + 1].text;
      long val = 0;
      bool have = false;
      if (t[i + 2].kind == Tok::kNumber) {
        val = std::stol(t[i + 2].text);
        have = true;
      } else if (i + 3 < b && t[i + 2].punct("-") &&
                 t[i + 3].kind == Tok::kNumber) {
        val = -std::stol(t[i + 3].text);
        have = true;
      }
      if (!have) continue;
      GuardTest g;
      g.var = t[i].text;
      g.ok = true;
      if ((op == "<" && val == 0) || (op == "<=" && val <= 0) ||
          (op == "==" && val == -1))
        g.null_if_true = true;
      else if ((op == ">=" && val == 0) || (op == "!=" && val == -1) ||
               (op == ">" && val <= 0))
        g.null_if_true = false;
      else
        continue;
      return g;
    }
    return {};
  }

  static void apply_guard(FdState& st, const GuardTest& g, bool branch) {
    const auto it = st.vars.find(g.var);
    if (it == st.vars.end()) return;
    if (g.null_if_true == branch)
      it->second.mask &= kNull;
    else
      it->second.mask &= ~kNull;
  }

  /// Mentioning a must-closed fd (outside the close itself, guards, and
  /// assignment targets) is a use-after-close.
  void use_check(std::size_t a, std::size_t b, FdState& st,
                 const std::set<std::string>& skip) {
    for (auto& [name, v] : st.vars) {
      if (v.mask != kClosed || skip.count(name) != 0) continue;
      for (std::size_t i = a; i < b && i < t.size(); ++i) {
        if (t[i].kind != Tok::kIdent || t[i].text != name) continue;
        report(t[i], "uaf|" + name,
               "fd '" + name + "' is used here but was closed on every "
               "path reaching this line (use after close) "
               "(docs/static-analysis.md#fd-lifecycle)");
        break;
      }
    }
  }

  void leak_check(const FdState& st, const Token& at, const char* why) {
    for (const auto& [name, v] : st.vars) {
      if ((v.mask & kOpen) == 0) continue;
      const int oline = v.origin < t.size() ? t[v.origin].line : at.line;
      report(at, "leak|" + name,
             "fd '" + name + "' (opened at line " + std::to_string(oline) +
                 ") is still open when this " + why + " executes — close "
                 "it on every path or transfer ownership explicitly "
                 "(docs/static-analysis.md#fd-lifecycle)");
    }
  }

  [[nodiscard]] bool infinite_loop(const Stmt& s) const {
    if (s.begin >= t.size()) return false;
    if (t[s.begin].ident("while"))
      return s.cond_end - s.cond_begin == 1 && t[s.cond_begin].ident("true");
    if (!t[s.begin].ident("for")) return false;
    // for(;;) or `for (init;; step)`: an empty middle section.
    int depth = 0;
    std::size_t first_semi = 0;
    for (std::size_t i = s.cond_begin; i < s.cond_end; ++i) {
      if (t[i].kind != Tok::kPunct) continue;
      const std::string& p = t[i].text;
      if (p == "(" || p == "[" || p == "{") ++depth;
      else if (p == ")" || p == "]" || p == "}") --depth;
      else if (p == ";" && depth == 0) {
        if (first_semi == 0) {
          first_semi = i;
        } else {
          return i == first_semi + 1;
        }
      }
    }
    return false;
  }

  void eval_simple(const Stmt& s, FdState& st) {
    const std::size_t a = s.begin;
    const std::size_t b = std::min(s.end, t.size());
    merge_throw_if(a, b, st);
    const bool noret = noreturn_stmt(a, b);

    if (const auto d = parse_decl(t, a, b)) {
      use_check(a, b, st, {d->name});
      const std::size_t cr = find_creator(d->init_begin, d->init_end);
      if (cr != t.size())
        st.vars[d->name] = FdVar{kOpen, cr};
      else if (neg_literal(d->init_begin, d->init_end))
        st.vars[d->name] = FdVar{kNull, d->name_at};
      else
        st.vars.erase(d->name);
      if (noret) st.live = false;
      return;
    }

    // Assignment to a tracked fd variable.
    if (b - a >= 3 && t[a].kind == Tok::kIdent && t[a + 1].punct("=") &&
        st.vars.count(t[a].text) != 0) {
      const std::string name = t[a].text;
      use_check(a + 2, b, st, {name});
      FdVar& v = st.vars[name];
      const std::size_t cr = find_creator(a + 2, b);
      if (cr != t.size()) {
        if ((v.mask & kOpen) != 0)
          report(t[cr], "overwrite|" + name,
                 "fd '" + name + "' may still be open when it is "
                 "overwritten with a new descriptor — the old fd leaks "
                 "(docs/static-analysis.md#fd-lifecycle)");
        v = FdVar{kOpen, cr};
      } else if (neg_literal(a + 2, b)) {
        v.mask = kNull;
      } else {
        st.vars.erase(name);
      }
      if (noret) st.live = false;
      return;
    }

    // Ownership transfer: `member_ = fd;` hands the descriptor off.
    if (b - a >= 4 && t[a].kind == Tok::kIdent && t[a + 1].punct("=") &&
        t[a + 2].kind == Tok::kIdent && t[a + 3].punct(";") &&
        st.vars.count(t[a + 2].text) != 0) {
      st.vars.erase(t[a + 2].text);
      if (noret) st.live = false;
      return;
    }

    std::set<std::string> closed_here;
    for (std::size_t i = a; i + 1 < b; ++i) {
      if (!is_call_at(t, i)) continue;
      if (t[i].text == "close" && i + 3 < b &&
          t[i + 2].kind == Tok::kIdent && t[i + 3].punct(")")) {
        const auto it = st.vars.find(t[i + 2].text);
        if (it == st.vars.end()) continue;
        if ((it->second.mask & kClosed) != 0)
          report(t[i], "double|" + it->first,
                 "fd '" + it->first + "' may already be closed on a path "
                 "reaching this ::close (double close) — after the first "
                 "close, set it to -1 and guard re-closes with `" +
                     it->first + " >= 0` "
                     "(docs/static-analysis.md#fd-lifecycle)");
        it->second.mask = kClosed;
        closed_here.insert(it->first);
      } else if (t[i].text == "require") {
        const std::size_t close_p = match_bracket(t, i + 1);
        const GuardTest g = parse_guard(i + 2, std::min(close_p, b), st);
        if (g.ok) apply_guard(st, g, true);
      }
    }
    use_check(a, b, st, closed_here);
    if (noret) st.live = false;
  }

  void eval_one(const Stmt& s, FdState& st) {
    switch (s.kind) {
      case Stmt::Kind::kBlock:
        eval_seq(s.blocks, st);
        return;
      case Stmt::Kind::kSimple:
        eval_simple(s, st);
        return;
      case Stmt::Kind::kReturn: {
        merge_throw_if(s.begin, s.end, st);
        for (auto it = st.vars.begin(); it != st.vars.end();) {
          if (range_mentions(t, s.begin + 1, s.end, it->first))
            it = st.vars.erase(it);  // ownership transferred to the caller
          else
            ++it;
        }
        if (s.begin < t.size()) leak_check(st, t[s.begin], "return");
        st.live = false;
        return;
      }
      case Stmt::Kind::kThrow: {
        if (!try_tgt.empty())
          join_into(*try_tgt.back(), st);
        else if (s.begin < t.size())
          leak_check(st, t[s.begin], "throw");
        st.live = false;
        return;
      }
      case Stmt::Kind::kBreak:
        if (!break_tgt.empty()) join_into(*break_tgt.back(), st);
        st.live = false;
        return;
      case Stmt::Kind::kContinue:
        if (!continue_tgt.empty()) join_into(*continue_tgt.back(), st);
        st.live = false;
        return;
      case Stmt::Kind::kIf: {
        merge_throw_if(s.cond_begin, s.cond_end, st);
        const GuardTest g = parse_guard(s.cond_begin, s.cond_end, st);
        FdState then_st = st;
        FdState else_st = st;
        if (g.ok) {
          apply_guard(then_st, g, true);
          apply_guard(else_st, g, false);
        }
        if (!s.blocks.empty()) eval_one(s.blocks[0], then_st);
        if (s.blocks.size() > 1) eval_one(s.blocks[1], else_st);
        st = dead_state();
        join_into(st, then_st);
        join_into(st, else_st);
        return;
      }
      case Stmt::Kind::kLoop: {
        merge_throw_if(s.cond_begin, s.cond_end, st);
        if (s.blocks.empty()) return;
        FdState brk = dead_state();
        FdState cont = dead_state();
        break_tgt.push_back(&brk);
        continue_tgt.push_back(&cont);
        FdState s1 = st;
        eval_one(s.blocks[0], s1);
        FdState entry2 = st;
        join_into(entry2, s1);
        join_into(entry2, cont);
        FdState s2 = entry2;
        eval_one(s.blocks[0], s2);
        break_tgt.pop_back();
        continue_tgt.pop_back();
        FdState exit_st = dead_state();
        if (!infinite_loop(s)) {
          join_into(exit_st, st);  // zero iterations
          join_into(exit_st, s2);
          join_into(exit_st, cont);
        }
        join_into(exit_st, brk);
        st = exit_st;
        return;
      }
      case Stmt::Kind::kSwitch: {
        merge_throw_if(s.cond_begin, s.cond_end, st);
        FdState brk = dead_state();
        break_tgt.push_back(&brk);
        FdState body = st;
        if (!s.blocks.empty()) eval_one(s.blocks[0], body);
        break_tgt.pop_back();
        FdState exit_st = st;  // no case may match
        join_into(exit_st, body);
        join_into(exit_st, brk);
        st = exit_st;
        return;
      }
      case Stmt::Kind::kTry: {
        if (s.blocks.empty()) return;
        FdState centry = dead_state();
        try_tgt.push_back(&centry);
        FdState body = st;
        eval_one(s.blocks[0], body);
        try_tgt.pop_back();
        FdState exit_st = dead_state();
        join_into(exit_st, body);
        for (std::size_t h = 1; h < s.blocks.size(); ++h) {
          if (!centry.live) break;
          FdState hs = centry;
          eval_one(s.blocks[h], hs);
          join_into(exit_st, hs);
        }
        st = exit_st;
        return;
      }
    }
  }

  void eval_seq(const std::vector<Stmt>& ss, FdState& st) {
    for (const Stmt& s : ss) {
      if (!st.live) return;
      eval_one(s, st);
    }
  }
};

void run_fd_lifecycle(const SourceFile& f, const RuleContext&,
                      std::vector<Finding>& out) {
  const Tokens& t = f.lex.tokens;
  for (const FuncInfo& fn : extract_functions(f)) {
    FdMachine m{f, t, out, {}, {}, {}, {}};
    FdState st;
    m.eval_seq(fn.body, st);
    if (!st.live) continue;
    for (const auto& [name, v] : st.vars) {
      if ((v.mask & kOpen) == 0) continue;
      const std::size_t at = v.origin < t.size() ? v.origin : fn.body_open;
      m.report(t[at], "leak|" + name,
               "fd '" + name + "' opened here is still open when '" +
                   fn.name + "' falls off the end — close it on every "
                   "path or transfer ownership explicitly "
                   "(docs/static-analysis.md#fd-lifecycle)");
    }
  }
}

// =========================== retry-idempotence ===========================

/// The RPC idempotence annotation table (mirrored in
/// docs/static-analysis.md#retry-idempotence). Everything NOT listed here
/// is fair game inside a retry loop; these calls mutate remote state
/// non-idempotently and must stay single-attempt.
const std::set<std::string>& single_attempt_calls() {
  static const std::set<std::string> k = {"apply", "apply_batch", "persist",
                                          "restore", "publish"};
  return k;
}

/// Idents whose presence marks a loop as a RETRY loop (as opposed to a
/// for-each over hosts/batches that merely tolerates per-item failure).
const std::set<std::string>& retry_signals() {
  static const std::set<std::string> k = {
      "sleep_for",  "sleep_until", "backoff",     "backoff_ms",
      "backoff_base_ms", "retry",  "retries",     "attempt",
      "attempts",   "max_attempts"};
  return k;
}

[[nodiscard]] bool seq_terminates(const std::vector<Stmt>& ss);

[[nodiscard]] bool stmt_terminates(const Stmt& s) {
  switch (s.kind) {
    case Stmt::Kind::kThrow:
    case Stmt::Kind::kReturn:
    case Stmt::Kind::kBreak:
      return true;  // leaves the loop (or the function): no retry
    case Stmt::Kind::kBlock:
      return seq_terminates(s.blocks);
    case Stmt::Kind::kIf:
      return s.blocks.size() > 1 && stmt_terminates(s.blocks[0]) &&
             stmt_terminates(s.blocks[1]);
    default:
      return false;  // kContinue falls through to the next attempt
  }
}

[[nodiscard]] bool seq_terminates(const std::vector<Stmt>& ss) {
  return !ss.empty() && stmt_terminates(ss.back());
}

void collect_tries(const Stmt& s, std::vector<const Stmt*>& out) {
  if (s.kind == Stmt::Kind::kLoop) return;  // a nested loop owns its tries
  if (s.kind == Stmt::Kind::kTry) out.push_back(&s);
  for (const Stmt& c : s.blocks) collect_tries(c, out);
}

struct RetryScan {
  const SourceFile& f;
  const Tokens& t;
  std::vector<Finding>& out;

  [[nodiscard]] bool has_retry_signal(const Stmt& loop) const {
    for (std::size_t i = loop.begin;
         i < loop.end && i < t.size(); ++i)
      if (t[i].kind == Tok::kIdent && retry_signals().count(t[i].text) != 0)
        return true;
    return false;
  }

  [[nodiscard]] bool is_retry_loop(const Stmt& loop) const {
    if (loop.blocks.empty() || !has_retry_signal(loop)) return false;
    std::vector<const Stmt*> tries;
    collect_tries(loop.blocks[0], tries);
    for (const Stmt* tr : tries)
      for (std::size_t h = 1; h < tr->blocks.size(); ++h)
        if (!stmt_terminates(tr->blocks[h])) return true;
    return false;
  }

  void walk(const std::vector<Stmt>& ss) {
    for (const Stmt& s : ss) {
      if (s.kind == Stmt::Kind::kLoop && is_retry_loop(s)) {
        for (std::size_t i = s.begin; i + 1 < s.end && i + 1 < t.size();
             ++i) {
          if (!is_call_at(t, i) ||
              single_attempt_calls().count(t[i].text) == 0)
            continue;
          if (i > s.begin && t[i - 1].kind == Tok::kIdent)
            continue;  // a declaration like `void apply(`, not a call
          emit(f, "retry-idempotence", t[i],
               "'" + t[i].text + "' is tagged single-attempt in the RPC "
               "idempotence table but runs inside a retry loop; a retried "
               "publish double-applies its batch when the first reply was "
               "lost — hoist the call out of the loop or split the "
               "retryable probe from the side effect "
               "(docs/static-analysis.md#retry-idempotence)",
               out);
        }
      }
      walk(s.blocks);
    }
  }
};

void run_retry_idempotence(const SourceFile& f, const RuleContext&,
                           std::vector<Finding>& out) {
  for (const FuncInfo& fn : extract_functions(f)) {
    RetryScan scan{f, f.lex.tokens, out};
    scan.walk(fn.body);
  }
}

// ========================= deadline-propagation ==========================

/// Blocking legs that need a deadline-derived argument when the enclosing
/// function received one.
const std::set<std::string>& blocking_calls() {
  static const std::set<std::string> k = {
      "poll",       "ppoll",     "select",        "epoll_wait",
      "connect",    "recv",      "recvfrom",      "recvmsg",
      "accept",     "accept4",   "waitpid",       "read_all",
      "recv_frame", "recv_frame_or_eof", "call_host", "connect_unix"};
  return k;
}

const std::set<std::string>& pacing_calls() {
  static const std::set<std::string> k = {"poll", "ppoll", "select",
                                          "epoll_wait"};
  return k;
}

/// Calls that a prior deadline-bounded poll may pace (the poll-then-recv
/// idiom in wire::read_all).
const std::set<std::string>& paced_ok_calls() {
  static const std::set<std::string> k = {"recv", "recvfrom", "recvmsg",
                                          "accept", "accept4"};
  return k;
}

/// Superset for the under-lock check: these must never run while a
/// MutexLock / WriterLock / SharedLock guard is live.
const std::set<std::string>& blocking_under_guard() {
  static const std::set<std::string> k = [] {
    std::set<std::string> s = blocking_calls();
    s.insert({"sleep_for", "sleep_until", "join", "rpc", "ping",
              "wait_ready", "probe"});
    return s;
  }();
  return k;
}

const std::set<std::string>& guard_type_names() {
  static const std::set<std::string> k = {
      "MutexLock",  "WriterLock", "SharedLock", "lock_guard",
      "unique_lock", "scoped_lock", "shared_lock"};
  return k;
}

[[nodiscard]] bool deadline_word(const std::string& name) {
  const std::string n = lower(name);
  return n.find("timeout") != std::string::npos ||
         n.find("deadline") != std::string::npos ||
         n.find("budget") != std::string::npos;
}

struct DeadlineArgScan {
  const SourceFile& f;
  const Tokens& t;
  std::vector<Finding>& out;
  const FuncInfo& fn;
  std::set<std::string> tainted;
  std::string dl_param;
  bool paced = false;

  [[nodiscard]] bool satisfies(const Token& tok) const {
    if (tok.kind != Tok::kIdent) return false;
    return tainted.count(tok.text) != 0 || deadline_word(tok.text) ||
           tok.text == "WNOHANG" || tok.text == "MSG_DONTWAIT" ||
           tok.text == "SOCK_NONBLOCK" || tok.text == "O_NONBLOCK";
  }

  void on_range(std::size_t a, std::size_t b, bool allow_decl) {
    b = std::min(b, t.size());
    if (allow_decl) {
      if (const auto d = parse_decl(t, a, b)) {
        for (std::size_t i = d->init_begin; i < d->init_end; ++i)
          if (satisfies(t[i])) {
            tainted.insert(d->name);
            break;
          }
      } else if (b - a >= 3 && t[a].kind == Tok::kIdent &&
                 t[a + 1].kind == Tok::kPunct &&
                 (t[a + 1].text == "=" || t[a + 1].text == "-=" ||
                  t[a + 1].text == "+=")) {
        for (std::size_t i = a + 2; i < b; ++i)
          if (satisfies(t[i])) {
            tainted.insert(t[a].text);
            break;
          }
      }
    }
    for (std::size_t i = a; i + 1 < b; ++i) {
      if (!is_call_at(t, i) || blocking_calls().count(t[i].text) == 0)
        continue;
      const std::size_t close_p = match_bracket(t, i + 1);
      bool satisfied = false;
      for (std::size_t j = i + 2; j < close_p && j < t.size(); ++j)
        if (satisfies(t[j])) {
          satisfied = true;
          break;
        }
      if (satisfied) {
        if (pacing_calls().count(t[i].text) != 0) paced = true;
        continue;
      }
      if (paced && paced_ok_calls().count(t[i].text) != 0) continue;
      emit(f, "deadline-propagation", t[i],
           "function '" + fn.name + "' takes deadline parameter '" +
               dl_param + "' but this call to '" + t[i].text + "' does "
               "not thread it — an unbounded blocking leg can stretch the "
               "call past its deadline; pass the remaining budget or pace "
               "it with a deadline-bounded poll "
               "(docs/static-analysis.md#deadline-propagation)",
           out);
    }
  }

  void walk(const std::vector<Stmt>& ss) {
    for (const Stmt& s : ss) {
      switch (s.kind) {
        case Stmt::Kind::kSimple:
        case Stmt::Kind::kReturn:
        case Stmt::Kind::kThrow:
          on_range(s.begin, s.end, s.kind == Stmt::Kind::kSimple);
          break;
        case Stmt::Kind::kIf:
        case Stmt::Kind::kSwitch:
          on_range(s.cond_begin, s.cond_end, false);
          walk(s.blocks);
          break;
        case Stmt::Kind::kLoop:
          on_range(s.cond_begin, s.cond_end, true);
          walk(s.blocks);
          break;
        case Stmt::Kind::kTry:
        case Stmt::Kind::kBlock:
          walk(s.blocks);
          break;
        default:
          break;
      }
    }
  }
};

struct LiveGuard {
  std::string name;
  bool active = true;
};

struct GuardScan {
  const SourceFile& f;
  const Tokens& t;
  std::vector<Finding>& out;

  void scan_range(std::size_t a, std::size_t b,
                  std::vector<LiveGuard>& guards) {
    b = std::min(b, t.size());
    for (std::size_t i = a; i < b; ++i) {
      if (t[i].kind != Tok::kIdent) continue;
      // guard.unlock() / guard.lock() toggles (Executor::worker_loop).
      if (i + 2 < b && t[i + 1].punct(".") && is_call_at(t, i + 2)) {
        for (LiveGuard& g : guards) {
          if (g.name != t[i].text) continue;
          if (t[i + 2].ident("unlock")) g.active = false;
          if (t[i + 2].ident("lock")) g.active = true;
        }
      }
      if (!is_call_at(t, i) ||
          blocking_under_guard().count(t[i].text) == 0)
        continue;
      for (const LiveGuard& g : guards) {
        if (!g.active) continue;
        emit(f, "deadline-propagation", t[i],
             "blocking call '" + t[i].text + "' executes while lock "
             "guard '" + g.name + "' is held — a blocked syscall under a "
             "bfc::Mutex/SharedMutex guard stalls every thread contending "
             "that lock; release the guard around the blocking leg "
             "(docs/static-analysis.md#deadline-propagation)",
             out);
        break;
      }
    }
  }

  void walk_stmt(const Stmt& s, std::vector<LiveGuard>& guards) {
    switch (s.kind) {
      case Stmt::Kind::kBlock: {
        const std::size_t n = guards.size();
        for (const Stmt& c : s.blocks) walk_stmt(c, guards);
        guards.resize(n);
        return;
      }
      case Stmt::Kind::kIf:
      case Stmt::Kind::kLoop:
      case Stmt::Kind::kSwitch:
      case Stmt::Kind::kTry:
        if (s.kind != Stmt::Kind::kTry)
          scan_range(s.cond_begin, s.cond_end, guards);
        for (const Stmt& c : s.blocks) {
          const std::size_t n = guards.size();
          walk_stmt(c, guards);
          guards.resize(n);
        }
        return;
      default: {
        scan_range(s.begin, s.end, guards);
        if (s.kind == Stmt::Kind::kSimple) {
          if (const auto d = parse_decl(t, s.begin, s.end))
            if (mentions_any(d->type, guard_type_names()))
              guards.push_back(LiveGuard{d->name, true});
        }
        return;
      }
    }
  }
};

void run_deadline_propagation(const SourceFile& f, const RuleContext&,
                              std::vector<Finding>& out) {
  for (const FuncInfo& fn : extract_functions(f)) {
    // (a) deadline threading through blocking legs.
    DeadlineArgScan scan{f, f.lex.tokens, out, fn, {}, {}, false};
    for (const Param& p : fn.params) {
      if (p.name.empty()) continue;
      if (type_mentions(p.type, "Deadline") || deadline_word(p.name)) {
        scan.tainted.insert(p.name);
        if (scan.dl_param.empty()) scan.dl_param = p.name;
      }
    }
    if (!scan.tainted.empty()) scan.walk(fn.body);

    // (b) no blocking call while a lock guard is live.
    GuardScan gs{f, f.lex.tokens, out};
    std::vector<LiveGuard> guards;
    for (const Stmt& s : fn.body) gs.walk_stmt(s, guards);
  }
}

}  // namespace

std::vector<Rule> flow_rules() {
  return {
      Rule{"lifetime-escape",
           "views (string_view/span/Cursor) must not outlive the buffer "
           "they borrow: no binding to call-site temporaries, no "
           "returning/storing views over locals",
           run_lifetime_escape},
      Rule{"fd-lifecycle",
           "every fd from socket()/open()/connect_unix() is closed exactly "
           "once on every path: no double close, no use-after-close, no "
           "leak on the throw path",
           run_fd_lifecycle},
      Rule{"retry-idempotence",
           "retry/backoff loops may only wrap idempotent calls; "
           "apply/persist/restore/publish stay single-attempt",
           run_retry_idempotence},
      Rule{"deadline-propagation",
           "functions taking a Deadline/timeout must thread it into every "
           "blocking leg, and no blocking call may run under a live "
           "MutexLock/WriterLock/SharedLock guard",
           run_deadline_propagation},
  };
}

}  // namespace bfc::analyze
