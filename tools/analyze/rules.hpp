// The pluggable rule set. Each rule is a pure function over one lexed file
// plus shared context (the telemetry registry); the engine in analyzer.cpp
// owns file discovery, fingerprinting, baselines, and output formats.
//
// Rule catalog (documented in docs/static-analysis.md):
//   epoch-discipline        snapshot/shard-view lifetime + epoch-keyed caches
//   checked-accumulation    butterfly/wedge count math must go through chk::
//   raw-sync                std sync primitives outside util/sync.hpp
//   seq-cst                 atomic ops on hot paths need explicit orders
//   cancellation-checkpoint kernels taking a CancelToken must consult it
//   metric-registry         metric literals must exist in metrics.registry
//   span-pairing            span/tag literals: lifetime + registry contract
//   suppression             malformed or unknown suppression markers
// Flow-sensitive families (rules_flow.cpp, built on flow.hpp):
//   lifetime-escape         views bound to temporaries / escaping locals
//   fd-lifecycle            close-exactly-once on every path, incl. throws
//   retry-idempotence       retry loops wrap only idempotent RPCs
//   deadline-propagation    deadlines reach every blocking leg; no blocking
//                           syscall under a live lock guard
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "model.hpp"
#include "registry.hpp"

namespace bfc::analyze {

struct Finding {
  std::string rule;
  std::string file;
  int line = 1;
  int col = 1;
  std::string message;
  std::string snippet;
  std::string fingerprint;  // filled by the engine, content-based
};

struct RuleContext {
  const Registry* registry = nullptr;  // null = registry rules stay quiet
  std::vector<std::string> rule_names;  // for the suppression meta-rule
};

struct Rule {
  const char* name;
  const char* summary;
  std::function<void(const SourceFile&, const RuleContext&,
                     std::vector<Finding>&)>
      run;
};

[[nodiscard]] const std::vector<Rule>& all_rules();

/// The flow-sensitive rule families (rules_flow.cpp): lifetime-escape,
/// fd-lifecycle, retry-idempotence, deadline-propagation. Merged into
/// all_rules(); exposed separately for targeted tests.
[[nodiscard]] std::vector<Rule> flow_rules();

/// Appends a finding at `tok` unless a suppression for `rule` covers it.
void emit(const SourceFile& f, const char* rule, const Token& tok,
          std::string message, std::vector<Finding>& out);

}  // namespace bfc::analyze
