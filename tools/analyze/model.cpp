#include "model.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace bfc::analyze {
namespace {

[[nodiscard]] std::string trim(std::string s) {
  const auto sp = [](char c) {
    return std::isspace(static_cast<unsigned char>(c)) != 0;
  };
  while (!s.empty() && sp(s.front())) s.erase(s.begin());
  while (!s.empty() && sp(s.back())) s.pop_back();
  return s;
}

/// Extracts every suppression marker from one line's comment text.
void parse_markers(const std::string& comment, int line,
                   std::vector<Suppression>& out) {
  // Modern spelling: "bfc-analyze: <rule>-ok <why>" — possibly several per
  // comment, so scan for every occurrence of the introducer.
  for (std::size_t pos = comment.find("bfc-analyze:");
       pos != std::string::npos;
       pos = comment.find("bfc-analyze:", pos + 1)) {
    std::istringstream in(comment.substr(pos + std::string("bfc-analyze:").size()));
    std::string word;
    if (!(in >> word)) {
      out.push_back(Suppression{"", "", line, false});
      continue;
    }
    Suppression s;
    s.line = line;
    constexpr const char* kOk = "-ok";
    if (word.size() > 3 && word.compare(word.size() - 3, 3, kOk) == 0) {
      s.rule = word.substr(0, word.size() - 3);
    } else {
      s.rule = word;  // malformed: missing "-ok"; keep for diagnostics
      out.push_back(std::move(s));
      continue;
    }
    std::string why;
    std::getline(in, why);
    s.why = trim(why);
    out.push_back(std::move(s));
  }
  // Legacy spelling 1: "bfc-lint: raw-sync-ok" (rationale optional — the
  // historical call sites predate the mandatory-why policy).
  if (const auto pos = comment.find("bfc-lint: raw-sync-ok");
      pos != std::string::npos) {
    Suppression s;
    s.rule = "raw-sync";
    s.why = trim(comment.substr(pos + std::string("bfc-lint: raw-sync-ok").size()));
    if (s.why.empty()) s.why = "(legacy marker)";
    s.line = line;
    s.legacy = true;
    out.push_back(std::move(s));
  }
  // Legacy spelling 2: "seq_cst: <why>" — lint.sh rule D's escape hatch.
  if (const auto pos = comment.find("seq_cst:"); pos != std::string::npos) {
    Suppression s;
    s.rule = "seq-cst";
    s.why = trim(comment.substr(pos + std::string("seq_cst:").size()));
    if (s.why.empty()) s.why = "(legacy marker)";
    s.line = line;
    s.legacy = true;
    out.push_back(std::move(s));
  }
}

}  // namespace

SourceFile SourceFile::from_string(std::string path,
                                   const std::string& content) {
  SourceFile f;
  f.path = std::move(path);
  f.lex = bfc::analyze::lex(content);
  for (const auto& [line, text] : f.lex.comments)
    parse_markers(text, line, f.suppressions);
  return f;
}

SourceFile SourceFile::from_disk(const std::string& abs_path,
                                 std::string rel_path) {
  std::ifstream in(abs_path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + abs_path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return from_string(std::move(rel_path), buf.str());
}

std::string SourceFile::snippet(int line) const {
  if (line < 1 || static_cast<std::size_t>(line) > lex.lines.size()) return "";
  const std::string& raw = lex.lines[static_cast<std::size_t>(line - 1)];
  std::string out;
  bool in_space = true;  // also eats leading whitespace
  for (const char c : raw) {
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      if (!in_space) out.push_back(' ');
      in_space = true;
    } else {
      out.push_back(c);
      in_space = false;
    }
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

bool SourceFile::suppressed(const std::string& rule, int line) const {
  for (const auto& s : suppressions) {
    if (s.rule != rule || s.why.empty()) continue;
    if (s.line == line ||
        (s.line == line - 1 && !line_has_code(s.line))) {
      s.used = true;
      return true;
    }
  }
  return false;
}

bool SourceFile::under(std::initializer_list<const char*> prefixes) const {
  return std::any_of(prefixes.begin(), prefixes.end(), [&](const char* p) {
    return path.compare(0, std::string(p).size(), p) == 0;
  });
}

}  // namespace bfc::analyze
