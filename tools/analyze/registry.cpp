#include "registry.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace bfc::analyze {
namespace {

[[nodiscard]] std::vector<std::string> split_dots(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : s) {
    if (c == '.') {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

}  // namespace

bool registry_name_matches(const std::string& entry,
                           const std::string& literal) {
  const bool prefix = !literal.empty() && literal.back() == '.';
  std::vector<std::string> es = split_dots(entry);
  std::vector<std::string> ls = split_dots(literal);
  if (prefix) ls.pop_back();  // drop the empty trailing segment
  if (prefix ? es.size() < ls.size() : es.size() != ls.size()) return false;
  for (std::size_t k = 0; k < ls.size(); ++k) {
    const std::string& e = es[k];
    const bool placeholder =
        e.size() >= 2 && e.front() == '<' && e.back() == '>';
    if (!placeholder && e != ls[k]) return false;
  }
  return true;
}

Registry Registry::parse(std::string path, const std::string& content,
                         std::vector<std::pair<int, std::string>>* errors) {
  Registry reg;
  reg.path = std::move(path);
  std::istringstream in(content);
  std::string raw;
  int line = 0;
  while (std::getline(in, raw)) {
    ++line;
    if (const auto hash = raw.find('#'); hash != std::string::npos)
      raw.erase(hash);
    std::istringstream fields(raw);
    std::string kind, name, extra;
    if (!(fields >> kind)) continue;  // blank / comment-only line
    const bool ok = (fields >> name) && !(fields >> extra) &&
                    (kind == "metric" || kind == "span" || kind == "tag");
    if (!ok) {
      if (errors != nullptr) errors->emplace_back(line, raw);
      continue;
    }
    reg.entries.push_back(RegistryEntry{kind, name, line});
  }
  return reg;
}

Registry Registry::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read registry " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(path, buf.str());
}

bool Registry::matches(const std::string& kind,
                       const std::string& literal) const {
  for (const auto& e : entries) {
    if (e.kind != kind) continue;
    if (registry_name_matches(e.name, literal)) return true;
  }
  return false;
}

}  // namespace bfc::analyze
