// bfc-analyze: project-specific static analysis for the butterfly-counting
// codebase. Token-level, dependency-free (no LLVM), fast enough to run on
// every PR. See docs/static-analysis.md for the rule catalog and workflow.
//
//   bfc-analyze --root . [--format=text|json|sarif] [--out FILE]
//               [--baseline FILE] [--write-baseline FILE]
//               [--update-baseline FILE] [--cache FILE]
//               [--registry FILE] [--docs DIR] [--list-rules] [paths...]
//
// --cache FILE keeps a content-hash cache so unchanged files skip the rule
// pass entirely (stats go to stderr). --update-baseline rewrites an existing
// baseline in place: stale fingerprints are pruned, surviving ones kept, and
// NEW findings are never silently absorbed — they render and exit 1.
//
// Exit codes: 0 = clean (no non-baseline findings), 1 = findings, 2 = usage
// or I/O error.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "analyzer.hpp"
#include "cache.hpp"

namespace {

namespace fs = std::filesystem;
using namespace bfc::analyze;

struct Options {
  std::string root = ".";
  std::string format = "text";
  std::string out_path;            // empty = stdout
  std::string baseline_path;       // empty = no baseline diff
  std::string write_baseline_path; // empty = don't write
  std::string update_baseline_path;  // empty = don't update in place
  std::string cache_path;          // empty = no incremental cache
  std::string registry_path;       // empty = default under root
  std::string docs_dir;            // empty = default under root
  bool list_rules = false;
  bool no_registry = false;
  std::vector<std::string> paths;
};

void usage(std::ostream& os) {
  os << "usage: bfc-analyze [--root DIR] [--format=text|json|sarif]\n"
        "                   [--out FILE] [--baseline FILE]\n"
        "                   [--write-baseline FILE] [--update-baseline FILE]\n"
        "                   [--cache FILE] [--registry FILE]\n"
        "                   [--docs DIR] [--no-registry] [--list-rules]\n"
        "                   [paths...]   (default: src bench examples)\n";
}

[[nodiscard]] bool take_value(const std::string& arg, const char* name,
                              int argc, char** argv, int& i,
                              std::string& out) {
  const std::string flag(name);
  if (arg == flag) {
    if (i + 1 >= argc) throw std::runtime_error(flag + " needs a value");
    out = argv[++i];
    return true;
  }
  if (arg.compare(0, flag.size() + 1, flag + "=") == 0) {
    out = arg.substr(flag.size() + 1);
    return true;
  }
  return false;
}

[[nodiscard]] Options parse_args(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      std::exit(0);
    }
    if (arg == "--list-rules") {
      o.list_rules = true;
    } else if (arg == "--no-registry") {
      o.no_registry = true;
    } else if (take_value(arg, "--root", argc, argv, i, o.root) ||
               take_value(arg, "--format", argc, argv, i, o.format) ||
               take_value(arg, "--out", argc, argv, i, o.out_path) ||
               take_value(arg, "--baseline", argc, argv, i,
                          o.baseline_path) ||
               take_value(arg, "--write-baseline", argc, argv, i,
                          o.write_baseline_path) ||
               take_value(arg, "--update-baseline", argc, argv, i,
                          o.update_baseline_path) ||
               take_value(arg, "--cache", argc, argv, i, o.cache_path) ||
               take_value(arg, "--registry", argc, argv, i,
                          o.registry_path) ||
               take_value(arg, "--docs", argc, argv, i, o.docs_dir)) {
      // handled
    } else if (!arg.empty() && arg[0] == '-') {
      throw std::runtime_error("unknown flag " + arg);
    } else {
      o.paths.push_back(arg);
    }
  }
  if (o.format != "text" && o.format != "json" && o.format != "sarif")
    throw std::runtime_error("unknown --format " + o.format);
  if (!o.write_baseline_path.empty() && !o.update_baseline_path.empty())
    throw std::runtime_error(
        "--write-baseline and --update-baseline are mutually exclusive");
  if (o.paths.empty()) o.paths = {"src", "bench", "examples"};
  return o;
}

[[nodiscard]] std::string slurp_docs(const std::string& dir) {
  std::ostringstream blob;
  if (!fs::is_directory(dir)) return "";
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    blob << in.rdbuf() << '\n';
  }
  return blob.str();
}

void write_output(const Options& o, const std::string& text) {
  if (o.out_path.empty()) {
    std::cout << text;
    return;
  }
  std::ofstream out(o.out_path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write " + o.out_path);
  out << text;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  try {
    opts = parse_args(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "bfc-analyze: " << e.what() << "\n";
    usage(std::cerr);
    return 2;
  }

  if (opts.list_rules) {
    for (const Rule& r : all_rules())
      std::cout << r.name << "  —  " << r.summary << "\n";
    return 0;
  }

  try {
    Registry registry;
    bool have_registry = false;
    if (!opts.no_registry) {
      std::string reg_path = opts.registry_path;
      if (reg_path.empty()) {
        const fs::path dflt =
            fs::path(opts.root) / "tools" / "analyze" / "metrics.registry";
        if (fs::is_regular_file(dflt)) reg_path = dflt.string();
      }
      if (!reg_path.empty()) {
        registry = Registry::load(reg_path);
        // Findings report the registry path relative to the root when
        // possible, so baselines are machine-independent.
        std::error_code ec;
        const fs::path rel = fs::relative(reg_path, opts.root, ec);
        if (!ec && !rel.empty() && rel.generic_string().rfind("..", 0) != 0)
          registry.path = rel.generic_string();
        have_registry = true;
      }
    }

    const std::vector<SourceFile> files = load_tree(opts.root, opts.paths);
    const Registry* reg = have_registry ? &registry : nullptr;
    std::vector<Finding> findings;
    if (opts.cache_path.empty()) {
      findings = run_rules(files, reg);
    } else {
      Cache cache = Cache::load(opts.cache_path);
      CacheStats stats;
      findings = run_rules_cached(files, reg, cache, stats);
      cache.save(opts.cache_path);
      std::cerr << "bfc-analyze: cache: " << stats.hits << " hit"
                << (stats.hits == 1 ? "" : "s") << ", " << stats.misses
                << " miss" << (stats.misses == 1 ? "" : "es") << "\n";
    }

    if (have_registry) {
      const std::string docs_dir =
          opts.docs_dir.empty() ? (fs::path(opts.root) / "docs").string()
                                : opts.docs_dir;
      std::vector<Finding> doc_findings =
          check_registry_documented(registry, slurp_docs(docs_dir));
      findings.insert(findings.end(), doc_findings.begin(),
                      doc_findings.end());
      fingerprint(findings);  // recompute ordinals over the merged list
    }

    if (!opts.write_baseline_path.empty()) {
      std::ofstream out(opts.write_baseline_path, std::ios::binary);
      if (!out)
        throw std::runtime_error("cannot write " + opts.write_baseline_path);
      out << render_baseline(findings);
      std::cerr << "bfc-analyze: wrote baseline with " << findings.size()
                << " findings to " << opts.write_baseline_path << "\n";
      return 0;
    }

    if (!opts.update_baseline_path.empty()) {
      // Refresh an existing baseline in place: keep only fingerprints that
      // still match a current finding (pruning the stale ones), but never
      // absorb NEW findings — those still render and fail, so waiving a
      // fresh violation stays an explicit --write-baseline decision.
      const Baseline old = Baseline::load(opts.update_baseline_path);
      std::map<std::string, int> waived;
      for (const std::string& fp : old.fingerprints) ++waived[fp];
      std::vector<Finding> kept;
      std::vector<Finding> fresh;
      for (const Finding& f : findings) {
        const auto it = waived.find(f.fingerprint);
        if (it != waived.end() && it->second > 0) {
          --it->second;
          kept.push_back(f);
        } else {
          fresh.push_back(f);
        }
      }
      std::ofstream out(opts.update_baseline_path, std::ios::binary);
      if (!out)
        throw std::runtime_error("cannot write " + opts.update_baseline_path);
      out << render_baseline(kept);
      std::cerr << "bfc-analyze: baseline " << opts.update_baseline_path
                << ": kept " << kept.size() << ", pruned "
                << (old.fingerprints.size() - kept.size()) << " stale\n";
      if (fresh.empty()) return 0;
      write_output(opts, render_text(fresh));
      std::cerr << "bfc-analyze: " << fresh.size()
                << " new finding(s) NOT added to baseline\n";
      return 1;
    }

    if (!opts.baseline_path.empty())
      findings = diff_baseline(findings, Baseline::load(opts.baseline_path));

    std::string rendered;
    if (opts.format == "json") rendered = render_json(findings);
    else if (opts.format == "sarif") rendered = render_sarif(findings);
    else rendered = render_text(findings);
    write_output(opts, rendered);

    if (!findings.empty() && opts.format != "text")
      std::cerr << "bfc-analyze: " << findings.size()
                << " non-baseline finding(s)\n";
    return findings.empty() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "bfc-analyze: " << e.what() << "\n";
    return 2;
  }
}
