// The flow layer of bfc-analyze: a symbol-aware, flow-sensitive
// intra-procedural model built on the lexer, still with no LLVM anywhere.
// Three pieces, each deliberately approximate but honest about it:
//
//  * Function extraction. A linear scan finds every function body in a
//    translation unit — free functions, member definitions, constructors
//    with init lists — and records its name, parameter list (type text +
//    name), return-type tokens and body token range. Declarations without
//    bodies are skipped; lambdas are NOT functions here (their bodies are
//    walked as nested blocks of the enclosing function, which is what the
//    scope-tracking rules want).
//
//  * A statement/region tree. parse_stmts() turns a body token range into
//    a tree of statements: if/else, loops, try/catch, switch, nested
//    blocks (including lambda bodies and brace-initializers — over-
//    approximating those as blocks is harmless for the rules that walk
//    scopes), return/throw/break/continue as distinct kinds. This is the
//    branch structure the abstract walks in rules_flow.cpp merge over.
//
//  * Declaration scanning. parse_decl() recognises `Type name(init)`,
//    `Type name = init`, `Type name{init}` statement heads so rules can
//    build per-function symbol tables (locals, parameters) with type
//    text, and reason about the initializer expression — in particular
//    whether it materialises a temporary at a call site, which is the
//    whole lifetime-escape rule.
//
// Known, accepted approximations: templates in expressions can confuse
// the `<`/`>` skip (declarations only, and only when a statement starts
// with a less-than expression, which real code does not); preprocessor
// conditionals are lexed as ordinary tokens so both arms of an #if are
// walked (a may-analysis walking dead code errs on the loud side);
// goto is not modelled (the tree walk simply never follows it — the repo
// has none, and the rules degrade to intra-block checks if one appears).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "model.hpp"

namespace bfc::analyze {

/// One parsed statement; `begin/end` is the token range of the whole
/// statement including any nested blocks.
struct Stmt {
  enum class Kind {
    kSimple,    // expression / declaration statement up to ';'
    kBlock,     // { ... }
    kIf,        // blocks = [then, else?]
    kLoop,      // for / while / do-while; blocks = [body]
    kSwitch,    // blocks = [body]
    kTry,       // blocks = [try-body, catch-1, catch-2, ...]
    kReturn,    // return expr ;
    kThrow,     // throw expr ;  (bare rethrow `throw;` included)
    kBreak,     // break ;
    kContinue,  // continue ;
  };
  Kind kind = Kind::kSimple;
  std::size_t begin = 0;
  std::size_t end = 0;  // one past the last token of the statement
  /// Condition range for kIf/kLoop/kSwitch: tokens inside the parens
  /// (for `for` loops this is the whole header — init; cond; step).
  std::size_t cond_begin = 0;
  std::size_t cond_end = 0;
  std::vector<Stmt> blocks;
};

struct Param {
  std::string type;  // space-joined type tokens ("const CancelToken &")
  std::string name;  // "" for unnamed parameters
};

struct FuncInfo {
  std::string name;
  std::vector<std::string> ret_type;  // tokens before the name (may be empty
                                      // for constructors/destructors)
  std::vector<Param> params;
  std::size_t body_open = 0;   // index of '{'
  std::size_t body_close = 0;  // index of matching '}'
  std::vector<Stmt> body;      // parsed region tree of (body_open, body_close)

  [[nodiscard]] bool ret_type_mentions(const char* ident) const;
};

/// Every function body in the file, in source order.
[[nodiscard]] std::vector<FuncInfo> extract_functions(const SourceFile& f);

/// Parses the statements of token range [from, to).
[[nodiscard]] std::vector<Stmt> parse_stmts(const std::vector<Token>& t,
                                            std::size_t from, std::size_t to);

/// A recognised declaration at the head of a simple statement.
struct DeclInfo {
  std::string type;        // space-joined type tokens, e.g. "wire :: Cursor"
  std::string name;        // declared identifier
  std::size_t name_at;     // token index of the name
  std::size_t init_begin;  // initializer token range [init_begin, init_end);
  std::size_t init_end;    //   empty range when there is no initializer
};

/// Recognises `Type name(init);` / `Type name = init;` / `Type name{init};`
/// at [begin, end). Returns nullopt for expressions, assignments, calls,
/// and anything with fewer than one type token before the name.
[[nodiscard]] std::optional<DeclInfo> parse_decl(const std::vector<Token>& t,
                                                 std::size_t begin,
                                                 std::size_t end);

/// True when the space-joined `type` string contains `ident` as a whole
/// token ("wire :: Cursor" mentions "Cursor" but not "urso").
[[nodiscard]] bool type_mentions(const std::string& type, const char* ident);

}  // namespace bfc::analyze
