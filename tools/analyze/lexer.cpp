#include "lexer.hpp"

#include <cctype>

namespace bfc::analyze {
namespace {

[[nodiscard]] bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
[[nodiscard]] bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Multi-character punctuators, longest first so maximal munch works with a
/// simple prefix scan. Single characters fall through to a 1-char token.
constexpr const char* kPuncts[] = {
    "<<=", ">>=", "...", "->*", "::", "->", "++", "--", "+=", "-=",
    "*=",  "/=",  "%=",  "&=",  "|=", "^=", "==", "!=", "<=", ">=",
    "&&",  "||",  "<<",  ">>",  "##",
};

}  // namespace

LexedFile lex(const std::string& source) {
  LexedFile out;

  // Split raw lines first (snippets and suppression lookups need them).
  {
    std::string cur;
    for (const char c : source) {
      if (c == '\n') {
        out.lines.push_back(cur);
        cur.clear();
      } else {
        cur.push_back(c);
      }
    }
    out.lines.push_back(cur);
  }

  const std::size_t n = source.size();
  std::size_t i = 0;
  int line = 1;
  int col = 1;

  const auto advance = [&](std::size_t count) {
    for (std::size_t k = 0; k < count && i < n; ++k, ++i) {
      if (source[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
  };
  const auto add_comment = [&](int at_line, const std::string& text) {
    std::string& slot = out.comments[at_line];
    if (!slot.empty()) slot += ' ';
    slot += text;
  };

  while (i < n) {
    const char c = source[i];
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' ||
        c == '\v') {
      advance(1);
      continue;
    }
    // Line continuation.
    if (c == '\\' && i + 1 < n && (source[i + 1] == '\n' ||
                                   (source[i + 1] == '\r' && i + 2 < n &&
                                    source[i + 2] == '\n'))) {
      advance(source[i + 1] == '\n' ? 2 : 3);
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      const int at = line;
      std::size_t end = i;
      while (end < n && source[end] != '\n') ++end;
      add_comment(at, source.substr(i + 2, end - i - 2));
      advance(end - i);
      continue;
    }
    if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      const int at = line;
      std::size_t end = i + 2;
      while (end + 1 < n && !(source[end] == '*' && source[end + 1] == '/'))
        ++end;
      const std::size_t stop = end + 1 < n ? end + 2 : n;
      add_comment(at, source.substr(i + 2, stop - i - (end + 1 < n ? 4 : 2)));
      advance(stop - i);
      continue;
    }
    // Raw string literal (optionally behind an encoding prefix).
    {
      std::size_t p = i;
      if (p < n && (source[p] == 'L' || source[p] == 'U')) ++p;
      else if (p < n && source[p] == 'u') {
        ++p;
        if (p < n && source[p] == '8') ++p;
      }
      if (p + 1 < n && source[p] == 'R' && source[p + 1] == '"') {
        std::size_t d = p + 2;
        while (d < n && source[d] != '(') ++d;
        const std::string delim =
            ")" + source.substr(p + 2, d - p - 2) + "\"";
        const std::size_t body = d + 1;
        std::size_t end = source.find(delim, body);
        if (end == std::string::npos) end = n;
        Token t{Tok::kString, source.substr(body, end - body), line, col};
        out.tokens.push_back(std::move(t));
        out.code_lines.insert(line);
        const std::size_t stop =
            end == n ? n : end + delim.size();
        advance(stop - i);
        continue;
      }
    }
    // String / char literal (skip over encoding prefix if present).
    {
      std::size_t p = i;
      if (p < n && (source[p] == 'L' || source[p] == 'U')) ++p;
      else if (p < n && source[p] == 'u') {
        ++p;
        if (p < n && source[p] == '8') ++p;
      }
      if (p < n && (source[p] == '"' || source[p] == '\'') &&
          (p == i || ident_start(source[i]))) {
        const char quote = source[p];
        std::size_t end = p + 1;
        while (end < n && source[end] != quote) {
          if (source[end] == '\\' && end + 1 < n) ++end;
          if (source[end] == '\n') break;  // unterminated: stop at newline
          ++end;
        }
        Token t{quote == '"' ? Tok::kString : Tok::kChar,
                source.substr(p + 1, end - p - 1), line, col};
        out.tokens.push_back(std::move(t));
        out.code_lines.insert(line);
        advance((end < n && source[end] == quote ? end + 1 : end) - i);
        continue;
      }
    }
    // Identifier.
    if (ident_start(c)) {
      std::size_t end = i + 1;
      while (end < n && ident_char(source[end])) ++end;
      out.tokens.push_back(
          Token{Tok::kIdent, source.substr(i, end - i), line, col});
      out.code_lines.insert(line);
      advance(end - i);
      continue;
    }
    // Number (pp-number: digits, letters, quotes-as-separators, exponents).
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(source[i + 1])) != 0)) {
      std::size_t end = i + 1;
      while (end < n) {
        const char d = source[end];
        if (ident_char(d) || d == '.' || d == '\'') {
          ++end;
        } else if ((d == '+' || d == '-') && end > i &&
                   (source[end - 1] == 'e' || source[end - 1] == 'E' ||
                    source[end - 1] == 'p' || source[end - 1] == 'P')) {
          ++end;
        } else {
          break;
        }
      }
      out.tokens.push_back(
          Token{Tok::kNumber, source.substr(i, end - i), line, col});
      out.code_lines.insert(line);
      advance(end - i);
      continue;
    }
    // Punctuator: longest multi-char match, else one char.
    {
      std::string matched(1, c);
      for (const char* p : kPuncts) {
        const std::size_t len = std::string(p).size();
        if (i + len <= n && source.compare(i, len, p) == 0) {
          matched = p;
          break;
        }
      }
      out.tokens.push_back(Token{Tok::kPunct, matched, line, col});
      out.code_lines.insert(line);
      advance(matched.size());
    }
  }
  return out;
}

std::size_t match_bracket(const std::vector<Token>& tokens, std::size_t i) {
  if (i >= tokens.size() || tokens[i].kind != Tok::kPunct)
    return tokens.size();
  const std::string& open = tokens[i].text;
  std::string close;
  if (open == "(") close = ")";
  else if (open == "[") close = "]";
  else if (open == "{") close = "}";
  else return tokens.size();
  int depth = 0;
  for (std::size_t j = i; j < tokens.size(); ++j) {
    if (tokens[j].kind != Tok::kPunct) continue;
    if (tokens[j].text == open) ++depth;
    else if (tokens[j].text == close && --depth == 0) return j;
  }
  return tokens.size();
}

}  // namespace bfc::analyze
