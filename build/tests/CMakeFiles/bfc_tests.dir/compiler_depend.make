# Empty compiler generated dependencies file for bfc_tests.
# This may be replaced when dependencies are built.
