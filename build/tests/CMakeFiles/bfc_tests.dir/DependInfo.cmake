
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_approx.cpp" "tests/CMakeFiles/bfc_tests.dir/test_approx.cpp.o" "gcc" "tests/CMakeFiles/bfc_tests.dir/test_approx.cpp.o.d"
  "/root/repo/tests/test_blocked.cpp" "tests/CMakeFiles/bfc_tests.dir/test_blocked.cpp.o" "gcc" "tests/CMakeFiles/bfc_tests.dir/test_blocked.cpp.o.d"
  "/root/repo/tests/test_components.cpp" "tests/CMakeFiles/bfc_tests.dir/test_components.cpp.o" "gcc" "tests/CMakeFiles/bfc_tests.dir/test_components.cpp.o.d"
  "/root/repo/tests/test_count_baselines.cpp" "tests/CMakeFiles/bfc_tests.dir/test_count_baselines.cpp.o" "gcc" "tests/CMakeFiles/bfc_tests.dir/test_count_baselines.cpp.o.d"
  "/root/repo/tests/test_dense.cpp" "tests/CMakeFiles/bfc_tests.dir/test_dense.cpp.o" "gcc" "tests/CMakeFiles/bfc_tests.dir/test_dense.cpp.o.d"
  "/root/repo/tests/test_dynamic_and_bounded.cpp" "tests/CMakeFiles/bfc_tests.dir/test_dynamic_and_bounded.cpp.o" "gcc" "tests/CMakeFiles/bfc_tests.dir/test_dynamic_and_bounded.cpp.o.d"
  "/root/repo/tests/test_enumerate.cpp" "tests/CMakeFiles/bfc_tests.dir/test_enumerate.cpp.o" "gcc" "tests/CMakeFiles/bfc_tests.dir/test_enumerate.cpp.o.d"
  "/root/repo/tests/test_fuzz.cpp" "tests/CMakeFiles/bfc_tests.dir/test_fuzz.cpp.o" "gcc" "tests/CMakeFiles/bfc_tests.dir/test_fuzz.cpp.o.d"
  "/root/repo/tests/test_gb.cpp" "tests/CMakeFiles/bfc_tests.dir/test_gb.cpp.o" "gcc" "tests/CMakeFiles/bfc_tests.dir/test_gb.cpp.o.d"
  "/root/repo/tests/test_gb_peeling.cpp" "tests/CMakeFiles/bfc_tests.dir/test_gb_peeling.cpp.o" "gcc" "tests/CMakeFiles/bfc_tests.dir/test_gb_peeling.cpp.o.d"
  "/root/repo/tests/test_gen.cpp" "tests/CMakeFiles/bfc_tests.dir/test_gen.cpp.o" "gcc" "tests/CMakeFiles/bfc_tests.dir/test_gen.cpp.o.d"
  "/root/repo/tests/test_graph.cpp" "tests/CMakeFiles/bfc_tests.dir/test_graph.cpp.o" "gcc" "tests/CMakeFiles/bfc_tests.dir/test_graph.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/bfc_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/bfc_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_la_count.cpp" "tests/CMakeFiles/bfc_tests.dir/test_la_count.cpp.o" "gcc" "tests/CMakeFiles/bfc_tests.dir/test_la_count.cpp.o.d"
  "/root/repo/tests/test_la_partition.cpp" "tests/CMakeFiles/bfc_tests.dir/test_la_partition.cpp.o" "gcc" "tests/CMakeFiles/bfc_tests.dir/test_la_partition.cpp.o.d"
  "/root/repo/tests/test_parallel_and_pairs.cpp" "tests/CMakeFiles/bfc_tests.dir/test_parallel_and_pairs.cpp.o" "gcc" "tests/CMakeFiles/bfc_tests.dir/test_parallel_and_pairs.cpp.o.d"
  "/root/repo/tests/test_peel.cpp" "tests/CMakeFiles/bfc_tests.dir/test_peel.cpp.o" "gcc" "tests/CMakeFiles/bfc_tests.dir/test_peel.cpp.o.d"
  "/root/repo/tests/test_reorder.cpp" "tests/CMakeFiles/bfc_tests.dir/test_reorder.cpp.o" "gcc" "tests/CMakeFiles/bfc_tests.dir/test_reorder.cpp.o.d"
  "/root/repo/tests/test_sparse.cpp" "tests/CMakeFiles/bfc_tests.dir/test_sparse.cpp.o" "gcc" "tests/CMakeFiles/bfc_tests.dir/test_sparse.cpp.o.d"
  "/root/repo/tests/test_spec.cpp" "tests/CMakeFiles/bfc_tests.dir/test_spec.cpp.o" "gcc" "tests/CMakeFiles/bfc_tests.dir/test_spec.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/bfc_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/bfc_tests.dir/test_util.cpp.o.d"
  "/root/repo/tests/test_wing_family.cpp" "tests/CMakeFiles/bfc_tests.dir/test_wing_family.cpp.o" "gcc" "tests/CMakeFiles/bfc_tests.dir/test_wing_family.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bfc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
