# Empty compiler generated dependencies file for bfc.
# This may be replaced when dependencies are built.
