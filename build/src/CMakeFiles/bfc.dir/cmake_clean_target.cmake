file(REMOVE_RECURSE
  "libbfc.a"
)
