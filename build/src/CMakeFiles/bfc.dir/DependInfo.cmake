
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/count/approx.cpp" "src/CMakeFiles/bfc.dir/count/approx.cpp.o" "gcc" "src/CMakeFiles/bfc.dir/count/approx.cpp.o.d"
  "/root/repo/src/count/batch_aggregate.cpp" "src/CMakeFiles/bfc.dir/count/batch_aggregate.cpp.o" "gcc" "src/CMakeFiles/bfc.dir/count/batch_aggregate.cpp.o.d"
  "/root/repo/src/count/bounded_memory.cpp" "src/CMakeFiles/bfc.dir/count/bounded_memory.cpp.o" "gcc" "src/CMakeFiles/bfc.dir/count/bounded_memory.cpp.o.d"
  "/root/repo/src/count/dynamic.cpp" "src/CMakeFiles/bfc.dir/count/dynamic.cpp.o" "gcc" "src/CMakeFiles/bfc.dir/count/dynamic.cpp.o.d"
  "/root/repo/src/count/enumerate.cpp" "src/CMakeFiles/bfc.dir/count/enumerate.cpp.o" "gcc" "src/CMakeFiles/bfc.dir/count/enumerate.cpp.o.d"
  "/root/repo/src/count/parallel_counts.cpp" "src/CMakeFiles/bfc.dir/count/parallel_counts.cpp.o" "gcc" "src/CMakeFiles/bfc.dir/count/parallel_counts.cpp.o.d"
  "/root/repo/src/count/per_edge.cpp" "src/CMakeFiles/bfc.dir/count/per_edge.cpp.o" "gcc" "src/CMakeFiles/bfc.dir/count/per_edge.cpp.o.d"
  "/root/repo/src/count/per_vertex.cpp" "src/CMakeFiles/bfc.dir/count/per_vertex.cpp.o" "gcc" "src/CMakeFiles/bfc.dir/count/per_vertex.cpp.o.d"
  "/root/repo/src/count/top_pairs.cpp" "src/CMakeFiles/bfc.dir/count/top_pairs.cpp.o" "gcc" "src/CMakeFiles/bfc.dir/count/top_pairs.cpp.o.d"
  "/root/repo/src/count/vertex_priority.cpp" "src/CMakeFiles/bfc.dir/count/vertex_priority.cpp.o" "gcc" "src/CMakeFiles/bfc.dir/count/vertex_priority.cpp.o.d"
  "/root/repo/src/count/wedge_reference.cpp" "src/CMakeFiles/bfc.dir/count/wedge_reference.cpp.o" "gcc" "src/CMakeFiles/bfc.dir/count/wedge_reference.cpp.o.d"
  "/root/repo/src/dense/dense_matrix.cpp" "src/CMakeFiles/bfc.dir/dense/dense_matrix.cpp.o" "gcc" "src/CMakeFiles/bfc.dir/dense/dense_matrix.cpp.o.d"
  "/root/repo/src/dense/spec.cpp" "src/CMakeFiles/bfc.dir/dense/spec.cpp.o" "gcc" "src/CMakeFiles/bfc.dir/dense/spec.cpp.o.d"
  "/root/repo/src/gb/butterflies.cpp" "src/CMakeFiles/bfc.dir/gb/butterflies.cpp.o" "gcc" "src/CMakeFiles/bfc.dir/gb/butterflies.cpp.o.d"
  "/root/repo/src/gb/matrix.cpp" "src/CMakeFiles/bfc.dir/gb/matrix.cpp.o" "gcc" "src/CMakeFiles/bfc.dir/gb/matrix.cpp.o.d"
  "/root/repo/src/gb/peeling.cpp" "src/CMakeFiles/bfc.dir/gb/peeling.cpp.o" "gcc" "src/CMakeFiles/bfc.dir/gb/peeling.cpp.o.d"
  "/root/repo/src/gb/vector.cpp" "src/CMakeFiles/bfc.dir/gb/vector.cpp.o" "gcc" "src/CMakeFiles/bfc.dir/gb/vector.cpp.o.d"
  "/root/repo/src/gen/block_community.cpp" "src/CMakeFiles/bfc.dir/gen/block_community.cpp.o" "gcc" "src/CMakeFiles/bfc.dir/gen/block_community.cpp.o.d"
  "/root/repo/src/gen/chung_lu.cpp" "src/CMakeFiles/bfc.dir/gen/chung_lu.cpp.o" "gcc" "src/CMakeFiles/bfc.dir/gen/chung_lu.cpp.o.d"
  "/root/repo/src/gen/configuration.cpp" "src/CMakeFiles/bfc.dir/gen/configuration.cpp.o" "gcc" "src/CMakeFiles/bfc.dir/gen/configuration.cpp.o.d"
  "/root/repo/src/gen/erdos_renyi.cpp" "src/CMakeFiles/bfc.dir/gen/erdos_renyi.cpp.o" "gcc" "src/CMakeFiles/bfc.dir/gen/erdos_renyi.cpp.o.d"
  "/root/repo/src/gen/konect_like.cpp" "src/CMakeFiles/bfc.dir/gen/konect_like.cpp.o" "gcc" "src/CMakeFiles/bfc.dir/gen/konect_like.cpp.o.d"
  "/root/repo/src/gen/preferential.cpp" "src/CMakeFiles/bfc.dir/gen/preferential.cpp.o" "gcc" "src/CMakeFiles/bfc.dir/gen/preferential.cpp.o.d"
  "/root/repo/src/graph/bipartite_graph.cpp" "src/CMakeFiles/bfc.dir/graph/bipartite_graph.cpp.o" "gcc" "src/CMakeFiles/bfc.dir/graph/bipartite_graph.cpp.o.d"
  "/root/repo/src/graph/components.cpp" "src/CMakeFiles/bfc.dir/graph/components.cpp.o" "gcc" "src/CMakeFiles/bfc.dir/graph/components.cpp.o.d"
  "/root/repo/src/graph/io_binary.cpp" "src/CMakeFiles/bfc.dir/graph/io_binary.cpp.o" "gcc" "src/CMakeFiles/bfc.dir/graph/io_binary.cpp.o.d"
  "/root/repo/src/graph/io_edgelist.cpp" "src/CMakeFiles/bfc.dir/graph/io_edgelist.cpp.o" "gcc" "src/CMakeFiles/bfc.dir/graph/io_edgelist.cpp.o.d"
  "/root/repo/src/graph/io_mtx.cpp" "src/CMakeFiles/bfc.dir/graph/io_mtx.cpp.o" "gcc" "src/CMakeFiles/bfc.dir/graph/io_mtx.cpp.o.d"
  "/root/repo/src/graph/reorder.cpp" "src/CMakeFiles/bfc.dir/graph/reorder.cpp.o" "gcc" "src/CMakeFiles/bfc.dir/graph/reorder.cpp.o.d"
  "/root/repo/src/graph/stats.cpp" "src/CMakeFiles/bfc.dir/graph/stats.cpp.o" "gcc" "src/CMakeFiles/bfc.dir/graph/stats.cpp.o.d"
  "/root/repo/src/la/blocked.cpp" "src/CMakeFiles/bfc.dir/la/blocked.cpp.o" "gcc" "src/CMakeFiles/bfc.dir/la/blocked.cpp.o.d"
  "/root/repo/src/la/dispatch.cpp" "src/CMakeFiles/bfc.dir/la/dispatch.cpp.o" "gcc" "src/CMakeFiles/bfc.dir/la/dispatch.cpp.o.d"
  "/root/repo/src/la/invariants.cpp" "src/CMakeFiles/bfc.dir/la/invariants.cpp.o" "gcc" "src/CMakeFiles/bfc.dir/la/invariants.cpp.o.d"
  "/root/repo/src/la/parallel.cpp" "src/CMakeFiles/bfc.dir/la/parallel.cpp.o" "gcc" "src/CMakeFiles/bfc.dir/la/parallel.cpp.o.d"
  "/root/repo/src/la/partition.cpp" "src/CMakeFiles/bfc.dir/la/partition.cpp.o" "gcc" "src/CMakeFiles/bfc.dir/la/partition.cpp.o.d"
  "/root/repo/src/la/unblocked.cpp" "src/CMakeFiles/bfc.dir/la/unblocked.cpp.o" "gcc" "src/CMakeFiles/bfc.dir/la/unblocked.cpp.o.d"
  "/root/repo/src/la/wedge_engine.cpp" "src/CMakeFiles/bfc.dir/la/wedge_engine.cpp.o" "gcc" "src/CMakeFiles/bfc.dir/la/wedge_engine.cpp.o.d"
  "/root/repo/src/peel/bucket_tip.cpp" "src/CMakeFiles/bfc.dir/peel/bucket_tip.cpp.o" "gcc" "src/CMakeFiles/bfc.dir/peel/bucket_tip.cpp.o.d"
  "/root/repo/src/peel/bucket_wing.cpp" "src/CMakeFiles/bfc.dir/peel/bucket_wing.cpp.o" "gcc" "src/CMakeFiles/bfc.dir/peel/bucket_wing.cpp.o.d"
  "/root/repo/src/peel/decompose.cpp" "src/CMakeFiles/bfc.dir/peel/decompose.cpp.o" "gcc" "src/CMakeFiles/bfc.dir/peel/decompose.cpp.o.d"
  "/root/repo/src/peel/tip_la.cpp" "src/CMakeFiles/bfc.dir/peel/tip_la.cpp.o" "gcc" "src/CMakeFiles/bfc.dir/peel/tip_la.cpp.o.d"
  "/root/repo/src/peel/wing_family.cpp" "src/CMakeFiles/bfc.dir/peel/wing_family.cpp.o" "gcc" "src/CMakeFiles/bfc.dir/peel/wing_family.cpp.o.d"
  "/root/repo/src/peel/wing_la.cpp" "src/CMakeFiles/bfc.dir/peel/wing_la.cpp.o" "gcc" "src/CMakeFiles/bfc.dir/peel/wing_la.cpp.o.d"
  "/root/repo/src/sparse/coo.cpp" "src/CMakeFiles/bfc.dir/sparse/coo.cpp.o" "gcc" "src/CMakeFiles/bfc.dir/sparse/coo.cpp.o.d"
  "/root/repo/src/sparse/csr.cpp" "src/CMakeFiles/bfc.dir/sparse/csr.cpp.o" "gcc" "src/CMakeFiles/bfc.dir/sparse/csr.cpp.o.d"
  "/root/repo/src/sparse/ops.cpp" "src/CMakeFiles/bfc.dir/sparse/ops.cpp.o" "gcc" "src/CMakeFiles/bfc.dir/sparse/ops.cpp.o.d"
  "/root/repo/src/sparse/spgemm.cpp" "src/CMakeFiles/bfc.dir/sparse/spgemm.cpp.o" "gcc" "src/CMakeFiles/bfc.dir/sparse/spgemm.cpp.o.d"
  "/root/repo/src/util/cli.cpp" "src/CMakeFiles/bfc.dir/util/cli.cpp.o" "gcc" "src/CMakeFiles/bfc.dir/util/cli.cpp.o.d"
  "/root/repo/src/util/parallel.cpp" "src/CMakeFiles/bfc.dir/util/parallel.cpp.o" "gcc" "src/CMakeFiles/bfc.dir/util/parallel.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/bfc.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/bfc.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/bfc.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/bfc.dir/util/table.cpp.o.d"
  "/root/repo/src/util/timer.cpp" "src/CMakeFiles/bfc.dir/util/timer.cpp.o" "gcc" "src/CMakeFiles/bfc.dir/util/timer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
