# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example.quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example.quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.dataset_analysis "/root/repo/build/examples/dataset_analysis" "--preset" "arXiv cond-mat" "--scale" "0.02")
set_tests_properties(example.dataset_analysis PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.algorithm_selection "/root/repo/build/examples/algorithm_selection" "--n" "800" "--edges" "4000")
set_tests_properties(example.algorithm_selection PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;10;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.community_peeling "/root/repo/build/examples/community_peeling" "--rows" "24")
set_tests_properties(example.community_peeling PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;12;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.streaming_updates "/root/repo/build/examples/streaming_updates" "--events" "1500" "--window" "400")
set_tests_properties(example.streaming_updates PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.butterfly_tool_count "/root/repo/build/examples/butterfly_tool" "count" "--preset" "GitHub" "--scale" "0.02")
set_tests_properties(example.butterfly_tool_count PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.butterfly_tool_stats "/root/repo/build/examples/butterfly_tool" "stats" "--preset" "Producers" "--scale" "0.02")
set_tests_properties(example.butterfly_tool_stats PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.butterfly_tool_peel "/root/repo/build/examples/butterfly_tool" "peel" "--preset" "GitHub" "--scale" "0.02" "--k" "2" "--mode" "wing")
set_tests_properties(example.butterfly_tool_peel PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.butterfly_tool_pairs "/root/repo/build/examples/butterfly_tool" "pairs" "--preset" "Producers" "--scale" "0.02" "--top" "5")
set_tests_properties(example.butterfly_tool_pairs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.butterfly_tool_prune "/root/repo/build/examples/butterfly_tool" "prune" "--preset" "Producers" "--scale" "0.02")
set_tests_properties(example.butterfly_tool_prune PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
