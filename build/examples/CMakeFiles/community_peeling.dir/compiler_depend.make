# Empty compiler generated dependencies file for community_peeling.
# This may be replaced when dependencies are built.
