file(REMOVE_RECURSE
  "CMakeFiles/community_peeling.dir/community_peeling.cpp.o"
  "CMakeFiles/community_peeling.dir/community_peeling.cpp.o.d"
  "community_peeling"
  "community_peeling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/community_peeling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
