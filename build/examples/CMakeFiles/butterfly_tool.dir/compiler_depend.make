# Empty compiler generated dependencies file for butterfly_tool.
# This may be replaced when dependencies are built.
