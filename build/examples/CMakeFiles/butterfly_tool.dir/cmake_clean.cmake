file(REMOVE_RECURSE
  "CMakeFiles/butterfly_tool.dir/butterfly_tool.cpp.o"
  "CMakeFiles/butterfly_tool.dir/butterfly_tool.cpp.o.d"
  "butterfly_tool"
  "butterfly_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/butterfly_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
