file(REMOVE_RECURSE
  "CMakeFiles/fig11_parallel.dir/fig11_parallel.cpp.o"
  "CMakeFiles/fig11_parallel.dir/fig11_parallel.cpp.o.d"
  "fig11_parallel"
  "fig11_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
