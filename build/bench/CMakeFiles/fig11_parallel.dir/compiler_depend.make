# Empty compiler generated dependencies file for fig11_parallel.
# This may be replaced when dependencies are built.
