# Empty compiler generated dependencies file for fig09_datasets.
# This may be replaced when dependencies are built.
