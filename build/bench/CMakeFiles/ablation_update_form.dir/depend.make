# Empty dependencies file for ablation_update_form.
# This may be replaced when dependencies are built.
