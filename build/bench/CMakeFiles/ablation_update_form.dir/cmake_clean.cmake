file(REMOVE_RECURSE
  "CMakeFiles/ablation_update_form.dir/ablation_update_form.cpp.o"
  "CMakeFiles/ablation_update_form.dir/ablation_update_form.cpp.o.d"
  "ablation_update_form"
  "ablation_update_form.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_update_form.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
