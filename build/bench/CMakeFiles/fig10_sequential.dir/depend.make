# Empty dependencies file for fig10_sequential.
# This may be replaced when dependencies are built.
