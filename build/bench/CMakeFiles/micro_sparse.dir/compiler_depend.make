# Empty compiler generated dependencies file for micro_sparse.
# This may be replaced when dependencies are built.
