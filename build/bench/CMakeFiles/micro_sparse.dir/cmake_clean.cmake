file(REMOVE_RECURSE
  "CMakeFiles/micro_sparse.dir/micro_sparse.cpp.o"
  "CMakeFiles/micro_sparse.dir/micro_sparse.cpp.o.d"
  "micro_sparse"
  "micro_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
