file(REMOVE_RECURSE
  "CMakeFiles/ablation_storage_format.dir/ablation_storage_format.cpp.o"
  "CMakeFiles/ablation_storage_format.dir/ablation_storage_format.cpp.o.d"
  "ablation_storage_format"
  "ablation_storage_format.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_storage_format.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
