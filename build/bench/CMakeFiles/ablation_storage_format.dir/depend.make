# Empty dependencies file for ablation_storage_format.
# This may be replaced when dependencies are built.
