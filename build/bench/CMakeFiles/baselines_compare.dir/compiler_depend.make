# Empty compiler generated dependencies file for baselines_compare.
# This may be replaced when dependencies are built.
