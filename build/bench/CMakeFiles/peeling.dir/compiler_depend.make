# Empty compiler generated dependencies file for peeling.
# This may be replaced when dependencies are built.
