file(REMOVE_RECURSE
  "CMakeFiles/peeling.dir/peeling.cpp.o"
  "CMakeFiles/peeling.dir/peeling.cpp.o.d"
  "peeling"
  "peeling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peeling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
