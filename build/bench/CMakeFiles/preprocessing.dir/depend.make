# Empty dependencies file for preprocessing.
# This may be replaced when dependencies are built.
