file(REMOVE_RECURSE
  "CMakeFiles/ablation_partition_side.dir/ablation_partition_side.cpp.o"
  "CMakeFiles/ablation_partition_side.dir/ablation_partition_side.cpp.o.d"
  "ablation_partition_side"
  "ablation_partition_side.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_partition_side.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
