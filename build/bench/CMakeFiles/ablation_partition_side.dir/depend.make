# Empty dependencies file for ablation_partition_side.
# This may be replaced when dependencies are built.
