#!/usr/bin/env bash
# Contract test for bfc-analyze's incremental cache (--cache): a cold run
# analyzes every file, a warm run over the unchanged tree skips >= 90% of
# them (in practice: all), and editing exactly one file re-analyzes exactly
# that file. Works on a scratch copy of the real tree so the edit never
# touches the checkout. Wired as the `analyze-cache` ctest.
set -euo pipefail

bin="${1:?usage: check_analyze_cache.sh <bfc-analyze-binary> <repo-root>}"
root="${2:?usage: check_analyze_cache.sh <bfc-analyze-binary> <repo-root>}"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

mkdir -p "$tmp/tree/tools"
cp -r "$root/src" "$root/bench" "$root/examples" "$root/docs" "$tmp/tree/"
cp -r "$root/tools/analyze" "$tmp/tree/tools/"  # registry + baseline

cache="$tmp/analyze.cache"

# Prints "<hits> <misses>" for one run.
run() {
  "$bin" --root "$tmp/tree" \
         --baseline "$tmp/tree/tools/analyze/baseline.json" \
         --cache "$cache" src bench examples >/dev/null 2>"$tmp/stderr" \
    || { echo "check_analyze_cache: FAIL — analyzer exited nonzero:" >&2
         cat "$tmp/stderr" >&2; exit 1; }
  sed -nE 's/.*cache: ([0-9]+) hits?, ([0-9]+) miss(es)?.*/\1 \2/p' \
    "$tmp/stderr"
}

read -r hits misses <<<"$(run)"
total=$((hits + misses))
if ((hits != 0 || total == 0)); then
  echo "check_analyze_cache: FAIL — cold run expected 0 hits over >0 files," \
       "got $hits hits, $misses misses" >&2
  exit 1
fi
echo "cold run: $misses files analyzed"

read -r hits misses <<<"$(run)"
# The contract is >= 90% skipped; an unchanged tree should hit 100%.
if ((hits * 10 < total * 9)); then
  echo "check_analyze_cache: FAIL — warm run skipped only $hits/$total" >&2
  exit 1
fi
echo "warm run: $hits/$total files skipped"

# Edit one file: exactly that file must be re-analyzed.
victim="$(find "$tmp/tree/src" -name '*.cpp' | sort | head -n1)"
printf '\n// touched by check_analyze_cache.sh\n' >>"$victim"
read -r hits misses <<<"$(run)"
if ((misses != 1 || hits != total - 1)); then
  echo "check_analyze_cache: FAIL — after editing one file expected" \
       "1 miss / $((total - 1)) hits, got $misses misses / $hits hits" >&2
  exit 1
fi
echo "edit invalidation: exactly 1 file re-analyzed"

echo "check_analyze_cache: OK"
