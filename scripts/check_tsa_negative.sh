#!/usr/bin/env bash
# Negative-compile smoke for the Thread Safety Analysis annotations: proves
# the BFC_* attribute macros actually *do* something under clang by checking
# that (a) a well-locked translation unit compiles under
# -Werror=thread-safety and (b) the same unit with the lock removed does
# NOT. Run by the clang-tsa CI job; skips with a notice when no clang++ is
# on PATH (the attributes compile to nothing elsewhere, so there is nothing
# to smoke-test).
#
#   scripts/check_tsa_negative.sh [clang++-binary]
set -euo pipefail

cd "$(dirname "$0")/.."

cxx="${1:-clang++}"
if ! command -v "$cxx" >/dev/null 2>&1; then
  echo "check_tsa_negative: SKIP — '$cxx' not found (TSA is clang-only)"
  exit 0
fi
if ! "$cxx" --version 2>/dev/null | grep -qi clang; then
  echo "check_tsa_negative: SKIP — '$cxx' is not clang (TSA is clang-only)"
  exit 0
fi

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

flags=(-std=c++20 -fsyntax-only -Isrc -Werror=thread-safety
       -Werror=thread-safety-beta)

# --- positive control: correctly locked code must compile -------------------
cat > "$tmpdir/good.cpp" <<'EOF'
#include "util/sync.hpp"
struct Guarded {
  bfc::Mutex mu{"tsa.smoke"};
  int value BFC_GUARDED_BY(mu) = 0;
  void bump() {
    const bfc::MutexLock lock(mu);
    ++value;
  }
  void bump_locked() BFC_REQUIRES(mu) { ++value; }
};
EOF
if ! "$cxx" "${flags[@]}" "$tmpdir/good.cpp"; then
  echo "check_tsa_negative: FAIL — correctly locked code rejected" >&2
  exit 1
fi

# --- negative control: an unlocked guarded access must NOT compile ----------
cat > "$tmpdir/bad.cpp" <<'EOF'
#include "util/sync.hpp"
struct Guarded {
  bfc::Mutex mu{"tsa.smoke"};
  int value BFC_GUARDED_BY(mu) = 0;
  void bump_unlocked() { ++value; }  // no lock: -Werror=thread-safety error
};
EOF
if "$cxx" "${flags[@]}" "$tmpdir/bad.cpp" 2>"$tmpdir/bad.err"; then
  echo "check_tsa_negative: FAIL — unlocked guarded access compiled" >&2
  exit 1
fi
if ! grep -q "thread-safety" "$tmpdir/bad.err"; then
  echo "check_tsa_negative: FAIL — rejected for the wrong reason:" >&2
  cat "$tmpdir/bad.err" >&2
  exit 1
fi

# --- negative control: calling a REQUIRES function without the lock ---------
cat > "$tmpdir/bad_requires.cpp" <<'EOF'
#include "util/sync.hpp"
struct Guarded {
  bfc::Mutex mu{"tsa.smoke"};
  int value BFC_GUARDED_BY(mu) = 0;
  void bump_locked() BFC_REQUIRES(mu) { ++value; }
  void caller() { bump_locked(); }  // lock not held: error
};
EOF
if "$cxx" "${flags[@]}" "$tmpdir/bad_requires.cpp" 2>/dev/null; then
  echo "check_tsa_negative: FAIL — REQUIRES call without lock compiled" >&2
  exit 1
fi

echo "check_tsa_negative: OK (annotations enforce locking under $cxx)"
