#!/usr/bin/env bash
# Project lint gate: two repo-specific rules enforced with grep, then
# clang-tidy over the library sources when the tool is available.
#
#   scripts/lint.sh [--require-clang-tidy] [build-dir]
#
# Rule A — no `#pragma omp critical` in src/la/ or src/count/. The hot
#   kernels aggregate through per-thread accumulators + reduction clauses;
#   a critical section in those loops serialises the exact code the paper's
#   scaling figures measure. (svc/ may use locks; that layer is excluded.)
#
# Rule B — every source file that opens a BFC_TRACE_SCOPE must also publish
#   at least one metric (BFC_COUNT_ADD / BFC_GAUGE_SET / BFC_HIST_OBSERVE).
#   A trace span with no counters renders as a bare timing bar in the run
#   report, with nothing to correlate the time against.
#
# Rule C — no raw std synchronization primitives (std::mutex,
#   std::shared_mutex, std::condition_variable[_any], std::scoped_lock,
#   std::lock_guard, std::unique_lock, std::shared_lock) anywhere in src/
#   outside util/sync.hpp. Raw primitives bypass both the Clang Thread
#   Safety Analysis annotations and the checked-build lock-order checker;
#   bfc::Mutex / bfc::SharedMutex / bfc::CondVar and their guards are the
#   only sanctioned spellings. Lines that genuinely must touch the std
#   types (the wrapper internals, the lock-order checker's own untracked
#   mutex) carry a `// bfc-lint: raw-sync-ok` comment.
#
# Rule D — every std::atomic operation in src/obs/ and src/svc/ must name
#   its memory order explicitly (the argument may sit on the next line);
#   a deliberate seq_cst needs a `// seq_cst: <why>` justification. The
#   default-seq_cst spelling hides the ordering decision exactly where the
#   concurrent layers need it visible.
#
# Rule E — every svc./obs./chk. metric name registered in src/ (via the
#   BFC_* macros or a direct Registry counter()/gauge()/histogram() call)
#   must appear somewhere under docs/. The metric catalog in
#   docs/telemetry.md is what dashboards and alerts are built against; an
#   undocumented instrument is a catalog that has silently rotted.
#
# clang-tidy — runs over src/*.cpp with the repo .clang-tidy profile when
#   clang-tidy and build/compile_commands.json exist. Skipped with a warning
#   otherwise (the dev container ships only g++); pass --require-clang-tidy
#   to turn the skip into a failure, as the CI lint lane does.
set -euo pipefail

cd "$(dirname "$0")/.."

require_tidy=0
build_dir=build
for arg in "$@"; do
  case "$arg" in
    --require-clang-tidy) require_tidy=1 ;;
    *) build_dir="$arg" ;;
  esac
done

fail=0

# --- Rule A: no omp critical in the counting kernels -----------------------
if matches=$(grep -rn "omp critical" src/la src/count 2>/dev/null); then
  echo "lint: FAIL rule A — 'omp critical' in counting kernels:" >&2
  echo "$matches" >&2
  echo "  (aggregate via per-thread buffers + reduction instead)" >&2
  fail=1
else
  echo "lint: rule A ok (no omp critical in src/la, src/count)"
fi

# --- Rule B: trace scopes paired with metric publishes ---------------------
unpaired=()
while IFS= read -r f; do
  if ! grep -Eq "BFC_COUNT_ADD|BFC_GAUGE_SET|BFC_HIST_OBSERVE" "$f"; then
    unpaired+=("$f")
  fi
done < <(grep -rl "BFC_TRACE_SCOPE" src --include='*.cpp')

if ((${#unpaired[@]})); then
  echo "lint: FAIL rule B — BFC_TRACE_SCOPE without any metric publish:" >&2
  printf '  %s\n' "${unpaired[@]}" >&2
  echo "  (add a BFC_COUNT_ADD/BFC_GAUGE_SET so the span is attributable)" >&2
  fail=1
else
  echo "lint: rule B ok (every trace scope file publishes a metric)"
fi

# --- Rule C: raw std sync primitives only inside the sync wrapper -----------
raw_sync='std::(mutex|shared_mutex|condition_variable|condition_variable_any|scoped_lock|lock_guard|unique_lock|shared_lock)[[:space:]<{(;]'
if matches=$(grep -rnE "$raw_sync" src 2>/dev/null \
               | grep -v 'bfc-lint: raw-sync-ok'); then
  echo "lint: FAIL rule C — raw std sync primitive outside util/sync.hpp:" >&2
  echo "$matches" >&2
  echo "  (use bfc::Mutex/SharedMutex/CondVar + MutexLock/WriterLock/SharedLock" >&2
  echo "   from util/sync.hpp, or annotate wrapper internals with" >&2
  echo "   '// bfc-lint: raw-sync-ok')" >&2
  fail=1
else
  echo "lint: rule C ok (no raw sync primitives outside util/sync.hpp)"
fi

# --- Rule D: explicit memory orders on obs/svc atomics ----------------------
# Join each atomic op with its continuation line so a memory_order argument
# wrapped by clang-format still counts, then flag ops with neither an
# explicit order nor a '// seq_cst: <why>' justification.
atomic_violations=$(
  find src/obs src/svc -name '*.hpp' -o -name '*.cpp' | sort | while IFS= read -r f; do
    awk -v file="$f" '
      {
        line = $0
        if (prev_pending) {
          joined = prev " " line
          if (joined !~ /memory_order/ && joined !~ /\/\/ seq_cst:/)
            printf "%s:%d: %s\n", file, prev_nr, prev
          prev_pending = 0
        }
        if (line ~ /\.(load|store|fetch_add|fetch_sub|exchange|compare_exchange_weak|compare_exchange_strong)\(/) {
          if (line ~ /memory_order/ || line ~ /\/\/ seq_cst:/) next
          prev = line; prev_nr = NR; prev_pending = 1
        }
      }
      END {
        if (prev_pending) printf "%s:%d: %s\n", file, prev_nr, prev
      }
    ' "$f"
  done
)
if [[ -n "$atomic_violations" ]]; then
  echo "lint: FAIL rule D — atomic op without explicit memory order:" >&2
  echo "$atomic_violations" >&2
  echo "  (name the order — relaxed for counters, acquire/release for" >&2
  echo "   publication — or justify seq_cst with '// seq_cst: <why>')" >&2
  fail=1
else
  echo "lint: rule D ok (obs/svc atomics name their memory orders)"
fi

# --- Rule E: every registered metric name is documented ---------------------
# Names are extracted only from metric-publishing contexts (the macros and
# direct Registry registrations), so mutex site names and span names don't
# count. Dynamically suffixed families (svc.slo.violations.<kind>) appear in
# source as a prefix literal ending in '.'; the trailing dot is stripped and
# the docs must mention the family prefix.
metric_names=$(
  {
    grep -rhoE 'BFC_(COUNT_ADD|GAUGE_SET|HIST_OBSERVE)\("[^"]+"' src \
        --include='*.cpp' --include='*.hpp'
    grep -rhoE '\.(counter|gauge|histogram)\("[^"]+"' src \
        --include='*.cpp' --include='*.hpp'
  } | sed -E 's/.*\("([^"]+)".*/\1/' \
    | grep -E '^(svc|obs|chk)\.' | sed -E 's/\.$//' | sort -u
)
undocumented=()
while IFS= read -r name; do
  [[ -z "$name" ]] && continue
  if ! grep -rqF "$name" docs; then
    undocumented+=("$name")
  fi
done <<<"$metric_names"

if ((${#undocumented[@]})); then
  echo "lint: FAIL rule E — metric registered in src/ but absent from docs/:" >&2
  printf '  %s\n' "${undocumented[@]}" >&2
  echo "  (add it to the catalog in docs/telemetry.md)" >&2
  fail=1
else
  echo "lint: rule E ok ($(wc -l <<<"$metric_names") metric names all documented)"
fi

# --- clang-tidy over the library ------------------------------------------
if command -v clang-tidy >/dev/null 2>&1; then
  if [[ ! -f "$build_dir/compile_commands.json" ]]; then
    echo "lint: generating $build_dir/compile_commands.json"
    cmake -B "$build_dir" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  fi
  mapfile -t sources < <(find src -name '*.cpp' | sort)
  echo "lint: clang-tidy over ${#sources[@]} sources"
  if ! clang-tidy -p "$build_dir" --quiet "${sources[@]}"; then
    echo "lint: FAIL clang-tidy" >&2
    fail=1
  fi
elif ((require_tidy)); then
  echo "lint: FAIL — clang-tidy required but not installed" >&2
  fail=1
else
  echo "lint: clang-tidy not installed, skipping (use --require-clang-tidy to enforce)"
fi

if ((fail)); then
  echo "lint: FAILED" >&2
  exit 1
fi
echo "lint: OK"
