#!/usr/bin/env bash
# Project lint gate: two repo-specific shell rules, the bfc-analyze static
# analyzer, then clang-tidy over the library sources when available.
#
#   scripts/lint.sh [--require-clang-tidy] [build-dir]
#
# Rule A — no `#pragma omp critical` in src/la/ or src/count/. The hot
#   kernels aggregate through per-thread accumulators + reduction clauses;
#   a critical section in those loops serialises the exact code the paper's
#   scaling figures measure. (svc/ may use locks; that layer is excluded.)
#
# Rule B — every source file that opens a BFC_TRACE_SCOPE must also publish
#   at least one metric (BFC_COUNT_ADD / BFC_GAUGE_SET / BFC_HIST_OBSERVE).
#   A trace span with no counters renders as a bare timing bar in the run
#   report, with nothing to correlate the time against.
#
# bfc-analyze — the token-aware rules that replaced the old grep rules C
#   (raw sync primitives), D (implicit memory orders) and E (undocumented
#   metrics), plus epoch-discipline, checked-accumulation,
#   cancellation-checkpoint and span-pairing. Runs against the checked-in
#   baseline (tools/analyze/baseline.json), so only NEW violations fail.
#   See docs/static-analysis.md for the rule catalog and suppression syntax.
#
# clang-tidy — runs over src/*.cpp with the repo .clang-tidy profile when
#   clang-tidy and build/compile_commands.json exist. Skipped with a warning
#   otherwise (the dev container ships only g++); pass --require-clang-tidy
#   to turn the skip into a failure, as the CI lint lane does.
set -euo pipefail

cd "$(dirname "$0")/.."

require_tidy=0
build_dir=build
for arg in "$@"; do
  case "$arg" in
    --require-clang-tidy) require_tidy=1 ;;
    *) build_dir="$arg" ;;
  esac
done

fail=0

# --- Rule A: no omp critical in the counting kernels -----------------------
if matches=$(grep -rn "omp critical" src/la src/count 2>/dev/null); then
  echo "lint: FAIL rule A — 'omp critical' in counting kernels:" >&2
  echo "$matches" >&2
  echo "  (aggregate via per-thread buffers + reduction instead)" >&2
  fail=1
else
  echo "lint: rule A ok (no omp critical in src/la, src/count)"
fi

# --- Rule B: trace scopes paired with metric publishes ---------------------
unpaired=()
while IFS= read -r f; do
  if ! grep -Eq "BFC_COUNT_ADD|BFC_GAUGE_SET|BFC_HIST_OBSERVE" "$f"; then
    unpaired+=("$f")
  fi
done < <(grep -rl "BFC_TRACE_SCOPE" src --include='*.cpp')

if ((${#unpaired[@]})); then
  echo "lint: FAIL rule B — BFC_TRACE_SCOPE without any metric publish:" >&2
  printf '  %s\n' "${unpaired[@]}" >&2
  echo "  (add a BFC_COUNT_ADD/BFC_GAUGE_SET so the span is attributable)" >&2
  fail=1
else
  echo "lint: rule B ok (every trace scope file publishes a metric)"
fi

# --- bfc-analyze: the token-aware project rules -----------------------------
analyze_bin="$build_dir/tools/analyze/bfc-analyze"
if [[ ! -x "$analyze_bin" ]]; then
  echo "lint: FAIL — $analyze_bin not built." >&2
  echo "  bfc-analyze replaced the old grep rules C/D/E; build it first:" >&2
  echo "    cmake -B $build_dir -S . && cmake --build $build_dir --target bfc-analyze" >&2
  fail=1
elif ! "$analyze_bin" --root . \
       --baseline tools/analyze/baseline.json \
       --cache "$build_dir/tools/analyze/analyze.cache" \
       src bench examples; then
  echo "lint: FAIL bfc-analyze — new findings above (not in tools/analyze/baseline.json)." >&2
  echo "  Fix them, suppress with '// bfc-analyze: <rule>-ok <why>', or" >&2
  echo "  re-baseline deliberately (docs/static-analysis.md#baseline-workflow)." >&2
  fail=1
else
  echo "lint: bfc-analyze ok (no findings beyond the checked-in baseline)"
fi

# --- clang-tidy over the library ------------------------------------------
if command -v clang-tidy >/dev/null 2>&1; then
  if [[ ! -f "$build_dir/compile_commands.json" ]]; then
    echo "lint: generating $build_dir/compile_commands.json"
    cmake -B "$build_dir" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  fi
  mapfile -t sources < <(find src -name '*.cpp' | sort)
  echo "lint: clang-tidy over ${#sources[@]} sources"
  if ! clang-tidy -p "$build_dir" --quiet "${sources[@]}"; then
    echo "lint: FAIL clang-tidy" >&2
    fail=1
  fi
elif ((require_tidy)); then
  echo "lint: FAIL — clang-tidy required but not installed" >&2
  fail=1
else
  echo "lint: clang-tidy not installed, skipping (use --require-clang-tidy to enforce)"
fi

if ((fail)); then
  echo "lint: FAILED" >&2
  exit 1
fi
echo "lint: OK"
