#include <gtest/gtest.h>

#include <numeric>

#include "count/baselines.hpp"
#include "gen/generators.hpp"
#include "graph/reorder.hpp"
#include "la/count.hpp"
#include "sparse/ops.hpp"
#include "test_helpers.hpp"

namespace bfc::graph {
namespace {

using bfc::testing::random_graph;

TEST(Relabel, IdentityPermutationIsNoop) {
  const auto g = random_graph(9, 7, 0.4, 1);
  std::vector<vidx_t> id1(9), id2(7);
  std::iota(id1.begin(), id1.end(), 0);
  std::iota(id2.begin(), id2.end(), 0);
  EXPECT_EQ(relabel(g, id1, id2), g);
}

TEST(Relabel, RejectsInvalidPermutations) {
  const auto g = random_graph(4, 4, 0.5, 2);
  EXPECT_THROW(relabel(g, {0, 1, 2}, {0, 1, 2, 3}), std::invalid_argument);
  EXPECT_THROW(relabel(g, {0, 1, 2, 2}, {0, 1, 2, 3}), std::invalid_argument);
  EXPECT_THROW(relabel(g, {0, 1, 2, 4}, {0, 1, 2, 3}), std::invalid_argument);
}

TEST(Relabel, EdgesMapThroughPermutation) {
  const auto g = BipartiteGraph::from_edges(3, 3, {{0, 0}, {1, 2}, {2, 1}});
  const BipartiteGraph r = relabel(g, {2, 0, 1}, {1, 2, 0});
  EXPECT_EQ(r.edge_count(), 3);
  EXPECT_TRUE(r.has_edge(2, 1));  // (0,0) -> (2,1)
  EXPECT_TRUE(r.has_edge(0, 0));  // (1,2) -> (0,0)
  EXPECT_TRUE(r.has_edge(1, 2));  // (2,1) -> (1,2)
}

class ReorderProperty : public ::testing::TestWithParam<Order> {};

TEST_P(ReorderProperty, PreservesStructuralInvariants) {
  const auto g = random_graph(25, 18, 0.25, 7);
  const Relabeling r = reorder(g, GetParam(), 99);
  EXPECT_EQ(r.graph.n1(), g.n1());
  EXPECT_EQ(r.graph.n2(), g.n2());
  EXPECT_EQ(r.graph.edge_count(), g.edge_count());
  // Butterfly count is invariant under relabeling — across all invariants.
  const count_t expected = count::wedge_reference(g);
  EXPECT_EQ(count::wedge_reference(r.graph), expected);
  for (const la::Invariant inv :
       {la::Invariant::kInv1, la::Invariant::kInv6})
    EXPECT_EQ(la::count_butterflies(r.graph, inv), expected);
  // Degree multiset preserved.
  auto deg_sorted = [](const BipartiteGraph& gr) {
    auto d = sparse::row_degrees(gr.csr());
    std::sort(d.begin(), d.end());
    return d;
  };
  EXPECT_EQ(deg_sorted(r.graph), deg_sorted(g));
}

INSTANTIATE_TEST_SUITE_P(Orders, ReorderProperty,
                         ::testing::Values(Order::kDegreeAscending,
                                           Order::kDegreeDescending,
                                           Order::kRandom));

TEST(Reorder, DegreeOrdersAreMonotone) {
  const auto g = gen::preferential_attachment(200, 150, 3, 11);
  const Relabeling asc = reorder(g, Order::kDegreeAscending);
  const auto deg_asc = sparse::row_degrees(asc.graph.csr());
  for (std::size_t i = 1; i < deg_asc.size(); ++i)
    EXPECT_LE(deg_asc[i - 1], deg_asc[i]);
  const Relabeling desc = reorder(g, Order::kDegreeDescending);
  const auto deg_desc = sparse::row_degrees(desc.graph.csr());
  for (std::size_t i = 1; i < deg_desc.size(); ++i)
    EXPECT_GE(deg_desc[i - 1], deg_desc[i]);
}

TEST(Reorder, RandomOrderDeterministicBySeed) {
  const auto g = random_graph(20, 20, 0.3, 5);
  EXPECT_EQ(reorder(g, Order::kRandom, 1).graph,
            reorder(g, Order::kRandom, 1).graph);
  EXPECT_NE(reorder(g, Order::kRandom, 1).graph,
            reorder(g, Order::kRandom, 2).graph);
}

TEST(PreferentialAttachment, BasicShape) {
  const auto g = gen::preferential_attachment(300, 200, 4, 17);
  EXPECT_EQ(g.n1(), 300);
  EXPECT_EQ(g.n2(), 200);
  EXPECT_EQ(g.edge_count(), 1200);  // every V1 vertex gets exactly 4 edges
  for (vidx_t u = 0; u < g.n1(); ++u) EXPECT_EQ(g.csr().row_degree(u), 4);
  // Hubs emerge on the V2 side: max degree well above the mean (6).
  const auto deg2 = sparse::row_degrees(g.csc());
  EXPECT_GT(*std::max_element(deg2.begin(), deg2.end()), 18);
  EXPECT_THROW(gen::preferential_attachment(10, 5, 6, 1),
               std::invalid_argument);
  EXPECT_THROW(gen::preferential_attachment(0, 5, 1, 1),
               std::invalid_argument);
}

TEST(PreferentialAttachment, DeterministicBySeed) {
  EXPECT_EQ(gen::preferential_attachment(50, 40, 2, 3),
            gen::preferential_attachment(50, 40, 2, 3));
}

}  // namespace
}  // namespace bfc::graph
