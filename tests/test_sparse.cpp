#include <gtest/gtest.h>

#include "dense/dense_matrix.hpp"
#include "dense/spec.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "sparse/ops.hpp"
#include "sparse/spgemm.hpp"
#include "test_helpers.hpp"

namespace bfc::sparse {
namespace {

using dense::DenseMatrix;

TEST(CsrPattern, EmptyMatrix) {
  const CsrPattern m = CsrPattern::empty(3, 4);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m.nnz(), 0);
  EXPECT_TRUE(m.row(1).empty());
}

TEST(CsrPattern, ValidationRejectsBadArrays) {
  // row_ptr wrong length
  EXPECT_THROW(CsrPattern(2, 2, {0, 1}, {0}), std::invalid_argument);
  // row_ptr not starting at 0
  EXPECT_THROW(CsrPattern(1, 2, {1, 1}, {}), std::invalid_argument);
  // back != nnz
  EXPECT_THROW(CsrPattern(1, 2, {0, 2}, {0}), std::invalid_argument);
  // column out of range
  EXPECT_THROW(CsrPattern(1, 2, {0, 1}, {2}), std::invalid_argument);
  // unsorted row
  EXPECT_THROW(CsrPattern(1, 3, {0, 2}, {2, 0}), std::invalid_argument);
  // duplicate within a row
  EXPECT_THROW(CsrPattern(1, 3, {0, 2}, {1, 1}), std::invalid_argument);
  // non-monotone row_ptr
  EXPECT_THROW(CsrPattern(2, 3, {0, 2, 1}, {0, 1}), std::invalid_argument);
}

TEST(CsrPattern, DenseRoundTrip) {
  const DenseMatrix d = bfc::testing::random_dense01(9, 6, 0.35, 42);
  const CsrPattern m = CsrPattern::from_dense(d);
  EXPECT_EQ(m.to_dense(), d);
  EXPECT_EQ(m.nnz(), d.sum());
}

TEST(CsrPattern, HasMembership) {
  const DenseMatrix d = {{0, 1, 0}, {1, 0, 1}};
  const CsrPattern m = CsrPattern::from_dense(d);
  EXPECT_TRUE(m.has(0, 1));
  EXPECT_FALSE(m.has(0, 0));
  EXPECT_TRUE(m.has(1, 2));
  EXPECT_FALSE(m.has(1, 1));
}

TEST(CsrPattern, TransposeMatchesDense) {
  const DenseMatrix d = bfc::testing::random_dense01(7, 11, 0.3, 5);
  const CsrPattern m = CsrPattern::from_dense(d);
  EXPECT_EQ(m.transpose().to_dense(), d.transpose());
  EXPECT_EQ(m.transpose().transpose(), m);
}

TEST(CsrPattern, RowSpansSortedUnique) {
  const CsrPattern m =
      CsrPattern::from_dense(bfc::testing::random_dense01(6, 6, 0.5, 8));
  for (vidx_t r = 0; r < m.rows(); ++r) {
    const auto row = m.row(r);
    for (std::size_t i = 1; i < row.size(); ++i)
      EXPECT_LT(row[i - 1], row[i]);
  }
}

TEST(CooBuilder, DeduplicatesAndSorts) {
  CooBuilder b(3, 3);
  b.add(2, 1);
  b.add(0, 2);
  b.add(2, 1);  // duplicate
  b.add(0, 0);
  const CsrPattern m = b.build();
  EXPECT_EQ(m.nnz(), 3);
  EXPECT_TRUE(m.has(2, 1));
  EXPECT_TRUE(m.has(0, 0));
  EXPECT_TRUE(m.has(0, 2));
}

TEST(CooBuilder, RangeChecked) {
  CooBuilder b(2, 2);
  EXPECT_THROW(b.add(2, 0), std::invalid_argument);
  EXPECT_THROW(b.add(0, -1), std::invalid_argument);
}

TEST(Ops, Degrees) {
  const DenseMatrix d = {{1, 1, 0}, {0, 0, 0}, {1, 0, 1}};
  const CsrPattern m = CsrPattern::from_dense(d);
  EXPECT_EQ(row_degrees(m), (std::vector<offset_t>{2, 0, 2}));
  EXPECT_EQ(col_degrees(m), (std::vector<offset_t>{2, 1, 1}));
  EXPECT_EQ(empty_row_count(m), 1);
}

TEST(Ops, SpmvBothDirections) {
  const DenseMatrix d = {{1, 0, 1}, {0, 1, 1}};
  const CsrPattern m = CsrPattern::from_dense(d);
  const std::vector<count_t> x{1, 2, 3};
  EXPECT_EQ(spmv(m, x), (std::vector<count_t>{4, 5}));
  const std::vector<count_t> y{10, 1};
  EXPECT_EQ(spmv_transpose(m, y), (std::vector<count_t>{10, 1, 11}));
  EXPECT_THROW(spmv(m, y), std::invalid_argument);
  EXPECT_THROW(spmv_transpose(m, x), std::invalid_argument);
}

TEST(Ops, IntersectionSize) {
  const std::vector<vidx_t> a{1, 3, 5, 7};
  const std::vector<vidx_t> b{3, 4, 5, 9};
  EXPECT_EQ(intersection_size(a, b), 2);
  EXPECT_EQ(intersection_size(a, a), 4);
  EXPECT_EQ(intersection_size(a, std::vector<vidx_t>{}), 0);
}

TEST(Ops, MaskRowsColsEntries) {
  const DenseMatrix d = {{1, 1}, {1, 1}, {1, 0}};
  const CsrPattern m = CsrPattern::from_dense(d);

  const std::vector<std::uint8_t> row_mask{1, 0, 1};
  const CsrPattern rm = mask_rows(m, row_mask);
  EXPECT_EQ(rm.rows(), 3);  // dimensions preserved
  EXPECT_EQ(rm.nnz(), 3);
  EXPECT_TRUE(rm.row(1).empty());

  const std::vector<std::uint8_t> col_mask{0, 1};
  const CsrPattern cm = mask_cols(m, col_mask);
  EXPECT_EQ(cm.nnz(), 2);
  EXPECT_FALSE(cm.has(0, 0));
  EXPECT_TRUE(cm.has(0, 1));

  const std::vector<std::uint8_t> entry_mask{1, 0, 0, 1, 1};
  const CsrPattern em = mask_entries(m, entry_mask);
  EXPECT_EQ(em.nnz(), 3);
  EXPECT_TRUE(em.has(0, 0));
  EXPECT_FALSE(em.has(0, 1));
  EXPECT_TRUE(em.has(1, 1));

  EXPECT_THROW(mask_rows(m, col_mask), std::invalid_argument);
  EXPECT_THROW(mask_entries(m, row_mask), std::invalid_argument);
}

TEST(Ops, EdgesListsCsrOrder) {
  const DenseMatrix d = {{0, 1}, {1, 1}};
  const auto e = edges(CsrPattern::from_dense(d));
  ASSERT_EQ(e.size(), 3u);
  EXPECT_EQ(e[0], (std::pair<vidx_t, vidx_t>{0, 1}));
  EXPECT_EQ(e[1], (std::pair<vidx_t, vidx_t>{1, 0}));
  EXPECT_EQ(e[2], (std::pair<vidx_t, vidx_t>{1, 1}));
}

class SpgemmRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SpgemmRandom, MatchesDenseProduct) {
  const auto seed = GetParam();
  const DenseMatrix da = bfc::testing::random_dense01(6, 8, 0.4, seed);
  const DenseMatrix db = bfc::testing::random_dense01(8, 5, 0.4, seed + 7);
  const CsrCounts c =
      spgemm(CsrPattern::from_dense(da), CsrPattern::from_dense(db));
  EXPECT_EQ(c.to_dense(), multiply(da, db));
}

TEST_P(SpgemmRandom, GramMatchesDense) {
  const auto seed = GetParam();
  const DenseMatrix da = bfc::testing::random_dense01(7, 9, 0.35, seed);
  const CsrPattern a = CsrPattern::from_dense(da);
  const CsrCounts b = gram(a, a.transpose());
  EXPECT_EQ(b.to_dense(), multiply(da, da.transpose()));
}

TEST_P(SpgemmRandom, PairwiseButterfliesMatchesSpec) {
  const auto seed = GetParam();
  const DenseMatrix da = bfc::testing::random_dense01(10, 8, 0.45, seed);
  const CsrPattern a = CsrPattern::from_dense(da);
  EXPECT_EQ(gram_pairwise_butterflies(a, a.transpose()),
            dense::butterflies_spec(da));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpgemmRandom,
                         ::testing::Values(1u, 2u, 3u, 10u, 20u, 31337u));

TEST(Spgemm, DimensionMismatchThrows) {
  EXPECT_THROW(spgemm(CsrPattern::empty(2, 3), CsrPattern::empty(2, 3)),
               std::invalid_argument);
  const CsrPattern a = CsrPattern::empty(2, 3);
  EXPECT_THROW(gram(a, CsrPattern::empty(2, 3)), std::invalid_argument);
}

TEST(Spgemm, EmptyOperands) {
  const CsrCounts c = spgemm(CsrPattern::empty(0, 4), CsrPattern::empty(4, 0));
  EXPECT_EQ(c.rows, 0);
  EXPECT_EQ(c.cols, 0);
  EXPECT_EQ(c.nnz(), 0);
}

}  // namespace
}  // namespace bfc::sparse
