// Tests for the observability layer (src/obs/): sharded counters under
// OpenMP, histogram bucketing, the JSON value tree, scoped tracing, and the
// RunReport — plus an end-to-end check that the kernel counters recorded
// during a counting run agree with the dense wedge specification.
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "dense/spec.hpp"
#include "la/count.hpp"
#include "obs/export.hpp"
#include "obs/flight.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/report.hpp"
#include "obs/spans.hpp"
#include "obs/trace.hpp"
#include "test_helpers.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace bfc {
namespace {

// ---------------------------------------------------------------- Counter

TEST(ObsCounter, AddAndReset) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0);
  c.add(5);
  c.increment();
  EXPECT_EQ(c.value(), 6);
  c.reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(ObsCounter, AggregatesAcrossOmpThreads) {
  // Every thread hammers the same counter; the per-thread shards must sum
  // to the exact total regardless of how iterations were distributed.
  obs::Counter c;
  constexpr int kThreads = 4;
  constexpr int kIters = 100000;
  ThreadCountGuard guard(kThreads);
#pragma omp parallel num_threads(kThreads)
  {
#pragma omp for
    for (int i = 0; i < kIters; ++i) c.add(1);
  }
  EXPECT_EQ(c.value(), kIters);
}

TEST(ObsRegistry, CounterReferencesStableAcrossReset) {
  obs::Counter& a = obs::Registry::instance().counter("test.obs.stable");
  a.add(3);
  obs::Registry::instance().reset();
  EXPECT_EQ(a.value(), 0);
  obs::Counter& b = obs::Registry::instance().counter("test.obs.stable");
  EXPECT_EQ(&a, &b);
  b.add(2);
  EXPECT_EQ(a.value(), 2);
}

// -------------------------------------------------------------- Histogram

TEST(ObsHistogram, ExponentialBucketing) {
  obs::Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.min(), 0);  // empty histogram reports 0, not the sentinel
  EXPECT_EQ(h.max(), 0);

  h.observe(0);   // bucket 0 (upper bound 0)
  h.observe(1);   // bucket 1 (upper bound 1)
  h.observe(2);   // bucket 2 (upper bound 3)
  h.observe(3);   // bucket 2
  h.observe(4);   // bucket 3 (upper bound 7)
  h.observe(-7);  // clamped to 0, lands in bucket 0

  EXPECT_EQ(h.count(), 6);
  EXPECT_EQ(h.sum(), 0 + 1 + 2 + 3 + 4);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 4);
  EXPECT_EQ(h.bucket_count(0), 2);
  EXPECT_EQ(h.bucket_count(1), 1);
  EXPECT_EQ(h.bucket_count(2), 2);
  EXPECT_EQ(h.bucket_count(3), 1);
  EXPECT_EQ(obs::Histogram::bucket_upper(0), 0);
  EXPECT_EQ(obs::Histogram::bucket_upper(1), 1);
  EXPECT_EQ(obs::Histogram::bucket_upper(2), 3);
  EXPECT_EQ(obs::Histogram::bucket_upper(3), 7);

  h.reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
}

TEST(ObsHistogram, HugeValuesClampIntoLastBucket) {
  obs::Histogram h;
  h.observe(std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.bucket_count(obs::Histogram::kBuckets - 1), 1);
}

// ------------------------------------------------------------------- JSON

TEST(ObsJson, DumpParseRoundTrip) {
  obs::Json doc = obs::Json::object();
  doc["int"] = obs::Json(std::int64_t{42});
  doc["neg"] = obs::Json(std::int64_t{-7});
  doc["pi"] = obs::Json(3.25);  // exactly representable
  doc["flag"] = obs::Json(true);
  doc["null"] = obs::Json(nullptr);
  doc["text"] = obs::Json("line1\nline2 \"quoted\" \\slash");
  obs::Json arr = obs::Json::array();
  arr.push_back(obs::Json(std::int64_t{1}));
  arr.push_back(obs::Json("two"));
  doc["arr"] = arr;

  for (const int indent : {0, 2}) {
    const obs::Json back = obs::Json::parse(doc.dump(indent));
    EXPECT_EQ(back.at("int").as_int(), 42);
    EXPECT_EQ(back.at("neg").as_int(), -7);
    EXPECT_DOUBLE_EQ(back.at("pi").as_double(), 3.25);
    EXPECT_TRUE(back.at("flag").as_bool());
    EXPECT_TRUE(back.at("null").is_null());
    EXPECT_EQ(back.at("text").as_string(), "line1\nline2 \"quoted\" \\slash");
    EXPECT_EQ(back.at("arr").size(), 2u);
    EXPECT_EQ(back.at("arr").at(0).as_int(), 1);
    EXPECT_EQ(back.at("arr").at(1).as_string(), "two");
  }
}

TEST(ObsJson, KeysAreSortedAndStable) {
  obs::Json doc = obs::Json::object();
  doc["zebra"] = obs::Json(1);
  doc["apple"] = obs::Json(2);
  const std::string text = doc.dump();
  EXPECT_LT(text.find("apple"), text.find("zebra"));
  EXPECT_EQ(text, obs::Json::parse(text).dump());
}

TEST(ObsJson, ParserRejectsMalformedInput) {
  EXPECT_THROW(obs::Json::parse(""), std::runtime_error);
  EXPECT_THROW(obs::Json::parse("{"), std::runtime_error);
  EXPECT_THROW(obs::Json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(obs::Json::parse("{\"a\": 1} trailing"), std::runtime_error);
  EXPECT_THROW(obs::Json::parse("'single'"), std::runtime_error);
  EXPECT_THROW(obs::Json::parse("nul"), std::runtime_error);
  EXPECT_THROW(obs::Json::parse("{\"a\" 1}"), std::runtime_error);
}

TEST(ObsJson, ParsesUnicodeEscapes) {
  const std::string utf8_eacute =
      "a\xc3\xa9"
      "b";  // "aéb" in UTF-8
  // é must decode to the two-byte UTF-8 sequence...
  EXPECT_EQ(obs::Json::parse(R"("a\u00e9b")").as_string(), utf8_eacute);
  // ...and raw UTF-8 bytes inside a string pass through untouched.
  EXPECT_EQ(obs::Json::parse("\"" + utf8_eacute + "\"").as_string(),
            utf8_eacute);
}

// ------------------------------------------------------------------ Trace

TEST(ObsTrace, RecordsSpansOnlyWhenEnabled) {
  obs::Tracer::clear();
  obs::Tracer::set_enabled(false);
  { BFC_TRACE_SCOPE("test.disabled"); }
  EXPECT_TRUE(obs::Tracer::events().empty());

  obs::Tracer::set_enabled(true);
  { BFC_TRACE_SCOPE("test.enabled"); }
  obs::Tracer::set_enabled(false);

  const auto events = obs::Tracer::events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "test.enabled");
  EXPECT_GE(events[0].ts_us, 0);
  EXPECT_GE(events[0].dur_us, 0);
  obs::Tracer::clear();
}

TEST(ObsTrace, ChromeJsonIsValidTraceEventFormat) {
  obs::Tracer::clear();
  obs::Tracer::set_enabled(true);
  { BFC_TRACE_SCOPE("span.a"); }
  { BFC_TRACE_SCOPE("span.b"); }
  obs::Tracer::set_enabled(false);

  const std::string path = ::testing::TempDir() + "bfc_trace_test.json";
  obs::Tracer::write_chrome_json(path);
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const obs::Json doc = obs::Json::parse(buf.str());
  ASSERT_TRUE(doc.has("traceEvents"));
  ASSERT_EQ(doc.at("traceEvents").size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    const obs::Json& ev = doc.at("traceEvents").at(i);
    EXPECT_EQ(ev.at("ph").as_string(), "X");
    EXPECT_TRUE(ev.at("name").is_string());
    EXPECT_TRUE(ev.at("ts").is_number());
    EXPECT_TRUE(ev.at("dur").is_number());
    EXPECT_TRUE(ev.at("tid").is_int());
  }
  obs::Tracer::clear();
  std::remove(path.c_str());
}

// -------------------------------------------------------------- RunReport

TEST(ObsReport, TopLevelKeysAndSampleStats) {
  obs::RunReport report;
  report.set_config("scale", obs::Json(0.5));
  Samples s;
  s.add(0.1);
  s.add(0.3);
  s.add(0.2);
  report.add_sample("cell", s);
  report.capture_environment();
  report.set_metrics_from_registry();

  // Round-trip through text so we validate what a consumer actually reads.
  const obs::Json doc = obs::Json::parse(report.to_json().dump(2));
  for (const char* key : {"config", "environment", "metrics", "samples"})
    EXPECT_TRUE(doc.has(key)) << key;

  EXPECT_DOUBLE_EQ(doc.at("config").at("scale").as_double(), 0.5);
  EXPECT_EQ(doc.at("environment").at("metrics_enabled").as_bool(),
            obs::kMetricsEnabled);
  EXPECT_GE(doc.at("environment").at("omp_max_threads").as_int(), 1);

  ASSERT_EQ(doc.at("samples").size(), 1u);
  const obs::Json& cell = doc.at("samples").at(0);
  EXPECT_EQ(cell.at("label").as_string(), "cell");
  EXPECT_EQ(cell.at("count").as_int(), 3);
  ASSERT_EQ(cell.at("seconds").size(), 3u);  // every rep retained
  EXPECT_DOUBLE_EQ(cell.at("median").as_double(), 0.2);
  EXPECT_DOUBLE_EQ(cell.at("min").as_double(), 0.1);
  EXPECT_DOUBLE_EQ(cell.at("max").as_double(), 0.3);
  EXPECT_NEAR(cell.at("stddev").as_double(), 0.1, 1e-12);
}

// ------------------------------------------------- Samples (timer.hpp adds)

TEST(ObsSamples, StddevAndPercentile) {
  Samples s;
  EXPECT_THROW(static_cast<void>(s.stddev()), std::exception);  // empty
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);  // a single sample has no spread
  for (const double v : {2.0, 3.0, 4.0, 5.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.stddev(), std::sqrt(2.5));  // sample stddev, n-1
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 3.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 5.0);
  EXPECT_DOUBLE_EQ(s.percentile(25), 2.0);
  EXPECT_DOUBLE_EQ(s.percentile(90), 4.6);  // linear interpolation
  EXPECT_THROW(static_cast<void>(s.percentile(-1)), std::exception);
  EXPECT_THROW(static_cast<void>(s.percentile(101)), std::exception);
}

// --------------------------------- kernel counters vs. the dense oracles

TEST(ObsKernels, WedgeCounterMatchesDenseSpec) {
  if constexpr (!obs::kMetricsEnabled) {
    GTEST_SKIP() << "built with BFC_METRICS=OFF";
  }
  // K_{6,8}: every V1 degree is >= 2, so every wedge is visited by the
  // row-family kernels and the la.wedges counter must equal Eq. (6).
  const dense::DenseMatrix d = dense::DenseMatrix::ones(6, 8);
  const graph::BipartiteGraph g = testing::complete_bipartite(6, 8);
  const count_t want_butterflies = dense::butterflies_spec(d);
  const count_t want_wedges = dense::wedges_spec(d);  // C(6,2)*8 = 120
  ASSERT_EQ(want_wedges, 120);

  for (const la::Engine engine :
       {la::Engine::kUnblocked, la::Engine::kWedge, la::Engine::kBlocked}) {
    obs::Registry::instance().reset();
    la::CountOptions opts;
    opts.engine = engine;
    EXPECT_EQ(la::count_butterflies(g, la::Invariant::kInv6, opts),
              want_butterflies);
    EXPECT_EQ(obs::Registry::instance().counter("la.wedges").value(),
              want_wedges);
    EXPECT_GT(obs::Registry::instance().counter("la.lines_processed").value(),
              0);
  }
  obs::Registry::instance().reset();
}

TEST(ObsKernels, CountersPresentInSnapshotAfterRandomRun) {
  if constexpr (!obs::kMetricsEnabled) {
    GTEST_SKIP() << "built with BFC_METRICS=OFF";
  }
  obs::Registry::instance().reset();
  const graph::BipartiteGraph g = testing::random_graph(40, 30, 0.2, 7);
  const count_t got = la::count_butterflies(g, la::Invariant::kInv2);
  EXPECT_EQ(got, dense::butterflies_spec(
                     testing::random_dense01(40, 30, 0.2, 7)));

  bool saw_wedges = false;
  for (const obs::MetricSnapshot& m : obs::Registry::instance().snapshot()) {
    if (m.name == "la.wedges") {
      saw_wedges = true;
      EXPECT_EQ(m.kind, obs::MetricSnapshot::Kind::kCounter);
      EXPECT_GT(m.value, 0);
    }
  }
  EXPECT_TRUE(saw_wedges);
  obs::Registry::instance().reset();
}

// ---------------------------------------------------------------- Samples

TEST(ObsSamples, StddevIsStableForLargeOffsets) {
  // Sum-of-squares stddev loses the spread of {1e9, 1e9+1, 1e9+2} to
  // catastrophic cancellation (1e18-scale squares, unit-scale variance);
  // the Welford implementation must return exactly sqrt(1).
  Samples s;
  s.add(1e9);
  s.add(1e9 + 1.0);
  s.add(1e9 + 2.0);
  EXPECT_NEAR(s.stddev(), 1.0, 1e-9);

  Samples tight;  // 1e9-scale values with 1e-3-scale spread
  for (const double d : {0.0, 1e-3, 2e-3, 1e-3, 0.0}) tight.add(4e9 + d);
  EXPECT_NEAR(tight.stddev(), 8.3666e-4, 1e-7);
}

// ------------------------------------------------------------------ Spans

TEST(ObsSpans, RootContextsAreUniqueAndActive) {
  const obs::TraceContext a = obs::TraceContext::root();
  const obs::TraceContext b = obs::TraceContext::root();
  EXPECT_TRUE(a.active());
  EXPECT_TRUE(b.active());
  EXPECT_NE(a.trace_id, b.trace_id);
  EXPECT_EQ(a.span_id, 0u);
  EXPECT_FALSE(obs::TraceContext{}.active());
}

TEST(ObsSpans, InertUnlessEnabledAndRooted) {
  if constexpr (!obs::kMetricsEnabled) {
    GTEST_SKIP() << "built with BFC_METRICS=OFF";
  }
  obs::SpanLog::clear();
  obs::SpanLog::set_enabled(false);
  {
    obs::Span span(obs::TraceContext::root(), "disabled");
    EXPECT_FALSE(span.armed());
  }
  obs::SpanLog::set_enabled(true);
  {
    obs::Span span(obs::TraceContext{}, "unrooted");  // inactive parent
    EXPECT_FALSE(span.armed());
  }
  EXPECT_TRUE(obs::SpanLog::snapshot().empty());
  obs::SpanLog::set_enabled(false);
}

TEST(ObsSpans, RecordsParentageTagsAndIdempotentClose) {
  if constexpr (!obs::kMetricsEnabled) {
    GTEST_SKIP() << "built with BFC_METRICS=OFF";
  }
  obs::SpanLog::clear();
  obs::SpanLog::set_enabled(true);
  const obs::TraceContext root = obs::TraceContext::root();
  {
    obs::Span parent(root, "parent");
    parent.tag("k", "v");
    {
      obs::Span child(parent.context(), "child");
      child.close();
      child.close();                  // idempotent
      child.tag("late", "dropped");   // after close: dropped
    }
  }  // parent closes via RAII
  obs::SpanLog::set_enabled(false);

  const std::vector<obs::SpanRecord> spans = obs::SpanLog::snapshot();
  ASSERT_EQ(spans.size(), 2u);  // completion order: child first
  const obs::SpanRecord& child = spans[0];
  const obs::SpanRecord& parent = spans[1];
  EXPECT_EQ(parent.name, "parent");
  EXPECT_EQ(parent.trace_id, root.trace_id);
  EXPECT_EQ(parent.parent_id, 0u);
  EXPECT_EQ(parent.tag("k"), "v");
  EXPECT_EQ(child.name, "child");
  EXPECT_EQ(child.trace_id, root.trace_id);
  EXPECT_EQ(child.parent_id, parent.span_id);
  EXPECT_TRUE(child.tag("late").empty());
  obs::SpanLog::clear();
}

TEST(ObsSpans, BoundedLogDropsOldestAndCounts) {
  if constexpr (!obs::kMetricsEnabled) {
    GTEST_SKIP() << "built with BFC_METRICS=OFF";
  }
  obs::SpanLog::clear();
  obs::SpanLog::set_capacity(4);
  obs::SpanLog::set_enabled(true);
  const obs::TraceContext root = obs::TraceContext::root();
  // Span names must outlive the log, so the test names are literals.
  static constexpr const char* kNames[] = {"s0", "s1", "s2", "s3",
                                           "s4", "s5", "s6"};
  for (const char* name : kNames) obs::Span(root, name).close();
  obs::SpanLog::set_enabled(false);
  const std::vector<obs::SpanRecord> spans = obs::SpanLog::snapshot();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans.front().name, "s3");  // 0..2 dropped
  EXPECT_EQ(spans.back().name, "s6");
  EXPECT_EQ(obs::SpanLog::dropped(), 3);
  obs::SpanLog::clear();
  obs::SpanLog::set_capacity(obs::SpanLog::kDefaultCapacity);
}

TEST(ObsSpans, WriteJsonRoundTrips) {
  if constexpr (!obs::kMetricsEnabled) {
    GTEST_SKIP() << "built with BFC_METRICS=OFF";
  }
  obs::SpanLog::clear();
  obs::SpanLog::set_enabled(true);
  {
    obs::Span span(obs::TraceContext::root(), "io");
    span.tag("outcome", "exact");
  }
  obs::SpanLog::set_enabled(false);
  const std::string path =
      ::testing::TempDir() + "bfc_spans_roundtrip.json";
  obs::SpanLog::write_json(path);
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const obs::Json doc = obs::Json::parse(buf.str());
  ASSERT_TRUE(doc.has("spans"));
  ASSERT_EQ(doc.at("spans").size(), 1u);
  const obs::Json& span = doc.at("spans").at(0);
  EXPECT_EQ(span.at("name").as_string(), "io");
  EXPECT_EQ(span.at("parent").as_int(), 0);
  EXPECT_EQ(span.at("tags").at("outcome").as_string(), "exact");
  std::remove(path.c_str());
  obs::SpanLog::clear();
}

// ------------------------------------------------------------ OpenMetrics

TEST(ObsExport, NameManglingFollowsTheCharset) {
  EXPECT_EQ(obs::openmetrics_name("svc.latency_us.tip_v1"),
            "svc_latency_us_tip_v1");
  EXPECT_EQ(obs::openmetrics_name("chk.failures"), "chk_failures");
  EXPECT_EQ(obs::openmetrics_name("9lives"), "_9lives");  // leading digit
  EXPECT_EQ(obs::openmetrics_name(""), "_");
}

TEST(ObsExport, RenderContainsEveryInstrumentKind) {
  obs::Registry::instance().reset();
  obs::Registry::instance().counter("test.export.counter").add(7);
  obs::Registry::instance().gauge("test.export.gauge").set(2.5);
  obs::Histogram& h = obs::Registry::instance().histogram("test.export.hist");
  h.observe(1);
  h.observe(100);
  const std::string text = obs::render_openmetrics();

  EXPECT_NE(text.find("# TYPE test_export_counter counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_export_counter_total 7\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_export_gauge gauge\n"), std::string::npos);
  EXPECT_NE(text.find("test_export_gauge 2.5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_export_hist histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_export_hist_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_export_hist_sum 101\n"), std::string::npos);
  EXPECT_NE(text.find("test_export_hist_count 2\n"), std::string::npos);
  // # EOF terminates the exposition and nothing follows it.
  ASSERT_GE(text.size(), 6u);
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
  obs::Registry::instance().reset();
}

TEST(ObsExport, WriteFileIsAtomicAndTerminated) {
  obs::Registry::instance().counter("test.export.file").add(1);
  const std::string path = ::testing::TempDir() + "bfc_openmetrics_test.txt";
  obs::write_openmetrics_file(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::string last;
  bool saw_sample = false;
  while (std::getline(in, line)) {
    if (line.rfind("test_export_file_total ", 0) == 0) saw_sample = true;
    last = line;
  }
  EXPECT_TRUE(saw_sample);
  EXPECT_EQ(last, "# EOF");
  std::remove(path.c_str());
  obs::Registry::instance().reset();
}

TEST(ObsExport, HttpServerServesOpenMetrics) {
  std::unique_ptr<obs::MetricsHttpServer> server;
  try {
    server = std::make_unique<obs::MetricsHttpServer>(0);  // ephemeral port
  } catch (const std::runtime_error& e) {
    GTEST_SKIP() << "cannot bind a loopback socket: " << e.what();
  }
  ASSERT_GT(server->port(), 0);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(server->port()));
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0);
  const std::string request = "GET /metrics HTTP/1.1\r\n\r\n";
  ASSERT_EQ(::write(fd, request.data(), request.size()),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buf[4096];
  for (ssize_t n = 0; (n = ::read(fd, buf, sizeof(buf))) > 0;)
    response.append(buf, static_cast<std::size_t>(n));
  ::close(fd);

  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("application/openmetrics-text"), std::string::npos);
  EXPECT_NE(response.find("# EOF\n"), std::string::npos);
  EXPECT_EQ(server->requests_served(), 1);
}

// --------------------------------------------------------------- Profiler

TEST(ObsProfiler, StartStopAndFoldedStacks) {
  ASSERT_TRUE(obs::Profiler::start(200));
  EXPECT_TRUE(obs::Profiler::running());
  EXPECT_FALSE(obs::Profiler::start(200));  // already running
  // Burn CPU so ITIMER_PROF has something to charge against. The effective
  // rate is capped by the kernel tick, so only assert non-negativity plus
  // internal consistency, not a sample count.
  volatile double sink = 0.0;
  const Timer t;
  while (t.seconds() < 0.2) {
    for (int i = 1; i < 2000; ++i) sink = sink + 1.0 / i;
  }
  obs::Profiler::stop();
  EXPECT_FALSE(obs::Profiler::running());

  const std::int64_t captured = obs::Profiler::samples_captured();
  EXPECT_GE(captured, 0);
  EXPECT_GE(obs::Profiler::samples_dropped(), 0);
  std::int64_t folded_total = 0;
  for (const auto& [stack, count] : obs::Profiler::folded()) {
    EXPECT_FALSE(stack.empty());
    folded_total += count;
  }
  EXPECT_EQ(folded_total, captured);
  if (captured > 0) {
    const std::string path = ::testing::TempDir() + "bfc_folded_test.txt";
    obs::Profiler::write_folded(path);
    std::ifstream in(path);
    std::string first;
    ASSERT_TRUE(std::getline(in, first));
    EXPECT_NE(first.find(' '), std::string::npos);  // "stack count"
    std::remove(path.c_str());
  }
  obs::Profiler::clear();
  EXPECT_EQ(obs::Profiler::samples_captured(), 0);
}

// -------------------------------------------------------- Flight recorder

TEST(ObsFlight, RecordsSnapshotInOrder) {
  if constexpr (!obs::kMetricsEnabled) {
    GTEST_SKIP() << "built with BFC_METRICS=OFF";
  }
  obs::FlightRecorder::clear();
  obs::FlightRecorder::record("publish", "epoch", 3, 0, 0);
  obs::FlightRecorder::record("degrade", "approx", 3, 17, 42);
  const std::vector<obs::FlightEvent> events =
      obs::FlightRecorder::snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].kind, "publish");
  EXPECT_STREQ(events[0].detail, "epoch");
  EXPECT_EQ(events[0].a, 3);
  EXPECT_STREQ(events[1].kind, "degrade");
  EXPECT_EQ(events[1].b, 17);
  EXPECT_EQ(events[1].trace_id, 42u);
  EXPECT_EQ(obs::FlightRecorder::recorded(), 2);
  obs::FlightRecorder::clear();
}

TEST(ObsFlight, RingWrapsKeepingTheNewest) {
  if constexpr (!obs::kMetricsEnabled) {
    GTEST_SKIP() << "built with BFC_METRICS=OFF";
  }
  obs::FlightRecorder::clear();
  const int total = static_cast<int>(obs::FlightRecorder::kCapacity) + 50;
  for (int i = 0; i < total; ++i)
    obs::FlightRecorder::record("tick", "", i, 0, 0);
  const std::vector<obs::FlightEvent> events =
      obs::FlightRecorder::snapshot();
  ASSERT_EQ(events.size(), obs::FlightRecorder::kCapacity);
  EXPECT_EQ(events.front().a, 50);  // the oldest 50 were overwritten
  EXPECT_EQ(events.back().a, total - 1);
  EXPECT_EQ(obs::FlightRecorder::recorded(), total);
  obs::FlightRecorder::clear();
}

TEST(ObsFlight, DumpWritesParseableJson) {
  if constexpr (!obs::kMetricsEnabled) {
    GTEST_SKIP() << "built with BFC_METRICS=OFF";
  }
  obs::FlightRecorder::clear();
  obs::FlightRecorder::record("check_fail", "x > 0 \"quoted\"", 9, 0, 0);
  const std::string path = ::testing::TempDir() + "bfc_flight_test.json";
  ASSERT_TRUE(obs::FlightRecorder::dump(path, "unit test"));
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const obs::Json doc = obs::Json::parse(buf.str());
  EXPECT_EQ(doc.at("reason").as_string(), "unit test");
  EXPECT_EQ(doc.at("recorded").as_int(), 1);
  ASSERT_EQ(doc.at("events").size(), 1u);
  EXPECT_EQ(doc.at("events").at(0).at("kind").as_string(), "check_fail");
  EXPECT_EQ(doc.at("events").at(0).at("a").as_int(), 9);
  std::remove(path.c_str());
  obs::FlightRecorder::clear();
}

}  // namespace
}  // namespace bfc
