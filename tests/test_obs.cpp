// Tests for the observability layer (src/obs/): sharded counters under
// OpenMP, histogram bucketing, the JSON value tree, scoped tracing, and the
// RunReport — plus an end-to-end check that the kernel counters recorded
// during a counting run agree with the dense wedge specification.
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "dense/spec.hpp"
#include "la/count.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "test_helpers.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace bfc {
namespace {

// ---------------------------------------------------------------- Counter

TEST(ObsCounter, AddAndReset) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0);
  c.add(5);
  c.increment();
  EXPECT_EQ(c.value(), 6);
  c.reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(ObsCounter, AggregatesAcrossOmpThreads) {
  // Every thread hammers the same counter; the per-thread shards must sum
  // to the exact total regardless of how iterations were distributed.
  obs::Counter c;
  constexpr int kThreads = 4;
  constexpr int kIters = 100000;
  ThreadCountGuard guard(kThreads);
#pragma omp parallel num_threads(kThreads)
  {
#pragma omp for
    for (int i = 0; i < kIters; ++i) c.add(1);
  }
  EXPECT_EQ(c.value(), kIters);
}

TEST(ObsRegistry, CounterReferencesStableAcrossReset) {
  obs::Counter& a = obs::Registry::instance().counter("test.obs.stable");
  a.add(3);
  obs::Registry::instance().reset();
  EXPECT_EQ(a.value(), 0);
  obs::Counter& b = obs::Registry::instance().counter("test.obs.stable");
  EXPECT_EQ(&a, &b);
  b.add(2);
  EXPECT_EQ(a.value(), 2);
}

// -------------------------------------------------------------- Histogram

TEST(ObsHistogram, ExponentialBucketing) {
  obs::Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.min(), 0);  // empty histogram reports 0, not the sentinel
  EXPECT_EQ(h.max(), 0);

  h.observe(0);   // bucket 0 (upper bound 0)
  h.observe(1);   // bucket 1 (upper bound 1)
  h.observe(2);   // bucket 2 (upper bound 3)
  h.observe(3);   // bucket 2
  h.observe(4);   // bucket 3 (upper bound 7)
  h.observe(-7);  // clamped to 0, lands in bucket 0

  EXPECT_EQ(h.count(), 6);
  EXPECT_EQ(h.sum(), 0 + 1 + 2 + 3 + 4);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 4);
  EXPECT_EQ(h.bucket_count(0), 2);
  EXPECT_EQ(h.bucket_count(1), 1);
  EXPECT_EQ(h.bucket_count(2), 2);
  EXPECT_EQ(h.bucket_count(3), 1);
  EXPECT_EQ(obs::Histogram::bucket_upper(0), 0);
  EXPECT_EQ(obs::Histogram::bucket_upper(1), 1);
  EXPECT_EQ(obs::Histogram::bucket_upper(2), 3);
  EXPECT_EQ(obs::Histogram::bucket_upper(3), 7);

  h.reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
}

TEST(ObsHistogram, HugeValuesClampIntoLastBucket) {
  obs::Histogram h;
  h.observe(std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.bucket_count(obs::Histogram::kBuckets - 1), 1);
}

// ------------------------------------------------------------------- JSON

TEST(ObsJson, DumpParseRoundTrip) {
  obs::Json doc = obs::Json::object();
  doc["int"] = obs::Json(std::int64_t{42});
  doc["neg"] = obs::Json(std::int64_t{-7});
  doc["pi"] = obs::Json(3.25);  // exactly representable
  doc["flag"] = obs::Json(true);
  doc["null"] = obs::Json(nullptr);
  doc["text"] = obs::Json("line1\nline2 \"quoted\" \\slash");
  obs::Json arr = obs::Json::array();
  arr.push_back(obs::Json(std::int64_t{1}));
  arr.push_back(obs::Json("two"));
  doc["arr"] = arr;

  for (const int indent : {0, 2}) {
    const obs::Json back = obs::Json::parse(doc.dump(indent));
    EXPECT_EQ(back.at("int").as_int(), 42);
    EXPECT_EQ(back.at("neg").as_int(), -7);
    EXPECT_DOUBLE_EQ(back.at("pi").as_double(), 3.25);
    EXPECT_TRUE(back.at("flag").as_bool());
    EXPECT_TRUE(back.at("null").is_null());
    EXPECT_EQ(back.at("text").as_string(), "line1\nline2 \"quoted\" \\slash");
    EXPECT_EQ(back.at("arr").size(), 2u);
    EXPECT_EQ(back.at("arr").at(0).as_int(), 1);
    EXPECT_EQ(back.at("arr").at(1).as_string(), "two");
  }
}

TEST(ObsJson, KeysAreSortedAndStable) {
  obs::Json doc = obs::Json::object();
  doc["zebra"] = obs::Json(1);
  doc["apple"] = obs::Json(2);
  const std::string text = doc.dump();
  EXPECT_LT(text.find("apple"), text.find("zebra"));
  EXPECT_EQ(text, obs::Json::parse(text).dump());
}

TEST(ObsJson, ParserRejectsMalformedInput) {
  EXPECT_THROW(obs::Json::parse(""), std::runtime_error);
  EXPECT_THROW(obs::Json::parse("{"), std::runtime_error);
  EXPECT_THROW(obs::Json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(obs::Json::parse("{\"a\": 1} trailing"), std::runtime_error);
  EXPECT_THROW(obs::Json::parse("'single'"), std::runtime_error);
  EXPECT_THROW(obs::Json::parse("nul"), std::runtime_error);
  EXPECT_THROW(obs::Json::parse("{\"a\" 1}"), std::runtime_error);
}

TEST(ObsJson, ParsesUnicodeEscapes) {
  const std::string utf8_eacute =
      "a\xc3\xa9"
      "b";  // "aéb" in UTF-8
  // é must decode to the two-byte UTF-8 sequence...
  EXPECT_EQ(obs::Json::parse(R"("a\u00e9b")").as_string(), utf8_eacute);
  // ...and raw UTF-8 bytes inside a string pass through untouched.
  EXPECT_EQ(obs::Json::parse("\"" + utf8_eacute + "\"").as_string(),
            utf8_eacute);
}

// ------------------------------------------------------------------ Trace

TEST(ObsTrace, RecordsSpansOnlyWhenEnabled) {
  obs::Tracer::clear();
  obs::Tracer::set_enabled(false);
  { BFC_TRACE_SCOPE("test.disabled"); }
  EXPECT_TRUE(obs::Tracer::events().empty());

  obs::Tracer::set_enabled(true);
  { BFC_TRACE_SCOPE("test.enabled"); }
  obs::Tracer::set_enabled(false);

  const auto events = obs::Tracer::events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "test.enabled");
  EXPECT_GE(events[0].ts_us, 0);
  EXPECT_GE(events[0].dur_us, 0);
  obs::Tracer::clear();
}

TEST(ObsTrace, ChromeJsonIsValidTraceEventFormat) {
  obs::Tracer::clear();
  obs::Tracer::set_enabled(true);
  { BFC_TRACE_SCOPE("span.a"); }
  { BFC_TRACE_SCOPE("span.b"); }
  obs::Tracer::set_enabled(false);

  const std::string path = ::testing::TempDir() + "bfc_trace_test.json";
  obs::Tracer::write_chrome_json(path);
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const obs::Json doc = obs::Json::parse(buf.str());
  ASSERT_TRUE(doc.has("traceEvents"));
  ASSERT_EQ(doc.at("traceEvents").size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    const obs::Json& ev = doc.at("traceEvents").at(i);
    EXPECT_EQ(ev.at("ph").as_string(), "X");
    EXPECT_TRUE(ev.at("name").is_string());
    EXPECT_TRUE(ev.at("ts").is_number());
    EXPECT_TRUE(ev.at("dur").is_number());
    EXPECT_TRUE(ev.at("tid").is_int());
  }
  obs::Tracer::clear();
  std::remove(path.c_str());
}

// -------------------------------------------------------------- RunReport

TEST(ObsReport, TopLevelKeysAndSampleStats) {
  obs::RunReport report;
  report.set_config("scale", obs::Json(0.5));
  Samples s;
  s.add(0.1);
  s.add(0.3);
  s.add(0.2);
  report.add_sample("cell", s);
  report.capture_environment();
  report.set_metrics_from_registry();

  // Round-trip through text so we validate what a consumer actually reads.
  const obs::Json doc = obs::Json::parse(report.to_json().dump(2));
  for (const char* key : {"config", "environment", "metrics", "samples"})
    EXPECT_TRUE(doc.has(key)) << key;

  EXPECT_DOUBLE_EQ(doc.at("config").at("scale").as_double(), 0.5);
  EXPECT_EQ(doc.at("environment").at("metrics_enabled").as_bool(),
            obs::kMetricsEnabled);
  EXPECT_GE(doc.at("environment").at("omp_max_threads").as_int(), 1);

  ASSERT_EQ(doc.at("samples").size(), 1u);
  const obs::Json& cell = doc.at("samples").at(0);
  EXPECT_EQ(cell.at("label").as_string(), "cell");
  EXPECT_EQ(cell.at("count").as_int(), 3);
  ASSERT_EQ(cell.at("seconds").size(), 3u);  // every rep retained
  EXPECT_DOUBLE_EQ(cell.at("median").as_double(), 0.2);
  EXPECT_DOUBLE_EQ(cell.at("min").as_double(), 0.1);
  EXPECT_DOUBLE_EQ(cell.at("max").as_double(), 0.3);
  EXPECT_NEAR(cell.at("stddev").as_double(), 0.1, 1e-12);
}

// ------------------------------------------------- Samples (timer.hpp adds)

TEST(ObsSamples, StddevAndPercentile) {
  Samples s;
  EXPECT_THROW(static_cast<void>(s.stddev()), std::exception);  // empty
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);  // a single sample has no spread
  for (const double v : {2.0, 3.0, 4.0, 5.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.stddev(), std::sqrt(2.5));  // sample stddev, n-1
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 3.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 5.0);
  EXPECT_DOUBLE_EQ(s.percentile(25), 2.0);
  EXPECT_DOUBLE_EQ(s.percentile(90), 4.6);  // linear interpolation
  EXPECT_THROW(static_cast<void>(s.percentile(-1)), std::exception);
  EXPECT_THROW(static_cast<void>(s.percentile(101)), std::exception);
}

// --------------------------------- kernel counters vs. the dense oracles

TEST(ObsKernels, WedgeCounterMatchesDenseSpec) {
  if constexpr (!obs::kMetricsEnabled) {
    GTEST_SKIP() << "built with BFC_METRICS=OFF";
  }
  // K_{6,8}: every V1 degree is >= 2, so every wedge is visited by the
  // row-family kernels and the la.wedges counter must equal Eq. (6).
  const dense::DenseMatrix d = dense::DenseMatrix::ones(6, 8);
  const graph::BipartiteGraph g = testing::complete_bipartite(6, 8);
  const count_t want_butterflies = dense::butterflies_spec(d);
  const count_t want_wedges = dense::wedges_spec(d);  // C(6,2)*8 = 120
  ASSERT_EQ(want_wedges, 120);

  for (const la::Engine engine :
       {la::Engine::kUnblocked, la::Engine::kWedge, la::Engine::kBlocked}) {
    obs::Registry::instance().reset();
    la::CountOptions opts;
    opts.engine = engine;
    EXPECT_EQ(la::count_butterflies(g, la::Invariant::kInv6, opts),
              want_butterflies);
    EXPECT_EQ(obs::Registry::instance().counter("la.wedges").value(),
              want_wedges);
    EXPECT_GT(obs::Registry::instance().counter("la.lines_processed").value(),
              0);
  }
  obs::Registry::instance().reset();
}

TEST(ObsKernels, CountersPresentInSnapshotAfterRandomRun) {
  if constexpr (!obs::kMetricsEnabled) {
    GTEST_SKIP() << "built with BFC_METRICS=OFF";
  }
  obs::Registry::instance().reset();
  const graph::BipartiteGraph g = testing::random_graph(40, 30, 0.2, 7);
  const count_t got = la::count_butterflies(g, la::Invariant::kInv2);
  EXPECT_EQ(got, dense::butterflies_spec(
                     testing::random_dense01(40, 30, 0.2, 7)));

  bool saw_wedges = false;
  for (const obs::MetricSnapshot& m : obs::Registry::instance().snapshot()) {
    if (m.name == "la.wedges") {
      saw_wedges = true;
      EXPECT_EQ(m.kind, obs::MetricSnapshot::Kind::kCounter);
      EXPECT_GT(m.value, 0);
    }
  }
  EXPECT_TRUE(saw_wedges);
  obs::Registry::instance().reset();
}

}  // namespace
}  // namespace bfc
