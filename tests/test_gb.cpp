// Tests for the GraphBLAS-style layer: kernel-level checks against the
// dense oracle, then the verbatim-equation implementations against the
// dense specs and the production counters.
#include <gtest/gtest.h>

#include "count/local_counts.hpp"
#include "dense/spec.hpp"
#include "gb/butterflies.hpp"
#include "gb/matrix.hpp"
#include "gb/vector.hpp"
#include "test_helpers.hpp"

namespace bfc::gb {
namespace {

using dense::DenseMatrix;

sparse::CsrCounts counts_from_dense(const DenseMatrix& d) {
  sparse::CsrCounts c;
  c.rows = d.rows();
  c.cols = d.cols();
  c.row_ptr.assign(static_cast<std::size_t>(d.rows()) + 1, 0);
  for (vidx_t r = 0; r < d.rows(); ++r) {
    for (vidx_t col = 0; col < d.cols(); ++col) {
      if (d(r, col) != 0) {
        c.col_idx.push_back(col);
        c.values.push_back(d(r, col));
      }
    }
    c.row_ptr[static_cast<std::size_t>(r) + 1] =
        static_cast<offset_t>(c.col_idx.size());
  }
  return c;
}

TEST(GbVector, ConstructionAndValidation) {
  const Vector v(5, {1, 3}, {10, -2});
  EXPECT_EQ(v.size(), 5);
  EXPECT_EQ(v.nnz(), 2u);
  EXPECT_EQ(reduce(v), 8);
  EXPECT_THROW(Vector(3, {0, 0}, {1, 1}), std::invalid_argument);  // dup
  EXPECT_THROW(Vector(3, {2, 1}, {1, 1}), std::invalid_argument);  // unsorted
  EXPECT_THROW(Vector(3, {5}, {1}), std::invalid_argument);        // range
  EXPECT_THROW(Vector(3, {1}, {0}), std::invalid_argument);        // zero
  EXPECT_THROW(Vector(3, {1}, {}), std::invalid_argument);         // lengths
}

TEST(GbVector, DenseRoundTrip) {
  const std::vector<count_t> dense{0, 5, 0, -3, 0};
  const Vector v = Vector::from_dense(dense);
  EXPECT_EQ(v.nnz(), 2u);
  EXPECT_EQ(v.to_dense(), dense);
}

TEST(GbVector, DotAndEwise) {
  const Vector x(4, {0, 2, 3}, {2, 3, 4});
  const Vector y(4, {1, 2, 3}, {7, 5, -4});
  EXPECT_EQ(dot(x, y), 3 * 5 + 4 * -4);
  EXPECT_EQ(dot(x, x), 4 + 9 + 16);
  const Vector m = ewise_mult(x, y);
  EXPECT_EQ(m.to_dense(), (std::vector<count_t>{0, 0, 15, -16}));
  const Vector a = ewise_add(x, y);
  EXPECT_EQ(a.to_dense(), (std::vector<count_t>{2, 7, 8, 0}));
  // x_3 + y_3 = 0: structural zero must be dropped.
  EXPECT_EQ(a.nnz(), 3u);
  EXPECT_THROW(dot(x, Vector(3)), std::invalid_argument);
}

TEST(GbVector, IndicatorAndApply) {
  const Vector ind = Vector::indicator(6, {1, 4});
  EXPECT_EQ(reduce(ind), 2);
  const Vector sq = apply(ind, [](count_t v) { return v * 3; });
  EXPECT_EQ(reduce(sq), 6);
  const Vector dropped = apply(ind, [](count_t) { return count_t{0}; });
  EXPECT_EQ(dropped.nnz(), 0u);
}

class GbMatrixRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GbMatrixRandom, MxmMatchesDense) {
  const auto seed = GetParam();
  const DenseMatrix da = bfc::testing::random_dense_int(6, 7, -2, 2, seed);
  const DenseMatrix db = bfc::testing::random_dense_int(7, 5, -2, 2, seed + 1);
  EXPECT_EQ(mxm(counts_from_dense(da), counts_from_dense(db)).to_dense(),
            multiply(da, db));
}

TEST_P(GbMatrixRandom, TransposeEwiseReduceTrace) {
  const auto seed = GetParam();
  const DenseMatrix da = bfc::testing::random_dense_int(6, 6, -3, 3, seed);
  const DenseMatrix db = bfc::testing::random_dense_int(6, 6, -3, 3, seed + 2);
  const sparse::CsrCounts a = counts_from_dense(da);
  const sparse::CsrCounts b = counts_from_dense(db);
  EXPECT_EQ(transpose(a).to_dense(), da.transpose());
  EXPECT_EQ(ewise_mult(a, b).to_dense(), hadamard(da, db));
  EXPECT_EQ(ewise_add(a, b).to_dense(), add(da, db));
  EXPECT_EQ(reduce(a), da.sum());
  EXPECT_EQ(trace(a), da.trace());
  EXPECT_EQ(Vector::from_dense(diag(a).to_dense()).to_dense(),
            diag(a).to_dense());
}

TEST_P(GbMatrixRandom, MxvVxmRowRange) {
  const auto seed = GetParam();
  const DenseMatrix da = bfc::testing::random_dense_int(8, 5, -2, 2, seed);
  const sparse::CsrCounts a = counts_from_dense(da);
  Rng rng(seed + 9);
  std::vector<count_t> xd(5);
  for (auto& v : xd) v = rng.range(-3, 3);
  const Vector x = Vector::from_dense(xd);

  // y = A·x against the dense product.
  const Vector y = mxv(a, x);
  for (vidx_t r = 0; r < 8; ++r) {
    count_t expect = 0;
    for (vidx_t c = 0; c < 5; ++c) expect += da(r, c) * xd[static_cast<std::size_t>(c)];
    EXPECT_EQ(y.to_dense()[static_cast<std::size_t>(r)], expect);
  }

  // Row-range restriction zeroes everything outside [2, 6).
  const Vector yr = mxv_row_range(a, 2, 6, x);
  const auto yd = y.to_dense();
  const auto yrd = yr.to_dense();
  for (vidx_t r = 0; r < 8; ++r)
    EXPECT_EQ(yrd[static_cast<std::size_t>(r)],
              (r >= 2 && r < 6) ? yd[static_cast<std::size_t>(r)] : 0);

  // vxm equals mxv on the transpose.
  std::vector<count_t> zd(8);
  for (auto& v : zd) v = rng.range(-3, 3);
  const Vector z = Vector::from_dense(zd);
  EXPECT_EQ(vxm(z, a).to_dense(), mxv(transpose(a), z).to_dense());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GbMatrixRandom,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(GbMatrix, PatternRoundTrip) {
  const auto g = bfc::testing::random_graph(7, 9, 0.4, 3);
  EXPECT_EQ(pattern(from_pattern(g.csr())), g.csr());
}

TEST(GbMatrix, MxmCancellationDropsExplicitZeros) {
  // (1 -1)·(1 / 1) = 0 must be structurally absent.
  sparse::CsrCounts a;
  a.rows = 1;
  a.cols = 2;
  a.row_ptr = {0, 2};
  a.col_idx = {0, 1};
  a.values = {1, -1};
  sparse::CsrCounts b;
  b.rows = 2;
  b.cols = 1;
  b.row_ptr = {0, 1, 2};
  b.col_idx = {0, 0};
  b.values = {1, 1};
  EXPECT_EQ(mxm(a, b).nnz(), 0);
}

struct GbCase {
  vidx_t m, n;
  double p;
  std::uint64_t seed;
};

class GbButterflies : public ::testing::TestWithParam<GbCase> {};

TEST_P(GbButterflies, SpecMatchesDenseOracle) {
  const auto& c = GetParam();
  const auto g = bfc::testing::random_graph(c.m, c.n, c.p, c.seed);
  const count_t oracle = dense::butterflies_spec(g.csr().to_dense());
  EXPECT_EQ(butterflies_spec(g), oracle);
  EXPECT_EQ(wedges_spec(g), dense::wedges_spec(g.csr().to_dense()));
}

TEST_P(GbButterflies, LoopMatchesOracleForAllInvariants) {
  const auto& c = GetParam();
  const auto g = bfc::testing::random_graph(c.m, c.n, c.p, c.seed);
  const count_t oracle = dense::butterflies_spec(g.csr().to_dense());
  for (const la::Invariant inv : la::all_invariants())
    EXPECT_EQ(butterflies_loop(g, inv), oracle) << la::name(inv);
}

TEST_P(GbButterflies, LocalCountsMatchProductionKernels) {
  const auto& c = GetParam();
  const auto g = bfc::testing::random_graph(c.m, c.n, c.p, c.seed);
  EXPECT_EQ(tip_vector(g), count::butterflies_per_v1(g));
  EXPECT_EQ(wing_support(g), count::support_per_edge(g));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GbButterflies,
    ::testing::Values(GbCase{5, 5, 0.5, 1}, GbCase{9, 4, 0.5, 2},
                      GbCase{4, 9, 0.5, 3}, GbCase{12, 12, 0.3, 4},
                      GbCase{14, 6, 0.25, 5}, GbCase{6, 14, 0.7, 6},
                      GbCase{10, 10, 1.0, 7}, GbCase{10, 10, 0.05, 8},
                      GbCase{1, 8, 0.9, 9}, GbCase{16, 16, 0.2, 10}));

TEST(GbButterflies, HandGraphs) {
  EXPECT_EQ(butterflies_spec(bfc::testing::single_butterfly()), 1);
  EXPECT_EQ(butterflies_spec(bfc::testing::hexagon()), 0);
  EXPECT_EQ(butterflies_spec(bfc::testing::complete_bipartite(4, 5)),
            choose2(4) * choose2(5));
  EXPECT_EQ(wedges_spec(bfc::testing::single_butterfly()), 2);
}

}  // namespace
}  // namespace bfc::gb
