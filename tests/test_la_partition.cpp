// Tests of the FLAME traversal bookkeeping and the invariant trait table —
// the "derivation" layer that maps Loop Invariants 1-8 to concrete pivot
// orders and peer ranges.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "la/invariants.hpp"
#include "la/partition.hpp"

namespace bfc::la {
namespace {

TEST(Traversal, ForwardBeforeShapes) {
  const auto steps = traversal_steps(4, Direction::kForward, PeerSide::kBefore);
  ASSERT_EQ(steps.size(), 4u);
  EXPECT_EQ(steps[0].pivot, 0);
  EXPECT_EQ(steps[0].peer_lo, 0);
  EXPECT_EQ(steps[0].peer_hi, 0);  // empty peer at the first step
  EXPECT_EQ(steps[3].pivot, 3);
  EXPECT_EQ(steps[3].peer_lo, 0);
  EXPECT_EQ(steps[3].peer_hi, 3);
}

TEST(Traversal, BackwardAfterShapes) {
  const auto steps = traversal_steps(4, Direction::kBackward, PeerSide::kAfter);
  ASSERT_EQ(steps.size(), 4u);
  EXPECT_EQ(steps[0].pivot, 3);
  EXPECT_EQ(steps[0].peer_lo, 4);
  EXPECT_EQ(steps[0].peer_hi, 4);  // empty peer at the first step
  EXPECT_EQ(steps[3].pivot, 0);
  EXPECT_EQ(steps[3].peer_lo, 1);
  EXPECT_EQ(steps[3].peer_hi, 4);
}

class TraversalProperty
    : public ::testing::TestWithParam<std::tuple<int, Direction, PeerSide>> {};

TEST_P(TraversalProperty, PivotsFormAPermutation) {
  const auto [n, dir, peer] = GetParam();
  const auto steps = traversal_steps(static_cast<vidx_t>(n), dir, peer);
  std::set<vidx_t> pivots;
  for (const Step& s : steps) pivots.insert(s.pivot);
  EXPECT_EQ(pivots.size(), static_cast<std::size_t>(n));
  if (n > 0) {
    EXPECT_EQ(*pivots.begin(), 0);
    EXPECT_EQ(*pivots.rbegin(), n - 1);
  }
}

TEST_P(TraversalProperty, PeerRangesValidAndExcludePivot) {
  const auto [n, dir, peer] = GetParam();
  for (const Step& s : traversal_steps(static_cast<vidx_t>(n), dir, peer)) {
    EXPECT_LE(s.peer_lo, s.peer_hi);
    EXPECT_GE(s.peer_lo, 0);
    EXPECT_LE(s.peer_hi, n);
    EXPECT_TRUE(s.pivot < s.peer_lo || s.pivot >= s.peer_hi);
  }
}

TEST_P(TraversalProperty, EveryUnorderedPairCoveredExactlyOnce) {
  // The pair-coverage argument behind all eight algorithms: summed peer
  // widths equal C(n,2), and each specific (pivot, peer) pair occurs once.
  const auto [n, dir, peer] = GetParam();
  const auto steps = traversal_steps(static_cast<vidx_t>(n), dir, peer);
  EXPECT_EQ(total_peer_width(steps), choose2(n));
  std::set<std::pair<vidx_t, vidx_t>> pairs;
  for (const Step& s : steps)
    for (vidx_t c = s.peer_lo; c < s.peer_hi; ++c)
      pairs.insert({std::min(s.pivot, c), std::max(s.pivot, c)});
  EXPECT_EQ(pairs.size(), static_cast<std::size_t>(choose2(n)));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, TraversalProperty,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 7, 16),
                       ::testing::Values(Direction::kForward,
                                         Direction::kBackward),
                       ::testing::Values(PeerSide::kBefore,
                                         PeerSide::kAfter)));

TEST(InvariantTraits, FamilyAssignment) {
  // Invariants 1-4 partition V2 (columns), 5-8 partition V1 (rows) — §III.
  for (const int k : {1, 2, 3, 4})
    EXPECT_EQ(traits(invariant_from_number(k)).family, Family::kColumns);
  for (const int k : {5, 6, 7, 8})
    EXPECT_EQ(traits(invariant_from_number(k)).family, Family::kRows);
}

TEST(InvariantTraits, DirectionAndPeer) {
  EXPECT_EQ(traits(Invariant::kInv1).direction, Direction::kForward);
  EXPECT_EQ(traits(Invariant::kInv1).peer, PeerSide::kBefore);
  EXPECT_EQ(traits(Invariant::kInv2).peer, PeerSide::kAfter);
  EXPECT_EQ(traits(Invariant::kInv3).direction, Direction::kBackward);
  EXPECT_EQ(traits(Invariant::kInv4).direction, Direction::kBackward);
  EXPECT_EQ(traits(Invariant::kInv4).peer, PeerSide::kAfter);
  EXPECT_EQ(traits(Invariant::kInv6).peer, PeerSide::kAfter);
  EXPECT_EQ(traits(Invariant::kInv7).direction, Direction::kBackward);
}

TEST(InvariantTraits, LookAheadMeansPeerNotYetTraversed) {
  for (const Invariant inv : all_invariants()) {
    const InvariantTraits t = traits(inv);
    const bool peer_is_future =
        (t.direction == Direction::kForward && t.peer == PeerSide::kAfter) ||
        (t.direction == Direction::kBackward && t.peer == PeerSide::kBefore);
    EXPECT_EQ(t.look_ahead, peer_is_future) << name(inv);
  }
}

TEST(InvariantTraits, NamesAndParsing) {
  EXPECT_STREQ(name(Invariant::kInv1), "Inv. 1");
  EXPECT_STREQ(name(Invariant::kInv8), "Inv. 8");
  EXPECT_EQ(invariant_from_number(3), Invariant::kInv3);
  EXPECT_THROW(invariant_from_number(0), std::invalid_argument);
  EXPECT_THROW(invariant_from_number(9), std::invalid_argument);
}

TEST(Traversal, NegativeDimensionRejected) {
  EXPECT_THROW(traversal_steps(-1, Direction::kForward, PeerSide::kBefore),
               std::invalid_argument);
}

}  // namespace
}  // namespace bfc::la
