// Tests for the out-of-process shard seam (src/shard/transport.hpp,
// remote.hpp, supervisor.hpp): wire codec roundtrips, protocol parity of a
// RemoteShard against the LocalShard it proxies (served in-process by
// serve_connection on a real Unix socket), the retry/circuit-breaker state
// machine under injected transport faults, the pin-serves-last-known
// contract when the host dies, and — when BFC_SHARD_HOST_BIN points at the
// real bfc-shard-host binary — supervised crash/restart/restore across
// actual process boundaries.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "chk/check.hpp"
#include "count/baselines.hpp"
#include "count/local_counts.hpp"
#include "count/top_pairs.hpp"
#include "shard/remote.hpp"
#include "shard/shard.hpp"
#include "shard/supervisor.hpp"
#include "shard/transport.hpp"
#include "svc/fault.hpp"
#include "svc/service.hpp"

namespace bfc::shard {
namespace {

using namespace std::chrono_literals;

/// Short socket paths (sun_path is 108 bytes; TempDir can be long).
std::string sock_path(const std::string& stem) {
  return "/tmp/bfc_" + stem + "_" + std::to_string(::getpid()) + ".sock";
}

/// Serves one ShardHandle on a listening socket from a background thread —
/// the protocol without the process boundary, so transport tests stay fast
/// and runnable everywhere.
class InProcHost {
 public:
  InProcHost(std::string path, ShardHandle& shard)
      : path_(std::move(path)), lfd_(listen_unix(path_)) {
    server_ = std::jthread([this, &shard](const std::stop_token& st) {
      while (!st.stop_requested()) {
        const int fd = ::accept(lfd_, nullptr, nullptr);
        if (fd < 0) break;
        if (st.stop_requested()) {
          ::close(fd);
          break;
        }
        serve_connection(fd, shard, /*idle_timeout_ms=*/2000);
        ::close(fd);
      }
    });
  }

  ~InProcHost() {
    server_.request_stop();
    // Wake the blocking accept with one throwaway connection.
    try {
      ::close(connect_unix(path_, 200));
    } catch (...) {  // server already gone: accept has already returned
    }
    server_.join();
    ::close(lfd_);
    ::unlink(path_.c_str());
  }

  InProcHost(const InProcHost&) = delete;
  InProcHost& operator=(const InProcHost&) = delete;

 private:
  std::string path_;
  int lfd_;
  std::jthread server_;
};

/// A 2x2 biclique = exactly one butterfly, four edges.
std::vector<svc::EdgeUpdate> butterfly_square() {
  return {svc::EdgeUpdate::add(0, 0), svc::EdgeUpdate::add(0, 1),
          svc::EdgeUpdate::add(1, 0), svc::EdgeUpdate::add(1, 1)};
}

/// Fast-failing client options so breaker tests run in milliseconds.
RemoteOptions fast_opts() {
  RemoteOptions o;
  o.call_timeout_ms = 300;
  o.transfer_timeout_ms = 1000;
  o.max_attempts = 2;
  o.backoff_base_ms = 1;
  o.failure_threshold = 3;
  o.open_cooldown_ms = 40;
  return o;
}

TEST(WireCodec, PayloadCursorRoundTrip) {
  wire::Payload p;
  p.u8(7);
  p.u64(0xdeadbeefcafe1234ULL);
  p.i64(-42);
  p.str("hello, shard");
  p.str("");  // empty strings are legal
  wire::Cursor c(p.view());
  EXPECT_EQ(c.u8(), 7);
  EXPECT_EQ(c.u64(), 0xdeadbeefcafe1234ULL);
  EXPECT_EQ(c.i64(), -42);
  EXPECT_EQ(c.str(), "hello, shard");
  EXPECT_EQ(c.str(), "");
  EXPECT_TRUE(c.done());
}

TEST(WireCodec, ShortPayloadThrowsNotReadsGarbage) {
  wire::Payload p;
  p.u8(1);
  wire::Cursor c(p.view());
  (void)c.u8();
  EXPECT_THROW((void)c.u64(), ShardUnavailableError);
}

TEST(WireCodec, BatchPublishPairsRoundTrip) {
  const std::vector<svc::EdgeUpdate> batch = {
      svc::EdgeUpdate::add(3, 1), svc::EdgeUpdate::del(7, 0),
      svc::EdgeUpdate::add(0, 5)};
  const std::vector<svc::EdgeUpdate> back =
      wire::decode_batch(wire::encode_batch(batch));
  ASSERT_EQ(back.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(back[i].u, batch[i].u);
    EXPECT_EQ(back[i].v, batch[i].v);
    EXPECT_EQ(back[i].insert, batch[i].insert);
  }

  svc::PublishResult r;
  r.epoch = 9;
  r.applied = 12;
  r.ignored = 3;
  r.created = 5;
  r.destroyed = 2;
  const svc::PublishResult r2 = wire::decode_publish(wire::encode_publish(r));
  EXPECT_EQ(r2.epoch, 9u);
  EXPECT_EQ(r2.applied, 12);
  EXPECT_EQ(r2.ignored, 3);
  EXPECT_EQ(r2.created, 5);
  EXPECT_EQ(r2.destroyed, 2);

  const std::vector<count::VertexPair> pairs = {{0, 4, 3}, {1, 6, 2}};
  std::uint64_t epoch = 0;
  const std::vector<count::VertexPair> pairs2 =
      wire::decode_pairs(wire::encode_pairs(17, pairs), epoch);
  EXPECT_EQ(epoch, 17u);
  ASSERT_EQ(pairs2.size(), 2u);
  EXPECT_EQ(pairs2[0].a, 0);
  EXPECT_EQ(pairs2[0].b, 4);
  EXPECT_EQ(pairs2[0].wedges, 3);
}

TEST(WireCodec, SnapshotRoundTripCarriesGraphAndCounts) {
  LocalShard shard(0, 6, 5, 0, 6);
  const std::vector<svc::EdgeUpdate> batch = {
      svc::EdgeUpdate::add(0, 0), svc::EdgeUpdate::add(0, 1),
      svc::EdgeUpdate::add(2, 0), svc::EdgeUpdate::add(2, 1)};
  (void)shard.apply(batch);
  const svc::SnapshotPtr snap = shard.pin();
  const svc::SnapshotPtr back = wire::decode_snapshot(
      wire::encode_snapshot(*snap));
  EXPECT_EQ(back->epoch, snap->epoch);
  EXPECT_EQ(back->butterflies, 1);
  EXPECT_EQ(back->edges, 4);
  EXPECT_EQ(back->graph.n1(), 6);
  EXPECT_EQ(back->graph.n2(), 5);
  EXPECT_EQ(count::wedge_reference(back->graph), 1);
}

TEST(RemoteShardProto, ParityWithTheLocalShardItProxies) {
  const std::string sock = sock_path("parity");
  LocalShard host(0, 8, 6, 0, 8);
  InProcHost server(sock, host);
  RemoteShard remote(0, 8, 6, 0, 8, sock, fast_opts());

  // Publish THROUGH the socket; the host's LocalShard is the reference.
  std::vector<svc::EdgeUpdate> batch;
  for (vidx_t u = 0; u < 4; ++u)
    for (vidx_t v = 0; v < 3; ++v) batch.push_back(svc::EdgeUpdate::add(u, v));
  const svc::PublishResult pub = remote.apply(batch);
  EXPECT_EQ(pub.epoch, 1u);
  EXPECT_EQ(pub.applied, 12);
  EXPECT_EQ(host.epoch(), 1u);

  const svc::SnapshotPtr ref = host.pin();
  const svc::SnapshotPtr got = remote.pin();
  EXPECT_EQ(got->epoch, ref->epoch);
  EXPECT_EQ(got->butterflies, ref->butterflies);
  EXPECT_EQ(got->edges, ref->edges);
  EXPECT_EQ(remote.epoch(), 1u);
  EXPECT_TRUE(remote.healthy());

  // Host-side query kinds match the kernels on the reference snapshot.
  EXPECT_EQ(remote.query_global(), ref->butterflies);
  const std::vector<count_t> tips1 = count::butterflies_per_v1(ref->graph);
  const std::vector<count_t> tips2 = count::butterflies_per_v2(ref->graph);
  for (vidx_t u = 0; u < 8; ++u)
    EXPECT_EQ(remote.query_tip_v1(u), tips1[static_cast<std::size_t>(u)]);
  for (vidx_t v = 0; v < 6; ++v)
    EXPECT_EQ(remote.query_tip_v2(v), tips2[static_cast<std::size_t>(v)]);
  const std::vector<count_t> support = count::support_per_edge(ref->graph);
  EXPECT_EQ(remote.query_edge_support(0, 0), support[0]);
  EXPECT_EQ(remote.query_edge_support(7, 5), 0);  // absent edge
  const std::vector<count::VertexPair> top =
      count::top_wedge_pairs_v1(ref->graph, 3);
  const std::vector<count::VertexPair> rtop = remote.query_top_pairs(3);
  ASSERT_EQ(rtop.size(), top.size());
  for (std::size_t i = 0; i < top.size(); ++i)
    EXPECT_EQ(rtop[i].wedges, top[i].wedges);

  // Semantic errors (host replied kError) cross as std::runtime_error and
  // leave the breaker alone: the host is alive, it just said no.
  EXPECT_THROW(remote.restore("/tmp/bfc_no_such_ckpt.bin"),
               std::runtime_error);
  EXPECT_TRUE(remote.healthy()) << "a kError reply must not trip the breaker";
  EXPECT_EQ(remote.circuit(), CircuitState::kClosed);
}

TEST(RemoteShardProto, PinServesLastKnownSnapshotAfterHostDeath) {
  const std::string sock = sock_path("pincache");
  RemoteOptions opts = fast_opts();
  LocalShard host(0, 6, 4, 0, 6);
  auto server = std::make_unique<InProcHost>(sock, host);
  RemoteShard remote(0, 6, 4, 0, 6, sock, opts);
  (void)remote.apply(butterfly_square());
  const svc::SnapshotPtr live = remote.pin();
  ASSERT_EQ(live->butterflies, 1);

  server.reset();  // the host is gone; the socket path dangles

  // pin() NEVER throws: each call fails its epoch probe (counting toward
  // the breaker) and serves the last transferred snapshot.
  for (int i = 0; i < 3; ++i) {
    const svc::SnapshotPtr cached = remote.pin();
    EXPECT_EQ(cached->epoch, live->epoch);
    EXPECT_EQ(cached->butterflies, live->butterflies);
  }
  EXPECT_FALSE(remote.healthy());
  EXPECT_EQ(remote.circuit(), CircuitState::kOpen);
  // Writes fail fast while open — no socket, no retry storm.
  const std::vector<svc::EdgeUpdate> one = {svc::EdgeUpdate::add(2, 2)};
  EXPECT_THROW((void)remote.apply(one), ShardUnavailableError);
}

// ---------------------------------------------------------------------------
// Fault-injected transport paths (checked builds only)
// ---------------------------------------------------------------------------

class TransportFaultGated : public ::testing::Test {
 protected:
  void SetUp() override {
    if constexpr (!chk::kCheckedEnabled)
      GTEST_SKIP() << "fault injection compiled out (BFC_CHECKED=OFF)";
  }
  void TearDown() override { svc::fault::reset(); }

  static constexpr std::uint64_t kForever = 1u << 20;
};

TEST_F(TransportFaultGated, RetriesAbsorbATransientDrop) {
  const std::string sock = sock_path("transient");
  LocalShard host(0, 4, 4, 0, 4);
  InProcHost server(sock, host);
  RemoteShard remote(0, 4, 4, 0, 4, sock, fast_opts());
  // Exactly one dropped leg: the first attempt fails, the retry answers.
  const svc::fault::Scoped drop(svc::fault::Point::kTransportDrop, 0, 1);
  EXPECT_EQ(remote.query_global(), 0);
  EXPECT_TRUE(remote.healthy());
  EXPECT_EQ(remote.circuit(), CircuitState::kClosed);
}

TEST_F(TransportFaultGated, DropsOpenTheCircuitAndCooldownRecloses) {
  const std::string sock = sock_path("breaker");
  RemoteOptions opts = fast_opts();
  LocalShard host(0, 4, 4, 0, 4);
  InProcHost server(sock, host);
  RemoteShard remote(0, 4, 4, 0, 4, sock, opts);
  ASSERT_EQ(remote.query_global(), 0);  // healthy baseline

  {
    const svc::fault::Scoped drop(svc::fault::Point::kTransportDrop, 0,
                                  kForever);
    // Every leg drops: each rpc exhausts its attempts and records one
    // failure; failure_threshold of them open the breaker.
    for (int i = 0; i < opts.failure_threshold; ++i)
      EXPECT_THROW((void)remote.query_global(), ShardUnavailableError);
    EXPECT_EQ(remote.circuit(), CircuitState::kOpen);
    EXPECT_FALSE(remote.healthy());
    // While open and inside the cooldown: fail fast, no socket touched.
    EXPECT_THROW((void)remote.query_global(), ShardUnavailableError);
  }

  // Fault disarmed: after the cooldown one probe passes half-open and its
  // success recloses the breaker.
  std::this_thread::sleep_for(
      std::chrono::milliseconds(opts.open_cooldown_ms + 10));
  EXPECT_EQ(remote.query_global(), 0);
  EXPECT_EQ(remote.circuit(), CircuitState::kClosed);
  EXPECT_TRUE(remote.healthy());
}

TEST_F(TransportFaultGated, DelayTripsThePerLegTimeout) {
  const std::string sock = sock_path("delay");
  RemoteOptions opts = fast_opts();
  opts.call_timeout_ms = 30;
  opts.max_attempts = 1;
  LocalShard host(0, 4, 4, 0, 4);
  InProcHost server(sock, host);
  RemoteShard remote(0, 4, 4, 0, 4, sock, opts);
  // Stall 10× the leg budget before the receive: the call must time out
  // (ShardTimeoutError is-a ShardUnavailableError, counted separately).
  const svc::fault::Scoped delay(svc::fault::Point::kTransportDelay, 0, 1,
                                 /*ms=*/300);
  EXPECT_THROW((void)remote.query_global(), ShardTimeoutError);
}

TEST_F(TransportFaultGated, OpenCircuitDegradesShardedAnswersNotQueries) {
  const std::string sock = sock_path("stale");
  RemoteOptions opts = fast_opts();
  svc::ButterflyService service(8, 6, {.threads = 1, .shards = 2});
  // K_{3,3} on shard 0's range [0, 4): all butterflies live there.
  std::vector<svc::EdgeUpdate> k33;
  for (vidx_t u = 0; u < 3; ++u)
    for (vidx_t v = 0; v < 3; ++v) k33.push_back(svc::EdgeUpdate::add(u, v));

  LocalShard host(0, 8, 6, 0, 4);
  InProcHost server(sock, host);
  service.swap_shard(0, std::make_shared<RemoteShard>(0, 8, 6, 0, 4, sock,
                                                      opts));
  (void)service.apply_updates(k33);
  const svc::QueryResult<count_t> exact = service.global_count().get();
  ASSERT_EQ(exact.value, 9);  // C(3,2)^2 butterflies in K_{3,3}
  ASSERT_FALSE(exact.degraded());
  ASSERT_EQ(exact.stale_shards, 0u);

  // Kill the transport and open shard 0's circuit.
  const svc::fault::Scoped drop(svc::fault::Point::kTransportDrop, 0,
                                kForever);
  const shard::ShardHandlePtr h = service.shard_store().shard(0);
  for (int i = 0; i < opts.failure_threshold; ++i) (void)h->pin();
  ASSERT_FALSE(h->healthy());

  // Scatter query: answered (from the last pinned epoch), tagged stale
  // with shard 0's bit — never failed.
  const svc::QueryResult<count_t> dark = service.global_count().get();
  EXPECT_EQ(dark.value, 9);
  EXPECT_EQ(dark.fidelity, svc::Fidelity::kStale);
  EXPECT_EQ(dark.stale_shards, 1u);

  // Routed query on the HEALTHY shard: a dead shard takes no publishes,
  // so the surviving ranges' answers stay exact.
  const svc::QueryResult<count_t> routed = service.vertex_tip_v1(6).get();
  EXPECT_EQ(routed.value, 0);
  EXPECT_FALSE(routed.degraded());
  EXPECT_EQ(routed.stale_shards, 0u);
  // Routed query on the DARK shard: tagged with exactly its bit.
  const svc::QueryResult<count_t> blind = service.vertex_tip_v1(0).get();
  EXPECT_EQ(blind.value, 6);
  EXPECT_EQ(blind.fidelity, svc::Fidelity::kStale);
  EXPECT_EQ(blind.stale_shards, 1u);
}

// ---------------------------------------------------------------------------
// Real process boundaries: needs the bfc-shard-host binary
// ---------------------------------------------------------------------------

class ShardSupervisorProc : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* bin = std::getenv("BFC_SHARD_HOST_BIN");
    if (bin == nullptr || *bin == '\0')
      GTEST_SKIP() << "BFC_SHARD_HOST_BIN not set (host binary unavailable)";
    binary_ = bin;
  }

  std::string binary_;
};

TEST_F(ShardSupervisorProc, RestartsAKilledHostAndRestoresItsCheckpoint) {
  const std::string sock = sock_path("supervised");
  const std::string ckpt = ::testing::TempDir() + "bfc_supervised.ckpt";
  SupervisorOptions sopts;
  sopts.health_interval_ms = 20;
  ShardSupervisor sup(sopts);
  HostSpec spec;
  spec.binary = binary_;
  spec.socket = sock;
  spec.id = 0;
  spec.n1 = 6;
  spec.n2 = 4;
  spec.lo = 0;
  spec.hi = 6;
  ASSERT_EQ(sup.add_host(spec), 0);
  ASSERT_TRUE(sup.alive(0));
  const pid_t first = sup.pid(0);
  ASSERT_GT(first, 0);

  // Publish a butterfly through the real socket, checkpoint it host-side.
  RemoteShard remote(0, 6, 4, 0, 6, sock, fast_opts());
  (void)remote.apply(butterfly_square());
  remote.persist(ckpt);
  sup.set_snapshot(0, ckpt);

  std::atomic<int> restarted_shard{-1};
  std::atomic<std::uint64_t> restored_epoch{~0ULL};
  sup.start_monitor([&](int k, std::uint64_t epoch) {
    restarted_shard.store(k);
    restored_epoch.store(epoch);
  });
  sup.kill_host(0, SIGKILL);

  // The monitor must notice the SIGKILL, respawn with --restore, and fire
  // the callback. Generous bound; typically well under a second.
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (sup.restarts() == 0 && std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(10ms);
  ASSERT_EQ(sup.restarts(), 1u) << "supervisor did not restart the host";
  EXPECT_EQ(restarted_shard.load(), 0);
  EXPECT_EQ(restored_epoch.load(), 1u);
  EXPECT_NE(sup.pid(0), first);
  EXPECT_TRUE(sup.alive(0));

  // The reborn host serves the checkpointed state: same epoch, same count.
  EXPECT_EQ(remote.epoch(), 1u);
  const svc::SnapshotPtr snap = remote.pin();
  EXPECT_EQ(snap->butterflies, 1);
  EXPECT_EQ(snap->edges, 4);
  sup.stop_monitor();
  std::remove(ckpt.c_str());
}

}  // namespace
}  // namespace bfc::shard
