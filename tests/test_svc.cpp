// Tests for the serving subsystem (src/svc/): snapshot store epoch
// semantics, LRU result cache, executor, request coalescing (asserted via
// the obs counters), dynamic-counter parity with from-scratch recounts, and
// a TSan-friendly readers-vs-writer stress test.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include "chk/check.hpp"
#include "count/baselines.hpp"
#include "count/local_counts.hpp"
#include "count/top_pairs.hpp"
#include "obs/metrics.hpp"
#include "obs/spans.hpp"
#include "sparse/ops.hpp"
#include "svc/fault.hpp"
#include "svc/service.hpp"
#include "svc/slo.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace bfc::svc {
namespace {

using bfc::testing::random_graph;

std::vector<EdgeUpdate> inserts_of(const graph::BipartiteGraph& g) {
  std::vector<EdgeUpdate> batch;
  for (const auto& [u, v] : sparse::edges(g.csr()))
    batch.push_back(EdgeUpdate::add(u, v));
  return batch;
}

std::int64_t counter_value(const char* name) {
  return obs::Registry::instance().counter(name).value();
}

TEST(SnapshotStore, GenesisAndPublish) {
  SnapshotStore store(4, 4);
  const SnapshotPtr genesis = store.current();
  EXPECT_EQ(genesis->epoch, 0u);
  EXPECT_EQ(genesis->edges, 0);
  EXPECT_EQ(genesis->butterflies, 0);

  const std::vector<EdgeUpdate> batch = {
      EdgeUpdate::add(0, 0), EdgeUpdate::add(0, 1), EdgeUpdate::add(1, 0),
      EdgeUpdate::add(1, 1), EdgeUpdate::add(1, 1),  // duplicate
      EdgeUpdate::del(3, 3),                         // absent
  };
  const PublishResult r = store.apply_batch(batch);
  EXPECT_EQ(r.epoch, 1u);
  EXPECT_EQ(r.applied, 4);
  EXPECT_EQ(r.ignored, 2);
  EXPECT_EQ(r.created, 1);  // (1,1) closes the single butterfly
  EXPECT_EQ(r.destroyed, 0);

  const SnapshotPtr s1 = store.current();
  EXPECT_EQ(s1->epoch, 1u);
  EXPECT_EQ(s1->edges, 4);
  EXPECT_EQ(s1->butterflies, 1);
  EXPECT_TRUE(s1->graph.has_edge(1, 1));
  // Genesis is untouched.
  EXPECT_EQ(genesis->edges, 0);
}

TEST(SnapshotStore, EpochIsolation) {
  // A reader pinned to epoch k must see no edges from epoch k+1.
  ButterflyService service(6, 6, {.threads = 2});
  service.apply_updates(inserts_of(random_graph(6, 6, 0.4, 1)));
  const SnapshotPtr pinned = service.snapshot();
  const count_t pinned_count = pinned->butterflies;
  const offset_t pinned_edges = pinned->edges;
  ASSERT_FALSE(pinned->graph.has_edge(5, 5) && pinned->graph.has_edge(5, 4))
      << "test premise: (5,5)/(5,4) not both present at epoch 1";

  const std::vector<EdgeUpdate> next = {EdgeUpdate::add(5, 5),
                                        EdgeUpdate::add(5, 4)};
  service.apply_updates(next);
  ASSERT_EQ(service.snapshot()->epoch, 2u);

  // The pinned snapshot is bit-identical to its publish-time state.
  EXPECT_EQ(pinned->epoch, 1u);
  EXPECT_EQ(pinned->edges, pinned_edges);
  EXPECT_FALSE(pinned->graph.has_edge(5, 5) && pinned->graph.has_edge(5, 4));
  const QueryResult<count_t> answer = service.global_count(pinned).get();
  EXPECT_EQ(answer.value, pinned_count);
  EXPECT_EQ(answer.epoch, 1u);
  EXPECT_FALSE(answer.degraded());
  EXPECT_EQ(pinned->butterflies, count::wedge_reference(pinned->graph));
}

TEST(Service, QueriesMatchBatchCountersAtEveryEpoch) {
  // Dynamic-counter parity: after each published batch, the snapshot count
  // and the per-vertex / per-edge answers must equal a from-scratch
  // computation on the materialised graph.
  ButterflyService service(12, 10, {.threads = 3});
  Rng rng(7);
  std::vector<EdgeUpdate> batch;
  for (int epoch = 1; epoch <= 4; ++epoch) {
    batch.clear();
    for (int i = 0; i < 40; ++i)
      batch.push_back({static_cast<vidx_t>(rng.bounded(12)),
                       static_cast<vidx_t>(rng.bounded(10)),
                       rng.bernoulli(0.8)});
    service.apply_updates(batch);
    const SnapshotPtr snap = service.snapshot();
    ASSERT_EQ(snap->epoch, static_cast<std::uint64_t>(epoch));
    EXPECT_EQ(snap->butterflies, count::wedge_reference(snap->graph));
    EXPECT_EQ(service.global_count(snap).get().value, snap->butterflies);

    const std::vector<count_t> tips_v1 = count::butterflies_per_v1(snap->graph);
    const std::vector<count_t> tips_v2 = count::butterflies_per_v2(snap->graph);
    for (vidx_t u = 0; u < 12; ++u) {
      const QueryResult<count_t> r = service.vertex_tip_v1(u, snap).get();
      EXPECT_EQ(r.value, tips_v1[static_cast<std::size_t>(u)]);
      EXPECT_FALSE(r.degraded());  // no overload: every answer is exact
    }
    for (vidx_t v = 0; v < 10; ++v)
      EXPECT_EQ(service.vertex_tip_v2(v, snap).get().value,
                tips_v2[static_cast<std::size_t>(v)]);

    const std::vector<count_t> support = count::support_per_edge(snap->graph);
    const auto edge_list = sparse::edges(snap->graph.csr());
    for (std::size_t k = 0; k < edge_list.size(); ++k)
      EXPECT_EQ(
          service.edge_support(edge_list[k].first, edge_list[k].second, snap)
              .get()
              .value,
          support[k]);
  }
}

TEST(Service, AbsentEdgeHasZeroSupport) {
  ButterflyService service(3, 3, {.threads = 1});
  service.apply_updates({EdgeUpdate::add(0, 0), EdgeUpdate::add(0, 1),
                         EdgeUpdate::add(1, 0), EdgeUpdate::add(1, 1)});
  EXPECT_EQ(service.edge_support(2, 2).get().value, 0);
  EXPECT_EQ(service.edge_support(0, 0).get().value, 1);
}

TEST(Service, TopPairsMatchesDirectComputation) {
  ButterflyService service(10, 8, {.threads = 2});
  service.apply_updates(inserts_of(random_graph(10, 8, 0.4, 3)));
  const SnapshotPtr snap = service.snapshot();
  const TopPairsPtr got = service.top_pairs(4, snap).get().value;
  EXPECT_EQ(*got, count::top_wedge_pairs_v1(snap->graph, 4));
  // The repeat comes out of the LRU cache: same shared vector.
  EXPECT_EQ(service.top_pairs(4, snap).get().value.get(), got.get());
}

TEST(Service, OutOfRangeQueriesThrow) {
  ButterflyService service(4, 5, {.threads = 1});
  EXPECT_THROW(service.vertex_tip_v1(4), std::invalid_argument);
  EXPECT_THROW(service.vertex_tip_v2(5), std::invalid_argument);
  EXPECT_THROW(service.edge_support(-1, 0), std::invalid_argument);
}

TEST(Service, CachePrunedToStaleTierOnPublish) {
  ButterflyService service(8, 8, {.threads = 2});
  service.apply_updates(inserts_of(random_graph(8, 8, 0.5, 5)));
  (void)service.edge_support(0, 0).get();
  (void)service.vertex_tip_v1(1).get();
  const std::size_t at_epoch1 = service.cache().size();
  EXPECT_GT(at_epoch1, 0u);

  if (obs::kMetricsEnabled) {
    const std::int64_t hits0 = counter_value("svc.cache_hits");
    (void)service.edge_support(0, 0).get();  // repeat, same epoch
    EXPECT_EQ(counter_value("svc.cache_hits"), hits0 + 1);
  }

  // Publishing epoch 2 keeps epoch-1 entries (the stale-answer tier) but
  // resets the generation-scoped hit/miss stats.
  service.apply_updates({EdgeUpdate::add(7, 7)});
  EXPECT_EQ(service.cache().size(), at_epoch1);
  EXPECT_EQ(service.cache().hits(), 0);
  EXPECT_EQ(service.cache().misses(), 0);

  if (obs::kMetricsEnabled) {
    const std::int64_t misses0 = counter_value("svc.cache_misses");
    (void)service.edge_support(0, 0).get();  // new epoch: must recompute
    EXPECT_EQ(counter_value("svc.cache_misses"), misses0 + 1);
  } else {
    (void)service.edge_support(0, 0).get();
  }

  // Publishing epoch 3 retires the epoch-1 entries; only the epoch-2 entry
  // (now itself the stale tier) survives.
  service.apply_updates({EdgeUpdate::del(7, 7)});
  EXPECT_EQ(service.cache().size(), 1u);
}

TEST(Service, ConcurrentTipQueriesCoalesceIntoOnePass) {
  if (!obs::kMetricsEnabled)
    GTEST_SKIP() << "coalescing is asserted via obs counters";
  ButterflyService service(32, 24, {.threads = 4});
  service.apply_updates(inserts_of(random_graph(32, 24, 0.3, 9)));
  const SnapshotPtr snap = service.snapshot();
  const std::vector<count_t> expect = count::butterflies_per_v1(snap->graph);

  const std::int64_t passes0 = counter_value("svc.tip_passes");
  const std::int64_t batches0 = counter_value("svc.coalesced_batches");
  const std::int64_t joined0 = counter_value("svc.coalesced_queries");

  // M concurrent per-vertex queries, all distinct vertices (so none can be
  // answered by the LRU cache), all for the same epoch and side.
  constexpr vidx_t kM = 24;
  std::vector<std::future<QueryResult<count_t>>> futures;
  futures.reserve(kM);
  for (vidx_t u = 0; u < kM; ++u)
    futures.push_back(service.vertex_tip_v1(u, snap));
  for (vidx_t u = 0; u < kM; ++u)
    EXPECT_EQ(futures[static_cast<std::size_t>(u)].get().value,
              expect[static_cast<std::size_t>(u)]);

  // One underlying pass over count::local_counts served all kM requests.
  EXPECT_EQ(counter_value("svc.tip_passes"), passes0 + 1);
  EXPECT_EQ(counter_value("svc.coalesced_queries"), joined0 + kM - 1);
  EXPECT_EQ(counter_value("svc.coalesced_batches"), batches0 + 1);
}

TEST(ResultCache, LruEvictionAndRecency) {
  ResultCache cache(3);
  const auto key = [](std::int64_t a) {
    return CacheKey{1, QueryKind::kEdgeSupport, a, 0};
  };
  cache.put(key(1), count_t{10});
  cache.put(key(2), count_t{20});
  cache.put(key(3), count_t{30});
  // Touch 1 so 2 becomes least-recently-used.
  EXPECT_EQ(std::get<count_t>(*cache.get(key(1))), 10);
  cache.put(key(4), count_t{40});
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_FALSE(cache.get(key(2)).has_value());
  EXPECT_TRUE(cache.get(key(1)).has_value());
  EXPECT_TRUE(cache.get(key(3)).has_value());
  EXPECT_TRUE(cache.get(key(4)).has_value());

  cache.invalidate_all();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.get(key(1)).has_value());
}

TEST(Executor, RunsTasksAndPropagatesExceptions) {
  Executor pool(3);
  EXPECT_EQ(pool.thread_count(), 3);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 50; ++i)
    futures.push_back(pool.submit([i] { return i * i; }));
  for (int i = 0; i < 50; ++i)
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);

  auto boom = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(boom.get(), std::runtime_error);
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(Service, StressReadersVsWriterPublishing) {
  // N reader threads issue mixed queries while the writer publishes epochs;
  // every answer must be internally consistent with the reader's pinned
  // snapshot. Runs clean under -DBFC_SANITIZE=thread (all query kernels on
  // this path are sequential — no OpenMP regions for TSan to misread).
  constexpr vidx_t kN1 = 20, kN2 = 16;
  ButterflyService service(kN1, kN2, {.threads = 4});
  service.apply_updates(inserts_of(random_graph(kN1, kN2, 0.3, 11)));

  std::atomic<bool> done{false};
  std::atomic<std::int64_t> queries{0};

  std::vector<std::jthread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&service, &done, &queries, r] {
      Rng rng(100 + static_cast<std::uint64_t>(r));
      while (!done.load(std::memory_order_relaxed)) {
        const SnapshotPtr snap = service.snapshot();
        const auto pick = rng.bounded(4);
        if (pick == 0) {
          ASSERT_EQ(service.global_count(snap).get().value, snap->butterflies);
        } else if (pick == 1) {
          const auto u = static_cast<vidx_t>(rng.bounded(kN1));
          ASSERT_GE(service.vertex_tip_v1(u, snap).get().value, 0);
        } else if (pick == 2) {
          const auto v = static_cast<vidx_t>(rng.bounded(kN2));
          ASSERT_GE(service.vertex_tip_v2(v, snap).get().value, 0);
        } else {
          const auto u = static_cast<vidx_t>(rng.bounded(kN1));
          const auto v = static_cast<vidx_t>(rng.bounded(kN2));
          ASSERT_GE(service.edge_support(u, v, snap).get().value, 0);
        }
        queries.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  Rng rng(55);
  for (int epoch = 0; epoch < 12; ++epoch) {
    std::vector<EdgeUpdate> batch;
    for (int i = 0; i < 30; ++i)
      batch.push_back({static_cast<vidx_t>(rng.bounded(kN1)),
                       static_cast<vidx_t>(rng.bounded(kN2)),
                       rng.bernoulli(0.7)});
    service.apply_updates(batch);
    // Pace the writer against reader progress so epochs genuinely overlap
    // with in-flight queries instead of all publishing before the readers
    // get scheduled.
    const std::int64_t target = queries.load(std::memory_order_relaxed) + 20;
    while (queries.load(std::memory_order_relaxed) < target)
      std::this_thread::yield();
  }
  done.store(true, std::memory_order_relaxed);
  readers.clear();  // join

  EXPECT_GT(queries.load(), 0);
  // Zero drift: the incrementally maintained count equals a from-scratch
  // recount of the final materialised snapshot.
  const SnapshotPtr fin = service.snapshot();
  EXPECT_EQ(fin->epoch, 13u);
  EXPECT_EQ(fin->butterflies, count::wedge_reference(fin->graph));
}

// -------------------------------------------------------------------- SLO

TEST(Slo, BurnRateIsWindowedErrorBudgetArithmetic) {
  std::array<SloPolicy, kQueryKinds> policies{};
  policies[static_cast<std::size_t>(QueryKind::kGlobalCount)] = {
      /*target_us=*/1000.0, /*objective=*/0.9};
  SloTracker tracker(policies, /*window=*/10);
  EXPECT_TRUE(tracker.enabled());
  EXPECT_DOUBLE_EQ(tracker.burn_rate(QueryKind::kGlobalCount), 0.0);

  for (int i = 0; i < 10; ++i)
    tracker.observe(QueryKind::kGlobalCount, 10.0);  // all within target
  EXPECT_DOUBLE_EQ(tracker.burn_rate(QueryKind::kGlobalCount), 0.0);
  EXPECT_FALSE(tracker.budget_exhausted());

  // Two violations in a 10-wide window at a 90% objective: bad fraction
  // 0.2 against an allowance of 0.1 — burn rate exactly 2.
  tracker.observe(QueryKind::kGlobalCount, 5000.0);
  tracker.observe(QueryKind::kGlobalCount, 5000.0);
  EXPECT_NEAR(tracker.burn_rate(QueryKind::kGlobalCount), 2.0, 1e-12);
  EXPECT_TRUE(tracker.budget_exhausted());
  EXPECT_EQ(tracker.violations(QueryKind::kGlobalCount), 2);

  // Untracked kinds ignore observations entirely.
  tracker.observe(QueryKind::kEdgeSupport, 1e9);
  EXPECT_DOUBLE_EQ(tracker.burn_rate(QueryKind::kEdgeSupport), 0.0);
  EXPECT_EQ(tracker.violations(QueryKind::kEdgeSupport), 0);

  // The window forgets: a full window of good observations drains the burn.
  for (int i = 0; i < 10; ++i)
    tracker.observe(QueryKind::kGlobalCount, 1.0);
  EXPECT_DOUBLE_EQ(tracker.burn_rate(QueryKind::kGlobalCount), 0.0);
  EXPECT_FALSE(tracker.budget_exhausted());
  EXPECT_EQ(tracker.violations(QueryKind::kGlobalCount), 2);  // cumulative
}

TEST(Slo, UntrackedPoliciesDisableTheTracker) {
  SloTracker tracker({}, /*window=*/8);
  EXPECT_FALSE(tracker.enabled());
  tracker.observe(QueryKind::kGlobalCount, 1e9);
  EXPECT_FALSE(tracker.budget_exhausted());
}

TEST(Service, SloBudgetExhaustionTripsOverloadedAndDegrades) {
  const graph::BipartiteGraph g = random_graph(40, 40, 0.25, 19);
  ServiceOptions opt;
  opt.threads = 1;
  // An objective no real kernel can meet: half of all tip queries under a
  // nanosecond. The budget exhausts after a handful of exact answers.
  opt.slo_target_us.fill(1e-3);
  opt.slo_objective = 0.5;
  ButterflyService service(40, 40, opt);
  service.apply_updates(inserts_of(g));
  EXPECT_FALSE(service.overloaded());  // no observations yet

  // Distinct vertices: cache hits observe ~0µs and would stay under even
  // this target, so each query must reach the (slow, exact) kernel path.
  for (vidx_t v = 0; v < 8; ++v)
    (void)service.vertex_tip_v1(v, {}).get();
  EXPECT_TRUE(service.slo().budget_exhausted());
  EXPECT_GT(service.slo().burn_rate(QueryKind::kVertexTipV1), 1.0);
  EXPECT_TRUE(service.overloaded());

  // With the budget exhausted the admission rung answers degraded.
  const QueryResult<count_t> degraded =
      service.vertex_tip_v1(20, {}).get();
  EXPECT_TRUE(degraded.degraded());
}

// ------------------------------------------------------------- Span trees

TEST(Service, QuerySpanTreeLinksQueueAndKernel) {
  if constexpr (!obs::kMetricsEnabled) {
    GTEST_SKIP() << "built with BFC_METRICS=OFF";
  }
  const graph::BipartiteGraph g = random_graph(30, 30, 0.2, 23);
  ButterflyService service(30, 30, {.threads = 1});
  service.apply_updates(inserts_of(g));

  obs::SpanLog::clear();
  obs::SpanLog::set_enabled(true);
  (void)service.vertex_tip_v1(5, {}).get();
  obs::SpanLog::set_enabled(false);

  const std::vector<obs::SpanRecord> spans = obs::SpanLog::snapshot();
  const obs::SpanRecord* query = nullptr;
  const obs::SpanRecord* queue = nullptr;
  const obs::SpanRecord* kernel = nullptr;
  for (const obs::SpanRecord& s : spans) {
    if (s.name == "svc.query.tip_v1") query = &s;
    if (s.name == "svc.queue") queue = &s;
    if (s.name == "svc.kernel.tip_v1") kernel = &s;
  }
  ASSERT_NE(query, nullptr);
  ASSERT_NE(queue, nullptr);
  ASSERT_NE(kernel, nullptr);
  // One causal tree: both children parent to the query span, same trace.
  EXPECT_EQ(query->parent_id, 0u);
  EXPECT_EQ(queue->trace_id, query->trace_id);
  EXPECT_EQ(queue->parent_id, query->span_id);
  EXPECT_EQ(queue->tag("outcome"), "run");
  EXPECT_EQ(kernel->trace_id, query->trace_id);
  EXPECT_EQ(kernel->parent_id, query->span_id);
  EXPECT_EQ(kernel->tag("outcome"), "ok");
  EXPECT_EQ(query->tag("cache"), "miss");
  EXPECT_EQ(query->tag("outcome"), "exact");
  obs::SpanLog::clear();
}

TEST(Service, CancelledKernelStillClosesItsSpanTagged) {
  if constexpr (!obs::kMetricsEnabled || !chk::kCheckedEnabled) {
    GTEST_SKIP() << "needs BFC_METRICS=ON and BFC_CHECKED=ON (fault "
                    "injection drives the cancellation)";
  }
  const graph::BipartiteGraph g = random_graph(40, 40, 0.25, 29);
  ButterflyService service(40, 40, {.threads = 1});
  service.apply_updates(inserts_of(g));
  const std::int64_t cancelled_before = counter_value("svc.kernels_cancelled");

  obs::SpanLog::clear();
  obs::SpanLog::set_enabled(true);
  {
    // The tip pass sleeps 250 ms while the request's deadline expires after
    // 50 ms, so the kernel observes its cancel token mid-pass and gives up.
    const fault::Scoped slow(fault::Point::kSlowKernel, 0, 1, /*ms=*/250);
    const Request req(service.snapshot(),
                      Deadline::after(std::chrono::milliseconds(50)));
    try {
      const QueryResult<count_t> r = service.vertex_tip_v1(3, req).get();
      EXPECT_TRUE(r.degraded());  // fell down the ladder, never exact
    } catch (const OverloadError&) {
      // Acceptable: no degraded tier could answer either.
    }
    EXPECT_EQ(fault::fired_count(fault::Point::kSlowKernel), 1u);
  }
  obs::SpanLog::set_enabled(false);

  EXPECT_EQ(counter_value("svc.kernels_cancelled"), cancelled_before + 1);
  const std::vector<obs::SpanRecord> spans = obs::SpanLog::snapshot();
  const obs::SpanRecord* kernel = nullptr;
  const obs::SpanRecord* query = nullptr;
  for (const obs::SpanRecord& s : spans) {
    if (s.name == "svc.kernel.tip_v1") kernel = &s;
    if (s.name == "svc.query.tip_v1") query = &s;
  }
  // The cancelled kernel's span is closed and tagged, not dropped.
  ASSERT_NE(kernel, nullptr);
  EXPECT_EQ(kernel->tag("cancelled"), "true");
  EXPECT_EQ(kernel->tag("outcome"), "cancelled");
  EXPECT_GT(kernel->dur_us, 0);
  ASSERT_NE(query, nullptr);
  EXPECT_EQ(query->tag("cancelled"), "true");
  EXPECT_NE(query->tag("outcome"), "exact");
  EXPECT_FALSE(query->tag("outcome").empty());
  EXPECT_EQ(kernel->parent_id, query->span_id);
  obs::SpanLog::clear();
}

}  // namespace
}  // namespace bfc::svc
