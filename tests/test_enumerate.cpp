#include <gtest/gtest.h>

#include <set>

#include "count/baselines.hpp"
#include "count/enumerate.hpp"
#include "count/local_counts.hpp"
#include "test_helpers.hpp"

namespace bfc::count {
namespace {

using bfc::testing::complete_bipartite;
using bfc::testing::hexagon;
using bfc::testing::random_graph;
using bfc::testing::single_butterfly;

TEST(Enumerate, SingleButterfly) {
  const auto list = enumerate_butterflies(single_butterfly());
  ASSERT_EQ(list.size(), 1u);
  EXPECT_EQ(list[0], (Butterfly{0, 1, 0, 1}));
}

TEST(Enumerate, EmptyCases) {
  EXPECT_TRUE(enumerate_butterflies(hexagon()).empty());
  EXPECT_TRUE(enumerate_butterflies(graph::BipartiteGraph{}).empty());
  EXPECT_TRUE(enumerate_butterflies(bfc::testing::star(5)).empty());
}

TEST(Enumerate, CompleteBipartiteExactSet) {
  const auto g = complete_bipartite(3, 3);
  const auto list = enumerate_butterflies(g);
  EXPECT_EQ(static_cast<count_t>(list.size()), choose2(3) * choose2(3));
  // Every quadruple must be present exactly once.
  const std::set<Butterfly> unique(list.begin(), list.end());
  EXPECT_EQ(unique.size(), list.size());
  EXPECT_TRUE(unique.contains(Butterfly{0, 2, 1, 2}));
}

TEST(Enumerate, LexicographicOrderAndValidity) {
  const auto g = random_graph(12, 10, 0.4, 3);
  const auto list = enumerate_butterflies(g);
  for (std::size_t i = 0; i < list.size(); ++i) {
    const Butterfly& b = list[i];
    EXPECT_LT(b.u1, b.u2);
    EXPECT_LT(b.v1, b.v2);
    // All four edges exist.
    EXPECT_TRUE(g.has_edge(b.u1, b.v1));
    EXPECT_TRUE(g.has_edge(b.u1, b.v2));
    EXPECT_TRUE(g.has_edge(b.u2, b.v1));
    EXPECT_TRUE(g.has_edge(b.u2, b.v2));
    if (i > 0) EXPECT_LT(list[i - 1], list[i]);
  }
}

class EnumerateAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EnumerateAgreement, CountMatchesReferenceCounter) {
  const auto g = random_graph(15, 13, 0.35, GetParam());
  const auto list = enumerate_butterflies(g);
  EXPECT_EQ(static_cast<count_t>(list.size()), wedge_reference(g));
  const std::set<Butterfly> unique(list.begin(), list.end());
  EXPECT_EQ(unique.size(), list.size()) << "duplicate butterflies emitted";
}

TEST_P(EnumerateAgreement, PerVertexEnumerationMatchesLocalCounts) {
  const auto g = random_graph(12, 12, 0.4, GetParam() + 100);
  const auto per_vertex = butterflies_per_v1(g);
  for (vidx_t u = 0; u < g.n1(); ++u) {
    const auto list = butterflies_containing_v1(g, u);
    EXPECT_EQ(static_cast<count_t>(list.size()),
              per_vertex[static_cast<std::size_t>(u)])
        << "vertex " << u;
    for (const Butterfly& b : list) EXPECT_TRUE(b.u1 == u || b.u2 == u);
    const std::set<Butterfly> unique(list.begin(), list.end());
    EXPECT_EQ(unique.size(), list.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnumerateAgreement,
                         ::testing::Values(1u, 2u, 3u, 4u));

TEST(Enumerate, EarlyStopViaVisitor) {
  const auto g = complete_bipartite(4, 4);
  count_t visited = 0;
  const count_t total = for_each_butterfly(g, [&](const Butterfly&) {
    ++visited;
    return visited < 5;
  });
  EXPECT_EQ(visited, 5);
  EXPECT_EQ(total, 5);
}

TEST(Enumerate, LimitEnforced) {
  const auto g = complete_bipartite(6, 6);  // 225 butterflies
  EXPECT_THROW(enumerate_butterflies(g, 10), std::length_error);
  EXPECT_EQ(enumerate_butterflies(g, 225).size(), 225u);
}

TEST(Enumerate, VertexArgumentChecked) {
  const auto g = single_butterfly();
  EXPECT_THROW(butterflies_containing_v1(g, 5), std::invalid_argument);
  EXPECT_THROW(butterflies_containing_v1(g, -1), std::invalid_argument);
}

}  // namespace
}  // namespace bfc::count
