#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "gen/discrete_sampler.hpp"
#include "gen/generators.hpp"
#include "gen/konect_like.hpp"
#include "sparse/ops.hpp"

namespace bfc::gen {
namespace {

TEST(ErdosRenyi, ExtremeProbabilities) {
  const auto empty = erdos_renyi(10, 10, 0.0, 1);
  EXPECT_EQ(empty.edge_count(), 0);
  const auto full = erdos_renyi(10, 10, 1.0, 1);
  EXPECT_EQ(full.edge_count(), 100);
}

TEST(ErdosRenyi, EdgeCountNearExpectation) {
  const auto g = erdos_renyi(200, 200, 0.1, 7);
  const double expected = 200.0 * 200.0 * 0.1;
  EXPECT_GT(g.edge_count(), expected * 0.85);
  EXPECT_LT(g.edge_count(), expected * 1.15);
}

TEST(ErdosRenyi, DeterministicBySeed) {
  EXPECT_EQ(erdos_renyi(50, 40, 0.2, 9), erdos_renyi(50, 40, 0.2, 9));
  EXPECT_NE(erdos_renyi(50, 40, 0.2, 9), erdos_renyi(50, 40, 0.2, 10));
}

TEST(ErdosRenyi, EmptyDimensions) {
  EXPECT_EQ(erdos_renyi(0, 10, 0.5, 1).edge_count(), 0);
  EXPECT_EQ(erdos_renyi(10, 0, 0.5, 1).edge_count(), 0);
  EXPECT_THROW(erdos_renyi(2, 2, 1.5, 1), std::invalid_argument);
}

TEST(ErdosRenyiM, ExactEdgeCount) {
  for (const offset_t m : {0, 1, 37, 100}) {
    const auto g = erdos_renyi_m(10, 10, m, 3);
    EXPECT_EQ(g.edge_count(), m);
  }
  EXPECT_THROW(erdos_renyi_m(3, 3, 10, 1), std::invalid_argument);
}

TEST(PowerLawWeights, NormalisedAndDecreasing) {
  const auto w = power_law_weights(100, 0.8);
  ASSERT_EQ(w.size(), 100u);
  const double sum = std::accumulate(w.begin(), w.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
  for (std::size_t i = 1; i < w.size(); ++i) EXPECT_LE(w[i], w[i - 1]);
}

TEST(PowerLawWeights, AlphaZeroIsUniform) {
  const auto w = power_law_weights(10, 0.0);
  for (const double x : w) EXPECT_NEAR(x, 0.1, 1e-12);
}

TEST(DiscreteSamplerTest, RespectsZeroWeights) {
  DiscreteSampler s({0.0, 1.0, 0.0, 3.0});
  Rng rng(4);
  int counts[4] = {0, 0, 0, 0};
  for (int i = 0; i < 4000; ++i) ++counts[s.sample(rng)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_EQ(counts[2], 0);
  // Weight-3 index should dominate the weight-1 index roughly 3:1.
  EXPECT_GT(counts[3], counts[1] * 2);
  EXPECT_LT(counts[3], counts[1] * 4);
}

TEST(DiscreteSamplerTest, RejectsBadWeights) {
  EXPECT_THROW(DiscreteSampler({}), std::invalid_argument);
  EXPECT_THROW(DiscreteSampler({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(DiscreteSampler({1.0, -1.0}), std::invalid_argument);
}

TEST(ChungLu, ReachesTargetEdges) {
  const auto w1 = power_law_weights(300, 0.6);
  const auto w2 = power_law_weights(500, 0.6);
  const auto g = chung_lu(w1, w2, 2000, 11);
  EXPECT_EQ(g.n1(), 300);
  EXPECT_EQ(g.n2(), 500);
  EXPECT_EQ(g.edge_count(), 2000);
}

TEST(ChungLu, HeavyTailShowsInDegrees) {
  const auto g = chung_lu(power_law_weights(400, 0.9),
                          power_law_weights(400, 0.9), 3000, 13);
  const auto deg = sparse::row_degrees(g.csr());
  const auto max_deg = *std::max_element(deg.begin(), deg.end());
  const double mean = 3000.0 / 400.0;
  EXPECT_GT(static_cast<double>(max_deg), 4 * mean);  // hub vertices exist
  // Vertex 0 carries the largest weight, so it should be a top hub.
  EXPECT_GT(deg[0], max_deg / 2);
}

TEST(ChungLu, DeterministicBySeed) {
  const auto w = power_law_weights(100, 0.7);
  EXPECT_EQ(chung_lu(w, w, 500, 21), chung_lu(w, w, 500, 21));
}

TEST(ConfigurationModel, MatchesDegreesOnEasyInstances) {
  // Regular-ish degrees with plenty of slack pair up exactly.
  const std::vector<offset_t> d1(20, 3);
  const std::vector<offset_t> d2(30, 2);
  const auto g = configuration_model(d1, d2, 17);
  EXPECT_EQ(g.edge_count(), 60);
  const auto rd = sparse::row_degrees(g.csr());
  for (const offset_t d : rd) EXPECT_EQ(d, 3);
}

TEST(ConfigurationModel, RejectsMismatchedSums) {
  EXPECT_THROW(configuration_model({3}, {1}, 1), std::invalid_argument);
  EXPECT_THROW(configuration_model({5}, {5}, 1),
               std::invalid_argument);  // degree exceeds other side
}

TEST(BlockCommunity, PlantsDenseBlocks) {
  BlockCommunitySpec spec;
  spec.blocks = 3;
  spec.block_rows = 10;
  spec.block_cols = 10;
  spec.p_in = 0.9;
  spec.p_out = 0.0;
  const auto g = block_community(spec, 23);
  EXPECT_EQ(g.n1(), 30);
  EXPECT_EQ(g.n2(), 30);
  // All edges live inside diagonal blocks.
  for (vidx_t u = 0; u < g.n1(); ++u)
    for (const vidx_t v : g.neighbors_of_v1(u))
      EXPECT_EQ(u / 10, v / 10) << "edge crosses blocks";
  // Roughly p_in density per block.
  EXPECT_GT(g.edge_count(), 3 * 100 * 0.7);
}

TEST(BlockCommunity, BackgroundNoiseAppears) {
  BlockCommunitySpec spec;
  spec.blocks = 2;
  spec.block_rows = 20;
  spec.block_cols = 20;
  spec.p_in = 0.0;
  spec.p_out = 0.3;
  const auto g = block_community(spec, 29);
  EXPECT_GT(g.edge_count(), 40 * 40 * 0.2);
}

TEST(KonectPresets, MatchPaperFig9) {
  const auto& presets = konect_presets();
  ASSERT_EQ(presets.size(), 5u);
  EXPECT_EQ(presets[0].name, "arXiv cond-mat");
  EXPECT_EQ(presets[0].n1, 16726);
  EXPECT_EQ(presets[0].n2, 22015);
  EXPECT_EQ(presets[0].edges, 58595);
  EXPECT_EQ(presets[0].paper_butterflies, 70549);
  EXPECT_EQ(presets[4].name, "GitHub");
  EXPECT_EQ(presets[4].edges, 440237);
  EXPECT_EQ(presets[4].paper_butterflies, 50894505);
  // Record Labels and Occupations are the |V1| > |V2| datasets.
  EXPECT_GT(presets[2].n1, presets[2].n2);
  EXPECT_GT(presets[3].n1, presets[3].n2);
  EXPECT_LT(presets[1].n1, presets[1].n2);
}

TEST(KonectPresets, LookupByName) {
  EXPECT_EQ(konect_preset("GitHub").edges, 440237);
  EXPECT_THROW(konect_preset("NoSuchDataset"), std::invalid_argument);
}

TEST(KonectLike, ScalePreservesShape) {
  const auto& preset = konect_preset("Record Labels");
  const auto g = make_konect_like(preset, 0.01, 5);
  // |V1|/|V2| asymmetry is preserved at any scale.
  EXPECT_GT(g.n1(), g.n2());
  EXPECT_NEAR(static_cast<double>(g.n1()), preset.n1 * 0.01, 2);
  EXPECT_NEAR(static_cast<double>(g.n2()), preset.n2 * 0.01, 2);
  EXPECT_NEAR(static_cast<double>(g.edge_count()),
              static_cast<double>(preset.edges) * 0.01,
              static_cast<double>(preset.edges) * 0.01 * 0.05);
  EXPECT_THROW(make_konect_like(preset, 0.0, 1), std::invalid_argument);
  EXPECT_THROW(make_konect_like(preset, 1.5, 1), std::invalid_argument);
}

}  // namespace
}  // namespace bfc::gen
