#include <gtest/gtest.h>

#include "dense/dense_matrix.hpp"
#include "test_helpers.hpp"

namespace bfc::dense {
namespace {

TEST(DenseMatrix, ConstructionAndAccess) {
  DenseMatrix m(2, 3);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m(1, 2), 0);
  m(1, 2) = 7;
  EXPECT_EQ(m.at(1, 2), 7);
}

TEST(DenseMatrix, AtBoundsChecked) {
  DenseMatrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), std::invalid_argument);
  EXPECT_THROW(m.at(0, -1), std::invalid_argument);
  EXPECT_THROW(std::as_const(m).at(0, 2), std::invalid_argument);
}

TEST(DenseMatrix, InitializerListAndEquality) {
  DenseMatrix m = {{1, 2}, {3, 4}};
  EXPECT_EQ(m(0, 1), 2);
  EXPECT_EQ(m(1, 0), 3);
  DenseMatrix same = {{1, 2}, {3, 4}};
  EXPECT_EQ(m, same);
  DenseMatrix diff = {{1, 2}, {3, 5}};
  EXPECT_NE(m, diff);
}

TEST(DenseMatrix, RaggedInitializerThrows) {
  EXPECT_THROW((DenseMatrix{{1, 2}, {3}}), std::invalid_argument);
}

TEST(DenseMatrix, OnesIdentityZeros) {
  EXPECT_EQ(DenseMatrix::ones(2, 2).sum(), 4);
  EXPECT_EQ(DenseMatrix::identity(3).trace(), 3);
  EXPECT_EQ(DenseMatrix::identity(3).sum(), 3);
  EXPECT_EQ(DenseMatrix::zeros(4, 5).sum(), 0);
}

TEST(DenseMatrix, TransposeInvolution) {
  const DenseMatrix m = bfc::testing::random_dense_int(5, 7, -3, 3, 17);
  EXPECT_EQ(m.transpose().transpose(), m);
  EXPECT_EQ(m.transpose()(3, 2), m(2, 3));
}

TEST(DenseMatrix, MultiplyIdentity) {
  const DenseMatrix m = bfc::testing::random_dense_int(4, 4, 0, 5, 23);
  EXPECT_EQ(multiply(m, DenseMatrix::identity(4)), m);
  EXPECT_EQ(multiply(DenseMatrix::identity(4), m), m);
}

TEST(DenseMatrix, MultiplyKnownProduct) {
  const DenseMatrix a = {{1, 2}, {3, 4}};
  const DenseMatrix b = {{5, 6}, {7, 8}};
  const DenseMatrix expected = {{19, 22}, {43, 50}};
  EXPECT_EQ(multiply(a, b), expected);
}

TEST(DenseMatrix, MultiplyDimensionMismatchThrows) {
  EXPECT_THROW(multiply(DenseMatrix(2, 3), DenseMatrix(2, 3)),
               std::invalid_argument);
}

TEST(DenseMatrix, HadamardAndArithmetic) {
  const DenseMatrix a = {{1, 2}, {3, 4}};
  const DenseMatrix b = {{2, 0}, {1, 2}};
  EXPECT_EQ(hadamard(a, b), (DenseMatrix{{2, 0}, {3, 8}}));
  EXPECT_EQ(add(a, b), (DenseMatrix{{3, 2}, {4, 6}}));
  EXPECT_EQ(subtract(a, b), (DenseMatrix{{-1, 2}, {2, 2}}));
  EXPECT_EQ(scale(a, 3), (DenseMatrix{{3, 6}, {9, 12}}));
  EXPECT_THROW(hadamard(a, DenseMatrix(3, 2)), std::invalid_argument);
}

TEST(DenseMatrix, TraceRequiresSquare) {
  EXPECT_THROW(DenseMatrix(2, 3).trace(), std::invalid_argument);
}

TEST(DenseMatrix, DiagVector) {
  const DenseMatrix m = {{1, 9}, {9, 4}};
  const DenseMatrix d = m.diag_vector();
  EXPECT_EQ(d.rows(), 2);
  EXPECT_EQ(d.cols(), 1);
  EXPECT_EQ(d(0, 0), 1);
  EXPECT_EQ(d(1, 0), 4);
}

TEST(DenseMatrix, Slices) {
  const DenseMatrix m = {{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(slice_cols(m, 1, 3), (DenseMatrix{{2, 3}, {5, 6}}));
  EXPECT_EQ(slice_rows(m, 0, 1), (DenseMatrix{{1, 2, 3}}));
  EXPECT_EQ(slice_cols(m, 2, 2).cols(), 0);
  EXPECT_THROW(slice_cols(m, 2, 1), std::invalid_argument);
  EXPECT_THROW(slice_rows(m, 0, 3), std::invalid_argument);
}

// --- Algebraic identities the derivation in §II relies on -----------------

class TraceIdentity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TraceIdentity, HadamardSumEqualsTraceProduct) {
  // Eq. (3): Σ_ij (X∘Y)_ij = Γ(XYᵀ) = Γ(YXᵀ).
  const auto seed = GetParam();
  const DenseMatrix x = bfc::testing::random_dense_int(6, 4, -4, 4, seed);
  const DenseMatrix y = bfc::testing::random_dense_int(6, 4, -4, 4, seed + 1);
  const count_t lhs = hadamard(x, y).sum();
  EXPECT_EQ(lhs, multiply(x, y.transpose()).trace());
  EXPECT_EQ(lhs, multiply(y, x.transpose()).trace());
}

TEST_P(TraceIdentity, TraceIsLinear) {
  const auto seed = GetParam();
  const DenseMatrix x = bfc::testing::random_dense_int(5, 5, -9, 9, seed);
  const DenseMatrix y = bfc::testing::random_dense_int(5, 5, -9, 9, seed + 2);
  EXPECT_EQ(add(x, y).trace(), x.trace() + y.trace());
}

TEST_P(TraceIdentity, TraceInvariantUnderRotation) {
  // Γ(AB) = Γ(BA), the rotation property used throughout §III.
  const auto seed = GetParam();
  const DenseMatrix a = bfc::testing::random_dense_int(4, 6, -3, 3, seed);
  const DenseMatrix b = bfc::testing::random_dense_int(6, 4, -3, 3, seed + 3);
  EXPECT_EQ(multiply(a, b).trace(), multiply(b, a).trace());
}

TEST_P(TraceIdentity, GramMatrixIsSymmetric) {
  const auto seed = GetParam();
  const DenseMatrix a = bfc::testing::random_dense01(7, 5, 0.4, seed);
  const DenseMatrix b = multiply(a, a.transpose());
  EXPECT_EQ(b, b.transpose());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceIdentity,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 100u, 9999u));

}  // namespace
}  // namespace bfc::dense
