#include <gtest/gtest.h>

#include "count/baselines.hpp"
#include "count/local_counts.hpp"
#include "count/parallel_counts.hpp"
#include "count/top_pairs.hpp"
#include "test_helpers.hpp"

namespace bfc::count {
namespace {

using bfc::testing::complete_bipartite;
using bfc::testing::random_graph;
using bfc::testing::single_butterfly;

class ParallelCounts : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParallelCounts, MatchSequentialOnRandomGraphs) {
  const auto g = random_graph(40, 35, 0.2, GetParam());
  for (const int threads : {1, 2, 4}) {
    EXPECT_EQ(wedge_reference_parallel(g, threads), wedge_reference(g));
    EXPECT_EQ(butterflies_per_v1_parallel(g, threads),
              butterflies_per_v1(g));
    EXPECT_EQ(butterflies_per_v2_parallel(g, threads),
              butterflies_per_v2(g));
    EXPECT_EQ(support_per_edge_parallel(g, threads), support_per_edge(g));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelCounts,
                         ::testing::Values(1u, 2u, 3u, 4u));

TEST(ParallelCountsEdge, RejectsBadThreadCount) {
  const auto g = single_butterfly();
  EXPECT_THROW(wedge_reference_parallel(g, 0), std::invalid_argument);
  EXPECT_THROW(butterflies_per_v1_parallel(g, -1), std::invalid_argument);
  EXPECT_THROW(support_per_edge_parallel(g, 0), std::invalid_argument);
}

TEST(ParallelCountsEdge, EmptyGraph) {
  const graph::BipartiteGraph g;
  EXPECT_EQ(wedge_reference_parallel(g, 2), 0);
  EXPECT_TRUE(butterflies_per_v1_parallel(g, 2).empty());
}

TEST(TopPairs, SingleButterfly) {
  const auto g = single_butterfly();
  const auto pairs = top_wedge_pairs_v1(g, 3);
  ASSERT_EQ(pairs.size(), 1u);  // only one connected pair exists
  EXPECT_EQ(pairs[0].a, 0);
  EXPECT_EQ(pairs[0].b, 1);
  EXPECT_EQ(pairs[0].wedges, 2);
  EXPECT_EQ(pairs[0].butterflies(), 1);
}

TEST(TopPairs, KZeroAndNoPairs) {
  EXPECT_TRUE(top_wedge_pairs_v1(single_butterfly(), 0).empty());
  EXPECT_TRUE(top_wedge_pairs_v1(bfc::testing::star(5), 5).empty());
}

TEST(TopPairs, OrderingAndTruncation) {
  // Vertex 0 and 1 share 3 columns; 0 and 2 share 2; 1 and 2 share 2.
  const dense::DenseMatrix d = {{1, 1, 1, 0}, {1, 1, 1, 1}, {0, 1, 1, 0}};
  const graph::BipartiteGraph g(sparse::CsrPattern::from_dense(d));
  const auto all = top_wedge_pairs_v1(g, 10);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].wedges, 3);
  EXPECT_EQ(all[0].a, 0);
  EXPECT_EQ(all[0].b, 1);
  EXPECT_GE(all[1].wedges, all[2].wedges);
  const auto top1 = top_wedge_pairs_v1(g, 1);
  ASSERT_EQ(top1.size(), 1u);
  EXPECT_EQ(top1[0], all[0]);
}

TEST(TopPairs, SumOfButterfliesMatchesTotal) {
  const auto g = random_graph(18, 16, 0.35, 9);
  const auto pairs = top_wedge_pairs_v1(g, 100000);  // all pairs
  count_t total = 0;
  for (const VertexPair& p : pairs) {
    EXPECT_LT(p.a, p.b);
    total += p.butterflies();
  }
  EXPECT_EQ(total, wedge_reference(g));
  // And from the V2 side.
  const auto pairs2 = top_wedge_pairs_v2(g, 100000);
  count_t total2 = 0;
  for (const VertexPair& p : pairs2) total2 += p.butterflies();
  EXPECT_EQ(total2, total);
}

TEST(TopPairs, MaxBiclique) {
  const auto g = complete_bipartite(4, 6);
  const Biclique2 bc = max_biclique_2xk(g);
  EXPECT_EQ(bc.columns.size(), 6u);  // any pair spans all columns
  const Biclique2 none = max_biclique_2xk(bfc::testing::hexagon());
  EXPECT_TRUE(none.columns.empty());
}

}  // namespace
}  // namespace bfc::count
