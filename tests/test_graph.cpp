#include <gtest/gtest.h>

#include <sstream>

#include "graph/bipartite_graph.hpp"
#include "graph/io_binary.hpp"
#include "graph/io_edgelist.hpp"
#include "graph/io_mtx.hpp"
#include "graph/stats.hpp"
#include "test_helpers.hpp"

namespace bfc::graph {
namespace {

TEST(BipartiteGraph, BasicAccessors) {
  const BipartiteGraph g =
      BipartiteGraph::from_edges(3, 2, {{0, 0}, {0, 1}, {2, 1}});
  EXPECT_EQ(g.n1(), 3);
  EXPECT_EQ(g.n2(), 2);
  EXPECT_EQ(g.edge_count(), 3);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
  EXPECT_EQ(g.neighbors_of_v1(0).size(), 2u);
  EXPECT_EQ(g.neighbors_of_v2(1).size(), 2u);
  EXPECT_EQ(g.neighbors_of_v2(1)[0], 0);
  EXPECT_EQ(g.neighbors_of_v2(1)[1], 2);
}

TEST(BipartiteGraph, CscIsTransposeOfCsr) {
  const BipartiteGraph g = bfc::testing::random_graph(10, 7, 0.3, 77);
  EXPECT_EQ(g.csc(), g.csr().transpose());
}

TEST(BipartiteGraph, SwappedSides) {
  const BipartiteGraph g = bfc::testing::random_graph(6, 9, 0.4, 5);
  const BipartiteGraph s = g.swapped_sides();
  EXPECT_EQ(s.n1(), g.n2());
  EXPECT_EQ(s.n2(), g.n1());
  EXPECT_EQ(s.edge_count(), g.edge_count());
  EXPECT_EQ(s.csr(), g.csc());
  EXPECT_EQ(s.swapped_sides(), g);
}

TEST(BipartiteGraph, DuplicateEdgesMerged) {
  const BipartiteGraph g =
      BipartiteGraph::from_edges(2, 2, {{0, 0}, {0, 0}, {1, 1}});
  EXPECT_EQ(g.edge_count(), 2);
}

TEST(EdgelistIo, ParsesKonectFormat) {
  std::istringstream in(
      "% bip comment line\n"
      "# another comment\n"
      "\n"
      "1 1 1 917000000\n"
      "1 2\n"
      "3 2 5\n");
  const BipartiteGraph g = read_edgelist(in);
  EXPECT_EQ(g.n1(), 3);
  EXPECT_EQ(g.n2(), 2);
  EXPECT_EQ(g.edge_count(), 3);
  EXPECT_TRUE(g.has_edge(0, 0));
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(2, 1));
}

TEST(EdgelistIo, ForcedDimensions) {
  std::istringstream in("1 1\n");
  const BipartiteGraph g = read_edgelist(in, 5, 6);
  EXPECT_EQ(g.n1(), 5);
  EXPECT_EQ(g.n2(), 6);
  std::istringstream in2("3 1\n");
  EXPECT_THROW(read_edgelist(in2, 2, 2), std::invalid_argument);
}

TEST(EdgelistIo, RejectsMalformedInput) {
  std::istringstream bad_ids("0 1\n");
  EXPECT_THROW(read_edgelist(bad_ids), std::runtime_error);
  std::istringstream garbage("hello world\n");
  EXPECT_THROW(read_edgelist(garbage), std::runtime_error);
}

TEST(EdgelistIo, RoundTrip) {
  const BipartiteGraph g = bfc::testing::random_graph(8, 5, 0.4, 99);
  std::stringstream buffer;
  write_edgelist(buffer, g);
  const BipartiteGraph back = read_edgelist(buffer, g.n1(), g.n2());
  EXPECT_EQ(back, g);
}

TEST(EdgelistIo, MissingFileThrows) {
  EXPECT_THROW(load_edgelist("/nonexistent/path/graph.txt"),
               std::runtime_error);
}

TEST(MtxIo, ParsesPatternCoordinate) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "% comment\n"
      "3 4 2\n"
      "1 1\n"
      "3 4\n");
  const BipartiteGraph g = read_mtx(in);
  EXPECT_EQ(g.n1(), 3);
  EXPECT_EQ(g.n2(), 4);
  EXPECT_EQ(g.edge_count(), 2);
  EXPECT_TRUE(g.has_edge(0, 0));
  EXPECT_TRUE(g.has_edge(2, 3));
}

TEST(MtxIo, IntegerFieldTreatsNonzeroAsEdge) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate integer general\n"
      "2 2 2\n"
      "1 1 5\n"
      "2 2 0\n");
  const BipartiteGraph g = read_mtx(in);
  EXPECT_EQ(g.edge_count(), 1);  // the explicit zero is dropped
  EXPECT_TRUE(g.has_edge(0, 0));
}

TEST(MtxIo, RejectsBadBanners) {
  std::istringstream no_banner("3 3 0\n");
  EXPECT_THROW(read_mtx(no_banner), std::runtime_error);
  std::istringstream symmetric(
      "%%MatrixMarket matrix coordinate pattern symmetric\n2 2 0\n");
  EXPECT_THROW(read_mtx(symmetric), std::runtime_error);
  std::istringstream array_fmt(
      "%%MatrixMarket matrix array real general\n2 2\n");
  EXPECT_THROW(read_mtx(array_fmt), std::runtime_error);
  std::istringstream out_of_range(
      "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n3 1\n");
  EXPECT_THROW(read_mtx(out_of_range), std::runtime_error);
}

TEST(MtxIo, RoundTrip) {
  const BipartiteGraph g = bfc::testing::random_graph(6, 11, 0.3, 31);
  std::stringstream buffer;
  write_mtx(buffer, g);
  EXPECT_EQ(read_mtx(buffer), g);
}

TEST(BinaryIo, RoundTrip) {
  const BipartiteGraph g = bfc::testing::random_graph(12, 9, 0.25, 55);
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(buffer, g);
  EXPECT_EQ(read_binary(buffer), g);
}

TEST(BinaryIo, BadMagicThrows) {
  std::stringstream buffer;
  buffer << "NOTBFC__garbage";
  EXPECT_THROW(read_binary(buffer), std::runtime_error);
}

TEST(BinaryIo, TruncatedThrows) {
  const BipartiteGraph g = bfc::testing::random_graph(4, 4, 0.5, 1);
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(buffer, g);
  std::string bytes = buffer.str();
  bytes.resize(bytes.size() / 2);
  std::istringstream truncated(bytes, std::ios::binary);
  EXPECT_THROW(read_binary(truncated), std::runtime_error);
}

TEST(Stats, DegreeSummaries) {
  const BipartiteGraph g =
      BipartiteGraph::from_edges(3, 3, {{0, 0}, {0, 1}, {0, 2}, {1, 0}});
  const DegreeSummary d1 = degree_summary_v1(g);
  EXPECT_EQ(d1.min, 0);
  EXPECT_EQ(d1.max, 3);
  EXPECT_EQ(d1.isolated, 1);
  EXPECT_DOUBLE_EQ(d1.mean, 4.0 / 3.0);
  const DegreeSummary d2 = degree_summary_v2(g);
  EXPECT_EQ(d2.max, 2);
  EXPECT_EQ(d2.isolated, 0);
}

TEST(Stats, WedgeCountsMatchDefinition) {
  const BipartiteGraph g = bfc::testing::single_butterfly();
  // K_{2,2}: each side contributes 2 wedges.
  EXPECT_EQ(wedges_v1_endpoints(g), 2);
  EXPECT_EQ(wedges_v2_endpoints(g), 2);
  const BipartiteGraph s = bfc::testing::star(4);  // K_{1,4}
  EXPECT_EQ(wedges_v1_endpoints(s), 0);
  EXPECT_EQ(wedges_v2_endpoints(s), 6);
}

TEST(Stats, CaterpillarsAndClustering) {
  const BipartiteGraph g = bfc::testing::single_butterfly();
  // K_{2,2}: each edge has (2-1)(2-1)=1 caterpillar -> 4 total.
  EXPECT_EQ(caterpillars(g), 4);
  // One butterfly: cc = 4*1/4 = 1 (every caterpillar closes).
  EXPECT_DOUBLE_EQ(clustering_coefficient(g, 1), 1.0);
  const BipartiteGraph h = bfc::testing::hexagon();
  EXPECT_EQ(caterpillars(h), 6);
  EXPECT_DOUBLE_EQ(clustering_coefficient(h, 0), 0.0);
}

TEST(Stats, DensityAndSummary) {
  const BipartiteGraph g = bfc::testing::complete_bipartite(4, 5);
  EXPECT_DOUBLE_EQ(density(g), 1.0);
  const GraphSummary s = summarize(g);
  EXPECT_EQ(s.n1, 4);
  EXPECT_EQ(s.n2, 5);
  EXPECT_EQ(s.edges, 20);
  EXPECT_EQ(s.wedges_v1, 5 * choose2(4));
  EXPECT_EQ(s.wedges_v2, 4 * choose2(5));
  std::ostringstream os;
  os << s;
  EXPECT_NE(os.str().find("|E|=20"), std::string::npos);
}

TEST(Stats, EmptyGraphIsSafe) {
  const BipartiteGraph g;
  EXPECT_DOUBLE_EQ(density(g), 0.0);
  EXPECT_EQ(caterpillars(g), 0);
  EXPECT_EQ(summarize(g).edges, 0);
}

}  // namespace
}  // namespace bfc::graph
