// util/sync.hpp: the annotated wrappers behave like the std primitives
// under every build lane, and the BFC_CHECKED lock-order checker fails
// deterministically on inconsistent acquisition orders while staying silent
// on consistent ones. Each TEST runs in its own process (ctest discovery),
// so the checker's global acquisition-order graph starts clean per test;
// the site names below are test-local on top of that, out of caution.

#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "chk/check.hpp"
#include "chk/lockorder.hpp"
#include "obs/metrics.hpp"
#include "util/sync.hpp"

namespace {

using bfc::CondVar;
using bfc::Mutex;
using bfc::MutexLock;
using bfc::SharedLock;
using bfc::SharedMutex;
using bfc::WriterLock;
namespace lockorder = bfc::chk::lockorder;

TEST(SyncWrappers, MutexExcludesConcurrentIncrements) {
  Mutex mu{"test.sync.counter"};
  int counter = 0;  // locals cannot carry guarded_by; discipline by hand
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        const MutexLock lock(mu);
        ++counter;
      }
    });
  for (std::thread& t : threads) t.join();
  const MutexLock lock(mu);
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(SyncWrappers, TryLockReflectsContention) {
  Mutex mu{"test.sync.trylock"};
  ASSERT_TRUE(mu.try_lock());
  // A second owner must be refused while the lock is held (probe from
  // another thread: the wrapper forwards to std::mutex, where a same-thread
  // re-try would be undefined).
  bool second = true;
  std::thread probe([&] {
    second = mu.try_lock();
    if (second) mu.unlock();
  });
  probe.join();
  EXPECT_FALSE(second);
  mu.unlock();
  ASSERT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(SyncWrappers, MutexLockRelockRoundTrip) {
  Mutex mu{"test.sync.relock"};
  int value = 0;
  MutexLock lock(mu);
  value = 1;
  lock.unlock();
  // While dropped, another thread can take the mutex.
  std::thread other([&] {
    const MutexLock inner(mu);
    ++value;
  });
  other.join();
  lock.lock();
  EXPECT_EQ(value, 2);
}

TEST(SyncWrappers, SharedMutexWriterAndReadersAgree) {
  SharedMutex mu{"test.sync.rw"};
  int value = 0;
  constexpr int kWrites = 500;
  std::thread writer([&] {
    for (int i = 0; i < kWrites; ++i) {
      const WriterLock lock(mu);
      ++value;
    }
  });
  int last_seen = 0;
  std::thread reader([&] {
    // Monotonic reads: a reader can never observe the counter going back.
    for (int i = 0; i < kWrites; ++i) {
      const SharedLock lock(mu);
      EXPECT_GE(value, last_seen);
      last_seen = value;
    }
  });
  writer.join();
  reader.join();
  const SharedLock lock(mu);
  EXPECT_EQ(value, kWrites);
}

TEST(SyncWrappers, SharedTryLockReflectsWriter) {
  SharedMutex mu{"test.sync.rwtry"};
  ASSERT_TRUE(mu.try_lock_shared());
  // Shared holders coexist...
  bool reader_ok = false;
  std::thread reader([&] {
    reader_ok = mu.try_lock_shared();
    if (reader_ok) mu.unlock_shared();
  });
  reader.join();
  EXPECT_TRUE(reader_ok);
  // ...but a writer is refused while any reader holds on.
  bool writer_ok = true;
  std::thread writer([&] {
    writer_ok = mu.try_lock();
    if (writer_ok) mu.unlock();
  });
  writer.join();
  EXPECT_FALSE(writer_ok);
  mu.unlock_shared();
}

TEST(SyncWrappers, CondVarWakesWaiterOnPredicate) {
  Mutex mu{"test.sync.cv"};
  CondVar cv;
  bool ready = false;
  int observed = 0;
  std::thread waiter([&] {
    MutexLock lock(mu);
    while (!ready) cv.wait(lock);
    observed = 1;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  {
    const MutexLock lock(mu);
    ready = true;
  }
  cv.notify_one();
  waiter.join();
  EXPECT_EQ(observed, 1);
}

// ---------------------------------------------------------------------------
// Lock-order checker. Only meaningful with -DBFC_CHECKED=ON; the unchecked
// stubs make every scenario silent, which the first test asserts too.
// ---------------------------------------------------------------------------

TEST(LockOrder, ConsistentOrderStaysSilent) {
  Mutex a{"test.lo.consistent.A"};
  Mutex b{"test.lo.consistent.B"};
  // A-then-B on several threads, never the reverse: no violation, ever.
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        const MutexLock la(a);
        const MutexLock lb(b);
      }
    });
  for (std::thread& t : threads) t.join();
}

TEST(LockOrder, InvertedAcquisitionFails) {
  if constexpr (!bfc::chk::kCheckedEnabled)
    GTEST_SKIP() << "lock-order checker compiled out (BFC_CHECKED=OFF)";
  Mutex a{"test.lo.invert.A"};
  Mutex b{"test.lo.invert.B"};
  {
    const MutexLock la(a);
    const MutexLock lb(b);  // records A -> B
  }
  const MutexLock lb(b);
  try {
    const MutexLock la(a);  // B -> A: the reverse edge already exists
    FAIL() << "inverted acquisition was not detected";
  } catch (const bfc::chk::CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("LockOrderViolation"), std::string::npos) << what;
    // Both conflicting sites are named in the report.
    EXPECT_NE(what.find("test.lo.invert.A"), std::string::npos) << what;
    EXPECT_NE(what.find("test.lo.invert.B"), std::string::npos) << what;
  }
}

TEST(LockOrder, InversionAcrossThreadsFails) {
  if constexpr (!bfc::chk::kCheckedEnabled)
    GTEST_SKIP() << "lock-order checker compiled out (BFC_CHECKED=OFF)";
  Mutex a{"test.lo.threads.A"};
  Mutex b{"test.lo.threads.B"};
  {
    const MutexLock la(a);
    const MutexLock lb(b);  // this thread records A -> B
  }
  // The opposite order on a different thread is just as much a potential
  // deadlock — the checker flags it even though no actual deadlock occurs.
  bool detected = false;
  std::thread other([&] {
    const MutexLock lb(b);
    try {
      const MutexLock la(a);
    } catch (const bfc::chk::CheckError&) {
      detected = true;
    }
  });
  other.join();
  EXPECT_TRUE(detected);
}

TEST(LockOrder, SharedAcquisitionsAreTracked) {
  if constexpr (!bfc::chk::kCheckedEnabled)
    GTEST_SKIP() << "lock-order checker compiled out (BFC_CHECKED=OFF)";
  SharedMutex a{"test.lo.shared.A"};
  Mutex b{"test.lo.shared.B"};
  {
    const SharedLock la(a);
    const MutexLock lb(b);  // records A -> B (shared tracked like exclusive)
  }
  const MutexLock lb(b);
  EXPECT_THROW({ const SharedLock la(a); }, bfc::chk::CheckError);
}

TEST(LockOrder, TryLockDoesNotCreateEdges) {
  if constexpr (!bfc::chk::kCheckedEnabled)
    GTEST_SKIP() << "lock-order checker compiled out (BFC_CHECKED=OFF)";
  Mutex a{"test.lo.try.A"};
  Mutex b{"test.lo.try.B"};
  {
    const MutexLock la(a);
    ASSERT_TRUE(b.try_lock());  // non-blocking: records no A -> B edge
    b.unlock();
  }
  // With no A -> B edge on file, the blocking B -> A order is the first
  // order ever observed — silent.
  const MutexLock lb(b);
  const MutexLock la(a);
}

TEST(LockOrder, StatsAndMetricsCountAcquisitions) {
  if constexpr (!bfc::chk::kCheckedEnabled)
    GTEST_SKIP() << "lock-order checker compiled out (BFC_CHECKED=OFF)";
  const lockorder::Stats before = lockorder::stats();
  Mutex a{"test.lo.stats.A"};
  Mutex b{"test.lo.stats.B"};
  {
    const MutexLock la(a);
    const MutexLock lb(b);
  }
  const lockorder::Stats after = lockorder::stats();
  EXPECT_GE(after.acquisitions, before.acquisitions + 2);
  EXPECT_GE(after.edges, before.edges + 1);
  if constexpr (bfc::obs::kMetricsEnabled) {
    std::int64_t acq = 0;
    std::int64_t edges = 0;
    for (const auto& m : bfc::obs::Registry::instance().snapshot()) {
      if (m.name == "chk.lock_acquisitions") acq = m.value;
      if (m.name == "chk.lock_order_edges") edges = m.value;
    }
    EXPECT_GE(acq, 2);
    EXPECT_GE(edges, 1);
  }
}

TEST(LockOrder, ResetClearsTheOrderGraph) {
  if constexpr (!bfc::chk::kCheckedEnabled)
    GTEST_SKIP() << "lock-order checker compiled out (BFC_CHECKED=OFF)";
  Mutex a{"test.lo.reset.A"};
  Mutex b{"test.lo.reset.B"};
  {
    const MutexLock la(a);
    const MutexLock lb(b);  // A -> B recorded
  }
  lockorder::reset();
  // The inversion that would have thrown is now the first observation.
  const MutexLock lb(b);
  const MutexLock la(a);
}

}  // namespace
