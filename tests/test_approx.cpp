// Tests for the sampling estimators (count/approx.hpp). Randomised
// estimators are pinned by seed, checked for exactness on uniform
// structures (where every sample takes the same value, so any sample count
// is exact), and checked for statistical accuracy on random graphs.
#include <gtest/gtest.h>

#include <cmath>

#include "count/approx.hpp"
#include "count/baselines.hpp"
#include "test_helpers.hpp"

namespace bfc::count {
namespace {

using bfc::testing::complete_bipartite;
using bfc::testing::random_graph;
using bfc::testing::star;

TEST(Approx, EmptyGraphsGiveZero) {
  const graph::BipartiteGraph empty;
  for (const auto& r :
       {approx_vertex_sampling(empty), approx_edge_sampling(empty),
        approx_wedge_sampling(empty)}) {
    EXPECT_DOUBLE_EQ(r.estimate, 0.0);
    EXPECT_EQ(r.samples, 0);
  }
  // Edges but no wedges: wedge sampling returns zero gracefully.
  const auto g = graph::BipartiteGraph::from_edges(2, 2, {{0, 0}, {1, 1}});
  EXPECT_DOUBLE_EQ(approx_wedge_sampling(g).estimate, 0.0);
}

TEST(Approx, RejectsBadSampleCount) {
  ApproxOptions o;
  o.samples = 0;
  EXPECT_THROW(approx_vertex_sampling(complete_bipartite(2, 2), o),
               std::invalid_argument);
}

TEST(Approx, ExactOnVertexTransitiveGraphs) {
  // On K_{m,n} every vertex/edge/wedge sample takes the same value, so the
  // estimate is exact with zero standard error regardless of sample count.
  for (const auto& [m, n] : {std::pair{4, 4}, {3, 6}, {5, 2}}) {
    const auto g = complete_bipartite(m, n);
    const double exact = static_cast<double>(choose2(m) * choose2(n));
    ApproxOptions o;
    o.samples = 16;
    const ApproxResult rv = approx_vertex_sampling(g, o);
    EXPECT_DOUBLE_EQ(rv.estimate, exact);
    EXPECT_DOUBLE_EQ(rv.standard_error, 0.0);
    const ApproxResult re = approx_edge_sampling(g, o);
    EXPECT_DOUBLE_EQ(re.estimate, exact);
    EXPECT_DOUBLE_EQ(re.standard_error, 0.0);
    const ApproxResult rw = approx_wedge_sampling(g, o);
    EXPECT_DOUBLE_EQ(rw.estimate, exact);
    EXPECT_DOUBLE_EQ(rw.standard_error, 0.0);
  }
}

TEST(Approx, ZeroButterflyGraphsEstimateZero) {
  const auto s = star(8);
  ApproxOptions o;
  o.samples = 32;
  EXPECT_DOUBLE_EQ(approx_vertex_sampling(s, o).estimate, 0.0);
  EXPECT_DOUBLE_EQ(approx_edge_sampling(s, o).estimate, 0.0);
  // Star has wedges from the V2 side only; from V1 endpoints there are
  // C(8,2) wedges through the hub... the hub is in V1, so wedges with V1
  // endpoints need a V2 wedge point of degree >= 2: none.
  EXPECT_DOUBLE_EQ(approx_wedge_sampling(s, o).estimate, 0.0);
}

class ApproxAccuracy : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ApproxAccuracy, EstimatorsWithinFiveStandardErrors) {
  const auto seed = GetParam();
  const auto g = random_graph(60, 50, 0.15, seed);
  const auto exact = static_cast<double>(wedge_reference(g));
  ApproxOptions o;
  o.samples = 4000;
  o.seed = seed * 7 + 1;

  for (const ApproxResult& r :
       {approx_vertex_sampling(g, o), approx_edge_sampling(g, o),
        approx_wedge_sampling(g, o)}) {
    ASSERT_EQ(r.samples, o.samples);
    const double tolerance =
        5.0 * r.standard_error + 1e-9 + 0.02 * exact;  // generous but tight
    EXPECT_NEAR(r.estimate, exact, tolerance);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApproxAccuracy,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(Approx, DeterministicBySeed) {
  const auto g = random_graph(40, 40, 0.2, 9);
  ApproxOptions o;
  o.samples = 100;
  o.seed = 1234;
  const ApproxResult a = approx_edge_sampling(g, o);
  const ApproxResult b = approx_edge_sampling(g, o);
  EXPECT_DOUBLE_EQ(a.estimate, b.estimate);
  o.seed = 4321;
  const ApproxResult c = approx_edge_sampling(g, o);
  // Different seed, (almost surely) different estimate on a non-uniform graph.
  EXPECT_NE(a.estimate, c.estimate);
}

TEST(Approx, MoreSamplesShrinkStandardError) {
  const auto g = random_graph(50, 50, 0.2, 10);
  ApproxOptions small;
  small.samples = 200;
  ApproxOptions large;
  large.samples = 20000;
  const double se_small = approx_wedge_sampling(g, small).standard_error;
  const double se_large = approx_wedge_sampling(g, large).standard_error;
  EXPECT_LT(se_large, se_small);
}

}  // namespace
}  // namespace bfc::count
