// The core correctness matrix: every invariant-derived algorithm, in every
// engine / update-form / storage / threading configuration, must equal the
// literal dense specification of Eq. (7) on randomized instances of varied
// shape and density, plus hand-checkable closed forms.
#include <gtest/gtest.h>

#include "dense/spec.hpp"
#include "la/count.hpp"
#include "test_helpers.hpp"

namespace bfc::la {
namespace {

using bfc::testing::complete_bipartite;
using bfc::testing::hexagon;
using bfc::testing::random_graph;
using bfc::testing::single_butterfly;
using bfc::testing::star;

CountOptions opts(Engine e, CountOptions::Update u, int threads = 1,
                  Storage s = Storage::kMatched) {
  CountOptions o;
  o.engine = e;
  o.update = u;
  o.threads = threads;
  o.storage = s;
  return o;
}

TEST(LaCount, SingleButterflyAllInvariants) {
  const auto g = single_butterfly();
  for (const Invariant inv : all_invariants())
    EXPECT_EQ(count_butterflies(g, inv), 1) << name(inv);
}

TEST(LaCount, HexagonAllInvariants) {
  const auto g = hexagon();
  for (const Invariant inv : all_invariants())
    EXPECT_EQ(count_butterflies(g, inv), 0) << name(inv);
}

TEST(LaCount, CompleteBipartiteClosedForm) {
  const auto g = complete_bipartite(6, 4);
  const count_t expected = choose2(6) * choose2(4);
  for (const Invariant inv : all_invariants())
    EXPECT_EQ(count_butterflies(g, inv), expected) << name(inv);
}

TEST(LaCount, DegenerateShapes) {
  for (const Invariant inv : all_invariants()) {
    EXPECT_EQ(count_butterflies(graph::BipartiteGraph{}, inv), 0);
    EXPECT_EQ(count_butterflies(star(9), inv), 0) << name(inv);
    EXPECT_EQ(count_butterflies(star(9).swapped_sides(), inv), 0);
    EXPECT_EQ(
        count_butterflies(graph::BipartiteGraph::from_edges(7, 3, {}), inv),
        0);
  }
}

TEST(LaCount, DefaultConvenienceOverload) {
  const auto g = random_graph(20, 11, 0.3, 321);
  EXPECT_EQ(count_butterflies(g),
            dense::butterflies_spec(g.csr().to_dense()));
}

TEST(LaCount, InvalidOptionsRejected) {
  const auto g = single_butterfly();
  CountOptions bad;
  bad.threads = 0;
  EXPECT_THROW(count_butterflies(g, Invariant::kInv1, bad),
               std::invalid_argument);
  CountOptions mismatched_parallel;
  mismatched_parallel.storage = Storage::kMismatched;
  mismatched_parallel.threads = 2;
  EXPECT_THROW(count_butterflies(g, Invariant::kInv1, mismatched_parallel),
               std::invalid_argument);
  CountOptions mismatched_wedge;
  mismatched_wedge.storage = Storage::kMismatched;
  mismatched_wedge.engine = Engine::kWedge;
  EXPECT_THROW(count_butterflies(g, Invariant::kInv1, mismatched_wedge),
               std::invalid_argument);
}

struct LaCase {
  vidx_t m, n;
  double p;
  std::uint64_t seed;
};

class LaAgreement : public ::testing::TestWithParam<LaCase> {
 protected:
  void SetUp() override {
    const auto& c = GetParam();
    g_ = random_graph(c.m, c.n, c.p, c.seed);
    oracle_ = dense::butterflies_spec(g_.csr().to_dense());
  }
  graph::BipartiteGraph g_;
  count_t oracle_ = 0;
};

TEST_P(LaAgreement, UnblockedSequentialAllInvariantsAllForms) {
  for (const Invariant inv : all_invariants()) {
    for (const auto form :
         {CountOptions::Update::kAuto, CountOptions::Update::kFused,
          CountOptions::Update::kTwoTerm}) {
      EXPECT_EQ(count_butterflies(g_, inv, opts(Engine::kUnblocked, form)),
                oracle_)
          << name(inv);
    }
  }
}

TEST_P(LaAgreement, WedgeEngineAllInvariants) {
  for (const Invariant inv : all_invariants()) {
    EXPECT_EQ(count_butterflies(
                  g_, inv, opts(Engine::kWedge, CountOptions::Update::kAuto)),
              oracle_)
        << name(inv);
  }
}

TEST_P(LaAgreement, ParallelMatchesSequential) {
  for (const Invariant inv : all_invariants()) {
    EXPECT_EQ(count_butterflies(g_, inv,
                                opts(Engine::kUnblocked,
                                     CountOptions::Update::kAuto, 4)),
              oracle_)
        << name(inv) << " unblocked parallel";
    EXPECT_EQ(
        count_butterflies(
            g_, inv, opts(Engine::kWedge, CountOptions::Update::kAuto, 4)),
        oracle_)
        << name(inv) << " wedge parallel";
  }
}

TEST_P(LaAgreement, MismatchedStorageStillCorrect) {
  for (const Invariant inv : all_invariants()) {
    EXPECT_EQ(count_butterflies(g_, inv,
                                opts(Engine::kUnblocked,
                                     CountOptions::Update::kAuto, 1,
                                     Storage::kMismatched)),
              oracle_)
        << name(inv);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LaAgreement,
    ::testing::Values(LaCase{6, 6, 0.5, 1}, LaCase{10, 5, 0.4, 2},
                      LaCase{5, 10, 0.6, 3}, LaCase{12, 12, 0.3, 4},
                      LaCase{16, 7, 0.25, 5}, LaCase{7, 16, 0.7, 6},
                      LaCase{14, 14, 0.9, 7}, LaCase{20, 20, 0.12, 8},
                      LaCase{1, 9, 0.9, 9}, LaCase{9, 1, 0.9, 10},
                      LaCase{2, 2, 1.0, 11}, LaCase{11, 11, 1.0, 12},
                      LaCase{25, 13, 0.2, 13}, LaCase{13, 25, 0.2, 14}));

TEST(LaCount, LargerSparseConsistencyAcrossConfigurations) {
  // Too large for the dense oracle; all configurations must agree with each
  // other instead.
  const auto g = random_graph(150, 110, 0.04, 2024);
  const count_t ref = count_butterflies(
      g, Invariant::kInv1, opts(Engine::kWedge, CountOptions::Update::kAuto));
  for (const Invariant inv : all_invariants()) {
    EXPECT_EQ(count_butterflies(
                  g, inv, opts(Engine::kUnblocked, CountOptions::Update::kAuto)),
              ref)
        << name(inv);
    EXPECT_EQ(count_butterflies(
                  g, inv, opts(Engine::kWedge, CountOptions::Update::kAuto, 3)),
              ref)
        << name(inv);
  }
}

TEST(LaCount, SwappedGraphSwapsFamilies) {
  // Counting with the column family on g equals counting with the row
  // family on the swapped graph (A vs Aᵀ symmetry).
  const auto g = random_graph(18, 9, 0.35, 99);
  const auto s = g.swapped_sides();
  EXPECT_EQ(count_butterflies(g, Invariant::kInv1),
            count_butterflies(s, Invariant::kInv5));
  EXPECT_EQ(count_butterflies(g, Invariant::kInv2),
            count_butterflies(s, Invariant::kInv6));
  EXPECT_EQ(count_butterflies(g, Invariant::kInv3),
            count_butterflies(s, Invariant::kInv7));
  EXPECT_EQ(count_butterflies(g, Invariant::kInv4),
            count_butterflies(s, Invariant::kInv8));
}

}  // namespace
}  // namespace bfc::la
