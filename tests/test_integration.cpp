// Cross-module integration sweeps: generated graphs (not dense-backed test
// fixtures) flowing through I/O round-trips, reordering, every counting
// engine, peeling, and the dynamic counter — the paths a downstream user
// actually composes.
#include <gtest/gtest.h>

#include <sstream>

#include "count/baselines.hpp"
#include "count/bounded_memory.hpp"
#include "count/dynamic.hpp"
#include "count/enumerate.hpp"
#include "gen/generators.hpp"
#include "gen/konect_like.hpp"
#include "gb/butterflies.hpp"
#include "graph/io_binary.hpp"
#include "graph/io_edgelist.hpp"
#include "graph/io_mtx.hpp"
#include "graph/reorder.hpp"
#include "la/count.hpp"
#include "peel/decompose.hpp"
#include "peel/peeling.hpp"
#include "sparse/ops.hpp"

namespace bfc {
namespace {

struct GenCase {
  const char* label;
  graph::BipartiteGraph graph;
};

std::vector<GenCase> generated_graphs() {
  std::vector<GenCase> cases;
  cases.push_back({"erdos-renyi", gen::erdos_renyi(80, 60, 0.08, 1)});
  cases.push_back({"erdos-renyi-m", gen::erdos_renyi_m(50, 90, 700, 2)});
  cases.push_back(
      {"chung-lu", gen::chung_lu(gen::power_law_weights(70, 0.8),
                                 gen::power_law_weights(70, 0.8), 600, 3)});
  cases.push_back({"preferential", gen::preferential_attachment(80, 50, 4, 4)});
  gen::BlockCommunitySpec spec;
  spec.blocks = 3;
  spec.block_rows = 15;
  spec.block_cols = 15;
  spec.extra_rows = 10;
  spec.extra_cols = 10;
  spec.p_in = 0.4;
  spec.p_out = 0.01;
  cases.push_back({"block-community", gen::block_community(spec, 5)});
  cases.push_back({"konect-like",
                   gen::make_konect_like(gen::konect_preset("Producers"),
                                         0.004, 6)});
  return cases;
}

TEST(Integration, AllEnginesAgreeOnGeneratedGraphs) {
  for (const auto& [label, g] : generated_graphs()) {
    const count_t reference = count::wedge_reference(g);
    EXPECT_EQ(count::vertex_priority(g), reference) << label;
    EXPECT_EQ(gb::butterflies_spec(g), reference) << label;
    EXPECT_EQ(count::count_bounded_memory(g, 1024).butterflies, reference)
        << label;
    for (const la::Invariant inv : la::all_invariants()) {
      la::CountOptions unblocked;
      EXPECT_EQ(la::count_butterflies(g, inv, unblocked), reference)
          << label << " " << la::name(inv);
      la::CountOptions blocked;
      blocked.engine = la::Engine::kBlocked;
      blocked.block_size = 16;
      EXPECT_EQ(la::count_butterflies(g, inv, blocked), reference)
          << label << " " << la::name(inv);
      la::CountOptions wedge_par;
      wedge_par.engine = la::Engine::kWedge;
      wedge_par.threads = 3;
      EXPECT_EQ(la::count_butterflies(g, inv, wedge_par), reference)
          << label << " " << la::name(inv);
    }
  }
}

TEST(Integration, IoRoundTripsPreserveCounts) {
  for (const auto& [label, g] : generated_graphs()) {
    const count_t reference = count::wedge_reference(g);

    std::stringstream edgelist;
    graph::write_edgelist(edgelist, g);
    EXPECT_EQ(count::wedge_reference(
                  graph::read_edgelist(edgelist, g.n1(), g.n2())),
              reference)
        << label;

    std::stringstream mtx;
    graph::write_mtx(mtx, g);
    EXPECT_EQ(count::wedge_reference(graph::read_mtx(mtx)), reference)
        << label;

    std::stringstream binary(std::ios::in | std::ios::out | std::ios::binary);
    graph::write_binary(binary, g);
    EXPECT_EQ(graph::read_binary(binary), g) << label;
  }
}

TEST(Integration, ReorderingInvariance) {
  for (const auto& [label, g] : generated_graphs()) {
    const count_t reference = count::wedge_reference(g);
    for (const graph::Order order :
         {graph::Order::kDegreeAscending, graph::Order::kDegreeDescending,
          graph::Order::kRandom}) {
      const graph::Relabeling r = graph::reorder(g, order, 7);
      EXPECT_EQ(la::count_butterflies(r.graph), reference) << label;
    }
  }
}

TEST(Integration, PeelingPipelineOnGeneratedGraphs) {
  for (const auto& [label, g] : generated_graphs()) {
    // Tip: mask iteration == decomposition threshold at a couple of k.
    const peel::TipDecomposition tips = peel::tip_decomposition(g);
    for (const count_t k : {1, 3}) {
      const peel::TipPeelResult direct = peel::k_tip(g, k);
      EXPECT_EQ(peel::tip_subgraph(g, tips, k, peel::Side::kV1),
                direct.subgraph)
          << label << " k=" << k;
      const peel::TipPeelResult lookahead =
          peel::k_tip(g, k, peel::Side::kV1, peel::TipAlgorithm::kLookahead);
      EXPECT_EQ(lookahead.subgraph, direct.subgraph) << label;
    }
    // Wing at k=2.
    const peel::WingDecomposition wings = peel::wing_decomposition(g);
    EXPECT_EQ(peel::wing_subgraph(g, wings, 2), peel::k_wing(g, 2).subgraph)
        << label;
  }
}

TEST(Integration, DynamicCounterReplaysGeneratedGraph) {
  const auto g = gen::erdos_renyi(30, 30, 0.15, 9);
  count::DynamicButterflyCounter dyn(g.n1(), g.n2());
  for (const auto& [u, v] : sparse::edges(g.csr())) dyn.insert(u, v);
  EXPECT_EQ(dyn.butterflies(), count::wedge_reference(g));
  // Tear it all down; count must return to zero.
  for (const auto& [u, v] : sparse::edges(g.csr())) dyn.remove(u, v);
  EXPECT_EQ(dyn.butterflies(), 0);
  EXPECT_EQ(dyn.edge_count(), 0);
}

TEST(Integration, EnumerationAgreesOnGeneratedGraphs) {
  for (const auto& [label, g] : generated_graphs()) {
    const count_t reference = count::wedge_reference(g);
    if (reference > (count_t{1} << 18)) continue;  // keep runtime bounded
    count_t visited = 0;
    count::for_each_butterfly(g, [&](const count::Butterfly&) {
      ++visited;
      return true;
    });
    EXPECT_EQ(visited, reference) << label;
  }
}

}  // namespace
}  // namespace bfc
