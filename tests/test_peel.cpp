#include <gtest/gtest.h>

#include "count/local_counts.hpp"
#include "gen/generators.hpp"
#include "peel/decompose.hpp"
#include "peel/peeling.hpp"
#include "test_helpers.hpp"

namespace bfc::peel {
namespace {

using bfc::testing::complete_bipartite;
using bfc::testing::random_graph;
using bfc::testing::single_butterfly;

TEST(KTip, KZeroKeepsEverything) {
  const auto g = random_graph(10, 10, 0.3, 1);
  const TipPeelResult r = k_tip(g, 0);
  EXPECT_EQ(r.removed_vertices, 0);
  EXPECT_EQ(r.subgraph, g);
}

TEST(KTip, SingleButterflySurvivesK1) {
  const auto g = single_butterfly();
  const TipPeelResult r = k_tip(g, 1);
  EXPECT_EQ(r.removed_vertices, 0);
  EXPECT_EQ(r.subgraph.edge_count(), 4);
  const TipPeelResult r2 = k_tip(g, 2);
  EXPECT_EQ(r2.removed_vertices, 2);
  EXPECT_EQ(r2.subgraph.edge_count(), 0);
}

TEST(KTip, CompleteBipartiteThresholds) {
  // In K_{4,4} every V1 vertex sits in C(3,1)·... = 3·C(4,2) = 18
  // butterflies: per vertex u, pairs (other row, column pair) = 3·6.
  const auto g = complete_bipartite(4, 4);
  const auto per_vertex = count::butterflies_per_v1(g);
  for (const count_t b : per_vertex) EXPECT_EQ(b, 18);
  EXPECT_EQ(k_tip(g, 18).removed_vertices, 0);
  EXPECT_EQ(k_tip(g, 19).removed_vertices, 4);  // all-or-nothing
}

TEST(KTip, EveryKeptVertexMeetsThreshold) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    const auto g = random_graph(20, 16, 0.25, seed);
    for (const count_t k : {1, 2, 5}) {
      const TipPeelResult r = k_tip(g, k);
      const auto b = count::butterflies_per_v1(r.subgraph);
      for (std::size_t u = 0; u < r.kept.size(); ++u) {
        if (r.kept[u]) EXPECT_GE(b[u], k) << "vertex " << u << " k=" << k;
      }
      // Peeled vertices have no remaining edges.
      for (vidx_t u = 0; u < r.subgraph.n1(); ++u)
        if (!r.kept[static_cast<std::size_t>(u)])
          EXPECT_TRUE(r.subgraph.neighbors_of_v1(u).empty());
    }
  }
}

TEST(KTip, MonotoneInK) {
  const auto g = random_graph(18, 18, 0.3, 9);
  offset_t prev_edges = g.edge_count() + 1;
  for (const count_t k : {0, 1, 2, 4, 8, 16}) {
    const TipPeelResult r = k_tip(g, k);
    EXPECT_LE(r.subgraph.edge_count(), prev_edges);
    prev_edges = r.subgraph.edge_count();
  }
}

TEST(KTip, V2SideMatchesSwappedV1) {
  const auto g = random_graph(14, 10, 0.35, 21);
  const TipPeelResult v2 = k_tip(g, 2, Side::kV2);
  const TipPeelResult swapped = k_tip(g.swapped_sides(), 2, Side::kV1);
  EXPECT_EQ(v2.subgraph.csr(), swapped.subgraph.csr().transpose());
  EXPECT_EQ(v2.removed_vertices, swapped.removed_vertices);
}

TEST(KTip, RejectsNegativeK) {
  EXPECT_THROW(k_tip(single_butterfly(), -1), std::invalid_argument);
}

TEST(KWing, KZeroKeepsEverything) {
  const auto g = random_graph(10, 10, 0.3, 2);
  const WingPeelResult r = k_wing(g, 0);
  EXPECT_EQ(r.removed_edges, 0);
  EXPECT_EQ(r.subgraph, g);
}

TEST(KWing, SingleButterflyThresholds) {
  const auto g = single_butterfly();
  EXPECT_EQ(k_wing(g, 1).removed_edges, 0);
  EXPECT_EQ(k_wing(g, 2).subgraph.edge_count(), 0);
}

TEST(KWing, EveryKeptEdgeMeetsThreshold) {
  for (const std::uint64_t seed : {5u, 6u, 7u}) {
    const auto g = random_graph(16, 16, 0.3, seed);
    for (const count_t k : {1, 2, 4}) {
      const WingPeelResult r = k_wing(g, k);
      if (r.subgraph.edge_count() == 0) continue;
      for (const count_t s : count::support_per_edge(r.subgraph))
        EXPECT_GE(s, k) << "k=" << k;
    }
  }
}

TEST(KWing, KeptEdgeMaskConsistent) {
  const auto g = random_graph(12, 12, 0.4, 8);
  const WingPeelResult r = k_wing(g, 2);
  offset_t kept = 0;
  for (const std::uint8_t b : r.kept_edges) kept += b;
  EXPECT_EQ(kept, r.subgraph.edge_count());
  EXPECT_EQ(static_cast<offset_t>(r.kept_edges.size()) - kept,
            r.removed_edges);
}

TEST(KWing, WingSubgraphOfCompleteBipartite) {
  // In K_{3,3} every edge lies in (3-1)·(3-1) = 4 butterflies.
  const auto g = complete_bipartite(3, 3);
  EXPECT_EQ(k_wing(g, 4).removed_edges, 0);
  EXPECT_EQ(k_wing(g, 5).subgraph.edge_count(), 0);
}

TEST(TipDecompositionTest, MatchesKTipForEveryK) {
  for (const std::uint64_t seed : {3u, 14u}) {
    const auto g = random_graph(15, 12, 0.35, seed);
    const TipDecomposition d = tip_decomposition(g, Side::kV1);
    for (count_t k = 0; k <= d.max_tip + 1; ++k) {
      const TipPeelResult direct = k_tip(g, k);
      const graph::BipartiteGraph via_numbers =
          tip_subgraph(g, d, k, Side::kV1);
      EXPECT_EQ(via_numbers, direct.subgraph) << "k=" << k;
    }
  }
}

TEST(TipDecompositionTest, NumbersBoundedByVertexButterflies) {
  const auto g = random_graph(14, 14, 0.4, 6);
  const TipDecomposition d = tip_decomposition(g, Side::kV1);
  const auto b = count::butterflies_per_v1(g);
  for (std::size_t u = 0; u < d.tip_number.size(); ++u)
    EXPECT_LE(d.tip_number[u], b[u]);  // θ(u) ≤ initial butterfly count
}

TEST(TipDecompositionTest, CompleteBipartiteUniform) {
  const auto g = complete_bipartite(4, 4);
  const TipDecomposition d = tip_decomposition(g, Side::kV1);
  EXPECT_EQ(d.max_tip, 18);
  for (const count_t t : d.tip_number) EXPECT_EQ(t, 18);
}

TEST(WingDecompositionTest, MatchesKWingForEveryK) {
  for (const std::uint64_t seed : {4u, 15u}) {
    const auto g = random_graph(12, 12, 0.4, seed);
    const WingDecomposition d = wing_decomposition(g);
    for (count_t k = 0; k <= d.max_wing + 1; ++k) {
      const WingPeelResult direct = k_wing(g, k);
      EXPECT_EQ(wing_subgraph(g, d, k), direct.subgraph) << "k=" << k;
    }
  }
}

TEST(WingDecompositionTest, CompleteBipartiteUniform) {
  const auto g = complete_bipartite(3, 4);
  // Every edge of K_{3,4} lies in (3-1)·(4-1) = 6 butterflies.
  const WingDecomposition d = wing_decomposition(g);
  EXPECT_EQ(d.max_wing, 6);
  for (const count_t w : d.wing_number) EXPECT_EQ(w, 6);
}

TEST(Peeling, RecoversPlantedCommunities) {
  // Dense planted blocks survive peeling at a threshold that removes the
  // background noise.
  gen::BlockCommunitySpec spec;
  spec.blocks = 2;
  spec.block_rows = 12;
  spec.block_cols = 12;
  spec.extra_rows = 10;  // background-only vertices that must be peeled
  spec.extra_cols = 10;
  spec.p_in = 0.8;
  spec.p_out = 0.01;
  const auto g = gen::block_community(spec, 31);
  const TipPeelResult r = k_tip(g, 50);
  // Survivors exist and all have high butterfly counts.
  EXPECT_GT(r.subgraph.edge_count(), 0);
  EXPECT_GT(r.removed_vertices, 0);
  const auto b = count::butterflies_per_v1(r.subgraph);
  for (std::size_t u = 0; u < r.kept.size(); ++u)
    if (r.kept[u]) EXPECT_GE(b[u], 50);
}

TEST(Peeling, SubgraphMismatchDetected) {
  // Non-square so a V1-sided decomposition cannot be confused for V2.
  const auto g = random_graph(8, 5, 0.4, 2);
  const TipDecomposition d = tip_decomposition(g, Side::kV1);
  EXPECT_THROW(tip_subgraph(g, d, 1, Side::kV2), std::invalid_argument);
  const auto other = random_graph(9, 9, 0.4, 3);
  const WingDecomposition wd = wing_decomposition(g);
  if (other.edge_count() != g.edge_count())
    EXPECT_THROW(wing_subgraph(other, wd, 1), std::invalid_argument);
}

TEST(KTipLookahead, MatchesRecomputeOnRandomGraphs) {
  // The Fig. 8 look-ahead evaluation of s must yield identical peeling
  // fixpoints to the literal per-round recomputation, on both sides.
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const auto g = random_graph(18, 15, 0.3, seed);
    for (const count_t k : {1, 2, 4, 9}) {
      const TipPeelResult a = k_tip(g, k, Side::kV1, TipAlgorithm::kRecompute);
      const TipPeelResult b = k_tip(g, k, Side::kV1, TipAlgorithm::kLookahead);
      EXPECT_EQ(a.subgraph, b.subgraph) << "k=" << k << " seed=" << seed;
      EXPECT_EQ(a.kept, b.kept);
      EXPECT_EQ(a.rounds, b.rounds);
      const TipPeelResult c = k_tip(g, k, Side::kV2, TipAlgorithm::kRecompute);
      const TipPeelResult d = k_tip(g, k, Side::kV2, TipAlgorithm::kLookahead);
      EXPECT_EQ(c.subgraph, d.subgraph);
      EXPECT_EQ(c.kept, d.kept);
    }
  }
}

TEST(KTipLookahead, HandGraphs) {
  const auto g = single_butterfly();
  EXPECT_EQ(k_tip(g, 1, Side::kV1, TipAlgorithm::kLookahead).removed_vertices,
            0);
  EXPECT_EQ(k_tip(g, 2, Side::kV1, TipAlgorithm::kLookahead).removed_vertices,
            2);
  const auto kb = complete_bipartite(4, 4);
  EXPECT_EQ(k_tip(kb, 18, Side::kV1, TipAlgorithm::kLookahead).removed_vertices,
            0);
  EXPECT_EQ(k_tip(kb, 19, Side::kV1, TipAlgorithm::kLookahead).removed_vertices,
            4);
}

}  // namespace
}  // namespace bfc::peel
