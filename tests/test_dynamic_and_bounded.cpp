// Tests for the dynamic (incremental) counter and the bounded-memory
// external-style counter — both must track the exact batch counters under
// arbitrary update sequences / workspace budgets.
#include <gtest/gtest.h>

#include "count/baselines.hpp"
#include "count/bounded_memory.hpp"
#include "count/dynamic.hpp"
#include "sparse/ops.hpp"
#include "test_helpers.hpp"

namespace bfc::count {
namespace {

using bfc::testing::complete_bipartite;
using bfc::testing::random_graph;

TEST(DynamicCounter, SingleButterflyLifecycle) {
  DynamicButterflyCounter c(2, 2);
  EXPECT_EQ(c.butterflies(), 0);
  EXPECT_EQ(c.insert(0, 0), 0);
  EXPECT_EQ(c.insert(0, 1), 0);
  EXPECT_EQ(c.insert(1, 0), 0);
  EXPECT_EQ(c.insert(1, 1), 1);  // the closing edge creates the butterfly
  EXPECT_EQ(c.butterflies(), 1);
  EXPECT_EQ(c.edge_count(), 4);
  EXPECT_EQ(c.remove(0, 0), 1);
  EXPECT_EQ(c.butterflies(), 0);
  EXPECT_EQ(c.edge_count(), 3);
}

TEST(DynamicCounter, DuplicateAndMissingEdgesAreNoops) {
  DynamicButterflyCounter c(3, 3);
  EXPECT_EQ(c.insert(0, 0), 0);
  EXPECT_EQ(c.insert(0, 0), 0);  // duplicate
  EXPECT_EQ(c.edge_count(), 1);
  EXPECT_EQ(c.remove(1, 1), 0);  // absent
  EXPECT_EQ(c.edge_count(), 1);
  EXPECT_THROW(c.insert(3, 0), std::invalid_argument);
  EXPECT_THROW(c.remove(0, 3), std::invalid_argument);
}

TEST(DynamicCounter, InsertionOrderIrrelevant) {
  // Build K_{3,3} in two different orders; counts must agree at the end.
  const std::vector<std::pair<vidx_t, vidx_t>> edges = {
      {0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1},
      {1, 2}, {2, 0}, {2, 1}, {2, 2}};
  DynamicButterflyCounter forward(3, 3);
  for (const auto& [u, v] : edges) forward.insert(u, v);
  DynamicButterflyCounter backward(3, 3);
  for (auto it = edges.rbegin(); it != edges.rend(); ++it)
    backward.insert(it->first, it->second);
  EXPECT_EQ(forward.butterflies(), choose2(3) * choose2(3));
  EXPECT_EQ(backward.butterflies(), forward.butterflies());
}

class DynamicRandomized : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DynamicRandomized, TracksExactCounterThroughMixedUpdates) {
  const auto seed = GetParam();
  Rng rng(seed);
  const vidx_t n1 = 10, n2 = 9;
  DynamicButterflyCounter c(n1, n2);
  std::vector<std::pair<vidx_t, vidx_t>> present;

  for (int step = 0; step < 300; ++step) {
    const bool do_insert = present.empty() || rng.bernoulli(0.6);
    if (do_insert) {
      const auto u = static_cast<vidx_t>(rng.bounded(n1));
      const auto v = static_cast<vidx_t>(rng.bounded(n2));
      if (!c.has_edge(u, v)) present.emplace_back(u, v);
      c.insert(u, v);
    } else {
      const auto k = static_cast<std::size_t>(rng.bounded(present.size()));
      c.remove(present[k].first, present[k].second);
      present.erase(present.begin() + static_cast<std::ptrdiff_t>(k));
    }
    // Every 25 steps, verify against a from-scratch recount.
    if (step % 25 == 24) {
      const auto g = graph::BipartiteGraph::from_edges(n1, n2, present);
      ASSERT_EQ(c.butterflies(), wedge_reference(g)) << "step " << step;
      ASSERT_EQ(c.edge_count(), g.edge_count());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DynamicRandomized,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

TEST(BoundedMemory, MatchesExactAcrossBudgets) {
  const auto g = random_graph(25, 20, 0.3, 7);
  const count_t exact = wedge_reference(g);
  // From barely-2-wedges up to everything-in-one-batch.
  for (const std::int64_t budget : {2, 3, 7, 64, 1 << 20}) {
    const BoundedMemoryStats s = count_bounded_memory(g, budget);
    EXPECT_EQ(s.butterflies, exact) << "budget " << budget;
    EXPECT_LE(s.peak_batch_entries, budget);
  }
  EXPECT_THROW(count_bounded_memory(g, 1), std::invalid_argument);
}

TEST(BoundedMemory, StatsAreConsistent) {
  const auto g = complete_bipartite(8, 8);  // 8·C(8,2) = 224 wedges per side
  const BoundedMemoryStats s = count_bounded_memory(g, 50);
  EXPECT_EQ(s.butterflies, choose2(8) * choose2(8));
  EXPECT_EQ(s.total_wedges, 224);
  EXPECT_EQ(s.batches, (224 + 49) / 50);
  EXPECT_LE(s.peak_batch_entries, 50);
}

TEST(BoundedMemory, TinyBudgetOnLargerGraph) {
  const auto g = random_graph(40, 40, 0.2, 12);
  EXPECT_EQ(count_bounded_memory(g, 16).butterflies, wedge_reference(g));
}

TEST(BoundedMemory, EmptyGraph) {
  const BoundedMemoryStats s =
      count_bounded_memory(graph::BipartiteGraph::from_edges(4, 4, {}), 8);
  EXPECT_EQ(s.butterflies, 0);
  EXPECT_EQ(s.batches, 0);
  EXPECT_EQ(s.total_wedges, 0);
}

}  // namespace
}  // namespace bfc::count
