#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <vector>

#include "util/cli.hpp"
#include "util/common.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace bfc {
namespace {

TEST(Choose2, SmallValues) {
  EXPECT_EQ(choose2(0), 0);
  EXPECT_EQ(choose2(1), 0);
  EXPECT_EQ(choose2(2), 1);
  EXPECT_EQ(choose2(3), 3);
  EXPECT_EQ(choose2(4), 6);
  EXPECT_EQ(choose2(10), 45);
}

TEST(Choose2, NegativeIsZero) {
  EXPECT_EQ(choose2(-1), 0);
  EXPECT_EQ(choose2(-100), 0);
}

TEST(Choose2, LargeValuesExact) {
  // 2^31 choose 2 = 2^30 * (2^31 - 1): still fits in int64 exactly.
  const count_t n = count_t{1} << 31;
  EXPECT_EQ(choose2(n), (n / 2) * (n - 1));
  EXPECT_EQ(choose2(1000001), count_t{1000001} * 500000);
}

TEST(Require, ThrowsWithMessage) {
  EXPECT_NO_THROW(require(true, "ok"));
  try {
    require(false, "boom");
    FAIL() << "require(false) did not throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
}

TEST(Rng, DeterministicBySeed) {
  Rng a(42), b(42), c(43);
  bool any_differs = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next();
    EXPECT_EQ(va, b.next());
    if (va != c.next()) any_differs = true;
  }
  EXPECT_TRUE(any_differs);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.bounded(17), 17u);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(Rng, BoundedCoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.bounded(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformInHalfOpenUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(rng.bernoulli(0.0));
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(rng.bernoulli(1.0));
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng rng(13);
  double sum = 0, sumsq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sumsq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sumsq / n, 1.0, 0.08);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(42);
  Rng b = a.fork();
  // Forked stream differs from the parent's continuation.
  bool differs = false;
  for (int i = 0; i < 32; ++i)
    if (a.next() != b.next()) differs = true;
  EXPECT_TRUE(differs);
}

TEST(Cli, ParsesSpaceAndEqualsForms) {
  // Note: a bare flag followed by a positional ("--flag pos1") is ambiguous
  // under the "--name value" form; positionals go before flags or flags use
  // the "=" form.
  const char* argv[] = {"prog", "--alpha", "3", "--beta=hi", "pos1", "--flag"};
  Cli cli(6, argv);
  EXPECT_EQ(cli.get_int("alpha", 0), 3);
  EXPECT_EQ(cli.get("beta", ""), "hi");
  EXPECT_TRUE(cli.has("flag"));
  EXPECT_TRUE(cli.get_bool("flag", false));
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos1");
  EXPECT_EQ(cli.program(), "prog");
}

TEST(Cli, FallbacksWhenAbsent) {
  const char* argv[] = {"prog"};
  Cli cli(1, argv);
  EXPECT_FALSE(cli.has("missing"));
  EXPECT_EQ(cli.get_int("missing", 42), 42);
  EXPECT_DOUBLE_EQ(cli.get_double("missing", 2.5), 2.5);
  EXPECT_EQ(cli.get("missing", "dflt"), "dflt");
  EXPECT_TRUE(cli.get_bool("missing", true));
}

TEST(Cli, BooleanSpellings) {
  const char* argv[] = {"prog", "--a=true", "--b=0", "--c=off", "--d=yes"};
  Cli cli(5, argv);
  EXPECT_TRUE(cli.get_bool("a", false));
  EXPECT_FALSE(cli.get_bool("b", true));
  EXPECT_FALSE(cli.get_bool("c", true));
  EXPECT_TRUE(cli.get_bool("d", false));
}

TEST(Cli, BadBooleanThrows) {
  const char* argv[] = {"prog", "--x=maybe"};
  Cli cli(2, argv);
  EXPECT_THROW(cli.get_bool("x", false), std::invalid_argument);
}

TEST(Cli, OptionValueThatLooksNumeric) {
  const char* argv[] = {"prog", "--scale", "0.125", "--n", "-5"};
  Cli cli(5, argv);
  EXPECT_DOUBLE_EQ(cli.get_double("scale", 1.0), 0.125);
  EXPECT_EQ(cli.get_int("n", 0), -5);
}

TEST(Cli, GetIntAtLeastRejectsBelowBound) {
  const char* argv[] = {"prog", "--n", "-5", "--k", "3"};
  Cli cli(5, argv);
  EXPECT_EQ(cli.get_int_at_least("k", 0, 1), 3);
  EXPECT_EQ(cli.get_int_at_least("missing", 7, 1), 7);
  EXPECT_THROW(cli.get_int_at_least("n", 0, 0), std::invalid_argument);
  EXPECT_THROW(cli.get_int_at_least("k", 0, 4), std::invalid_argument);
}

TEST(Table, FormatsNumbersWithSeparators) {
  EXPECT_EQ(Table::num(0), "0");
  EXPECT_EQ(Table::num(999), "999");
  EXPECT_EQ(Table::num(1000), "1,000");
  EXPECT_EQ(Table::num(1234567), "1,234,567");
  EXPECT_EQ(Table::num(-50894505), "-50,894,505");
}

TEST(Table, FixedDigits) {
  EXPECT_EQ(Table::fixed(1.23456, 3), "1.235");
  EXPECT_EQ(Table::fixed(2.0, 1), "2.0");
}

TEST(Table, PrintsAlignedRows) {
  Table t({"Dataset", "Inv. 1"});
  t.add_row({"GitHub", "104.069"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Dataset"), std::string::npos);
  EXPECT_NE(out.find("GitHub"), std::string::npos);
  EXPECT_NE(out.find("104.069"), std::string::npos);
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, RejectsArityMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Samples, SummaryStatistics) {
  Samples s;
  for (const double v : {3.0, 1.0, 2.0, 5.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
}

TEST(Samples, MedianOfEvenCount) {
  Samples s;
  for (const double v : {1.0, 2.0, 3.0, 10.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.median(), 2.5);
}

TEST(Samples, EmptyThrows) {
  Samples s;
  EXPECT_THROW(s.mean(), std::logic_error);
  EXPECT_THROW(s.min(), std::logic_error);
  EXPECT_THROW(s.median(), std::logic_error);
}

TEST(Timer, MeasuresNonNegativeDurations) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GT(t.seconds(), 0.0);
  EXPECT_GE(t.millis(), t.seconds());  // millis = 1000x seconds
  t.reset();
  EXPECT_LT(t.seconds(), 1.0);
}

TEST(Parallel, ThreadCountGuardRestores) {
  const int before = num_threads();
  {
    ThreadCountGuard guard(2);
    EXPECT_EQ(num_threads(), 2);
  }
  EXPECT_EQ(num_threads(), before);
}

TEST(Parallel, HardwareThreadsPositive) {
  EXPECT_GE(hardware_threads(), 1);
  EXPECT_EQ(thread_id(), 0);  // outside a parallel region
}

}  // namespace
}  // namespace bfc
