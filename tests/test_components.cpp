#include <gtest/gtest.h>

#include "count/baselines.hpp"
#include "gen/generators.hpp"
#include "graph/components.hpp"
#include "graph/stats.hpp"
#include "test_helpers.hpp"

namespace bfc::graph {
namespace {

using bfc::testing::complete_bipartite;
using bfc::testing::random_graph;

TEST(ConnectedComponents, SingleComponentPlusIsolated) {
  // Two K_{2,2}s and one isolated vertex on each side.
  BipartiteGraph g = BipartiteGraph::from_edges(
      5, 5, {{0, 0}, {0, 1}, {1, 0}, {1, 1}, {2, 2}, {2, 3}, {3, 2}, {3, 3}});
  const Components c = connected_components(g);
  EXPECT_EQ(c.count, 4);  // two bicliques + isolated u4 + isolated v4
  EXPECT_EQ(c.label_v1[0], c.label_v1[1]);
  EXPECT_EQ(c.label_v1[0], c.label_v2[0]);
  EXPECT_EQ(c.label_v1[2], c.label_v1[3]);
  EXPECT_NE(c.label_v1[0], c.label_v1[2]);
  EXPECT_NE(c.label_v1[4], c.label_v1[0]);
  EXPECT_NE(c.label_v2[4], c.label_v2[0]);
  // Edge counting per component (4 + 4).
  count_t total_edges = 0;
  for (const offset_t e : c.edges_per_component) total_edges += e;
  EXPECT_EQ(total_edges, g.edge_count());
}

TEST(ConnectedComponents, EmptyAndComplete) {
  const Components empty = connected_components(BipartiteGraph{});
  EXPECT_EQ(empty.count, 0);
  const Components full = connected_components(complete_bipartite(3, 4));
  EXPECT_EQ(full.count, 1);
}

TEST(LargestComponent, PicksTheHeavierBlock) {
  BipartiteGraph g = BipartiteGraph::from_edges(
      6, 6,
      {{0, 0}, {0, 1}, {1, 0}, {1, 1},                    // 4 edges
       {2, 2}, {2, 3}, {3, 2}, {3, 3}, {4, 2}, {4, 3}});  // 6 edges
  const BipartiteGraph big = largest_component(g);
  EXPECT_EQ(big.edge_count(), 6);
  EXPECT_TRUE(big.has_edge(4, 2));
  EXPECT_FALSE(big.has_edge(0, 0));
  EXPECT_EQ(big.n1(), g.n1());  // dimensions preserved
}

TEST(LargestComponent, NoEdgesReturnsInput) {
  const BipartiteGraph g = BipartiteGraph::from_edges(3, 3, {});
  EXPECT_EQ(largest_component(g), g);
}

TEST(TwoCorePrune, PathIsFullyPeeled) {
  // A path u0-v0-u1-v1 has all butterfly-free edges; the prune empties it.
  const BipartiteGraph g =
      BipartiteGraph::from_edges(2, 2, {{0, 0}, {1, 0}, {1, 1}});
  const CorePruneResult r = two_core_prune(g);
  EXPECT_EQ(r.subgraph.edge_count(), 0);
  EXPECT_GT(r.removed_v1 + r.removed_v2, 0);
}

TEST(TwoCorePrune, BicliqueUntouched) {
  const auto g = complete_bipartite(3, 3);
  const CorePruneResult r = two_core_prune(g);
  EXPECT_EQ(r.subgraph, g);
  EXPECT_EQ(r.removed_v1, 0);
  EXPECT_EQ(r.removed_v2, 0);
}

TEST(TwoCorePrune, PendantChainCascades) {
  // K_{2,2} with a pendant chain hanging off it: the chain peels away over
  // multiple rounds, the biclique survives.
  const BipartiteGraph g = BipartiteGraph::from_edges(
      4, 4, {{0, 0}, {0, 1}, {1, 0}, {1, 1},  // biclique
             {1, 2}, {2, 2}, {2, 3}, {3, 3}});  // chain u1-v2-u2-v3-u3
  const CorePruneResult r = two_core_prune(g);
  EXPECT_EQ(r.subgraph.edge_count(), 4);
  EXPECT_TRUE(r.subgraph.has_edge(0, 0));
  EXPECT_FALSE(r.subgraph.has_edge(2, 2));
  EXPECT_GT(r.rounds, 2);  // the chain unravels one link per round
}

class PruneInvariance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PruneInvariance, CountsUnchangedByPruning) {
  const auto g = random_graph(30, 25, 0.08, GetParam());
  const CorePruneResult r = two_core_prune(g);
  EXPECT_EQ(count::wedge_reference(r.subgraph), count::wedge_reference(g));
  // No degree-1 vertex remains.
  for (vidx_t u = 0; u < r.subgraph.n1(); ++u)
    EXPECT_NE(r.subgraph.csr().row_degree(u), 1);
  for (vidx_t v = 0; v < r.subgraph.n2(); ++v)
    EXPECT_NE(r.subgraph.csc().row_degree(v), 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PruneInvariance,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(DegreeHistogram, MatchesDefinition) {
  const BipartiteGraph g =
      BipartiteGraph::from_edges(4, 3, {{0, 0}, {0, 1}, {0, 2}, {1, 0}});
  const auto h1 = degree_histogram_v1(g);
  // Degrees: 3, 1, 0, 0 -> hist [2, 1, 0, 1].
  ASSERT_EQ(h1.size(), 4u);
  EXPECT_EQ(h1[0], 2);
  EXPECT_EQ(h1[1], 1);
  EXPECT_EQ(h1[2], 0);
  EXPECT_EQ(h1[3], 1);
  const auto h2 = degree_histogram_v2(g);
  // Column degrees: 2, 1, 1 -> hist [0, 2, 1].
  ASSERT_EQ(h2.size(), 3u);
  EXPECT_EQ(h2[1], 2);
  EXPECT_EQ(h2[2], 1);
}

TEST(DegreePercentile, NearestRank) {
  const BipartiteGraph g =
      BipartiteGraph::from_edges(4, 3, {{0, 0}, {0, 1}, {0, 2}, {1, 0}});
  // Sorted V1 degrees: 0, 0, 1, 3.
  EXPECT_EQ(degree_percentile_v1(g, 0), 0);
  EXPECT_EQ(degree_percentile_v1(g, 50), 0);
  EXPECT_EQ(degree_percentile_v1(g, 75), 1);
  EXPECT_EQ(degree_percentile_v1(g, 100), 3);
  EXPECT_THROW(degree_percentile_v1(g, 101), std::invalid_argument);
  EXPECT_EQ(degree_percentile_v2(g, 100), 2);
}

}  // namespace
}  // namespace bfc::graph
