// Shared fixtures and random-instance builders for the bfc test suite.
#pragma once

#include <vector>

#include "dense/dense_matrix.hpp"
#include "graph/bipartite_graph.hpp"
#include "sparse/csr.hpp"
#include "util/rng.hpp"

namespace bfc::testing {

/// Random dense 0/1 matrix with independent Bernoulli(p) entries.
inline dense::DenseMatrix random_dense01(vidx_t rows, vidx_t cols, double p,
                                         std::uint64_t seed) {
  Rng rng(seed);
  dense::DenseMatrix m(rows, cols);
  for (vidx_t r = 0; r < rows; ++r)
    for (vidx_t c = 0; c < cols; ++c) m(r, c) = rng.bernoulli(p) ? 1 : 0;
  return m;
}

/// Random dense integer matrix with entries in [lo, hi].
inline dense::DenseMatrix random_dense_int(vidx_t rows, vidx_t cols,
                                           count_t lo, count_t hi,
                                           std::uint64_t seed) {
  Rng rng(seed);
  dense::DenseMatrix m(rows, cols);
  for (vidx_t r = 0; r < rows; ++r)
    for (vidx_t c = 0; c < cols; ++c) m(r, c) = rng.range(lo, hi);
  return m;
}

/// Random bipartite graph (dense-backed, so the same instance can feed both
/// the sparse algorithms and the dense oracles).
inline graph::BipartiteGraph random_graph(vidx_t n1, vidx_t n2, double p,
                                          std::uint64_t seed) {
  return graph::BipartiteGraph(
      sparse::CsrPattern::from_dense(random_dense01(n1, n2, p, seed)));
}

/// Complete bipartite graph K_{m,n}; has C(m,2)·C(n,2) butterflies.
inline graph::BipartiteGraph complete_bipartite(vidx_t m, vidx_t n) {
  dense::DenseMatrix d = dense::DenseMatrix::ones(m, n);
  return graph::BipartiteGraph(sparse::CsrPattern::from_dense(d));
}

/// The paper's Fig. 1 butterfly: a single 4-cycle (2x2 biclique).
inline graph::BipartiteGraph single_butterfly() {
  return complete_bipartite(2, 2);
}

/// 6-cycle as a bipartite graph (3 + 3 vertices): no butterflies, 6 wedges.
inline graph::BipartiteGraph hexagon() {
  dense::DenseMatrix d = {{1, 1, 0}, {0, 1, 1}, {1, 0, 1}};
  return graph::BipartiteGraph(sparse::CsrPattern::from_dense(d));
}

/// Star K_{1,n}: no butterflies, C(n,2) wedges with endpoints in V2.
inline graph::BipartiteGraph star(vidx_t n) { return complete_bipartite(1, n); }

}  // namespace bfc::testing
