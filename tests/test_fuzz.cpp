// Deterministic differential "fuzz" sweeps: many seeded random instances,
// every independent counting path compared pairwise. Complements the
// oracle-pinned tests with breadth — a disagreement between ANY two
// implementations fails, without needing the dense oracle's O(m²n) cost.
#include <gtest/gtest.h>

#include "chk/validate.hpp"
#include "count/baselines.hpp"
#include "count/dynamic.hpp"
#include "count/bounded_memory.hpp"
#include "count/local_counts.hpp"
#include "count/parallel_counts.hpp"
#include "gb/butterflies.hpp"
#include "gen/generators.hpp"
#include "la/count.hpp"
#include "peel/wing_family.hpp"
#include "test_helpers.hpp"

namespace bfc {
namespace {

struct FuzzCase {
  std::uint64_t seed;
  int shape;  // 0: square sparse, 1: wide, 2: tall, 3: dense small, 4: CL
};

graph::BipartiteGraph make_case(const FuzzCase& c) {
  switch (c.shape) {
    case 0:
      return gen::erdos_renyi(60, 60, 0.05, c.seed);
    case 1:
      return gen::erdos_renyi(15, 120, 0.08, c.seed);
    case 2:
      return gen::erdos_renyi(120, 15, 0.08, c.seed);
    case 3:
      return gen::erdos_renyi(18, 18, 0.5, c.seed);
    default:
      return gen::chung_lu(gen::power_law_weights(80, 0.9),
                           gen::power_law_weights(60, 0.7), 400, c.seed);
  }
}

class DifferentialFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(DifferentialFuzz, TotalsAgreeEverywhere) {
  const auto g = make_case(GetParam());
  const count_t reference = count::wedge_reference(g);

  EXPECT_EQ(count::vertex_priority(g), reference);
  EXPECT_EQ(count::batch_hash(g), reference);
  EXPECT_EQ(count::wedge_reference_parallel(g, 3), reference);
  EXPECT_EQ(count::count_bounded_memory(g, 256).butterflies, reference);
  EXPECT_EQ(gb::butterflies_spec(g), reference);
  EXPECT_EQ(la::count_butterflies(g), reference);

  for (const la::Invariant inv : la::all_invariants()) {
    la::CountOptions wedge;
    wedge.engine = la::Engine::kWedge;
    EXPECT_EQ(la::count_butterflies(g, inv, wedge), reference)
        << la::name(inv);
    la::CountOptions blocked;
    blocked.engine = la::Engine::kBlocked;
    blocked.block_size = 7;  // deliberately awkward panel width
    EXPECT_EQ(la::count_butterflies(g, inv, blocked), reference)
        << la::name(inv);
  }
}

TEST_P(DifferentialFuzz, LocalCountsConsistent) {
  const auto g = make_case(GetParam());
  const count_t reference = count::wedge_reference(g);

  // Per-vertex sums = 2Ξ on each side; parallel == sequential.
  const auto b1 = count::butterflies_per_v1(g);
  count_t sum1 = 0;
  for (const count_t b : b1) sum1 += b;
  EXPECT_EQ(sum1, 2 * reference);
  EXPECT_EQ(count::butterflies_per_v1_parallel(g, 2), b1);

  // Per-edge support: Eq. 25 path == traversal family path, sums to 4Ξ.
  const auto support = count::support_per_edge(g);
  count_t sum_e = 0;
  for (const count_t s : support) sum_e += s;
  EXPECT_EQ(sum_e, 4 * reference);
  EXPECT_EQ(peel::support_family(g, la::Invariant::kInv3), support);
  EXPECT_EQ(peel::support_family(g, la::Invariant::kInv8), support);
  EXPECT_EQ(gb::wing_support(g), support);
}

// Structural fuzz: every randomized graph passes the deep validators, and a
// dynamic counter replaying its edges stays internally consistent after
// every single mutation (each validate() includes a from-scratch recount,
// so this cross-checks the incremental maintenance at every step).
TEST_P(DifferentialFuzz, ValidatorsHoldThroughEveryMutation) {
  const auto g = make_case(GetParam());
  ASSERT_NO_THROW(chk::validate(g));
  ASSERT_NO_THROW(chk::validate_mirror(g.csr(), g.csc()));

  std::vector<std::pair<vidx_t, vidx_t>> edges;
  for (vidx_t u = 0; u < g.n1(); ++u)
    for (const vidx_t v : g.neighbors_of_v1(u)) edges.push_back({u, v});

  // Validating after every mutation is O(recount) each time; cap the replay
  // so the sweep stays fast while still covering inserts and removes.
  constexpr std::size_t kMaxMutations = 48;
  if (edges.size() > kMaxMutations) edges.resize(kMaxMutations);

  count::DynamicButterflyCounter c(g.n1(), g.n2());
  for (const auto& [u, v] : edges) {
    c.insert(u, v);
    ASSERT_NO_THROW(chk::validate(c)) << "after insert (" << u << "," << v
                                      << ")";
  }
  for (std::size_t i = 0; i < edges.size(); i += 3) {
    c.remove(edges[i].first, edges[i].second);
    ASSERT_NO_THROW(chk::validate(c))
        << "after remove (" << edges[i].first << "," << edges[i].second
        << ")";
  }
}

std::vector<FuzzCase> fuzz_cases() {
  std::vector<FuzzCase> cases;
  for (std::uint64_t seed = 1; seed <= 8; ++seed)
    for (int shape = 0; shape < 5; ++shape) cases.push_back({seed, shape});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, DifferentialFuzz,
                         ::testing::ValuesIn(fuzz_cases()));

}  // namespace
}  // namespace bfc
