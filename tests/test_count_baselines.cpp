#include <gtest/gtest.h>

#include "count/baselines.hpp"
#include "count/local_counts.hpp"
#include "dense/spec.hpp"
#include "test_helpers.hpp"

namespace bfc::count {
namespace {

using bfc::testing::complete_bipartite;
using bfc::testing::hexagon;
using bfc::testing::random_graph;
using bfc::testing::single_butterfly;
using bfc::testing::star;

TEST(Baselines, HandGraphs) {
  const auto bf = single_butterfly();
  EXPECT_EQ(wedge_reference(bf), 1);
  EXPECT_EQ(vertex_priority(bf), 1);
  EXPECT_EQ(batch_sort(bf), 1);
  EXPECT_EQ(batch_hash(bf), 1);

  const auto hex = hexagon();
  EXPECT_EQ(wedge_reference(hex), 0);
  EXPECT_EQ(vertex_priority(hex), 0);

  const auto st = star(6);
  EXPECT_EQ(wedge_reference(st), 0);
  EXPECT_EQ(vertex_priority(st), 0);
  EXPECT_EQ(batch_sort(st), 0);
}

TEST(Baselines, CompleteBipartiteClosedForm) {
  for (const auto& [m, n] : {std::pair{3, 3}, {4, 6}, {7, 2}, {5, 5}}) {
    const auto g = complete_bipartite(m, n);
    const count_t expected = choose2(m) * choose2(n);
    EXPECT_EQ(wedge_reference(g), expected);
    EXPECT_EQ(wedge_reference_v1(g), expected);
    EXPECT_EQ(wedge_reference_v2(g), expected);
    EXPECT_EQ(vertex_priority(g), expected);
    EXPECT_EQ(batch_sort(g), expected);
    EXPECT_EQ(batch_hash(g), expected);
  }
}

TEST(Baselines, EmptyAndEdgelessGraphs) {
  const graph::BipartiteGraph empty;
  EXPECT_EQ(wedge_reference(empty), 0);
  EXPECT_EQ(vertex_priority(empty), 0);
  const auto edgeless = graph::BipartiteGraph::from_edges(5, 5, {});
  EXPECT_EQ(wedge_reference(edgeless), 0);
  EXPECT_EQ(vertex_priority(edgeless), 0);
  EXPECT_EQ(batch_hash(edgeless), 0);
}

struct GraphCase {
  vidx_t m, n;
  double p;
  std::uint64_t seed;
};

class BaselineAgreement : public ::testing::TestWithParam<GraphCase> {};

TEST_P(BaselineAgreement, AllCountersMatchDenseOracle) {
  const auto& c = GetParam();
  const auto g = random_graph(c.m, c.n, c.p, c.seed);
  const count_t oracle = dense::butterflies_spec(g.csr().to_dense());
  EXPECT_EQ(wedge_reference_v1(g), oracle);
  EXPECT_EQ(wedge_reference_v2(g), oracle);
  EXPECT_EQ(wedge_reference(g), oracle);
  EXPECT_EQ(vertex_priority(g), oracle);
  EXPECT_EQ(batch_sort(g), oracle);
  EXPECT_EQ(batch_hash(g), oracle);
}

TEST_P(BaselineAgreement, PerVertexMatchesTipSpec) {
  const auto& c = GetParam();
  const auto g = random_graph(c.m, c.n, c.p, c.seed);
  const auto d = g.csr().to_dense();
  EXPECT_EQ(butterflies_per_v1(g), dense::tip_vector_spec(d));
  EXPECT_EQ(butterflies_per_v2(g), dense::tip_vector_spec_v2(d));
}

TEST_P(BaselineAgreement, PerEdgeMatchesWingSpec) {
  const auto& c = GetParam();
  const auto g = random_graph(c.m, c.n, c.p, c.seed);
  const dense::DenseMatrix sw = dense::wing_support_spec(g.csr().to_dense());
  const std::vector<count_t> support = support_per_edge(g);
  std::size_t e = 0;
  for (vidx_t u = 0; u < g.n1(); ++u)
    for (const vidx_t v : g.neighbors_of_v1(u))
      EXPECT_EQ(support[e++], sw(u, v)) << "edge (" << u << "," << v << ")";
  EXPECT_EQ(e, support.size());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BaselineAgreement,
    ::testing::Values(GraphCase{5, 5, 0.5, 1}, GraphCase{8, 4, 0.6, 2},
                      GraphCase{4, 9, 0.4, 3}, GraphCase{12, 12, 0.3, 4},
                      GraphCase{15, 6, 0.2, 5}, GraphCase{6, 15, 0.7, 6},
                      GraphCase{10, 10, 0.9, 7}, GraphCase{20, 20, 0.15, 8},
                      GraphCase{1, 12, 0.9, 9}, GraphCase{12, 1, 0.9, 10},
                      GraphCase{13, 13, 1.0, 11}));

TEST(Baselines, AgreeOnLargerSparseGraph) {
  // A bigger instance where the dense oracle would be slow: the baselines
  // must still agree with each other.
  const auto g = random_graph(120, 150, 0.05, 77);
  const count_t ref = wedge_reference(g);
  EXPECT_EQ(vertex_priority(g), ref);
  EXPECT_EQ(batch_sort(g), ref);
  EXPECT_EQ(batch_hash(g), ref);
}

TEST(Baselines, BatchBudgetEnforced) {
  const auto g = complete_bipartite(30, 30);  // 30·C(30,2) = 13,050 wedges
  EXPECT_THROW(batch_sort(g, 100), std::length_error);
  EXPECT_THROW(batch_hash(g, 100), std::length_error);
  EXPECT_EQ(batch_sort(g, 1 << 20), choose2(30) * choose2(30));
}

TEST(LocalCounts, PerVertexSumsToTwiceTotal) {
  const auto g = random_graph(18, 14, 0.35, 12);
  const count_t total = wedge_reference(g);
  count_t sum1 = 0;
  for (const count_t b : butterflies_per_v1(g)) sum1 += b;
  EXPECT_EQ(sum1, 2 * total);
  count_t sum2 = 0;
  for (const count_t b : butterflies_per_v2(g)) sum2 += b;
  EXPECT_EQ(sum2, 2 * total);
}

TEST(LocalCounts, PerEdgeSumsToFourTimesTotal) {
  // Each butterfly contains 4 edges.
  const auto g = random_graph(16, 16, 0.4, 13);
  const count_t total = wedge_reference(g);
  count_t sum = 0;
  for (const count_t s : support_per_edge(g)) sum += s;
  EXPECT_EQ(sum, 4 * total);
}

}  // namespace
}  // namespace bfc::count
