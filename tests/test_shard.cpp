// Tests for the sharded serving subsystem (src/shard/ + the service's
// sharded paths): range-partition arithmetic, the scatter-gather cross
// correction on known graphs, and the load-bearing property — for EVERY
// query kind, a service running S shards answers byte-for-byte what the
// single-store service answers, for S in {1, 2, 3, 7}, including vertices
// on the partition boundaries. Plus per-shard cache-tier isolation and a
// TSan-friendly concurrent disjoint-writers stress.
#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "chk/check.hpp"
#include "count/local_counts.hpp"
#include "count/top_pairs.hpp"
#include "obs/metrics.hpp"
#include "shard/partition.hpp"
#include "shard/router.hpp"
#include "shard/scatter_gather.hpp"
#include "shard/sharded_store.hpp"
#include "sparse/ops.hpp"
#include "svc/fault.hpp"
#include "svc/service.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace bfc::svc {
namespace {

using bfc::testing::random_graph;

std::vector<EdgeUpdate> inserts_of(const graph::BipartiteGraph& g) {
  std::vector<EdgeUpdate> batch;
  for (const auto& [u, v] : sparse::edges(g.csr()))
    batch.push_back(EdgeUpdate::add(u, v));
  return batch;
}

/// A mixed insert/delete update stream, reproducible per seed.
std::vector<EdgeUpdate> random_updates(vidx_t n1, vidx_t n2, int count,
                                       std::uint64_t seed) {
  Rng rng(seed);
  std::vector<EdgeUpdate> batch;
  batch.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i)
    batch.push_back({static_cast<vidx_t>(rng.bounded(
                         static_cast<std::uint64_t>(n1))),
                     static_cast<vidx_t>(rng.bounded(
                         static_cast<std::uint64_t>(n2))),
                     rng.bernoulli(0.8)});
  return batch;
}

TEST(RangePartition, CoversRangeWithoutOverlap) {
  for (const vidx_t n1 : {1, 2, 7, 16, 100}) {
    for (const int shards : {1, 2, 3, 7}) {
      if (shards > n1) continue;
      const shard::RangePartition part(n1, shards);
      EXPECT_EQ(part.begin(0), 0);
      EXPECT_EQ(part.end(shards - 1), n1);
      for (int k = 0; k + 1 < shards; ++k)
        EXPECT_EQ(part.end(k), part.begin(k + 1));
      for (vidx_t u = 0; u < n1; ++u) {
        const int k = part.owner(u);
        EXPECT_GE(u, part.begin(k));
        EXPECT_LT(u, part.end(k));
      }
    }
  }
}

TEST(ShardRouter, RoutesByKindAndBucketsByOwner) {
  const shard::RangePartition part(10, 3);
  const shard::ShardRouter router(part);
  EXPECT_FALSE(shard::ShardRouter::scatters(QueryKind::kVertexTipV1));
  EXPECT_FALSE(shard::ShardRouter::scatters(QueryKind::kEdgeSupport));
  EXPECT_TRUE(shard::ShardRouter::scatters(QueryKind::kGlobalCount));
  EXPECT_TRUE(shard::ShardRouter::scatters(QueryKind::kVertexTipV2));
  EXPECT_TRUE(shard::ShardRouter::scatters(QueryKind::kTopPairs));

  const std::vector<EdgeUpdate> batch = random_updates(10, 6, 50, 3);
  const auto buckets = router.bucket(batch);
  ASSERT_EQ(buckets.size(), 3u);
  std::size_t total = 0;
  for (int k = 0; k < 3; ++k) {
    for (const EdgeUpdate& up : buckets[static_cast<std::size_t>(k)])
      EXPECT_EQ(part.owner(up.u), k);
    total += buckets[static_cast<std::size_t>(k)].size();
  }
  EXPECT_EQ(total, batch.size());
}

TEST(ScatterGather, SingleButterflyAcrossShards) {
  // One butterfly with u=0 and u=1 in different shards: invisible to both
  // shard-local kernels, fully reconstructed by the cross pass.
  shard::ShardedSnapshotStore store(2, 2, 2);
  (void)store.apply_batch({EdgeUpdate::add(0, 0), EdgeUpdate::add(0, 1),
                           EdgeUpdate::add(1, 0), EdgeUpdate::add(1, 1)});
  const shard::ShardViewPtr view = store.view();
  EXPECT_EQ(view->local_butterflies(), 0);
  const shard::CrossAggregate agg = shard::ScatterGather::compute(*view);
  EXPECT_EQ(agg.butterflies, 1);
  EXPECT_EQ(shard::ScatterGather::global_count(*view, agg), 1);
  EXPECT_EQ(agg.tip_v1(0), 1);
  EXPECT_EQ(agg.tip_v1(1), 1);
  EXPECT_EQ(agg.tip_v2(0), 1);
  EXPECT_EQ(agg.tip_v2(1), 1);
  ASSERT_EQ(agg.pairs.size(), 1u);
  EXPECT_EQ(agg.pairs[0].a, 0);
  EXPECT_EQ(agg.pairs[0].b, 1);
  EXPECT_EQ(agg.pairs[0].wedges, 2);
  // Owner-local support is 0 (no same-shard mate); the cross term carries
  // the whole butterfly for each of the 4 edges.
  EXPECT_EQ(shard::ScatterGather::edge_support_cross(*view, 0, 0, 0), 1);
  EXPECT_EQ(shard::ScatterGather::edge_support_cross(*view, 1, 1, 1), 1);
}

TEST(ScatterGather, MemoisesPerSignatureAndKeepsLatestTwo) {
  shard::ShardedSnapshotStore store(6, 6, 2);
  (void)store.apply_batch(inserts_of(random_graph(6, 6, 0.5, 11)));
  shard::ScatterGather sg;
  const shard::ShardViewPtr v1 = store.view();
  const shard::CrossAggregatePtr a1 = sg.cross(v1);
  EXPECT_EQ(a1.get(), sg.cross(v1).get()) << "same signature: same object";
  ASSERT_TRUE(sg.cached(v1->signature).has_value());
  ASSERT_TRUE(sg.latest_ready().has_value());
  EXPECT_EQ(sg.latest_ready()->get(), a1.get());

  (void)store.apply_to_shard(0, {EdgeUpdate::add(0, 5)});
  const shard::ShardViewPtr v2 = store.view();
  ASSERT_NE(v2->signature, v1->signature);
  const shard::CrossAggregatePtr a2 = sg.cross(v2);
  // Both generations are retained; a third evicts the oldest.
  EXPECT_TRUE(sg.cached(v1->signature).has_value());
  EXPECT_TRUE(sg.cached(v2->signature).has_value());
  (void)store.apply_to_shard(1, {EdgeUpdate::add(3, 4)});
  const shard::ShardViewPtr v3 = store.view();
  (void)sg.cross(v3);
  EXPECT_FALSE(sg.cached(v1->signature).has_value());
  EXPECT_TRUE(sg.cached(v2->signature).has_value());
  EXPECT_TRUE(sg.cached(v3->signature).has_value());
  (void)a2;
}

// The tentpole invariant: every query kind, every vertex (boundaries
// included), every shard count — identical answers to the single store.
TEST(ShardParity, AllQueryKindsMatchSingleStore) {
  constexpr vidx_t kN1 = 21;  // not divisible by 2, 3 or 7: real remainders
  constexpr vidx_t kN2 = 15;
  ButterflyService reference(kN1, kN2, {.threads = 2});
  // Reference state after 3 mixed batches.
  for (int b = 0; b < 3; ++b)
    reference.apply_updates(random_updates(kN1, kN2, 120, 100 + b));
  const SnapshotPtr ref_snap = reference.snapshot();
  const std::vector<count_t> ref_tips_v1 =
      count::butterflies_per_v1(ref_snap->graph);
  const std::vector<count_t> ref_tips_v2 =
      count::butterflies_per_v2(ref_snap->graph);
  const auto ref_edges = sparse::edges(ref_snap->graph.csr());
  const std::vector<count_t> ref_support =
      count::support_per_edge(ref_snap->graph);
  const std::vector<count::VertexPair> ref_top =
      count::top_wedge_pairs_v1(ref_snap->graph, 8);

  for (const int shards : {1, 2, 3, 7}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    ButterflyService service(kN1, kN2, {.threads = 2, .shards = shards});
    for (int b = 0; b < 3; ++b)
      service.apply_updates(random_updates(kN1, kN2, 120, 100 + b));

    // Global count: zero drift vs the single store.
    const QueryResult<count_t> global = service.global_count().get();
    EXPECT_EQ(global.value, ref_snap->butterflies);
    EXPECT_FALSE(global.degraded());
    // The materialised union snapshot agrees edge-for-edge.
    const SnapshotPtr snap = service.snapshot();
    EXPECT_EQ(snap->edges, ref_snap->edges);
    EXPECT_EQ(snap->butterflies, ref_snap->butterflies);

    // Every tip, both sides — vertex 0, the boundary vertices of every
    // shard, and everything between are all in range.
    for (vidx_t u = 0; u < kN1; ++u) {
      const QueryResult<count_t> r = service.vertex_tip_v1(u).get();
      EXPECT_EQ(r.value, ref_tips_v1[static_cast<std::size_t>(u)])
          << "tip_v1(" << u << ")";
      EXPECT_FALSE(r.degraded());
    }
    for (vidx_t v = 0; v < kN2; ++v) {
      const QueryResult<count_t> r = service.vertex_tip_v2(v).get();
      EXPECT_EQ(r.value, ref_tips_v2[static_cast<std::size_t>(v)])
          << "tip_v2(" << v << ")";
      EXPECT_FALSE(r.degraded());
    }

    // Support of every present edge, plus absent-edge zeros.
    for (std::size_t e = 0; e < ref_edges.size(); ++e) {
      const auto [u, v] = ref_edges[e];
      EXPECT_EQ(service.edge_support(u, v).get().value, ref_support[e])
          << "support(" << u << "," << v << ")";
    }
    for (vidx_t u = 0; u < kN1; u += 5)
      for (vidx_t v = 0; v < kN2; v += 4)
        if (!ref_snap->graph.has_edge(u, v))
          EXPECT_EQ(service.edge_support(u, v).get().value, 0);

    // Top pairs: identical ranked list.
    const QueryResult<TopPairsPtr> top = service.top_pairs(8).get();
    ASSERT_EQ(top.value->size(), ref_top.size());
    for (std::size_t i = 0; i < ref_top.size(); ++i) {
      EXPECT_EQ((*top.value)[i].a, ref_top[i].a);
      EXPECT_EQ((*top.value)[i].b, ref_top[i].b);
      EXPECT_EQ((*top.value)[i].wedges, ref_top[i].wedges);
    }
  }
}

TEST(ShardParity, PinnedViewIsolatesFromLaterPublishes) {
  ButterflyService service(12, 10, {.threads = 2, .shards = 3});
  service.apply_updates(inserts_of(random_graph(12, 10, 0.4, 21)));
  const shard::ShardViewPtr pinned = service.view();
  const count_t before = service.global_count(pinned).get().value;

  service.apply_updates_shard(
      0, {EdgeUpdate::add(0, 9), EdgeUpdate::add(1, 9),
          EdgeUpdate::add(2, 9)});
  // The pinned view still answers the old state; a fresh query sees the new.
  EXPECT_EQ(service.global_count(pinned).get().value, before);
  const SnapshotPtr now = service.snapshot();
  EXPECT_EQ(service.global_count().get().value, now->butterflies);
}

TEST(ShardParity, ShardScopedApplyEnforcesOwnership) {
  ButterflyService service(12, 10, {.threads = 1, .shards = 3});
  // Vertex 11 is owned by the last shard, not shard 0.
  EXPECT_THROW(service.apply_updates_shard(0, {EdgeUpdate::add(11, 0)}),
               std::invalid_argument);
  EXPECT_THROW(service.apply_updates_shard(3, {EdgeUpdate::add(0, 0)}),
               std::invalid_argument);
  EXPECT_THROW(service.apply_updates_shard(-1, {EdgeUpdate::add(0, 0)}),
               std::invalid_argument);
}

TEST(ShardParity, PersistRestoreRoundTripSharded) {
  const std::string path = ::testing::TempDir() + "bfc_shard_ckpt.bin";
  ButterflyService service(14, 9, {.threads = 1, .shards = 3});
  service.apply_updates(random_updates(14, 9, 80, 31));
  const count_t count = service.global_count().get().value;
  const offset_t edges = service.snapshot()->edges;
  service.persist(path);

  ButterflyService fresh(14, 9, {.threads = 1, .shards = 3});
  fresh.restore(path);
  EXPECT_EQ(fresh.global_count().get().value, count);
  EXPECT_EQ(fresh.snapshot()->edges, edges);
  // Post-restore queries answer exactly (no stale generation survives).
  const SnapshotPtr snap = fresh.snapshot();
  const std::vector<count_t> tips = count::butterflies_per_v1(snap->graph);
  for (vidx_t u = 0; u < 14; ++u)
    EXPECT_EQ(fresh.vertex_tip_v1(u).get().value,
              tips[static_cast<std::size_t>(u)]);
  std::remove(path.c_str());
}

// Review regression: restore() must drop the cross-aggregate memo. View
// signatures hash per-shard epochs only, so after a restore rewinds the
// epoch sequences, a different post-restore update stream can re-reach a
// memoised epoch vector — the retained aggregate would then be served as
// kExact for different graph content.
TEST(ShardParity, RestoreClearsCrossAggregateMemo) {
  const std::string path = ::testing::TempDir() + "bfc_shard_memo_ckpt.bin";
  ButterflyService service(8, 6, {.threads = 1, .shards = 2});
  // Base state touching both shards, no butterflies: epochs (1, 1).
  service.apply_updates({EdgeUpdate::add(2, 0), EdgeUpdate::add(6, 5)});
  service.persist(path);

  // One cross-shard butterfly (pair 0/4, wedge count 2): epochs (2, 2);
  // answering memoises the cross aggregate at this signature.
  service.apply_updates({EdgeUpdate::add(0, 0), EdgeUpdate::add(0, 1),
                         EdgeUpdate::add(4, 0), EdgeUpdate::add(4, 1)});
  EXPECT_EQ(service.global_count().get().value, 1);

  // Rewind to epochs (1, 1), then re-reach epochs (2, 2) with DIFFERENT
  // content: pair 1/5 with wedge count 3 → C(3, 2) = 3 cross butterflies.
  service.restore(path);
  service.apply_updates({EdgeUpdate::add(1, 2), EdgeUpdate::add(1, 3),
                         EdgeUpdate::add(1, 4), EdgeUpdate::add(5, 2),
                         EdgeUpdate::add(5, 3), EdgeUpdate::add(5, 4)});
  const QueryResult<count_t> after = service.global_count().get();
  EXPECT_EQ(after.value, 3);
  EXPECT_FALSE(after.degraded());
  for (const char* suffix : {"", ".shard0", ".shard1"})
    std::remove((path + suffix).c_str());
}

/// A ShardHandle that is NOT a LocalShard — the shape a future out-of-process
/// shard takes at the swap_shard() seam. Delegates to an inner LocalShard so
/// the data path still works; only the concrete type differs.
class OpaqueShard final : public shard::ShardHandle {
 public:
  OpaqueShard(int id, vidx_t n1, vidx_t n2, vidx_t lo, vidx_t hi)
      : inner_(id, n1, n2, lo, hi) {}
  PublishResult apply(std::span<const EdgeUpdate> batch) override {
    return inner_.apply(batch);
  }
  [[nodiscard]] SnapshotPtr pin() const override { return inner_.pin(); }
  [[nodiscard]] std::uint64_t epoch() const override { return inner_.epoch(); }
  void persist(const std::string& path) const override {
    inner_.persist(path);
  }
  void restore(const std::string& path) override { inner_.restore(path); }
  [[nodiscard]] int id() const noexcept override { return inner_.id(); }
  [[nodiscard]] vidx_t range_begin() const noexcept override {
    return inner_.range_begin();
  }
  [[nodiscard]] vidx_t range_end() const noexcept override {
    return inner_.range_end();
  }

 private:
  shard::LocalShard inner_;
};

// Review regression: local_store() must report a swapped-in non-local
// handle as null (a diagnosable state) rather than leaving callers to
// dereference it, and the handle seam must still carry the data path.
TEST(ShardedStore, LocalStoreIsNullForSwappedHandle) {
  shard::ShardedSnapshotStore store(8, 4, 2);
  ASSERT_NE(store.local_store(0), nullptr);
  store.swap_shard(0, std::make_shared<OpaqueShard>(0, 8, 4, 0, 4));
  EXPECT_EQ(store.local_store(0), nullptr);
  EXPECT_NE(store.local_store(1), nullptr);
  (void)store.apply_to_shard(0, {EdgeUpdate::add(0, 0)});
  EXPECT_EQ(store.shard_snapshot(0)->edges, 1);
}

// Satellite regression: a publish on shard k must reset ONLY tier k's
// hit/miss generation; the other shards' streaks and the composed tier's
// entries for the current/previous generations survive.
TEST(ResultCacheTiers, ShardPublishResetsOnlyItsTier) {
  ButterflyService service(12, 10, {.threads = 1, .shards = 2});
  service.apply_updates(inserts_of(random_graph(12, 10, 0.5, 41)));

  // Warm shard 1's tier: edge-support local components cache under the
  // owner tier; pick an edge owned by shard 1 (u in the upper range).
  const SnapshotPtr shard1 = service.shard_store().shard_snapshot(1);
  vidx_t u1 = -1, v1 = -1;
  for (const auto& [u, v] : sparse::edges(shard1->graph.csr())) {
    u1 = u;
    v1 = v;
    break;
  }
  ASSERT_GE(u1, 0) << "test premise: shard 1 owns at least one edge";
  (void)service.edge_support(u1, v1).get();  // miss + put (tier 1)
  (void)service.edge_support(u1, v1).get();  // view-tier hit
  const std::int64_t tier1_hits = service.cache().hits(1);
  const std::int64_t tier1_misses = service.cache().misses(1);
  EXPECT_GT(tier1_misses, 0);

  // Publish on shard 0 only.
  service.apply_updates_shard(0, {EdgeUpdate::add(0, 0), EdgeUpdate::add(1, 1)});

  // Tier 0's generation reset; tier 1's streak is untouched.
  EXPECT_EQ(service.cache().hits(0), 0);
  EXPECT_EQ(service.cache().misses(0), 0);
  EXPECT_EQ(service.cache().hits(1), tier1_hits);
  EXPECT_EQ(service.cache().misses(1), tier1_misses);

  // And the shard-1 local component is still served from cache: the next
  // support query at the NEW view signature misses the composed tier but
  // hits tier 1.
  const std::int64_t before = service.cache().hits(1);
  (void)service.edge_support(u1, v1).get();
  EXPECT_GT(service.cache().hits(1), before);
}

TEST(ResultCacheTiers, TierScopedInvalidationKeepsOtherTiers) {
  ResultCache cache(64, 3);
  cache.put(CacheKey{5, QueryKind::kVertexTipV1, 1, 0, 0}, count_t{10});
  cache.put(CacheKey{7, QueryKind::kVertexTipV1, 2, 0, 1}, count_t{20});
  cache.put(CacheKey{9, QueryKind::kVertexTipV1, 3, 0, 2}, count_t{30});
  (void)cache.get(CacheKey{7, QueryKind::kVertexTipV1, 2, 0, 1});  // tier-1 hit
  ASSERT_EQ(cache.hits(1), 1);

  cache.invalidate_tier_older_than(0, 6);
  EXPECT_FALSE(
      cache.get(CacheKey{5, QueryKind::kVertexTipV1, 1, 0, 0}).has_value());
  // Tier 1's entry AND its previous hit streak survive (the get above adds
  // one more hit on top of the pre-invalidation one).
  EXPECT_TRUE(
      cache.get(CacheKey{7, QueryKind::kVertexTipV1, 2, 0, 1}).has_value());
  EXPECT_EQ(cache.hits(1), 2);
  EXPECT_TRUE(
      cache.get(CacheKey{9, QueryKind::kVertexTipV1, 3, 0, 2}).has_value());

  // Keep-list pruning: retain only epoch 9 in tier 2.
  cache.put(CacheKey{8, QueryKind::kGlobalCount, 0, 0, 2}, count_t{1});
  const std::uint64_t keep[] = {9};
  cache.invalidate_tier_keep(2, keep);
  EXPECT_FALSE(
      cache.get(CacheKey{8, QueryKind::kGlobalCount, 0, 0, 2}).has_value());
  EXPECT_TRUE(
      cache.get(CacheKey{9, QueryKind::kVertexTipV1, 3, 0, 2}).has_value());
}

// Concurrent disjoint-range writers vs readers: one writer per shard
// publishing its own range in rounds, readers hammering every query kind
// mid-flight. Run under TSan this is the data-race certificate for the
// lock-free shard-map swap + per-shard publish locks; in any mode the final
// state must match a sequential per-shard replay into one store.
TEST(ShardStress, ConcurrentDisjointWritersMatchSequentialReplay) {
  constexpr vidx_t kN1 = 24;
  constexpr vidx_t kN2 = 12;
  constexpr int kShards = 3;
  constexpr int kRounds = 8;
  constexpr int kPerRound = 15;
  ButterflyService service(kN1, kN2, {.threads = 2, .shards = kShards});
  const shard::RangePartition& part = service.shard_store().partition();

  // Pre-generate each writer's per-round batches so the replay is exact.
  std::vector<std::vector<std::vector<EdgeUpdate>>> script(kShards);
  for (int k = 0; k < kShards; ++k) {
    Rng rng(900 + static_cast<std::uint64_t>(k));
    script[static_cast<std::size_t>(k)].resize(kRounds);
    for (int r = 0; r < kRounds; ++r) {
      auto& batch = script[static_cast<std::size_t>(k)][
          static_cast<std::size_t>(r)];
      for (int i = 0; i < kPerRound; ++i) {
        const auto lo = static_cast<std::uint64_t>(part.begin(k));
        const auto hi = static_cast<std::uint64_t>(part.end(k));
        batch.push_back({static_cast<vidx_t>(lo + rng.bounded(hi - lo)),
                         static_cast<vidx_t>(rng.bounded(kN2)),
                         rng.bernoulli(0.75)});
      }
    }
  }

  std::barrier sync(kShards);
  std::atomic<bool> readers_run{true};
  std::vector<std::thread> writers;
  writers.reserve(kShards);
  for (int k = 0; k < kShards; ++k)
    writers.emplace_back([&, k] {
      for (int r = 0; r < kRounds; ++r) {
        sync.arrive_and_wait();  // keep the publishes genuinely concurrent
        (void)service.apply_updates_shard(
            k, script[static_cast<std::size_t>(k)][
                   static_cast<std::size_t>(r)]);
      }
    });
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t)
    readers.emplace_back([&, t] {
      Rng rng(77 + static_cast<std::uint64_t>(t));
      while (readers_run.load(std::memory_order_relaxed)) {
        const shard::ShardViewPtr view = service.view();
        const auto u = static_cast<vidx_t>(rng.bounded(kN1));
        const auto v = static_cast<vidx_t>(rng.bounded(kN2));
        ASSERT_GE(service.global_count(view).get().value, 0);
        ASSERT_GE(service.vertex_tip_v1(u, view).get().value, 0);
        ASSERT_GE(service.vertex_tip_v2(v, view).get().value, 0);
        ASSERT_GE(service.edge_support(u, v, view).get().value, 0);
      }
    });
  for (auto& w : writers) w.join();
  readers_run.store(false, std::memory_order_relaxed);
  for (auto& r : readers) r.join();

  // Sequential replay: per-shard order is the only order that matters for
  // the final counts (disjoint ranges commute).
  ButterflyService replay(kN1, kN2, {.threads = 1});
  for (int k = 0; k < kShards; ++k)
    for (int r = 0; r < kRounds; ++r)
      replay.apply_updates(script[static_cast<std::size_t>(k)][
          static_cast<std::size_t>(r)]);
  const SnapshotPtr expect = replay.snapshot();
  const SnapshotPtr got = service.snapshot();
  EXPECT_EQ(got->edges, expect->edges);
  EXPECT_EQ(got->butterflies, expect->butterflies) << "count drift";
  const std::vector<count_t> tips = count::butterflies_per_v1(expect->graph);
  for (vidx_t u = 0; u < kN1; ++u)
    EXPECT_EQ(service.vertex_tip_v1(u).get().value,
              tips[static_cast<std::size_t>(u)]);
}

// ---------------------------------------------------------------------------
// Memo failure paths: a failed pass must not poison later callers
// ---------------------------------------------------------------------------

// Review regression: ScatterGather's failure path erases its memo entry so
// the NEXT caller recomputes instead of inheriting the exception — and the
// erase is identity-guarded (signature AND pass id), so a failed pass can
// never evict a fresh in-flight pass re-inserted under its signature.
TEST(ScatterGather, CancelledComputeDropsMemoAndRetrySucceeds) {
  shard::ShardedSnapshotStore store(8, 6, 2);
  // One cross-shard butterfly: pair (0, 4) with common neighbors {0, 1}.
  (void)store.apply_batch({EdgeUpdate::add(0, 0), EdgeUpdate::add(0, 1),
                           EdgeUpdate::add(4, 0), EdgeUpdate::add(4, 1)});
  const shard::ShardViewPtr view = store.view();
  shard::ScatterGather sg;
  const CancelToken expired(CancelToken::Clock::now() -
                            std::chrono::milliseconds(1));
  EXPECT_THROW((void)sg.cross(view, expired), CancelledError);
  // The failed signature is dropped, not cached: no stale rung exists...
  EXPECT_FALSE(sg.cached(view->signature).has_value());
  // ...and an unarmed retry computes the aggregate from scratch.
  const shard::CrossAggregatePtr agg = sg.cross(view);
  EXPECT_EQ(agg->butterflies, 1);
  EXPECT_TRUE(sg.cached(view->signature).has_value());
}

// ---------------------------------------------------------------------------
// Persist/restore crash modes across the BFCSHD01 manifest (checked builds)
// ---------------------------------------------------------------------------
//
// The single-store crash modes (kPersistTruncate / kPersistCorrupt /
// kPersistNoRename) are covered in test_robustness.cpp; these runs cross
// them with shards > 1, where a checkpoint is N per-shard files bound by a
// manifest and the fault lands inside ONE shard's file write. The armed
// Scoped(point, 0, 1) fires on the first per-shard persist, i.e. shard 0.

class ShardPersistRestoreFaults : public ::testing::Test {
 protected:
  void SetUp() override {
    if constexpr (!chk::kCheckedEnabled)
      GTEST_SKIP() << "fault injection compiled out (BFC_CHECKED=OFF)";
  }
  void TearDown() override { svc::fault::reset(); }

  static void cleanup(const std::string& path) {
    for (const char* suffix :
         {"", ".tmp", ".shard0", ".shard0.tmp", ".shard1", ".shard1.tmp",
          ".shard2", ".shard2.tmp"})
      std::remove((path + suffix).c_str());
  }

  /// One edge per V1 vertex at column `v`: every shard's bucket is
  /// non-empty, so one apply_batch bumps every shard's epoch by one.
  static std::vector<EdgeUpdate> full_row(vidx_t n1, vidx_t v) {
    std::vector<EdgeUpdate> batch;
    for (vidx_t u = 0; u < n1; ++u) batch.push_back(EdgeUpdate::add(u, v));
    return batch;
  }
};

TEST_F(ShardPersistRestoreFaults, TruncatedShardFileRejectedAtRestore) {
  const std::string path = ::testing::TempDir() + "bfc_shardfault_torn.ckpt";
  shard::ShardedSnapshotStore writer(12, 8, 3);
  (void)writer.apply_batch(full_row(12, 0));
  {
    const svc::fault::Scoped torn(svc::fault::Point::kPersistTruncate, 0, 1);
    writer.persist(path);  // shard 0's file lands half-length
  }
  shard::ShardedSnapshotStore victim(12, 8, 3);
  (void)victim.apply_batch({EdgeUpdate::add(0, 0)});
  const std::uint64_t epoch_before = victim.epoch();
  EXPECT_THROW(victim.restore(path), std::runtime_error);
  // All-or-nothing: the torn shard file must leave the victim untouched.
  EXPECT_EQ(victim.epoch(), epoch_before);
  EXPECT_EQ(victim.view()->edges(), 1);
  cleanup(path);
}

TEST_F(ShardPersistRestoreFaults, BitRotInOneShardFileRejectedAtRestore) {
  const std::string path = ::testing::TempDir() + "bfc_shardfault_rot.ckpt";
  shard::ShardedSnapshotStore writer(12, 8, 3);
  (void)writer.apply_batch(full_row(12, 0));
  {
    const svc::fault::Scoped rot(svc::fault::Point::kPersistCorrupt, 0, 1,
                                 /*byte*/ 40);
    writer.persist(path);
  }
  shard::ShardedSnapshotStore victim(12, 8, 3);
  EXPECT_THROW(victim.restore(path), std::runtime_error);
  EXPECT_EQ(victim.epoch(), 0u);
  EXPECT_EQ(victim.view()->edges(), 0);
  cleanup(path);
}

TEST_F(ShardPersistRestoreFaults, NoRenameWithoutPriorCheckpointIsMissing) {
  const std::string path = ::testing::TempDir() + "bfc_shardfault_miss.ckpt";
  shard::ShardedSnapshotStore writer(12, 8, 3);
  (void)writer.apply_batch(full_row(12, 0));
  {
    const svc::fault::Scoped crash(svc::fault::Point::kPersistNoRename, 0, 1);
    writer.persist(path);  // shard 0's file is never published
    EXPECT_EQ(svc::fault::fired_count(svc::fault::Point::kPersistNoRename),
              1u);
  }
  shard::ShardedSnapshotStore victim(12, 8, 3);
  EXPECT_THROW(victim.restore(path), std::runtime_error);
  EXPECT_EQ(victim.epoch(), 0u);
  cleanup(path);
}

TEST_F(ShardPersistRestoreFaults, NoRenameOverPriorCheckpointIsAFuzzyCut) {
  // Crash-before-rename on shard 0's SECOND persist leaves its FIRST file
  // authoritative while shards 1-2 publish fresh files. The manifest binds
  // layout, not epochs — per-shard checkpoints are individually atomic and
  // the cut across shards is fuzzy BY DESIGN (exactly the consistency a
  // ShardView offers): restore must succeed with shard 0 at the old state.
  const std::string path = ::testing::TempDir() + "bfc_shardfault_fuzzy.ckpt";
  shard::ShardedSnapshotStore writer(12, 8, 3);
  (void)writer.apply_batch(full_row(12, 0));  // epochs (1, 1, 1)
  writer.persist(path);
  (void)writer.apply_batch(full_row(12, 1));  // epochs (2, 2, 2)
  {
    const svc::fault::Scoped crash(svc::fault::Point::kPersistNoRename, 0, 1);
    writer.persist(path);
  }
  shard::ShardedSnapshotStore victim(12, 8, 3);
  victim.restore(path);
  EXPECT_EQ(victim.shard_snapshot(0)->epoch, 1u);  // old state survives
  EXPECT_EQ(victim.shard_snapshot(1)->epoch, 2u);
  EXPECT_EQ(victim.shard_snapshot(2)->epoch, 2u);
  // Shard 0 owns V1 range [0, 4): 4 edges from the first row only; the
  // other shards carry both rows.
  EXPECT_EQ(victim.shard_snapshot(0)->edges, 4);
  EXPECT_EQ(victim.view()->edges(), 4 + 8 + 8);
  cleanup(path);
}

// ---------------------------------------------------------------------------
// Coalesced-pass failure under racing queries (checked builds)
// ---------------------------------------------------------------------------

class ShardFaultGated : public ::testing::Test {
 protected:
  void SetUp() override {
    if constexpr (!chk::kCheckedEnabled)
      GTEST_SKIP() << "fault injection compiled out (BFC_CHECKED=OFF)";
  }
  void TearDown() override { svc::fault::reset(); }
};

// Review regression for the tip-pass memo's failure path: when the pass one
// query computes blows its deadline, every query coalesced onto it must
// degrade INDEPENDENTLY (no crash, no wedged future), the failed entry must
// leave the memo, and the next query must recompute exact — the failed
// pass's erase must not have poisoned anything inserted after it.
TEST_F(ShardFaultGated, RacingQueriesSurviveAFaultedTipPass) {
  using namespace std::chrono_literals;
  ButterflyService service(8, 6, {.threads = 2, .shards = 2});
  std::vector<EdgeUpdate> k33;
  for (vidx_t u = 0; u < 3; ++u)
    for (vidx_t v = 0; v < 3; ++v) k33.push_back(EdgeUpdate::add(u, v));
  (void)service.apply_updates(k33);  // all butterflies live on shard 0

  // One firing: exactly one tip pass sleeps 80 ms; both racing queries
  // carry 10 ms deadlines, so whichever computes cancels for both.
  const svc::fault::Scoped slow(svc::fault::Point::kSlowKernel, 0, 1, 80);
  const shard::ShardViewPtr view = service.view();
  std::future<QueryResult<count_t>> a =
      service.vertex_tip_v1(0, Request(view, Deadline::after(10ms)));
  std::future<QueryResult<count_t>> b =
      service.vertex_tip_v1(1, Request(view, Deadline::after(10ms)));
  for (auto* fut : {&a, &b}) {
    try {
      const QueryResult<count_t> r = fut->get();
      EXPECT_TRUE(r.degraded());  // approx rung at worst — never a crash
    } catch (const OverloadError&) {
      // Shedding outright is also a legal independent outcome.
    }
  }

  // The fault consumed its firing and the failed pass left the memo: the
  // next query recomputes and answers exact.
  const QueryResult<count_t> exact = service.vertex_tip_v1(0).get();
  EXPECT_EQ(exact.value, 6);
  EXPECT_FALSE(exact.degraded());
}

}  // namespace
}  // namespace bfc::svc
