// Tests for the literal dense specifications of the paper's equations:
// brute-force enumeration == Eq. (7) == pairwise-wedge form, the wedge
// count of Eq. (6), the partitioned category counts of Eqs. (8)-(12), and
// the tip/wing local counts of Eqs. (19) and (25).
#include <gtest/gtest.h>

#include "dense/spec.hpp"
#include "test_helpers.hpp"

namespace bfc::dense {
namespace {

TEST(SpecHandGraphs, SingleButterfly) {
  const DenseMatrix a = {{1, 1}, {1, 1}};  // K_{2,2}
  EXPECT_EQ(butterflies_brute(a), 1);
  EXPECT_EQ(butterflies_spec(a), 1);
  EXPECT_EQ(butterflies_pairwise(a), 1);
  EXPECT_EQ(wedges_spec(a), 2);  // two wedges between the V1 pair
}

TEST(SpecHandGraphs, HexagonHasNoButterflies) {
  const DenseMatrix a = {{1, 1, 0}, {0, 1, 1}, {1, 0, 1}};
  EXPECT_EQ(butterflies_brute(a), 0);
  EXPECT_EQ(butterflies_spec(a), 0);
  EXPECT_EQ(wedges_spec(a), 3);  // each V2 vertex is one wedge point
}

TEST(SpecHandGraphs, StarHasNoButterflies) {
  const DenseMatrix a = {{1, 1, 1, 1}};  // K_{1,4}
  EXPECT_EQ(butterflies_spec(a), 0);
  EXPECT_EQ(wedges_spec(a), 0);  // wedges with endpoints in V1 need 2 rows
}

TEST(SpecHandGraphs, CompleteBipartiteClosedForm) {
  // K_{m,n} has C(m,2)·C(n,2) butterflies.
  for (const auto& [m, n] : {std::pair{2, 2}, {3, 3}, {4, 5}, {2, 7}, {6, 3}}) {
    const DenseMatrix a = DenseMatrix::ones(m, n);
    const count_t expected = choose2(m) * choose2(n);
    EXPECT_EQ(butterflies_spec(a), expected) << "K_{" << m << "," << n << "}";
    EXPECT_EQ(butterflies_brute(a), expected);
  }
}

TEST(SpecHandGraphs, WedgeCountMatchesDegreeFormula) {
  // Wedges with endpoints in V1 = Σ_{v∈V2} C(deg(v), 2).
  const DenseMatrix a = {{1, 1, 1}, {1, 1, 0}, {0, 1, 1}};
  // Column degrees: 2, 3, 2 -> 1 + 3 + 1 = 5 wedges.
  EXPECT_EQ(wedges_spec(a), 5);
}

TEST(SpecHandGraphs, EmptyAndDegenerate) {
  EXPECT_EQ(butterflies_spec(DenseMatrix(0, 0)), 0);
  EXPECT_EQ(butterflies_spec(DenseMatrix(3, 4)), 0);  // no edges
  EXPECT_EQ(butterflies_spec(DenseMatrix::ones(1, 5)), 0);
  EXPECT_EQ(butterflies_spec(DenseMatrix::ones(5, 1)), 0);
}

struct SpecCase {
  vidx_t m, n;
  double p;
  std::uint64_t seed;
};

class SpecAgreement : public ::testing::TestWithParam<SpecCase> {};

TEST_P(SpecAgreement, BruteEqualsSpecEqualsPairwise) {
  const auto& c = GetParam();
  const DenseMatrix a = bfc::testing::random_dense01(c.m, c.n, c.p, c.seed);
  const count_t brute = butterflies_brute(a);
  EXPECT_EQ(butterflies_spec(a), brute);
  EXPECT_EQ(butterflies_pairwise(a), brute);
  // Counting from the V2 side gives the same total.
  EXPECT_EQ(butterflies_spec(a.transpose()), brute);
  EXPECT_EQ(butterflies_pairwise(a.transpose()), brute);
}

TEST_P(SpecAgreement, ColumnPartitionCategoriesSumToTotal) {
  // Eq. (8): Ξ_G = Ξ_L + Ξ_LR + Ξ_R for every split point.
  const auto& c = GetParam();
  const DenseMatrix a = bfc::testing::random_dense01(c.m, c.n, c.p, c.seed);
  const count_t total = butterflies_spec(a);
  for (vidx_t split = 0; split <= c.n; ++split) {
    const PartitionCounts parts = butterflies_col_partition(a, split);
    EXPECT_EQ(parts.total(), total) << "split=" << split;
  }
  // Extreme splits put everything in one category.
  EXPECT_EQ(butterflies_col_partition(a, 0).both_right, total);
  EXPECT_EQ(butterflies_col_partition(a, c.n).both_left, total);
}

TEST_P(SpecAgreement, RowPartitionCategoriesSumToTotal) {
  // Eq. (11): Ξ_G = Ξ_T + Ξ_TB + Ξ_B for every split point.
  const auto& c = GetParam();
  const DenseMatrix a = bfc::testing::random_dense01(c.m, c.n, c.p, c.seed);
  const count_t total = butterflies_spec(a);
  for (vidx_t split = 0; split <= c.m; ++split) {
    const PartitionCounts parts = butterflies_row_partition(a, split);
    EXPECT_EQ(parts.total(), total) << "split=" << split;
  }
  EXPECT_EQ(butterflies_row_partition(a, 0).both_right, total);
  EXPECT_EQ(butterflies_row_partition(a, c.m).both_left, total);
}

TEST_P(SpecAgreement, TipVectorMatchesBruteForce) {
  // s_i (Eq. 19) = number of butterflies containing V1 vertex i, checked by
  // enumerating quadruples.
  const auto& c = GetParam();
  const DenseMatrix a = bfc::testing::random_dense01(c.m, c.n, c.p, c.seed);
  const std::vector<count_t> s = tip_vector_spec(a);
  std::vector<count_t> brute(static_cast<std::size_t>(c.m), 0);
  for (vidx_t i = 0; i < c.m; ++i)
    for (vidx_t j = i + 1; j < c.m; ++j)
      for (vidx_t k = 0; k < c.n; ++k)
        for (vidx_t p = k + 1; p < c.n; ++p)
          if (a(i, k) && a(i, p) && a(j, k) && a(j, p)) {
            ++brute[static_cast<std::size_t>(i)];
            ++brute[static_cast<std::size_t>(j)];
          }
  EXPECT_EQ(s, brute);
  // Σ_i s_i counts each butterfly twice (two V1 vertices each).
  count_t sum = 0;
  for (const count_t v : s) sum += v;
  EXPECT_EQ(sum, 2 * butterflies_spec(a));
}

TEST_P(SpecAgreement, WingSupportMatchesBruteForce) {
  const auto& c = GetParam();
  const DenseMatrix a = bfc::testing::random_dense01(c.m, c.n, c.p, c.seed);
  const DenseMatrix sw = wing_support_spec(a);
  // Brute force: butterflies containing each edge.
  DenseMatrix brute(c.m, c.n);
  for (vidx_t i = 0; i < c.m; ++i)
    for (vidx_t j = i + 1; j < c.m; ++j)
      for (vidx_t k = 0; k < c.n; ++k)
        for (vidx_t p = k + 1; p < c.n; ++p)
          if (a(i, k) && a(i, p) && a(j, k) && a(j, p)) {
            ++brute(i, k);
            ++brute(i, p);
            ++brute(j, k);
            ++brute(j, p);
          }
  EXPECT_EQ(sw, brute);
  // Support is zero wherever there is no edge.
  for (vidx_t i = 0; i < c.m; ++i)
    for (vidx_t k = 0; k < c.n; ++k)
      if (!a(i, k)) EXPECT_EQ(sw(i, k), 0);
}

TEST_P(SpecAgreement, TipVectorV2MatchesTransposedSpec) {
  const auto& c = GetParam();
  const DenseMatrix a = bfc::testing::random_dense01(c.m, c.n, c.p, c.seed);
  EXPECT_EQ(tip_vector_spec_v2(a), tip_vector_spec(a.transpose()));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SpecAgreement,
    ::testing::Values(SpecCase{4, 4, 0.5, 1}, SpecCase{6, 3, 0.6, 2},
                      SpecCase{3, 8, 0.4, 3}, SpecCase{10, 10, 0.3, 4},
                      SpecCase{12, 5, 0.25, 5}, SpecCase{5, 12, 0.7, 6},
                      SpecCase{9, 9, 0.9, 7}, SpecCase{8, 8, 0.1, 8},
                      SpecCase{1, 10, 0.8, 9}, SpecCase{10, 1, 0.8, 10},
                      SpecCase{7, 7, 1.0, 11}, SpecCase{7, 7, 0.0, 12}));

}  // namespace
}  // namespace bfc::dense
