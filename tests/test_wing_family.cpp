// The §IV-derived per-edge support family: all eight partitioned traversal
// variants must equal the Eq. (25) specification (dense and sparse paths).
#include <gtest/gtest.h>

#include "count/local_counts.hpp"
#include "dense/spec.hpp"
#include "peel/wing_family.hpp"
#include "test_helpers.hpp"

namespace bfc::peel {
namespace {

using bfc::testing::complete_bipartite;
using bfc::testing::random_graph;
using bfc::testing::single_butterfly;

TEST(WingFamily, SingleButterfly) {
  const auto g = single_butterfly();
  for (const la::Invariant inv : la::all_invariants()) {
    const auto support = support_family(g, inv);
    ASSERT_EQ(support.size(), 4u);
    for (const count_t s : support) EXPECT_EQ(s, 1) << la::name(inv);
  }
}

TEST(WingFamily, CompleteBipartiteUniform) {
  // Every edge of K_{m,n} lies on (m-1)(n-1) butterflies.
  const auto g = complete_bipartite(4, 5);
  for (const la::Invariant inv :
       {la::Invariant::kInv1, la::Invariant::kInv4, la::Invariant::kInv6}) {
    for (const count_t s : support_family(g, inv))
      EXPECT_EQ(s, 12) << la::name(inv);
  }
}

TEST(WingFamily, NoButterflyGraphs) {
  for (const la::Invariant inv : la::all_invariants()) {
    for (const count_t s : support_family(bfc::testing::hexagon(), inv))
      EXPECT_EQ(s, 0);
    for (const count_t s : support_family(bfc::testing::star(6), inv))
      EXPECT_EQ(s, 0);
    EXPECT_TRUE(support_family(graph::BipartiteGraph{}, inv).empty());
  }
}

struct WingCase {
  vidx_t m, n;
  double p;
  std::uint64_t seed;
};

class WingFamilyAgreement : public ::testing::TestWithParam<WingCase> {};

TEST_P(WingFamilyAgreement, AllInvariantsMatchEq25) {
  const auto& c = GetParam();
  const auto g = random_graph(c.m, c.n, c.p, c.seed);
  const std::vector<count_t> expected = count::support_per_edge(g);
  for (const la::Invariant inv : la::all_invariants())
    EXPECT_EQ(support_family(g, inv), expected) << la::name(inv);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, WingFamilyAgreement,
    ::testing::Values(WingCase{6, 6, 0.5, 1}, WingCase{10, 5, 0.4, 2},
                      WingCase{5, 10, 0.6, 3}, WingCase{13, 13, 0.3, 4},
                      WingCase{15, 7, 0.25, 5}, WingCase{7, 15, 0.7, 6},
                      WingCase{12, 12, 0.95, 7}, WingCase{20, 20, 0.12, 8}));

TEST(WingFamily, SupportSumsToFourTimesButterflies) {
  const auto g = random_graph(16, 14, 0.35, 9);
  const count_t total = dense::butterflies_spec(g.csr().to_dense());
  for (const la::Invariant inv :
       {la::Invariant::kInv2, la::Invariant::kInv7}) {
    count_t sum = 0;
    for (const count_t s : support_family(g, inv)) sum += s;
    EXPECT_EQ(sum, 4 * total) << la::name(inv);
  }
}

}  // namespace
}  // namespace bfc::peel
