// Fixture suite for tools/analyze (bfc-analyze): one minimal positive and
// one negative fixture per rule, suppression-comment handling, and
// baseline-diff semantics — all driven in-process through the same engine
// the CLI uses, so the CLI is a thin shell over tested code.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analyzer.hpp"
#include "cache.hpp"
#include "flow.hpp"
#include "model.hpp"
#include "obs/json.hpp"
#include "registry.hpp"
#include "rules.hpp"

namespace bfc::analyze {
namespace {

/// Minimal registry shared by the metric/span fixtures.
Registry test_registry() {
  return Registry::parse("tools/analyze/metrics.registry",
                         "metric svc.cache_hits\n"
                         "metric svc.slo.violations.<kind>\n"
                         "metric svc.shard.<k>.publishes\n"
                         "span svc.query.<kind>\n"
                         "span svc.publish\n"
                         "tag epoch\n");
}

std::vector<Finding> analyze_one(const std::string& path,
                                 const std::string& code,
                                 const Registry* reg = nullptr) {
  std::vector<SourceFile> files;
  files.push_back(SourceFile::from_string(path, code));
  return run_rules(files, reg);
}

std::vector<Finding> of_rule(const std::vector<Finding>& all,
                             const std::string& rule) {
  std::vector<Finding> out;
  for (const Finding& f : all)
    if (f.rule == rule) out.push_back(f);
  return out;
}

// ---------------------------------------------------------------- lexer

TEST(AnalyzeLexer, TokensCarryPositionsAndKinds) {
  const LexedFile lf = lex("int x = 42;\nstd::mutex m;  // trailing\n");
  ASSERT_GE(lf.tokens.size(), 9u);
  EXPECT_TRUE(lf.tokens[0].ident("int"));
  EXPECT_EQ(lf.tokens[0].line, 1);
  EXPECT_TRUE(lf.tokens[3].is(Tok::kNumber, "42"));
  EXPECT_EQ(lf.comments.count(2), 1u);
  EXPECT_TRUE(lf.code_lines.count(1) != 0 && lf.code_lines.count(2) != 0);
}

TEST(AnalyzeLexer, CommentsAndStringsAreNotCode) {
  // The grep-era false positives: the primitive name inside a comment, a
  // string literal, and a /* block */ must produce no identifier tokens.
  const LexedFile lf = lex(
      "// std::mutex in a comment\n"
      "const char* s = \"std::mutex\";\n"
      "/* std::scoped_lock */\n");
  for (const Token& t : lf.tokens) EXPECT_FALSE(t.ident("mutex"));
  EXPECT_EQ(lf.code_lines.count(1), 0u);
  EXPECT_EQ(lf.code_lines.count(3), 0u);
}

TEST(AnalyzeLexer, RawStringsAndBracketMatching) {
  const LexedFile lf = lex("f(R\"x(a(b)x\", g[h[i]], {1, 2});");
  ASSERT_FALSE(lf.tokens.empty());
  EXPECT_TRUE(lf.tokens[0].ident("f"));
  ASSERT_TRUE(lf.tokens[1].punct("("));
  const std::size_t close = match_bracket(lf.tokens, 1);
  ASSERT_LT(close, lf.tokens.size());
  EXPECT_TRUE(lf.tokens[close].punct(")"));
  EXPECT_TRUE(lf.tokens[close + 1].punct(";"));
}

// ---------------------------------------------------------------- raw-sync

TEST(AnalyzeRawSync, FiresOnStdPrimitiveInSrc) {
  const auto fs = of_rule(
      analyze_one("src/svc/foo.cpp", "static std::mutex mu;\n"), "raw-sync");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].line, 1);
}

TEST(AnalyzeRawSync, QuietOnWrapperLayerCommentsAndBench) {
  // The wrapper layer itself, commented/string mentions, and non-src trees
  // are all out of scope.
  EXPECT_TRUE(of_rule(analyze_one("src/util/sync.hpp",
                                  "using Mutex = std::mutex;\n"),
                      "raw-sync")
                  .empty());
  EXPECT_TRUE(of_rule(analyze_one("src/svc/foo.cpp",
                                  "// std::mutex\nbfc::Mutex mu;\n"),
                      "raw-sync")
                  .empty());
  EXPECT_TRUE(of_rule(analyze_one("bench/foo.cpp", "std::mutex mu;\n"),
                      "raw-sync")
                  .empty());
}

TEST(AnalyzeRawSync, LegacySuppressionSpellingStillWorks) {
  EXPECT_TRUE(of_rule(analyze_one("src/svc/foo.cpp",
                                  "std::mutex mu;  // bfc-lint: raw-sync-ok\n"),
                      "raw-sync")
                  .empty());
}

// ----------------------------------------------------------------- seq-cst

TEST(AnalyzeSeqCst, FiresOnOrderlessAtomicOp) {
  const auto fs = of_rule(
      analyze_one("src/svc/foo.cpp", "auto v = hits.load();\n"), "seq-cst");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_NE(fs[0].message.find("load"), std::string::npos);
}

TEST(AnalyzeSeqCst, QuietWithExplicitOrderAccessorsAndLegacyMarker) {
  EXPECT_TRUE(
      of_rule(analyze_one("src/svc/foo.cpp",
                          "auto v = hits.load(std::memory_order_relaxed);\n"
                          "hits.fetch_add(1, std::memory_order_relaxed);\n"),
              "seq-cst")
          .empty());
  // Zero-argument store() is some other class's accessor, not atomic store.
  EXPECT_TRUE(of_rule(analyze_one("src/shard/foo.cpp",
                                  "auto& s = handle->store();\n"),
                      "seq-cst")
                  .empty());
  EXPECT_TRUE(of_rule(analyze_one("src/obs/foo.cpp",
                                  "gen.store(1);  // seq_cst: publish fence "
                                  "pairs with reader load\n"),
                      "seq-cst")
                  .empty());
}

TEST(AnalyzeSeqCst, SuppressionOnClosingParenLineOfMultiLineCall) {
  EXPECT_TRUE(of_rule(analyze_one("src/svc/foo.cpp",
                                  "epoch.store(\n"
                                  "    next);  // seq_cst: release handoff\n"),
                      "seq-cst")
                  .empty());
}

// ------------------------------------------------------ checked-accumulation

TEST(AnalyzeCheckedAccum, FiresOnRawCompoundAndSelfAssign) {
  const std::string code =
      "count_t total = 0;\n"
      "total += choose2(n);\n"
      "total = total + other;\n"
      "stats.butterflies += choose2(c);\n";
  const auto fs =
      of_rule(analyze_one("src/count/foo.cpp", code), "checked-accumulation");
  ASSERT_EQ(fs.size(), 3u);
  EXPECT_EQ(fs[0].line, 2);
  EXPECT_EQ(fs[1].line, 3);
  EXPECT_EQ(fs[2].line, 4);  // member named like a butterfly count
}

TEST(AnalyzeCheckedAccum, QuietOnCheckedCallsIncrementsAndOtherTypes) {
  const std::string code =
      "count_t total = 0;\n"
      "total = chk::checked_add(total, choose2(n));\n"
      "++total;\n"
      "total = g.edges();\n"      // plain reassignment, no self-arithmetic
      "std::size_t bytes = 0;\n"
      "bytes += 4096;\n";  // not a count_t, not butterfly/wedge-named
  EXPECT_TRUE(
      of_rule(analyze_one("src/count/foo.cpp", code), "checked-accumulation")
          .empty());
}

TEST(AnalyzeCheckedAccum, SuppressionAndExemptDirectories) {
  EXPECT_TRUE(of_rule(analyze_one(
                          "src/count/foo.cpp",
                          "count_t k = 1;\n"
                          "// bfc-analyze: checked-accumulation-ok bounded\n"
                          "k *= 4;\n"),
                      "checked-accumulation")
                  .empty());
  // chk/ implements the checked ops; obs/ and util/ never hold counts.
  EXPECT_TRUE(of_rule(analyze_one("src/chk/foo.cpp",
                                  "count_t t = 0;\nt += 1ull;\n"),
                      "checked-accumulation")
                  .empty());
}

// ---------------------------------------------------------- epoch-discipline

TEST(AnalyzeEpoch, FiresOnRawGetOfSnapshotPtr) {
  const std::string code =
      "void f(const SnapshotPtr& snap) {\n"
      "  use(snap.get());\n"
      "}\n";
  const auto fs =
      of_rule(analyze_one("src/svc/foo.cpp", code), "epoch-discipline");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].line, 2);
}

TEST(AnalyzeEpoch, FiresOnCacheKeyWithoutEpochComponent) {
  const auto fs = of_rule(
      analyze_one("src/svc/foo.cpp", "cache.put(CacheKey{kind, a, b}, r);\n"),
      "epoch-discipline");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_NE(fs[0].message.find("CacheKey"), std::string::npos);
}

TEST(AnalyzeEpoch, QuietOnKeyedCacheSharedPtrUseAndStructDef) {
  const std::string code =
      "struct CacheKey { std::uint64_t epoch; int kind; };\n"
      "void f(const SnapshotPtr& snap) {\n"
      "  cache.put(CacheKey{snap->epoch, kind}, r);\n"
      "  run(snap);\n"
      "}\n"
      "CacheKey k{view->signature, kind};\n";
  EXPECT_TRUE(
      of_rule(analyze_one("src/svc/foo.cpp", code), "epoch-discipline")
          .empty());
}

// ---------------------------------------------- cancellation-checkpoint

TEST(AnalyzeCancel, FiresWhenTokenNeverConsulted) {
  const std::string code =
      "count_t kernel(const Graph& g, const CancelToken& cancel) {\n"
      "  count_t t = 0;\n"
      "  for (vidx_t v = 0; v < g.n1(); ++v) t = step(t, v);\n"
      "  return t;\n"
      "}\n";
  const auto fs = of_rule(analyze_one("src/la/foo.cpp", code),
                          "cancellation-checkpoint");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_NE(fs[0].message.find("cancel"), std::string::npos);
}

TEST(AnalyzeCancel, QuietOnCheckpointForwardingAndDeclarations) {
  const std::string code =
      // consulted directly
      "void a(const CancelToken& cancel) { cancel.checkpoint(\"a\"); }\n"
      // forwarded to a callee
      "void b(const CancelToken& cancel) { inner(g, cancel); }\n"
      // pure declaration: no body to check
      "void c(const CancelToken& cancel);\n"
      // member/local declarations are not parameters
      "struct S { CancelToken tok; };\n";
  EXPECT_TRUE(of_rule(analyze_one("src/count/foo.cpp", code),
                      "cancellation-checkpoint")
                  .empty());
}

// ------------------------------------------------------------ metric-registry

TEST(AnalyzeMetricRegistry, FiresOnUnregisteredLiteral) {
  const Registry reg = test_registry();
  const auto fs = of_rule(analyze_one("src/svc/foo.cpp",
                                      "BFC_COUNT_ADD(\"svc.cache_hitz\", 1);\n",
                                      &reg),
                          "metric-registry");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_NE(fs[0].message.find("svc.cache_hitz"), std::string::npos);
}

TEST(AnalyzeMetricRegistry, QuietOnRegisteredPlaceholderAndPrefixForms) {
  const Registry reg = test_registry();
  const std::string code =
      "BFC_COUNT_ADD(\"svc.cache_hits\", 1);\n"
      "BFC_COUNT_ADD(\"svc.slo.violations.tip_v1\", 1);\n"
      // dynamic family: prefix literal + runtime shard index
      "metrics.counter(\"svc.shard.\" + std::to_string(k) + \".publishes\")"
      ".add(1);\n"
      // second argument is a value, not a metric name
      "BFC_COUNT_ADD(\"svc.cache_hits\", hits);\n";
  EXPECT_TRUE(
      of_rule(analyze_one("src/svc/foo.cpp", code, &reg), "metric-registry")
          .empty());
}

TEST(AnalyzeMetricRegistry, RegistryEntriesMustBeDocumented) {
  const Registry reg = test_registry();
  const std::string docs =
      "`svc.cache_hits` counts hits. `svc.slo.violations.<kind>` per kind. "
      "`svc.shard.<k>.publishes` per shard. `svc.query.<kind>` spans and "
      "the `svc.publish` root span.";
  EXPECT_TRUE(check_registry_documented(reg, docs).empty());
  const auto missing = check_registry_documented(reg, "nothing here");
  // every metric/span entry (tags are exempt) is now undocumented
  EXPECT_EQ(missing.size(), 5u);
  EXPECT_EQ(missing[0].rule, "metric-registry");
  EXPECT_EQ(missing[0].file, "tools/analyze/metrics.registry");
}

// --------------------------------------------------------------- span-pairing

TEST(AnalyzeSpanPairing, FiresOnNonLiteralNameAndUnknownNames) {
  const Registry reg = test_registry();
  const auto non_literal = of_rule(
      analyze_one("src/svc/foo.cpp",
                  "obs::Span span(root_context(req), name_variable);\n", &reg),
      "span-pairing");
  ASSERT_EQ(non_literal.size(), 1u);
  EXPECT_NE(non_literal[0].message.find("literal"), std::string::npos);

  const auto unknown = of_rule(
      analyze_one("src/svc/foo.cpp",
                  "obs::Span span(ctx, \"svc.mystery\");\n"
                  "sp->tag(\"not_a_tag\", \"v\");\n"
                  "BFC_TRACE_SCOPE(\"svc.unknown_scope\");\n",
                  &reg),
      "span-pairing");
  EXPECT_EQ(unknown.size(), 3u);
}

TEST(AnalyzeSpanPairing, QuietOnRegisteredNamesDeclsAndNonNamespaced) {
  const Registry reg = test_registry();
  const std::string code =
      "obs::Span span(root_context(req), \"svc.query.global\");\n"
      "span.tag(\"epoch\", std::to_string(e));\n"
      "BFC_TRACE_SCOPE(\"svc.publish\");\n"
      // non-namespaced names are free-form (bench.* / graph.* scopes)
      "BFC_TRACE_SCOPE(\"graph.read_mtx\");\n"
      // declarations mention parameter types, not span names
      "SpanPtr open_span(const TraceContext& ctx, const char* name);\n"
      "void span_tag(const SpanPtr& span, const char* key, "
      "std::string_view value);\n";
  EXPECT_TRUE(
      of_rule(analyze_one("src/svc/foo.cpp", code, &reg), "span-pairing")
          .empty());
}

// ---------------------------------------------------------------- suppression

TEST(AnalyzeSuppression, MalformedMarkersAreFindings) {
  const std::string code =
      "count_t t = 0;\n"
      "t += 1;  // bfc-analyze: checked-accumulation-ok\n"  // missing WHY
      "x();     // bfc-analyze: no-such-rule-ok because reasons\n";
  const auto all = analyze_one("src/count/foo.cpp", code);
  const auto sup = of_rule(all, "suppression");
  ASSERT_EQ(sup.size(), 2u);
  EXPECT_NE(sup[0].message.find("rationale"), std::string::npos);
  EXPECT_NE(sup[1].message.find("unknown rule"), std::string::npos);
  // ... and the rationale-less marker does NOT waive the real finding.
  EXPECT_EQ(of_rule(all, "checked-accumulation").size(), 1u);
}

TEST(AnalyzeSuppression, MarkerOnOwnLineCoversNextCodeLine) {
  const std::string code =
      "count_t t = 0;\n"
      "// bfc-analyze: checked-accumulation-ok fixture-bounded input\n"
      "t += 1;\n"
      "t += 2;\n";  // NOT covered: marker only reaches one line down
  const auto fs =
      of_rule(analyze_one("src/count/foo.cpp", code), "checked-accumulation");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].line, 4);
}

// ------------------------------------------------------------- registry match

TEST(AnalyzeRegistry, SegmentMatchingAndParsing) {
  EXPECT_TRUE(registry_name_matches("svc.slo.violations.<kind>",
                                    "svc.slo.violations.edge"));
  EXPECT_FALSE(registry_name_matches("svc.slo.violations.<kind>",
                                     "svc.slo.violations"));
  EXPECT_FALSE(registry_name_matches("svc.cache_hits", "svc.cache_hits.x"));
  // prefix literal (source built the tail at runtime)
  EXPECT_TRUE(registry_name_matches("svc.shard.<k>.publishes", "svc.shard."));
  EXPECT_FALSE(registry_name_matches("svc.queries", "obs.queries"));

  std::vector<std::pair<int, std::string>> errors;
  const Registry reg = Registry::parse(
      "r", "# comment\n\nmetric a.b\nbogus x\nspan s.t extra\n", &errors);
  EXPECT_EQ(reg.entries.size(), 1u);
  EXPECT_EQ(errors.size(), 2u);
}

// ------------------------------------------------------------- baseline diff

TEST(AnalyzeBaseline, DiffWaivesExactlyTheBaselinedOccurrences) {
  const std::string one = "count_t t = 0;\nt += 1;\n";
  const std::string two = "count_t t = 0;\nt += 1;\nt += 1;\n";
  const auto before = analyze_one("src/count/foo.cpp", one);
  ASSERT_EQ(before.size(), 1u);
  const Baseline base = Baseline::parse(render_baseline(before));
  ASSERT_EQ(base.fingerprints.size(), 1u);

  // Same code, shifted lines: fingerprints are content-based, still waived.
  const auto shifted =
      analyze_one("src/count/foo.cpp", "// pad\n// pad\n" + one);
  EXPECT_TRUE(diff_baseline(shifted, base).empty());

  // A SECOND identical violation gets a new ordinal: only one is waived.
  const auto doubled = analyze_one("src/count/foo.cpp", two);
  ASSERT_EQ(doubled.size(), 2u);
  const auto fresh = diff_baseline(doubled, base);
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_NE(fresh[0].fingerprint, base.fingerprints[0]);
}

TEST(AnalyzeBaseline, RejectsUnknownVersion) {
  EXPECT_THROW((void)Baseline::parse("{\"version\": 2, \"findings\": []}"),
               std::exception);
}

// ----------------------------------------------------------------- renderers

TEST(AnalyzeRender, JsonAndSarifAreWellFormed) {
  const auto fs = analyze_one("src/count/foo.cpp", "count_t t = 0;\nt += 1;\n");
  ASSERT_EQ(fs.size(), 1u);

  const obs::Json doc = obs::Json::parse(render_json(fs));
  EXPECT_EQ(doc.at("count").as_int(), 1);
  EXPECT_EQ(doc.at("findings").at(0).at("rule").as_string(),
            "checked-accumulation");

  const obs::Json sarif = obs::Json::parse(render_sarif(fs));
  EXPECT_EQ(sarif.at("version").as_string(), "2.1.0");
  const obs::Json& result = sarif.at("runs").at(0).at("results").at(0);
  EXPECT_EQ(result.at("ruleId").as_string(), "checked-accumulation");
  EXPECT_EQ(result.at("locations")
                .at(0)
                .at("physicalLocation")
                .at("artifactLocation")
                .at("uri")
                .as_string(),
            "src/count/foo.cpp");
  EXPECT_FALSE(
      result.at("partialFingerprints").at("bfcAnalyze/v1").as_string().empty());
  // the driver advertises the full rule catalog
  EXPECT_EQ(sarif.at("runs")
                .at(0)
                .at("tool")
                .at("driver")
                .at("rules")
                .size(),
            all_rules().size());
}

// ------------------------------------------------------------- flow model

TEST(AnalyzeFlow, ExtractsQualifiedFunctionsAndParams) {
  const std::string code =
      "std::uint64_t RemoteShard::query_wedges(vidx_t u, int timeout_ms) {\n"
      "  return 0;\n"
      "}\n";
  const SourceFile sf = SourceFile::from_string("src/shard/x.cpp", code);
  const auto fns = extract_functions(sf);
  ASSERT_EQ(fns.size(), 1u);
  EXPECT_EQ(fns[0].name, "query_wedges");
  ASSERT_EQ(fns[0].params.size(), 2u);
  EXPECT_EQ(fns[0].params[1].name, "timeout_ms");
}

TEST(AnalyzeFlow, ParsesBranchesLoopsAndTry) {
  const std::string code =
      "void f(int x) {\n"
      "  if (x > 0) { g(); } else { h(); }\n"
      "  for (int i = 0; i < x; ++i) { g(); }\n"
      "  try { g(); } catch (...) { h(); }\n"
      "}\n";
  const SourceFile sf = SourceFile::from_string("src/svc/x.cpp", code);
  const auto fns = extract_functions(sf);
  ASSERT_EQ(fns.size(), 1u);
  ASSERT_EQ(fns[0].body.size(), 3u);
  EXPECT_EQ(fns[0].body[0].kind, Stmt::Kind::kIf);
  EXPECT_EQ(fns[0].body[1].kind, Stmt::Kind::kLoop);
  EXPECT_EQ(fns[0].body[2].kind, Stmt::Kind::kTry);
}

// --------------------------------------------------------- lifetime-escape

// Regression: the shipped Cursor bug — a wire::Cursor constructed straight
// from the temporary std::string returned by rpc(); the buffer dies at the
// end of the statement and every subsequent read is use-after-free.
TEST(AnalyzeLifetime, FiresOnCursorOverTemporaryRpcReply) {
  const std::string code =
      "std::uint64_t RemoteShard::query(vidx_t u) {\n"
      "  wire::Cursor c(rpc(wire::Kind::kQuery, encode(u)));\n"
      "  return c.u64();\n"
      "}\n";
  const auto fs = of_rule(analyze_one("src/shard/remote.cpp", code),
                          "lifetime-escape");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].line, 2);
  EXPECT_NE(fs[0].message.find("rpc"), std::string::npos);
}

TEST(AnalyzeLifetime, QuietOnTheFixedNamedOwnerShape) {
  const std::string code =
      "std::uint64_t RemoteShard::query(vidx_t u) {\n"
      "  const std::string reply = rpc(wire::Kind::kQuery, encode(u));\n"
      "  wire::Cursor c(reply);\n"
      "  return c.u64();\n"
      "}\n";
  EXPECT_TRUE(of_rule(analyze_one("src/shard/remote.cpp", code),
                      "lifetime-escape")
                  .empty());
}

TEST(AnalyzeLifetime, FiresOnViewBoundToSubstrAndStrTemporaries) {
  const std::string code =
      "void f(const std::string& s, std::ostringstream& oss) {\n"
      "  std::string_view head = s.substr(0, 4);\n"
      "  std::string_view all = oss.str();\n"
      "}\n";
  const auto fs =
      of_rule(analyze_one("src/svc/x.cpp", code), "lifetime-escape");
  ASSERT_EQ(fs.size(), 2u);
}

TEST(AnalyzeLifetime, QuietOnSpanReturningAccessorsAndViewSubstr) {
  // The codebase's dominant idiom: accessors handing out spans over
  // long-lived graph buffers, and substr on something already a view.
  const std::string code =
      "void f(const CsrView& g, std::string_view sv, vidx_t u) {\n"
      "  const std::span<const vidx_t> nu = g.neighbors_of_v1(u);\n"
      "  std::string_view tail = sv.substr(2);\n"
      "  use(nu, tail);\n"
      "}\n";
  EXPECT_TRUE(
      of_rule(analyze_one("src/svc/x.cpp", code), "lifetime-escape").empty());
}

TEST(AnalyzeLifetime, FiresOnReturningViewOfLocalOwner) {
  const std::string code =
      "std::string_view render_tag() {\n"
      "  std::string s = compose();\n"
      "  return s;\n"
      "}\n"
      "std::span<const char> frame() {\n"
      "  std::vector<char> buf(16);\n"
      "  std::span<const char> v = buf;\n"
      "  return v;\n"
      "}\n";
  const auto fs =
      of_rule(analyze_one("src/svc/x.cpp", code), "lifetime-escape");
  ASSERT_EQ(fs.size(), 2u);
  EXPECT_EQ(fs[0].line, 3);
  EXPECT_EQ(fs[1].line, 8);
}

TEST(AnalyzeLifetime, QuietOnReturningViewOfParamOrMember) {
  const std::string code =
      "std::string_view name(const std::string& stored) {\n"
      "  std::string_view v = stored;\n"
      "  return v;\n"
      "}\n";
  EXPECT_TRUE(
      of_rule(analyze_one("src/svc/x.cpp", code), "lifetime-escape").empty());
}

TEST(AnalyzeLifetime, SuppressionWithRationaleSilences) {
  const std::string code =
      "void f() {\n"
      "  // bfc-analyze: lifetime-escape-ok consumed before end of statement\n"
      "  wire::Cursor c(rpc(wire::Kind::kPing, \"\"));\n"
      "}\n";
  EXPECT_TRUE(of_rule(analyze_one("src/shard/remote.cpp", code),
                      "lifetime-escape")
                  .empty());
}

// ------------------------------------------------------------ fd-lifecycle

// Regression: the shipped call_host double-close — the happy path closes
// the socket, then the tail of the try body throws and the catch closes it
// again. The fix (sentinel + guard) must stay quiet.
TEST(AnalyzeFd, FiresOnDoubleCloseAcrossCatch) {
  const std::string code =
      "std::string call_host(const std::string& path, int timeout_ms) {\n"
      "  int fd = connect_unix(path, timeout_ms);\n"
      "  try {\n"
      "    send_frame(fd, msg, timeout_ms);\n"
      "    Frame f = recv_frame(fd, timeout_ms);\n"
      "    ::close(fd);\n"
      "    decode(f);\n"
      "    return f.payload;\n"
      "  } catch (...) {\n"
      "    ::close(fd);\n"
      "    throw;\n"
      "  }\n"
      "}\n";
  const auto fs =
      of_rule(analyze_one("src/shard/transport.cpp", code), "fd-lifecycle");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].line, 10);
  EXPECT_NE(fs[0].message.find("close"), std::string::npos);
}

TEST(AnalyzeFd, QuietOnSentinelGuardedClose) {
  const std::string code =
      "std::string call_host(const std::string& path, int timeout_ms) {\n"
      "  int fd = connect_unix(path, timeout_ms);\n"
      "  try {\n"
      "    send_frame(fd, msg, timeout_ms);\n"
      "    Frame f = recv_frame(fd, timeout_ms);\n"
      "    ::close(fd);\n"
      "    fd = -1;\n"
      "    decode(f);\n"
      "    return f.payload;\n"
      "  } catch (...) {\n"
      "    if (fd >= 0) ::close(fd);\n"
      "    throw;\n"
      "  }\n"
      "}\n";
  EXPECT_TRUE(of_rule(analyze_one("src/shard/transport.cpp", code),
                      "fd-lifecycle")
                  .empty());
}

TEST(AnalyzeFd, FiresOnLeakAtEarlyReturnAndEndOfFunction) {
  const std::string code =
      "void a(const char* p) {\n"
      "  int fd = ::open(p, 0);\n"
      "  if (fd < 0) return;\n"
      "  if (parse(p)) return;\n"  // leaks fd
      "  ::close(fd);\n"
      "}\n"
      "void b(const char* p) {\n"
      "  int fd = ::open(p, 0);\n"
      "  use(fd);\n"
      "}\n";  // leaks fd at end of function
  const auto fs = of_rule(analyze_one("src/obs/x.cpp", code), "fd-lifecycle");
  ASSERT_EQ(fs.size(), 2u);
}

TEST(AnalyzeFd, QuietOnOwnershipTransferAndGuardedPaths) {
  const std::string code =
      "int listen_unix(const std::string& path) {\n"
      "  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);\n"
      "  require(fd >= 0, \"socket\");\n"
      "  if (::bind(fd, addr, len) != 0) {\n"
      "    ::close(fd);\n"
      "    require(false, \"bind\");\n"
      "  }\n"
      "  return fd;\n"
      "}\n"
      "void adopt(const char* p) {\n"
      "  int fd = ::open(p, 0);\n"
      "  if (fd < 0) return;\n"
      "  member_fd_ = fd;\n"
      "}\n";
  EXPECT_TRUE(
      of_rule(analyze_one("src/shard/transport.cpp", code), "fd-lifecycle")
          .empty());
}

TEST(AnalyzeFd, FiresOnUseAfterClose) {
  const std::string code =
      "void f(const char* p) {\n"
      "  int fd = ::open(p, 0);\n"
      "  if (fd < 0) return;\n"
      "  ::close(fd);\n"
      "  ::send(fd, \"x\", 1, 0);\n"
      "}\n";
  const auto fs = of_rule(analyze_one("src/obs/x.cpp", code), "fd-lifecycle");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].line, 5);
}

// -------------------------------------------------------- retry-idempotence

// Regression: a backoff loop retrying apply() — a lost reply after a
// successful apply double-applies the batch on the next attempt.
TEST(AnalyzeRetry, FiresOnSingleAttemptCallInsideRetryLoop) {
  const std::string code =
      "void push(RemoteShard& sh, const Batch& b) {\n"
      "  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {\n"
      "    try {\n"
      "      sh.apply(b);\n"
      "      return;\n"
      "    } catch (const std::exception&) {\n"
      "      std::this_thread::sleep_for(backoff(attempt));\n"
      "    }\n"
      "  }\n"
      "}\n";
  const auto fs =
      of_rule(analyze_one("src/shard/x.cpp", code), "retry-idempotence");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].line, 4);
}

TEST(AnalyzeRetry, QuietOnIdempotentRetryAndRethrowingCatch) {
  const std::string code =
      // Idempotent probe: retrying query/ping is safe.
      "void wait_up(RemoteShard& sh) {\n"
      "  for (int attempt = 0; attempt < 5; ++attempt) {\n"
      "    try {\n"
      "      sh.ping();\n"
      "      return;\n"
      "    } catch (const std::exception&) {\n"
      "      std::this_thread::sleep_for(std::chrono::milliseconds(5));\n"
      "    }\n"
      "  }\n"
      "}\n"
      // Catch rethrows = not a retry of the body; single-attempt is fine.
      "void once(RemoteShard& sh, const Batch& b) {\n"
      "  for (int attempt = 0; attempt < 5; ++attempt) {\n"
      "    try {\n"
      "      sh.apply(b);\n"
      "      return;\n"
      "    } catch (const std::exception&) {\n"
      "      throw;\n"
      "    }\n"
      "  }\n"
      "}\n";
  EXPECT_TRUE(
      of_rule(analyze_one("src/shard/x.cpp", code), "retry-idempotence")
          .empty());
}

// ----------------------------------------------------- deadline-propagation

TEST(AnalyzeDeadline, FiresWhenDeadlineParamNotThreaded) {
  const std::string code =
      "bool read_all(int fd, char* p, std::size_t n, int timeout_ms) {\n"
      "  return ::recv(fd, p, n, 0) == static_cast<ssize_t>(n);\n"
      "}\n";
  const auto fs = of_rule(analyze_one("src/shard/transport.cpp", code),
                          "deadline-propagation");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_NE(fs[0].message.find("timeout_ms"), std::string::npos);
}

TEST(AnalyzeDeadline, QuietWhenThreadedDerivedOrPacedByPoll) {
  const std::string code =
      // Derived budget threaded into poll; the recv after a bounded poll
      // is paced and allowed.
      "bool read_all(int fd, char* p, std::size_t n, int timeout_ms) {\n"
      "  const int wait_ms = remaining(timeout_ms);\n"
      "  if (::poll(&pfd, 1, wait_ms) <= 0) return false;\n"
      "  return ::recv(fd, p, n, 0) == static_cast<ssize_t>(n);\n"
      "}\n"
      // WNOHANG-style flags satisfy on their own.
      "void reap(int timeout_ms) {\n"
      "  ::waitpid(-1, nullptr, WNOHANG);\n"
      "}\n";
  EXPECT_TRUE(of_rule(analyze_one("src/shard/transport.cpp", code),
                      "deadline-propagation")
                  .empty());
}

TEST(AnalyzeDeadline, FiresOnBlockingCallUnderLockGuard) {
  const std::string code =
      "void Supervisor::reap(pid_t p) {\n"
      "  const MutexLock lock(mu_);\n"
      "  ::waitpid(p, nullptr, 0);\n"
      "}\n";
  const auto fs = of_rule(analyze_one("src/shard/supervisor.cpp", code),
                          "deadline-propagation");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_NE(fs[0].message.find("lock"), std::string::npos);
}

TEST(AnalyzeDeadline, QuietWhenGuardScopeEndsOrUnlocksFirst) {
  const std::string code =
      // Block-scoped guard released before the blocking leg.
      "void a(pid_t p) {\n"
      "  {\n"
      "    const MutexLock lock(mu_);\n"
      "    doomed_.push_back(p);\n"
      "  }\n"
      "  ::waitpid(p, nullptr, 0);\n"
      "}\n"
      // Explicit unlock() before, lock() after.
      "void b(Task& task) {\n"
      "  MutexLock lock(mu_);\n"
      "  lock.unlock();\n"
      "  task.rpc(\"go\");\n"
      "  lock.lock();\n"
      "}\n";
  EXPECT_TRUE(of_rule(analyze_one("src/svc/executor.cpp", code),
                      "deadline-propagation")
                  .empty());
}

// -------------------------------------------------------- incremental cache

TEST(AnalyzeCache, HitsOnUnchangedContentMissesOnEdit) {
  const std::string clean = "void f() { g(); }\n";
  const std::string dirty = "count_t t = 0;\nt += 1;\n";
  std::vector<SourceFile> files;
  files.push_back(SourceFile::from_string("src/a.cpp", clean));
  files.push_back(SourceFile::from_string("src/count/b.cpp", dirty));

  Cache cache;
  CacheStats cold;
  const auto first = run_rules_cached(files, nullptr, cache, cold);
  EXPECT_EQ(cold.hits, 0u);
  EXPECT_EQ(cold.misses, 2u);
  ASSERT_EQ(first.size(), 1u);  // the checked-accumulation hit in b.cpp

  // Unchanged tree: all hits, identical findings (fingerprints included).
  CacheStats warm;
  const auto second = run_rules_cached(files, nullptr, cache, warm);
  EXPECT_EQ(warm.hits, 2u);
  EXPECT_EQ(warm.misses, 0u);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].fingerprint, first[0].fingerprint);
  EXPECT_EQ(second[0].message, first[0].message);

  // Edit one file: exactly one miss, and the cached findings still replay
  // for the untouched file.
  files[0] = SourceFile::from_string("src/a.cpp", "void f() { h(); }\n");
  CacheStats edited;
  const auto third = run_rules_cached(files, nullptr, cache, edited);
  EXPECT_EQ(edited.hits, 1u);
  EXPECT_EQ(edited.misses, 1u);
  EXPECT_EQ(third.size(), 1u);
}

TEST(AnalyzeCache, ToolHashChangeInvalidatesWholesale) {
  std::vector<SourceFile> files;
  files.push_back(SourceFile::from_string("src/a.cpp", "void f() {}\n"));
  Cache cache;
  CacheStats cold;
  (void)run_rules_cached(files, nullptr, cache, cold);
  ASSERT_EQ(cold.misses, 1u);

  // A cache written by a different rule set / registry must not replay.
  cache.tool_hash = "0000000000000000";
  CacheStats stale;
  (void)run_rules_cached(files, nullptr, cache, stale);
  EXPECT_EQ(stale.hits, 0u);
  EXPECT_EQ(stale.misses, 1u);
  EXPECT_EQ(cache.tool_hash, compute_tool_hash(nullptr));
}

TEST(AnalyzeCache, RenderParseRoundTripAndCorruptInputIsCold) {
  std::vector<SourceFile> files;
  files.push_back(SourceFile::from_string("src/count/b.cpp",
                                          "count_t t = 0;\nt += 1;\n"));
  Cache cache;
  CacheStats s1;
  (void)run_rules_cached(files, nullptr, cache, s1);

  const Cache reloaded = Cache::parse(cache.render());
  EXPECT_EQ(reloaded.tool_hash, cache.tool_hash);
  ASSERT_EQ(reloaded.files.size(), 1u);
  const auto& entry = reloaded.files.at("src/count/b.cpp");
  EXPECT_EQ(entry.content_hash,
            cache.files.at("src/count/b.cpp").content_hash);
  ASSERT_EQ(entry.findings.size(), 1u);
  EXPECT_EQ(entry.findings[0].rule, "checked-accumulation");

  // Corrupt JSON never throws out of load(): worst case is a cold run.
  EXPECT_THROW((void)Cache::parse("not json"), std::exception);
}

}  // namespace
}  // namespace bfc::analyze
