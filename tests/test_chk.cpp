// Corruption-injection tests for the checked-build subsystem (src/chk/).
// Each test hands a validator a deliberately broken object — unsorted CSR
// row, out-of-bounds column, broken CSC mirror, drifted snapshot counts,
// epoch regression — and asserts the corresponding check fires with
// chk::CheckError. The validators are always compiled, so these run in
// every build lane; only the overflow tests need BFC_CHECKED=ON (the
// checked helpers collapse to plain arithmetic otherwise) and skip when
// the checks are compiled out.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "chk/check.hpp"
#include "chk/checked_math.hpp"
#include "chk/validate.hpp"
#include "count/baselines.hpp"
#include "count/dynamic.hpp"
#include "gen/generators.hpp"
#include "graph/bipartite_graph.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "svc/snapshot.hpp"

namespace bfc {
namespace {

constexpr count_t kMax = std::numeric_limits<count_t>::max();
constexpr count_t kMin = std::numeric_limits<count_t>::min();

// --- raw CSR array checks ---------------------------------------------

struct RawCsr {
  vidx_t rows = 3;
  vidx_t cols = 4;
  std::vector<offset_t> row_ptr{0, 2, 2, 4};
  std::vector<vidx_t> col_idx{0, 3, 1, 2};
};

void validate_raw(const RawCsr& r) {
  chk::validate_csr_arrays(r.rows, r.cols, r.row_ptr, r.col_idx);
}

TEST(ChkCsrArrays, AcceptsWellFormed) {
  EXPECT_NO_THROW(validate_raw(RawCsr{}));
  EXPECT_NO_THROW(chk::validate_csr_arrays(0, 0, std::vector<offset_t>{0},
                                           std::vector<vidx_t>{}));
}

TEST(ChkCsrArrays, FiresOnWrongRowPtrLength) {
  RawCsr r;
  r.row_ptr = {0, 2, 4};  // rows+1 == 4 expected
  EXPECT_THROW(validate_raw(r), chk::CheckError);
}

TEST(ChkCsrArrays, FiresOnNonzeroFront) {
  RawCsr r;
  r.row_ptr = {1, 2, 2, 4};
  EXPECT_THROW(validate_raw(r), chk::CheckError);
}

TEST(ChkCsrArrays, FiresOnNonMonotoneRowPtr) {
  RawCsr r;
  r.row_ptr = {0, 3, 2, 4};
  EXPECT_THROW(validate_raw(r), chk::CheckError);
}

TEST(ChkCsrArrays, FiresOnNnzMismatch) {
  RawCsr r;
  r.row_ptr = {0, 2, 2, 3};  // back() != col_idx.size()
  EXPECT_THROW(validate_raw(r), chk::CheckError);
}

TEST(ChkCsrArrays, FiresOnUnsortedRow) {
  RawCsr r;
  r.col_idx = {3, 0, 1, 2};  // row 0 descending
  EXPECT_THROW(validate_raw(r), chk::CheckError);
}

TEST(ChkCsrArrays, FiresOnDuplicateColumn) {
  RawCsr r;
  r.col_idx = {0, 0, 1, 2};
  EXPECT_THROW(validate_raw(r), chk::CheckError);
}

TEST(ChkCsrArrays, FiresOnOutOfRangeColumn) {
  RawCsr r;
  r.col_idx = {0, 4, 1, 2};  // cols == 4, so 4 is out of range
  EXPECT_THROW(validate_raw(r), chk::CheckError);
  r.col_idx = {-1, 3, 1, 2};
  EXPECT_THROW(validate_raw(r), chk::CheckError);
}

// The CsrPattern constructor routes through the same core, so corrupt
// arrays can never become a live pattern (and the thrown CheckError still
// IS-A std::invalid_argument for the pre-existing API-boundary tests).
TEST(ChkCsrArrays, ConstructorRejectsCorruptArrays) {
  EXPECT_THROW(sparse::CsrPattern(2, 3, {0, 2, 2}, {1, 0}), chk::CheckError);
  EXPECT_THROW(sparse::CsrPattern(2, 3, {0, 2, 2}, {1, 0}),
               std::invalid_argument);
}

// --- pattern / counts / builder / mirror ------------------------------

TEST(ChkValidate, AcceptsPatternCountsAndBuilder) {
  const sparse::CsrPattern p(3, 4, {0, 2, 2, 4}, {0, 3, 1, 2});
  EXPECT_NO_THROW(chk::validate(p));

  sparse::CsrCounts c;
  c.rows = 2;
  c.cols = 2;
  c.row_ptr = {0, 1, 2};
  c.col_idx = {1, 0};
  c.values = {7, 9};
  EXPECT_NO_THROW(chk::validate(c));

  sparse::CooBuilder b(2, 2);
  b.add(0, 1);
  b.add(1, 0);
  EXPECT_NO_THROW(chk::validate(b));
}

TEST(ChkValidate, FiresOnCountsValueSizeDrift) {
  sparse::CsrCounts c;
  c.rows = 2;
  c.cols = 2;
  c.row_ptr = {0, 1, 2};
  c.col_idx = {1, 0};
  c.values = {7};  // nnz == 2 but only one value
  EXPECT_THROW(chk::validate(c), chk::CheckError);
}

TEST(ChkMirror, AcceptsTrueTranspose) {
  const sparse::CsrPattern a(2, 3, {0, 2, 3}, {0, 2, 1});
  EXPECT_NO_THROW(chk::validate_mirror(a, a.transpose()));
}

TEST(ChkMirror, FiresOnShapeMismatch) {
  const sparse::CsrPattern a(2, 3, {0, 2, 3}, {0, 2, 1});
  const sparse::CsrPattern not_swapped(2, 3, {0, 2, 3}, {0, 2, 1});
  EXPECT_THROW(chk::validate_mirror(a, not_swapped), chk::CheckError);
}

TEST(ChkMirror, FiresOnBrokenMirror) {
  // Same shape and nnz as the true transpose, but the identity pattern is
  // not the mirror of the anti-diagonal one.
  const sparse::CsrPattern a(2, 2, {0, 1, 2}, {1, 0});
  const sparse::CsrPattern wrong(2, 2, {0, 1, 2}, {0, 1});
  EXPECT_THROW(chk::validate_mirror(a, wrong), chk::CheckError);
}

TEST(ChkGraph, AcceptsGeneratedGraphs) {
  EXPECT_NO_THROW(chk::validate(gen::erdos_renyi(20, 30, 0.2, 7)));
  EXPECT_NO_THROW(chk::validate(
      graph::BipartiteGraph(sparse::CsrPattern::empty(5, 9))));
}

// --- dynamic counter and serving snapshots ----------------------------

count::DynamicButterflyCounter make_counter() {
  count::DynamicButterflyCounter c(3, 3);
  c.insert(0, 0);
  c.insert(0, 1);
  c.insert(1, 0);
  c.insert(1, 1);  // completes one butterfly
  c.insert(2, 2);
  return c;
}

TEST(ChkDynamic, AcceptsConsistentCounter) {
  const auto c = make_counter();
  ASSERT_EQ(c.butterflies(), 1);
  EXPECT_NO_THROW(chk::validate(c));
}

svc::GraphSnapshot make_snapshot() {
  const auto c = make_counter();
  svc::GraphSnapshot s;
  s.epoch = 5;
  s.graph = c.to_graph();
  s.butterflies = c.butterflies();
  s.edges = c.edge_count();
  return s;
}

TEST(ChkSnapshot, AcceptsConsistentSnapshot) {
  EXPECT_NO_THROW(chk::validate(make_snapshot()));
}

TEST(ChkSnapshot, FiresOnButterflyCountDrift) {
  auto s = make_snapshot();
  s.butterflies += 3;  // incremental total no longer matches a recount
  EXPECT_THROW(chk::validate(s), chk::CheckError);
}

TEST(ChkSnapshot, FiresOnEdgeCountDrift) {
  auto s = make_snapshot();
  s.edges -= 1;
  EXPECT_THROW(chk::validate(s), chk::CheckError);
}

TEST(ChkSnapshot, EpochMustAdvanceByOne) {
  const auto prev = make_snapshot();
  auto next = make_snapshot();
  next.epoch = prev.epoch + 1;
  EXPECT_NO_THROW(chk::validate_epoch_transition(prev, next));
  next.epoch = prev.epoch;  // stalled
  EXPECT_THROW(chk::validate_epoch_transition(prev, next), chk::CheckError);
  next.epoch = prev.epoch + 2;  // skipped
  EXPECT_THROW(chk::validate_epoch_transition(prev, next), chk::CheckError);
}

// --- overflow-checked arithmetic --------------------------------------

TEST(ChkMath, AgreesWithPlainArithmeticInRange) {
  EXPECT_EQ(chk::checked_add(40, 2), 42);
  EXPECT_EQ(chk::checked_sub(40, 2), 38);
  EXPECT_EQ(chk::checked_mul(6, 7), 42);
  for (count_t n = 0; n < 20; ++n)
    EXPECT_EQ(chk::checked_choose2(n), choose2(n)) << n;
}

TEST(ChkMath, FiresOnOverflow) {
  if constexpr (!chk::kCheckedEnabled)
    GTEST_SKIP() << "BFC_CHECKED=OFF: checked helpers are plain arithmetic";
  EXPECT_THROW(chk::checked_add(kMax, 1), chk::CheckError);
  EXPECT_THROW(chk::checked_add(kMin, -1), chk::CheckError);
  EXPECT_THROW(chk::checked_sub(kMin, 1), chk::CheckError);
  EXPECT_THROW(chk::checked_mul(kMax / 2 + 1, 2), chk::CheckError);
  // choose2(2^33) ≈ 2^65 overflows; the accumulator path must trap, not
  // silently wrap negative.
  EXPECT_THROW(chk::checked_choose2(count_t{1} << 33), chk::CheckError);
}

TEST(ChkMath, NearLimitValuesSurvive) {
  EXPECT_EQ(chk::checked_add(kMax - 1, 1), kMax);
  EXPECT_EQ(chk::checked_sub(kMin + 1, 1), kMin);
  EXPECT_EQ(chk::checked_mul(kMax, 1), kMax);
}

// --- BFC_CHECK macro semantics ----------------------------------------

TEST(ChkMacro, CheckFiresExactlyWhenCompiledIn) {
  int evaluations = 0;
  const auto falsy = [&] {
    ++evaluations;
    return false;
  };
  static_cast<void>(falsy);  // odr-unused when the macros compile out
  if constexpr (chk::kCheckedEnabled) {
    EXPECT_THROW(BFC_CHECK(falsy()), chk::CheckError);
    EXPECT_THROW(BFC_CHECK_MSG(falsy(), "context"), chk::CheckError);
    EXPECT_NO_THROW(BFC_CHECK(1 + 1 == 2));
    EXPECT_EQ(evaluations, 2);
  } else {
    // Compiled out: the condition must not even be evaluated.
    BFC_CHECK(falsy());
    BFC_CHECK_MSG(falsy(), "context");
    EXPECT_EQ(evaluations, 0);
  }
}

TEST(ChkMacro, CheckFailMessageCarriesLocation) {
  try {
    chk::check_fail("x == y", "some_file.cpp", 42, "context");
    FAIL() << "check_fail must throw";
  } catch (const chk::CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("some_file.cpp:42"), std::string::npos) << what;
    EXPECT_NE(what.find("x == y"), std::string::npos) << what;
    EXPECT_NE(what.find("context"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace bfc
