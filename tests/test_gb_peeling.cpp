// The gb-layer mask iterations must produce the same fixpoints as the
// production peel:: implementations for every k on varied graphs.
#include <gtest/gtest.h>

#include "gb/peeling.hpp"
#include "gen/generators.hpp"
#include "peel/peeling.hpp"
#include "test_helpers.hpp"

namespace bfc::gb {
namespace {

using bfc::testing::complete_bipartite;
using bfc::testing::random_graph;
using bfc::testing::single_butterfly;

TEST(GbPeeling, HandGraphs) {
  const auto g = single_butterfly();
  EXPECT_EQ(k_tip_spec(g, 1).subgraph, g);
  EXPECT_EQ(k_tip_spec(g, 2).subgraph.edge_count(), 0);
  EXPECT_EQ(k_wing_spec(g, 1).subgraph, g);
  EXPECT_EQ(k_wing_spec(g, 2).subgraph.edge_count(), 0);
  EXPECT_THROW(k_tip_spec(g, -1), std::invalid_argument);
  EXPECT_THROW(k_wing_spec(g, -2), std::invalid_argument);
}

class GbPeelAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GbPeelAgreement, TipMatchesProductionForAllK) {
  const auto g = random_graph(14, 12, 0.35, GetParam());
  for (const count_t k : {0, 1, 2, 4, 8, 50}) {
    const MaskIterationResult spec = k_tip_spec(g, k);
    const peel::TipPeelResult production = peel::k_tip(g, k);
    EXPECT_EQ(spec.subgraph, production.subgraph) << "k=" << k;
    EXPECT_EQ(spec.rounds, production.rounds) << "k=" << k;
  }
}

TEST_P(GbPeelAgreement, WingMatchesProductionForAllK) {
  const auto g = random_graph(12, 12, 0.4, GetParam() + 50);
  for (const count_t k : {0, 1, 2, 3, 6, 40}) {
    const MaskIterationResult spec = k_wing_spec(g, k);
    const peel::WingPeelResult production = peel::k_wing(g, k);
    EXPECT_EQ(spec.subgraph, production.subgraph) << "k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GbPeelAgreement,
                         ::testing::Values(1u, 2u, 3u, 4u));

TEST(GbPeeling, CommunityGraph) {
  gen::BlockCommunitySpec spec;
  spec.blocks = 2;
  spec.block_rows = 10;
  spec.block_cols = 10;
  spec.extra_rows = 8;
  spec.extra_cols = 8;
  spec.p_in = 0.6;
  spec.p_out = 0.02;
  const auto g = gen::block_community(spec, 77);
  EXPECT_EQ(k_tip_spec(g, 20).subgraph, peel::k_tip(g, 20).subgraph);
  EXPECT_EQ(k_wing_spec(g, 5).subgraph, peel::k_wing(g, 5).subgraph);
}

}  // namespace
}  // namespace bfc::gb
