// Fault-tolerance suite: checksummed binary I/O corruption handling, load
// shedding and deadlines in the query executor, the service's degradation
// ladder, and crash-safe snapshot persist/restore. Tests that need a fault
// injected into an otherwise-healthy code path (forced queue saturation,
// slow kernels, torn snapshot writes) only run in checked builds, where
// svc::fault compiles to real hooks; everything else runs everywhere.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <future>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "chk/check.hpp"
#include "count/baselines.hpp"
#include "count/local_counts.hpp"
#include "graph/io_binary.hpp"
#include "graph/io_edgelist.hpp"
#include "graph/io_mtx.hpp"
#include "svc/executor.hpp"
#include "svc/fault.hpp"
#include "svc/request.hpp"
#include "svc/service.hpp"
#include "svc/snapshot_store.hpp"
#include "test_helpers.hpp"
#include "util/cancel.hpp"
#include "util/crc32.hpp"
#include "util/rng.hpp"

namespace bfc {
namespace {

namespace fs = std::filesystem;

/// Runs fn, which must throw; returns the exception message.
template <typename Fn>
std::string message_of(Fn&& fn) {
  try {
    fn();
  } catch (const std::exception& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected an exception";
  return {};
}

std::string binary_bytes(const graph::BipartiteGraph& g) {
  std::ostringstream out(std::ios::binary);
  graph::write_binary(out, g);
  return out.str();
}

graph::BipartiteGraph parse_binary(const std::string& bytes) {
  std::istringstream in(bytes, std::ios::binary);
  return graph::read_binary(in, "test.bin");
}

/// Unique temp path; removed (with its .tmp sibling) on scope exit.
struct TempFile {
  fs::path path;

  explicit TempFile(const std::string& stem)
      : path(fs::temp_directory_path() / stem) {
    std::error_code ec;
    fs::remove(path, ec);
  }
  ~TempFile() {
    std::error_code ec;
    fs::remove(path, ec);
    fs::remove(fs::path(path.string() + ".tmp"), ec);
  }
  [[nodiscard]] std::string str() const { return path.string(); }
};

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Synthetic update batches for store round-trip tests: deterministic mixed
/// inserts/removes over a fixed vertex grid.
std::vector<svc::EdgeUpdate> random_batch(vidx_t n1, vidx_t n2,
                                          std::size_t count,
                                          std::uint64_t seed) {
  Rng rng(seed);
  std::vector<svc::EdgeUpdate> batch;
  batch.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto u = static_cast<vidx_t>(rng.bounded(
        static_cast<std::uint64_t>(n1)));
    const auto v = static_cast<vidx_t>(rng.bounded(
        static_cast<std::uint64_t>(n2)));
    batch.push_back({u, v, !rng.bernoulli(0.25)});
  }
  return batch;
}

// ---------------------------------------------------------------------------
// Binary graph format: every corruption is detected
// ---------------------------------------------------------------------------

TEST(BinaryRobustness, RoundTripSurvives) {
  const graph::BipartiteGraph g = testing::random_graph(13, 11, 0.3, 42);
  const graph::BipartiteGraph back = parse_binary(binary_bytes(g));
  EXPECT_EQ(back.n1(), g.n1());
  EXPECT_EQ(back.n2(), g.n2());
  EXPECT_EQ(back.edge_count(), g.edge_count());
  EXPECT_EQ(count::wedge_reference(back), count::wedge_reference(g));
}

TEST(BinaryRobustness, EveryTruncationIsRejected) {
  // Truncating the stream at ANY length — every section boundary and every
  // mid-section byte — must fail loudly, never yield a graph.
  const std::string bytes = binary_bytes(testing::random_graph(9, 7, 0.4, 1));
  ASSERT_GT(bytes.size(), 36u);  // magic+version+CRC+dims+row CRC
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::string msg = message_of(
        [&] { (void)parse_binary(bytes.substr(0, cut)); });
    EXPECT_NE(msg.find("binary graph test.bin"), std::string::npos)
        << "cut at " << cut << ": " << msg;
  }
}

TEST(BinaryRobustness, EverySingleByteFlipIsRejected) {
  // Every byte of the format is covered by the magic, the version check, or
  // one of the per-section CRCs, so no single-byte flip can slip through.
  const std::string bytes = binary_bytes(testing::random_graph(9, 7, 0.4, 2));
  for (std::size_t at = 0; at < bytes.size(); ++at) {
    std::string mutated = bytes;
    mutated[at] = static_cast<char>(mutated[at] ^ 0x5A);
    EXPECT_THROW((void)parse_binary(mutated), std::runtime_error)
        << "flip at byte " << at << " was accepted";
  }
}

TEST(BinaryRobustness, CrcMismatchNamesTheSection) {
  const std::string bytes = binary_bytes(testing::random_graph(9, 7, 0.4, 3));
  // Layout: magic(8) version(4) dimsCRC(4) dims(16) rowCRC(4) row_ptr ...
  std::string dims = bytes;
  dims[20] = static_cast<char>(dims[20] ^ 0x01);
  EXPECT_NE(message_of([&] { (void)parse_binary(dims); })
                .find("dimension header CRC mismatch"),
            std::string::npos);
  std::string rows = bytes;
  rows[40] = static_cast<char>(rows[40] ^ 0x01);
  EXPECT_NE(message_of([&] { (void)parse_binary(rows); })
                .find("row_ptr section CRC mismatch"),
            std::string::npos);
  std::string cols = bytes;
  cols[cols.size() - 1] = static_cast<char>(cols[cols.size() - 1] ^ 0x01);
  EXPECT_NE(message_of([&] { (void)parse_binary(cols); })
                .find("col_idx section CRC mismatch"),
            std::string::npos);
}

TEST(BinaryRobustness, LegacyFormatGetsARegenerateHint) {
  std::string legacy(64, '\0');
  std::memcpy(legacy.data(), "BFC1", 4);
  const std::string msg = message_of([&] { (void)parse_binary(legacy); });
  EXPECT_NE(msg.find("legacy BFC1"), std::string::npos);
  EXPECT_NE(msg.find("regenerate"), std::string::npos);
}

TEST(BinaryRobustness, SaveIsAtomicAndLeavesNoTmp) {
  const TempFile file("bfc_robust_atomic.bin");
  const graph::BipartiteGraph first = testing::random_graph(8, 8, 0.5, 10);
  const graph::BipartiteGraph second = testing::random_graph(6, 9, 0.5, 11);

  graph::save_binary(file.str(), first);
  EXPECT_EQ(count::wedge_reference(graph::load_binary(file.str())),
            count::wedge_reference(first));
  // Overwrite: the path flips to the complete new snapshot, no .tmp debris.
  graph::save_binary(file.str(), second);
  const graph::BipartiteGraph back = graph::load_binary(file.str());
  EXPECT_EQ(back.n1(), second.n1());
  EXPECT_EQ(count::wedge_reference(back), count::wedge_reference(second));
  EXPECT_FALSE(fs::exists(file.str() + ".tmp"));
}

// ---------------------------------------------------------------------------
// Parser errors carry the source name and position
// ---------------------------------------------------------------------------

TEST(ParserErrors, EdgelistNamesFileAndLine) {
  std::istringstream in("1 2\n% comment\nbogus line\n");
  const std::string msg = message_of(
      [&] { (void)graph::read_edgelist(in, 0, 0, "toy.el"); });
  EXPECT_NE(msg.find("edgelist toy.el:3"), std::string::npos) << msg;
}

TEST(ParserErrors, MtxNamesFileAndEntry) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n3 3 2\n1 1\n9 9\n");
  const std::string msg =
      message_of([&] { (void)graph::read_mtx(in, "toy.mtx"); });
  EXPECT_NE(msg.find("mtx toy.mtx"), std::string::npos) << msg;
  EXPECT_NE(msg.find("entry 2 of 2"), std::string::npos) << msg;
}

TEST(ParserErrors, BinaryNamesFileAndOffset) {
  const std::string bytes =
      binary_bytes(testing::random_graph(5, 5, 0.5, 4)).substr(0, 20);
  std::istringstream in(bytes, std::ios::binary);
  const std::string msg =
      message_of([&] { (void)graph::read_binary(in, "toy.bin"); });
  EXPECT_NE(msg.find("binary graph toy.bin"), std::string::npos) << msg;
  EXPECT_NE(msg.find("byte offset"), std::string::npos) << msg;
}

// ---------------------------------------------------------------------------
// Executor: admission control and deadlines
// ---------------------------------------------------------------------------

/// Parks the pool's single worker on a gate so queued tasks stay queued
/// until release() — the only way to test shedding deterministically.
class WorkerGate {
 public:
  explicit WorkerGate(svc::Executor& pool) {
    std::promise<void> entered;
    std::future<void> entered_f = entered.get_future();
    blocker_ = pool.submit([this, &entered] {
      entered.set_value();
      opened_.wait();
      return 0;
    });
    entered_f.wait();  // worker is now inside the blocker, queue is empty
  }

  void release() {
    if (!released_) open_.set_value();
    released_ = true;
  }
  void join() {
    release();
    (void)blocker_.get();
  }

 private:
  std::promise<void> open_;
  std::shared_future<void> opened_ = open_.get_future().share();
  std::future<int> blocker_;
  bool released_ = false;
};

svc::OverloadError::Reason shed_reason(std::future<int>& f) {
  try {
    (void)f.get();
  } catch (const svc::OverloadError& e) {
    return e.reason();
  }
  ADD_FAILURE() << "expected OverloadError";
  return svc::OverloadError::Reason::kRejected;
}

TEST(ExecutorRobustness, RejectNewRefusesAtTheBound) {
  svc::Executor pool(
      svc::ExecutorOptions{1, 1, svc::ShedPolicy::kRejectNew});
  WorkerGate gate(pool);
  std::future<int> queued = pool.submit([] { return 7; });
  ASSERT_EQ(pool.queue_depth(), 1u);

  // Queue is at its bound: try_submit refuses, submit yields OverloadError.
  EXPECT_FALSE(pool.try_submit([] { return 8; }).has_value());
  std::future<int> rejected = pool.submit([] { return 9; });
  EXPECT_EQ(shed_reason(rejected), svc::OverloadError::Reason::kRejected);

  gate.join();
  EXPECT_EQ(queued.get(), 7);  // admitted work still completes exactly
}

TEST(ExecutorRobustness, DropOldestEvictsTheQueueHead) {
  svc::Executor pool(
      svc::ExecutorOptions{1, 1, svc::ShedPolicy::kDropOldest});
  WorkerGate gate(pool);
  std::future<int> oldest = pool.submit([] { return 1; });
  std::future<int> newest = pool.submit([] { return 2; });

  EXPECT_EQ(shed_reason(oldest), svc::OverloadError::Reason::kShed);
  gate.join();
  EXPECT_EQ(newest.get(), 2);
}

TEST(ExecutorRobustness, ShedTaskResolvesThroughItsFallback) {
  svc::Executor pool(
      svc::ExecutorOptions{1, 1, svc::ShedPolicy::kDropOldest});
  WorkerGate gate(pool);
  auto victim = pool.try_submit([] { return 1; }, svc::Deadline{},
                                [] { return std::optional<int>(-1); });
  ASSERT_TRUE(victim.has_value());
  std::future<int> newest = pool.submit([] { return 2; });

  EXPECT_EQ(victim->get(), -1);  // degraded value, not an exception
  gate.join();
  EXPECT_EQ(newest.get(), 2);
}

TEST(ExecutorRobustness, DeadlineAwareShedsLeastViableTask) {
  using namespace std::chrono_literals;
  svc::Executor pool(
      svc::ExecutorOptions{1, 2, svc::ShedPolicy::kDeadlineAware});
  WorkerGate gate(pool);
  std::future<int> patient = pool.submit([] { return 1; },
                                         svc::Deadline::after(10s));
  std::future<int> urgent = pool.submit([] { return 2; },
                                        svc::Deadline::after(50ms));

  // Incoming task has more headroom than `urgent`: urgent is the victim.
  auto mid = pool.try_submit([] { return 3; }, svc::Deadline::after(5s));
  ASSERT_TRUE(mid.has_value());
  EXPECT_EQ(shed_reason(urgent), svc::OverloadError::Reason::kShed);

  // Incoming task with the soonest deadline of all is itself refused.
  EXPECT_FALSE(
      pool.try_submit([] { return 4; }, svc::Deadline::after(1ms))
          .has_value());

  gate.join();
  EXPECT_EQ(patient.get(), 1);
  EXPECT_EQ(mid->get(), 3);
}

TEST(ExecutorRobustness, ExpiredTaskIsAbandonedAtDequeue) {
  using namespace std::chrono_literals;
  svc::Executor pool(svc::ExecutorOptions{1, 0, svc::ShedPolicy::kRejectNew});
  WorkerGate gate(pool);
  std::atomic<bool> ran{false};
  std::future<int> doomed = pool.submit(
      [&ran] {
        ran = true;
        return 1;
      },
      svc::Deadline::after(1ms));
  std::this_thread::sleep_for(20ms);  // deadline passes while queued

  gate.release();
  EXPECT_EQ(shed_reason(doomed), svc::OverloadError::Reason::kDeadline);
  EXPECT_FALSE(ran.load());  // abandoned, never started
  gate.join();
}

TEST(ExecutorRobustness, DestructionAbandonsQueuedTasks) {
  // ~Executor's contract: running tasks finish, queued tasks that never ran
  // are abandoned (not drained). The gate pins the only worker inside a
  // running task while a queued task waits behind it; the releaser opens
  // the gate well after the destructor has flagged the shutdown, so the
  // worker's next loop iteration sees it and leaves the queued task for the
  // destructor to abandon.
  using namespace std::chrono_literals;
  std::future<int> doomed;
  std::optional<WorkerGate> gate;
  std::thread releaser;
  {
    svc::Executor pool(
        svc::ExecutorOptions{1, 0, svc::ShedPolicy::kRejectNew});
    gate.emplace(pool);
    doomed = pool.submit([] { return 7; });
    ASSERT_EQ(pool.queue_depth(), 1u);
    releaser = std::thread([&gate] {
      std::this_thread::sleep_for(50ms);
      gate->release();
    });
  }  // ~Executor runs here, long before the gate opens
  releaser.join();
  gate->join();  // the running task itself completed normally
  EXPECT_EQ(shed_reason(doomed), svc::OverloadError::Reason::kShed);
}

// ---------------------------------------------------------------------------
// Kernel-level cooperative cancellation
// ---------------------------------------------------------------------------

TEST(CancelRobustness, ExpiredTokenAbortsEveryKernel) {
  const graph::BipartiteGraph g = testing::random_graph(60, 50, 0.15, 7);
  // One fresh token per kernel, as in production (tokens are per-request):
  // the clock check is strided on the token's own tick counter.
  const auto expired = [] {
    return CancelToken(CancelToken::Clock::now() - std::chrono::seconds(1));
  };
  EXPECT_THROW((void)count::butterflies_per_v1(g, expired()), CancelledError);
  EXPECT_THROW((void)count::butterflies_per_v2(g, expired()), CancelledError);
  EXPECT_THROW((void)count::support_per_edge(g, expired()), CancelledError);
}

TEST(CancelRobustness, UnarmedTokenChangesNothing) {
  const graph::BipartiteGraph g = testing::random_graph(40, 45, 0.2, 8);
  EXPECT_EQ(count::butterflies_per_v1(g, CancelToken{}),
            count::butterflies_per_v1(g));
  EXPECT_EQ(count::support_per_edge(g, CancelToken{}),
            count::support_per_edge(g));
}

TEST(CancelRobustness, CancelledErrorNamesTheKernel) {
  const graph::BipartiteGraph g = testing::complete_bipartite(4, 4);
  const CancelToken expired(CancelToken::Clock::now() -
                            std::chrono::seconds(1));
  const std::string msg =
      message_of([&] { (void)count::butterflies_per_v1(g, expired); });
  EXPECT_NE(msg.find("butterflies_per_v1"), std::string::npos) << msg;
}

// ---------------------------------------------------------------------------
// Snapshot persistence: crash-safe round trip and rejection of corruption
// ---------------------------------------------------------------------------

TEST(PersistRestore, RoundTripRecoversExactEpochAndCount) {
  const TempFile file("bfc_robust_store.snap");
  svc::SnapshotStore writer(30, 25);
  for (std::uint64_t e = 0; e < 3; ++e)
    (void)writer.apply_batch(random_batch(30, 25, 120, 100 + e));
  ASSERT_EQ(writer.epoch(), 3u);
  writer.persist(file.str());

  svc::SnapshotStore reborn(1, 1);  // dimensions come from the file
  reborn.restore(file.str());
  EXPECT_EQ(reborn.epoch(), writer.epoch());
  EXPECT_EQ(reborn.n1(), writer.n1());
  EXPECT_EQ(reborn.n2(), writer.n2());
  const svc::SnapshotPtr a = writer.current();
  const svc::SnapshotPtr b = reborn.current();
  EXPECT_EQ(b->butterflies, a->butterflies);
  EXPECT_EQ(b->edges, a->edges);
  EXPECT_EQ(count::wedge_reference(b->graph), b->butterflies);

  // Warm restart continues the epoch sequence with zero count drift.
  const svc::PublishResult next =
      reborn.apply_batch(random_batch(30, 25, 120, 777));
  EXPECT_EQ(next.epoch, writer.epoch() + 1);
  EXPECT_EQ(reborn.current()->butterflies,
            count::wedge_reference(reborn.current()->graph));
}

TEST(PersistRestore, EveryTruncationRejectedAndStoreUntouched) {
  const TempFile good("bfc_robust_trunc_src.snap");
  const TempFile bad("bfc_robust_trunc.snap");
  svc::SnapshotStore writer(12, 10);
  (void)writer.apply_batch(random_batch(12, 10, 60, 5));
  writer.persist(good.str());
  const std::string bytes = read_file(good.str());
  ASSERT_GT(bytes.size(), 40u);  // envelope = magic+version+CRC+meta

  svc::SnapshotStore victim(4, 4);
  (void)victim.apply_batch({svc::EdgeUpdate::add(0, 0)});
  const std::uint64_t epoch_before = victim.epoch();
  const count_t count_before = victim.current()->butterflies;
  // Step 7 keeps the loop count ~50 while still hitting every envelope
  // boundary (8/12/16/40 are all distinct mod-7 residues plus the explicit
  // boundary list below).
  std::vector<std::size_t> cuts = {0, 8, 12, 16, 28, 40};
  for (std::size_t c = 1; c < bytes.size(); c += 7) cuts.push_back(c);
  for (const std::size_t cut : cuts) {
    write_file(bad.str(), bytes.substr(0, cut));
    EXPECT_THROW(victim.restore(bad.str()), std::runtime_error)
        << "cut at " << cut;
    EXPECT_EQ(victim.epoch(), epoch_before);
    EXPECT_EQ(victim.current()->butterflies, count_before);
  }
}

TEST(PersistRestore, EveryByteFlipRejected) {
  const TempFile good("bfc_robust_flip_src.snap");
  const TempFile bad("bfc_robust_flip.snap");
  svc::SnapshotStore writer(12, 10);
  (void)writer.apply_batch(random_batch(12, 10, 60, 6));
  writer.persist(good.str());
  const std::string bytes = read_file(good.str());

  svc::SnapshotStore victim(4, 4);
  for (std::size_t at = 0; at < bytes.size(); ++at) {
    std::string mutated = bytes;
    mutated[at] = static_cast<char>(mutated[at] ^ 0x5A);
    write_file(bad.str(), mutated);
    EXPECT_THROW(victim.restore(bad.str()), std::runtime_error)
        << "flip at byte " << at << " was accepted";
    EXPECT_EQ(victim.epoch(), 0u);
  }
}

TEST(PersistRestore, RecountCatchesAForgedButterflyTotal) {
  // Keep the envelope's CRC self-consistent while lying about the count:
  // only the from-scratch recount during restore can catch this.
  const TempFile file("bfc_robust_forged.snap");
  svc::SnapshotStore writer(10, 10);
  (void)writer.apply_batch(random_batch(10, 10, 50, 9));
  writer.persist(file.str());
  std::string bytes = read_file(file.str());

  // Envelope: magic(8) version(4) metaCRC(4) meta{epoch, butterflies,
  // edges}(24). Bump the persisted count and re-seal the meta CRC.
  count_t forged = 0;
  std::memcpy(&forged, bytes.data() + 24, sizeof forged);
  ++forged;
  std::memcpy(bytes.data() + 24, &forged, sizeof forged);
  const std::uint32_t reseal = crc32(bytes.data() + 16, 24);
  std::memcpy(bytes.data() + 12, &reseal, sizeof reseal);
  write_file(file.str(), bytes);

  svc::SnapshotStore victim(1, 1);
  const std::string msg =
      message_of([&] { victim.restore(file.str()); });
  EXPECT_NE(msg.find("butterfly count mismatch"), std::string::npos) << msg;
  EXPECT_EQ(victim.epoch(), 0u);
}

TEST(PersistRestore, MissingFileAndBadMagicAreNamed) {
  svc::SnapshotStore store(2, 2);
  EXPECT_NE(message_of([&] { store.restore("/nonexistent/bfc.snap"); })
                .find("cannot open snapshot"),
            std::string::npos);
  const TempFile file("bfc_robust_magic.snap");
  write_file(file.str(), std::string(64, 'x'));
  EXPECT_NE(message_of([&] { store.restore(file.str()); }).find("bad magic"),
            std::string::npos);
}

TEST(PersistRestore, ServiceRestoreFlushesCachesAndContinues) {
  const TempFile file("bfc_robust_service.snap");
  svc::ButterflyService service(3, 3, svc::ServiceOptions{.threads = 1});
  (void)service.apply_updates(random_batch(3, 3, 12, 21));
  const std::uint64_t persisted_epoch = service.store().epoch();
  const count_t persisted_count = service.snapshot()->butterflies;
  service.persist(file.str());

  (void)service.apply_updates(random_batch(3, 3, 12, 22));
  (void)service.vertex_tip_v1(0).get();
  ASSERT_GT(service.cache().size(), 0u);

  service.restore(file.str());
  EXPECT_EQ(service.cache().size(), 0u);  // old-epoch keys mean nothing now
  const svc::QueryResult<count_t> total = service.global_count().get();
  EXPECT_EQ(total.value, persisted_count);
  EXPECT_EQ(total.epoch, persisted_epoch);
  EXPECT_FALSE(total.degraded());
  EXPECT_EQ(service.apply_updates({svc::EdgeUpdate::add(0, 0)}).epoch,
            persisted_epoch + 1);
}

// ---------------------------------------------------------------------------
// Fault-injected paths (checked builds only)
// ---------------------------------------------------------------------------

class FaultGated : public ::testing::Test {
 protected:
  void SetUp() override {
    if constexpr (!chk::kCheckedEnabled)
      GTEST_SKIP() << "fault injection compiled out (BFC_CHECKED=OFF)";
  }
  void TearDown() override { svc::fault::reset(); }

  static constexpr std::uint64_t kForever = 1u << 20;
};

TEST_F(FaultGated, SaturationDegradesToStaleCache) {
  svc::ButterflyService service(3, 3, svc::ServiceOptions{.threads = 1});
  std::vector<svc::EdgeUpdate> k33;
  for (vidx_t u = 0; u < 3; ++u)
    for (vidx_t v = 0; v < 3; ++v) k33.push_back(svc::EdgeUpdate::add(u, v));
  (void)service.apply_updates(k33);  // epoch 1 = K_{3,3}

  const svc::QueryResult<count_t> exact = service.vertex_tip_v1(0).get();
  ASSERT_EQ(exact.value, 6);  // 2·C(3,2) butterflies touch each V1 vertex
  ASSERT_FALSE(exact.degraded());

  (void)service.apply_updates({svc::EdgeUpdate::del(2, 2)});  // epoch 2
  const svc::fault::Scoped saturated(
      svc::fault::Point::kQueueSaturation, 0, kForever);
  // Admission refuses; the ladder's first rung is epoch 1's cached answer.
  const svc::QueryResult<count_t> stale = service.vertex_tip_v1(0).get();
  EXPECT_EQ(stale.value, 6);
  EXPECT_EQ(stale.epoch, 1u);
  EXPECT_EQ(stale.fidelity, svc::Fidelity::kStale);
}

TEST_F(FaultGated, SaturationDegradesToRetainedTipPass) {
  svc::ButterflyService service(4, 4, svc::ServiceOptions{.threads = 1});
  std::vector<svc::EdgeUpdate> k33;
  for (vidx_t u = 0; u < 3; ++u)
    for (vidx_t v = 0; v < 3; ++v) k33.push_back(svc::EdgeUpdate::add(u, v));
  (void)service.apply_updates(k33);  // epoch 1

  // Query vertex 0 so epoch 1's FULL tip pass is memoised, but only vertex
  // 0's scalar is cached — a later vertex-1 query cannot use rung 1.
  ASSERT_EQ(service.vertex_tip_v1(0).get().value, 6);
  (void)service.apply_updates({svc::EdgeUpdate::add(3, 3)});  // epoch 2

  const svc::fault::Scoped saturated(
      svc::fault::Point::kQueueSaturation, 0, kForever);
  const svc::QueryResult<count_t> memo = service.vertex_tip_v1(1).get();
  EXPECT_EQ(memo.value, 6);  // vertex 1's tip number out of the epoch-1 pass
  EXPECT_EQ(memo.epoch, 1u);
  EXPECT_EQ(memo.fidelity, svc::Fidelity::kStale);
}

TEST_F(FaultGated, SaturationFallsBackToSampledEstimate) {
  svc::ButterflyService service(3, 3, svc::ServiceOptions{.threads = 1});
  std::vector<svc::EdgeUpdate> k33;
  for (vidx_t u = 0; u < 3; ++u)
    for (vidx_t v = 0; v < 3; ++v) k33.push_back(svc::EdgeUpdate::add(u, v));
  (void)service.apply_updates(k33);  // epoch 1, nothing cached or memoised

  const svc::fault::Scoped saturated(
      svc::fault::Point::kQueueSaturation, 0, kForever);
  const svc::QueryResult<count_t> approx = service.vertex_tip_v1(0).get();
  // On K_{3,3} every sampled wedge closes the same way (x = 2, W_u = 6), so
  // the estimator is deterministic and exact: 2·6/2 = 6.
  EXPECT_EQ(approx.value, 6);
  EXPECT_EQ(approx.epoch, 1u);
  EXPECT_EQ(approx.fidelity, svc::Fidelity::kApprox);
}

TEST_F(FaultGated, SaturationAnswersEdgeSupportInlineAndExact) {
  svc::ButterflyService service(3, 3, svc::ServiceOptions{.threads = 1});
  std::vector<svc::EdgeUpdate> k33;
  for (vidx_t u = 0; u < 3; ++u)
    for (vidx_t v = 0; v < 3; ++v) k33.push_back(svc::EdgeUpdate::add(u, v));
  (void)service.apply_updates(k33);

  const svc::fault::Scoped saturated(
      svc::fault::Point::kQueueSaturation, 0, kForever);
  const svc::QueryResult<count_t> support = service.edge_support(0, 0).get();
  EXPECT_EQ(support.value, 4);  // (3−1)·(3−1) butterflies per K_{3,3} edge
  EXPECT_EQ(support.fidelity, svc::Fidelity::kExact);  // inline, not degraded
}

TEST_F(FaultGated, SaturationServesStaleTopPairsOrSheds) {
  svc::ButterflyService service(3, 3, svc::ServiceOptions{.threads = 1});
  std::vector<svc::EdgeUpdate> k33;
  for (vidx_t u = 0; u < 3; ++u)
    for (vidx_t v = 0; v < 3; ++v) k33.push_back(svc::EdgeUpdate::add(u, v));
  (void)service.apply_updates(k33);  // epoch 1
  const svc::QueryResult<svc::TopPairsPtr> exact = service.top_pairs(2).get();
  ASSERT_EQ(exact.value->size(), 2u);

  (void)service.apply_updates({svc::EdgeUpdate::del(0, 0)});  // epoch 2
  const svc::fault::Scoped saturated(
      svc::fault::Point::kQueueSaturation, 0, kForever);
  // Same k: the retired epoch's list is the only rung — explicitly stale.
  const svc::QueryResult<svc::TopPairsPtr> stale = service.top_pairs(2).get();
  EXPECT_EQ(stale.epoch, 1u);
  EXPECT_EQ(stale.fidelity, svc::Fidelity::kStale);
  EXPECT_EQ(stale.value.get(), exact.value.get());  // shared, not recomputed
  // Different k: no stale list exists, so the query is shed outright.
  std::future<svc::QueryResult<svc::TopPairsPtr>> shed = service.top_pairs(3);
  EXPECT_THROW((void)shed.get(), svc::OverloadError);
}

TEST_F(FaultGated, SlowKernelTripsDeadlineIntoDegradedAnswer) {
  using namespace std::chrono_literals;
  svc::ButterflyService service(40, 40, svc::ServiceOptions{.threads = 1});
  std::vector<svc::EdgeUpdate> batch;
  const graph::BipartiteGraph g = testing::random_graph(40, 40, 0.2, 12);
  for (vidx_t u = 0; u < g.n1(); ++u)
    for (const vidx_t v : g.csr().row(u))
      batch.push_back(svc::EdgeUpdate::add(u, v));
  (void)service.apply_updates(batch);

  // The injected 80 ms stall outlives the 5 ms budget, so the pass is
  // cancelled mid-flight (or abandoned at dequeue) — either way the caller
  // gets a degraded answer instead of a late exact one.
  const svc::fault::Scoped slow(svc::fault::Point::kSlowKernel, 0, 1, 80);
  const svc::Request req(service.snapshot(), svc::Deadline::after(5ms));
  const svc::QueryResult<count_t> result =
      service.vertex_tip_v1(0, req).get();
  EXPECT_TRUE(result.degraded());
  EXPECT_EQ(result.fidelity, svc::Fidelity::kApprox);  // no stale tier yet
}

TEST_F(FaultGated, TornPersistIsRejectedAtRestore) {
  const TempFile file("bfc_robust_torn.snap");
  svc::SnapshotStore writer(10, 10);
  (void)writer.apply_batch(random_batch(10, 10, 40, 31));
  {
    const svc::fault::Scoped torn(svc::fault::Point::kPersistTruncate, 0, 1);
    writer.persist(file.str());  // publishes a half-length file
  }
  svc::SnapshotStore victim(1, 1);
  EXPECT_THROW(victim.restore(file.str()), std::runtime_error);
  EXPECT_EQ(victim.epoch(), 0u);
}

TEST_F(FaultGated, BitRotInPersistIsRejectedAtRestore) {
  const TempFile file("bfc_robust_rot.snap");
  svc::SnapshotStore writer(10, 10);
  (void)writer.apply_batch(random_batch(10, 10, 40, 32));
  {
    const svc::fault::Scoped rot(svc::fault::Point::kPersistCorrupt, 0, 1,
                                 /*byte*/ 50);
    writer.persist(file.str());
  }
  svc::SnapshotStore victim(1, 1);
  EXPECT_THROW(victim.restore(file.str()), std::runtime_error);
}

TEST_F(FaultGated, CrashBeforeRenameKeepsPreviousSnapshot) {
  const TempFile file("bfc_robust_crash.snap");
  svc::SnapshotStore writer(10, 10);
  (void)writer.apply_batch(random_batch(10, 10, 40, 33));
  writer.persist(file.str());  // epoch 1 lands cleanly
  const count_t count_at_1 = writer.current()->butterflies;

  (void)writer.apply_batch(random_batch(10, 10, 40, 34));  // epoch 2
  {
    const svc::fault::Scoped crash(svc::fault::Point::kPersistNoRename, 0, 1);
    writer.persist(file.str());  // "crashes" after the tmp write
    EXPECT_EQ(svc::fault::fired_count(svc::fault::Point::kPersistNoRename),
              1u);
  }
  // The interrupted publish must not have touched the real file: restore
  // recovers epoch 1 exactly.
  svc::SnapshotStore victim(1, 1);
  victim.restore(file.str());
  EXPECT_EQ(victim.epoch(), 1u);
  EXPECT_EQ(victim.current()->butterflies, count_at_1);
}

TEST_F(FaultGated, ForcedSaturationStillRejectsWithEmptyQueue) {
  // With the queue empty there is nothing to evict: every policy
  // degenerates to reject-new rather than crashing on a missing victim.
  svc::Executor pool(
      svc::ExecutorOptions{1, 2, svc::ShedPolicy::kDropOldest});
  const svc::fault::Scoped saturated(
      svc::fault::Point::kQueueSaturation, 0, 1);
  EXPECT_FALSE(pool.try_submit([] { return 1; }).has_value());
  // The fault consumed its single firing: the pool is healthy again.
  auto ok = pool.try_submit([] { return 2; });
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->get(), 2);
}

}  // namespace
}  // namespace bfc
