// Tests for the FLAME blocked engine (la/blocked.hpp): the panel algorithms
// must agree with the dense oracle for every invariant, every panel width
// (including degenerate and > 64 requests), and every graph shape.
#include <gtest/gtest.h>

#include "dense/spec.hpp"
#include "la/blocked.hpp"
#include "la/count.hpp"
#include "test_helpers.hpp"

namespace bfc::la {
namespace {

using bfc::testing::complete_bipartite;
using bfc::testing::random_graph;

TEST(Blocked, RejectsBadBlockSize) {
  const auto g = complete_bipartite(3, 3);
  CountOptions o;
  o.engine = Engine::kBlocked;
  o.block_size = 0;
  EXPECT_THROW(count_butterflies(g, Invariant::kInv1, o),
               std::invalid_argument);
}

TEST(Blocked, ParallelMatchesSequential) {
  const auto g = random_graph(40, 35, 0.2, 21);
  for (const Invariant inv : all_invariants()) {
    CountOptions seq;
    seq.engine = Engine::kBlocked;
    seq.block_size = 8;
    CountOptions par = seq;
    par.threads = 4;
    EXPECT_EQ(count_butterflies(g, inv, par), count_butterflies(g, inv, seq))
        << name(inv);
  }
}

TEST(Blocked, BlockSizeOneMatchesUnblocked) {
  const auto g = random_graph(20, 15, 0.3, 5);
  for (const Invariant inv : all_invariants()) {
    CountOptions blocked;
    blocked.engine = Engine::kBlocked;
    blocked.block_size = 1;
    CountOptions unblocked;
    EXPECT_EQ(count_butterflies(g, inv, blocked),
              count_butterflies(g, inv, unblocked))
        << name(inv);
  }
}

TEST(Blocked, OversizedBlockClampsTo64) {
  const auto g = random_graph(30, 30, 0.25, 6);
  CountOptions huge;
  huge.engine = Engine::kBlocked;
  huge.block_size = 1000;  // clamped internally to the 64-bit panel mask
  EXPECT_EQ(count_butterflies(g, Invariant::kInv2, huge),
            count_butterflies(g, Invariant::kInv2));
}

TEST(Blocked, SinglePanelCoversWholeMatrix) {
  // n smaller than the panel: only within-panel pairs contribute.
  const auto g = random_graph(10, 8, 0.5, 7);
  CountOptions o;
  o.engine = Engine::kBlocked;
  o.block_size = 64;
  const count_t oracle = dense::butterflies_spec(g.csr().to_dense());
  for (const Invariant inv : all_invariants())
    EXPECT_EQ(count_butterflies(g, inv, o), oracle) << name(inv);
}

struct BlockedCase {
  vidx_t m, n;
  double p;
  vidx_t block;
  std::uint64_t seed;
};

class BlockedAgreement : public ::testing::TestWithParam<BlockedCase> {};

TEST_P(BlockedAgreement, MatchesDenseOracleAllInvariants) {
  const auto& c = GetParam();
  const auto g = random_graph(c.m, c.n, c.p, c.seed);
  const count_t oracle = dense::butterflies_spec(g.csr().to_dense());
  CountOptions o;
  o.engine = Engine::kBlocked;
  o.block_size = c.block;
  for (const Invariant inv : all_invariants())
    EXPECT_EQ(count_butterflies(g, inv, o), oracle)
        << name(inv) << " block=" << c.block;
}

INSTANTIATE_TEST_SUITE_P(
    PanelWidths, BlockedAgreement,
    ::testing::Values(BlockedCase{17, 23, 0.4, 2, 1},
                      BlockedCase{17, 23, 0.4, 3, 1},
                      BlockedCase{17, 23, 0.4, 7, 1},
                      BlockedCase{17, 23, 0.4, 16, 1},
                      BlockedCase{17, 23, 0.4, 64, 1},
                      BlockedCase{23, 17, 0.4, 5, 2},
                      BlockedCase{12, 12, 0.9, 5, 3},
                      BlockedCase{33, 9, 0.2, 8, 4},
                      BlockedCase{9, 33, 0.2, 8, 5},
                      BlockedCase{1, 20, 0.8, 4, 6},
                      BlockedCase{64, 64, 0.1, 64, 7},
                      // panel boundary exactly dividing n and not
                      BlockedCase{24, 24, 0.3, 6, 8},
                      BlockedCase{25, 25, 0.3, 6, 9}));

TEST(Blocked, LargerGraphAgreesWithWedgeEngine) {
  const auto g = random_graph(200, 160, 0.03, 11);
  CountOptions blocked;
  blocked.engine = Engine::kBlocked;
  blocked.block_size = 32;
  CountOptions wedge;
  wedge.engine = Engine::kWedge;
  for (const Invariant inv :
       {Invariant::kInv1, Invariant::kInv4, Invariant::kInv6}) {
    EXPECT_EQ(count_butterflies(g, inv, blocked),
              count_butterflies(g, inv, wedge))
        << name(inv);
  }
}

TEST(Blocked, DirectCallEmptyAndTrivial) {
  EXPECT_EQ(count_blocked(sparse::CsrPattern::empty(0, 0),
                          Direction::kForward, PeerSide::kBefore, 8),
            0);
  EXPECT_EQ(count_blocked(sparse::CsrPattern::empty(5, 9),
                          Direction::kBackward, PeerSide::kAfter, 8),
            0);
}

}  // namespace
}  // namespace bfc::la
