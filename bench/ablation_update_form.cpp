// Ablation A3: fused vs two-term update evaluation (§III-C's remark that
// "by carefully implementing this update, the computation of the
// subtraction term can be avoided"). The two-term form makes one pass over
// the peer partition for a₁ᵀPPᵀa₁ and a second for Γ(a₁a₁ᵀ∘PPᵀ); the fused
// form accumulates Σ C(t_c, 2) in a single pass — expect roughly 2x.
#include <cstdlib>
#include <iostream>

#include "bench_common.hpp"
#include "la/count.hpp"

int main(int argc, char** argv) {
  using namespace bfc;
  const bench::BenchConfig cfg = bench::parse_config(argc, argv);
  bench::print_header("Ablation A3: two-term vs fused update (seconds)", cfg);

  Table table({"Dataset", "Inv", "two-term", "fused", "speedup"});

  for (const auto& ds : bench::make_datasets(cfg)) {
    // One representative per family; the effect is per-step, not
    // per-traversal, so two invariants suffice.
    for (const la::Invariant inv :
         {la::Invariant::kInv1, la::Invariant::kInv5}) {
      la::CountOptions two_term;
      two_term.update = la::CountOptions::Update::kTwoTerm;
      la::CountOptions fused;
      fused.update = la::CountOptions::Update::kFused;
      count_t ca = 0, cb = 0;
      const double two_secs = bench::time_median_seconds(
          cfg, [&] { return la::count_butterflies(ds.graph, inv, two_term); },
          &ca);
      const double fused_secs = bench::time_median_seconds(
          cfg, [&] { return la::count_butterflies(ds.graph, inv, fused); },
          &cb);
      if (ca != cb) {
        std::cerr << "FATAL: update forms disagree on " << ds.name << '\n';
        return EXIT_FAILURE;
      }
      table.add_row({ds.name, la::name(inv), Table::fixed(two_secs, 3),
                     Table::fixed(fused_secs, 3),
                     Table::fixed(two_secs / fused_secs, 2) + "x"});
    }
  }

  table.print(std::cout);
  bench::write_reports(cfg);
  return EXIT_SUCCESS;
}
