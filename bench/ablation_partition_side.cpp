// Ablation A2: "partition the smaller vertex set" (the paper's §V
// conclusion). Rectangular Chung–Lu graphs with |V1| ≫ |V2| and |V1| ≪ |V2|
// at equal |E| are run through one column-family invariant (Inv. 2,
// partitions V2) and one row-family invariant (Inv. 6, partitions V1); the
// unblocked kernels cost O(partitioned-dimension × nnz), so whichever
// family partitions the smaller side should win by roughly the dimension
// ratio.
#include <cstdlib>
#include <iostream>

#include "bench_common.hpp"
#include "gen/generators.hpp"
#include "la/count.hpp"

int main(int argc, char** argv) {
  using namespace bfc;
  const bench::BenchConfig cfg = bench::parse_config(argc, argv);
  bench::print_header("Ablation A2: partitioned-side choice (seconds)", cfg);

  struct Shape {
    vidx_t n1, n2;
  };
  const auto scaled = [&](vidx_t v) {
    return std::max<vidx_t>(4, static_cast<vidx_t>(v * cfg.scale * 8));
  };
  const std::vector<Shape> shapes = {
      {scaled(16000), scaled(1000)},  // |V1| >> |V2|: column family should win
      {scaled(4000), scaled(4000)},   // square: families comparable
      {scaled(1000), scaled(16000)},  // |V1| << |V2|: row family should win
  };
  const offset_t edges = static_cast<offset_t>(40000 * cfg.scale * 8);

  Table table({"|V1|", "|V2|", "|E|", "Inv. 2 (cols)", "Inv. 6 (rows)",
               "faster family"});

  for (const Shape& s : shapes) {
    const auto g = gen::chung_lu(gen::power_law_weights(s.n1, 0.6),
                                 gen::power_law_weights(s.n2, 0.6), edges,
                                 cfg.seed);
    la::CountOptions options;  // unblocked
    count_t c2 = 0, c6 = 0;
    const double col_secs = bench::time_median_seconds(
        cfg,
        [&] { return la::count_butterflies(g, la::Invariant::kInv2, options); },
        &c2);
    const double row_secs = bench::time_median_seconds(
        cfg,
        [&] { return la::count_butterflies(g, la::Invariant::kInv6, options); },
        &c6);
    if (c2 != c6) {
      std::cerr << "FATAL: families disagree: " << c2 << " != " << c6 << '\n';
      return EXIT_FAILURE;
    }
    table.add_row({Table::num(g.n1()), Table::num(g.n2()),
                   Table::num(g.edge_count()), Table::fixed(col_secs, 3),
                   Table::fixed(row_secs, 3),
                   col_secs < row_secs ? "columns (V2 partition)"
                                       : "rows (V1 partition)"});
  }

  table.print(std::cout);
  std::cout << "\n(expected: the family that partitions the smaller vertex "
               "set wins — the paper's dataset-selection rule)\n";
  bench::write_reports(cfg);
  return EXIT_SUCCESS;
}
