// B1: the linear-algebra family against the literature baselines it is
// positioned with (§I): exhaustive wedge reference (Wang et al. 2014),
// vertex-priority counting (Wang et al. VLDB'19), ParButterfly-style batch
// sort/hash aggregation (Shi & Shun), plus this library's optimised wedge
// engine and the paper-faithful unblocked Inv. 2.
#include <cstdlib>
#include <iostream>

#include "bench_common.hpp"
#include "count/baselines.hpp"
#include "la/count.hpp"

int main(int argc, char** argv) {
  using namespace bfc;
  const bench::BenchConfig cfg = bench::parse_config(argc, argv);
  bench::print_header("B1: baseline comparison (seconds)", cfg);

  Table table({"Dataset", "wedge-ref", "vert-priority", "batch-sort",
               "batch-hash", "LA wedge", "LA unblocked Inv.2"});

  for (const auto& ds : bench::make_datasets(cfg)) {
    count_t ref = 0;
    const double t_ref = bench::time_median_seconds(
        cfg, [&] { return count::wedge_reference(ds.graph); }, &ref);

    auto timed = [&](auto&& fn) {
      count_t c = 0;
      const double secs = bench::time_median_seconds(cfg, fn, &c);
      if (c != ref) {
        std::cerr << "FATAL: baseline disagreement on " << ds.name << ": "
                  << c << " != " << ref << '\n';
        std::exit(EXIT_FAILURE);
      }
      return secs;
    };

    const double t_vp = timed([&] { return count::vertex_priority(ds.graph); });
    const double t_bs = timed([&] {
      return count::batch_sort(ds.graph, count_t{1} << 33);
    });
    const double t_bh = timed([&] {
      return count::batch_hash(ds.graph, count_t{1} << 33);
    });
    la::CountOptions wedge;
    wedge.engine = la::Engine::kWedge;
    const double t_lw = timed([&] {
      return la::count_butterflies(ds.graph, la::Invariant::kInv2, wedge);
    });
    la::CountOptions unblocked;
    const double t_lu = timed([&] {
      return la::count_butterflies(ds.graph, la::Invariant::kInv2, unblocked);
    });

    table.add_row({ds.name, Table::fixed(t_ref, 3), Table::fixed(t_vp, 3),
                   Table::fixed(t_bs, 3), Table::fixed(t_bh, 3),
                   Table::fixed(t_lw, 3), Table::fixed(t_lu, 3)});
  }

  table.print(std::cout);
  std::cout << "\n(the unblocked column shows the deliberate O(p·nnz) cost "
               "of the paper-faithful kernels; the LA wedge engine applies "
               "the future-work optimisation and is competitive with the "
               "wedge-based baselines)\n";
  bench::write_reports(cfg);
  return EXIT_SUCCESS;
}
