// Shared plumbing for the table-reproduction benches (Figs. 9-11 and the
// ablations). Each bench binary prints the same rows/columns as the paper
// figure it regenerates, plus measured values from this machine.
//
// Common flags:
//   --scale <s>   linear dataset scale factor in (0, 1]; default 0.125 so
//                 the whole suite runs in a CI-sized budget. --scale 1
//                 reproduces the paper's published sizes (slow: the
//                 unblocked kernels are O(p·nnz) by design).
//   --seed <n>    generator seed (default 42).
//   --reps <n>    timed repetitions per cell; the median is reported.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "gen/konect_like.hpp"
#include "graph/bipartite_graph.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace bfc::bench {

struct BenchConfig {
  double scale = 0.125;
  std::uint64_t seed = 42;
  int reps = 1;
};

inline BenchConfig parse_config(int argc, const char* const* argv) {
  const Cli cli(argc, argv);
  BenchConfig cfg;
  cfg.scale = cli.get_double("scale", cfg.scale);
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  cfg.reps = static_cast<int>(cli.get_int("reps", 1));
  require(cfg.scale > 0.0 && cfg.scale <= 1.0, "--scale must be in (0, 1]");
  require(cfg.reps >= 1, "--reps must be >= 1");
  return cfg;
}

struct Dataset {
  std::string name;
  graph::BipartiteGraph graph;
  count_t paper_butterflies = 0;
};

/// The five Fig. 9 stand-ins at the configured scale (DESIGN.md §4).
inline std::vector<Dataset> make_datasets(const BenchConfig& cfg) {
  std::vector<Dataset> out;
  std::uint64_t salt = 0;
  for (const auto& preset : gen::konect_presets()) {
    out.push_back({preset.name,
                   gen::make_konect_like(preset, cfg.scale, cfg.seed + salt),
                   preset.paper_butterflies});
    ++salt;
  }
  return out;
}

/// Times one run of fn (which must return the computed count so the work
/// cannot be optimised away); repeats cfg.reps times, reports the median.
template <typename Fn>
double time_median_seconds(const BenchConfig& cfg, Fn&& fn,
                           count_t* count_out = nullptr) {
  Samples samples;
  count_t result = 0;
  for (int r = 0; r < cfg.reps; ++r) {
    Timer timer;
    result = fn();
    samples.add(timer.seconds());
  }
  if (count_out != nullptr) *count_out = result;
  return samples.median();
}

inline void print_header(const std::string& title, const BenchConfig& cfg) {
  std::cout << "=== " << title << " ===\n"
            << "scale=" << cfg.scale << " seed=" << cfg.seed
            << " reps=" << cfg.reps << '\n'
            << std::endl;
}

}  // namespace bfc::bench
