// Shared plumbing for the table-reproduction benches (Figs. 9-11 and the
// ablations). Each bench binary prints the same rows/columns as the paper
// figure it regenerates, plus measured values from this machine.
//
// Common flags:
//   --scale <s>   linear dataset scale factor in (0, 1]; default 0.125 so
//                 the whole suite runs in a CI-sized budget. --scale 1
//                 reproduces the paper's published sizes (slow: the
//                 unblocked kernels are O(p·nnz) by design).
//   --seed <n>    generator seed (default 42).
//   --reps <n>    timed repetitions per cell; the median is reported.
//   --json <path> write a machine-readable RunReport (config, environment,
//                 kernel metrics, every timing sample) after the table.
//   --trace <path> record phase/kernel spans and write chrome://tracing
//                 JSON (open in chrome://tracing or ui.perfetto.dev).
//
// Unknown flags are rejected (a typo like --rep must not silently run with
// defaults).
#pragma once

#include <cstdlib>
#include <initializer_list>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "gen/konect_like.hpp"
#include "graph/bipartite_graph.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace bfc::bench {

struct BenchConfig {
  double scale = 0.125;
  std::uint64_t seed = 42;
  int reps = 1;
  std::string json_path;   // empty = no report
  std::string trace_path;  // empty = no trace
};

/// The per-binary RunReport that time_median_seconds() feeds and
/// write_reports() serializes.
inline obs::RunReport& report() {
  static obs::RunReport r;
  return r;
}

/// Parses the common flags, rejecting anything not in the common set or in
/// `extra_allowed` (bench-specific flags like fig11's --threads).
inline BenchConfig parse_config(
    int argc, const char* const* argv,
    std::initializer_list<std::string> extra_allowed = {}) {
  const Cli cli(argc, argv);
  std::set<std::string> allowed = {"scale", "seed", "reps", "json", "trace"};
  allowed.insert(extra_allowed.begin(), extra_allowed.end());
  for (const std::string& name : cli.option_names()) {
    if (!allowed.contains(name)) {
      std::cerr << cli.program() << ": unknown flag --" << name
                << "\nknown flags:";
      for (const std::string& known : allowed) std::cerr << " --" << known;
      std::cerr << '\n';
      std::exit(2);
    }
  }

  BenchConfig cfg;
  cfg.scale = cli.get_double("scale", cfg.scale);
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  cfg.reps = static_cast<int>(cli.get_int("reps", 1));
  cfg.json_path = cli.get("json", "");
  cfg.trace_path = cli.get("trace", "");
  require(cfg.scale > 0.0 && cfg.scale <= 1.0, "--scale must be in (0, 1]");
  require(cfg.reps >= 1, "--reps must be >= 1");

  if (!cfg.trace_path.empty()) obs::Tracer::set_enabled(true);
  return cfg;
}

struct Dataset {
  std::string name;
  graph::BipartiteGraph graph;
  count_t paper_butterflies = 0;
};

/// The five Fig. 9 stand-ins at the configured scale (DESIGN.md §4).
inline std::vector<Dataset> make_datasets(const BenchConfig& cfg) {
  BFC_TRACE_SCOPE("bench.make_datasets");
  std::vector<Dataset> out;
  std::uint64_t salt = 0;
  for (const auto& preset : gen::konect_presets()) {
    out.push_back({preset.name,
                   gen::make_konect_like(preset, cfg.scale, cfg.seed + salt),
                   preset.paper_butterflies});
    ++salt;
  }
  return out;
}

/// Times one run of fn (which must return the computed count so the work
/// cannot be optimised away); repeats cfg.reps times, reports the median.
/// Every repetition is recorded into the RunReport under `label` (or an
/// auto-numbered cell name) and traced as one span per rep.
template <typename Fn>
double time_median_seconds(const BenchConfig& cfg, Fn&& fn,
                           count_t* count_out = nullptr,
                           std::string label = {}) {
  if (label.empty()) {
    static int auto_cell = 0;
    label = "cell_" + std::to_string(auto_cell++);
  }
  Samples samples;
  count_t result = 0;
  for (int r = 0; r < cfg.reps; ++r) {
    BFC_TRACE_SCOPE(label);
    Timer timer;
    result = fn();
    samples.add(timer.seconds());
  }
  report().add_sample(label, samples);
  if (count_out != nullptr) *count_out = result;
  return samples.median();
}

inline void print_header(const std::string& title, const BenchConfig& cfg) {
  std::cout << "=== " << title << " ===\n"
            << "scale=" << cfg.scale << " seed=" << cfg.seed
            << " reps=" << cfg.reps << '\n'
            << std::endl;
  report().set_config("title", title);
}

/// Serializes the RunReport (--json) and the trace (--trace) if requested.
/// Call once at the end of main; safe to call when neither flag was given.
inline void write_reports(const BenchConfig& cfg) try {
  if (!cfg.json_path.empty()) {
    obs::RunReport& r = report();
    r.set_config("scale", cfg.scale);
    r.set_config("seed", static_cast<std::int64_t>(cfg.seed));
    r.set_config("reps", static_cast<std::int64_t>(cfg.reps));
    r.capture_environment();
    r.set_metrics_from_registry();
    r.write(cfg.json_path);
    std::cout << "wrote run report: " << cfg.json_path << '\n';
  }
  if (!cfg.trace_path.empty()) {
    obs::Tracer::write_chrome_json(cfg.trace_path);
    std::cout << "wrote trace: " << cfg.trace_path << '\n';
  }
} catch (const std::exception& e) {
  // An unwritable path must not abort() away a finished bench run — the
  // table already printed; fail with a plain diagnostic instead.
  std::cerr << "error: " << e.what() << '\n';
  std::exit(EXIT_FAILURE);
}

}  // namespace bfc::bench
