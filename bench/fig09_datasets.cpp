// Regenerates the paper's Fig. 9: the dataset-statistics table (name,
// |V1|, |V2|, |E|, butterfly count Ξ_G). The paper used five KONECT
// datasets; this harness instantiates the calibrated synthetic stand-ins
// (same |V1|, |V2|, |E| at --scale 1; see DESIGN.md §4) and reports both
// the measured butterfly count of the generated graph and the paper's
// published Ξ_G for reference. Counts are cross-validated across three
// independent counters before printing.
#include <cstdlib>
#include <iostream>

#include "bench_common.hpp"
#include "count/baselines.hpp"
#include "graph/stats.hpp"
#include "la/count.hpp"

int main(int argc, char** argv) {
  using namespace bfc;
  const bench::BenchConfig cfg = bench::parse_config(argc, argv);
  bench::print_header("Fig. 9: dataset statistics", cfg);

  Table table({"Dataset Name", "|V1|", "|V2|", "|E|", "Butterflies",
               "paper Ξ_G", "cc(G)"});

  for (const auto& ds : bench::make_datasets(cfg)) {
    const count_t via_la = la::count_butterflies(ds.graph);
    const count_t via_wedges = count::wedge_reference(ds.graph);
    const count_t via_priority = count::vertex_priority(ds.graph);
    if (via_la != via_wedges || via_la != via_priority) {
      std::cerr << "FATAL: counter disagreement on " << ds.name << ": "
                << via_la << " vs " << via_wedges << " vs " << via_priority
                << '\n';
      return EXIT_FAILURE;
    }
    table.add_row({ds.name, Table::num(ds.graph.n1()),
                   Table::num(ds.graph.n2()), Table::num(ds.graph.edge_count()),
                   Table::num(via_la), Table::num(ds.paper_butterflies),
                   Table::fixed(graph::clustering_coefficient(ds.graph, via_la),
                                4)});
  }

  table.print(std::cout);
  std::cout << "\n(paper Ξ_G is the count KONECT reports for the real "
               "dataset at scale 1; the synthetic stand-in preserves "
               "|V1|/|V2|/|E| and heavy-tailed degrees, not the exact "
               "motif count.)\n";
  bench::write_reports(cfg);
  return EXIT_SUCCESS;
}
