// Closed-loop load generator for the serving subsystem (src/svc/): N reader
// threads issue a configurable mix of butterfly queries against pinned
// snapshots while one writer thread applies edge-update batches and
// publishes epochs underneath them. Emits a throughput / p50 / p95 / p99
// latency table per query kind, and the usual RunReport (--json) with every
// latency sample plus the svc.* counters (cache hits, coalesced batches,
// epochs published, ...).
//
//   ./serving [--readers 4] [--epochs 8] [--batch 200] [--queries 500]
//             [--pool 4] [--mix tip:6,global:2,edge:1,top:1]
//             [--scale 0.05] [--seed 42] [--json out.json] [--trace t.json]
//
// Overload mode exercises the fault-tolerance path: a small bounded queue,
// per-query deadlines and the degradation ladder. The run then also fails
// unless the admission layer actually shed work — the whole point of the
// exercise — while the drift check still must pass (shedding queries must
// never corrupt the maintained count).
//
//   ./serving --overload [--max-queue 8] [--policy drop-oldest|reject|deadline]
//             [--deadline-ms 5] [--degrade-depth 4]
//
// Sharded mode partitions the V1 range across N independent stores and
// exercises the scatter-gather query plane: one writer per shard publishes
// disjoint-range batches with rounds aligned on a barrier (so the per-shard
// publish spans genuinely race), readers pin shard views instead of
// materialised snapshots, and the run fails unless the sharded count matches
// both a from-scratch recount and a sequential --shards 1 replay of the same
// scripted batches. --zipf theta (YCSB skew, rank 0 hottest) concentrates
// keys on the low shards so the per-shard cache hit-rate spread is visible.
//
//   ./serving --shards 4 [--zipf 0.9]
//
// Chaos mode moves every shard into its own bfc-shard-host process behind a
// RemoteShard and SIGKILLs one of them mid-load while the supervisor watches:
//
//   ./serving --shards 4 --kill-shard 2@mid --host-bin path/to/bfc-shard-host
//
// <round> is a 0-based publish round or "mid" (= epochs/2). The run fails
// unless: no query ever failed outright, the dead range's answers were
// tagged stale (per-shard fidelity bit) while a healthy range stayed exact,
// the supervisor restarted the host exactly once from its checkpoint, the
// victim writer's replay converged, and the final count still matches the
// sequential --shards 1 replay — crash recovery with zero drift.
//
// Telemetry plane (all optional, see docs/telemetry.md):
//
//   --metrics-port N   serve the OpenMetrics rendering on 127.0.0.1:N
//                      (0 = ephemeral; the bound port is printed)
//   --metrics-file F   dump the OpenMetrics rendering to F after every
//                      published epoch and at the end of the run
//   --spans-out F      enable request-scoped span collection and write the
//                      span tree as JSON; also arms span self-checks
//                      (every query produced a span; overload runs show
//                      degraded and shed outcomes with intact parent links)
//   --trace-sample N   head-based sampling: root (and therefore trace) only
//                      1 in N requests (default 1 = every request)
//   --profile-hz N     sample call stacks at N Hz for the whole run
//   --profile-out F    write the folded stacks (flamegraph.pl input)
//   --flight-out F     arm the flight recorder's fault dump at F and write
//                      the final ring there on success too
//   --slo-ms X         arm an X-millisecond latency objective on every
//                      query kind (svc.slo.* instruments, SLO-driven
//                      degradation); --slo-objective sets the fraction
//
// The run fails (exit 1) if the incrementally maintained count at the final
// epoch drifts from a from-scratch recount, or — when kernel metrics are
// compiled in — if the run produced no cache hits or no coalesced batches
// (normal mode), or no shed/rejected work (overload mode).
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <barrier>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <optional>
#include <set>
#include <string_view>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "count/baselines.hpp"
#include "la/count.hpp"
#include "obs/export.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/spans.hpp"
#include "shard/partition.hpp"
#include "shard/remote.hpp"
#include "shard/supervisor.hpp"
#include "shard/transport.hpp"
#include "sparse/ops.hpp"
#include "svc/service.hpp"
#include "util/rng.hpp"

namespace {

using namespace bfc;

struct MixEntry {
  std::string name;  // tip | global | edge | top
  int weight = 0;
};

std::vector<MixEntry> parse_mix(const std::string& spec) {
  std::vector<MixEntry> mix;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string item = spec.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    const std::size_t colon = item.find(':');
    require(colon != std::string::npos,
            "--mix entries must look like kind:weight");
    const std::string name = item.substr(0, colon);
    require(name == "tip" || name == "global" || name == "edge" ||
                name == "top",
            "--mix kinds are tip|global|edge|top, got '" + name + "'");
    const int weight = std::stoi(item.substr(colon + 1));
    require(weight >= 0, "--mix weights must be >= 0");
    mix.push_back({name, weight});
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  int total = 0;
  for (const MixEntry& m : mix) total += m.weight;
  require(total > 0, "--mix must have positive total weight");
  return mix;
}

const MixEntry& pick(const std::vector<MixEntry>& mix, Rng& rng, int total) {
  auto roll = static_cast<int>(rng.bounded(static_cast<std::uint64_t>(total)));
  for (const MixEntry& m : mix) {
    roll -= m.weight;
    if (roll < 0) return m;
  }
  return mix.back();
}

svc::ShedPolicy parse_policy(const std::string& name) {
  if (name == "reject") return svc::ShedPolicy::kRejectNew;
  if (name == "drop-oldest") return svc::ShedPolicy::kDropOldest;
  if (name == "deadline") return svc::ShedPolicy::kDeadlineAware;
  require(false, "--policy must be reject|drop-oldest|deadline, got '" +
                     name + "'");
  return svc::ShedPolicy::kRejectNew;  // unreachable
}

/// Uniform present edge of the pinned snapshot via the CSR row pointers.
std::pair<vidx_t, vidx_t> random_edge(const svc::SnapshotPtr& snap, Rng& rng) {
  const sparse::CsrPattern& a = snap->graph.csr();
  const auto k = static_cast<offset_t>(
      rng.bounded(static_cast<std::uint64_t>(snap->edges)));
  const auto& rp = a.row_ptr();
  const auto it = std::upper_bound(rp.begin(), rp.end(), k);
  const auto u = static_cast<vidx_t>(it - rp.begin() - 1);
  return {u, a.col_idx()[static_cast<std::size_t>(k)]};
}

/// Uniform present neighbour of `u` in the pinned shard snapshot; when u
/// currently has no edges, a uniform (possibly absent) partner — support of
/// an absent edge is a legal query answering 0.
std::pair<vidx_t, vidx_t> random_edge_at(const svc::SnapshotPtr& snap,
                                         vidx_t u, vidx_t n2, Rng& rng) {
  const sparse::CsrPattern& a = snap->graph.csr();
  const offset_t b = a.row_ptr()[static_cast<std::size_t>(u)];
  const offset_t e = a.row_ptr()[static_cast<std::size_t>(u) + 1];
  if (e > b) {
    const auto k = b + static_cast<offset_t>(
                           rng.bounded(static_cast<std::uint64_t>(e - b)));
    return {u, a.col_idx()[static_cast<std::size_t>(k)]};
  }
  return {u, static_cast<vidx_t>(rng.bounded(static_cast<std::uint64_t>(n2)))};
}

/// Sharded acceptance: the per-shard writers publish through independent
/// stores, so their root "svc.shard.publish" spans must actually overlap in
/// time — serialised publishes would mean the shard layer still funnels
/// every write through one lock. Only enforced with >= 2 hardware threads;
/// a single-core box can legitimately never overlap two CPU-bound sections.
bool check_publish_overlap() {
  const std::vector<obs::SpanRecord> spans = obs::SpanLog::snapshot();
  struct Pub {
    std::string_view shard;
    std::int64_t begin, end;
  };
  std::vector<Pub> pubs;
  for (const obs::SpanRecord& s : spans)
    if (s.name == std::string_view("svc.shard.publish"))
      pubs.push_back({s.tag("shard"), s.ts_us,
                      s.ts_us + std::max<std::int64_t>(s.dur_us, 1)});
  if (pubs.size() < 2) {
    std::cerr << "FATAL: sharded run recorded " << pubs.size()
              << " svc.shard.publish span(s); expected one per shard epoch\n";
    return false;
  }
  for (std::size_t i = 0; i < pubs.size(); ++i)
    for (std::size_t j = i + 1; j < pubs.size(); ++j)
      if (pubs[i].shard != pubs[j].shard && pubs[i].begin < pubs[j].end &&
          pubs[j].begin < pubs[i].end) {
        std::cout << "publish overlap: shards " << pubs[i].shard << " and "
                  << pubs[j].shard << " published concurrently ("
                  << pubs.size() << " publish spans total)\n";
        return true;
      }
  if (std::thread::hardware_concurrency() < 2) {
    std::cout << "publish overlap: skipped (single hardware thread)\n";
    return true;
  }
  std::cerr << "FATAL: no two svc.shard.publish spans from different shards "
               "overlap across "
            << pubs.size() << " publishes; shard writers appear serialised\n";
  return false;
}

struct KindStats {
  Samples latency;  // seconds per completed query
};

constexpr const char* kKinds[] = {"tip", "global", "edge", "top"};
constexpr int kKindCount = 4;

int kind_index(const std::string& name) {
  for (int i = 0; i < kKindCount; ++i)
    if (name == kKinds[i]) return i;
  return 0;
}

// One latency histogram per QueryKind, reset at every epoch boundary so each
// phase's distribution is observable on its own (docs/telemetry.md).
constexpr const char* kLatencyHistograms[] = {
    "svc.latency_us.global", "svc.latency_us.tip_v1", "svc.latency_us.tip_v2",
    "svc.latency_us.edge", "svc.latency_us.top_pairs"};

/// Span-plane self-checks plus the JSON dump. The log must be non-empty with
/// intact parent links (unless the bounded log dropped spans, which can
/// orphan survivors legitimately); an overload run must additionally show at
/// least one degraded answer and one shed/cancelled request in the tree.
bool check_spans(const std::string& path, bool overload) {
  const std::vector<obs::SpanRecord> spans = obs::SpanLog::snapshot();
  if (spans.empty()) {
    std::cerr << "FATAL: --spans-out is set but the span log is empty\n";
    return false;
  }
  std::set<std::uint64_t> ids;
  for (const obs::SpanRecord& s : spans) ids.insert(s.span_id);
  std::size_t broken = 0;
  std::int64_t degraded = 0;
  std::int64_t shed = 0;
  for (const obs::SpanRecord& s : spans) {
    if (s.parent_id != 0 && ids.count(s.parent_id) == 0) ++broken;
    const std::string_view outcome = s.tag("outcome");
    if (outcome == "stale" || outcome == "approx") ++degraded;
    if (outcome == "shed" || outcome == "cancelled" ||
        s.tag("rejected") == "true")
      ++shed;
  }
  if (obs::SpanLog::dropped() == 0 && broken > 0) {
    std::cerr << "FATAL: " << broken << " span(s) have dangling parent ids\n";
    return false;
  }
  if (overload && (degraded == 0 || shed == 0)) {
    std::cerr << "FATAL: overload span tree shows degraded=" << degraded
              << " shed=" << shed << "; expected both > 0\n";
    return false;
  }
  obs::SpanLog::write_json(path);
  std::cout << "spans: " << spans.size() << " recorded ("
            << obs::SpanLog::dropped() << " dropped), " << degraded
            << " degraded, " << shed << " shed/cancelled\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using bfc::bench::BenchConfig;
  const BenchConfig cfg = bfc::bench::parse_config(
      argc, argv,
      {"readers", "epochs", "batch", "queries", "pool", "mix", "shards",
       "zipf", "kill-shard", "host-bin", "overload", "max-queue", "policy",
       "deadline-ms", "degrade-depth", "metrics-port", "metrics-file",
       "spans-out", "trace-sample", "profile-hz", "profile-out", "flight-out",
       "slo-ms", "slo-objective"});
  const Cli cli(argc, argv);
  const int readers = static_cast<int>(cli.get_int("readers", 4));
  const int epochs = static_cast<int>(cli.get_int("epochs", 8));
  const int batch_size = static_cast<int>(cli.get_int("batch", 200));
  const int queries_per_reader = static_cast<int>(cli.get_int("queries", 500));
  const int pool = static_cast<int>(cli.get_int("pool", 4));
  const std::vector<MixEntry> mix =
      parse_mix(cli.get("mix", "tip:6,global:2,edge:1,top:1"));
  require(readers >= 1 && epochs >= 1 && batch_size >= 1 &&
              queries_per_reader >= 1 && pool >= 1,
          "--readers/--epochs/--batch/--queries/--pool must be >= 1");
  int mix_total = 0;
  for (const MixEntry& m : mix) mix_total += m.weight;

  const int shards = static_cast<int>(cli.get_int_at_least("shards", 1, 1));
  const bool sharded = shards > 1;
  const double zipf_theta = cli.get_double("zipf", 0.0);
  require(zipf_theta >= 0.0 && zipf_theta < 1.0,
          "--zipf must be in [0, 1): 0 disables, YCSB theta otherwise");

  // Chaos mode: out-of-process shard hosts, one SIGKILLed mid-run.
  const std::string kill_spec = cli.get("kill-shard", "");
  const std::string host_bin = cli.get("host-bin", "");
  const bool chaos = !kill_spec.empty();
  int victim = -1;
  int kill_round = -1;
  if (chaos) {
    require(sharded, "--kill-shard needs --shards > 1");
    require(!host_bin.empty(),
            "--kill-shard needs --host-bin <path to bfc-shard-host>");
    const std::size_t at = kill_spec.find('@');
    require(at != std::string::npos && at > 0 && at + 1 < kill_spec.size(),
            "--kill-shard spec is <shard>@<round|mid>, got '" + kill_spec +
                "'");
    victim = std::stoi(kill_spec.substr(0, at));
    const std::string round = kill_spec.substr(at + 1);
    kill_round = round == "mid" ? epochs / 2 : std::stoi(round);
    require(victim >= 0 && victim < shards,
            "--kill-shard shard index out of range");
    require(kill_round >= 0 && kill_round < epochs,
            "--kill-shard round must be in [0, epochs)");
  }

  // Overload mode: bounded queue sized to saturate under the reader load,
  // tight deadlines, degraded-mode threshold at half the bound.
  const bool overload = cli.get_bool("overload", false);
  const auto max_queue = static_cast<std::size_t>(cli.get_int_at_least(
      "max-queue", overload ? 2 * static_cast<std::int64_t>(pool) : 0, 0));
  const svc::ShedPolicy policy =
      parse_policy(cli.get("policy", overload ? "drop-oldest" : "reject"));
  const double deadline_ms =
      cli.get_double("deadline-ms", overload ? 5.0 : 0.0);
  const auto degrade_depth = static_cast<std::size_t>(cli.get_int_at_least(
      "degrade-depth",
      overload ? std::max<std::int64_t>(
                     1, static_cast<std::int64_t>(max_queue) / 2)
               : 0,
      0));
  require(!overload || max_queue > 0, "--overload needs --max-queue >= 1");
  require(!overload || !chaos,
          "--kill-shard and --overload are separate acceptance runs: chaos "
          "asserts zero failed queries, overload asserts shed work");

  // ---- telemetry plane ----------------------------------------------------
  const bool has_metrics_port = cli.has("metrics-port");
  const int metrics_port =
      static_cast<int>(cli.get_int_at_least("metrics-port", 0, 0));
  const std::string metrics_file = cli.get("metrics-file", "");
  const std::string spans_out = cli.get("spans-out", "");
  const int profile_hz =
      static_cast<int>(cli.get_int_at_least("profile-hz", 0, 0));
  const std::string profile_out = cli.get("profile-out", "");
  const std::string flight_out = cli.get("flight-out", "");
  const double slo_ms = cli.get_double("slo-ms", 0.0);
  const double slo_objective = cli.get_double("slo-objective", 0.99);
  require(slo_objective > 0.0 && slo_objective <= 1.0,
          "--slo-objective must be in (0, 1]");
  const auto trace_sample = static_cast<std::uint64_t>(
      cli.get_int_at_least("trace-sample", 1, 1));
  if (!spans_out.empty()) {
    obs::SpanLog::set_sample_period(trace_sample);
    obs::SpanLog::set_enabled(true);
  }
  if (!flight_out.empty()) obs::FlightRecorder::set_dump_path(flight_out);
  std::unique_ptr<obs::MetricsHttpServer> exporter;
  if (has_metrics_port)
    exporter = std::make_unique<obs::MetricsHttpServer>(metrics_port);

  bfc::bench::print_header("serving: concurrent query load generator", cfg);
  if (exporter)
    std::cout << "metrics exporter: http://127.0.0.1:" << exporter->port()
              << "/metrics\n";

  // Initial graph: the arXiv cond-mat stand-in at --scale, loaded as the
  // first published epoch.
  const gen::KonectPreset& preset = gen::konect_preset("arXiv cond-mat");
  const graph::BipartiteGraph initial =
      gen::make_konect_like(preset, cfg.scale, cfg.seed);
  const vidx_t n1 = initial.n1(), n2 = initial.n2();

  svc::ServiceOptions service_options{.threads = pool,
                                      .shards = shards,
                                      .max_queue = max_queue,
                                      .shed_policy = policy,
                                      .degrade_queue_depth = degrade_depth};
  if (slo_ms > 0.0) {
    service_options.slo_target_us.fill(slo_ms * 1e3);
    service_options.slo_objective = slo_objective;
  }
  svc::ButterflyService service(n1, n2, service_options);
  const shard::RangePartition part = service.shard_store().partition();

  // Chaos plumbing: every shard moves into its own bfc-shard-host process
  // behind a RemoteShard BEFORE the initial load, so all shard state lives
  // across a process boundary and every publish/pin crosses the socket.
  std::optional<shard::ShardSupervisor> supervisor;
  std::vector<std::shared_ptr<shard::RemoteShard>> remotes;
  std::vector<std::string> chaos_ckpts;
  if (chaos) {
    const std::string stem =
        "/tmp/bfc_chaos_" + std::to_string(::getpid()) + "_";
    supervisor.emplace();
    for (int k = 0; k < shards; ++k) {
      shard::HostSpec spec;
      spec.binary = host_bin;
      spec.socket = stem + std::to_string(k) + ".sock";
      spec.id = k;
      spec.n1 = n1;
      spec.n2 = n2;
      spec.lo = part.begin(k);
      spec.hi = part.end(k);
      supervisor->add_host(spec);
      auto remote = std::make_shared<shard::RemoteShard>(
          k, n1, n2, spec.lo, spec.hi, spec.socket);
      service.swap_shard(k, remote);
      remotes.push_back(std::move(remote));
      chaos_ckpts.push_back(stem + std::to_string(k) + ".ckpt");
    }
  }

  {
    std::vector<svc::EdgeUpdate> load;
    for (const auto& [u, v] : sparse::edges(initial.csr()))
      load.push_back(svc::EdgeUpdate::add(u, v));
    service.apply_updates(load);
  }

  if (chaos) {
    // Checkpoint every host right after the initial load and hand the paths
    // to the supervisor: a restart restores this state, and the victim
    // writer replays its scripted rounds on top — exact by construction.
    for (int k = 0; k < shards; ++k) {
      remotes[static_cast<std::size_t>(k)]->persist(
          chaos_ckpts[static_cast<std::size_t>(k)]);
      supervisor->set_snapshot(k, chaos_ckpts[static_cast<std::size_t>(k)]);
    }
    // The monitor is NOT started here: the victim writer starts it right
    // after the staleness witness below. With the monitor live from the
    // start, a fast restart can heal the range before the circuit breaker
    // (3 consecutive failed pins, ~tens of ms) ever opens, and the witness
    // would race the recovery instead of deterministically observing the
    // dark range.
  }
  const auto start_chaos_monitor = [&supervisor] {
    supervisor->start_monitor([](int k, std::uint64_t restored_epoch) {
      std::cout << "supervisor: restarted shard " << k
                << " from its checkpoint (restored epoch " << restored_epoch
                << ")\n";
    });
  };
  std::cout << "graph: |V1|=" << n1 << " |V2|=" << n2
            << " |E|=" << service.snapshot()->edges << "  readers=" << readers
            << " pool=" << pool << " epochs=" << epochs
            << " batch=" << batch_size << " queries/reader="
            << queries_per_reader << "\n";
  if (overload)
    std::cout << "overload: max-queue=" << max_queue << " policy="
              << svc::shed_policy_name(policy) << " deadline="
              << Table::fixed(deadline_ms, 1) << " ms degrade-depth="
              << degrade_depth << "\n";
  if (sharded) {
    std::cout << "sharded: " << shards << " range-partitioned stores, "
              << shards << " concurrent writers (V1 ranges";
    for (int k = 0; k < shards; ++k)
      std::cout << (k == 0 ? " " : ", ") << "[" << part.begin(k) << ","
                << part.end(k) << ")";
    std::cout << ")\n";
  }
  if (zipf_theta > 0.0)
    std::cout << "zipf: theta=" << Table::fixed(zipf_theta, 2)
              << " (rank 0 hottest; low ranks land in shard 0)\n";
  if (chaos)
    std::cout << "chaos: " << shards << " out-of-process hosts (" << host_bin
              << "); SIGKILL shard " << victim << " after round " << kill_round
              << "\n";
  std::cout << "\n";

  // Key popularity: --zipf draws ranks from the YCSB Zipf generator (rank 0
  // hottest, and under the range partition low ranks live in shard 0, so the
  // skew shows up as a per-shard hit-rate spread in the report). Without
  // --zipf, a small uniform hot set supplies the cache repeats as before.
  constexpr int kHotSet = 16;
  std::optional<Zipf> zipf_v1, zipf_v2;
  if (zipf_theta > 0.0) {
    zipf_v1.emplace(static_cast<std::uint64_t>(n1), zipf_theta);
    zipf_v2.emplace(static_cast<std::uint64_t>(n2), zipf_theta);
  }
  const auto pick_v1 = [&](Rng& rng) {
    if (zipf_v1) return static_cast<vidx_t>(zipf_v1->next(rng));
    const bool hot = rng.bernoulli(0.3);
    return static_cast<vidx_t>(rng.bounded(
        static_cast<std::uint64_t>(hot ? std::min(kHotSet, n1) : n1)));
  };
  const auto pick_v2 = [&](Rng& rng) {
    if (zipf_v2) return static_cast<vidx_t>(zipf_v2->next(rng));
    const bool hot = rng.bernoulli(0.3);
    return static_cast<vidx_t>(rng.bounded(
        static_cast<std::uint64_t>(hot ? std::min(kHotSet, n2) : n2)));
  };

  const std::int64_t total_queries =
      static_cast<std::int64_t>(readers) * queries_per_reader;
  std::atomic<std::int64_t> completed{0};
  std::atomic<std::int64_t> completed_at_reset{0};
  std::atomic<std::int64_t> degraded_answers{0};
  std::atomic<std::int64_t> overload_errors{0};

  // Chaos evidence, written by the victim writer and read after the join.
  std::atomic<bool> saw_victim_stale{false};
  std::atomic<bool> saw_healthy_exact{false};
  std::atomic<bool> chaos_recovery_failed{false};
  std::atomic<std::int64_t> outage_rounds{0};

  // Sharded writers replay a pre-generated script: shard k's round-e batch
  // only touches V1 vertices in [begin(k), end(k)), so the N writers can
  // publish concurrently, and the exact same batches can be replayed
  // sequentially into a --shards 1 service for the zero-drift check.
  std::vector<std::vector<std::vector<svc::EdgeUpdate>>> script;
  if (sharded) {
    const int per_shard = std::max(1, batch_size / shards);
    script.resize(static_cast<std::size_t>(shards));
    for (int k = 0; k < shards; ++k) {
      Rng wrng(cfg.seed + 1 + static_cast<std::uint64_t>(k));
      const vidx_t lo = part.begin(k), hi = part.end(k);
      auto& rounds = script[static_cast<std::size_t>(k)];
      rounds.resize(static_cast<std::size_t>(epochs));
      for (auto& round : rounds) {
        round.reserve(static_cast<std::size_t>(per_shard));
        for (int i = 0; i < per_shard && hi > lo; ++i)
          round.push_back(
              {lo + static_cast<vidx_t>(wrng.bounded(
                        static_cast<std::uint64_t>(hi - lo))),
               static_cast<vidx_t>(
                   wrng.bounded(static_cast<std::uint64_t>(n2))),
               wrng.bernoulli(0.7)});
      }
    }
  }

  // Epoch boundary, shared by both writer modes: dump the metrics rendering
  // with this phase's latency distributions still intact, reset the per-kind
  // histograms so the next phase's shape is observable on its own, and pace
  // the next round against reader progress so the epochs spread across the
  // whole run. Sharded, this runs as the barrier's completion step — on one
  // writer thread while the rest are parked at the barrier.
  const std::int64_t quota =
      std::max<std::int64_t>(1, total_queries / (epochs + 1));
  // The cache's per-tier hit/miss counts are generation-scoped: a publish on
  // shard k resets tier k's stats (result_cache.hpp). To report per-shard
  // hit rates over the whole run, each boundary — after pacing has let a
  // quota of queries run against the fresh generation — folds the tier
  // stats into these cumulative sums before the next publish resets them.
  std::vector<std::int64_t> shard_gen_hits, shard_gen_misses;
  if (sharded) {
    shard_gen_hits.assign(static_cast<std::size_t>(shards) + 1, 0);
    shard_gen_misses.assign(static_cast<std::size_t>(shards) + 1, 0);
  }
  const auto epoch_boundary = [&]() noexcept {
    if (!metrics_file.empty()) obs::write_openmetrics_file(metrics_file);
    if constexpr (obs::kMetricsEnabled) {
      for (const char* name : kLatencyHistograms)
        obs::Registry::instance().histogram(name).reset();
      completed_at_reset.store(completed.load(std::memory_order_relaxed),
                               std::memory_order_relaxed);
    }
    const std::int64_t target = std::min(
        total_queries, completed.load(std::memory_order_relaxed) + quota);
    while (completed.load(std::memory_order_relaxed) < target)
      std::this_thread::yield();
    if (sharded)
      for (int k = 0; k <= shards; ++k) {
        shard_gen_hits[static_cast<std::size_t>(k)] +=
            service.cache().hits(k);
        shard_gen_misses[static_cast<std::size_t>(k)] +=
            service.cache().misses(k);
      }
  };
  std::barrier round_barrier(std::max(shards, 1), epoch_boundary);

  if (profile_hz > 0)
    require(obs::Profiler::start(profile_hz),
            "--profile-hz: cannot arm the sampling profiler");
  std::vector<std::vector<KindStats>> per_reader(
      static_cast<std::size_t>(readers));

  Timer wall;
  {
    std::vector<std::jthread> threads;
    threads.reserve(static_cast<std::size_t>(readers) + 1);

    // Writer(s): publishes `epochs` update batches, paced against reader
    // progress so the epochs are spread across the whole run. shards==1
    // keeps the classic single writer; sharded runs start one writer per
    // shard over its pre-scripted disjoint-range batches, with rounds
    // aligned on the barrier so the per-shard publishes genuinely race (the
    // epoch boundary then runs as the barrier's completion step, on one
    // writer thread while the rest are parked).
    if (!sharded) {
      threads.emplace_back([&] {
        Rng rng(cfg.seed + 1);
        for (int e = 0; e < epochs; ++e) {
          std::vector<svc::EdgeUpdate> batch;
          batch.reserve(static_cast<std::size_t>(batch_size));
          for (int i = 0; i < batch_size; ++i)
            batch.push_back({static_cast<vidx_t>(rng.bounded(
                                 static_cast<std::uint64_t>(n1))),
                             static_cast<vidx_t>(rng.bounded(
                                 static_cast<std::uint64_t>(n2))),
                             rng.bernoulli(0.7)});
          service.apply_updates(batch);
          epoch_boundary();
        }
      });
    } else {
      for (int k = 0; k < shards; ++k)
        threads.emplace_back([&, k] {
          const auto& rounds = script[static_cast<std::size_t>(k)];
          // behind = the host restored its initial-load checkpoint (or is
          // about to), so every scripted round applied so far is gone from
          // it. Recovery replays the script from round 0 in publish order:
          // EdgeUpdate batches are absolute (add -> present, del -> absent),
          // so reapplying an ordered prefix that partially landed converges
          // on exactly the sequential state.
          bool behind = false;
          const auto replay_through = [&](int upto) {
            for (int r = 0; r < upto; ++r)
              service.apply_updates_shard(k, rounds[static_cast<std::size_t>(
                                                 r)]);
          };
          for (int e = 0; e < epochs; ++e) {
            try {
              if (behind) {
                replay_through(e);
                behind = false;
              }
              service.apply_updates_shard(k,
                                          rounds[static_cast<std::size_t>(e)]);
            } catch (const shard::ShardUnavailableError&) {
              behind = true;  // quarantined round; the drain below replays it
              outage_rounds.fetch_add(1, std::memory_order_relaxed);
            }
            if (chaos && k == victim && e == kill_round) {
              supervisor->kill_host(victim, SIGKILL);
              behind = true;  // the restart will restore the checkpoint
              // Witness the failure domain from the query plane while the
              // range is dark: the dead range's answer must pick up the
              // victim's staleness bit (the circuit opens after a handful
              // of failed pins), and a healthy range must stay exact in
              // the same window. Bounded spin: the breaker opens in
              // milliseconds, long before the supervised restart lands.
              const vidx_t dead_u = part.begin(victim);
              const vidx_t live_u = part.begin(victim == 0 ? 1 : 0);
              for (int t = 0; t < 20000; ++t) {
                const svc::QueryResult<count_t> r =
                    service.vertex_tip_v1(dead_u).get();
                if (r.stale_shards >> victim & 1u) {
                  saw_victim_stale.store(true, std::memory_order_relaxed);
                  break;
                }
              }
              const svc::QueryResult<count_t> live =
                  service.vertex_tip_v1(live_u).get();
              if (!live.degraded())
                saw_healthy_exact.store(true, std::memory_order_relaxed);
              // Witness done: now let the supervisor notice the corpse and
              // restore it (the drain below waits for that restart).
              start_chaos_monitor();
            }
            round_barrier.arrive_and_wait();
          }
          // Drain: rounds lost to the outage are still owed. Wait out the
          // supervised restart and replay the whole script in order.
          const auto give_up =
              std::chrono::steady_clock::now() + std::chrono::seconds(60);
          while (behind) {
            try {
              replay_through(epochs);
              behind = false;
            } catch (const shard::ShardUnavailableError&) {
              if (std::chrono::steady_clock::now() > give_up) {
                chaos_recovery_failed.store(true, std::memory_order_relaxed);
                break;
              }
              std::this_thread::sleep_for(std::chrono::milliseconds(20));
            }
          }
        });
    }

    for (int r = 0; r < readers; ++r) {
      per_reader[static_cast<std::size_t>(r)].resize(kKindCount);
      threads.emplace_back([&, r] {
        std::vector<KindStats>& stats = per_reader[static_cast<std::size_t>(r)];
        Rng rng(cfg.seed + 100 + static_cast<std::uint64_t>(r));
        for (int q = 0; q < queries_per_reader; ++q) {
          // Pin the consistency unit once per query: a materialised snapshot
          // in single-shard mode, a shard view (one pointer per shard) when
          // sharded — materialising the union per query would be O(|E|).
          const svc::SnapshotPtr snap = sharded ? nullptr : service.snapshot();
          const shard::ShardViewPtr view = sharded ? service.view() : nullptr;
          // Fresh deadline per request: the budget is relative to *now*.
          const svc::Deadline deadline =
              deadline_ms > 0.0
                  ? svc::Deadline::after(std::chrono::duration_cast<
                                         svc::Deadline::Clock::duration>(
                        std::chrono::duration<double, std::milli>(
                            deadline_ms)))
                  : svc::Deadline{};
          const svc::Request req = sharded ? svc::Request(view, deadline)
                                           : svc::Request(snap, deadline);
          const MixEntry& kind = pick(mix, rng, mix_total);
          bool degraded = false;
          bool shed = false;
          Timer timer;
          try {
            if (kind.name == "tip") {
              if (rng.bernoulli(0.5)) {
                degraded =
                    service.vertex_tip_v1(pick_v1(rng), req).get().degraded();
              } else {
                degraded =
                    service.vertex_tip_v2(pick_v2(rng), req).get().degraded();
              }
            } else if (kind.name == "global") {
              (void)service.global_count(req).get();
            } else if (kind.name == "edge") {
              if (sharded) {
                const vidx_t u = pick_v1(rng);
                const svc::SnapshotPtr& owner =
                    view->shards[static_cast<std::size_t>(part.owner(u))];
                const auto [eu, ev] = random_edge_at(owner, u, n2, rng);
                degraded = service.edge_support(eu, ev, req).get().degraded();
              } else if (snap->edges > 0) {
                const auto [u, v] = random_edge(snap, rng);
                degraded = service.edge_support(u, v, req).get().degraded();
              }
            } else {  // top
              degraded = service.top_pairs(8, req).get().degraded();
            }
          } catch (const svc::OverloadError&) {
            shed = true;  // no answer at any fidelity; the caller retries
          }
          if (!shed)
            stats[static_cast<std::size_t>(kind_index(kind.name))].latency.add(
                timer.seconds());
          if (degraded) degraded_answers.fetch_add(1, std::memory_order_relaxed);
          if (shed) overload_errors.fetch_add(1, std::memory_order_relaxed);
          completed.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
  }  // join writer + readers
  const double elapsed = wall.seconds();

  // Merge per-reader samples and print the latency table.
  obs::RunReport& report = bfc::bench::report();
  Table table({"kind", "queries", "qps", "p50 ms", "p95 ms", "p99 ms"});
  std::int64_t answered = 0;
  for (int k = 0; k < kKindCount; ++k) {
    Samples merged;
    for (const std::vector<KindStats>& stats : per_reader)
      for (const double s :
           stats[static_cast<std::size_t>(k)].latency.values())
        merged.add(s);
    if (merged.count() == 0) continue;
    answered += static_cast<std::int64_t>(merged.count());
    table.add_row({kKinds[k], Table::num(static_cast<count_t>(merged.count())),
                   Table::fixed(static_cast<double>(merged.count()) / elapsed,
                                1),
                   Table::fixed(merged.percentile(50) * 1e3, 3),
                   Table::fixed(merged.percentile(95) * 1e3, 3),
                   Table::fixed(merged.percentile(99) * 1e3, 3)});
    report.add_sample(std::string("latency.") + kKinds[k], merged);
  }
  table.print(std::cout);
  std::cout << "\n" << answered << " answered of " << total_queries
            << " issued in " << Table::fixed(elapsed, 3) << " s ("
            << Table::fixed(static_cast<double>(answered) / elapsed, 1)
            << " qps aggregate) across " << service.snapshot()->epoch
            << " published epochs\n";
  std::cout << "degraded answers: "
            << degraded_answers.load(std::memory_order_relaxed)
            << "  shed without answer: "
            << overload_errors.load(std::memory_order_relaxed) << "\n";
  const auto gen_rate = [&](int k) {
    const std::int64_t total = shard_gen_hits[static_cast<std::size_t>(k)] +
                               shard_gen_misses[static_cast<std::size_t>(k)];
    return total == 0 ? 0.0
                      : static_cast<double>(
                            shard_gen_hits[static_cast<std::size_t>(k)]) /
                            static_cast<double>(total);
  };
  if (sharded) {
    // Tiers 0..N-1 hold shard-local components keyed by shard epoch; tier N
    // holds answers composed per view signature. Zipf skew shows up here as
    // a hit-rate (and traffic) spread across the shard tiers.
    std::cout << "per-shard cache tiers:";
    for (int k = 0; k < shards; ++k)
      std::cout << "  s" << k << "=" << Table::fixed(gen_rate(k) * 100.0, 1)
                << "% ("
                << shard_gen_hits[static_cast<std::size_t>(k)] +
                       shard_gen_misses[static_cast<std::size_t>(k)]
                << " lookups)";
    std::cout << "  view=" << Table::fixed(gen_rate(shards) * 100.0, 1)
              << "%\n";
  }

  report.set_config("readers", static_cast<std::int64_t>(readers));
  report.set_config("epochs", static_cast<std::int64_t>(epochs));
  report.set_config("batch", static_cast<std::int64_t>(batch_size));
  report.set_config("queries_per_reader",
                    static_cast<std::int64_t>(queries_per_reader));
  report.set_config("pool", static_cast<std::int64_t>(pool));
  report.set_config("overload", static_cast<std::int64_t>(overload ? 1 : 0));
  report.set_config("max_queue", static_cast<std::int64_t>(max_queue));
  report.set_config("degraded_answers",
                    degraded_answers.load(std::memory_order_relaxed));
  report.set_config("overload_errors",
                    overload_errors.load(std::memory_order_relaxed));
  report.set_config("shards", static_cast<std::int64_t>(shards));
  report.set_config("zipf", zipf_theta);
  if (sharded) {
    for (int k = 0; k < shards; ++k) {
      const std::string prefix = "shard_" + std::to_string(k) + "_";
      report.set_config(prefix + "hits",
                        shard_gen_hits[static_cast<std::size_t>(k)]);
      report.set_config(prefix + "misses",
                        shard_gen_misses[static_cast<std::size_t>(k)]);
      report.set_config(prefix + "hit_rate", gen_rate(k));
    }
    report.set_config("view_tier_hit_rate", gen_rate(shards));
  }

  // Chaos acceptance: the failure was observed from the query plane,
  // isolated to its range, healed by exactly one supervised restart, and no
  // query ever failed outright. The drift checks below then prove the
  // recovery replay converged on the sequential state.
  if (chaos) {
    if (chaos_recovery_failed.load(std::memory_order_relaxed)) {
      std::cerr << "FATAL: the victim shard never recovered; the replay "
                   "drain gave up\n";
      return 1;
    }
    if (supervisor->restarts() != 1) {
      std::cerr << "FATAL: expected exactly one supervised restart, saw "
                << supervisor->restarts() << "\n";
      return 1;
    }
    if (!saw_victim_stale.load(std::memory_order_relaxed)) {
      std::cerr << "FATAL: no query on the dead range picked up shard "
                << victim << "'s staleness bit during the outage\n";
      return 1;
    }
    if (!saw_healthy_exact.load(std::memory_order_relaxed)) {
      std::cerr << "FATAL: a healthy-range query degraded during the "
                   "outage; the failure was not isolated to the dead shard\n";
      return 1;
    }
    if (overload_errors.load(std::memory_order_relaxed) != 0) {
      std::cerr << "FATAL: "
                << overload_errors.load(std::memory_order_relaxed)
                << " query(ies) failed outright during the chaos run; a "
                   "dead shard must degrade answers, never fail them\n";
      return 1;
    }
    std::cout << "chaos check: shard " << victim << " SIGKILLed after round "
              << kill_round << ", "
              << outage_rounds.load(std::memory_order_relaxed)
              << " publish round(s) quarantined, 1 supervised restart, dead "
                 "range served stale, healthy ranges exact, zero failed "
                 "queries\n";
    if constexpr (obs::kMetricsEnabled) {
      const auto counter = [](const std::string& name) {
        return obs::Registry::instance().counter(name).value();
      };
      const std::int64_t retries = counter("svc.remote.retries");
      const std::int64_t unavailable =
          counter("svc.shard." + std::to_string(victim) + ".unavailable");
      const std::int64_t restarts = counter("svc.supervisor.restarts");
      if (retries <= 0 || unavailable <= 0 || restarts != 1) {
        std::cerr << "FATAL: failure-domain counters look wrong: "
                     "svc.remote.retries="
                  << retries << " svc.shard." << victim
                  << ".unavailable=" << unavailable
                  << " svc.supervisor.restarts=" << restarts << "\n";
        return 1;
      }
      std::cout << "chaos telemetry: svc.remote.retries=" << retries
                << " svc.remote.timeouts=" << counter("svc.remote.timeouts")
                << " svc.shard." << victim << ".unavailable=" << unavailable
                << " svc.supervisor.restarts=" << restarts << "\n";
    }
    report.set_config("chaos_victim", static_cast<std::int64_t>(victim));
    report.set_config("chaos_kill_round",
                      static_cast<std::int64_t>(kill_round));
    report.set_config("chaos_outage_rounds",
                      outage_rounds.load(std::memory_order_relaxed));
    report.set_config("chaos_restarts",
                      static_cast<std::int64_t>(supervisor->restarts()));
    supervisor->stop_monitor();
  }

  // Zero-drift acceptance: the incrementally maintained count at the final
  // epoch must equal a from-scratch recount of the materialised snapshot —
  // shedding and degrading reads must never have touched the write path.
  // Two independent engines recount (wedge reference and the linear-algebra
  // dispatch); running the la/ kernel here also keeps it inside the
  // profiler's sampling window, so folded profiles attribute time to it.
  const svc::SnapshotPtr fin = service.snapshot();
  const count_t recount = count::wedge_reference(fin->graph);
  const count_t la_recount = la::count_butterflies(fin->graph);
  if (profile_hz > 0) {
    // A profiled run repeats the la/ recount for ~0.2 s of kernel CPU so the
    // sampler (capped near the kernel tick rate) lands enough stacks inside
    // it to attribute; every repetition must agree with the first.
    for (Timer t; t.seconds() < 0.2;) {
      if (la::count_butterflies(fin->graph) != la_recount) {
        std::cerr << "FATAL: la recount is not deterministic\n";
        return 1;
      }
    }
  }
  if (fin->butterflies != recount || fin->butterflies != la_recount) {
    std::cerr << "FATAL: count drift at epoch " << fin->epoch << ": serving "
              << fin->butterflies << " != recount " << recount << " (wedge) / "
              << la_recount << " (la)\n";
    return 1;
  }
  std::cout << "drift check: epoch " << fin->epoch << " count "
            << fin->butterflies << " == from-scratch recount (both engines)\n";

  // Sharded zero-drift acceptance: the same scripted batches, replayed
  // sequentially into a --shards 1 service, must land on exactly the same
  // count — concurrent disjoint-range publishes may not lose or duplicate a
  // single butterfly relative to the serial single-store execution.
  if (sharded) {
    svc::ButterflyService replay(n1, n2, svc::ServiceOptions{.threads = 1});
    std::vector<svc::EdgeUpdate> load;
    for (const auto& [u, v] : sparse::edges(initial.csr()))
      load.push_back(svc::EdgeUpdate::add(u, v));
    replay.apply_updates(load);
    for (int e = 0; e < epochs; ++e)
      for (int k = 0; k < shards; ++k)
        replay.apply_updates(script[static_cast<std::size_t>(k)]
                                   [static_cast<std::size_t>(e)]);
    const svc::SnapshotPtr single = replay.snapshot();
    if (single->butterflies != fin->butterflies ||
        single->edges != fin->edges) {
      std::cerr << "FATAL: sharded count drift: --shards " << shards
                << " finished with " << fin->butterflies << " butterflies / "
                << fin->edges << " edges but the --shards 1 replay has "
                << single->butterflies << " / " << single->edges << "\n";
      return 1;
    }
    std::cout << "shard drift check: --shards " << shards
              << " == --shards 1 sequential replay (" << single->butterflies
              << " butterflies)\n";
  }

  // ---- telemetry teardown -------------------------------------------------
  if (profile_hz > 0) {
    obs::Profiler::stop();
    std::cout << "profiler: " << obs::Profiler::samples_captured()
              << " samples captured, " << obs::Profiler::samples_dropped()
              << " dropped, at " << profile_hz << " Hz\n";
    if (!profile_out.empty()) obs::Profiler::write_folded(profile_out);
  }
  if (!metrics_file.empty()) obs::write_openmetrics_file(metrics_file);
  if (!flight_out.empty() &&
      !obs::FlightRecorder::dump(flight_out, "end of run")) {
    std::cerr << "FATAL: cannot write flight-recorder dump to " << flight_out
              << '\n';
    return 1;
  }
  if (exporter)
    std::cout << "metrics exporter served " << exporter->requests_served()
              << " request(s) on port " << exporter->port() << "\n";
  if (!spans_out.empty()) {
    if constexpr (obs::kMetricsEnabled) {
      if (!check_spans(spans_out, overload)) return 1;
      if (sharded && !check_publish_overlap()) return 1;
    } else {
      std::cout << "spans: collection compiled out (BFC_METRICS=OFF)\n";
    }
  }

  if constexpr (obs::kMetricsEnabled) {
    const auto counter = [](const char* name) {
      return obs::Registry::instance().counter(name).value();
    };
    const std::int64_t hits = counter("svc.cache_hits");
    const std::int64_t coalesced = counter("svc.coalesced_batches");
    std::cout << "cache hits: " << hits
              << "  misses: " << counter("svc.cache_misses")
              << "  coalesced batches: " << coalesced
              << "  tip passes: " << counter("svc.tip_passes") << '\n';
    const std::int64_t shed = counter("svc.shed");
    const std::int64_t rejected = counter("svc.rejected");
    const std::int64_t expired = counter("svc.deadline_expired");
    std::cout << "shed: " << shed << "  rejected: " << rejected
              << "  deadline expired: " << expired
              << "  stale answers: " << counter("svc.stale_answers")
              << "  approx fallbacks: " << counter("svc.approx_fallbacks")
              << "  inline answers: " << counter("svc.inline_answers")
              << '\n';
    if (overload) {
      // The overload run is meaningless if admission never pushed back.
      if (shed + rejected + expired <= 0) {
        std::cerr << "FATAL: overload run shed no work (queue never "
                     "saturated?); raise --readers or lower --max-queue\n";
        return 1;
      }
    } else if (hits <= 0 || coalesced <= 0) {
      std::cerr << "FATAL: serving run produced no cache hits or no "
                   "coalesced batches\n";
      return 1;
    }

    // The per-kind latency histograms are reset at every epoch boundary, so
    // the surviving counts must cover only the tail of the run: queries that
    // finished after the last published epoch, plus at most one in-flight
    // query per reader straddling the reset.
    std::int64_t hist_total = 0;
    for (const char* name : kLatencyHistograms)
      hist_total += obs::Registry::instance().histogram(name).count();
    const std::int64_t tail =
        total_queries - completed_at_reset.load(std::memory_order_relaxed);
    if (hist_total > tail + readers) {
      std::cerr << "FATAL: latency histograms hold " << hist_total
                << " observations but only " << tail
                << " queries finished after the last epoch reset\n";
      return 1;
    }
    if (!overload && hist_total <= 0 && tail > readers) {
      std::cerr << "FATAL: latency histograms empty despite a " << tail
                << "-query tail after the final epoch reset\n";
      return 1;
    }
    std::cout << "epoch-scoped latency histograms: " << hist_total
              << " observations across a " << tail << "-query tail\n";
  }

  for (const std::string& p : chaos_ckpts) std::remove(p.c_str());
  bfc::bench::write_reports(cfg);
  return 0;
}
