// P1: k-tip / k-wing peeling (§IV). A planted block-community graph is
// peeled at increasing k with both the paper's mask-iteration formulation
// (Eqs. 19-22 / 25-27) and the bucket-decomposition baseline; the two must
// extract identical subgraphs, and the table shows cost and subgraph sizes
// as the threshold sweeps across the planted density.
#include <cstdlib>
#include <iostream>

#include "bench_common.hpp"
#include "chk/checked_math.hpp"
#include "gen/generators.hpp"
#include "peel/decompose.hpp"
#include "peel/peeling.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace bfc;
  const bench::BenchConfig cfg = bench::parse_config(argc, argv);
  bench::print_header("P1: k-tip and k-wing peeling", cfg);

  gen::BlockCommunitySpec spec;
  spec.blocks = 4;
  spec.block_rows = std::max<vidx_t>(4, static_cast<vidx_t>(200 * cfg.scale));
  spec.block_cols = spec.block_rows;
  spec.extra_rows = spec.block_rows * 2;
  spec.extra_cols = spec.block_cols * 2;
  spec.p_in = 0.4;
  spec.p_out = 0.002;
  const auto g = gen::block_community(spec, cfg.seed);
  std::cout << "graph: |V1|=" << g.n1() << " |V2|=" << g.n2()
            << " |E|=" << g.edge_count() << " (4 planted blocks)\n\n";

  // Decompositions once; mask iteration per k.
  Timer t_tipdec;
  const peel::TipDecomposition tips = peel::tip_decomposition(g);
  const double tip_dec_secs = t_tipdec.seconds();
  Timer t_wingdec;
  const peel::WingDecomposition wings = peel::wing_decomposition(g);
  const double wing_dec_secs = t_wingdec.seconds();

  Table table({"k", "tip LA rounds", "tip LA s", "tip |E|", "wing LA rounds",
               "wing LA s", "wing |E|"});

  for (count_t k = 1; k <= std::max<count_t>(tips.max_tip, 1);
       k = chk::checked_mul(k, 4)) {
    Timer t_tip;
    const peel::TipPeelResult tip = peel::k_tip(g, k);
    const double tip_secs = t_tip.seconds();
    if (peel::tip_subgraph(g, tips, k, peel::Side::kV1) != tip.subgraph) {
      std::cerr << "FATAL: tip mask-iteration != bucket decomposition at k="
                << k << '\n';
      return EXIT_FAILURE;
    }

    Timer t_wing;
    const peel::WingPeelResult wing = peel::k_wing(g, k);
    const double wing_secs = t_wing.seconds();
    if (peel::wing_subgraph(g, wings, k) != wing.subgraph) {
      std::cerr << "FATAL: wing mask-iteration != bucket decomposition at k="
                << k << '\n';
      return EXIT_FAILURE;
    }

    table.add_row({Table::num(k), Table::num(tip.rounds),
                   Table::fixed(tip_secs, 3),
                   Table::num(tip.subgraph.edge_count()),
                   Table::num(wing.rounds), Table::fixed(wing_secs, 3),
                   Table::num(wing.subgraph.edge_count())});
  }

  table.print(std::cout);
  std::cout << "\nfull decompositions: tip numbers in " << tip_dec_secs
            << " s (max θ=" << tips.max_tip << "), wing numbers in "
            << wing_dec_secs << " s (max ψ=" << wings.max_wing << ")\n"
            << "(every k row was verified equal between the paper's mask "
               "iteration and bucket peeling)\n";
  bench::write_reports(cfg);
  return EXIT_SUCCESS;
}
