// Regenerates the paper's Fig. 11: parallel runtime (seconds) of the eight
// invariant-derived algorithms, 6 OpenMP threads like the paper's 6-core
// i7-8750H (override with --threads). The harness prints the thread count
// the runtime actually grants: on a 1-core container the OpenMP code path
// is exercised but no speedup can appear (EXPERIMENTS.md documents this
// environment substitution).
#include <cstdlib>
#include <iostream>

#include "bench_common.hpp"
#include "la/count.hpp"
#include "util/parallel.hpp"

int main(int argc, char** argv) {
  using namespace bfc;
  const Cli cli(argc, argv);
  const bench::BenchConfig cfg = bench::parse_config(argc, argv, {"threads"});
  const int threads = static_cast<int>(cli.get_int_at_least("threads", 6, 1));
  bench::report().set_config("threads", static_cast<std::int64_t>(threads));

  bench::print_header("Fig. 11: parallel timing of invariants 1-8 (seconds)",
                      cfg);
  std::cout << "requested threads=" << threads
            << " hardware threads=" << hardware_threads() << "\n\n";

  Table table({"Dataset Name", "Inv. 1", "Inv. 2", "Inv. 3", "Inv. 4",
               "Inv. 5", "Inv. 6", "Inv. 7", "Inv. 8"});

  for (const auto& ds : bench::make_datasets(cfg)) {
    std::vector<std::string> row{ds.name};
    count_t reference = -1;
    for (const la::Invariant inv : la::all_invariants()) {
      la::CountOptions options;
      options.threads = threads;
      count_t result = 0;
      const double secs = bench::time_median_seconds(
          cfg,
          [&] { return la::count_butterflies(ds.graph, inv, options); },
          &result, ds.name + "/" + la::name(inv));
      if (reference < 0) reference = result;
      if (result != reference) {
        std::cerr << "FATAL: " << la::name(inv) << " disagrees on " << ds.name
                  << ": " << result << " != " << reference << '\n';
        return EXIT_FAILURE;
      }
      row.push_back(Table::fixed(secs, 3));
    }
    table.add_row(std::move(row));
  }

  table.print(std::cout);
  bench::write_reports(cfg);
  return EXIT_SUCCESS;
}
