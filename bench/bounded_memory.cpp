// B3: workspace-bounded counting (the space/I-O-constrained variants of
// Wang et al. [14] that §I describes). Sweeps the wedge-batch budget and
// reports runtime and spill behaviour against the unbounded batch counter —
// smaller workspace, more sorted runs, same exact count.
#include <cstdlib>
#include <iostream>

#include "bench_common.hpp"
#include "count/baselines.hpp"
#include "count/bounded_memory.hpp"

int main(int argc, char** argv) {
  using namespace bfc;
  const bench::BenchConfig cfg = bench::parse_config(argc, argv);
  bench::print_header("B3: bounded-workspace counting", cfg);

  Table table({"Dataset", "budget (wedges)", "batches", "peak batch",
               "seconds", "vs unbounded"});

  for (const auto& ds : bench::make_datasets(cfg)) {
    count_t exact = 0;
    const double unbounded_secs = bench::time_median_seconds(
        cfg, [&] { return count::batch_sort(ds.graph, count_t{1} << 33); },
        &exact);

    for (const std::int64_t budget : {1 << 12, 1 << 16, 1 << 20}) {
      count::BoundedMemoryStats stats;
      const double secs = bench::time_median_seconds(cfg, [&] {
        stats = count::count_bounded_memory(ds.graph, budget);
        return stats.butterflies;
      });
      if (stats.butterflies != exact) {
        std::cerr << "FATAL: bounded-memory count wrong on " << ds.name
                  << '\n';
        return EXIT_FAILURE;
      }
      table.add_row({ds.name, Table::num(budget), Table::num(stats.batches),
                     Table::num(stats.peak_batch_entries),
                     Table::fixed(secs, 3),
                     Table::fixed(secs / unbounded_secs, 2) + "x"});
    }
  }

  table.print(std::cout);
  bench::write_reports(cfg);
  return EXIT_SUCCESS;
}
