// Ablation A1: look-ahead vs look-behind (DESIGN.md §3). The paper observes
// that invariants 2 and 4 beat 1 and 3 (and 6/8 mostly beat 5/7). Two
// candidate explanations are separated here by fixing the update form:
//   - Update::kAuto reproduces the paper's asymmetry (two-term literal
//     updates for A0-peer algorithms, fused for A2-peer);
//   - Update::kFused gives every invariant the one-pass update, isolating
//     the pure traversal-order/locality effect.
#include <cstdlib>
#include <iostream>

#include "bench_common.hpp"
#include "la/count.hpp"

int main(int argc, char** argv) {
  using namespace bfc;
  const bench::BenchConfig cfg = bench::parse_config(argc, argv);
  bench::print_header("Ablation A1: look-ahead vs look-behind (seconds)", cfg);

  Table table({"Dataset", "Inv", "peer", "auto-form", "fused-form"});

  for (const auto& ds : bench::make_datasets(cfg)) {
    for (const la::Invariant inv : la::all_invariants()) {
      const la::InvariantTraits t = la::traits(inv);
      la::CountOptions auto_opts;
      la::CountOptions fused_opts;
      fused_opts.update = la::CountOptions::Update::kFused;
      const double auto_secs = bench::time_median_seconds(cfg, [&] {
        return la::count_butterflies(ds.graph, inv, auto_opts);
      });
      const double fused_secs = bench::time_median_seconds(cfg, [&] {
        return la::count_butterflies(ds.graph, inv, fused_opts);
      });
      table.add_row({ds.name, la::name(inv),
                     t.look_ahead ? "look-ahead" : "look-behind",
                     Table::fixed(auto_secs, 3), Table::fixed(fused_secs, 3)});
    }
  }

  table.print(std::cout);
  std::cout << "\n(if look-ahead wins under auto-form but the gap closes "
               "under fused-form, the paper's Inv2/Inv4 advantage is the "
               "avoided subtraction pass, not traversal order)\n";
  bench::write_reports(cfg);
  return EXIT_SUCCESS;
}
