# Test driver for the `validate-report` ctest: runs one bench binary at tiny
# scale with --json/--trace, then checks both artifacts with report_lint.
# Expects -DBENCH=<path> -DLINT=<path> -DOUT=<dir>.
file(MAKE_DIRECTORY "${OUT}")
set(report "${OUT}/validate_report.json")
set(trace "${OUT}/validate_trace.json")

execute_process(
  COMMAND "${BENCH}" --scale 0.02 --reps 2 --json "${report}" --trace "${trace}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bench failed (rc=${rc}):\n${out}\n${err}")
endif()

execute_process(
  COMMAND "${LINT}" --report "${report}" --trace "${trace}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "report_lint failed (rc=${rc}):\n${out}\n${err}")
endif()
message(STATUS "${out}")
