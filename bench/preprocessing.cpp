// B4: preprocessing pipeline — 2-core pruning (butterfly-preserving) and
// degree reordering before counting. Reports the fraction of vertices/edges
// the prune removes on KONECT-shaped graphs and the end-to-end effect of
// prune + reorder on the unblocked and wedge engines (preprocessing time
// included, counted once).
#include <cstdlib>
#include <iostream>

#include "bench_common.hpp"
#include "graph/components.hpp"
#include "graph/reorder.hpp"
#include "la/count.hpp"

int main(int argc, char** argv) {
  using namespace bfc;
  const bench::BenchConfig cfg = bench::parse_config(argc, argv);
  bench::print_header("B4: preprocessing (2-core prune + degree order)", cfg);

  Table table({"Dataset", "|E| kept", "pruned V1", "pruned V2", "prep s",
               "raw Inv.2", "prep Inv.2", "raw wedge", "prep wedge"});

  for (const auto& ds : bench::make_datasets(cfg)) {
    Timer prep_timer;
    const graph::CorePruneResult pruned = graph::two_core_prune(ds.graph);
    const graph::BipartiteGraph ready =
        graph::reorder(pruned.subgraph, graph::Order::kDegreeDescending).graph;
    const double prep_secs = prep_timer.seconds();

    la::CountOptions unblocked;
    la::CountOptions wedge;
    wedge.engine = la::Engine::kWedge;

    count_t raw_count = 0, prep_count = 0;
    const double raw_unblocked = bench::time_median_seconds(
        cfg,
        [&] {
          return la::count_butterflies(ds.graph, la::Invariant::kInv2,
                                       unblocked);
        },
        &raw_count);
    const double prep_unblocked = bench::time_median_seconds(
        cfg,
        [&] {
          return la::count_butterflies(ready, la::Invariant::kInv2, unblocked);
        },
        &prep_count);
    if (raw_count != prep_count) {
      std::cerr << "FATAL: preprocessing changed the count on " << ds.name
                << '\n';
      return EXIT_FAILURE;
    }
    const double raw_wedge = bench::time_median_seconds(cfg, [&] {
      return la::count_butterflies(ds.graph, la::Invariant::kInv2, wedge);
    });
    const double prep_wedge = bench::time_median_seconds(cfg, [&] {
      return la::count_butterflies(ready, la::Invariant::kInv2, wedge);
    });

    table.add_row(
        {ds.name, Table::num(pruned.subgraph.edge_count()),
         Table::num(pruned.removed_v1), Table::num(pruned.removed_v2),
         Table::fixed(prep_secs, 3), Table::fixed(raw_unblocked, 3),
         Table::fixed(prep_unblocked, 3), Table::fixed(raw_wedge, 3),
         Table::fixed(prep_wedge, 3)});
  }

  table.print(std::cout);
  std::cout << "\n(the 2-core prune is butterfly-preserving, so the counts "
               "are verified identical before rows are accepted)\n";
  bench::write_reports(cfg);
  return EXIT_SUCCESS;
}
