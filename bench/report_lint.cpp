// report_lint: validates the machine-readable artifacts the benches emit.
//
//   report_lint --report out.json   check a RunReport (--json output)
//   report_lint --trace  out.json   check a chrome://tracing file (--trace)
//
// Exits 0 when the file parses as JSON and has the documented shape, 1 with
// a diagnostic otherwise. The `validate-report` ctest runs a bench at tiny
// scale and pipes its artifacts through this linter, so a PR that breaks
// the report schema fails CI rather than downstream tooling.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/json.hpp"
#include "util/cli.hpp"

namespace {

using bfc::obs::Json;

Json load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  return Json::parse(buf.str());
}

void check(bool cond, const std::string& what) {
  if (!cond) throw std::runtime_error(what);
}

void lint_report(const Json& doc) {
  for (const char* key : {"config", "environment", "metrics", "samples"})
    check(doc.has(key), std::string("missing top-level key \"") + key + '"');
  check(doc.at("config").is_object(), "\"config\" is not an object");
  check(doc.at("metrics").is_object(), "\"metrics\" is not an object");

  const Json& env = doc.at("environment");
  for (const char* key :
       {"compiler", "omp_max_threads", "metrics_enabled", "timestamp_utc"})
    check(env.has(key), std::string("environment missing \"") + key + '"');

  const Json& samples = doc.at("samples");
  check(samples.is_array(), "\"samples\" is not an array");
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Json& cell = samples.at(i);
    for (const char* key : {"label", "seconds", "count", "median"})
      check(cell.has(key),
            "sample " + std::to_string(i) + " missing \"" + key + '"');
    check(cell.at("seconds").size() ==
              static_cast<std::size_t>(cell.at("count").as_int()),
          "sample " + std::to_string(i) + ": seconds[] shorter than count");
  }
  std::cout << "report ok: " << samples.size() << " sample cells, "
            << doc.at("metrics").size() << " metrics\n";
}

void lint_trace(const Json& doc) {
  check(doc.has("traceEvents"), "missing top-level key \"traceEvents\"");
  const Json& events = doc.at("traceEvents");
  check(events.is_array(), "\"traceEvents\" is not an array");
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Json& ev = events.at(i);
    for (const char* key : {"name", "ph", "pid", "tid", "ts", "dur"})
      check(ev.has(key),
            "event " + std::to_string(i) + " missing \"" + key + '"');
    check(ev.at("ph").as_string() == "X",
          "event " + std::to_string(i) + ": ph is not \"X\"");
    check(ev.at("ts").as_double() >= 0 && ev.at("dur").as_double() >= 0,
          "event " + std::to_string(i) + ": negative ts/dur");
  }
  std::cout << "trace ok: " << events.size() << " events\n";
}

}  // namespace

int main(int argc, char** argv) {
  const bfc::Cli cli(argc, argv);
  const std::string report_path = cli.get("report", "");
  const std::string trace_path = cli.get("trace", "");
  if (report_path.empty() && trace_path.empty()) {
    std::cerr << "usage: report_lint --report <run.json> | --trace "
                 "<trace.json>\n";
    return 2;
  }
  try {
    if (!report_path.empty()) lint_report(load(report_path));
    if (!trace_path.empty()) lint_trace(load(trace_path));
  } catch (const std::exception& e) {
    std::cerr << "report_lint: " << e.what() << '\n';
    return 1;
  }
  return EXIT_SUCCESS;
}
