// report_lint: validates the machine-readable artifacts the benches emit.
//
//   report_lint --report      out.json  check a RunReport (--json output)
//   report_lint --trace       out.json  check a chrome://tracing file
//   report_lint --openmetrics out.txt   check an OpenMetrics text dump
//                                       (--metrics-file / /metrics output)
//   ... --families tools/analyze/metrics.registry
//                                       additionally require every svc_/obs_/
//                                       chk_ family in the dump to map back
//                                       to a `metric` entry in the registry
//                                       bfc-analyze enforces on source
//                                       literals — one contract, one file
//
// Exits 0 when the file parses and has the documented shape, 1 with a
// diagnostic otherwise. The `validate-report` and `telemetry-smoke` ctests
// run a bench at tiny scale and pipe its artifacts through this linter, so
// a PR that breaks an artifact schema fails CI rather than downstream
// tooling (Prometheus scrapers included).
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "registry.hpp"  // tools/analyze: the shared telemetry-name registry
#include "util/cli.hpp"

namespace {

using bfc::obs::Json;

Json load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  return Json::parse(buf.str());
}

void check(bool cond, const std::string& what) {
  if (!cond) throw std::runtime_error(what);
}

void lint_report(const Json& doc) {
  for (const char* key : {"config", "environment", "metrics", "samples"})
    check(doc.has(key), std::string("missing top-level key \"") + key + '"');
  check(doc.at("config").is_object(), "\"config\" is not an object");
  check(doc.at("metrics").is_object(), "\"metrics\" is not an object");

  const Json& env = doc.at("environment");
  for (const char* key :
       {"compiler", "omp_max_threads", "metrics_enabled", "timestamp_utc"})
    check(env.has(key), std::string("environment missing \"") + key + '"');

  // Sharded runs publish one cache-tier stat triple per shard into the
  // config block; a missing shard index means the bench's per-shard
  // accounting silently dropped a store.
  const Json& config = doc.at("config");
  if (config.has("shards") && config.at("shards").as_int() > 1) {
    const auto shards = config.at("shards").as_int();
    for (std::int64_t k = 0; k < shards; ++k) {
      const std::string prefix = "shard_" + std::to_string(k) + "_";
      for (const char* stat : {"hits", "misses", "hit_rate"})
        check(config.has(prefix + stat),
              "sharded config missing \"" + prefix + stat + '"');
      const double rate = config.at(prefix + "hit_rate").as_double();
      check(rate >= 0.0 && rate <= 1.0,
            prefix + "hit_rate out of [0, 1]: " + std::to_string(rate));
    }
    check(config.has("view_tier_hit_rate"),
          "sharded config missing \"view_tier_hit_rate\"");
  }

  const Json& samples = doc.at("samples");
  check(samples.is_array(), "\"samples\" is not an array");
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Json& cell = samples.at(i);
    for (const char* key : {"label", "seconds", "count", "median"})
      check(cell.has(key),
            "sample " + std::to_string(i) + " missing \"" + key + '"');
    check(cell.at("seconds").size() ==
              static_cast<std::size_t>(cell.at("count").as_int()),
          "sample " + std::to_string(i) + ": seconds[] shorter than count");
  }
  std::cout << "report ok: " << samples.size() << " sample cells, "
            << doc.at("metrics").size() << " metrics\n";
}

void lint_trace(const Json& doc) {
  check(doc.has("traceEvents"), "missing top-level key \"traceEvents\"");
  const Json& events = doc.at("traceEvents");
  check(events.is_array(), "\"traceEvents\" is not an array");
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Json& ev = events.at(i);
    for (const char* key : {"name", "ph", "pid", "tid", "ts", "dur"})
      check(ev.has(key),
            "event " + std::to_string(i) + " missing \"" + key + '"');
    check(ev.at("ph").as_string() == "X",
          "event " + std::to_string(i) + ": ph is not \"X\"");
    check(ev.at("ts").as_double() >= 0 && ev.at("dur").as_double() >= 0,
          "event " + std::to_string(i) + ": negative ts/dur");
  }
  std::cout << "trace ok: " << events.size() << " events\n";
}

// ---- OpenMetrics text format ---------------------------------------------

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
    const bool digit = c >= '0' && c <= '9';
    if (!(alpha || c == '_' || c == ':' || (i > 0 && digit))) return false;
  }
  return true;
}

/// Per-family state accumulated while scanning sample lines.
struct Family {
  std::string type;  // counter | gauge | histogram
  bool saw_help = false;
  int samples = 0;
  // Histogram bookkeeping.
  long long prev_le = -1;          // last finite bucket threshold
  long long prev_cumulative = -1;  // bucket counts must be non-decreasing
  long long inf_bucket = -1;       // le="+Inf" sample value
  long long count = -1;            // _count sample value
  bool saw_sum = false;
};

long long parse_int(const std::string& s, const std::string& what) {
  try {
    std::size_t used = 0;
    const long long v = std::stoll(s, &used);
    check(used == s.size(), what + ": not an integer: '" + s + "'");
    return v;
  } catch (const std::logic_error&) {
    throw std::runtime_error(what + ": not an integer: '" + s + "'");
  }
}

double parse_double(const std::string& s, const std::string& what) {
  try {
    std::size_t used = 0;
    const double v = std::stod(s, &used);
    check(used == s.size(), what + ": not a number: '" + s + "'");
    return v;
  } catch (const std::logic_error&) {
    throw std::runtime_error(what + ": not a number: '" + s + "'");
  }
}

// An OpenMetrics family name is the registry metric name mangled to the
// legal charset ('.' -> '_'), with `<seg>` placeholders standing for one or
// more name characters (the mangling erases segment boundaries, so a
// placeholder may legitimately swallow several underscores: svc.latency_us.
// <kind> covers svc_latency_us_tip_v1).
bool family_matches_entry(const std::string& family, const std::string& entry,
                          std::size_t fi = 0, std::size_t ei = 0) {
  while (ei < entry.size()) {
    if (entry[ei] == '<') {
      const std::size_t close = entry.find('>', ei);
      check(close != std::string::npos,
            "registry entry '" + entry + "': unterminated placeholder");
      // wildcard: try every non-empty tail consumption
      for (std::size_t take = 1; fi + take <= family.size(); ++take)
        if (family_matches_entry(family, entry, fi + take, close + 1))
          return true;
      return false;
    }
    const char want = entry[ei] == '.' ? '_' : entry[ei];
    if (fi >= family.size() || family[fi] != want) return false;
    ++fi;
    ++ei;
  }
  return fi == family.size();
}

void check_families_against_registry(
    const std::map<std::string, Family>& families,
    const std::string& registry_path) {
  const bfc::analyze::Registry registry =
      bfc::analyze::Registry::load(registry_path);
  std::vector<std::string> metric_entries;
  for (const auto& e : registry.entries)
    if (e.kind == "metric") metric_entries.push_back(e.name);
  check(!metric_entries.empty(),
        "registry " + registry_path + " declares no metric entries");
  std::size_t checked = 0;
  for (const auto& [name, fam] : families) {
    (void)fam;
    if (name.rfind("svc_", 0) != 0 && name.rfind("obs_", 0) != 0 &&
        name.rfind("chk_", 0) != 0)
      continue;
    ++checked;
    const bool known = std::any_of(
        metric_entries.begin(), metric_entries.end(),
        [&](const std::string& e) { return family_matches_entry(name, e); });
    check(known, "family '" + name + "' maps to no metric entry in " +
                     registry_path +
                     " (bfc-analyze keeps source literals in sync with that "
                     "file; add the family there and to docs/telemetry.md)");
  }
  std::cout << "openmetrics families ok: " << checked
            << " namespaced families covered by " << registry_path << "\n";
}

void lint_openmetrics(const std::string& path,
                      const std::string& families_registry) {
  std::ifstream in(path);
  check(static_cast<bool>(in), "cannot open " + path);
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  check(!lines.empty() && lines.back() == "# EOF",
        "last line must be '# EOF'");
  lines.pop_back();

  std::map<std::string, Family> families;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    const std::string where = "line " + std::to_string(i + 1);
    check(!line.empty(), where + ": blank line");
    if (line.rfind("# TYPE ", 0) == 0 || line.rfind("# HELP ", 0) == 0) {
      const bool is_type = line[2] == 'T';
      const std::string rest = line.substr(7);
      const std::size_t sp = rest.find(' ');
      check(sp != std::string::npos, where + ": metadata without a value");
      const std::string name = rest.substr(0, sp);
      check(valid_metric_name(name), where + ": bad metric name '" + name +
                                         '\'');
      if (is_type) {
        const std::string type = rest.substr(sp + 1);
        check(type == "counter" || type == "gauge" || type == "histogram",
              where + ": unknown type '" + type + '\'');
        check(families.find(name) == families.end(),
              where + ": duplicate TYPE for '" + name + '\'');
        families[name].type = type;
      } else {
        const auto it = families.find(name);
        check(it != families.end(),
              where + ": HELP for '" + name + "' precedes its TYPE");
        it->second.saw_help = true;
      }
      continue;
    }
    check(line[0] != '#', where + ": unexpected comment");

    // Sample line: <name>[{le="<threshold>"}] <value>
    const std::size_t sp = line.rfind(' ');
    check(sp != std::string::npos && sp + 1 < line.size(),
          where + ": sample without a value");
    const std::string value = line.substr(sp + 1);
    std::string metric = line.substr(0, sp);
    std::string le;
    const std::size_t brace = metric.find('{');
    if (brace != std::string::npos) {
      const std::string labels = metric.substr(brace);
      metric.resize(brace);
      check(labels.rfind("{le=\"", 0) == 0 && labels.back() == '}' &&
                labels.size() > 7,
            where + ": malformed label set " + labels);
      le = labels.substr(5, labels.size() - 7);
    }
    check(valid_metric_name(metric),
          where + ": bad sample name '" + metric + '\'');

    // Resolve the sample to its family via the suffix conventions, then
    // enforce the family's shape. TYPE must precede every sample.
    const auto strip = [&metric](const char* suffix) {
      const std::string s(suffix);
      if (metric.size() <= s.size() ||
          metric.compare(metric.size() - s.size(), s.size(), s) != 0)
        return std::string();
      return metric.substr(0, metric.size() - s.size());
    };
    const auto family_of = [&](const std::string& base) -> Family* {
      if (base.empty()) return nullptr;
      const auto it = families.find(base);
      return it == families.end() ? nullptr : &it->second;
    };
    if (Family* fam = family_of(strip("_total")); fam != nullptr) {
      check(fam->type == "counter",
            where + ": _total sample on non-counter '" + metric + '\'');
      check(le.empty(), where + ": counter sample with labels");
      check(parse_int(value, where) >= 0, where + ": negative counter");
      ++fam->samples;
    } else if (Family* fam = family_of(strip("_bucket")); fam != nullptr) {
      check(fam->type == "histogram",
            where + ": _bucket sample on non-histogram '" + metric + '\'');
      check(!le.empty(), where + ": bucket without an le label");
      const long long cumulative = parse_int(value, where);
      check(cumulative >= 0 && cumulative >= fam->prev_cumulative,
            where + ": bucket counts must be cumulative (non-decreasing)");
      fam->prev_cumulative = cumulative;
      if (le == "+Inf") {
        check(fam->inf_bucket < 0, where + ": duplicate +Inf bucket");
        fam->inf_bucket = cumulative;
      } else {
        check(fam->inf_bucket < 0,
              where + ": finite bucket after the +Inf bucket");
        const long long threshold = parse_int(le, where + " (le)");
        check(threshold > fam->prev_le,
              where + ": bucket thresholds must increase");
        fam->prev_le = threshold;
      }
      ++fam->samples;
    } else if (Family* fam = family_of(strip("_sum")); fam != nullptr) {
      check(fam->type == "histogram",
            where + ": _sum sample on non-histogram '" + metric + '\'');
      fam->saw_sum = true;
      ++fam->samples;
    } else if (Family* fam = family_of(strip("_count")); fam != nullptr) {
      check(fam->type == "histogram",
            where + ": _count sample on non-histogram '" + metric + '\'');
      fam->count = parse_int(value, where);
      ++fam->samples;
    } else if (Family* fam = family_of(metric); fam != nullptr) {
      check(fam->type == "gauge",
            where + ": bare sample on non-gauge '" + metric + '\'');
      check(le.empty(), where + ": gauge sample with labels");
      (void)parse_double(value, where + " (gauge value)");
      ++fam->samples;
    } else {
      check(false, where + ": sample '" + metric +
                       "' matches no declared family (TYPE missing or after "
                       "the sample?)");
    }
  }

  // Per-shard instrument families (svc_shard_<k>_<stat>) must form a dense
  // 0..N-1 index range per stat: the sharded service binds one instrument
  // per shard at construction, so a gap means some shard's plane never
  // registered (or a rendering bug dropped it).
  std::map<std::string, std::vector<long long>> shard_stats;
  for (const auto& [name, fam] : families) {
    const std::string prefix = "svc_shard_";
    if (name.rfind(prefix, 0) != 0) continue;
    std::size_t digits_end = prefix.size();
    while (digits_end < name.size() && name[digits_end] >= '0' &&
           name[digits_end] <= '9')
      ++digits_end;
    if (digits_end == prefix.size() || digits_end + 1 >= name.size() ||
        name[digits_end] != '_')
      continue;  // not the per-shard shape; the generic checks still apply
    shard_stats[name.substr(digits_end + 1)].push_back(
        parse_int(name.substr(prefix.size(), digits_end - prefix.size()),
                  "shard index of '" + name + '\''));
  }
  for (auto& [stat, indices] : shard_stats) {
    std::sort(indices.begin(), indices.end());
    for (std::size_t i = 0; i < indices.size(); ++i)
      check(indices[i] == static_cast<long long>(i),
            "per-shard family svc_shard_*_" + stat + " has a gap: shard " +
                std::to_string(i) + " missing (have " +
                std::to_string(indices.size()) + " shards)");
  }

  for (const auto& [name, fam] : families) {
    check(fam.saw_help, "family '" + name + "' has no HELP line");
    check(fam.samples > 0, "family '" + name + "' has no samples");
    if (fam.type == "histogram") {
      check(fam.inf_bucket >= 0, "histogram '" + name + "' has no +Inf bucket");
      check(fam.saw_sum, "histogram '" + name + "' has no _sum sample");
      check(fam.count == fam.inf_bucket,
            "histogram '" + name + "': _count " + std::to_string(fam.count) +
                " != +Inf bucket " + std::to_string(fam.inf_bucket));
    }
  }
  std::cout << "openmetrics ok: " << families.size() << " metric families, "
            << lines.size() << " lines\n";
  if (!families_registry.empty())
    check_families_against_registry(families, families_registry);
}

}  // namespace

int main(int argc, char** argv) {
  const bfc::Cli cli(argc, argv);
  const std::string report_path = cli.get("report", "");
  const std::string trace_path = cli.get("trace", "");
  const std::string metrics_path = cli.get("openmetrics", "");
  const std::string families_registry = cli.get("families", "");
  if (report_path.empty() && trace_path.empty() && metrics_path.empty()) {
    std::cerr << "usage: report_lint --report <run.json> | --trace "
                 "<trace.json> | --openmetrics <metrics.txt> "
                 "[--families <metrics.registry>]\n";
    return 2;
  }
  try {
    if (!report_path.empty()) lint_report(load(report_path));
    if (!trace_path.empty()) lint_trace(load(trace_path));
    if (!metrics_path.empty())
      lint_openmetrics(metrics_path, families_registry);
  } catch (const std::exception& e) {
    std::cerr << "report_lint: " << e.what() << '\n';
    return 1;
  }
  return EXIT_SUCCESS;
}
