// Ablation A6: vertex ordering (the paper's §VI future work, "sorting by
// vertex degrees"). The unblocked kernels' peer scans cover prefix/suffix
// index ranges, so where hubs sit in the numbering changes how often they
// are rescanned: look-behind traversals (Inv. 1) rescan low indices every
// step, so degree-DEscending placement keeps hubs in the hot peer range and
// degree-AScending keeps them out. The wedge engine is ordering-insensitive
// (shown as control).
#include <cstdlib>
#include <iostream>

#include "bench_common.hpp"
#include "graph/reorder.hpp"
#include "la/count.hpp"

int main(int argc, char** argv) {
  using namespace bfc;
  const bench::BenchConfig cfg = bench::parse_config(argc, argv);
  bench::print_header("Ablation A6: degree-ordering effect (seconds)", cfg);

  Table table({"Dataset", "Inv", "engine", "asc-degree", "desc-degree",
               "random"});

  for (const auto& ds : bench::make_datasets(cfg)) {
    const graph::BipartiteGraph asc =
        graph::reorder(ds.graph, graph::Order::kDegreeAscending).graph;
    const graph::BipartiteGraph desc =
        graph::reorder(ds.graph, graph::Order::kDegreeDescending).graph;
    const graph::BipartiteGraph rnd =
        graph::reorder(ds.graph, graph::Order::kRandom, cfg.seed).graph;

    struct Config {
      la::Invariant inv;
      la::Engine engine;
      const char* engine_name;
    };
    const Config configs[] = {
        {la::Invariant::kInv1, la::Engine::kUnblocked, "unblocked"},
        {la::Invariant::kInv2, la::Engine::kUnblocked, "unblocked"},
        {la::Invariant::kInv2, la::Engine::kWedge, "wedge"},
    };

    for (const Config& c : configs) {
      la::CountOptions options;
      options.engine = c.engine;
      count_t ref = -1;
      auto cell = [&](const graph::BipartiteGraph& g) {
        count_t result = 0;
        const double secs = bench::time_median_seconds(
            cfg, [&] { return la::count_butterflies(g, c.inv, options); },
            &result);
        if (ref < 0) ref = result;
        if (result != ref) {
          std::cerr << "FATAL: ordering changed the count\n";
          std::exit(EXIT_FAILURE);
        }
        return Table::fixed(secs, 3);
      };
      table.add_row({ds.name, la::name(c.inv), c.engine_name, cell(asc),
                     cell(desc), cell(rnd)});
    }
  }

  table.print(std::cout);
  bench::write_reports(cfg);
  return EXIT_SUCCESS;
}
