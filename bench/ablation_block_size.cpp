// Ablation A5: panel width of the FLAME blocked engine. Each panel scans
// the peer partition once for `block_size` pivot lines, so the O(p·nnz)
// peer traffic shrinks by the panel width while the within-panel work grows
// — the sweep locates the knee and shows how far blocking closes the gap to
// the wedge engine.
#include <cstdlib>
#include <iostream>

#include "bench_common.hpp"
#include "la/count.hpp"

int main(int argc, char** argv) {
  using namespace bfc;
  const bench::BenchConfig cfg = bench::parse_config(argc, argv);
  bench::print_header("Ablation A5: blocked-engine panel width (seconds)",
                      cfg);

  const vidx_t widths[] = {1, 2, 4, 8, 16, 32, 64};

  Table table({"Dataset", "unblocked", "b=1", "b=2", "b=4", "b=8", "b=16",
               "b=32", "b=64", "wedge"});

  for (const auto& ds : bench::make_datasets(cfg)) {
    // Each dataset is counted with Inv. 2 under every panel width; all runs
    // must agree before the row is accepted.
    std::vector<std::string> row{ds.name};
    la::CountOptions unblocked;
    count_t reference = 0;
    row.push_back(Table::fixed(
        bench::time_median_seconds(
            cfg,
            [&] {
              return la::count_butterflies(ds.graph, la::Invariant::kInv2,
                                           unblocked);
            },
            &reference),
        3));

    for (const vidx_t b : widths) {
      la::CountOptions blocked;
      blocked.engine = la::Engine::kBlocked;
      blocked.block_size = b;
      count_t c = 0;
      const double secs = bench::time_median_seconds(
          cfg,
          [&] {
            return la::count_butterflies(ds.graph, la::Invariant::kInv2,
                                         blocked);
          },
          &c);
      if (c != reference) {
        std::cerr << "FATAL: blocked b=" << b << " disagrees on " << ds.name
                  << '\n';
        return EXIT_FAILURE;
      }
      row.push_back(Table::fixed(secs, 3));
    }

    la::CountOptions wedge;
    wedge.engine = la::Engine::kWedge;
    count_t cw = 0;
    row.push_back(Table::fixed(
        bench::time_median_seconds(
            cfg,
            [&] {
              return la::count_butterflies(ds.graph, la::Invariant::kInv2,
                                           wedge);
            },
            &cw),
        3));
    if (cw != reference) {
      std::cerr << "FATAL: wedge engine disagrees on " << ds.name << '\n';
      return EXIT_FAILURE;
    }
    table.add_row(std::move(row));
  }

  table.print(std::cout);
  bench::write_reports(cfg);
  return EXIT_SUCCESS;
}
