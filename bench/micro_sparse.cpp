// Microbenchmarks of the sparse substrate kernels (google-benchmark): the
// building blocks whose costs the table benches aggregate — transpose,
// SpMV, SpGEMM/Gram, wedge-pairwise counting, and mask application.
#include <benchmark/benchmark.h>

#include "gen/generators.hpp"
#include "sparse/ops.hpp"
#include "sparse/spgemm.hpp"

namespace {

using namespace bfc;

graph::BipartiteGraph make_graph(std::int64_t n, std::int64_t edges) {
  return gen::chung_lu(gen::power_law_weights(static_cast<vidx_t>(n), 0.6),
                       gen::power_law_weights(static_cast<vidx_t>(n), 0.6),
                       edges, 7);
}

void BM_Transpose(benchmark::State& state) {
  const auto g = make_graph(state.range(0), state.range(0) * 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.csr().transpose());
  }
  state.SetItemsProcessed(state.iterations() * g.edge_count());
}
BENCHMARK(BM_Transpose)->Arg(1 << 10)->Arg(1 << 13)->Arg(1 << 15);

void BM_Spmv(benchmark::State& state) {
  const auto g = make_graph(state.range(0), state.range(0) * 8);
  const std::vector<count_t> x(static_cast<std::size_t>(g.n2()), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::spmv(g.csr(), x));
  }
  state.SetItemsProcessed(state.iterations() * g.edge_count());
}
BENCHMARK(BM_Spmv)->Arg(1 << 10)->Arg(1 << 13)->Arg(1 << 15);

void BM_SpmvTranspose(benchmark::State& state) {
  const auto g = make_graph(state.range(0), state.range(0) * 8);
  const std::vector<count_t> x(static_cast<std::size_t>(g.n1()), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::spmv_transpose(g.csr(), x));
  }
  state.SetItemsProcessed(state.iterations() * g.edge_count());
}
BENCHMARK(BM_SpmvTranspose)->Arg(1 << 10)->Arg(1 << 13)->Arg(1 << 15);

void BM_Gram(benchmark::State& state) {
  const auto g = make_graph(state.range(0), state.range(0) * 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::gram(g.csc(), g.csr()));
  }
}
BENCHMARK(BM_Gram)->Arg(1 << 9)->Arg(1 << 11)->Arg(1 << 13);

void BM_GramPairwiseButterflies(benchmark::State& state) {
  const auto g = make_graph(state.range(0), state.range(0) * 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sparse::gram_pairwise_butterflies(g.csr(), g.csc()));
  }
}
BENCHMARK(BM_GramPairwiseButterflies)->Arg(1 << 9)->Arg(1 << 11)->Arg(1 << 13);

void BM_MaskRows(benchmark::State& state) {
  const auto g = make_graph(state.range(0), state.range(0) * 8);
  std::vector<std::uint8_t> mask(static_cast<std::size_t>(g.n1()));
  for (std::size_t i = 0; i < mask.size(); ++i) mask[i] = i % 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::mask_rows(g.csr(), mask));
  }
  state.SetItemsProcessed(state.iterations() * g.edge_count());
}
BENCHMARK(BM_MaskRows)->Arg(1 << 10)->Arg(1 << 13)->Arg(1 << 15);

}  // namespace

BENCHMARK_MAIN();
