# Test driver for the `serve-smoke` ctest: runs bench/serving at tiny scale
# with --json, relying on the bench's built-in acceptance checks (zero count
# drift vs. a from-scratch recount; nonzero cache hits and coalesced batches
# when metrics are compiled in), then validates the RunReport artifact with
# report_lint. Expects -DBENCH=<path> -DLINT=<path> -DOUT=<dir>.
file(MAKE_DIRECTORY "${OUT}")
set(report "${OUT}/serving_report.json")

execute_process(
  COMMAND "${BENCH}" --scale 0.02 --readers 3 --epochs 4 --batch 60
          --queries 80 --pool 3 --json "${report}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "serving bench failed (rc=${rc}):\n${out}\n${err}")
endif()

execute_process(
  COMMAND "${LINT}" --report "${report}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "report_lint failed (rc=${rc}):\n${out}\n${err}")
endif()
message(STATUS "${out}")
