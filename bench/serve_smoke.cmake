# Test driver for the serve-smoke ctest family: runs bench/serving with
# --json, relying on the bench's built-in acceptance checks (zero count
# drift vs. a from-scratch recount; nonzero cache hits and coalesced batches
# in normal mode; nonzero shed/rejected/expired work in overload mode), then
# validates the RunReport artifact with report_lint.
# Expects -DBENCH=<path> -DLINT=<path> -DOUT=<dir>; optional -DMODE=
#   full      (default) the standard smoke load
#   light     reduced load for the sanitizer lanes, where slowdown makes the
#             full config's wall-clock latency numbers flaky
#   overload  undersized pool + bounded queue: proves admission control
#             sheds, answers degrade, and the count still reconciles
file(MAKE_DIRECTORY "${OUT}")
set(report "${OUT}/serving_report.json")

if(NOT DEFINED MODE)
  set(MODE full)
endif()
if(MODE STREQUAL "light")
  set(load --scale 0.02 --readers 2 --epochs 2 --batch 40 --queries 40
           --pool 2)
elseif(MODE STREQUAL "overload")
  set(load --overload --scale 0.02 --readers 6 --epochs 3 --batch 60
           --queries 120 --pool 1 --max-queue 2)
else()
  set(load --scale 0.02 --readers 3 --epochs 4 --batch 60 --queries 80
           --pool 3)
endif()

execute_process(
  COMMAND "${BENCH}" ${load} --json "${report}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "serving bench (${MODE}) failed (rc=${rc}):\n${out}\n${err}")
endif()

execute_process(
  COMMAND "${LINT}" --report "${report}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "report_lint failed (rc=${rc}):\n${out}\n${err}")
endif()
message(STATUS "${out}")
