# Test driver for the serve-smoke ctest family: runs bench/serving with
# --json, relying on the bench's built-in acceptance checks (zero count
# drift vs. a from-scratch recount; nonzero cache hits and coalesced batches
# in normal mode; nonzero shed/rejected/expired work in overload mode), then
# validates the RunReport artifact with report_lint.
# Expects -DBENCH=<path> -DLINT=<path> -DOUT=<dir>; optional -DMODE= and
# -DREGISTRY=<metrics.registry> (adds --families to the OpenMetrics lint so
# dump families must map back to the bfc-analyze registry)
#   full      (default) the standard smoke load
#   light     reduced load for the sanitizer lanes, where slowdown makes the
#             full config's wall-clock latency numbers flaky
#   overload  undersized pool + bounded queue: proves admission control
#             sheds, answers degrade, and the count still reconciles
#   telemetry overload load with the whole telemetry plane armed: the
#             OpenMetrics dump must lint clean (svc.slo.* included), the
#             span tree must show degraded and shed requests (the bench
#             self-checks that), and the folded profile must attribute
#             samples to a la/ kernel
#   shard     4 range-partitioned stores with one concurrent writer per
#             shard, under overload + Zipf key skew. The bench self-checks
#             zero count drift against a sequential --shards 1 replay and
#             overlapping per-shard publish spans; the OpenMetrics dump must
#             then lint clean with dense svc_shard_<k>_* families
#   chaos     4 out-of-process shard hosts (needs -DHOST=<bfc-shard-host>);
#             one is SIGKILLed mid-load. The bench self-checks failure-domain
#             isolation: zero failed queries, dead range stale-tagged while
#             healthy ranges stay exact, exactly one supervised restart, and
#             zero drift after the recovery replay. No --spans-out here: the
#             publish spans land inside the host processes, so the overlap
#             self-check has nothing to see client-side.
file(MAKE_DIRECTORY "${OUT}")
set(report "${OUT}/serving_report.json")

# The shard/chaos/telemetry lanes additionally assert on the OpenMetrics
# dump, span tree and profile; a -DBFC_METRICS=OFF build compiles that whole
# plane out (empty dumps by design), so those lanes keep only the bench's
# built-in acceptance checks (drift, isolation, recovery, shed evidence).
# The driver passes -DMETRICS=${BFC_METRICS}; when undefined, assume ON.
set(check_telemetry TRUE)
if(DEFINED METRICS AND NOT METRICS)
  set(check_telemetry FALSE)
  message(STATUS "BFC_METRICS=OFF build: skipping telemetry artifact checks")
endif()

if(NOT DEFINED MODE)
  set(MODE full)
endif()
if(MODE STREQUAL "light")
  set(load --scale 0.02 --readers 2 --epochs 2 --batch 40 --queries 40
           --pool 2)
elseif(MODE STREQUAL "overload")
  # --degrade-depth above the queue bound: with the depth-1 default the
  # service degrades preemptively instead of submitting, so queue overflow
  # (the shed evidence this mode exists to witness) only happens when reader
  # submissions race — which a single-core runner misses ~1 run in 7. A
  # deep degrade threshold keeps the exact rung submitting, making eviction
  # structural; degraded answers still appear via eviction fallbacks.
  set(load --overload --scale 0.02 --readers 6 --epochs 3 --batch 60
           --queries 120 --pool 1 --max-queue 2 --degrade-depth 64)
elseif(MODE STREQUAL "shard")
  # --degrade-depth above the queue bound keeps the exact rung submitting
  # instead of degrading preemptively, so queue overflow (and therefore the
  # shed evidence the span check demands) is structural rather than a race —
  # on a single-core runner the depth-1 default sheds only when reader
  # submissions happen to interleave, which misses ~1 run in 8.
  set(load --shards 4 --zipf 0.9 --overload --scale 0.02 --readers 6
           --epochs 3 --batch 60 --queries 120 --pool 1 --max-queue 2
           --degrade-depth 64
           --metrics-file "${OUT}/metrics.txt"
           --spans-out "${OUT}/spans.json")
elseif(MODE STREQUAL "chaos")
  if(NOT DEFINED HOST)
    message(FATAL_ERROR "MODE=chaos needs -DHOST=<path to bfc-shard-host>")
  endif()
  set(load --shards 4 --kill-shard 2@mid --host-bin "${HOST}" --scale 0.02
           --readers 4 --epochs 6 --batch 60 --queries 200 --pool 2
           --metrics-file "${OUT}/metrics.txt")
elseif(MODE STREQUAL "telemetry")
  # --degrade-depth 64 for the same structural-shed reason as MODE=overload.
  set(load --overload --scale 0.05 --readers 6 --epochs 3 --batch 60
           --queries 150 --pool 1 --max-queue 2 --degrade-depth 64 --slo-ms 5
           --metrics-file "${OUT}/metrics.txt"
           --spans-out "${OUT}/spans.json"
           --profile-hz 250 --profile-out "${OUT}/profile.folded"
           --flight-out "${OUT}/flight.json")
else()
  set(load --scale 0.02 --readers 3 --epochs 4 --batch 60 --queries 80
           --pool 3)
endif()

execute_process(
  COMMAND "${BENCH}" ${load} --json "${report}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "serving bench (${MODE}) failed (rc=${rc}):\n${out}\n${err}")
endif()

execute_process(
  COMMAND "${LINT}" --report "${report}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "report_lint failed (rc=${rc}):\n${out}\n${err}")
endif()
message(STATUS "${out}")

if(MODE STREQUAL "shard" AND check_telemetry)
  # The OpenMetrics dump must lint clean (report_lint additionally enforces
  # that per-shard svc_shard_<k>_* families form a dense 0..N-1 range) and
  # actually carry the per-shard plane.
  set(families_args)
  if(DEFINED REGISTRY)
    set(families_args --families "${REGISTRY}")
  endif()
  execute_process(
    COMMAND "${LINT}" --openmetrics "${OUT}/metrics.txt" ${families_args}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "openmetrics lint failed (rc=${rc}):\n${out}\n${err}")
  endif()
  message(STATUS "${out}")
  file(READ "${OUT}/metrics.txt" metrics_text)
  if(NOT metrics_text MATCHES "svc_shard_")
    message(FATAL_ERROR "OpenMetrics dump has no svc_shard_* instruments")
  endif()

  # The span tree (overlap of per-shard publishes was self-checked by the
  # bench) must have materialised on disk as non-empty JSON.
  file(READ "${OUT}/spans.json" spans_text)
  if(spans_text STREQUAL "")
    message(FATAL_ERROR "spans.json is empty")
  endif()
endif()

if(MODE STREQUAL "chaos" AND check_telemetry)
  # The chaos bench self-checked isolation/recovery/drift; the OpenMetrics
  # dump must additionally lint clean against the registry and carry the
  # failure-domain instruments the run just exercised.
  set(families_args)
  if(DEFINED REGISTRY)
    set(families_args --families "${REGISTRY}")
  endif()
  execute_process(
    COMMAND "${LINT}" --openmetrics "${OUT}/metrics.txt" ${families_args}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "openmetrics lint failed (rc=${rc}):\n${out}\n${err}")
  endif()
  message(STATUS "${out}")
  file(READ "${OUT}/metrics.txt" metrics_text)
  foreach(family svc_remote_retries svc_supervisor_restarts
          svc_shard_2_circuit_state svc_shard_2_unavailable)
    if(NOT metrics_text MATCHES "${family}")
      message(FATAL_ERROR "OpenMetrics dump is missing ${family}")
    endif()
  endforeach()
endif()

if(MODE STREQUAL "telemetry" AND check_telemetry)
  # The OpenMetrics dump must lint clean and carry the SLO instruments.
  set(families_args)
  if(DEFINED REGISTRY)
    set(families_args --families "${REGISTRY}")
  endif()
  execute_process(
    COMMAND "${LINT}" --openmetrics "${OUT}/metrics.txt" ${families_args}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "openmetrics lint failed (rc=${rc}):\n${out}\n${err}")
  endif()
  message(STATUS "${out}")
  file(READ "${OUT}/metrics.txt" metrics_text)
  if(NOT metrics_text MATCHES "svc_slo_")
    message(FATAL_ERROR "OpenMetrics dump has no svc_slo_* instruments")
  endif()

  # The folded profile must be non-empty and attribute samples to the
  # linear-algebra counting kernels (the bench repeats the la/ recount
  # inside the sampling window for exactly this reason).
  file(READ "${OUT}/profile.folded" folded_text)
  if(folded_text STREQUAL "")
    message(FATAL_ERROR "folded profile is empty")
  endif()
  if(NOT folded_text MATCHES "bfc::la::")
    message(FATAL_ERROR "folded profile attributes no samples to la/ kernels")
  endif()

  # Span tree and flight ring were self-checked by the bench; they must have
  # materialised on disk as non-empty JSON.
  foreach(artifact spans.json flight.json)
    file(READ "${OUT}/${artifact}" text)
    if(text STREQUAL "")
      message(FATAL_ERROR "${artifact} is empty")
    endif()
  endforeach()
endif()
