// Regenerates the paper's Fig. 10: sequential runtime (seconds) of the
// eight invariant-derived algorithms on the five datasets, using the
// paper-faithful unblocked kernels (CSC storage for invariants 1-4, CSR for
// 5-8, Update::kAuto reproducing the two-term/fused asymmetry of §III-C).
//
// Shape expectations from the paper (§V):
//  - invariants 1-4 win on datasets with |V1| > |V2| (Record Labels,
//    Occupations); invariants 5-8 win when |V1| < |V2| (the others);
//  - look-ahead invariants (2, 4 / 6, 8) beat their look-behind pairs.
#include <cstdlib>
#include <iostream>

#include "bench_common.hpp"
#include "la/count.hpp"

int main(int argc, char** argv) {
  using namespace bfc;
  const bench::BenchConfig cfg = bench::parse_config(argc, argv);
  bench::print_header("Fig. 10: sequential timing of invariants 1-8 (seconds)",
                      cfg);

  Table table({"Dataset", "Inv. 1", "Inv. 2", "Inv. 3", "Inv. 4", "Inv. 5",
               "Inv. 6", "Inv. 7", "Inv. 8"});

  for (const auto& ds : bench::make_datasets(cfg)) {
    std::vector<std::string> row{ds.name};
    count_t reference = -1;
    for (const la::Invariant inv : la::all_invariants()) {
      la::CountOptions options;  // unblocked, matched storage, kAuto, 1 thread
      count_t result = 0;
      const double secs = bench::time_median_seconds(
          cfg,
          [&] { return la::count_butterflies(ds.graph, inv, options); },
          &result, ds.name + "/" + la::name(inv));
      if (reference < 0) reference = result;
      if (result != reference) {
        std::cerr << "FATAL: " << la::name(inv) << " disagrees on " << ds.name
                  << ": " << result << " != " << reference << '\n';
        return EXIT_FAILURE;
      }
      row.push_back(Table::fixed(secs, 3));
    }
    table.add_row(std::move(row));
  }

  table.print(std::cout);
  std::cout << "\n(all eight algorithms verified to return identical "
               "butterfly counts per dataset before timing was accepted)\n";
  bench::write_reports(cfg);
  return EXIT_SUCCESS;
}
