// Ablation A4: storage-format match (§V pairs CSC with invariants 1-4 and
// CSR with 5-8 "to access adjacent elements"). The mismatched engine runs a
// column-family traversal with only the row-major orientation available,
// paying a binary-search scan per pivot to rebuild each column — this bench
// quantifies that penalty. Mismatched kernels are much slower, so the
// default dataset scale here is smaller than the other benches'.
#include <cstdlib>
#include <iostream>

#include "bench_common.hpp"
#include "la/count.hpp"

int main(int argc, char** argv) {
  using namespace bfc;
  bench::BenchConfig cfg = bench::parse_config(argc, argv);
  const Cli cli(argc, argv);
  if (!cli.has("scale")) cfg.scale = 0.03;  // mismatched kernels are O(p·m·log)
  bench::print_header("Ablation A4: matched vs mismatched storage (seconds)",
                      cfg);

  Table table({"Dataset", "Inv", "matched", "mismatched", "penalty"});

  for (const auto& ds : bench::make_datasets(cfg)) {
    for (const la::Invariant inv :
         {la::Invariant::kInv1, la::Invariant::kInv5}) {
      la::CountOptions matched;
      la::CountOptions mismatched;
      mismatched.storage = la::Storage::kMismatched;
      count_t ca = 0, cb = 0;
      const double matched_secs = bench::time_median_seconds(
          cfg, [&] { return la::count_butterflies(ds.graph, inv, matched); },
          &ca);
      const double mismatched_secs = bench::time_median_seconds(
          cfg,
          [&] { return la::count_butterflies(ds.graph, inv, mismatched); },
          &cb);
      if (ca != cb) {
        std::cerr << "FATAL: storage engines disagree on " << ds.name << '\n';
        return EXIT_FAILURE;
      }
      table.add_row({ds.name, la::name(inv), Table::fixed(matched_secs, 3),
                     Table::fixed(mismatched_secs, 3),
                     Table::fixed(mismatched_secs / matched_secs, 1) + "x"});
    }
  }

  table.print(std::cout);
  bench::write_reports(cfg);
  return EXIT_SUCCESS;
}
