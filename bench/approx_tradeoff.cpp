// B2: approximate counting accuracy/time trade-off (the Sanei-Mehri et al.
// line of related work [10]). Sweeps the sample budget for the three
// sampling estimators and reports relative error and speedup against the
// exact wedge-reference count.
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "bench_common.hpp"
#include "count/approx.hpp"
#include "count/baselines.hpp"

int main(int argc, char** argv) {
  using namespace bfc;
  const bench::BenchConfig cfg = bench::parse_config(argc, argv);
  bench::print_header("B2: approximate counting trade-off", cfg);

  Table table({"Dataset", "estimator", "samples", "rel.err %", "est / exact",
               "seconds"});

  for (const auto& ds : bench::make_datasets(cfg)) {
    count_t exact = 0;
    const double exact_secs = bench::time_median_seconds(
        cfg, [&] { return count::wedge_reference(ds.graph); }, &exact);
    table.add_row({ds.name, "exact (wedge-ref)", "-", "0.00",
                   Table::num(exact) + " / " + Table::num(exact),
                   Table::fixed(exact_secs, 4)});
    if (exact == 0) continue;

    struct Estimator {
      const char* label;
      count::ApproxResult (*fn)(const graph::BipartiteGraph&,
                                const count::ApproxOptions&);
    };
    const Estimator estimators[] = {
        {"vertex sampling", &count::approx_vertex_sampling},
        {"edge sampling", &count::approx_edge_sampling},
        {"wedge sampling", &count::approx_wedge_sampling},
    };

    for (const auto& est : estimators) {
      for (const std::int64_t samples : {100, 1000, 10000}) {
        count::ApproxOptions opts;
        opts.samples = samples;
        opts.seed = cfg.seed;
        Timer timer;
        const count::ApproxResult r = est.fn(ds.graph, opts);
        const double secs = timer.seconds();
        const double rel_err =
            100.0 * std::abs(r.estimate - static_cast<double>(exact)) /
            static_cast<double>(exact);
        table.add_row({ds.name, est.label, Table::num(samples),
                       Table::fixed(rel_err, 2),
                       Table::num(static_cast<count_t>(r.estimate)) + " / " +
                           Table::num(exact),
                       Table::fixed(secs, 4)});
      }
    }
  }

  table.print(std::cout);
  bench::write_reports(cfg);
  return EXIT_SUCCESS;
}
