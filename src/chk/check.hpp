// Checked-build invariant machinery. BFC_CHECK / BFC_CHECK_MSG are the
// repo's internal invariant assertions: they compile to nothing in a normal
// build (the condition is NOT evaluated) and, under -DBFC_CHECKED=ON, they
// evaluate the condition and throw chk::CheckError with file/line context
// when it fails. The deep structural validators in chk/validate.hpp are
// built on the same error type but are ordinary functions, always compiled,
// so corruption-injection tests can exercise them in every build lane; the
// BFC_VALIDATE macro gates the *call sites* on the hot mutation seams.
//
// CheckError derives from std::invalid_argument so a failing check
// surfaces through the same exception taxonomy as the library's existing
// API-boundary require() calls.
#pragma once

#include <stdexcept>
#include <string>

namespace bfc::chk {

#if defined(BFC_CHECKED_ENABLED) && BFC_CHECKED_ENABLED
inline constexpr bool kCheckedEnabled = true;
#else
inline constexpr bool kCheckedEnabled = false;
#endif

/// Thrown by a failing BFC_CHECK, a structural validator, or an
/// overflow-checked arithmetic helper.
class CheckError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Formats "<file>:<line>: check failed: <expr> (<msg>)", bumps the
/// chk.failures counter, and throws CheckError. Out-of-line so the cold
/// failure path never bloats a checked hot loop.
[[noreturn]] void check_fail(const char* expr, const char* file, int line,
                             const std::string& msg);

/// Always-on building block for the validators: throws CheckError when the
/// condition is false. Unlike BFC_CHECK this never compiles out — the
/// validators themselves must fire in every lane; only their call sites on
/// hot paths are gated.
inline void enforce(bool cond, const std::string& msg) {
  if (!cond) throw CheckError("validation failed: " + msg);
}

}  // namespace bfc::chk

#if defined(BFC_CHECKED_ENABLED) && BFC_CHECKED_ENABLED
#define BFC_CHECK(cond)                                              \
  do {                                                               \
    if (!(cond))                                                     \
      ::bfc::chk::check_fail(#cond, __FILE__, __LINE__, {});         \
  } while (0)
#define BFC_CHECK_MSG(cond, msg)                                     \
  do {                                                               \
    if (!(cond))                                                     \
      ::bfc::chk::check_fail(#cond, __FILE__, __LINE__, (msg));      \
  } while (0)
#else
// Compiled out entirely: the condition is not evaluated, so a BFC_CHECK may
// guard arbitrarily expensive expressions without release-build cost.
#define BFC_CHECK(cond) static_cast<void>(0)
#define BFC_CHECK_MSG(cond, msg) static_cast<void>(0)
#endif
