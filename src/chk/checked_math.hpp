// Overflow-checked arithmetic for the wedge/butterfly accumulation paths.
// Butterfly counts grow as O(nnz²); a graph with a few million edges and a
// skewed degree profile can push intermediate wedge sums past 2^63 long
// before anyone notices the totals went negative. In a checked build
// (-DBFC_CHECKED=ON) these helpers trap on signed overflow by throwing
// chk::CheckError; in a normal build they compile to the plain operation —
// the `if constexpr` branch folds away, so hot loops pay nothing.
#pragma once

#include "chk/check.hpp"
#include "util/common.hpp"

namespace bfc::chk {

/// Cold out-of-line throw, shared by the helpers below.
[[noreturn]] void overflow_fail(const char* op, long long a, long long b);

/// a + b with signed-overflow detection in checked builds.
[[nodiscard]] inline count_t checked_add(count_t a, count_t b) {
  if constexpr (kCheckedEnabled) {
    count_t out;
    if (__builtin_add_overflow(a, b, &out)) overflow_fail("add", a, b);
    return out;
  } else {
    return a + b;
  }
}

/// a - b with signed-overflow detection in checked builds.
[[nodiscard]] inline count_t checked_sub(count_t a, count_t b) {
  if constexpr (kCheckedEnabled) {
    count_t out;
    if (__builtin_sub_overflow(a, b, &out)) overflow_fail("sub", a, b);
    return out;
  } else {
    return a - b;
  }
}

/// a * b with signed-overflow detection in checked builds.
[[nodiscard]] inline count_t checked_mul(count_t a, count_t b) {
  if constexpr (kCheckedEnabled) {
    count_t out;
    if (__builtin_mul_overflow(a, b, &out)) overflow_fail("mul", a, b);
    return out;
  } else {
    return a * b;
  }
}

/// choose2 with the half-factored product overflow-checked. Matches
/// bfc::choose2 exactly for every n whose result fits in count_t.
[[nodiscard]] inline count_t checked_choose2(count_t n) {
  if constexpr (kCheckedEnabled) {
    if (n <= 1) return 0;
    return n % 2 == 0 ? checked_mul(n / 2, n - 1)
                      : checked_mul(n, (n - 1) / 2);
  } else {
    return choose2(n);
  }
}

}  // namespace bfc::chk
