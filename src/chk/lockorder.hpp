// Checked-build lock-order deadlock detection — the dynamic counterpart to
// the compile-time thread-safety annotations in util/sync.hpp. Every
// bfc::Mutex / bfc::SharedMutex carries a *site id* (registered from the
// name given at its construction site); under -DBFC_CHECKED=ON each
// blocking acquisition records, for every lock already held by the thread,
// a directed edge held-site -> acquired-site into one global acquisition-
// order graph. The moment any two sites are ever taken in both orders —
// on any threads, at any time, whether or not they actually deadlocked —
// the acquisition throws chk::CheckError with a LockOrderViolation report
// naming both conflicting sites. This is a *potential*-deadlock detector:
// it fails on the first inconsistent ordering, not on an actual deadlock,
// so a race that would hang once in a thousand runs fails deterministically
// on the first run that exercises both orders.
//
// Design notes:
//   - try_lock acquisitions are pushed onto the held stack (locks acquired
//     later while they are held do get edges FROM them) but record no edge
//     themselves: a non-blocking acquisition cannot participate in a
//     deadlock cycle as the blocked party.
//   - shared (reader) acquisitions are tracked exactly like exclusive ones.
//     That is conservative — a cycle of pure readers cannot deadlock — but
//     any such cycle becomes a real deadlock as soon as a writer joins it,
//     so the checker flags the ordering itself.
//   - the checker's own bookkeeping runs under one primitive (untracked)
//     mutex, and a thread-local reentrancy latch keeps the metrics
//     registry's bfc-wrapped lock (which the hooks themselves touch when
//     publishing chk.lock_acquisitions / chk.lock_order_edges) from
//     recursing back into the checker. Acquisitions of the registry's own
//     lock are tracked in the graph and in stats() but not published
//     inline: the publication would reacquire the very lock just recorded.
//
// Everything compiles to no-op inlines unless -DBFC_CHECKED=ON, so release
// builds pay nothing beyond one unused 4-byte site id per mutex.
#pragma once

#include <cstdint>

#include "chk/check.hpp"

namespace bfc::chk::lockorder {

/// Index into the global site registry; sites with the same name (several
/// instances constructed through one code path) share one id.
using SiteId = std::uint32_t;

#if defined(BFC_CHECKED_ENABLED) && BFC_CHECKED_ENABLED

/// Interns `name` (a stable string literal naming the construction site,
/// e.g. "svc.executor") and returns its id. Thread-safe; called once per
/// mutex construction.
[[nodiscard]] SiteId register_site(const char* name);

/// Records a blocking acquisition: adds held->acquired edges for every lock
/// this thread already holds, throws chk::CheckError on the first edge whose
/// reverse was ever observed, then pushes the site onto the thread's held
/// stack. Called with the underlying lock already held.
void on_acquire(SiteId id);

/// Records a successful try_lock: pushes onto the held stack without adding
/// order edges (a non-blocking acquisition cannot be the blocked party).
void on_try_acquire(SiteId id);

/// Pops the most recent occurrence of `id` from the thread's held stack.
/// Out-of-order release (lock a, lock b, unlock a) is legal and handled.
void on_release(SiteId id);

/// Clears the global order graph and the *calling thread's* held stack.
/// Test-fixture use only: call with no locks held on any thread, or edges
/// recorded by still-running threads are silently forgotten.
void reset();

struct Stats {
  std::uint64_t acquisitions = 0;  // tracked lock/lock_shared/try successes
  std::uint64_t edges = 0;         // distinct order edges in the graph
};
[[nodiscard]] Stats stats();

#else  // checker compiled out: zero-cost stubs

[[nodiscard]] inline constexpr SiteId register_site(const char*) noexcept {
  return 0;
}
inline void on_acquire(SiteId) noexcept {}
inline void on_try_acquire(SiteId) noexcept {}
inline void on_release(SiteId) noexcept {}
inline void reset() noexcept {}
struct Stats {
  std::uint64_t acquisitions = 0;
  std::uint64_t edges = 0;
};
[[nodiscard]] inline constexpr Stats stats() noexcept { return {}; }

#endif

}  // namespace bfc::chk::lockorder
