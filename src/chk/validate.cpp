#include "chk/validate.hpp"

#include <algorithm>
#include <string>

#include "count/baselines.hpp"
#include "count/dynamic.hpp"
#include "graph/bipartite_graph.hpp"
#include "obs/metrics.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "svc/snapshot.hpp"

namespace bfc::chk {
namespace {

std::string at_row(const char* what, vidx_t r) {
  return std::string(what) + " at row " + std::to_string(r);
}

/// One side's adjacency vectors: sorted, unique, in [0, limit); returns the
/// total degree.
offset_t validate_adjacency_side(const count::DynamicButterflyCounter& c,
                                 bool v1_side, vidx_t n, vidx_t limit) {
  offset_t degree_sum = 0;
  for (vidx_t x = 0; x < n; ++x) {
    const std::span<const vidx_t> nbrs =
        v1_side ? c.neighbors_v1(x) : c.neighbors_v2(x);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      enforce(nbrs[k] >= 0 && nbrs[k] < limit,
              at_row("dynamic counter: neighbour out of range", x));
      if (k > 0)
        enforce(nbrs[k - 1] < nbrs[k],
                at_row("dynamic counter: adjacency not sorted/unique", x));
    }
    degree_sum += static_cast<offset_t>(nbrs.size());
  }
  return degree_sum;
}

}  // namespace

void validate_csr_arrays(vidx_t rows, vidx_t cols,
                         std::span<const offset_t> row_ptr,
                         std::span<const vidx_t> col_idx) {
  BFC_COUNT_ADD("chk.validations", 1);
  enforce(rows >= 0 && cols >= 0, "csr: negative dimension");
  enforce(row_ptr.size() == static_cast<std::size_t>(rows) + 1,
          "csr: row_ptr size != rows + 1");
  enforce(row_ptr.front() == 0, "csr: row_ptr[0] != 0");
  enforce(row_ptr.back() == static_cast<offset_t>(col_idx.size()),
          "csr: row_ptr back != nnz");
  for (vidx_t r = 0; r < rows; ++r) {
    const offset_t lo = row_ptr[static_cast<std::size_t>(r)];
    const offset_t hi = row_ptr[static_cast<std::size_t>(r) + 1];
    enforce(lo <= hi, at_row("csr: row_ptr not monotone", r));
    for (offset_t k = lo; k < hi; ++k) {
      const vidx_t c = col_idx[static_cast<std::size_t>(k)];
      enforce(c >= 0 && c < cols, at_row("csr: column index out of range", r));
      if (k > lo)
        enforce(col_idx[static_cast<std::size_t>(k) - 1] < c,
                at_row("csr: row not sorted/unique", r));
    }
  }
}

void validate(const sparse::CsrPattern& p) {
  validate_csr_arrays(p.rows(), p.cols(), p.row_ptr(), p.col_idx());
}

void validate(const sparse::CsrCounts& c) {
  validate_csr_arrays(c.rows, c.cols, c.row_ptr, c.col_idx);
  enforce(c.values.size() == c.col_idx.size(),
          "csr counts: values size != nnz");
}

void validate(const sparse::CooBuilder& b) {
  BFC_COUNT_ADD("chk.validations", 1);
  enforce(b.rows() >= 0 && b.cols() >= 0, "coo: negative dimension");
  for (const auto& [r, c] : b.entries()) {
    enforce(r >= 0 && r < b.rows(), "coo: row index out of range");
    enforce(c >= 0 && c < b.cols(), "coo: column index out of range");
  }
}

void validate_mirror(const sparse::CsrPattern& a,
                     const sparse::CsrPattern& at) {
  BFC_COUNT_ADD("chk.validations", 1);
  enforce(at.rows() == a.cols() && at.cols() == a.rows(),
          "mirror: transpose shape mismatch");
  enforce(at.nnz() == a.nnz(), "mirror: transpose nnz mismatch");
  // Same nnz on both sides, so one direction of edge containment implies
  // the mirrors are identical as edge sets.
  for (vidx_t r = 0; r < a.rows(); ++r)
    for (const vidx_t c : a.row(r))
      enforce(at.has(c, r), at_row("mirror: edge missing from transpose", r));
}

void validate(const graph::BipartiteGraph& g) {
  validate(g.csr());
  validate(g.csc());
  validate_mirror(g.csr(), g.csc());
  // row_ptr.back() == nnz is already enforced per orientation; the mirror
  // check above pins the two orientations to the same edge set, so the
  // degree sums of both sides necessarily equal edge_count() here.
  enforce(g.csr().nnz() == g.edge_count() && g.csc().nnz() == g.edge_count(),
          "graph: degree sums disagree with edge count");
}

void validate(const count::DynamicButterflyCounter& c) {
  BFC_COUNT_ADD("chk.validations", 1);
  const offset_t deg_v1 = validate_adjacency_side(c, true, c.n1(), c.n2());
  const offset_t deg_v2 = validate_adjacency_side(c, false, c.n2(), c.n1());
  enforce(deg_v1 == c.edge_count(),
          "dynamic counter: V1 degree sum != edge count");
  enforce(deg_v2 == c.edge_count(),
          "dynamic counter: V2 degree sum != edge count");
  // Mirror agreement: every (u, v) in adj_v1 appears as (v, u) in adj_v2.
  // Equal degree sums make one direction sufficient.
  for (vidx_t u = 0; u < c.n1(); ++u) {
    for (const vidx_t v : c.neighbors_v1(u)) {
      const std::span<const vidx_t> nv = c.neighbors_v2(v);
      enforce(std::binary_search(nv.begin(), nv.end(), u),
              at_row("dynamic counter: V1/V2 mirror disagreement", u));
    }
  }
  const graph::BipartiteGraph g = c.to_graph();
  validate(g);
  enforce(count::wedge_reference(g) == c.butterflies(),
          "dynamic counter: incremental count drifted from recount");
}

void validate(const svc::GraphSnapshot& s) {
  BFC_COUNT_ADD("chk.validations", 1);
  validate(s.graph);
  enforce(s.edges == s.graph.edge_count(),
          "snapshot: edges field != materialised edge count");
  enforce(count::wedge_reference(s.graph) == s.butterflies,
          "snapshot: butterfly count != recount of materialised graph");
}

void validate_epoch_transition(const svc::GraphSnapshot& prev,
                               const svc::GraphSnapshot& next) {
  BFC_COUNT_ADD("chk.validations", 1);
  enforce(next.epoch == prev.epoch + 1,
          "snapshot: epoch did not advance by exactly one (got " +
              std::to_string(next.epoch) + " after " +
              std::to_string(prev.epoch) + ")");
}

void validate_shard_range(const graph::BipartiteGraph& g, vidx_t lo,
                          vidx_t hi) {
  BFC_COUNT_ADD("chk.validations", 1);
  enforce(0 <= lo && lo <= hi && hi <= g.n1(),
          "shard graph: owned range [" + std::to_string(lo) + ", " +
              std::to_string(hi) + ") not inside [0, " +
              std::to_string(g.n1()) + ")");
  for (vidx_t u = 0; u < g.n1(); ++u) {
    if (lo <= u && u < hi) continue;
    enforce(g.csr().row_degree(u) == 0,
            at_row("shard graph: edge on a V1 vertex outside the owned range",
                   u));
  }
}

}  // namespace bfc::chk
