// Happens-before fence for OpenMP joins under ThreadSanitizer.
//
// GCC's libgomp is not TSan-instrumented, so the synchronization of a
// parallel region's join is invisible to the runtime: anything a worker
// thread touched inside the region (the shared graph it read, the output
// slots it wrote) later looks racy against the spawning thread — e.g. a
// report of "data race" between a worker's read of a CsrPattern and the
// main thread destroying that graph after the kernel returned.
//
// TsanOmpFence re-draws the edge with explicit annotations: every thread
// releases on the fence address as the last statement of the parallel
// block, and the spawning thread acquires right after the region. In
// non-TSan builds both calls are empty inlines. The reduction-clause
// combine that libgomp itself performs stays opaque either way; those
// reports carry libgomp frames and are handled by the embedded
// suppressions in chk/tsan_suppressions.cpp.
#pragma once

#if defined(__SANITIZE_THREAD__)
extern "C" {
void AnnotateHappensBefore(const char* file, int line,
                           const volatile void* addr);
void AnnotateHappensAfter(const char* file, int line,
                          const volatile void* addr);
}
#endif

namespace bfc::chk {

class TsanOmpFence {
 public:
  /// Last statement of the parallel block, executed by every thread.
  void thread_done() noexcept {
#if defined(__SANITIZE_THREAD__)
    AnnotateHappensBefore(__FILE__, __LINE__, this);
#endif
  }

  /// First statement after the region, in the spawning thread.
  void join() noexcept {
#if defined(__SANITIZE_THREAD__)
    AnnotateHappensAfter(__FILE__, __LINE__, this);
#endif
  }
};

}  // namespace bfc::chk
