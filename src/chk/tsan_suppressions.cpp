// Default ThreadSanitizer suppressions for the TSan build lane
// (-DBFC_SANITIZE=thread).
//
// GCC's libgomp is not TSan-instrumented, so TSan cannot observe the
// happens-before edges its barriers and reduction combines establish and
// reports every `#pragma omp parallel ... reduction` as a race between a
// worker's accumulation and the main thread's read of the result — with
// `gomp_thread_start` / `gomp_team_start` on one stack. Those are false
// positives: the kernels aggregate through per-thread buffers and
// reduction clauses (scripts/lint.sh rule A), and their sequential
// agreement is separately enforced by the differential tests in every
// lane.
//
// Suppressing on the libgomp frames keeps the TSan lane's real target —
// the std::thread-based serving layer in src/svc/, whose stacks never
// enter libgomp — at full fidelity.
#if defined(__SANITIZE_THREAD__)
extern "C" const char* __tsan_default_suppressions();
extern "C" const char* __tsan_default_suppressions() {
  return "race:^gomp_\n"
         "race:libgomp\n"
         "called_from_lib:libgomp\n";
}
#endif
