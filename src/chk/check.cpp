#include "chk/check.hpp"

#include <sstream>

#include "chk/checked_math.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"

namespace bfc::chk {

void check_fail(const char* expr, const char* file, int line,
                const std::string& msg) {
  BFC_COUNT_ADD("chk.failures", 1);
  std::ostringstream out;
  out << file << ':' << line << ": check failed: " << expr;
  if (!msg.empty()) out << " (" << msg << ')';
  // A failed invariant is exactly what the flight recorder exists for:
  // preserve the recent event history before unwinding destroys it.
  obs::FlightRecorder::record("check_fail", expr, line);
  obs::FlightRecorder::dump_on_fault("CheckError");
  throw CheckError(out.str());
}

void overflow_fail(const char* op, long long a, long long b) {
  BFC_COUNT_ADD("chk.overflows", 1);
  std::ostringstream out;
  out << "checked_" << op << ": signed 64-bit overflow on " << a << ' ' << op
      << ' ' << b << " — wedge/butterfly accumulator exceeded count_t";
  obs::FlightRecorder::record("overflow", op, a, b);
  obs::FlightRecorder::dump_on_fault("overflow");
  throw CheckError(out.str());
}

}  // namespace bfc::chk
