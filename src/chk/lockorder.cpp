#include "chk/lockorder.hpp"

#if defined(BFC_CHECKED_ENABLED) && BFC_CHECKED_ENABLED

#include <array>
#include <bitset>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace bfc::chk::lockorder {
namespace {

// Upper bound on distinct construction sites. The library defines ~10; the
// headroom is for tests and future subsystems. Hitting the bound is a
// checked-build error, not silent truncation.
constexpr std::size_t kMaxSites = 128;

struct Graph {
  // The checker sits *below* the annotated layer (bfc::Mutex's hooks call
  // into it while the user's lock is held), so its own guard must be a
  // primitive mutex: a bfc::Mutex here would re-enter the hooks.
  std::mutex mu;  // bfc-lint: raw-sync-ok
  std::array<const char*, kMaxSites> names{};
  std::size_t site_count = 0;
  // edge[a][b] set = "b was acquired while a was held" has been observed.
  std::array<std::bitset<kMaxSites>, kMaxSites> edge{};
  std::uint64_t acquisitions = 0;
  std::uint64_t edges = 0;
  // The metrics registry's own lock: acquisitions of it are tracked in the
  // graph and in stats(), but NOT published to the registry inline — the
  // publication would have to reacquire the very lock being recorded,
  // self-deadlocking on the non-recursive std primitive underneath.
  SiteId registry_site = kMaxSites;
};

Graph& graph() {
  static Graph* g = new Graph;  // leaked: hooks may run during static dtors
  return *g;
}

std::vector<SiteId>& held_stack() {
  thread_local std::vector<SiteId> stack;
  return stack;
}

// Reentrancy latch: while a hook publishes its metrics, the registry's own
// bfc-wrapped mutex would call back into on_acquire/on_release; those inner
// invocations must be invisible (and are symmetric, so the held stack stays
// consistent).
thread_local bool t_in_hook = false;

struct HookScope {
  HookScope() noexcept { t_in_hook = true; }
  ~HookScope() noexcept { t_in_hook = false; }
  HookScope(const HookScope&) = delete;
  HookScope& operator=(const HookScope&) = delete;
};

[[noreturn]] void fail_order(const char* held_name, const char* acq_name) {
  throw CheckError(std::string("LockOrderViolation: acquiring mutex \"") +
                   acq_name + "\" while holding \"" + held_name +
                   "\", but the opposite order (\"" + held_name +
                   "\" acquired while \"" + acq_name +
                   "\" was held) was observed earlier — the two sites can "
                   "deadlock if both orders ever run concurrently");
}

}  // namespace

SiteId register_site(const char* name) {
  if (name == nullptr) name = "<unnamed>";
  Graph& g = graph();
  const std::lock_guard<std::mutex> lock(g.mu);  // bfc-lint: raw-sync-ok
  for (std::size_t i = 0; i < g.site_count; ++i)
    if (std::strcmp(g.names[i], name) == 0) return static_cast<SiteId>(i);
  enforce(g.site_count < kMaxSites,
          "lockorder: too many distinct mutex sites (raise kMaxSites)");
  g.names[g.site_count] = name;
  const auto id = static_cast<SiteId>(g.site_count++);
  if (std::strcmp(name, "obs.registry") == 0) g.registry_site = id;
  return id;
}

void on_acquire(SiteId id) {
  if (t_in_hook) return;
  const HookScope scope;
  std::uint64_t new_edges = 0;
  bool publish = false;
  {
    Graph& g = graph();
    const std::lock_guard<std::mutex> lock(g.mu);  // bfc-lint: raw-sync-ok
    for (const SiteId held : held_stack()) {
      if (held == id) continue;  // same-site nesting carries no order info
      if (g.edge[held][id]) continue;
      if (g.edge[id][held]) fail_order(g.names[held], g.names[id]);
      g.edge[held][id] = true;
      ++g.edges;
      ++new_edges;
    }
    held_stack().push_back(id);
    ++g.acquisitions;
    publish = id != g.registry_site;
  }
  // Metrics outside the graph lock (and inside the reentrancy latch, so the
  // registry's own lock acquisition does not recurse into the checker) —
  // except for the registry's own lock, whose acquisition this thread still
  // holds: publishing would self-deadlock reacquiring it (Graph's comment).
  if (publish) {
    BFC_COUNT_ADD("chk.lock_acquisitions", 1);
    if (new_edges != 0) BFC_COUNT_ADD("chk.lock_order_edges", new_edges);
  }
}

void on_try_acquire(SiteId id) {
  if (t_in_hook) return;
  const HookScope scope;
  bool publish = false;
  {
    Graph& g = graph();
    const std::lock_guard<std::mutex> lock(g.mu);  // bfc-lint: raw-sync-ok
    held_stack().push_back(id);
    ++g.acquisitions;
    publish = id != g.registry_site;
  }
  if (publish) BFC_COUNT_ADD("chk.lock_acquisitions", 1);
}

void on_release(SiteId id) {
  if (t_in_hook) return;
  const HookScope scope;
  std::vector<SiteId>& stack = held_stack();
  for (std::size_t i = stack.size(); i > 0; --i) {
    if (stack[i - 1] == id) {
      stack.erase(stack.begin() + static_cast<std::ptrdiff_t>(i - 1));
      return;
    }
  }
  // Not found: the acquisition predated a reset(), or the matching
  // on_acquire threw before pushing. Either way there is nothing to pop.
}

void reset() {
  Graph& g = graph();
  const std::lock_guard<std::mutex> lock(g.mu);  // bfc-lint: raw-sync-ok
  for (auto& row : g.edge) row.reset();
  g.edges = 0;
  held_stack().clear();
}

Stats stats() {
  Graph& g = graph();
  const std::lock_guard<std::mutex> lock(g.mu);  // bfc-lint: raw-sync-ok
  return Stats{g.acquisitions, g.edges};
}

}  // namespace bfc::chk::lockorder

#endif  // BFC_CHECKED_ENABLED
