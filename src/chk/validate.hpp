// Deep structural validators for every container the counting stack trusts.
// Each validate() walks the whole object and throws chk::CheckError on the
// first violated invariant — unsorted CSR rows, out-of-bounds indices,
// nnz/row_ptr drift, CSR/CSC mirror disagreement, epoch regression, or an
// incremental butterfly count that no longer matches its materialised
// graph.
//
// The functions are always compiled (corruption-injection tests call them
// directly in every build lane); the BFC_VALIDATE macro gates the call
// sites wired into the hot mutation seams — loader/generator returns,
// DynamicButterflyCounter batches, SnapshotStore publishes, la/ kernel
// entry — so a release build pays nothing.
#pragma once

#include <span>

#include "chk/check.hpp"
#include "util/common.hpp"

// Forward declarations keep this header light enough for the lowest layers
// (sparse/) to include without an upward dependency on graph/count/svc.
namespace bfc::sparse {
class CsrPattern;
struct CsrCounts;
class CooBuilder;
}  // namespace bfc::sparse
namespace bfc::graph {
class BipartiteGraph;
}
namespace bfc::count {
class DynamicButterflyCounter;
}
namespace bfc::svc {
struct GraphSnapshot;
}

namespace bfc::chk {

/// Raw-array CSR shape check: row_ptr has rows+1 entries starting at 0,
/// monotone, ending at nnz; every row's column indices sorted, unique and
/// in [0, cols). The shared core of validate(CsrPattern), the CsrPattern
/// constructor, and the corruption-injection tests (which feed deliberately
/// broken arrays that could never come out of the constructor).
void validate_csr_arrays(vidx_t rows, vidx_t cols,
                         std::span<const offset_t> row_ptr,
                         std::span<const vidx_t> col_idx);

/// Re-validates an existing pattern (detects post-construction corruption).
void validate(const sparse::CsrPattern& p);

/// Pattern checks plus values array sized to nnz.
void validate(const sparse::CsrCounts& c);

/// Pending COO entries all in [0, rows) x [0, cols).
void validate(const sparse::CooBuilder& b);

/// `at` is exactly the transpose of `a`: shapes swapped, nnz equal, and
/// every edge present in both orientations. O(nnz log deg).
void validate_mirror(const sparse::CsrPattern& a, const sparse::CsrPattern& at);

/// Both orientations structurally valid, CSR/CSC mirror agreement, and the
/// degree sums of the two sides both equal to nnz.
void validate(const graph::BipartiteGraph& g);

/// Adjacency vectors sorted/unique/in-range on both sides, V1/V2 mirror
/// agreement, edge_count() equal to the degree sum, and the incremental
/// butterfly count equal to a from-scratch recount of the materialised
/// graph.
void validate(const count::DynamicButterflyCounter& c);

/// Snapshot-internal consistency: graph valid, edges field equal to the
/// materialised edge count, and the incrementally maintained butterfly
/// count equal to a from-scratch recount.
void validate(const svc::GraphSnapshot& s);

/// Publish-seam check: epochs advance by exactly one per batch.
void validate_epoch_transition(const svc::GraphSnapshot& prev,
                               const svc::GraphSnapshot& next);

/// Shard-ownership check: a shard graph spans the full (n1, n2) dimensions
/// but may only populate V1 rows inside its owned range [lo, hi) — every
/// row outside must be empty. O(n1) over row_ptr, no edge walk.
void validate_shard_range(const graph::BipartiteGraph& g, vidx_t lo,
                          vidx_t hi);

}  // namespace bfc::chk

#if defined(BFC_CHECKED_ENABLED) && BFC_CHECKED_ENABLED
#define BFC_VALIDATE(x) ::bfc::chk::validate(x)
#else
#define BFC_VALIDATE(x) static_cast<void>(0)
#endif
