#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <limits>

#include "util/parallel.hpp"

namespace bfc::obs {

std::size_t Counter::shard_index() noexcept {
  // OpenMP thread ids are dense starting at 0, so low ids map to distinct
  // cache lines; the mask only matters past kShards threads, where a rare
  // shared shard is still correct (relaxed atomic add).
  return static_cast<std::size_t>(thread_id()) & (kShards - 1);
}

void Histogram::observe(std::int64_t v) noexcept {
  if (v < 0) v = 0;
  const int bucket =
      v == 0 ? 0
             : std::min(static_cast<int>(
                            std::bit_width(static_cast<std::uint64_t>(v))),
                        kBuckets - 1);
  buckets_[static_cast<std::size_t>(bucket)].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);

  // min_/max_ hold INT64_MAX/INT64_MIN sentinels while empty, so plain CAS
  // loops handle the first observation too. observe() is called at coarse
  // granularity (per thread / per phase), not on the per-wedge hot path.
  std::int64_t cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

std::int64_t Histogram::min() const noexcept {
  return count() == 0 ? 0 : min_.load(std::memory_order_relaxed);
}

std::int64_t Histogram::max() const noexcept {
  return count() == 0 ? 0 : max_.load(std::memory_order_relaxed);
}

std::int64_t Histogram::bucket_upper(int i) noexcept {
  return i <= 0 ? 0 : (std::int64_t{1} << i) - 1;
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<std::int64_t>::max(),
             std::memory_order_relaxed);
  max_.store(std::numeric_limits<std::int64_t>::min(),
             std::memory_order_relaxed);
}

Registry& Registry::instance() {
  static Registry r;
  return r;
}

Counter& Registry::counter(const std::string& name) {
  const WriterLock lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  const WriterLock lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  const WriterLock lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::vector<MetricSnapshot> Registry::snapshot() const {
  // Reader side: only the maps need the lock; the instruments are atomic.
  const SharedLock lock(mu_);
  std::vector<MetricSnapshot> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    MetricSnapshot s;
    s.name = name;
    s.kind = MetricSnapshot::Kind::kCounter;
    s.value = c->value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, g] : gauges_) {
    MetricSnapshot s;
    s.name = name;
    s.kind = MetricSnapshot::Kind::kGauge;
    s.gauge = g->value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, h] : histograms_) {
    MetricSnapshot s;
    s.name = name;
    s.kind = MetricSnapshot::Kind::kHistogram;
    s.hist_count = h->count();
    s.hist_sum = h->sum();
    s.hist_min = h->min();
    s.hist_max = h->max();
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      const std::int64_t n = h->bucket_count(i);
      if (n != 0) s.hist_buckets.emplace_back(Histogram::bucket_upper(i), n);
    }
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

void Registry::reset() {
  // Reader side: map topology is untouched; each instrument zeroes itself
  // with its own atomics.
  const SharedLock lock(mu_);
  for (const auto& [name, c] : counters_) c->reset();
  for (const auto& [name, g] : gauges_) g->reset();
  for (const auto& [name, h] : histograms_) h->reset();
}

}  // namespace bfc::obs
