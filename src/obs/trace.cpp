#include "obs/trace.hpp"

#include <chrono>
#include <fstream>
#include <stdexcept>

#include "obs/json.hpp"
#include "util/parallel.hpp"
#include "util/sync.hpp"

namespace bfc::obs {
namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point trace_epoch() {
  static const Clock::time_point epoch = Clock::now();
  return epoch;
}

// Mutex and guarded vector live in one struct so the analysis can relate
// them through the single reference `log()` returns; two independent
// function-local statics would look like unrelated objects to TSA.
struct EventLog {
  Mutex mu{"obs.trace"};
  std::vector<TraceEvent> events BFC_GUARDED_BY(mu);
};

EventLog& log() {
  static EventLog log;
  return log;
}

}  // namespace

std::atomic<bool>& Tracer::enabled_flag() noexcept {
  static std::atomic<bool> flag{false};
  return flag;
}

std::int64_t Tracer::now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               trace_epoch())
      .count();
}

void Tracer::record(std::string name, std::int64_t ts_us,
                    std::int64_t dur_us) {
  TraceEvent ev;
  ev.name = std::move(name);
  ev.ts_us = ts_us;
  ev.dur_us = dur_us;
  ev.tid = thread_id();
  EventLog& l = log();
  const MutexLock lock(l.mu);
  l.events.push_back(std::move(ev));
}

std::vector<TraceEvent> Tracer::events() {
  EventLog& l = log();
  const MutexLock lock(l.mu);
  return l.events;
}

void Tracer::clear() {
  EventLog& l = log();
  const MutexLock lock(l.mu);
  l.events.clear();
}

void Tracer::write_chrome_json(const std::string& path) {
  Json root = Json::object();
  Json& list = root["traceEvents"];
  list = Json::array();
  for (const TraceEvent& ev : events()) {
    Json e = Json::object();
    e["name"] = ev.name;
    e["cat"] = "bfc";
    e["ph"] = "X";
    e["pid"] = 1;
    e["tid"] = ev.tid;
    e["ts"] = ev.ts_us;
    e["dur"] = ev.dur_us;
    list.push_back(std::move(e));
  }
  root["displayTimeUnit"] = "ms";

  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write trace file: " + path);
  out << root.dump(1) << '\n';
}

}  // namespace bfc::obs
