#include "obs/trace.hpp"

#include <chrono>
#include <fstream>
#include <mutex>
#include <stdexcept>

#include "obs/json.hpp"
#include "util/parallel.hpp"

namespace bfc::obs {
namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point trace_epoch() {
  static const Clock::time_point epoch = Clock::now();
  return epoch;
}

std::mutex& events_mutex() {
  static std::mutex mu;
  return mu;
}

std::vector<TraceEvent>& events_store() {
  static std::vector<TraceEvent> store;
  return store;
}

}  // namespace

std::atomic<bool>& Tracer::enabled_flag() noexcept {
  static std::atomic<bool> flag{false};
  return flag;
}

std::int64_t Tracer::now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               trace_epoch())
      .count();
}

void Tracer::record(std::string name, std::int64_t ts_us,
                    std::int64_t dur_us) {
  TraceEvent ev;
  ev.name = std::move(name);
  ev.ts_us = ts_us;
  ev.dur_us = dur_us;
  ev.tid = thread_id();
  const std::lock_guard<std::mutex> lock(events_mutex());
  events_store().push_back(std::move(ev));
}

std::vector<TraceEvent> Tracer::events() {
  const std::lock_guard<std::mutex> lock(events_mutex());
  return events_store();
}

void Tracer::clear() {
  const std::lock_guard<std::mutex> lock(events_mutex());
  events_store().clear();
}

void Tracer::write_chrome_json(const std::string& path) {
  Json root = Json::object();
  Json& list = root["traceEvents"];
  list = Json::array();
  for (const TraceEvent& ev : events()) {
    Json e = Json::object();
    e["name"] = ev.name;
    e["cat"] = "bfc";
    e["ph"] = "X";
    e["pid"] = 1;
    e["tid"] = ev.tid;
    e["ts"] = ev.ts_us;
    e["dur"] = ev.dur_us;
    list.push_back(std::move(e));
  }
  root["displayTimeUnit"] = "ms";

  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write trace file: " + path);
  out << root.dump(1) << '\n';
}

}  // namespace bfc::obs
