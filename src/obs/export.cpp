#include "obs/export.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "obs/metrics.hpp"

namespace bfc::obs {
namespace {

bool valid_name_char(char c, bool first) {
  const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
  const bool digit = c >= '0' && c <= '9';
  return alpha || c == '_' || c == ':' || (!first && digit);
}

void append_counter(std::string& out, const std::string& name,
                    std::int64_t value) {
  out += "# TYPE " + name + " counter\n";
  out += "# HELP " + name + " bfc counter\n";
  out += name + "_total " + std::to_string(value) + "\n";
}

void append_gauge(std::string& out, const std::string& name, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out += "# TYPE " + name + " gauge\n";
  out += "# HELP " + name + " bfc gauge\n";
  out += name + " " + buf + "\n";
}

void append_histogram(std::string& out, const std::string& name,
                      const MetricSnapshot& m) {
  out += "# TYPE " + name + " histogram\n";
  out += "# HELP " + name + " bfc base-2 histogram\n";
  // The snapshot keeps non-empty buckets as (inclusive upper bound, count);
  // OpenMetrics wants the cumulative count at each le threshold.
  std::int64_t cumulative = 0;
  for (const auto& [upper, count] : m.hist_buckets) {
    cumulative += count;
    out += name + "_bucket{le=\"" + std::to_string(upper) + "\"} " +
           std::to_string(cumulative) + "\n";
  }
  out += name + "_bucket{le=\"+Inf\"} " + std::to_string(m.hist_count) + "\n";
  out += name + "_sum " + std::to_string(m.hist_sum) + "\n";
  out += name + "_count " + std::to_string(m.hist_count) + "\n";
}

}  // namespace

std::string openmetrics_name(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (const char c : name)
    out += valid_name_char(c, /*first=*/false) ? c : '_';
  if (out.empty() || !valid_name_char(out.front(), /*first=*/true))
    out.insert(out.begin(), '_');
  return out;
}

std::string render_openmetrics() {
  std::string out;
  for (const MetricSnapshot& m : Registry::instance().snapshot()) {
    const std::string name = openmetrics_name(m.name);
    switch (m.kind) {
      case MetricSnapshot::Kind::kCounter:
        append_counter(out, name, m.value);
        break;
      case MetricSnapshot::Kind::kGauge:
        append_gauge(out, name, m.gauge);
        break;
      case MetricSnapshot::Kind::kHistogram:
        append_histogram(out, name, m);
        break;
    }
  }
  out += "# EOF\n";
  return out;
}

void write_openmetrics_file(const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) throw std::runtime_error("cannot write metrics file: " + tmp);
    out << render_openmetrics();
    if (!out.flush())
      throw std::runtime_error("cannot flush metrics file: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    throw std::runtime_error("cannot rename metrics file into place: " +
                             path);
}

MetricsHttpServer::MetricsHttpServer(int port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    throw std::runtime_error(std::string("metrics server: socket: ") +
                             std::strerror(errno));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("metrics server: cannot listen on port " +
                             std::to_string(port) + ": " + why);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0)
    port_ = static_cast<int>(ntohs(bound.sin_port));
  loop_ = std::jthread([this](const std::stop_token& st) { serve_loop(st); });
}

MetricsHttpServer::~MetricsHttpServer() {
  loop_.request_stop();
  if (loop_.joinable()) loop_.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

std::int64_t MetricsHttpServer::requests_served() const noexcept {
  return served_.load(std::memory_order_relaxed);
}

void MetricsHttpServer::serve_loop(const std::stop_token& stop) {
  while (!stop.stop_requested()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // timeout (re-check stop) or transient error
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    // Drain whatever fits of the request line + headers; the response is
    // the same regardless of the path, so parsing is not worth the code.
    char req[1024];
    (void)::read(client, req, sizeof(req));
    const std::string body = render_openmetrics();
    const std::string head =
        "HTTP/1.1 200 OK\r\n"
        "Content-Type: application/openmetrics-text; version=1.0.0; "
        "charset=utf-8\r\n"
        "Content-Length: " +
        std::to_string(body.size()) +
        "\r\n"
        "Connection: close\r\n\r\n";
    const std::string response = head + body;
    std::size_t off = 0;
    while (off < response.size()) {
      const ssize_t n =
          ::write(client, response.data() + off, response.size() - off);
      if (n <= 0) break;
      off += static_cast<std::size_t>(n);
    }
    ::close(client);
    served_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace bfc::obs
