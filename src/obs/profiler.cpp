#include "obs/profiler.hpp"

#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <signal.h>  // NOLINT(*-deprecated-headers): sigaction needs the C header
#include <sys/time.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "util/sync.hpp"

namespace bfc::obs {
namespace {

constexpr std::uint32_t kRingCapacity = 4096;  // samples per thread
constexpr std::size_t kMaxThreads = 64;        // profiled-thread slots

struct RawSample {
  void* pc[Profiler::kMaxFrames];
  std::int32_t depth;
};

/// Single-producer (the owning thread, inside its signal handler — SIGPROF
/// is blocked during delivery so handlers never nest on one thread) /
/// single-consumer (folded()/stop(), reading `used` with acquire) ring.
struct ThreadRing {
  std::atomic<std::uint32_t> used{0};
  std::atomic<std::int64_t> dropped{0};
  RawSample slots[kRingCapacity];
};

// Static storage: the handler may fire on a thread that has never touched
// the profiler, so ring acquisition must not allocate. Pages of untouched
// rings are never faulted in.
ThreadRing g_rings[kMaxThreads];
std::atomic<int> g_next_ring{0};
std::atomic<std::int64_t> g_no_slot_dropped{0};
thread_local ThreadRing* tls_ring = nullptr;

std::atomic<bool> g_running{false};
struct sigaction g_previous_action;

void profiler_signal_handler(int /*signum*/) {
  const int saved_errno = errno;
  ThreadRing* ring = tls_ring;
  if (ring == nullptr) {
    const int idx = g_next_ring.fetch_add(1, std::memory_order_relaxed);
    if (idx < static_cast<int>(kMaxThreads)) {
      ring = &g_rings[idx];
      tls_ring = ring;
    } else {
      g_no_slot_dropped.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (ring != nullptr) {
    const std::uint32_t n = ring->used.load(std::memory_order_relaxed);
    if (n < kRingCapacity) {
      RawSample& s = ring->slots[n];
      s.depth = ::backtrace(s.pc, Profiler::kMaxFrames);
      // Release so a consumer that observes the new count also observes
      // the frames written above.
      ring->used.store(n + 1, std::memory_order_release);
    } else {
      ring->dropped.fetch_add(1, std::memory_order_relaxed);
    }
  }
  errno = saved_errno;
}

/// Best-effort symbol for one return address; cached by the caller.
std::string symbolize(void* pc) {
  Dl_info info{};
  if (dladdr(pc, &info) != 0 && info.dli_sname != nullptr) {
    int status = 0;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    if (status == 0 && demangled != nullptr) {
      std::string out(demangled);
      std::free(demangled);  // NOLINT(*-no-malloc): __cxa_demangle contract
      // Drop the argument list — folded-stack frames read better short, and
      // flamegraph tooling treats ';' or spaces inside frames poorly.
      const std::size_t paren = out.find('(');
      if (paren != std::string::npos) out.resize(paren);
      return out;
    }
    return info.dli_sname;
  }
  if (info.dli_fname != nullptr) {
    const char* base = std::strrchr(info.dli_fname, '/');
    std::string out(base != nullptr ? base + 1 : info.dli_fname);
    char addr[32];
    std::snprintf(addr, sizeof(addr), "+%p", pc);
    return out + addr;
  }
  char addr[32];
  std::snprintf(addr, sizeof(addr), "%p", pc);
  return addr;
}

bool is_handler_frame(const std::string& sym) {
  return sym.find("profiler_signal_handler") != std::string::npos ||
         sym.find("__restore_rt") != std::string::npos ||
         sym.find("killpg") != std::string::npos;
}

Mutex& control_mu() {
  static Mutex mu{"obs.profiler"};
  return mu;
}

/// Zeroes every ring's counters. Ring ownership (tls pointers into
/// g_rings) is deliberately kept: a cleared ring still belongs to its
/// thread for the next run.
void clear_rings() {
  for (ThreadRing& ring : g_rings) {
    ring.used.store(0, std::memory_order_relaxed);
    ring.dropped.store(0, std::memory_order_relaxed);
  }
  g_no_slot_dropped.store(0, std::memory_order_relaxed);
}

}  // namespace

bool Profiler::running() noexcept {
  return g_running.load(std::memory_order_relaxed);
}

bool Profiler::start(int hz) {
  if (hz < 1 || hz > 1000) return false;
  const MutexLock lock(control_mu());
  if (running()) return false;
  clear_rings();

  // glibc's backtrace lazily loads libgcc on first use (it allocates); do
  // that here, outside the handler, so the handler never malloc()s.
  void* warmup[4];
  (void)::backtrace(warmup, 4);

  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = profiler_signal_handler;
  sa.sa_flags = SA_RESTART;
  sigemptyset(&sa.sa_mask);
  if (sigaction(SIGPROF, &sa, &g_previous_action) != 0) return false;

  itimerval timer{};
  const long usec = 1000000L / hz;
  timer.it_interval.tv_sec = usec / 1000000L;
  timer.it_interval.tv_usec = usec % 1000000L;
  timer.it_value = timer.it_interval;
  if (setitimer(ITIMER_PROF, &timer, nullptr) != 0) {
    sigaction(SIGPROF, &g_previous_action, nullptr);
    return false;
  }
  g_running.store(true, std::memory_order_release);
  return true;
}

void Profiler::stop() {
  const MutexLock lock(control_mu());
  if (!running()) return;
  itimerval disarm{};
  setitimer(ITIMER_PROF, &disarm, nullptr);
  sigaction(SIGPROF, &g_previous_action, nullptr);
  g_running.store(false, std::memory_order_release);
  if constexpr (kMetricsEnabled) {
    BFC_GAUGE_SET("obs.profiler.samples", samples_captured());
    BFC_GAUGE_SET("obs.profiler.dropped", samples_dropped());
  }
}

std::int64_t Profiler::samples_captured() {
  std::int64_t total = 0;
  for (const ThreadRing& ring : g_rings)
    total += ring.used.load(std::memory_order_acquire);
  return total;
}

std::int64_t Profiler::samples_dropped() {
  std::int64_t total = g_no_slot_dropped.load(std::memory_order_relaxed);
  for (const ThreadRing& ring : g_rings)
    total += ring.dropped.load(std::memory_order_relaxed);
  return total;
}

std::map<std::string, std::int64_t> Profiler::folded() {
  std::map<std::string, std::int64_t> out;
  std::unordered_map<void*, std::string> symbols;
  const auto symbol_of = [&symbols](void* pc) -> const std::string& {
    auto [it, inserted] = symbols.try_emplace(pc);
    if (inserted) it->second = symbolize(pc);
    return it->second;
  };
  for (const ThreadRing& ring : g_rings) {
    const std::uint32_t used = ring.used.load(std::memory_order_acquire);
    for (std::uint32_t i = 0; i < used; ++i) {
      const RawSample& s = ring.slots[i];
      // Frames run leaf-first; the shallowest few are the handler and the
      // kernel's signal trampoline — skip them so stacks start at the
      // interrupted frame. Fold root-first, ';'-joined, as flamegraph
      // tooling expects.
      int leaf = 0;
      while (leaf < s.depth && is_handler_frame(symbol_of(s.pc[leaf])))
        ++leaf;
      if (leaf >= s.depth) continue;
      std::string stack;
      for (int f = s.depth - 1; f >= leaf; --f) {
        if (!stack.empty()) stack += ';';
        stack += symbol_of(s.pc[f]);
      }
      ++out[stack];
    }
  }
  return out;
}

void Profiler::write_folded(const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write folded profile: " + path);
  for (const auto& [stack, count] : folded())
    out << stack << ' ' << count << '\n';
}

void Profiler::clear() {
  const MutexLock lock(control_mu());
  clear_rings();
}

}  // namespace bfc::obs
