// Minimal JSON value tree with a writer and a strict recursive-descent
// parser. This backs the RunReport / trace emitters and the report linter;
// it is deliberately tiny (no external dependency) and keeps object keys
// sorted so emitted reports are byte-stable across runs of the same config.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "util/common.hpp"

namespace bfc::obs {

class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(std::int64_t i) : value_(i) {}
  Json(int i) : value_(static_cast<std::int64_t>(i)) {}
  Json(std::uint64_t i) : value_(static_cast<std::int64_t>(i)) {}
  Json(double d) : value_(d) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(Array a) : value_(std::move(a)) {}
  Json(Object o) : value_(std::move(o)) {}

  [[nodiscard]] static Json object() { return Json(Object{}); }
  [[nodiscard]] static Json array() { return Json(Array{}); }

  [[nodiscard]] bool is_null() const { return holds<std::nullptr_t>(); }
  [[nodiscard]] bool is_bool() const { return holds<bool>(); }
  [[nodiscard]] bool is_int() const { return holds<std::int64_t>(); }
  [[nodiscard]] bool is_double() const { return holds<double>(); }
  [[nodiscard]] bool is_number() const { return is_int() || is_double(); }
  [[nodiscard]] bool is_string() const { return holds<std::string>(); }
  [[nodiscard]] bool is_array() const { return holds<Array>(); }
  [[nodiscard]] bool is_object() const { return holds<Object>(); }

  /// Object access; creates the key (as null) on mutable objects, converting
  /// a null value into an object first so literals compose naturally.
  Json& operator[](const std::string& key);
  /// Throwing lookups used by consumers (the linter, tests).
  [[nodiscard]] const Json& at(const std::string& key) const;
  [[nodiscard]] const Json& at(std::size_t index) const;
  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::size_t size() const;

  /// Appends to an array (converting null to an empty array first).
  void push_back(Json v);

  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] double as_double() const;  // accepts int values too
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Serializes; indent > 0 pretty-prints with that many spaces per level.
  [[nodiscard]] std::string dump(int indent = 0) const;

  /// Parses a complete JSON document; throws std::runtime_error with a
  /// byte offset on malformed input or trailing garbage.
  [[nodiscard]] static Json parse(const std::string& text);

 private:
  template <typename T>
  [[nodiscard]] bool holds() const {
    return std::holds_alternative<T>(value_);
  }
  void dump_to(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, Array,
               Object>
      value_;
};

}  // namespace bfc::obs
