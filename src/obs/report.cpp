#include "obs/report.hpp"

#include <omp.h>
#include <unistd.h>

#include <array>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "util/parallel.hpp"

namespace bfc::obs {
namespace {

std::string compiler_string() {
#if defined(__clang__)
  return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#else
  return "unknown";
#endif
}

std::string iso8601_utc_now() {
  const std::time_t now =
      std::chrono::system_clock::to_time_t(std::chrono::system_clock::now());
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

std::string hostname() {
  char buf[256] = {0};
  if (gethostname(buf, sizeof(buf) - 1) != 0) return "unknown";
  return buf;
}

}  // namespace

std::string git_describe() {
  FILE* pipe =
      popen("git describe --always --dirty --tags 2>/dev/null", "r");
  if (pipe == nullptr) return "unknown";
  std::array<char, 128> buf{};
  std::string out;
  while (fgets(buf.data(), buf.size(), pipe) != nullptr) out += buf.data();
  const int rc = pclose(pipe);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r'))
    out.pop_back();
  if (rc != 0 || out.empty()) return "unknown";
  return out;
}

void RunReport::set_config(const std::string& key, Json value) {
  config_[key] = std::move(value);
}

void RunReport::add_sample(const std::string& label, const Samples& samples) {
  Json cell = Json::object();
  cell["label"] = label;
  Json values = Json::array();
  for (const double v : samples.values()) values.push_back(v);
  cell["seconds"] = std::move(values);
  cell["count"] = static_cast<std::int64_t>(samples.count());
  if (samples.count() > 0) {
    cell["median"] = samples.median();
    cell["mean"] = samples.mean();
    cell["min"] = samples.min();
    cell["max"] = samples.max();
    cell["stddev"] = samples.stddev();
    cell["p90"] = samples.percentile(90.0);
  }
  samples_.push_back(std::move(cell));
}

void RunReport::capture_environment() {
  environment_ = Json::object();
  environment_["compiler"] = compiler_string();
  environment_["cxx_standard"] = static_cast<std::int64_t>(__cplusplus);
  environment_["openmp_version"] = static_cast<std::int64_t>(_OPENMP);
  environment_["omp_max_threads"] =
      static_cast<std::int64_t>(omp_get_max_threads());
  environment_["hardware_threads"] =
      static_cast<std::int64_t>(hardware_threads());
  environment_["pointer_bits"] =
      static_cast<std::int64_t>(sizeof(void*) * 8);
  environment_["metrics_enabled"] = kMetricsEnabled;
  environment_["git_describe"] = git_describe();
  environment_["hostname"] = hostname();
  environment_["timestamp_utc"] = iso8601_utc_now();
}

void RunReport::set_metrics_from_registry() {
  metrics_ = Json::object();
  for (const MetricSnapshot& m : Registry::instance().snapshot()) {
    switch (m.kind) {
      case MetricSnapshot::Kind::kCounter:
        metrics_[m.name] = m.value;
        break;
      case MetricSnapshot::Kind::kGauge:
        metrics_[m.name] = m.gauge;
        break;
      case MetricSnapshot::Kind::kHistogram: {
        Json h = Json::object();
        h["count"] = m.hist_count;
        h["sum"] = m.hist_sum;
        h["min"] = m.hist_min;
        h["max"] = m.hist_max;
        Json buckets = Json::array();
        for (const auto& [upper, n] : m.hist_buckets) {
          Json b = Json::object();
          b["le"] = upper;
          b["count"] = n;
          buckets.push_back(std::move(b));
        }
        h["buckets"] = std::move(buckets);
        metrics_[m.name] = std::move(h);
        break;
      }
    }
  }
}

Json RunReport::to_json() const {
  Json root = Json::object();
  root["config"] = config_;
  root["environment"] = environment_;
  root["metrics"] = metrics_;
  root["samples"] = samples_;
  return root;
}

void RunReport::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write run report: " + path);
  out << to_json().dump(1) << '\n';
}

}  // namespace bfc::obs
