#include "obs/flight.hpp"

#include <fcntl.h>
#include <signal.h>  // NOLINT(*-deprecated-headers): sigaction needs the C header
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>

#include "obs/trace.hpp"
#include "util/parallel.hpp"
#include "util/sync.hpp"

namespace bfc::obs {
namespace {

/// Seqlock-stamped slot: a writer bumps `seq` to odd, fills the payload,
/// then bumps to even. A reader that sees an odd or changed seq discards
/// the slot instead of returning torn data.
struct Slot {
  std::atomic<std::uint64_t> seq{0};
  FlightEvent ev;
};

Slot g_ring[FlightRecorder::kCapacity];
std::atomic<std::uint64_t> g_head{0};  // next logical index to write

Mutex& path_mu() {
  static Mutex mu{"obs.flight"};
  return mu;
}
std::string& path_storage() BFC_REQUIRES(path_mu()) {
  static std::string path;
  return path;
}

void copy_truncated(char* dst, std::size_t cap, const char* src) noexcept {
  std::size_t i = 0;
  for (; src != nullptr && src[i] != '\0' && i + 1 < cap; ++i) dst[i] = src[i];
  dst[i] = '\0';
}

/// JSON string escape into a bounded buffer (fd-based dump path — no
/// std::string allocation in fault contexts).
void append_escaped(char* buf, std::size_t cap, std::size_t& off,
                    const char* s) noexcept {
  for (std::size_t i = 0; s[i] != '\0' && off + 2 < cap; ++i) {
    const char c = s[i];
    if (c == '"' || c == '\\') buf[off++] = '\\';
    // Control characters never appear (kinds/details are literals), but
    // keep the output valid JSON if one sneaks in.
    buf[off++] = (static_cast<unsigned char>(c) < 0x20) ? '?' : c;
  }
}

bool write_all(int fd, const char* data, std::size_t len) noexcept {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, data + off, len - off);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::atomic<bool> g_signal_dump_installed{false};

void flight_fatal_handler(int signum) {
  // Async-signal-unsafe only in the strictest sense (snapshot allocates);
  // the process is dying anyway, so a best-effort dump beats nothing.
  FlightRecorder::dump_on_fault(signum == SIGSEGV   ? "SIGSEGV"
                                : signum == SIGBUS  ? "SIGBUS"
                                : signum == SIGABRT ? "SIGABRT"
                                                    : "signal");
  signal(signum, SIG_DFL);
  raise(signum);
}

}  // namespace

void FlightRecorder::record(const char* kind, const char* detail,
                            std::int64_t a, std::int64_t b,
                            std::uint64_t trace_id) noexcept {
  if constexpr (!kMetricsEnabled) {
    (void)kind, (void)detail, (void)a, (void)b, (void)trace_id;
    return;
  }
  const std::uint64_t idx = g_head.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = g_ring[idx % kCapacity];
  // Odd = in flight. Lap count in the high bits keeps seq unique per write
  // so a reader can detect being overtaken mid-copy.
  slot.seq.store(2 * idx + 1, std::memory_order_release);
  slot.ev.ts_us = Tracer::now_us();
  slot.ev.trace_id = trace_id;
  slot.ev.a = a;
  slot.ev.b = b;
  slot.ev.tid = bfc::thread_id();
  copy_truncated(slot.ev.kind, sizeof(slot.ev.kind), kind);
  copy_truncated(slot.ev.detail, sizeof(slot.ev.detail), detail);
  slot.seq.store(2 * idx + 2, std::memory_order_release);
}

std::vector<FlightEvent> FlightRecorder::snapshot() {
  std::vector<FlightEvent> out;
  if constexpr (!kMetricsEnabled) return out;
  const std::uint64_t head = g_head.load(std::memory_order_acquire);
  const std::uint64_t count = head < kCapacity ? head : kCapacity;
  out.reserve(count);
  for (std::uint64_t logical = head - count; logical < head; ++logical) {
    Slot& slot = g_ring[logical % kCapacity];
    const std::uint64_t before = slot.seq.load(std::memory_order_acquire);
    if (before != 2 * logical + 2) continue;  // torn or already overwritten
    FlightEvent ev = slot.ev;
    if (slot.seq.load(std::memory_order_acquire) != before) continue;
    out.push_back(ev);
  }
  return out;
}

std::int64_t FlightRecorder::recorded() noexcept {
  return static_cast<std::int64_t>(g_head.load(std::memory_order_relaxed));
}

void FlightRecorder::clear() noexcept {
  for (Slot& slot : g_ring) slot.seq.store(0, std::memory_order_relaxed);
  g_head.store(0, std::memory_order_release);
}

void FlightRecorder::set_dump_path(const std::string& path) {
  const MutexLock lock(path_mu());
  path_storage() = path;
}

std::string FlightRecorder::dump_path() {
  const MutexLock lock(path_mu());
  return path_storage();
}

bool FlightRecorder::dump(const std::string& path, const char* why) noexcept {
  const std::vector<FlightEvent> events = snapshot();
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  bool ok = true;
  char buf[512];
  std::size_t off = 0;
  off = static_cast<std::size_t>(
      std::snprintf(buf, sizeof(buf), "{\"reason\": \""));
  append_escaped(buf, sizeof(buf), off, why);
  off += static_cast<std::size_t>(std::snprintf(
      buf + off, sizeof(buf) - off, "\", \"recorded\": %lld, \"events\": [",
      static_cast<long long>(recorded())));
  ok = ok && write_all(fd, buf, off);
  for (std::size_t i = 0; ok && i < events.size(); ++i) {
    const FlightEvent& ev = events[i];
    off = static_cast<std::size_t>(std::snprintf(
        buf, sizeof(buf),
        "%s\n  {\"ts_us\": %lld, \"tid\": %d, \"trace\": %llu, \"kind\": \"",
        i == 0 ? "" : ",", static_cast<long long>(ev.ts_us), ev.tid,
        static_cast<unsigned long long>(ev.trace_id)));
    append_escaped(buf, sizeof(buf), off, ev.kind);
    off += static_cast<std::size_t>(
        std::snprintf(buf + off, sizeof(buf) - off, "\", \"detail\": \""));
    append_escaped(buf, sizeof(buf), off, ev.detail);
    off += static_cast<std::size_t>(std::snprintf(
        buf + off, sizeof(buf) - off, "\", \"a\": %lld, \"b\": %lld}",
        static_cast<long long>(ev.a), static_cast<long long>(ev.b)));
    ok = ok && write_all(fd, buf, off);
  }
  ok = ok && write_all(fd, "\n]}\n", 4);
  ::close(fd);
  return ok;
}

void FlightRecorder::dump_on_fault(const char* why) noexcept {
  // Best effort all the way down: this runs while a CheckError is being
  // constructed or a fatal signal is in flight, so nothing here may throw
  // (checked-build lock hooks can) or mask the original failure.
  try {
    std::string path;
    {
      const MutexLock lock(path_mu());
      path = path_storage();
    }
    if (!path.empty()) (void)dump(path, why);
  } catch (...) {  // NOLINT(bugprone-empty-catch)
  }
}

void FlightRecorder::install_signal_dump() {
  bool expected = false;
  if (!g_signal_dump_installed.compare_exchange_strong(
          expected, true, std::memory_order_acq_rel))
    return;
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = flight_fatal_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESETHAND;
  sigaction(SIGSEGV, &sa, nullptr);
  sigaction(SIGBUS, &sa, nullptr);
  sigaction(SIGABRT, &sa, nullptr);
}

}  // namespace bfc::obs
