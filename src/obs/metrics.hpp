// Low-overhead metrics for the counting stack: named Counter / Gauge /
// Histogram instruments behind a process-wide Registry.
//
// Counters are sharded per thread (cache-line-aligned slots indexed by the
// OpenMP thread id) so hot parallel kernels never contend on one atomic;
// value() sums the shards at snapshot time. The kernel-side hooks are the
// BFC_COUNT_ADD / BFC_GAUGE_SET / BFC_HIST_OBSERVE macros below, which bind
// the registry entry once (function-local static) and compile to nothing
// when the BFC_METRICS CMake option is OFF — together with
// `if constexpr (obs::kMetricsEnabled)` around any bookkeeping arithmetic,
// a disabled build carries zero instrumentation cost.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/sync.hpp"

namespace bfc::obs {

#if defined(BFC_METRICS_ENABLED) && BFC_METRICS_ENABLED
inline constexpr bool kMetricsEnabled = true;
#else
inline constexpr bool kMetricsEnabled = false;
#endif

/// Monotonic sum, sharded to keep OpenMP regions contention-free. Relaxed
/// atomics make the (rare) shard collision between two threads safe without
/// ordering cost; totals are exact because adds are never lost.
class Counter {
 public:
  static constexpr std::size_t kShards = 64;  // power of two

  void add(std::int64_t n) noexcept {
    shards_[shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  void increment() noexcept { add(1); }

  [[nodiscard]] std::int64_t value() const noexcept {
    std::int64_t total = 0;
    for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

  void reset() noexcept {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::int64_t> v{0};
  };
  [[nodiscard]] static std::size_t shard_index() noexcept;
  std::array<Shard, kShards> shards_{};
};

/// Last-write-wins scalar (parse seconds, configured block size, ...).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Exponential (base-2) histogram of non-negative integer observations:
/// bucket i counts values whose bit width is i, i.e. [2^(i-1), 2^i), with
/// 0 (and any negative input) clamped into bucket 0. Used for distribution
/// shapes — per-thread work items, line degrees — where exact quantiles
/// are not worth per-sample cost.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void observe(std::int64_t v) noexcept;

  [[nodiscard]] std::int64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t min() const noexcept;  // 0 when empty
  [[nodiscard]] std::int64_t max() const noexcept;  // 0 when empty
  [[nodiscard]] std::int64_t bucket_count(int i) const noexcept {
    return buckets_[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
  }
  /// Inclusive upper bound of bucket i (0, 1, 3, 7, 15, ...).
  [[nodiscard]] static std::int64_t bucket_upper(int i) noexcept;

  void reset() noexcept;

 private:
  std::array<std::atomic<std::int64_t>, kBuckets> buckets_{};
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
  // Sentinels while empty; min()/max() report 0 for an empty histogram.
  std::atomic<std::int64_t> min_{std::numeric_limits<std::int64_t>::max()};
  std::atomic<std::int64_t> max_{std::numeric_limits<std::int64_t>::min()};
};

/// Snapshot row for reporting (RunReport serialization, --stats tables).
struct MetricSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  std::int64_t value = 0;  // counter total
  double gauge = 0.0;
  std::int64_t hist_count = 0;
  std::int64_t hist_sum = 0;
  std::int64_t hist_min = 0;
  std::int64_t hist_max = 0;
  /// (inclusive upper bound, count) for non-empty buckets only.
  std::vector<std::pair<std::int64_t, std::int64_t>> hist_buckets;
};

/// Process-wide instrument registry. Lookup is guarded by a reader/writer
/// lock and intended to happen once per call site (the macros below cache
/// the reference in a function-local static); the instruments themselves
/// are lock-free. Registration (possible map mutation) takes the writer
/// side; snapshot()/reset() only read the maps — the instruments they touch
/// are atomics — so they share the reader side and can overlap each other.
class Registry {
 public:
  static Registry& instance();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// All instruments in name order (counters, gauges, histograms merged).
  [[nodiscard]] std::vector<MetricSnapshot> snapshot() const;

  /// Zeroes every instrument (tests, repeated bench cells). Instrument
  /// references stay valid.
  void reset();

 private:
  Registry() = default;
  mutable SharedMutex mu_{"obs.registry"};
  std::map<std::string, std::unique_ptr<Counter>> counters_ BFC_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ BFC_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      BFC_GUARDED_BY(mu_);
};

}  // namespace bfc::obs

// Hot-path hooks. The name must be a stable string literal: the registry
// reference is resolved once per call site and cached.
#if defined(BFC_METRICS_ENABLED) && BFC_METRICS_ENABLED
#define BFC_COUNT_ADD(name, n)                                       \
  do {                                                               \
    static ::bfc::obs::Counter& bfc_obs_counter_ =                   \
        ::bfc::obs::Registry::instance().counter(name);              \
    bfc_obs_counter_.add(static_cast<std::int64_t>(n));              \
  } while (0)
#define BFC_GAUGE_SET(name, v)                                       \
  do {                                                               \
    static ::bfc::obs::Gauge& bfc_obs_gauge_ =                       \
        ::bfc::obs::Registry::instance().gauge(name);                \
    bfc_obs_gauge_.set(static_cast<double>(v));                      \
  } while (0)
#define BFC_HIST_OBSERVE(name, v)                                    \
  do {                                                               \
    static ::bfc::obs::Histogram& bfc_obs_hist_ =                    \
        ::bfc::obs::Registry::instance().histogram(name);            \
    bfc_obs_hist_.observe(static_cast<std::int64_t>(v));             \
  } while (0)
#else
#define BFC_COUNT_ADD(name, n) static_cast<void>(0)
#define BFC_GAUGE_SET(name, v) static_cast<void>(0)
#define BFC_HIST_OBSERVE(name, v) static_cast<void>(0)
#endif
