// Request-scoped tracing for the serving stack. Where obs/trace.hpp records
// flat phase timings (one chrome://tracing bar per scope), this layer records
// a *causal tree*: every span carries a trace id shared by everything one
// svc::Request touched, its own span id, and the span id of its parent, plus
// string tags for the decisions made inside it (cache hit/miss, degrade rung,
// shed/cancelled outcome, fidelity of the answer). A query's life —
// admission, queue wait, coalesced kernel pass, degradation — reconstructs
// as one tree no matter how many threads it crossed.
//
// Collection is runtime-gated exactly like the Tracer: a disabled SpanLog
// costs one predictable branch per Span construction, and under
// BFC_METRICS=OFF enabled() is constant-false so the whole plumbing folds
// away. Storage is sharded by recording thread (span close is on the
// serving hot path; a single log mutex would serialise every reader), each
// shard a bounded ring that overwrites its oldest span past capacity, so a
// long-running service cannot grow the log without bound.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace bfc::obs {

/// The identity a request carries through the service: which trace it
/// belongs to and which span is the current parent. Copied by value into
/// queue tasks and kernel lambdas; 16 bytes, trivially copyable.
struct TraceContext {
  std::uint64_t trace_id = 0;  // 0 = not part of any trace
  std::uint64_t span_id = 0;   // parent for spans opened under this context

  [[nodiscard]] bool active() const noexcept { return trace_id != 0; }

  /// Fresh root context with a process-unique nonzero trace id. The span id
  /// starts at 0: the first Span opened under it becomes the root span.
  [[nodiscard]] static TraceContext root() noexcept;
};

/// One key/value tag. Spans close on the serving hot path, so tags are
/// plain inline storage: the key must be a string literal (or otherwise
/// outlive the log) and the value is copied, truncated past 15 characters.
struct SpanTag {
  const char* key = nullptr;
  std::array<char, 16> value{};  // NUL-terminated copy
};

/// One completed span as stored in the log. Fixed-size and deliberately
/// small — no heap allocation happens anywhere between Span construction
/// and the record landing in its shard, and the record spans few cache
/// lines (recording streams through a large ring, so every byte of the
/// record is a cold write) — so tracing every query stays cheap enough to
/// leave on under load. The serving spans use at most 4 tags.
struct SpanRecord {
  static constexpr std::size_t kMaxTags = 5;

  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;  // 0 = root span of its trace
  std::string_view name;        // literal; must outlive the log
  std::int64_t ts_us = 0;   // start, microseconds on the Tracer's clock
  std::int64_t dur_us = 0;  // duration in microseconds
  int tid = 0;              // OpenMP thread id where the span closed
  std::uint64_t seq = 0;    // process-wide completion order, set by record()
  std::array<SpanTag, kMaxTags> tags{};
  std::uint8_t tag_count = 0;

  /// Appends a tag; silently dropped past kMaxTags, value truncated to fit.
  void add_tag(const char* key, std::string_view value) noexcept;

  /// First value recorded under `key`, or "" when the tag is absent.
  [[nodiscard]] std::string_view tag(std::string_view key) const noexcept;
};

/// Process-wide bounded log of completed spans. All members are static: the
/// span tree is a property of the process, like the Tracer's event list.
class SpanLog {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 13;

  [[nodiscard]] static bool enabled() noexcept {
    if constexpr (!kMetricsEnabled) return false;
    return enabled_flag().load(std::memory_order_relaxed);
  }
  static void set_enabled(bool on) noexcept {
    enabled_flag().store(on, std::memory_order_relaxed);
  }

  /// Head-based sampling: only 1 in `n` requests is rooted (and therefore
  /// traced — an unrooted request's spans are all inert). Default 1 =
  /// trace everything; production loads wanting negligible overhead pick a
  /// larger period. Applied where root contexts are minted, not per span,
  /// so a sampled request always yields its complete tree.
  static void set_sample_period(std::uint64_t n) noexcept;
  [[nodiscard]] static std::uint64_t sample_period() noexcept;

  /// True for 1 of every sample_period() calls (thread-local stride, so
  /// concurrent readers each sample at the configured rate).
  [[nodiscard]] static bool sample() noexcept;

  /// Caps the number of retained spans per thread shard (>= 1); excess
  /// drops the oldest within each shard.
  static void set_capacity(std::size_t capacity);

  /// Appends one completed span, dropping its shard's oldest past capacity.
  static void record(SpanRecord rec);

  /// Snapshot in completion order (oldest first), merged across shards.
  [[nodiscard]] static std::vector<SpanRecord> snapshot();

  /// Spans discarded because the log was at capacity.
  [[nodiscard]] static std::int64_t dropped();

  static void clear();

  /// Process-unique nonzero id for spans and traces.
  [[nodiscard]] static std::uint64_t next_id() noexcept;

  /// Serializes the log as {"spans": [...], "dropped": n}; each span is
  /// {trace, span, parent, name, ts_us, dur_us, tid, tags{...}}. Throws
  /// std::runtime_error if the file cannot be written.
  static void write_json(const std::string& path);

 private:
  static std::atomic<bool>& enabled_flag() noexcept;
};

/// RAII span. Inert (zero allocation, no record) unless the log is enabled
/// AND the parent context is active — a request that was never rooted stays
/// invisible no matter how deep its call tree goes. close() stamps the
/// duration and records early; the destructor closes if nobody did.
class Span {
 public:
  /// `name` must be a string literal (or otherwise outlive the log).
  Span(const TraceContext& parent, std::string_view name);
  ~Span() { close(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  [[nodiscard]] bool armed() const noexcept { return armed_; }

  /// Context for child spans / cross-thread continuations.
  [[nodiscard]] TraceContext context() const noexcept {
    return TraceContext{rec_.trace_id, rec_.span_id};
  }

  /// Attaches a key/value tag; no-op on an inert or closed span. The key
  /// must be a literal; the value is copied (truncated past 15 chars).
  void tag(const char* key, std::string_view value);

  /// Stamps the duration and records the span; idempotent.
  void close();

 private:
  SpanRecord rec_;
  bool armed_ = false;
};

}  // namespace bfc::obs
