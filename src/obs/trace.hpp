// Scoped phase tracing that emits chrome://tracing / Perfetto-compatible
// trace-event JSON (one "X" complete event per recorded span, one track per
// OpenMP thread via the tid field).
//
// Collection is runtime-gated: nothing is recorded until Tracer::set_enabled
// (the bench harness flips it when --trace is passed), so a ScopedTrace in a
// kernel costs one relaxed load when tracing is off. Spans are coarse by
// design — phases, dataset cells, one span per thread per parallel region —
// not per-wedge events.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace bfc::obs {

struct TraceEvent {
  std::string name;
  std::int64_t ts_us = 0;   // start, microseconds since process trace epoch
  std::int64_t dur_us = 0;  // duration in microseconds
  int tid = 0;              // OpenMP thread id at record time
};

class Tracer {
 public:
  [[nodiscard]] static bool enabled() noexcept {
    return enabled_flag().load(std::memory_order_relaxed);
  }
  static void set_enabled(bool on) noexcept {
    enabled_flag().store(on, std::memory_order_relaxed);
  }

  /// Microseconds on the steady clock since the process trace epoch.
  [[nodiscard]] static std::int64_t now_us();

  /// Appends one complete span (thread id is captured here).
  static void record(std::string name, std::int64_t ts_us,
                     std::int64_t dur_us);

  [[nodiscard]] static std::vector<TraceEvent> events();
  static void clear();

  /// Serializes all recorded spans as {"traceEvents": [...]} to `path`;
  /// throws std::runtime_error if the file cannot be written.
  static void write_chrome_json(const std::string& path);

 private:
  static std::atomic<bool>& enabled_flag() noexcept;
};

/// RAII span: records [construction, destruction) when tracing is enabled.
class ScopedTrace {
 public:
  explicit ScopedTrace(std::string name)
      : name_(std::move(name)),
        start_us_(Tracer::enabled() ? Tracer::now_us() : -1) {}

  ~ScopedTrace() {
    if (start_us_ >= 0)
      Tracer::record(std::move(name_), start_us_,
                     Tracer::now_us() - start_us_);
  }

  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  std::string name_;
  std::int64_t start_us_;
};

}  // namespace bfc::obs

#define BFC_TRACE_CONCAT_IMPL(a, b) a##b
#define BFC_TRACE_CONCAT(a, b) BFC_TRACE_CONCAT_IMPL(a, b)
/// Traces the enclosing scope under `name` (any std::string expression).
#define BFC_TRACE_SCOPE(name) \
  ::bfc::obs::ScopedTrace BFC_TRACE_CONCAT(bfc_trace_scope_, __LINE__)(name)
