// Always-on sampling profiler: a SIGPROF timer (ITIMER_PROF, i.e. process
// CPU time) fires at a configurable rate; the signal handler captures the
// interrupted thread's call stack into that thread's own lock-free ring, so
// sampling is safe no matter where the signal lands — inside an OpenMP
// region, a pool worker, or the writer. Nothing in the handler allocates,
// locks, or touches shared mutable state beyond relaxed/release atomics on
// the per-thread ring.
//
// Collection produces *folded stacks* ("frameA;frameB;frameC 42", root
// first), the input format of Brendan Gregg's flamegraph.pl and of every
// modern flame-graph viewer (speedscope, firefox profiler). Symbolization
// happens at fold time via dladdr — link the binary with -rdynamic (the
// build does this for the bench binaries) so static-library kernels resolve
// to names instead of raw addresses.
//
// The profiler is compiled in every build; start() is the only cost gate.
// With BFC_METRICS=ON the sample totals are mirrored into the registry as
// obs.profiler.samples / obs.profiler.dropped.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace bfc::obs {

class Profiler {
 public:
  static constexpr int kMaxFrames = 24;

  /// Starts sampling at `hz` samples per second of process CPU time
  /// (1..1000). Clears previously collected samples. Returns false when a
  /// profile is already running or the timer cannot be armed.
  static bool start(int hz);

  /// Disarms the timer and restores the previous SIGPROF disposition.
  /// Collected samples stay available until the next start() or clear().
  static void stop();

  [[nodiscard]] static bool running() noexcept;

  /// Stacks captured / discarded (ring full or more threads than slots).
  [[nodiscard]] static std::int64_t samples_captured();
  [[nodiscard]] static std::int64_t samples_dropped();

  /// Aggregates the captured stacks: "root;...;leaf" -> sample count.
  [[nodiscard]] static std::map<std::string, std::int64_t> folded();

  /// Writes folded() one "stack count" line at a time (flamegraph.pl
  /// input); throws std::runtime_error on I/O failure.
  static void write_folded(const std::string& path);

  static void clear();
};

}  // namespace bfc::obs
