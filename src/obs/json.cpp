#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace bfc::obs {
namespace {

[[noreturn]] void type_error(const char* what) {
  throw std::runtime_error(std::string("Json: value is not ") + what);
}

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char ch : s) {
    const auto c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

void append_double(std::string& out, double d) {
  if (!std::isfinite(d)) {  // JSON has no Inf/NaN; emit null like most tools
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  out += buf;
}

/// Strict single-pass parser over the whole document.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw std::runtime_error("Json::parse: " + msg + " at byte " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Json parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Json(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Json(nullptr);
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json::Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[std::move(key)] = parse_value();
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' in object");
    }
    return Json(std::move(obj));
  }

  Json parse_array() {
    expect('[');
    Json::Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']' in array");
    }
    return Json(std::move(arr));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          // Encode as UTF-8; surrogate pairs are not needed by anything we
          // emit, so a lone surrogate is rejected rather than mangled.
          if (code >= 0xD800 && code <= 0xDFFF) fail("surrogates unsupported");
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
    return out;
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    bool is_double = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string tok = text_.substr(start, pos_ - start);
    if (tok.empty() || tok == "-") fail("bad number");
    try {
      if (!is_double) return Json(static_cast<std::int64_t>(std::stoll(tok)));
      return Json(std::stod(tok));
    } catch (const std::exception&) {
      // Integer overflow (or other stoll failure): fall back to double.
      try {
        return Json(std::stod(tok));
      } catch (const std::exception&) {
        fail("unparseable number '" + tok + "'");
      }
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json& Json::operator[](const std::string& key) {
  if (is_null()) value_ = Object{};
  if (!is_object()) type_error("an object");
  return std::get<Object>(value_)[key];
}

const Json& Json::at(const std::string& key) const {
  if (!is_object()) type_error("an object");
  const auto& obj = std::get<Object>(value_);
  const auto it = obj.find(key);
  if (it == obj.end())
    throw std::runtime_error("Json: missing key '" + key + "'");
  return it->second;
}

const Json& Json::at(std::size_t index) const {
  if (!is_array()) type_error("an array");
  const auto& arr = std::get<Array>(value_);
  if (index >= arr.size()) throw std::runtime_error("Json: index out of range");
  return arr[index];
}

bool Json::has(const std::string& key) const {
  return is_object() && std::get<Object>(value_).contains(key);
}

std::size_t Json::size() const {
  if (is_array()) return std::get<Array>(value_).size();
  if (is_object()) return std::get<Object>(value_).size();
  return 0;
}

void Json::push_back(Json v) {
  if (is_null()) value_ = Array{};
  if (!is_array()) type_error("an array");
  std::get<Array>(value_).push_back(std::move(v));
}

bool Json::as_bool() const {
  if (!is_bool()) type_error("a bool");
  return std::get<bool>(value_);
}

std::int64_t Json::as_int() const {
  if (is_int()) return std::get<std::int64_t>(value_);
  type_error("an integer");
}

double Json::as_double() const {
  if (is_int()) return static_cast<double>(std::get<std::int64_t>(value_));
  if (is_double()) return std::get<double>(value_);
  type_error("a number");
}

const std::string& Json::as_string() const {
  if (!is_string()) type_error("a string");
  return std::get<std::string>(value_);
}

const Json::Array& Json::as_array() const {
  if (!is_array()) type_error("an array");
  return std::get<Array>(value_);
}

const Json::Object& Json::as_object() const {
  if (!is_object()) type_error("an object");
  return std::get<Object>(value_);
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const auto newline_indent = [&](int d) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };

  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += std::get<bool>(value_) ? "true" : "false";
  } else if (is_int()) {
    out += std::to_string(std::get<std::int64_t>(value_));
  } else if (is_double()) {
    append_double(out, std::get<double>(value_));
  } else if (is_string()) {
    append_escaped(out, std::get<std::string>(value_));
  } else if (is_array()) {
    const auto& arr = std::get<Array>(value_);
    if (arr.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    bool first = true;
    for (const Json& v : arr) {
      if (!first) out += ',';
      first = false;
      newline_indent(depth + 1);
      v.dump_to(out, indent, depth + 1);
    }
    newline_indent(depth);
    out += ']';
  } else {
    const auto& obj = std::get<Object>(value_);
    if (obj.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    bool first = true;
    for (const auto& [k, v] : obj) {
      if (!first) out += ',';
      first = false;
      newline_indent(depth + 1);
      append_escaped(out, k);
      out += indent > 0 ? ": " : ":";
      v.dump_to(out, indent, depth + 1);
    }
    newline_indent(depth);
    out += '}';
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace bfc::obs
