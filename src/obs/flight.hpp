// Flight recorder: a fixed-size lock-free ring of recent serving events
// (admissions, sheds, degradations, publishes, persist attempts, check
// failures) that is dumped to JSON when something goes wrong — a CheckError,
// a persist failure, or a fatal signal. The point is post-mortem context:
// the last ~1k decisions the service made before the fault, with timestamps
// and the trace ids of the requests involved, without paying for a full
// trace of every healthy request.
//
// record() is wait-free (one fetch_add plus plain stores into the claimed
// slot, seqlock-stamped so readers detect torn slots) and never allocates,
// so it is safe on every hot path and from failure contexts. Under
// BFC_METRICS=OFF record() compiles to nothing, matching the rest of obs/.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace bfc::obs {

/// One recorded event. `kind` and `detail` are short fixed-size strings
/// (truncated on record) so slots stay POD and the ring never allocates.
struct FlightEvent {
  std::int64_t ts_us = 0;        // Tracer clock, µs since process start
  std::uint64_t trace_id = 0;    // owning request's trace, 0 = none
  std::int64_t a = 0, b = 0;     // kind-specific payload (epoch, depth, ...)
  int tid = 0;                   // OpenMP thread id at record time
  char kind[16] = {0};           // "shed", "degrade", "publish", ...
  char detail[48] = {0};         // free-form qualifier ("stale_memo", ...)
};

class FlightRecorder {
 public:
  static constexpr std::size_t kCapacity = 1024;  // power of two

  /// Appends one event; oldest events are overwritten once the ring is
  /// full. Wait-free, never throws, never allocates.
  static void record(const char* kind, const char* detail = "",
                     std::int64_t a = 0, std::int64_t b = 0,
                     std::uint64_t trace_id = 0) noexcept;

  /// Events still in the ring, oldest first. Slots being overwritten
  /// concurrently are skipped rather than returned torn.
  [[nodiscard]] static std::vector<FlightEvent> snapshot();

  /// Total events ever recorded (snapshot().size() once past capacity).
  [[nodiscard]] static std::int64_t recorded() noexcept;

  static void clear() noexcept;

  /// Arms automatic dumping: dump_on_fault() writes the ring to `path`.
  /// An empty path disarms. The chk layer and the persist path call
  /// dump_on_fault() on failure; bench/serving arms it via --flight-out.
  static void set_dump_path(const std::string& path);
  [[nodiscard]] static std::string dump_path();

  /// Writes {"events": [...], "recorded": n, "reason": why} to `path`.
  /// Returns false instead of throwing on I/O failure — callers are
  /// failure paths that must not mask the original error.
  static bool dump(const std::string& path,
                   const char* why = "manual") noexcept;

  /// Best-effort auto-dump to the configured path (no-op when disarmed).
  /// Safe to call while the original exception is in flight.
  static void dump_on_fault(const char* why) noexcept;

  /// Installs SIGSEGV/SIGABRT/SIGBUS handlers that dump_on_fault() and
  /// then re-raise with the default disposition. Idempotent.
  static void install_signal_dump();
};

}  // namespace bfc::obs
