#include "obs/spans.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "util/parallel.hpp"
#include "util/sync.hpp"

namespace bfc::obs {
namespace {

// Span close sits on the serving hot path (one record per query, from
// every reader thread at once), so storage is sharded: each recording
// thread is pinned to one of kShards bounded rings with its own mutex.
// A process-wide sequence number stamped at record() restores global
// completion order when shards are merged at snapshot().
constexpr std::size_t kShards = 16;

// Mutex and guarded state in one struct so TSA can relate them through the
// single reference store() returns (same idiom as obs/trace.cpp).
struct SpanShard {
  Mutex mu{"obs.spans"};
  std::vector<SpanRecord> ring BFC_GUARDED_BY(mu);  // at most capacity slots
  std::size_t head BFC_GUARDED_BY(mu) = 0;          // oldest slot when full
  std::int64_t dropped BFC_GUARDED_BY(mu) = 0;
};

struct SpanStore {
  std::array<SpanShard, kShards> shards;
  // Read on the record() fast path without any shard lock held.
  std::atomic<std::size_t> capacity{SpanLog::kDefaultCapacity};
  std::atomic<std::uint64_t> seq{0};
};

SpanStore& store() {
  static SpanStore s;
  return s;
}

// Threads are spread round-robin over the shards; the assignment is sticky
// so a thread's spans stay in one ring (per-shard drop-oldest then matches
// per-thread recording order).
std::size_t shard_index() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t idx =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return idx;
}

}  // namespace

void SpanRecord::add_tag(const char* key, std::string_view value) noexcept {
  if (tag_count >= kMaxTags) return;
  SpanTag& t = tags[tag_count++];
  t.key = key;
  const std::size_t n = std::min(value.size(), t.value.size() - 1);
  std::memcpy(t.value.data(), value.data(), n);
  t.value[n] = '\0';
}

std::string_view SpanRecord::tag(std::string_view key) const noexcept {
  for (std::size_t i = 0; i < tag_count; ++i)
    if (tags[i].key == key) return {tags[i].value.data()};
  return {};
}

std::atomic<bool>& SpanLog::enabled_flag() noexcept {
  static std::atomic<bool> flag{false};
  return flag;
}

namespace {
std::atomic<std::uint64_t>& sample_period_flag() noexcept {
  static std::atomic<std::uint64_t> period{1};
  return period;
}
}  // namespace

void SpanLog::set_sample_period(std::uint64_t n) noexcept {
  sample_period_flag().store(n == 0 ? 1 : n, std::memory_order_relaxed);
}

std::uint64_t SpanLog::sample_period() noexcept {
  return sample_period_flag().load(std::memory_order_relaxed);
}

bool SpanLog::sample() noexcept {
  const std::uint64_t period = sample_period();
  if (period <= 1) return true;
  thread_local std::uint64_t tick = 0;
  return tick++ % period == 0;
}

std::uint64_t SpanLog::next_id() noexcept {
  // Ids are identities, not an ordering, so each thread draws blocks of
  // 1024 from the shared counter instead of contending on it per span
  // (every query mints a trace id plus 1-3 span ids).
  constexpr std::uint64_t kBlock = 1024;
  static std::atomic<std::uint64_t> next{1};
  thread_local std::uint64_t cursor = 0;
  thread_local std::uint64_t end = 0;
  if (cursor == end) {
    cursor = next.fetch_add(kBlock, std::memory_order_relaxed);
    end = cursor + kBlock;
  }
  return cursor++;
}

TraceContext TraceContext::root() noexcept {
  return TraceContext{SpanLog::next_id(), 0};
}

void SpanLog::set_capacity(std::size_t capacity) {
  SpanStore& s = store();
  const std::size_t cap = capacity == 0 ? 1 : capacity;
  s.capacity.store(cap, std::memory_order_relaxed);
  for (SpanShard& sh : s.shards) {
    const MutexLock lock(sh.mu);
    if (sh.ring.size() <= cap) continue;
    const std::size_t n = sh.ring.size();
    const std::size_t drop = n - cap;
    std::vector<SpanRecord> keep;
    keep.reserve(cap);
    for (std::size_t i = 0; i < cap; ++i)
      keep.push_back(std::move(sh.ring[(sh.head + drop + i) % n]));
    sh.ring = std::move(keep);
    sh.head = 0;
    sh.dropped += static_cast<std::int64_t>(drop);
  }
}

void SpanLog::record(SpanRecord rec) {
  SpanStore& s = store();
  rec.seq = s.seq.fetch_add(1, std::memory_order_relaxed);
  const std::size_t cap = s.capacity.load(std::memory_order_relaxed);
  SpanShard& sh = s.shards[shard_index()];
  const MutexLock lock(sh.mu);
  if (sh.ring.size() < cap) {
    sh.ring.push_back(std::move(rec));
  } else {
    sh.ring[sh.head] = std::move(rec);
    sh.head = (sh.head + 1) % sh.ring.size();
    ++sh.dropped;
  }
}

std::vector<SpanRecord> SpanLog::snapshot() {
  SpanStore& s = store();
  std::vector<SpanRecord> out;
  for (SpanShard& sh : s.shards) {
    const MutexLock lock(sh.mu);
    const std::size_t n = sh.ring.size();
    out.reserve(out.size() + n);
    for (std::size_t i = 0; i < n; ++i)
      out.push_back(sh.ring[(sh.head + i) % n]);
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.seq < b.seq;
            });
  return out;
}

std::int64_t SpanLog::dropped() {
  SpanStore& s = store();
  std::int64_t total = 0;
  for (SpanShard& sh : s.shards) {
    const MutexLock lock(sh.mu);
    total += sh.dropped;
  }
  return total;
}

void SpanLog::clear() {
  SpanStore& s = store();
  for (SpanShard& sh : s.shards) {
    const MutexLock lock(sh.mu);
    sh.ring.clear();
    sh.head = 0;
    sh.dropped = 0;
  }
}

void SpanLog::write_json(const std::string& path) {
  Json root = Json::object();
  Json& list = root["spans"];
  list = Json::array();
  for (const SpanRecord& rec : snapshot()) {
    Json e = Json::object();
    e["trace"] = rec.trace_id;
    e["span"] = rec.span_id;
    e["parent"] = rec.parent_id;
    e["name"] = std::string(rec.name);
    e["ts_us"] = rec.ts_us;
    e["dur_us"] = rec.dur_us;
    e["tid"] = rec.tid;
    Json tags = Json::object();
    for (std::size_t i = 0; i < rec.tag_count; ++i)
      tags[rec.tags[i].key] = std::string(rec.tags[i].value.data());
    e["tags"] = std::move(tags);
    list.push_back(std::move(e));
  }
  root["dropped"] = dropped();

  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write span log: " + path);
  out << root.dump(1) << '\n';
}

Span::Span(const TraceContext& parent, std::string_view name) {
  if (!SpanLog::enabled() || !parent.active()) return;
  armed_ = true;
  rec_.trace_id = parent.trace_id;
  rec_.parent_id = parent.span_id;
  rec_.span_id = SpanLog::next_id();
  rec_.name = name;
  rec_.ts_us = Tracer::now_us();
}

void Span::tag(const char* key, std::string_view value) {
  if (!armed_) return;
  rec_.add_tag(key, value);
}

void Span::close() {
  if (!armed_) return;
  armed_ = false;
  rec_.dur_us = Tracer::now_us() - rec_.ts_us;
  rec_.tid = thread_id();
  // Mirror into the flat tracer so request spans also land on the
  // chrome://tracing timeline when --trace is active.
  if (Tracer::enabled())
    Tracer::record(std::string(rec_.name), rec_.ts_us, rec_.dur_us);
  SpanLog::record(std::move(rec_));
}

}  // namespace bfc::obs
