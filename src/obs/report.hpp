// Machine-readable run reports: config + environment capture + metric
// snapshots + raw timing samples, serialized as one JSON document with the
// stable top-level keys {config, environment, metrics, samples}. Every
// bench binary writes one of these behind --json <path>; later perf PRs
// diff the kernel counters and sample arrays instead of eyeballing tables.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "util/timer.hpp"

namespace bfc::obs {

class RunReport {
 public:
  /// Config entries land under "config" (flag values, program name, ...).
  void set_config(const std::string& key, Json value);

  /// Records a named timing cell with every repetition's seconds, so
  /// nothing about the distribution is discarded. Summary stats (median,
  /// mean, stddev, p90) are precomputed into the JSON for easy diffing.
  void add_sample(const std::string& label, const Samples& samples);

  /// Captures compiler, OpenMP limits, git describe, timestamp, hostname
  /// and whether kernel metrics were compiled in. Idempotent (re-captures).
  void capture_environment();

  /// Copies the current Registry snapshot into the report's "metrics"
  /// object (counters as integers, gauges as doubles, histograms as
  /// {count, sum, min, max, buckets}).
  void set_metrics_from_registry();

  [[nodiscard]] Json to_json() const;

  /// Writes to_json() (pretty-printed) to `path`; throws on I/O failure.
  void write(const std::string& path) const;

 private:
  Json config_ = Json::object();
  Json environment_ = Json::object();
  Json metrics_ = Json::object();
  Json samples_ = Json::array();
};

/// Best-effort `git describe --always --dirty --tags` of the working
/// directory's repository; "unknown" when git or the repo is unavailable.
[[nodiscard]] std::string git_describe();

}  // namespace bfc::obs
