// OpenMetrics / Prometheus text exposition of the obs::Registry. The
// renderer serializes the live Counter/Gauge/Histogram instruments on
// demand — metric names are mangled to the OpenMetrics charset ('.' -> '_'),
// counters gain the mandated `_total` sample suffix, and the base-2
// histograms expose their buckets as the standard cumulative
// `_bucket{le="..."}` series. Two transports sit on top:
//
//   MetricsHttpServer  a deliberately minimal single-threaded HTTP/1.1
//                      listener (loopback by default) answering every GET
//                      with the current rendering — enough for a Prometheus
//                      scrape or `curl localhost:PORT/metrics`, with no
//                      routing, TLS, or keep-alive;
//   write_openmetrics_file  one atomic (write-then-rename) dump for
//                      no-network environments; bench/serving re-dumps it
//                      periodically behind --metrics-file.
//
// Rendering works in every build; under BFC_METRICS=OFF the registry is
// simply empty and the output is just the `# EOF` terminator.
#pragma once

#include <cstdint>
#include <string>
#include <thread>

namespace bfc::obs {

/// OpenMetrics-safe name: '.' and any other disallowed character becomes
/// '_'; a leading digit gains a '_' prefix.
[[nodiscard]] std::string openmetrics_name(const std::string& name);

/// The full exposition: one TYPE/HELP header plus samples per instrument,
/// terminated by "# EOF\n".
[[nodiscard]] std::string render_openmetrics();

/// Writes render_openmetrics() to `path` via write-then-rename so scrapers
/// never observe a torn file; throws std::runtime_error on I/O failure.
void write_openmetrics_file(const std::string& path);

/// Minimal single-threaded exporter endpoint. Binds at construction (port 0
/// picks an ephemeral port), serves every request from one background
/// thread, unbinds at destruction. Intended for benches and sidecar
/// scrapes, not as a hardened ingress.
class MetricsHttpServer {
 public:
  /// Binds 127.0.0.1:`port` and starts serving; throws std::runtime_error
  /// when the socket cannot be bound.
  explicit MetricsHttpServer(int port);
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// The bound port (resolves an ephemeral request).
  [[nodiscard]] int port() const noexcept { return port_; }

  /// Requests answered so far.
  [[nodiscard]] std::int64_t requests_served() const noexcept;

 private:
  void serve_loop(const std::stop_token& stop);

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<std::int64_t> served_{0};
  std::jthread loop_;  // last: joins before the fd closes underneath it
};

}  // namespace bfc::obs
