// Query/update routing over the range partition. A query either routes to
// ONE shard (everything keyed by a V1 vertex: its owner holds every edge of
// that vertex, so tip and edge-support answers are shard-local modulo the
// cross-shard correction) or it scatters across ALL shards (global count,
// v2-side tips, top pairs — any answer that aggregates over V1 pairs that
// may straddle shards). There is no query that touches "some" shards: the
// partition is by V1 range and V2 vertices are replicated across every
// shard's column space.
#pragma once

#include <span>
#include <vector>

#include "shard/partition.hpp"
#include "svc/request.hpp"
#include "svc/snapshot.hpp"
#include "util/common.hpp"

namespace bfc::shard {

class ShardRouter {
 public:
  explicit ShardRouter(const RangePartition& part) : part_(part) {}

  /// The shard holding every edge of V1 vertex u — the single shard that
  /// answers tip(u) and edge-support(u, v) queries (plus the cross term).
  [[nodiscard]] int owner_shard(vidx_t u) const {
    require(0 <= u && u < part_.n1(), "ShardRouter: V1 vertex out of range");
    return part_.owner(u);
  }

  /// True when `kind` fans out over every shard instead of routing to one
  /// owner. kVertexTipV1 and kEdgeSupport route; the rest scatter.
  [[nodiscard]] static constexpr bool scatters(svc::QueryKind kind) noexcept {
    return kind != svc::QueryKind::kVertexTipV1 &&
           kind != svc::QueryKind::kEdgeSupport;
  }

  /// Splits a mixed batch into one sub-batch per shard, preserving the
  /// batch's relative update order within each shard. Disjoint-range
  /// updates commute across shards, so per-shard order is the only order
  /// that matters for the final counts.
  [[nodiscard]] std::vector<std::vector<svc::EdgeUpdate>> bucket(
      std::span<const svc::EdgeUpdate> batch) const {
    std::vector<std::vector<svc::EdgeUpdate>> out(
        static_cast<std::size_t>(part_.shards()));
    for (const svc::EdgeUpdate& up : batch) {
      require(0 <= up.u && up.u < part_.n1(),
              "ShardRouter: V1 vertex out of range");
      out[static_cast<std::size_t>(part_.owner(up.u))].push_back(up);
    }
    return out;
  }

  [[nodiscard]] const RangePartition& partition() const noexcept {
    return part_;
  }

 private:
  RangePartition part_;
};

}  // namespace bfc::shard
