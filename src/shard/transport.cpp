#include "shard/transport.hpp"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <sstream>
#include <thread>

#include "count/local_counts.hpp"
#include "graph/io_binary.hpp"
#include "shard/shard.hpp"
#include "svc/fault.hpp"

namespace bfc::shard {

namespace wire {

namespace {

constexpr std::size_t kMaxFrame = std::size_t{1} << 30;

[[noreturn]] void unavailable(const std::string& what) {
  throw ShardUnavailableError("shard transport: " + what);
}

[[noreturn]] void timed_out(const std::string& what) {
  throw ShardTimeoutError("shard transport: " + what);
}

// Full write with EINTR handling; throws on peer reset / short write.
void write_all(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      unavailable(std::string("send failed: ") + std::strerror(errno));
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
}

// Reads exactly len bytes before the deadline. Returns false on a clean
// EOF at offset 0 when eof_ok; throws on mid-frame EOF, error or timeout.
bool read_all(int fd, char* data, std::size_t len,
              std::chrono::steady_clock::time_point deadline, bool has_deadline,
              bool eof_ok) {
  std::size_t got = 0;
  while (got < len) {
    if (has_deadline) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      const int wait_ms =
          left.count() > 0 ? static_cast<int>(left.count()) : 0;
      pollfd pfd{fd, POLLIN, 0};
      const int pr = ::poll(&pfd, 1, wait_ms);
      if (pr < 0) {
        if (errno == EINTR) continue;
        unavailable(std::string("poll failed: ") + std::strerror(errno));
      }
      if (pr == 0) timed_out("receive timed out");
    }
    const ssize_t n = ::recv(fd, data + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      unavailable(std::string("recv failed: ") + std::strerror(errno));
    }
    if (n == 0) {
      if (got == 0 && eof_ok) return false;
      unavailable("peer closed mid-frame");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

void put_u32(std::string& buf, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    buf.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

}  // namespace

void Payload::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void Payload::str(std::string_view s) {
  u64(s.size());
  buf_.append(s.data(), s.size());
}

std::uint8_t Cursor::u8() {
  if (pos_ + 1 > data_.size()) unavailable("short payload");
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint64_t Cursor::u64() {
  if (pos_ + 8 > data_.size()) unavailable("short payload");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(
             static_cast<std::uint8_t>(data_[pos_ + static_cast<std::size_t>(
                                                        i)]))
         << (8 * i);
  pos_ += 8;
  return v;
}

std::string Cursor::str() {
  const std::uint64_t len = u64();
  if (len > data_.size() - pos_) unavailable("short payload");
  std::string s(data_.substr(pos_, len));
  pos_ += len;
  return s;
}

void send_frame(int fd, Msg msg, std::string_view payload) {
  if (payload.size() + 1 > kMaxFrame) unavailable("frame too large");
  std::string buf;
  buf.reserve(payload.size() + 5);
  put_u32(buf, static_cast<std::uint32_t>(payload.size() + 1));
  buf.push_back(static_cast<char>(msg));
  buf.append(payload.data(), payload.size());
  write_all(fd, buf.data(), buf.size());
}

bool recv_frame_or_eof(int fd, int timeout_ms, Frame& out) {
  const bool has_deadline = timeout_ms >= 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(has_deadline ? timeout_ms
                                                               : 0);
  char head[4];
  if (!read_all(fd, head, 4, deadline, has_deadline, /*eof_ok=*/true))
    return false;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i)
    len |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(head[i]))
           << (8 * i);
  if (len == 0 || len > kMaxFrame) unavailable("bad frame length");
  std::string body(len, '\0');
  (void)read_all(fd, body.data(), len, deadline, has_deadline,
                 /*eof_ok=*/false);
  out.msg = static_cast<Msg>(static_cast<std::uint8_t>(body[0]));
  out.payload = body.substr(1);
  return true;
}

Frame recv_frame(int fd, int timeout_ms) {
  Frame f;
  if (!recv_frame_or_eof(fd, timeout_ms, f))
    unavailable("peer closed before reply");
  return f;
}

std::string encode_snapshot(const svc::GraphSnapshot& snap) {
  Payload p;
  p.u64(snap.epoch);
  p.i64(snap.butterflies);
  p.i64(snap.edges);
  std::ostringstream blob(std::ios::binary);
  graph::write_binary(blob, snap.graph);
  p.str(blob.str());
  return std::move(p).take();
}

svc::SnapshotPtr decode_snapshot(std::string_view payload) {
  Cursor c(payload);
  auto snap = std::make_shared<svc::GraphSnapshot>();
  snap->epoch = c.u64();
  snap->butterflies = c.i64();
  snap->edges = static_cast<offset_t>(c.i64());
  std::istringstream blob(c.str(), std::ios::binary);
  snap->graph = graph::read_binary(blob, "<shard transport>");
  return snap;
}

std::string encode_batch(std::span<const svc::EdgeUpdate> batch) {
  Payload p;
  p.u64(batch.size());
  for (const svc::EdgeUpdate& up : batch) {
    p.u64(static_cast<std::uint64_t>(up.u));
    p.u64(static_cast<std::uint64_t>(up.v));
    p.u8(up.insert ? 1 : 0);
  }
  return std::move(p).take();
}

std::vector<svc::EdgeUpdate> decode_batch(std::string_view payload) {
  Cursor c(payload);
  const std::uint64_t n = c.u64();
  if (n > payload.size()) unavailable("bad batch length");
  std::vector<svc::EdgeUpdate> batch;
  batch.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    svc::EdgeUpdate up;
    up.u = static_cast<vidx_t>(c.u64());
    up.v = static_cast<vidx_t>(c.u64());
    up.insert = c.u8() != 0;
    batch.push_back(up);
  }
  return batch;
}

std::string encode_publish(const svc::PublishResult& r) {
  Payload p;
  p.u64(r.epoch);
  p.i64(r.applied);
  p.i64(r.ignored);
  p.i64(r.created);
  p.i64(r.destroyed);
  return std::move(p).take();
}

svc::PublishResult decode_publish(std::string_view payload) {
  Cursor c(payload);
  svc::PublishResult r;
  r.epoch = c.u64();
  r.applied = static_cast<offset_t>(c.i64());
  r.ignored = static_cast<offset_t>(c.i64());
  r.created = c.i64();
  r.destroyed = c.i64();
  return r;
}

std::string encode_pairs(std::uint64_t epoch,
                         std::span<const count::VertexPair> pairs) {
  Payload p;
  p.u64(epoch);
  p.u64(pairs.size());
  for (const count::VertexPair& vp : pairs) {
    p.u64(static_cast<std::uint64_t>(vp.a));
    p.u64(static_cast<std::uint64_t>(vp.b));
    p.i64(vp.wedges);
  }
  return std::move(p).take();
}

std::vector<count::VertexPair> decode_pairs(std::string_view payload,
                                            std::uint64_t& epoch_out) {
  Cursor c(payload);
  epoch_out = c.u64();
  const std::uint64_t n = c.u64();
  if (n > payload.size()) unavailable("bad pair count");
  std::vector<count::VertexPair> pairs;
  pairs.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    count::VertexPair vp;
    vp.a = static_cast<vidx_t>(c.u64());
    vp.b = static_cast<vidx_t>(c.u64());
    vp.wedges = c.i64();
    pairs.push_back(vp);
  }
  return pairs;
}

}  // namespace wire

int listen_unix(const std::string& path) {
  require(path.size() < sizeof(sockaddr_un{}.sun_path),
          "socket path too long: " + path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  require(fd >= 0, std::string("socket() failed: ") + std::strerror(errno));
  ::unlink(path.c_str());
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(fd);
    require(false, "bind(" + path + ") failed: " + std::strerror(err));
  }
  if (::listen(fd, 64) != 0) {
    const int err = errno;
    ::close(fd);
    require(false, "listen(" + path + ") failed: " + std::strerror(err));
  }
  return fd;
}

int connect_unix(const std::string& path, int timeout_ms) {
  if (path.size() >= sizeof(sockaddr_un{}.sun_path))
    throw ShardUnavailableError("socket path too long: " + path);
  const int fd =
      ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
  if (fd < 0)
    throw ShardUnavailableError(std::string("socket() failed: ") +
                                std::strerror(errno));
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
  if (rc != 0 && errno == EINPROGRESS) {
    pollfd pfd{fd, POLLOUT, 0};
    const int pr = ::poll(&pfd, 1, timeout_ms);
    if (pr <= 0) {
      ::close(fd);
      throw ShardTimeoutError("connect(" + path + ") timed out");
    }
    int soerr = 0;
    socklen_t len = sizeof(soerr);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len);
    rc = soerr == 0 ? 0 : -1;
    errno = soerr;
  }
  if (rc != 0) {
    const int err = errno;
    ::close(fd);
    throw ShardUnavailableError("connect(" + path +
                                ") failed: " + std::strerror(err));
  }
  // Back to blocking; frame IO paces itself with poll().
  const int flags = ::fcntl(fd, F_GETFL, 0);
  (void)::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
  return fd;
}

std::string call_host(const std::string& socket_path, wire::Msg msg,
                      std::string_view payload, int timeout_ms) {
  if (svc::fault::fires(svc::fault::Point::kTransportDrop))
    throw ShardUnavailableError("injected transport drop");
  int budget_ms = timeout_ms;
  if (svc::fault::fires(svc::fault::Point::kTransportDelay)) {
    const auto stall = static_cast<int>(
        svc::fault::param(svc::fault::Point::kTransportDelay));
    std::this_thread::sleep_for(std::chrono::milliseconds(stall));
    budget_ms -= stall;
    if (budget_ms <= 0)
      throw ShardTimeoutError("injected transport delay past deadline");
  }
  // One deadline for the whole call: the connect leg gets the full budget,
  // the recv leg only what's left of it, so a slow connect cannot stretch
  // the RPC to ~2x timeout_ms.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(budget_ms);
  int fd = connect_unix(socket_path, budget_ms);
  std::string reply;
  try {
    wire::send_frame(fd, msg, payload);
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    const int recv_ms = left.count() > 0 ? static_cast<int>(left.count()) : 0;
    const wire::Frame f = wire::recv_frame(fd, recv_ms);
    ::close(fd);
    fd = -1;  // the kError/bad-kind throws below must not close again
    if (f.msg == wire::Msg::kError)
      throw std::runtime_error("shard host error: " + f.payload);
    if (f.msg != wire::Msg::kReply)
      throw ShardUnavailableError("unexpected reply kind");
    reply = f.payload;
  } catch (...) {
    if (fd >= 0) ::close(fd);
    throw;
  }
  return reply;
}

namespace {

// Shard-local answers for the five query kinds, computed on the host's
// pinned snapshot with the ordinary single-store kernels (non-owned V1
// rows are empty, so the local tip/support/pair numbers are exactly the
// shard's contribution to the scatter-gather identities).
wire::Frame handle_request(const wire::Frame& req, ShardHandle& shard) {
  using wire::Msg;
  wire::Payload out;
  switch (req.msg) {
    case Msg::kPing: {
      out.u64(static_cast<std::uint64_t>(shard.id()));
      out.u64(static_cast<std::uint64_t>(shard.range_begin()));
      out.u64(static_cast<std::uint64_t>(shard.range_end()));
      out.u64(shard.epoch());
      break;
    }
    case Msg::kEpoch: {
      out.u64(shard.epoch());
      break;
    }
    case Msg::kPin: {
      const svc::SnapshotPtr snap = shard.pin();
      return {Msg::kReply, wire::encode_snapshot(*snap)};
    }
    case Msg::kApply: {
      const std::vector<svc::EdgeUpdate> batch =
          wire::decode_batch(req.payload);
      const svc::PublishResult r = shard.apply(batch);
      return {Msg::kReply, wire::encode_publish(r)};
    }
    case Msg::kPersist: {
      wire::Cursor c(req.payload);
      shard.persist(c.str());
      break;
    }
    case Msg::kRestore: {
      wire::Cursor c(req.payload);
      shard.restore(c.str());
      out.u64(shard.epoch());
      break;
    }
    case Msg::kGlobal: {
      const svc::SnapshotPtr snap = shard.pin();
      out.u64(snap->epoch);
      out.i64(snap->butterflies);
      break;
    }
    case Msg::kTipV1: {
      wire::Cursor c(req.payload);
      const auto u = static_cast<std::size_t>(c.u64());
      const svc::SnapshotPtr snap = shard.pin();
      const std::vector<count_t> tips =
          count::butterflies_per_v1(snap->graph);
      require(u < tips.size(), "tip_v1 vertex out of range");
      out.u64(snap->epoch);
      out.i64(tips[u]);
      break;
    }
    case Msg::kTipV2: {
      wire::Cursor c(req.payload);
      const auto v = static_cast<std::size_t>(c.u64());
      const svc::SnapshotPtr snap = shard.pin();
      const std::vector<count_t> tips =
          count::butterflies_per_v2(snap->graph);
      require(v < tips.size(), "tip_v2 vertex out of range");
      out.u64(snap->epoch);
      out.i64(tips[v]);
      break;
    }
    case Msg::kEdgeSupport: {
      wire::Cursor c(req.payload);
      const auto u = static_cast<vidx_t>(c.u64());
      const auto v = static_cast<vidx_t>(c.u64());
      const svc::SnapshotPtr snap = shard.pin();
      require(u >= 0 && u < snap->graph.n1(), "edge_support u out of range");
      const std::vector<count_t> support =
          count::support_per_edge(snap->graph);
      count_t value = 0;
      const auto row = snap->graph.csr().row(u);
      const offset_t base =
          snap->graph.csr().row_ptr()[static_cast<std::size_t>(u)];
      for (std::size_t i = 0; i < row.size(); ++i) {
        if (row[i] == v) {
          value = support[static_cast<std::size_t>(base) + i];
          break;
        }
      }
      out.u64(snap->epoch);
      out.i64(value);
      break;
    }
    case Msg::kTopPairs: {
      wire::Cursor c(req.payload);
      const auto k = static_cast<std::size_t>(c.u64());
      const svc::SnapshotPtr snap = shard.pin();
      const std::vector<count::VertexPair> pairs =
          count::top_wedge_pairs_v1(snap->graph, k);
      return {Msg::kReply, wire::encode_pairs(snap->epoch, pairs)};
    }
    default:
      return {Msg::kError, "unknown request kind"};
  }
  return {Msg::kReply, std::move(out).take()};
}

}  // namespace

void serve_connection(int fd, ShardHandle& shard, int idle_timeout_ms) {
  wire::Frame req;
  for (;;) {
    try {
      if (!wire::recv_frame_or_eof(fd, idle_timeout_ms, req)) return;
    } catch (const ShardUnavailableError&) {
      return;  // idle timeout / torn frame: drop the connection
    }
    // Simulated host crash: die before replying, exactly like a SIGKILL
    // between request and response (checked builds only; the host binary
    // arms this from --crash-at).
    if (svc::fault::fires(svc::fault::Point::kShardHostCrash)) ::_exit(137);
    wire::Frame reply;
    try {
      reply = handle_request(req, shard);
    } catch (const std::exception& e) {
      reply = {wire::Msg::kError, e.what()};
    }
    try {
      wire::send_frame(fd, reply.msg, reply.payload);
    } catch (const ShardUnavailableError&) {
      return;  // peer gone mid-reply; nothing to salvage
    }
  }
}

}  // namespace bfc::shard
