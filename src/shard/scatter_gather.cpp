#include "shard/scatter_gather.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <string>
#include <unordered_map>
#include <utility>

#include "chk/checked_math.hpp"
#include "obs/metrics.hpp"
#include "sparse/ops.hpp"

namespace bfc::shard {
namespace {

/// Canonical cross-pair key: contiguous ascending ranges guarantee u1 < u2
/// whenever owner(u1) < owner(u2), so no min/max is needed.
constexpr std::uint64_t pair_key(vidx_t u1, vidx_t u2) noexcept {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(u1)) << 32) |
         static_cast<std::uint32_t>(u2);
}

}  // namespace

CrossAggregate ScatterGather::compute(const ShardView& view,
                                      const CancelToken& cancel,
                                      const obs::TraceContext& trace) {
  CrossAggregate agg;
  agg.signature = view.signature;
  const int shards = view.shard_count();
  if (shards < 2) return agg;  // no cross pairs can exist
  const vidx_t n1 = view.shards[0]->graph.n1();
  const vidx_t n2 = view.shards[0]->graph.n2();

  // w(u1, u2) for every cross-shard pair with at least one common neighbor.
  std::unordered_map<std::uint64_t, count_t> wedges;
  std::vector<std::span<const vidx_t>> lists(
      static_cast<std::size_t>(shards));

  {
    // Scatter: fan over every shard's column space, one V2 vertex at a
    // time. Two passes share the per-v gather; the second needs the full
    // multiplicities, so it cannot fuse into the first.
    obs::Span span(trace, "svc.scatter");
    span.tag("shards", std::to_string(shards));
    for (vidx_t v = 0; v < n2; ++v) {
      cancel.checkpoint("shard::ScatterGather::compute");
      int populated = 0;
      for (int k = 0; k < shards; ++k) {
        lists[static_cast<std::size_t>(k)] =
            view.shards[static_cast<std::size_t>(k)]->graph.neighbors_of_v2(
                v);
        if (!lists[static_cast<std::size_t>(k)].empty()) ++populated;
      }
      if (populated < 2) continue;
      for (int i = 0; i < shards; ++i)
        for (int j = i + 1; j < shards; ++j)
          for (const vidx_t u1 : lists[static_cast<std::size_t>(i)])
            for (const vidx_t u2 : lists[static_cast<std::size_t>(j)])
              ++wedges[pair_key(u1, u2)];
    }
    agg.tips_v2.assign(static_cast<std::size_t>(n2), 0);
    for (vidx_t v = 0; v < n2; ++v) {
      cancel.checkpoint("shard::ScatterGather::compute");
      int populated = 0;
      for (int k = 0; k < shards; ++k) {
        lists[static_cast<std::size_t>(k)] =
            view.shards[static_cast<std::size_t>(k)]->graph.neighbors_of_v2(
                v);
        if (!lists[static_cast<std::size_t>(k)].empty()) ++populated;
      }
      if (populated < 2) continue;
      // Each cross wedge (u1, u2) at v closes into a butterfly with every
      // OTHER common neighbor of the pair: w − 1 of them.
      count_t& tv = agg.tips_v2[static_cast<std::size_t>(v)];
      for (int i = 0; i < shards; ++i)
        for (int j = i + 1; j < shards; ++j)
          for (const vidx_t u1 : lists[static_cast<std::size_t>(i)])
            for (const vidx_t u2 : lists[static_cast<std::size_t>(j)])
              tv = chk::checked_add(tv,
                                    wedges.find(pair_key(u1, u2))->second - 1);
    }
  }

  {
    // Gather: reduce the multiplicities into the correction terms.
    obs::Span span(trace, "svc.gather");
    agg.tips_v1.assign(static_cast<std::size_t>(n1), 0);
    agg.pairs.reserve(wedges.size());
    for (const auto& [key, w] : wedges) {
      const auto u1 = static_cast<vidx_t>(key >> 32);
      const auto u2 = static_cast<vidx_t>(key & 0xffffffffULL);
      const count_t bf = chk::checked_choose2(w);
      if (bf != 0) {
        agg.butterflies = chk::checked_add(agg.butterflies, bf);
        agg.tips_v1[static_cast<std::size_t>(u1)] = chk::checked_add(
            agg.tips_v1[static_cast<std::size_t>(u1)], bf);
        agg.tips_v1[static_cast<std::size_t>(u2)] = chk::checked_add(
            agg.tips_v1[static_cast<std::size_t>(u2)], bf);
      }
      agg.pairs.push_back(count::VertexPair{u1, u2, w});
    }
    std::sort(agg.pairs.begin(), agg.pairs.end(),
              [](const count::VertexPair& x, const count::VertexPair& y) {
                return count::pair_order(x, y);
              });
    span.tag("pairs", std::to_string(agg.pairs.size()));
  }

  BFC_COUNT_ADD("svc.cross_passes", 1);
  BFC_GAUGE_SET("svc.cross_pairs", static_cast<double>(agg.pairs.size()));
  return agg;
}

CrossAggregatePtr ScatterGather::cross(const ShardViewPtr& view,
                                       const CancelToken& cancel,
                                       const obs::TraceContext& trace) {
  const std::uint64_t sig = view->signature;
  std::shared_future<CrossAggregatePtr> fut;
  std::promise<CrossAggregatePtr> mine;
  bool computer = false;
  std::uint64_t my_pass = 0;
  {
    const MutexLock lock(mu_);
    for (const MemoEntry& e : memo_)
      if (e.signature == sig) fut = e.result;
    if (!fut.valid()) {
      fut = mine.get_future().share();
      my_pass = ++next_pass_id_;
      memo_.push_back(MemoEntry{sig, my_pass, fut});
      if (memo_.size() > 2) {
        // Evict the oldest COMPLETED entry only. An in-flight compute keeps
        // its slot so late callers for its signature still coalesce instead
        // of launching a duplicate pass; the memo may transiently exceed
        // two entries while several signatures are in flight at once.
        for (auto it = memo_.begin(); it != memo_.end(); ++it) {
          if (it->result.wait_for(std::chrono::seconds(0)) ==
              std::future_status::ready) {
            memo_.erase(it);
            break;
          }
        }
      }
      computer = true;
    }
  }
  if (computer) {
    try {
      mine.set_value(
          std::make_shared<const CrossAggregate>(compute(*view, cancel,
                                                         trace)));
    } catch (...) {
      // Drop the failed entry so the next caller retries, then let every
      // coalesced waiter see the same exception (CancelledError included —
      // each degrades independently, like the tip-pass memo). Erase ONLY
      // our own entry (pass_id match): a clear() racing this failure may
      // already have installed a fresh in-flight pass under this signature,
      // and that pass — and the waiters coalesced onto it — must survive.
      {
        const MutexLock lock(mu_);
        std::erase_if(memo_, [&](const MemoEntry& e) {
          return e.signature == sig && e.pass_id == my_pass;
        });
      }
      mine.set_exception(std::current_exception());
    }
  }
  return fut.get();
}

void ScatterGather::clear() {
  // Dropping an in-flight entry is safe: the computing thread holds its own
  // promise/future and its failure-path erase-by-signature simply finds
  // nothing; already-coalesced waiters still get that compute's outcome.
  const MutexLock lock(mu_);
  memo_.clear();
}

std::optional<CrossAggregatePtr> ScatterGather::cached(
    std::uint64_t signature) const {
  const MutexLock lock(mu_);
  for (const MemoEntry& e : memo_) {
    if (e.signature != signature) continue;
    if (e.result.wait_for(std::chrono::seconds(0)) !=
        std::future_status::ready)
      continue;
    // A ready future may still hold an exception (cancelled compute whose
    // erase raced with this probe); a stale rung must never throw.
    try {
      return e.result.get();
    } catch (...) {
      return std::nullopt;
    }
  }
  return std::nullopt;
}

std::optional<CrossAggregatePtr> ScatterGather::latest_ready() const {
  const MutexLock lock(mu_);
  for (auto it = memo_.rbegin(); it != memo_.rend(); ++it) {
    if (it->result.wait_for(std::chrono::seconds(0)) !=
        std::future_status::ready)
      continue;
    try {
      return it->result.get();
    } catch (...) {
      continue;
    }
  }
  return std::nullopt;
}

count_t ScatterGather::global_count(const ShardView& view,
                                    const CrossAggregate& cross) {
  BFC_COUNT_ADD("svc.gather_merges", 1);
  return chk::checked_add(view.local_butterflies(), cross.butterflies);
}

count_t ScatterGather::edge_support_cross(const ShardView& view, int owner,
                                          vidx_t u, vidx_t v) {
  const std::span<const vidx_t> nu =
      view.shards[static_cast<std::size_t>(owner)]->graph.neighbors_of_v1(u);
  count_t support = 0;
  for (int j = 0; j < view.shard_count(); ++j) {
    if (j == owner) continue;
    const graph::BipartiteGraph& gj =
        view.shards[static_cast<std::size_t>(j)]->graph;
    for (const vidx_t mate : gj.neighbors_of_v2(v)) {
      // v is a common neighbor of u and every mate, so the intersection is
      // ≥ 1 and the −1 (excluding v itself) never goes negative.
      support = chk::checked_add(
          support,
          static_cast<count_t>(
              sparse::intersection_size(nu, gj.neighbors_of_v1(mate))) -
              1);
    }
  }
  return support;
}

std::vector<count::VertexPair> ScatterGather::merge_top_pairs(
    const std::vector<std::vector<count::VertexPair>>& per_shard,
    std::span<const count::VertexPair> cross_pairs, std::size_t k) {
  BFC_COUNT_ADD("svc.gather_merges", 1);
  if (k == 0) return {};
  std::vector<count::VertexPair> all;
  std::size_t total = cross_pairs.size();
  for (const auto& list : per_shard) total += list.size();
  all.reserve(total);
  for (const auto& list : per_shard)
    all.insert(all.end(), list.begin(), list.end());
  all.insert(all.end(), cross_pairs.begin(), cross_pairs.end());
  std::sort(all.begin(), all.end(),
            [](const count::VertexPair& x, const count::VertexPair& y) {
              return count::pair_order(x, y);
            });
  if (all.size() > k) all.resize(k);
  return all;
}

}  // namespace bfc::shard
