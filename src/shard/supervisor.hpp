// ShardSupervisor: keeps a fleet of bfc-shard-host processes alive. One
// jthread health loop per supervisor:
//
//   spawn ──▶ READY (ping answers with the expected id/range)
//     │                                │
//     │         waitpid(WNOHANG) says the child exited/was SIGKILLed,
//     │         or `probe_failures_to_kill` consecutive pings fail
//     │         (hung host — the supervisor SIGKILLs it itself)
//     ▼                                ▼
//   QUARANTINED: the range is dark. The RemoteShard pointing at the
//   socket has already opened its circuit from the failed calls, so the
//   service is serving the range stale/degraded — not failing. The
//   supervisor respawns the host with --restore <last checkpoint>,
//   waits until ping answers, then fires on_restart(k, restored_epoch)
//   so the owner can replay every batch newer than the checkpoint.
//   Replay-from-checkpoint is exact: restore rebuilds the state the
//   checkpoint captured, and batches are reapplied in publish order.
//
// Restart counts are exported as svc.supervisor.restarts.
#pragma once

#include <sys/types.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "util/common.hpp"
#include "util/sync.hpp"

namespace bfc::shard {

struct HostSpec {
  std::string binary;  // path to bfc-shard-host
  std::string socket;  // Unix socket path (< 108 bytes)
  int id = 0;
  vidx_t n1 = 0, n2 = 0, lo = 0, hi = 0;
  std::string snapshot;  // restore source for restarts ("" = cold start)
  std::vector<std::string> extra_args;  // e.g. {"--crash-at", "3"}
};

struct SupervisorOptions {
  int health_interval_ms = 50;    // monitor tick
  int startup_timeout_ms = 15000; // spawn -> first successful ping
  int probe_timeout_ms = 250;     // per health ping
  int probe_failures_to_kill = 4; // hung-host threshold
};

class ShardSupervisor {
 public:
  /// (shard index, epoch the restarted host restored to).
  using RestartCallback = std::function<void(int, std::uint64_t)>;

  explicit ShardSupervisor(SupervisorOptions opts = {});
  ~ShardSupervisor();
  ShardSupervisor(const ShardSupervisor&) = delete;
  ShardSupervisor& operator=(const ShardSupervisor&) = delete;

  /// Spawns the host and blocks until it answers a ping (or throws after
  /// startup_timeout_ms). Returns the host's index.
  int add_host(HostSpec spec);

  /// Updates the checkpoint a future restart will restore from (the owner
  /// calls this after every successful persist).
  void set_snapshot(int k, std::string path);

  /// Starts the health/restart loop. Must be called at most once.
  void start_monitor(RestartCallback on_restart);

  /// Stops the monitor (running restarts finish first). Children stay up.
  void stop_monitor();

  [[nodiscard]] pid_t pid(int k) const;
  [[nodiscard]] std::size_t host_count() const;

  /// Chaos entry point: deliver `sig` (default SIGKILL) to host k.
  void kill_host(int k, int sig);

  /// Completed restarts since construction.
  [[nodiscard]] std::uint64_t restarts() const noexcept {
    return restarts_.load(std::memory_order_relaxed);
  }

  /// One ping with the monitor's probe timeout.
  [[nodiscard]] bool alive(int k) const;

 private:
  struct Host {
    HostSpec spec;
    pid_t pid = -1;
    int probe_failures = 0;
  };

  [[nodiscard]] static pid_t spawn(const HostSpec& spec);
  void wait_ready(const HostSpec& spec) const;
  [[nodiscard]] bool ping(const HostSpec& spec) const;
  void monitor_tick();

  SupervisorOptions opts_;
  mutable Mutex mu_{"shard.supervisor"};
  std::vector<Host> hosts_ BFC_GUARDED_BY(mu_);
  std::atomic<std::uint64_t> restarts_{0};
  RestartCallback on_restart_;
  std::jthread monitor_;  // last member: stops before hosts_ dies
};

}  // namespace bfc::shard
