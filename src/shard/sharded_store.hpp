// N independently-published shards behind one store facade. The v1 side is
// range-partitioned (shard/partition.hpp); each shard is a ShardHandle —
// in-process today (LocalShard), possibly remote tomorrow — publishing its
// own epoch sequence with no synchronisation against the other shards.
// That independence is the whole point: writers whose batches touch
// disjoint vertex ranges call apply_to_shard() concurrently and their
// publishes overlap in time, where the single SnapshotStore serialised
// every batch on one writer mutex.
//
// Readers pin a ShardView: one snapshot per shard plus a signature over
// the per-shard epochs. There is deliberately no cross-shard atomic cut —
// see view.hpp for the consistency contract.
//
// Checkpointing follows the same fuzziness: with one shard, persist() and
// restore() speak the exact legacy SnapshotStore format (a 1-shard store
// is drop-in compatible with files written before sharding existed); with
// N > 1 shards, persist() writes one legacy-format file per shard plus a
// small CRC-checked manifest binding them together, and restore() demands
// a manifest whose shard count and dimensions match this store's layout.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "shard/partition.hpp"
#include "shard/shard.hpp"
#include "shard/view.hpp"
#include "svc/snapshot.hpp"
#include "svc/snapshot_store.hpp"
#include "util/common.hpp"
#include "util/sync.hpp"

namespace bfc::shard {

class ShardedSnapshotStore {
 public:
  /// Builds `shards` LocalShards over [0, n1), each starting at epoch 0.
  /// At most 64 shards: ShardView::stale_mask tags staleness per shard in
  /// a 64-bit bitmap, and an untaggable shard would degrade silently.
  ShardedSnapshotStore(vidx_t n1, vidx_t n2, int shards);

  // ---- writer side -------------------------------------------------------

  /// Routes a mixed batch by V1 owner and applies one sub-batch per touched
  /// shard, in ascending shard order, preserving the batch's relative
  /// update order within each shard. Returns the summed PublishResult with
  /// `epoch` carrying the store's global version() after the last publish
  /// (per-shard epochs are per-shard; the global version is the only
  /// scalar that means "after this batch" across shards).
  svc::PublishResult apply_batch(std::span<const svc::EdgeUpdate> batch);
  svc::PublishResult apply_batch(std::initializer_list<svc::EdgeUpdate> b) {
    return apply_batch(std::span<const svc::EdgeUpdate>(b.begin(), b.end()));
  }

  /// Applies a batch known to be wholly owned by shard k (the shard itself
  /// enforces ownership). This is the concurrent-writer entry point: no
  /// store-wide lock is taken, so callers on different shards publish in
  /// parallel.
  svc::PublishResult apply_to_shard(int k,
                                    std::span<const svc::EdgeUpdate> batch);
  svc::PublishResult apply_to_shard(int k,
                                    std::initializer_list<svc::EdgeUpdate> b) {
    return apply_to_shard(
        k, std::span<const svc::EdgeUpdate>(b.begin(), b.end()));
  }

  // ---- reader side -------------------------------------------------------

  /// Pins every shard's latest snapshot into one view. N atomic loads, no
  /// locks, never blocks any writer.
  [[nodiscard]] ShardViewPtr view() const;

  /// Pins one shard's latest snapshot.
  [[nodiscard]] svc::SnapshotPtr shard_snapshot(int k) const;

  /// Max per-shard epoch — NOT a global ordering across shards; use
  /// version() for that.
  [[nodiscard]] std::uint64_t epoch() const;

  /// Global monotone publish counter: incremented once per shard publish,
  /// in publish order as the shards' own epoch sequences interleave.
  [[nodiscard]] std::uint64_t version() const noexcept {
    // relaxed: a monotone freshness scalar; nothing is ordered against it.
    return version_.load(std::memory_order_relaxed);
  }

  // ---- checkpointing ----------------------------------------------------

  void persist(const std::string& path) const;
  /// Warm-start from a checkpoint. Like SnapshotStore::restore this demands
  /// writer exclusivity — and, in the single-shard case, reader exclusivity
  /// for the LAYOUT accessors too: a legacy checkpoint may change the
  /// dimensions, so restore() rebuilds part_ and rewrites n1_/n2_, and a
  /// concurrent partition()/ShardRouter user would race on the rebuild.
  /// n1()/n2() stay individually tear-free (atomic, SnapshotStore idiom)
  /// but readers needing dimensions coherent with a graph must take them
  /// from a pinned view, never from here across a restore.
  void restore(const std::string& path);

  // ---- layout ------------------------------------------------------------

  [[nodiscard]] int shard_count() const noexcept { return part_.shards(); }
  /// The live partition, lock-free. Must not be called concurrently with a
  /// single-shard restore(), which may rebuild it — see restore().
  [[nodiscard]] const RangePartition& partition() const noexcept {
    return part_;
  }
  [[nodiscard]] vidx_t n1() const noexcept {
    return n1_.load(std::memory_order_relaxed);  // see SnapshotStore::n1()
  }
  [[nodiscard]] vidx_t n2() const noexcept {
    return n2_.load(std::memory_order_relaxed);
  }

  /// The shard handle in slot k (never null).
  [[nodiscard]] ShardHandlePtr shard(int k) const;

  /// Replaces slot k with another implementation of the same range — the
  /// seam a future PR uses to move one shard out of process. The handle's
  /// id and owned range must match the slot.
  void swap_shard(int k, ShardHandlePtr handle);

  /// Shard k's backing SnapshotStore when it is a LocalShard, else null.
  /// The single-shard service paths use slot 0 to keep the pre-shard
  /// introspection surface (`service.store()`) intact.
  [[nodiscard]] const svc::SnapshotStore* local_store(int k) const;

 private:
  struct ShardMap {
    std::vector<ShardHandlePtr> shards;
  };
  using ShardMapPtr = std::shared_ptr<const ShardMap>;

  [[nodiscard]] ShardMapPtr map_load() const;
  void map_store(ShardMapPtr map);

  // Rebuilt only by single-shard restore(), which the contract makes fully
  // exclusive (no concurrent partition() readers) — see restore().
  RangePartition part_;
  std::atomic<vidx_t> n1_;
  std::atomic<vidx_t> n2_;
  std::atomic<std::uint64_t> version_{0};
  mutable Mutex swap_mu_{"shard.store.swap"};  // restore/swap_shard
#if defined(__SANITIZE_THREAD__)
  // Same TSan accommodation as SnapshotStore::head_: libstdc++'s
  // atomic<shared_ptr> spin lock is invisible to TSan.
  mutable Mutex map_mu_{"shard.store.map"};
  ShardMapPtr map_ BFC_GUARDED_BY(map_mu_);
#else
  std::atomic<ShardMapPtr> map_;
#endif
};

}  // namespace bfc::shard
