// The narrow shard boundary. A ShardHandle is everything the sharded store
// and the scatter-gather planner are allowed to know about one shard: apply
// a batch, pin a snapshot, read the epoch, checkpoint. The interface is
// deliberately value-in / value-out (spans of updates, shared_ptr
// snapshots, scalar epochs) with no shared mutable state across it, so a
// future PR can implement it with a process boundary behind the calls
// without touching any caller.
//
// LocalShard is the in-process implementation: one svc::SnapshotStore
// spanning the FULL (n1, n2) vertex sets but owning only the V1 interval
// [lo, hi). Keeping full dimensions means a shard snapshot is an ordinary
// BipartiteGraph — every existing kernel (tip passes, edge support,
// top-pairs) runs on it unmodified, with the rows outside the owned range
// simply empty.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "svc/snapshot.hpp"
#include "svc/snapshot_store.hpp"
#include "util/common.hpp"

namespace bfc::obs {
class Counter;
}

namespace bfc::shard {

class ShardHandle {
 public:
  virtual ~ShardHandle() = default;

  /// Applies one batch and publishes the shard's next epoch. Every update's
  /// V1 endpoint must be owned by this shard; routing is the caller's job
  /// (ShardedSnapshotStore / ShardRouter).
  virtual svc::PublishResult apply(std::span<const svc::EdgeUpdate> batch) = 0;

  /// Pins the shard's latest published snapshot (full-dimension graph,
  /// non-owned V1 rows empty). One atomic load; never blocks the writer.
  [[nodiscard]] virtual svc::SnapshotPtr pin() const = 0;

  /// Epoch of the shard's latest published snapshot.
  [[nodiscard]] virtual std::uint64_t epoch() const = 0;

  /// Crash-safe checkpoint of the shard's latest epoch (write-then-rename).
  virtual void persist(const std::string& path) const = 0;

  /// Warm restart from a checkpoint written by persist(); throws
  /// std::runtime_error on a corrupt file, leaving the shard unchanged.
  virtual void restore(const std::string& path) = 0;

  [[nodiscard]] virtual int id() const noexcept = 0;
  /// Owned V1 interval [range_begin(), range_end()).
  [[nodiscard]] virtual vidx_t range_begin() const noexcept = 0;
  [[nodiscard]] virtual vidx_t range_end() const noexcept = 0;

  /// Whether the shard can currently serve fresh answers. In-process shards
  /// are always healthy; a RemoteShard reports false while its circuit
  /// breaker is open (host crashed / unreachable), in which case pin()
  /// still returns the last known snapshot so views stay total — the
  /// sharded store folds this bit into ShardView::stale_mask and the
  /// service downgrades fidelity instead of failing the query.
  [[nodiscard]] virtual bool healthy() const noexcept { return true; }
};

using ShardHandlePtr = std::shared_ptr<ShardHandle>;

/// In-process shard: a SnapshotStore plus ownership checks and a
/// construction-bound svc.shard.<id>.publishes counter.
class LocalShard final : public ShardHandle {
 public:
  LocalShard(int id, vidx_t n1, vidx_t n2, vidx_t lo, vidx_t hi);

  svc::PublishResult apply(std::span<const svc::EdgeUpdate> batch) override;
  [[nodiscard]] svc::SnapshotPtr pin() const override {
    return store_.current();
  }
  [[nodiscard]] std::uint64_t epoch() const override { return store_.epoch(); }
  void persist(const std::string& path) const override {
    store_.persist(path);
  }
  void restore(const std::string& path) override;

  [[nodiscard]] int id() const noexcept override { return id_; }
  [[nodiscard]] vidx_t range_begin() const noexcept override { return lo_; }
  [[nodiscard]] vidx_t range_end() const noexcept override { return hi_; }

  /// The backing store, for the single-shard compatibility paths that must
  /// keep the exact legacy behavior (service introspection, legacy
  /// persist format). Deliberately absent from ShardHandle: a remote shard
  /// has no local store to hand out.
  [[nodiscard]] const svc::SnapshotStore& store() const noexcept {
    return store_;
  }

 private:
  int id_;
  vidx_t lo_;
  vidx_t hi_;
  svc::SnapshotStore store_;
  obs::Counter* publishes_ = nullptr;  // svc.shard.<id>.publishes
};

}  // namespace bfc::shard
