// A pinned cross-shard read view: one immutable snapshot per shard, taken
// with one atomic load each. Shards publish independently, so a view is NOT
// an atomic cut across shards — each per-shard snapshot is individually
// consistent, and the view as a whole is "some recent epoch of every
// shard". That is the same consistency a single-store reader gets across
// two successive pins; queries that need a frozen multi-shard state pin one
// view and answer everything against it.
//
// The signature is an order-sensitive hash of the per-shard epochs: two
// views with equal signatures answer every query identically, which is what
// lets the service key its composed-answer cache tier and the scatter-gather
// planner key its cross-aggregate memo by signature instead of by any
// single epoch.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "chk/checked_math.hpp"
#include "svc/snapshot.hpp"
#include "util/common.hpp"

namespace bfc::shard {

struct ShardView {
  std::vector<svc::SnapshotPtr> shards;  // index = shard id, never null
  std::uint64_t version = 0;    // global publish counter at pin time
  std::uint64_t signature = 0;  // order-sensitive hash of per-shard epochs
  // Bit k set: shard k was unhealthy at pin time (open circuit on a
  // RemoteShard), so shards[k] is its last *known* snapshot rather than a
  // fresh pin. Values composed from this view are still exact for the
  // pinned epoch combination — the mask is a freshness annotation the
  // service surfaces as QueryResult::stale_shards, never a validity bit.
  std::uint64_t stale_mask = 0;

  [[nodiscard]] int shard_count() const noexcept {
    return static_cast<int>(shards.size());
  }

  [[nodiscard]] bool shard_stale(int k) const noexcept {
    return k < 64 && ((stale_mask >> k) & 1u) != 0;
  }

  /// Σ over shards of the shard-local butterfly count: butterflies whose
  /// V1 pair lives inside one shard. The cross-shard correction term comes
  /// from shard::ScatterGather.
  [[nodiscard]] count_t local_butterflies() const {
    count_t total = 0;
    for (const svc::SnapshotPtr& s : shards)
      total = chk::checked_add(total, s->butterflies);
    return total;
  }

  [[nodiscard]] offset_t edges() const {
    offset_t total = 0;
    for (const svc::SnapshotPtr& s : shards)
      total = chk::checked_add(total, s->edges);
    return total;
  }

  [[nodiscard]] std::uint64_t max_epoch() const noexcept {
    std::uint64_t m = 0;
    for (const svc::SnapshotPtr& s : shards)
      if (s->epoch > m) m = s->epoch;
    return m;
  }

  /// splitmix64 chain over the per-shard epochs (order-sensitive).
  [[nodiscard]] static std::uint64_t signature_of(
      const std::vector<svc::SnapshotPtr>& shards) noexcept {
    auto mix = [](std::uint64_t x) noexcept {
      x += 0x9e3779b97f4a7c15ULL;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      return x ^ (x >> 31);
    };
    std::uint64_t h = mix(shards.size());
    for (const svc::SnapshotPtr& s : shards) h = mix(h ^ s->epoch);
    return h;
  }
};

using ShardViewPtr = std::shared_ptr<const ShardView>;

}  // namespace bfc::shard
