// The scatter-gather planner: what makes per-shard answers sum EXACTLY to
// the single-store answer. Range-partitioning the V1 side puts every edge
// of a V1 vertex in one shard, so a butterfly (u1, u2, v1, v2) lands in
// exactly one of two buckets:
//
//   local  — u1 and u2 owned by the same shard k: counted by shard k's own
//            kernels (its snapshot is an ordinary BipartiteGraph whose
//            non-owned rows are empty);
//   cross  — u1 and u2 owned by different shards: invisible to every
//            per-shard kernel, reconstructed here as the correction term.
//
// The cross pass walks the V2 side once: at each v, the per-shard neighbor
// lists L_k = N_k(v) partition N(v) by owner, and every pair (u1 ∈ L_i,
// u2 ∈ L_j) with i < j is one cross wedge. Contiguous ascending ranges
// mean i < j implies u1 < u2, so the pair key is already in the canonical
// count::VertexPair order. Accumulating wedge multiplicities w(u1, u2)
// across all v gives every correction at once:
//
//   total butterflies   Σ_k local_k + Σ_{cross pairs} C(w, 2)
//   tip_v1(u)           owner-shard tip(u) + Σ_{pairs with u} C(w, 2)
//   tip_v2(v)           Σ_k shard-k tip_v2(v) + Σ_{cross wedges at v} (w−1)
//   edge support        owner-shard support (exact on the shard graph: all
//                       of u's and u''s edges are local for same-shard u')
//                       + Σ_{j≠k} Σ_{u'∈N_j(v)} (|N(u) ∩ N(u')| − 1)
//   top pairs           merge of per-shard top-k lists (any same-shard pair
//                       in the global top k must be in its shard's top k)
//                       and the cross pairs, ranked by count::pair_order.
//
// One cross pass serves every scatter query at a given view signature: the
// planner memoises the aggregate per signature (keeping the latest two, so
// the degrade ladder has a stale rung) and coalesces concurrent computes
// onto one shared future, exactly like the service's tip-pass memo. The
// pass itself is sequential and cancellable — serving-path kernels stay
// free of OpenMP regions by design (see tests/test_svc.cpp's stress note);
// the ParButterfly-style parallel aggregation stays on the batch side.
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "count/top_pairs.hpp"
#include "obs/spans.hpp"
#include "shard/view.hpp"
#include "util/cancel.hpp"
#include "util/common.hpp"
#include "util/sync.hpp"

namespace bfc::shard {

/// Everything the cross-shard correction knows at one view signature.
struct CrossAggregate {
  std::uint64_t signature = 0;
  count_t butterflies = 0;  // butterflies whose V1 pair straddles shards
  // Per-vertex cross contributions; empty vectors mean "all zero" (the
  // single-shard case computes nothing and allocates nothing).
  std::vector<count_t> tips_v1;
  std::vector<count_t> tips_v2;
  /// Every cross-shard connected V1 pair with its full wedge count, sorted
  /// by count::pair_order (best first).
  std::vector<count::VertexPair> pairs;

  [[nodiscard]] count_t tip_v1(vidx_t u) const noexcept {
    const auto i = static_cast<std::size_t>(u);
    return i < tips_v1.size() ? tips_v1[i] : 0;
  }
  [[nodiscard]] count_t tip_v2(vidx_t v) const noexcept {
    const auto i = static_cast<std::size_t>(v);
    return i < tips_v2.size() ? tips_v2[i] : 0;
  }
};

using CrossAggregatePtr = std::shared_ptr<const CrossAggregate>;

class ScatterGather {
 public:
  ScatterGather() = default;

  /// The cross aggregate for `view`, computed at most once per signature
  /// (concurrent callers coalesce onto one shared future; the computing
  /// caller's token cancels for everyone, and CancelledError propagates to
  /// every waiter). Keeps the latest two completed signatures; older
  /// completed aggregates are dropped (in-flight ones are never evicted).
  CrossAggregatePtr cross(const ShardViewPtr& view,
                          const CancelToken& cancel = {},
                          const obs::TraceContext& trace = {});

  /// Drops every memo entry. Required after a store restore: signatures
  /// hash per-shard epochs only, and restore rewinds the epoch sequences,
  /// so a retained aggregate could collide with a future view of different
  /// content.
  void clear();

  /// Memo probe without computing — the stale rung of the degrade ladder.
  [[nodiscard]] std::optional<CrossAggregatePtr> cached(
      std::uint64_t signature) const;

  /// Most recently completed aggregate of ANY signature, if one survives.
  [[nodiscard]] std::optional<CrossAggregatePtr> latest_ready() const;

  // ---- pure kernels (no memo, no locks) ----------------------------------

  /// One sequential cancellable pass over the view (see file comment).
  [[nodiscard]] static CrossAggregate compute(
      const ShardView& view, const CancelToken& cancel = {},
      const obs::TraceContext& trace = {});

  /// Exact global count: Σ shard-local + cross.
  [[nodiscard]] static count_t global_count(const ShardView& view,
                                            const CrossAggregate& cross);

  /// Cross-shard part of support(u, v) for u owned by shard `owner`:
  /// Σ over other-shard wedge mates u' of (|N(u) ∩ N(u')| − 1).
  [[nodiscard]] static count_t edge_support_cross(const ShardView& view,
                                                  int owner, vidx_t u,
                                                  vidx_t v);

  /// Exact top-k merge of per-shard top-k lists and the cross pairs.
  [[nodiscard]] static std::vector<count::VertexPair> merge_top_pairs(
      const std::vector<std::vector<count::VertexPair>>& per_shard,
      std::span<const count::VertexPair> cross_pairs, std::size_t k);

 private:
  struct MemoEntry {
    std::uint64_t signature = 0;
    // Identity of the compute that inserted this entry. The failure-path
    // erase matches on (signature, pass_id), not signature alone: between a
    // compute failing and it reacquiring mu_, a clear() + fresh query can
    // install a NEW in-flight entry under the same signature, and erasing
    // by signature would evict that healthy pass (a later caller would then
    // launch a duplicate compute instead of coalescing).
    std::uint64_t pass_id = 0;
    std::shared_future<CrossAggregatePtr> result;
  };

  mutable Mutex mu_{"shard.scatter.memo"};
  // Newest last; ≤ 2 completed entries (in-flight computes are never
  // evicted, so the vector may transiently run longer under churn).
  std::vector<MemoEntry> memo_ BFC_GUARDED_BY(mu_);
  std::uint64_t next_pass_id_ BFC_GUARDED_BY(mu_) = 0;
};

}  // namespace bfc::shard
