// Wire protocol for out-of-process shards. One bfc-shard-host process owns
// one LocalShard and serves it over a Unix-domain SOCK_STREAM socket; the
// RemoteShard client (remote.hpp) speaks this protocol from the service
// side. Framing is deliberately minimal:
//
//   frame   := u32 length (LE) · u8 msg · payload[length-1]
//   payload := little-endian PODs and length-prefixed byte strings; graph
//              payloads reuse the BFC2 binary serializer (graph/io_binary)
//              so a pinned snapshot crosses the socket in exactly the
//              checkpoint format, CRCs included.
//
// Requests carry one message each and every request gets exactly one reply
// (kReply on success, kError with a message string on failure), so a
// request/reply pair is self-delimiting and a client can run one RPC per
// connection — which is what RemoteShard does: connection state never
// outlives a call, and a crashed host fails the *call*, not the client.
//
// Client-side legs honour the transport fault points (svc/fault.hpp):
// kTransportDrop fails a leg as if the peer vanished, kTransportDelay
// stalls param() ms before the receive — long enough values trip the
// per-leg timeout deterministically. Both compile to constant-false in
// release builds.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "count/top_pairs.hpp"
#include "svc/snapshot.hpp"
#include "svc/snapshot_store.hpp"
#include "util/common.hpp"

namespace bfc::shard {

class ShardHandle;

/// A cross-process shard leg failed: connect refused, peer EOF mid-frame,
/// per-leg timeout, or the circuit breaker refusing to issue the call.
/// Query paths treat this like a degrade trigger, never a hard error.
class ShardUnavailableError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The timed-out flavour, split out so the client can count
/// svc.remote.timeouts separately from connection-refused/EOF failures.
class ShardTimeoutError : public ShardUnavailableError {
 public:
  using ShardUnavailableError::ShardUnavailableError;
};

namespace wire {

enum class Msg : std::uint8_t {
  kPing = 0,      // -> id, range, epoch (health probe + handshake check)
  kEpoch,         // -> epoch
  kPin,           // -> epoch, butterflies, edges, BFC2 graph blob
  kApply,         // batch -> PublishResult
  kPersist,       // path -> ack
  kRestore,       // path -> epoch
  kGlobal,        // -> epoch, shard-local butterfly count
  kTipV1,         // u -> epoch, shard-local tip
  kTipV2,         // v -> epoch, shard-local tip
  kEdgeSupport,   // u, v -> epoch, shard-local support
  kTopPairs,      // k -> epoch, shard-local top wedge pairs
  kReply = 200,   // success reply
  kError = 201,   // failure reply, payload = message string
};

struct Frame {
  Msg msg = Msg::kError;
  std::string payload;
};

/// Little-endian POD/string appender for payloads.
class Payload {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void str(std::string_view s);
  [[nodiscard]] std::string take() && { return std::move(buf_); }
  [[nodiscard]] const std::string& view() const noexcept { return buf_; }

 private:
  std::string buf_;
};

/// Bounds-checked reader; throws ShardUnavailableError on a short or
/// malformed payload (a protocol error is indistinguishable from a broken
/// peer as far as the caller's retry policy is concerned).
class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}
  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::int64_t i64() {
    return static_cast<std::int64_t>(u64());
  }
  [[nodiscard]] std::string str();
  [[nodiscard]] bool done() const noexcept { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

/// Blocking send of one frame; throws ShardUnavailableError on any short
/// write or peer reset.
void send_frame(int fd, Msg msg, std::string_view payload);

/// Receives one frame. timeout_ms < 0 blocks indefinitely; otherwise the
/// whole frame must arrive within the budget or ShardUnavailableError is
/// thrown. A clean EOF before any byte returns std::nullopt semantics via
/// Frame{kError, ""} — callers that care use recv_frame_or_eof.
[[nodiscard]] Frame recv_frame(int fd, int timeout_ms);

/// Like recv_frame but a clean EOF before the first byte returns false
/// (server idle loop: peer hung up between requests).
[[nodiscard]] bool recv_frame_or_eof(int fd, int timeout_ms, Frame& out);

// Payload codecs shared by client and host.
[[nodiscard]] std::string encode_snapshot(const svc::GraphSnapshot& snap);
[[nodiscard]] svc::SnapshotPtr decode_snapshot(std::string_view payload);
[[nodiscard]] std::string encode_batch(
    std::span<const svc::EdgeUpdate> batch);
[[nodiscard]] std::vector<svc::EdgeUpdate> decode_batch(
    std::string_view payload);
[[nodiscard]] std::string encode_publish(const svc::PublishResult& r);
[[nodiscard]] svc::PublishResult decode_publish(std::string_view payload);
[[nodiscard]] std::string encode_pairs(
    std::uint64_t epoch, std::span<const count::VertexPair> pairs);
[[nodiscard]] std::vector<count::VertexPair> decode_pairs(
    std::string_view payload, std::uint64_t& epoch_out);

}  // namespace wire

/// Creates, binds and listens on a Unix-domain socket at `path` (unlinking
/// any stale file first). Throws std::runtime_error on failure.
[[nodiscard]] int listen_unix(const std::string& path);

/// Connects to a Unix-domain socket with a connect timeout. Throws
/// ShardUnavailableError when the host is absent or slow to accept.
[[nodiscard]] int connect_unix(const std::string& path, int timeout_ms);

/// One client RPC: connect, send `msg`, await the reply within
/// `timeout_ms`, close. Throws ShardUnavailableError on any transport
/// failure (including an armed kTransportDrop / timed-out kTransportDelay)
/// and std::runtime_error when the host replied kError (the host-side
/// exception message — a *semantic* failure, not an availability one).
[[nodiscard]] std::string call_host(const std::string& socket_path,
                                    wire::Msg msg, std::string_view payload,
                                    int timeout_ms);

/// Serves framed requests on a connected fd until the peer closes or goes
/// idle past `idle_timeout_ms`. Every request is answered (kReply/kError);
/// host-side exceptions become kError replies, they never kill the server
/// loop. Used by bfc-shard-host and by in-process protocol tests.
void serve_connection(int fd, ShardHandle& shard, int idle_timeout_ms);

}  // namespace bfc::shard
