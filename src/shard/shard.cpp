#include "shard/shard.hpp"

#include <string>

#include "chk/validate.hpp"
#include "obs/metrics.hpp"

namespace bfc::shard {

LocalShard::LocalShard(int id, vidx_t n1, vidx_t n2, vidx_t lo, vidx_t hi)
    : id_(id), lo_(lo), hi_(hi), store_(n1, n2, id) {
  require(id >= 0, "LocalShard: id must be >= 0");
  require(0 <= lo && lo <= hi && hi <= n1,
          "LocalShard: owned range must satisfy 0 <= lo <= hi <= n1");
  if constexpr (obs::kMetricsEnabled) {
    // Bound once at construction so the per-shard family has a literal
    // "svc.shard." prefix (documented as a family in docs/telemetry.md)
    // and the publish hot path pays one pointer indirection, not a
    // registry lookup.
    publishes_ = &obs::Registry::instance().counter(
        "svc.shard." + std::to_string(id) + ".publishes");
  }
}

svc::PublishResult LocalShard::apply(std::span<const svc::EdgeUpdate> batch) {
  for (const svc::EdgeUpdate& up : batch)
    require(lo_ <= up.u && up.u < hi_,
            "LocalShard: update routed to the wrong shard (u=" +
                std::to_string(up.u) + " outside [" + std::to_string(lo_) +
                ", " + std::to_string(hi_) + ") of shard " +
                std::to_string(id_) + ")");
  svc::PublishResult result = store_.apply_batch(batch);
  if (publishes_ != nullptr) publishes_->increment();
  return result;
}

void LocalShard::restore(const std::string& path) {
  const bool full_range = lo_ == 0 && hi_ == store_.n1();
  store_.restore(path);
  const svc::SnapshotPtr snap = store_.current();
  if (full_range) {
    // A full-range shard IS the legacy unsharded store, and keeps its
    // semantics: the checkpoint's dimensions win (a legacy file is free to
    // change them) and the shard follows. restore() is writer-exclusive,
    // like SnapshotStore::restore, so nobody reads hi_ concurrently.
    hi_ = snap->graph.n1();
    return;
  }
  // The file passed every structural/CRC/recount check inside the store;
  // what only the shard layer can know is ownership: a checkpoint written
  // by a different shard (or a different partition) would smuggle in edges
  // this shard must not own.
  require(snap->graph.n1() >= hi_,
          "LocalShard: restored checkpoint is too small for the owned range");
  // Unconditional (not BFC_VALIDATE-gated): O(n1) over row_ptr is nothing
  // next to the counter rebuild restore() just did, and ownership is the
  // one invariant the store itself cannot check.
  chk::validate_shard_range(snap->graph, lo_, hi_);
}

}  // namespace bfc::shard
