// RemoteShard: the client half of the out-of-process shard seam. It
// implements ShardHandle over the transport.hpp protocol so the sharded
// store, the scatter-gather planner and the service cannot tell a process
// boundary from a LocalShard — except through healthy(), which is the
// whole point:
//
//   - every leg carries a per-call timeout (call_timeout_ms for control
//     messages, transfer_timeout_ms for graph transfers);
//   - idempotent reads (ping/epoch/pin/query kinds) retry with jittered
//     exponential backoff; apply/persist/restore never retry — a publish
//     must not be replayed by the transport when the outcome is unknown;
//   - a per-shard circuit breaker opens after `failure_threshold`
//     consecutive failed calls. While open, reads are served from the
//     last pinned snapshot (epoch-keyed cache, refreshed only on epoch
//     change) without touching the socket, and apply() fails fast with
//     ShardUnavailableError. After `open_cooldown_ms` the breaker goes
//     half-open and the next read probes the host; one success closes it.
//
// pin() therefore NEVER throws: a dead host degrades the shard to its
// last known epoch, ShardedSnapshotStore::view() records the staleness in
// ShardView::stale_mask, and the service downgrades fidelity — range
// isolation instead of query failure.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "shard/shard.hpp"
#include "shard/transport.hpp"
#include "util/rng.hpp"
#include "util/sync.hpp"

namespace bfc::obs {
class Counter;
class Gauge;
}  // namespace bfc::obs

namespace bfc::shard {

struct RemoteOptions {
  int call_timeout_ms = 500;       // control-message budget per leg
  int transfer_timeout_ms = 5000;  // pin/apply/persist/restore budget
  int max_attempts = 3;            // idempotent reads only
  int backoff_base_ms = 2;         // doubles per retry, plus jitter
  int failure_threshold = 3;       // consecutive failures to open
  int open_cooldown_ms = 100;      // open -> half-open probe interval
  std::uint64_t jitter_seed = 0x5eedULL;
};

/// Exported for gauges: svc.shard.<k>.circuit_state is 0/1/2.
enum class CircuitState : int { kClosed = 0, kHalfOpen = 1, kOpen = 2 };

class RemoteShard final : public ShardHandle {
 public:
  /// Dimensions and range mirror the host's; the constructor synthesizes
  /// an empty epoch-0 snapshot so pin() is total before first contact.
  RemoteShard(int id, vidx_t n1, vidx_t n2, vidx_t lo, vidx_t hi,
              std::string socket_path, RemoteOptions opts = {});

  svc::PublishResult apply(std::span<const svc::EdgeUpdate> batch) override;
  [[nodiscard]] svc::SnapshotPtr pin() const override;
  [[nodiscard]] std::uint64_t epoch() const override;
  void persist(const std::string& path) const override;
  void restore(const std::string& path) override;

  [[nodiscard]] int id() const noexcept override { return id_; }
  [[nodiscard]] vidx_t range_begin() const noexcept override { return lo_; }
  [[nodiscard]] vidx_t range_end() const noexcept override { return hi_; }
  [[nodiscard]] bool healthy() const noexcept override;

  [[nodiscard]] CircuitState circuit() const noexcept;

  /// Shard-local answers computed host-side (protocol coverage for the
  /// five query kinds; the service composes cross-shard answers from
  /// pinned snapshots instead). All are retried idempotent reads.
  [[nodiscard]] count_t query_global() const;
  [[nodiscard]] count_t query_tip_v1(vidx_t u) const;
  [[nodiscard]] count_t query_tip_v2(vidx_t v) const;
  [[nodiscard]] count_t query_edge_support(vidx_t u, vidx_t v) const;
  [[nodiscard]] std::vector<count::VertexPair> query_top_pairs(
      std::size_t k) const;

  /// One non-retried ping; true when the host answered with the expected
  /// identity. Used by the supervisor's health loop (which must see
  /// failures quickly, not after three backoffs).
  [[nodiscard]] bool probe() const noexcept;

 private:
  // One protocol call under the retry/backoff/circuit policy.
  std::string rpc(wire::Msg msg, std::string_view payload, bool idempotent,
                  int timeout_ms) const;
  bool admit_call() const;       // circuit gate; true = may touch socket
  void record_success() const;
  void record_failure() const;
  void set_state(CircuitState s) const BFC_REQUIRES(mu_);

  int id_;
  vidx_t n1_, n2_, lo_, hi_;
  std::string socket_;
  RemoteOptions opts_;

  mutable Mutex mu_{"shard.remote"};
  mutable CircuitState state_ BFC_GUARDED_BY(mu_) = CircuitState::kClosed;
  mutable int failures_ BFC_GUARDED_BY(mu_) = 0;
  mutable std::chrono::steady_clock::time_point opened_at_
      BFC_GUARDED_BY(mu_){};
  mutable Rng jitter_ BFC_GUARDED_BY(mu_);
  mutable svc::SnapshotPtr cached_ BFC_GUARDED_BY(mu_);

  obs::Counter* retries_ = nullptr;     // svc.remote.retries
  obs::Counter* timeouts_ = nullptr;    // svc.remote.timeouts
  obs::Counter* unavailable_ = nullptr; // svc.shard.<k>.unavailable
  obs::Gauge* circuit_gauge_ = nullptr; // svc.shard.<k>.circuit_state
};

}  // namespace bfc::shard
