#include "shard/supervisor.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <utility>

#include "obs/metrics.hpp"
#include "shard/transport.hpp"

namespace bfc::shard {

namespace {

// kEpoch against a freshly restarted host; 0 when even that fails (the
// caller still gets its on_restart, with the most conservative epoch).
std::uint64_t query_epoch(const std::string& socket, int timeout_ms) {
  try {
    const std::string reply =
        call_host(socket, wire::Msg::kEpoch, "", timeout_ms);
    wire::Cursor c(reply);
    return c.u64();
  } catch (...) {
    return 0;
  }
}

}  // namespace

ShardSupervisor::ShardSupervisor(SupervisorOptions opts) : opts_(opts) {}

ShardSupervisor::~ShardSupervisor() {
  stop_monitor();
  // Collect the doomed pids under the lock, but kill/reap OUTSIDE it:
  // waitpid blocks until the child exits, and holding mu_ through that
  // stalls any thread still probing or querying hosts.
  std::vector<pid_t> doomed;
  {
    const MutexLock lock(mu_);
    for (Host& h : hosts_) {
      if (h.pid <= 0) continue;
      doomed.push_back(h.pid);
      h.pid = -1;
    }
  }
  for (const pid_t pid : doomed) {
    ::kill(pid, SIGKILL);
    ::waitpid(pid, nullptr, 0);
  }
}

pid_t ShardSupervisor::spawn(const HostSpec& spec) {
  std::vector<std::string> args = {
      spec.binary,
      "--socket", spec.socket,
      "--shard",  std::to_string(spec.id),
      "--n1",     std::to_string(spec.n1),
      "--n2",     std::to_string(spec.n2),
      "--lo",     std::to_string(spec.lo),
      "--hi",     std::to_string(spec.hi)};
  if (!spec.snapshot.empty()) {
    args.emplace_back("--restore");
    args.push_back(spec.snapshot);
  }
  for (const std::string& a : spec.extra_args) args.push_back(a);

  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);

  const pid_t child = ::fork();
  require(child >= 0, "ShardSupervisor: fork failed");
  if (child == 0) {
    ::execv(argv[0], argv.data());
    // Exec failure: exit without running atexit handlers of the parent
    // image we still share.
    ::_exit(127);
  }
  return child;
}

bool ShardSupervisor::ping(const HostSpec& spec) const {
  try {
    const std::string reply =
        call_host(spec.socket, wire::Msg::kPing, "", opts_.probe_timeout_ms);
    wire::Cursor c(reply);
    const auto id = static_cast<int>(c.u64());
    const auto lo = static_cast<vidx_t>(c.u64());
    const auto hi = static_cast<vidx_t>(c.u64());
    return id == spec.id && lo == spec.lo && hi == spec.hi;
  } catch (...) {
    return false;
  }
}

void ShardSupervisor::wait_ready(const HostSpec& spec) const {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(opts_.startup_timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (ping(spec)) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  require(false, "ShardSupervisor: host for shard " +
                     std::to_string(spec.id) + " did not become ready on " +
                     spec.socket);
}

int ShardSupervisor::add_host(HostSpec spec) {
  const pid_t child = spawn(spec);
  try {
    wait_ready(spec);
  } catch (...) {
    ::kill(child, SIGKILL);
    ::waitpid(child, nullptr, 0);
    throw;
  }
  const MutexLock lock(mu_);
  hosts_.push_back(Host{std::move(spec), child, 0});
  return static_cast<int>(hosts_.size()) - 1;
}

void ShardSupervisor::set_snapshot(int k, std::string path) {
  const MutexLock lock(mu_);
  require(k >= 0 && static_cast<std::size_t>(k) < hosts_.size(),
          "ShardSupervisor: bad host index");
  hosts_[static_cast<std::size_t>(k)].spec.snapshot = std::move(path);
}

pid_t ShardSupervisor::pid(int k) const {
  const MutexLock lock(mu_);
  require(k >= 0 && static_cast<std::size_t>(k) < hosts_.size(),
          "ShardSupervisor: bad host index");
  return hosts_[static_cast<std::size_t>(k)].pid;
}

std::size_t ShardSupervisor::host_count() const {
  const MutexLock lock(mu_);
  return hosts_.size();
}

void ShardSupervisor::kill_host(int k, int sig) {
  const pid_t target = pid(k);
  require(target > 0, "ShardSupervisor: host not running");
  ::kill(target, sig);
}

bool ShardSupervisor::alive(int k) const {
  HostSpec spec;
  {
    const MutexLock lock(mu_);
    require(k >= 0 && static_cast<std::size_t>(k) < hosts_.size(),
            "ShardSupervisor: bad host index");
    spec = hosts_[static_cast<std::size_t>(k)].spec;
  }
  return ping(spec);
}

void ShardSupervisor::monitor_tick() {
  // Snapshot under the lock, operate outside it: a restart blocks for the
  // child's startup and must not hold mu_ against add_host/kill_host.
  std::size_t n;
  {
    const MutexLock lock(mu_);
    n = hosts_.size();
  }
  for (std::size_t k = 0; k < n; ++k) {
    HostSpec spec;
    pid_t p;
    {
      const MutexLock lock(mu_);
      spec = hosts_[k].spec;
      p = hosts_[k].pid;
    }
    if (p <= 0) continue;

    bool dead = false;
    int status = 0;
    if (::waitpid(p, &status, WNOHANG) == p) {
      dead = true;  // crash/SIGKILL: the child is reaped
    } else if (!ping(spec)) {
      // Alive but unresponsive. Tolerate a few misses (a long pin/apply
      // can monopolise the single-threaded host), then SIGKILL: a hung
      // host is indistinguishable from a dead range for its readers.
      // Decide under the lock, but reap outside it — waitpid blocks until
      // the child is gone, and mu_ must stay available to query threads.
      bool doomed = false;
      {
        const MutexLock lock(mu_);
        if (++hosts_[k].probe_failures >= opts_.probe_failures_to_kill) {
          hosts_[k].probe_failures = 0;
          doomed = true;
        }
      }
      if (doomed) {
        ::kill(p, SIGKILL);
        ::waitpid(p, nullptr, 0);
        dead = true;
      }
    } else {
      const MutexLock lock(mu_);
      hosts_[k].probe_failures = 0;
    }
    if (!dead) continue;

    // The range is quarantined (the RemoteShard's circuit is open or will
    // open on its next call). Restart from the last checkpoint.
    const pid_t fresh = spawn(spec);
    try {
      wait_ready(spec);
    } catch (...) {
      ::kill(fresh, SIGKILL);
      ::waitpid(fresh, nullptr, 0);
      {
        const MutexLock lock(mu_);
        hosts_[k].pid = -1;  // gave up; a later tick may be told to retry
      }
      continue;
    }
    {
      const MutexLock lock(mu_);
      hosts_[k].pid = fresh;
    }
    restarts_.fetch_add(1, std::memory_order_relaxed);
    BFC_COUNT_ADD("svc.supervisor.restarts", 1);
    if (on_restart_) {
      const std::uint64_t epoch =
          query_epoch(spec.socket, opts_.probe_timeout_ms);
      on_restart_(static_cast<int>(k), epoch);
    }
  }
}

void ShardSupervisor::start_monitor(RestartCallback on_restart) {
  require(!monitor_.joinable(), "ShardSupervisor: monitor already running");
  on_restart_ = std::move(on_restart);
  monitor_ = std::jthread([this](std::stop_token st) {
    while (!st.stop_requested()) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(opts_.health_interval_ms));
      if (st.stop_requested()) break;
      monitor_tick();
    }
  });
}

void ShardSupervisor::stop_monitor() {
  if (monitor_.joinable()) {
    monitor_.request_stop();
    monitor_.join();
  }
}

}  // namespace bfc::shard
