#include "shard/sharded_store.hpp"

#include <array>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "chk/checked_math.hpp"
#include "obs/metrics.hpp"
#include "shard/router.hpp"
#include "util/crc32.hpp"

namespace bfc::shard {
namespace {

// Manifest envelope for multi-shard checkpoints: the per-shard files are
// ordinary legacy-format SnapshotStore files (each individually CRC'd and
// recount-verified on restore); the manifest only binds the set together —
// how many shards, over which dimensions.
constexpr std::array<char, 8> kManifestMagic = {'B', 'F', 'C', 'S',
                                                'H', 'D', '0', '1'};

struct ManifestMeta {
  std::int32_t shards;
  vidx_t n1;
  vidx_t n2;
};
static_assert(sizeof(ManifestMeta) == 12, "manifest meta must pack to 12B");

std::string shard_file(const std::string& path, int k) {
  return path + ".shard" + std::to_string(k);
}

}  // namespace

ShardedSnapshotStore::ShardedSnapshotStore(vidx_t n1, vidx_t n2, int shards)
    : part_(n1, shards), n1_(n1), n2_(n2) {
  require(n2 >= 0, "ShardedSnapshotStore: n2 must be >= 0");
  // ShardView::stale_mask (and QueryResult::stale_shards) is a 64-bit
  // per-shard bitmap; a shard beyond bit 63 could fail without ever being
  // taggable, silently serving stale data as kExact. Refuse the layout.
  require(shards <= 64,
          "ShardedSnapshotStore: at most 64 shards (stale_mask is 64-bit)");
  auto map = std::make_shared<ShardMap>();
  map->shards.reserve(static_cast<std::size_t>(shards));
  for (int k = 0; k < shards; ++k)
    map->shards.push_back(
        std::make_shared<LocalShard>(k, n1, n2, part_.begin(k), part_.end(k)));
  map_store(std::move(map));
}

ShardedSnapshotStore::ShardMapPtr ShardedSnapshotStore::map_load() const {
#if defined(__SANITIZE_THREAD__)
  const MutexLock lock(map_mu_);
  return map_;
#else
  // acquire: pairs with the release in map_store so a loaded map's handles
  // are fully constructed (mirrors SnapshotStore::head_load).
  return map_.load(std::memory_order_acquire);
#endif
}

void ShardedSnapshotStore::map_store(ShardMapPtr map) {
#if defined(__SANITIZE_THREAD__)
  const MutexLock lock(map_mu_);
  map_ = std::move(map);
#else
  // release: publishes the fully built map (see map_load).
  map_.store(std::move(map), std::memory_order_release);
#endif
}

svc::PublishResult ShardedSnapshotStore::apply_batch(
    std::span<const svc::EdgeUpdate> batch) {
  const std::vector<std::vector<svc::EdgeUpdate>> buckets =
      ShardRouter(part_).bucket(batch);
  svc::PublishResult total;
  for (int k = 0; k < shard_count(); ++k) {
    const auto& bucket = buckets[static_cast<std::size_t>(k)];
    if (bucket.empty()) continue;
    const svc::PublishResult r = apply_to_shard(k, bucket);
    total.applied += r.applied;
    total.ignored += r.ignored;
    total.created = chk::checked_add(total.created, r.created);
    total.destroyed = chk::checked_add(total.destroyed, r.destroyed);
  }
  total.epoch = version();
  return total;
}

svc::PublishResult ShardedSnapshotStore::apply_to_shard(
    int k, std::span<const svc::EdgeUpdate> batch) {
  require(0 <= k && k < shard_count(),
          "ShardedSnapshotStore: shard index out of range");
  // No store-wide lock: the shard serialises its own publishes, and writers
  // on different shards proceed fully in parallel.
  const ShardMapPtr map = map_load();
  svc::PublishResult result = map->shards[static_cast<std::size_t>(k)]->apply(
      batch);
  // relaxed: version() is a monotone freshness scalar (see header).
  version_.fetch_add(1, std::memory_order_relaxed);
  return result;
}

ShardViewPtr ShardedSnapshotStore::view() const {
  const ShardMapPtr map = map_load();
  auto v = std::make_shared<ShardView>();
  v->shards.reserve(map->shards.size());
  for (std::size_t k = 0; k < map->shards.size(); ++k) {
    const ShardHandlePtr& h = map->shards[k];
    v->shards.push_back(h->pin());
    // healthy() AFTER pin(): a RemoteShard discovers a dead host during
    // the pin, so probing first would blame a healthy snapshot on a shard
    // that only just failed (or miss a failure by one view).
    // k < 64 always holds (constructor refuses wider layouts), so every
    // unhealthy shard is representable in the mask.
    if (!h->healthy()) v->stale_mask |= std::uint64_t{1} << k;
  }
  v->version = version();
  v->signature = ShardView::signature_of(v->shards);
  return v;
}

svc::SnapshotPtr ShardedSnapshotStore::shard_snapshot(int k) const {
  require(0 <= k && k < shard_count(),
          "ShardedSnapshotStore: shard index out of range");
  return map_load()->shards[static_cast<std::size_t>(k)]->pin();
}

std::uint64_t ShardedSnapshotStore::epoch() const {
  const ShardMapPtr map = map_load();
  std::uint64_t m = 0;
  for (const ShardHandlePtr& h : map->shards) m = std::max(m, h->epoch());
  return m;
}

ShardHandlePtr ShardedSnapshotStore::shard(int k) const {
  require(0 <= k && k < shard_count(),
          "ShardedSnapshotStore: shard index out of range");
  return map_load()->shards[static_cast<std::size_t>(k)];
}

void ShardedSnapshotStore::swap_shard(int k, ShardHandlePtr handle) {
  require(handle != nullptr, "ShardedSnapshotStore: null shard handle");
  require(0 <= k && k < shard_count(),
          "ShardedSnapshotStore: shard index out of range");
  require(handle->id() == k && handle->range_begin() == part_.begin(k) &&
              handle->range_end() == part_.end(k),
          "ShardedSnapshotStore: replacement shard id/range mismatch");
  const MutexLock lock(swap_mu_);
  auto next = std::make_shared<ShardMap>(*map_load());
  next->shards[static_cast<std::size_t>(k)] = std::move(handle);
  map_store(std::move(next));
}

const svc::SnapshotStore* ShardedSnapshotStore::local_store(int k) const {
  require(0 <= k && k < shard_count(),
          "ShardedSnapshotStore: shard index out of range");
  const ShardMapPtr map = map_load();
  const auto* local = dynamic_cast<const LocalShard*>(
      map->shards[static_cast<std::size_t>(k)].get());
  return local != nullptr ? &local->store() : nullptr;
}

void ShardedSnapshotStore::persist(const std::string& path) const {
  const ShardMapPtr map = map_load();
  if (shard_count() == 1) {
    // Drop-in legacy format: a 1-shard store's checkpoint is exactly a
    // SnapshotStore checkpoint.
    map->shards[0]->persist(path);
    return;
  }
  // Shard files first (each write-then-rename on its own), manifest last:
  // a crash mid-persist leaves either the old manifest (pointing at the
  // old, still-valid shard files it was written with — shard files are
  // only replaced atomically) or no new manifest at all.
  for (int k = 0; k < shard_count(); ++k)
    map->shards[static_cast<std::size_t>(k)]->persist(shard_file(path, k));

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot write shard manifest: " + tmp);
    out.write(kManifestMagic.data(), kManifestMagic.size());
    const ManifestMeta meta{shard_count(), n1(), n2()};
    const std::uint32_t crc = crc32(&meta, sizeof meta);
    out.write(reinterpret_cast<const char*>(&crc), sizeof crc);
    out.write(reinterpret_cast<const char*>(&meta), sizeof meta);
    out.flush();
    if (!out) throw std::runtime_error("write failed for manifest: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("cannot publish shard manifest (rename " + tmp +
                             " -> " + path + " failed)");
  }
  BFC_COUNT_ADD("svc.snapshots_persisted", 1);
}

void ShardedSnapshotStore::restore(const std::string& path) {
  if (shard_count() == 1) {
    // Restore into a FRESH full-range shard and only then swap the map, so
    // a corrupt file leaves this store untouched — and so the restored
    // dimensions (which a legacy checkpoint is free to change) rebuild the
    // partition instead of fighting it. The layout rewrite below leans on
    // restore()'s documented full exclusivity: no concurrent writers AND no
    // concurrent partition()/ShardRouter readers (see header).
    auto reborn =
        std::make_shared<LocalShard>(0, n1(), n2(), vidx_t{0}, n1());
    reborn->restore(path);  // throws on any corruption, nothing changed yet
    const svc::SnapshotPtr snap = reborn->pin();
    const MutexLock lock(swap_mu_);
    part_ = RangePartition(snap->graph.n1(), 1);
    n1_.store(snap->graph.n1(), std::memory_order_relaxed);  // see n1()
    n2_.store(snap->graph.n2(), std::memory_order_relaxed);
    auto next = std::make_shared<ShardMap>();
    next->shards.push_back(std::move(reborn));
    map_store(std::move(next));
    version_.fetch_add(1, std::memory_order_relaxed);  // relaxed: see header
    return;
  }

  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open shard manifest: " + path);
  std::array<char, 8> magic{};
  in.read(magic.data(), magic.size());
  if (static_cast<std::size_t>(in.gcount()) != magic.size() ||
      std::memcmp(magic.data(), kManifestMagic.data(),
                  kManifestMagic.size()) != 0)
    throw std::runtime_error("shard manifest " + path + ": bad magic");
  std::uint32_t crc = 0;
  in.read(reinterpret_cast<char*>(&crc), sizeof crc);
  ManifestMeta meta{};
  in.read(reinterpret_cast<char*>(&meta), sizeof meta);
  if (!in) throw std::runtime_error("shard manifest " + path + ": truncated");
  if (crc32(&meta, sizeof meta) != crc)
    throw std::runtime_error("shard manifest " + path + ": meta CRC mismatch");
  if (meta.shards != shard_count() || meta.n1 != n1() || meta.n2 != n2())
    throw std::runtime_error(
        "shard manifest " + path + ": layout mismatch (file has " +
        std::to_string(meta.shards) + " shards over " +
        std::to_string(meta.n1) + "x" + std::to_string(meta.n2) +
        ", store has " + std::to_string(shard_count()) + " over " +
        std::to_string(n1()) + "x" + std::to_string(n2()) + ")");

  // Restore every shard into a fresh LocalShard before touching the live
  // map: the swap happens only after all N files validated, so a torn or
  // corrupt shard file cannot leave the store half-restored.
  auto next = std::make_shared<ShardMap>();
  next->shards.reserve(static_cast<std::size_t>(shard_count()));
  for (int k = 0; k < shard_count(); ++k) {
    auto reborn = std::make_shared<LocalShard>(k, n1(), n2(), part_.begin(k),
                                               part_.end(k));
    reborn->restore(shard_file(path, k));
    next->shards.push_back(std::move(reborn));
  }
  const MutexLock lock(swap_mu_);
  map_store(std::move(next));
  version_.fetch_add(static_cast<std::uint64_t>(shard_count()),
                     std::memory_order_relaxed);  // relaxed: see header
  BFC_COUNT_ADD("svc.snapshots_restored", 1);
}

}  // namespace bfc::shard
