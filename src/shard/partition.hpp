// Range partition of the V1 side across N shards. Shard k owns the
// contiguous vertex interval [begin(k), end(k)); intervals are balanced to
// within one vertex and cover [0, n1) exactly, so ownership is a two-ops
// arithmetic question rather than a lookup table. Contiguity is what makes
// the scatter-gather merge cheap: for any two shards i < j every owned
// vertex of i precedes every owned vertex of j, so a cross-shard V1 pair
// (u1, u2) with owner(u1) < owner(u2) already satisfies u1 < u2 — the
// canonical pair order of count::VertexPair — with no per-pair min/max.
#pragma once

#include "util/common.hpp"

namespace bfc::shard {

class RangePartition {
 public:
  /// Partitions [0, n1) into `shards` balanced contiguous ranges. With
  /// shards > n1 the trailing shards own empty ranges — legal, and exactly
  /// what a 7-shard parity test over a 5-vertex side exercises.
  RangePartition(vidx_t n1, int shards) : n1_(n1), shards_(shards) {
    require(n1 >= 0, "RangePartition: n1 must be >= 0");
    require(shards >= 1, "RangePartition: shards must be >= 1");
    base_ = n1 / shards;
    extra_ = n1 % shards;  // the first `extra_` shards own base_+1 vertices
  }

  [[nodiscard]] vidx_t n1() const noexcept { return n1_; }
  [[nodiscard]] int shards() const noexcept { return shards_; }

  /// First vertex owned by shard k.
  [[nodiscard]] vidx_t begin(int k) const noexcept {
    const auto kk = static_cast<vidx_t>(k);
    return kk < extra_ ? kk * (base_ + 1) : extra_ * (base_ + 1) +
                                                (kk - extra_) * base_;
  }
  /// One past the last vertex owned by shard k.
  [[nodiscard]] vidx_t end(int k) const noexcept { return begin(k + 1); }

  /// The shard owning V1 vertex u.
  [[nodiscard]] int owner(vidx_t u) const noexcept {
    const vidx_t split = extra_ * (base_ + 1);  // first vertex of the thin run
    if (u < split) return static_cast<int>(u / (base_ + 1));
    // base_ can be 0 only when u < split (every vertex is in the thick run),
    // so the division below never sees a zero divisor for a valid u.
    return static_cast<int>(extra_ + (u - split) / base_);
  }

  [[nodiscard]] bool operator==(const RangePartition&) const = default;

 private:
  vidx_t n1_;
  int shards_;
  vidx_t base_ = 0;   // vertices per shard, rounded down
  vidx_t extra_ = 0;  // shards owning one extra vertex
};

}  // namespace bfc::shard
