#include "shard/remote.hpp"

#include <thread>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/spans.hpp"

namespace bfc::shard {

RemoteShard::RemoteShard(int id, vidx_t n1, vidx_t n2, vidx_t lo, vidx_t hi,
                         std::string socket_path, RemoteOptions opts)
    : id_(id),
      n1_(n1),
      n2_(n2),
      lo_(lo),
      hi_(hi),
      socket_(std::move(socket_path)),
      opts_(opts),
      jitter_(opts.jitter_seed + static_cast<std::uint64_t>(id)) {
  require(id >= 0, "RemoteShard: id must be >= 0");
  require(0 <= lo && lo <= hi && hi <= n1,
          "RemoteShard: owned range must satisfy 0 <= lo <= hi <= n1");
  // Epoch 0 = the empty graph over the full dimensions, matching a
  // freshly started host. pin() is total from the first instant.
  auto empty = std::make_shared<svc::GraphSnapshot>();
  empty->graph = graph::BipartiteGraph::from_edges(n1, n2, {});
  {
    const MutexLock lock(mu_);
    cached_ = std::move(empty);
  }
  if constexpr (obs::kMetricsEnabled) {
    auto& reg = obs::Registry::instance();
    retries_ = &reg.counter("svc.remote.retries");
    timeouts_ = &reg.counter("svc.remote.timeouts");
    // Per-shard families: same literal "svc.shard." prefix discipline as
    // LocalShard's publishes counter (documented in docs/telemetry.md).
    unavailable_ = &reg.counter("svc.shard." + std::to_string(id) +
                                ".unavailable");
    circuit_gauge_ = &reg.gauge("svc.shard." + std::to_string(id) +
                                ".circuit_state");
    circuit_gauge_->set(0.0);
  }
}

void RemoteShard::set_state(CircuitState s) const {
  state_ = s;
  if (circuit_gauge_ != nullptr)
    circuit_gauge_->set(static_cast<double>(static_cast<int>(s)));
}

bool RemoteShard::admit_call() const {
  const MutexLock lock(mu_);
  if (state_ != CircuitState::kOpen) return true;
  const auto now = std::chrono::steady_clock::now();
  if (now - opened_at_ <
      std::chrono::milliseconds(opts_.open_cooldown_ms))
    return false;
  set_state(CircuitState::kHalfOpen);  // one probe may pass
  return true;
}

void RemoteShard::record_success() const {
  const MutexLock lock(mu_);
  failures_ = 0;
  if (state_ != CircuitState::kClosed) set_state(CircuitState::kClosed);
}

void RemoteShard::record_failure() const {
  if (unavailable_ != nullptr) unavailable_->increment();
  const MutexLock lock(mu_);
  ++failures_;
  if (state_ == CircuitState::kHalfOpen ||
      failures_ >= opts_.failure_threshold) {
    set_state(CircuitState::kOpen);
    opened_at_ = std::chrono::steady_clock::now();
  }
}

std::string RemoteShard::rpc(wire::Msg msg, std::string_view payload,
                             bool idempotent, int timeout_ms) const {
  // Transport spans root their own traces, like svc.shard.publish: an RPC
  // belongs to whatever query is running, but the query's context doesn't
  // thread through the ShardHandle seam, and cross-process legs are exactly
  // what a post-mortem wants to see unsampled.
  obs::TraceContext ctx;
  if (obs::SpanLog::enabled()) ctx = obs::TraceContext::root();
  obs::Span span(ctx, "svc.remote.call");
  span.tag("shard", std::to_string(id_));
  span.tag("msg", std::to_string(static_cast<int>(msg)));
  if (!admit_call()) {
    if (unavailable_ != nullptr) unavailable_->increment();
    span.tag("outcome", "open");
    throw ShardUnavailableError("shard " + std::to_string(id_) +
                                ": circuit open");
  }
  const int attempts = idempotent ? opts_.max_attempts : 1;
  for (int a = 0;; ++a) {
    try {
      std::string reply = call_host(socket_, msg, payload, timeout_ms);
      record_success();
      span.tag("outcome", "ok");
      return reply;
    } catch (const ShardTimeoutError&) {
      if (timeouts_ != nullptr) timeouts_->increment();
      if (a + 1 >= attempts) {
        record_failure();
        span.tag("outcome", "timeout");
        throw;
      }
    } catch (const ShardUnavailableError&) {
      if (a + 1 >= attempts) {
        record_failure();
        span.tag("outcome", "unavailable");
        throw;
      }
    }
    // Jittered exponential backoff: base·2^a plus up to one extra base.
    int sleep_ms;
    {
      const MutexLock lock(mu_);
      const auto jitter = static_cast<int>(jitter_.bounded(
          static_cast<std::uint64_t>(opts_.backoff_base_ms) + 1));
      sleep_ms = (opts_.backoff_base_ms << a) + jitter;
    }
    if (retries_ != nullptr) retries_->increment();
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
  }
}

svc::PublishResult RemoteShard::apply(
    std::span<const svc::EdgeUpdate> batch) {
  for (const svc::EdgeUpdate& up : batch)
    require(lo_ <= up.u && up.u < hi_,
            "RemoteShard: update routed to the wrong shard (u=" +
                std::to_string(up.u) + " outside [" + std::to_string(lo_) +
                ", " + std::to_string(hi_) + ") of shard " +
                std::to_string(id_) + ")");
  // Publishes are not idempotent at the transport level: when the reply is
  // lost the batch may or may not have landed, and a blind replay would
  // publish a second epoch. One attempt; the caller owns recovery (the
  // chaos bench replays whole rounds after a supervised restore, where
  // replay from the restored state is exact by construction).
  const std::string reply = rpc(wire::Msg::kApply, wire::encode_batch(batch),
                                /*idempotent=*/false,
                                opts_.transfer_timeout_ms);
  return wire::decode_publish(reply);
}

svc::SnapshotPtr RemoteShard::pin() const {
  std::uint64_t cached_epoch = 0;
  {
    const MutexLock lock(mu_);
    cached_epoch = cached_->epoch;
  }
  try {
    // The reply must outlive the Cursor: Cursor is a view, not an owner.
    const std::string reply = rpc(wire::Msg::kEpoch, "", /*idempotent=*/true,
                                  opts_.call_timeout_ms);
    wire::Cursor c(reply);
    const std::uint64_t remote_epoch = c.u64();
    if (remote_epoch != cached_epoch) {
      const std::string blob = rpc(wire::Msg::kPin, "", /*idempotent=*/true,
                                   opts_.transfer_timeout_ms);
      svc::SnapshotPtr fresh = wire::decode_snapshot(blob);
      const MutexLock lock(mu_);
      cached_ = fresh;
    }
  } catch (const ShardUnavailableError&) {
    // Serve the last known epoch; the view layer tags the range stale via
    // healthy(). The breaker/unavailable accounting happened inside rpc().
  } catch (const std::exception&) {
    // Host kError replies and corrupt snapshot blobs surface as plain
    // std::exception (runtime_error from rpc(), decode failures from
    // decode_snapshot/read_binary). Those bypass rpc()'s breaker
    // accounting, so record the failure here — pin() never throws; the
    // range degrades to its last known epoch like any transport failure.
    record_failure();
  }
  const MutexLock lock(mu_);
  return cached_;
}

std::uint64_t RemoteShard::epoch() const {
  try {
    const std::string reply = rpc(wire::Msg::kEpoch, "", /*idempotent=*/true,
                                  opts_.call_timeout_ms);
    wire::Cursor c(reply);
    return c.u64();
  } catch (const ShardUnavailableError&) {
    // Breaker accounting happened inside rpc().
  } catch (const std::exception&) {
    record_failure();  // host kError / short payload — see pin()
  }
  const MutexLock lock(mu_);
  return cached_->epoch;
}

void RemoteShard::persist(const std::string& path) const {
  wire::Payload p;
  p.str(path);
  (void)rpc(wire::Msg::kPersist, p.view(), /*idempotent=*/false,
            opts_.transfer_timeout_ms);
}

void RemoteShard::restore(const std::string& path) {
  wire::Payload p;
  p.str(path);
  const std::string reply = rpc(wire::Msg::kRestore, p.view(),
                                /*idempotent=*/false,
                                opts_.transfer_timeout_ms);
  wire::Cursor c(reply);
  const std::uint64_t restored_epoch = c.u64();
  // Drop the cache so the next pin() transfers the restored graph even
  // when the restored epoch collides with the cached one.
  auto empty = std::make_shared<svc::GraphSnapshot>();
  empty->graph = graph::BipartiteGraph::from_edges(n1_, n2_, {});
  const MutexLock lock(mu_);
  cached_ = std::move(empty);
  (void)restored_epoch;
}

bool RemoteShard::healthy() const noexcept {
  const MutexLock lock(mu_);
  return state_ == CircuitState::kClosed;
}

CircuitState RemoteShard::circuit() const noexcept {
  const MutexLock lock(mu_);
  return state_;
}

count_t RemoteShard::query_global() const {
  const std::string reply = rpc(wire::Msg::kGlobal, "", /*idempotent=*/true,
                                opts_.call_timeout_ms);
  wire::Cursor c(reply);
  (void)c.u64();  // epoch
  return c.i64();
}

count_t RemoteShard::query_tip_v1(vidx_t u) const {
  wire::Payload p;
  p.u64(static_cast<std::uint64_t>(u));
  const std::string reply = rpc(wire::Msg::kTipV1, p.view(),
                                /*idempotent=*/true,
                                opts_.transfer_timeout_ms);
  wire::Cursor c(reply);
  (void)c.u64();
  return c.i64();
}

count_t RemoteShard::query_tip_v2(vidx_t v) const {
  wire::Payload p;
  p.u64(static_cast<std::uint64_t>(v));
  const std::string reply = rpc(wire::Msg::kTipV2, p.view(),
                                /*idempotent=*/true,
                                opts_.transfer_timeout_ms);
  wire::Cursor c(reply);
  (void)c.u64();
  return c.i64();
}

count_t RemoteShard::query_edge_support(vidx_t u, vidx_t v) const {
  wire::Payload p;
  p.u64(static_cast<std::uint64_t>(u));
  p.u64(static_cast<std::uint64_t>(v));
  const std::string reply = rpc(wire::Msg::kEdgeSupport, p.view(),
                                /*idempotent=*/true,
                                opts_.transfer_timeout_ms);
  wire::Cursor c(reply);
  (void)c.u64();
  return c.i64();
}

std::vector<count::VertexPair> RemoteShard::query_top_pairs(
    std::size_t k) const {
  wire::Payload p;
  p.u64(k);
  const std::string reply = rpc(wire::Msg::kTopPairs, p.view(),
                                /*idempotent=*/true,
                                opts_.transfer_timeout_ms);
  std::uint64_t epoch = 0;
  return wire::decode_pairs(reply, epoch);
}

bool RemoteShard::probe() const noexcept {
  try {
    const std::string reply =
        call_host(socket_, wire::Msg::kPing, "", opts_.call_timeout_ms);
    wire::Cursor c(reply);
    const auto host_id = static_cast<int>(c.u64());
    const auto host_lo = static_cast<vidx_t>(c.u64());
    const auto host_hi = static_cast<vidx_t>(c.u64());
    const bool ok = host_id == id_ && host_lo == lo_ && host_hi == hi_;
    if (ok)
      record_success();
    else
      record_failure();
    return ok;
  } catch (...) {
    record_failure();
    return false;
  }
}

}  // namespace bfc::shard
