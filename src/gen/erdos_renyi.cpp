#include <cmath>
#include <unordered_set>

#include "chk/validate.hpp"
#include "gen/generators.hpp"
#include "sparse/coo.hpp"

namespace bfc::gen {

graph::BipartiteGraph erdos_renyi(vidx_t n1, vidx_t n2, double p,
                                  std::uint64_t seed) {
  require(n1 >= 0 && n2 >= 0, "erdos_renyi: negative dimension");
  require(p >= 0.0 && p <= 1.0, "erdos_renyi: p outside [0,1]");
  sparse::CooBuilder builder(n1, n2);
  const auto cells = static_cast<std::uint64_t>(n1) *
                     static_cast<std::uint64_t>(n2);
  if (cells == 0 || p == 0.0) {
    graph::BipartiteGraph g(builder.build());
    BFC_VALIDATE(g);
    return g;
  }

  Rng rng(seed);
  if (p >= 1.0) {
    for (vidx_t r = 0; r < n1; ++r)
      for (vidx_t c = 0; c < n2; ++c) builder.add(r, c);
    graph::BipartiteGraph g(builder.build());
    BFC_VALIDATE(g);
    return g;
  }

  // Geometric skipping over the linearised cell index: the gap to the next
  // selected cell is Geometric(p).
  const double log1mp = std::log1p(-p);
  std::uint64_t idx = 0;
  while (idx < cells) {
    const double u = rng.uniform();
    const auto skip = static_cast<std::uint64_t>(
        std::floor(std::log1p(-u) / log1mp));
    if (skip >= cells - idx) break;
    idx += skip;
    builder.add(static_cast<vidx_t>(idx / static_cast<std::uint64_t>(n2)),
                static_cast<vidx_t>(idx % static_cast<std::uint64_t>(n2)));
    ++idx;
  }
  graph::BipartiteGraph g(builder.build());
  BFC_VALIDATE(g);
  return g;
}

graph::BipartiteGraph erdos_renyi_m(vidx_t n1, vidx_t n2, offset_t m,
                                    std::uint64_t seed) {
  require(n1 > 0 && n2 > 0, "erdos_renyi_m: empty vertex set");
  const auto cells = static_cast<std::uint64_t>(n1) *
                     static_cast<std::uint64_t>(n2);
  require(m >= 0 && static_cast<std::uint64_t>(m) <= cells,
          "erdos_renyi_m: more edges than cells");

  Rng rng(seed);
  std::unordered_set<std::uint64_t> chosen;
  chosen.reserve(static_cast<std::size_t>(m) * 2);
  while (chosen.size() < static_cast<std::size_t>(m))
    chosen.insert(rng.bounded(cells));

  sparse::CooBuilder builder(n1, n2);
  builder.reserve(chosen.size());
  for (const std::uint64_t idx : chosen)
    builder.add(static_cast<vidx_t>(idx / static_cast<std::uint64_t>(n2)),
                static_cast<vidx_t>(idx % static_cast<std::uint64_t>(n2)));
  graph::BipartiteGraph g(builder.build());
  BFC_VALIDATE(g);
  return g;
}

}  // namespace bfc::gen
