#include "gen/konect_like.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "gen/generators.hpp"

namespace bfc::gen {

const std::vector<KonectPreset>& konect_presets() {
  // |V1|, |V2|, |E|, Ξ_G exactly as printed in the paper's Fig. 9. The
  // power-law exponents are chosen to give the heavy-tailed degree profiles
  // typical of each collection type (authorship and affiliation networks
  // are close to alpha ≈ 0.6-0.8).
  static const std::vector<KonectPreset> presets = {
      {"arXiv cond-mat", 16726, 22015, 58595, 0.55, 0.55, 70549},
      {"Producers", 48833, 138844, 207268, 0.65, 0.70, 266983},
      {"Record Labels", 168337, 18421, 233286, 0.70, 0.75, 1086886},
      {"Occupations", 127577, 101730, 250945, 0.75, 0.75, 24509245},
      {"GitHub", 56519, 120867, 440237, 0.75, 0.75, 50894505},
  };
  return presets;
}

const KonectPreset& konect_preset(const std::string& name) {
  for (const auto& preset : konect_presets())
    if (preset.name == name) return preset;
  throw std::invalid_argument("unknown KONECT preset: " + name);
}

graph::BipartiteGraph make_konect_like(const KonectPreset& preset,
                                       double scale, std::uint64_t seed) {
  require(scale > 0.0 && scale <= 1.0, "make_konect_like: scale not in (0,1]");
  const auto n1 = std::max<vidx_t>(
      2, static_cast<vidx_t>(std::lround(preset.n1 * scale)));
  const auto n2 = std::max<vidx_t>(
      2, static_cast<vidx_t>(std::lround(preset.n2 * scale)));
  const auto edges = std::max<offset_t>(
      1, static_cast<offset_t>(std::llround(
             static_cast<double>(preset.edges) * scale)));
  return chung_lu(power_law_weights(n1, preset.alpha_v1),
                  power_law_weights(n2, preset.alpha_v2), edges, seed);
}

}  // namespace bfc::gen
