#include "chk/validate.hpp"
#include "gen/generators.hpp"
#include "sparse/coo.hpp"
#include "sparse/ops.hpp"

namespace bfc::gen {

graph::BipartiteGraph block_community(const BlockCommunitySpec& spec,
                                      std::uint64_t seed) {
  require(spec.blocks >= 0 && spec.block_rows >= 0 && spec.block_cols >= 0 &&
              spec.extra_rows >= 0 && spec.extra_cols >= 0,
          "block_community: negative sizes");
  require(spec.p_in >= 0.0 && spec.p_in <= 1.0 && spec.p_out >= 0.0 &&
              spec.p_out <= 1.0,
          "block_community: probabilities outside [0,1]");
  const vidx_t n1 = spec.blocks * spec.block_rows + spec.extra_rows;
  const vidx_t n2 = spec.blocks * spec.block_cols + spec.extra_cols;

  Rng rng(seed);
  // Background edges across the whole matrix.
  const graph::BipartiteGraph background =
      erdos_renyi(n1, n2, spec.p_out, rng.next());

  sparse::CooBuilder builder(n1, n2);
  for (const auto& [u, v] : sparse::edges(background.csr())) builder.add(u, v);

  // Dense diagonal blocks.
  for (vidx_t b = 0; b < spec.blocks; ++b) {
    const graph::BipartiteGraph block =
        erdos_renyi(spec.block_rows, spec.block_cols, spec.p_in, rng.next());
    const vidx_t row0 = b * spec.block_rows;
    const vidx_t col0 = b * spec.block_cols;
    for (const auto& [u, v] : sparse::edges(block.csr()))
      builder.add(row0 + u, col0 + v);
  }
  graph::BipartiteGraph g(builder.build());
  BFC_VALIDATE(g);
  return g;
}

}  // namespace bfc::gen
