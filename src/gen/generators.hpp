// Synthetic bipartite graph generators. These are the stand-ins for the
// paper's KONECT datasets (DESIGN.md §4): Erdős–Rényi for uniform sparsity
// sweeps, Chung–Lu for heavy-tailed KONECT-like degree profiles, the
// configuration model for exact degree sequences, and a planted
// block-community model that gives the peeling algorithms dense regions to
// find.
#pragma once

#include <vector>

#include "graph/bipartite_graph.hpp"
#include "util/common.hpp"
#include "util/rng.hpp"

namespace bfc::gen {

/// G(n1, n2, p): each of the n1·n2 cells is an edge independently with
/// probability p. Uses geometric skipping, O(|E|) expected time.
[[nodiscard]] graph::BipartiteGraph erdos_renyi(vidx_t n1, vidx_t n2, double p,
                                                std::uint64_t seed);

/// G(n1, n2, m): exactly m distinct edges sampled uniformly at random.
[[nodiscard]] graph::BipartiteGraph erdos_renyi_m(vidx_t n1, vidx_t n2,
                                                  offset_t m,
                                                  std::uint64_t seed);

/// Chung–Lu style expected-degree model: edges are sampled by drawing
/// endpoints proportionally to the weight vectors until `target_edges`
/// distinct edges exist (the standard "fast Chung–Lu" approximation).
[[nodiscard]] graph::BipartiteGraph chung_lu(
    const std::vector<double>& weights_v1,
    const std::vector<double>& weights_v2, offset_t target_edges,
    std::uint64_t seed);

/// Power-law weight vector w_i ∝ (i+1)^(-alpha), normalised to sum 1.
[[nodiscard]] std::vector<double> power_law_weights(vidx_t n, double alpha);

/// Configuration model over exact degree sequences (sums must match).
/// Duplicate stub pairings are retried a bounded number of times and then
/// dropped, so realised degrees can fall slightly below the request — the
/// usual simple-graph projection.
[[nodiscard]] graph::BipartiteGraph configuration_model(
    const std::vector<offset_t>& degrees_v1,
    const std::vector<offset_t>& degrees_v2, std::uint64_t seed);

/// Planted community structure: `blocks` diagonal blocks of the given side
/// lengths with in-block density p_in, plus background density p_out
/// everywhere. Dense blocks contain butterflies at a much higher rate, so
/// k-tip / k-wing peeling recovers them.
struct BlockCommunitySpec {
  vidx_t block_rows = 0;    // V1 vertices per block
  vidx_t block_cols = 0;    // V2 vertices per block
  vidx_t blocks = 0;        // number of planted blocks
  vidx_t extra_rows = 0;    // background-only V1 vertices (no block)
  vidx_t extra_cols = 0;    // background-only V2 vertices (no block)
  double p_in = 0.5;        // density inside a block
  double p_out = 0.001;     // background density
};
[[nodiscard]] graph::BipartiteGraph block_community(
    const BlockCommunitySpec& spec, std::uint64_t seed);

/// Bipartite preferential attachment: V1 vertices arrive one at a time and
/// attach `edges_per_v1` distinct edges, each endpoint drawn from existing
/// V2 endpoints with probability ∝ degree (25% uniform mix-in). Produces
/// the "rich get richer" hubs typical of affiliation networks.
[[nodiscard]] graph::BipartiteGraph preferential_attachment(
    vidx_t n1, vidx_t n2, vidx_t edges_per_v1, std::uint64_t seed);

}  // namespace bfc::gen
