#include <cmath>
#include <unordered_set>

#include "gen/discrete_sampler.hpp"
#include "chk/validate.hpp"
#include "gen/generators.hpp"
#include "sparse/coo.hpp"

namespace bfc::gen {

std::vector<double> power_law_weights(vidx_t n, double alpha) {
  require(n >= 0, "power_law_weights: negative n");
  require(alpha >= 0.0, "power_law_weights: negative alpha");
  std::vector<double> w(static_cast<std::size_t>(n));
  double total = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    w[i] = std::pow(static_cast<double>(i + 1), -alpha);
    total += w[i];
  }
  for (double& x : w) x /= total;
  return w;
}

graph::BipartiteGraph chung_lu(const std::vector<double>& weights_v1,
                               const std::vector<double>& weights_v2,
                               offset_t target_edges, std::uint64_t seed) {
  const auto n1 = static_cast<vidx_t>(weights_v1.size());
  const auto n2 = static_cast<vidx_t>(weights_v2.size());
  require(n1 > 0 && n2 > 0, "chung_lu: empty vertex set");
  const auto cells = static_cast<std::uint64_t>(n1) *
                     static_cast<std::uint64_t>(n2);
  require(target_edges >= 0 &&
              static_cast<std::uint64_t>(target_edges) <= cells,
          "chung_lu: more edges than cells");

  const DiscreteSampler side1(weights_v1);
  const DiscreteSampler side2(weights_v2);
  Rng rng(seed);

  std::unordered_set<std::uint64_t> chosen;
  chosen.reserve(static_cast<std::size_t>(target_edges) * 2);

  // Rejection loop: heavy-head weight vectors make collisions common near
  // full saturation, so cap the attempts at a generous multiple and accept
  // a slightly smaller graph if the distribution cannot fill the target.
  const std::uint64_t max_attempts =
      64 * static_cast<std::uint64_t>(target_edges) + 1024;
  std::uint64_t attempts = 0;
  while (chosen.size() < static_cast<std::size_t>(target_edges) &&
         attempts < max_attempts) {
    ++attempts;
    const vidx_t u = side1.sample(rng);
    const vidx_t v = side2.sample(rng);
    chosen.insert(static_cast<std::uint64_t>(u) *
                      static_cast<std::uint64_t>(n2) +
                  static_cast<std::uint64_t>(v));
  }

  sparse::CooBuilder builder(n1, n2);
  builder.reserve(chosen.size());
  for (const std::uint64_t idx : chosen)
    builder.add(static_cast<vidx_t>(idx / static_cast<std::uint64_t>(n2)),
                static_cast<vidx_t>(idx % static_cast<std::uint64_t>(n2)));
  graph::BipartiteGraph g(builder.build());
  BFC_VALIDATE(g);
  return g;
}

}  // namespace bfc::gen
