#include <algorithm>
#include <cmath>

#include "chk/validate.hpp"
#include "gen/generators.hpp"
#include "sparse/coo.hpp"

namespace bfc::gen {

graph::BipartiteGraph preferential_attachment(vidx_t n1, vidx_t n2,
                                              vidx_t edges_per_v1,
                                              std::uint64_t seed) {
  require(n1 > 0 && n2 > 0, "preferential_attachment: empty vertex set");
  require(edges_per_v1 >= 1 && edges_per_v1 <= n2,
          "preferential_attachment: edges_per_v1 out of range");

  Rng rng(seed);
  sparse::CooBuilder builder(n1, n2);
  builder.reserve(static_cast<std::size_t>(n1) *
                  static_cast<std::size_t>(edges_per_v1));

  // Repeated-endpoint list: drawing uniformly from it realises
  // degree-proportional ("rich get richer") attachment on the V2 side; a
  // uniform draw is mixed in so early vertices do not monopolise.
  std::vector<vidx_t> endpoint_pool;
  endpoint_pool.reserve(static_cast<std::size_t>(n1) *
                        static_cast<std::size_t>(edges_per_v1));

  for (vidx_t u = 0; u < n1; ++u) {
    // Distinct targets for this vertex within the batch.
    std::vector<vidx_t> targets;
    while (targets.size() < static_cast<std::size_t>(edges_per_v1)) {
      vidx_t v;
      if (endpoint_pool.empty() || rng.bernoulli(0.25)) {
        v = static_cast<vidx_t>(rng.bounded(static_cast<std::uint64_t>(n2)));
      } else {
        v = endpoint_pool[static_cast<std::size_t>(
            rng.bounded(endpoint_pool.size()))];
      }
      if (std::find(targets.begin(), targets.end(), v) == targets.end())
        targets.push_back(v);
    }
    for (const vidx_t v : targets) {
      builder.add(u, v);
      endpoint_pool.push_back(v);
    }
  }
  graph::BipartiteGraph g(builder.build());
  BFC_VALIDATE(g);
  return g;
}

}  // namespace bfc::gen
