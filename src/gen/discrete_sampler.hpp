// Walker's alias method: O(1) sampling from an arbitrary discrete
// distribution after O(n) setup. Drives the Chung–Lu endpoint draws.
#pragma once

#include <vector>

#include "util/common.hpp"
#include "util/rng.hpp"

namespace bfc::gen {

class DiscreteSampler {
 public:
  /// weights must be non-negative with a positive sum.
  explicit DiscreteSampler(const std::vector<double>& weights) {
    const std::size_t n = weights.size();
    require(n > 0, "DiscreteSampler: empty weights");
    double total = 0.0;
    for (const double w : weights) {
      require(w >= 0.0, "DiscreteSampler: negative weight");
      total += w;
    }
    require(total > 0.0, "DiscreteSampler: zero total weight");

    prob_.assign(n, 0.0);
    alias_.assign(n, 0);
    std::vector<double> scaled(n);
    for (std::size_t i = 0; i < n; ++i)
      scaled[i] = weights[i] * static_cast<double>(n) / total;

    std::vector<std::size_t> small, large;
    for (std::size_t i = 0; i < n; ++i)
      (scaled[i] < 1.0 ? small : large).push_back(i);

    while (!small.empty() && !large.empty()) {
      const std::size_t s = small.back();
      small.pop_back();
      const std::size_t l = large.back();
      prob_[s] = scaled[s];
      alias_[s] = static_cast<vidx_t>(l);
      scaled[l] -= 1.0 - scaled[s];
      if (scaled[l] < 1.0) {
        large.pop_back();
        small.push_back(l);
      }
    }
    for (const std::size_t i : small) prob_[i] = 1.0;
    for (const std::size_t i : large) prob_[i] = 1.0;
  }

  [[nodiscard]] vidx_t sample(Rng& rng) const {
    const auto i =
        static_cast<std::size_t>(rng.bounded(prob_.size()));
    return rng.uniform() < prob_[i] ? static_cast<vidx_t>(i) : alias_[i];
  }

  [[nodiscard]] std::size_t size() const noexcept { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<vidx_t> alias_;
};

}  // namespace bfc::gen
