#include <algorithm>
#include <numeric>

#include "chk/validate.hpp"
#include "gen/generators.hpp"
#include "sparse/coo.hpp"

namespace bfc::gen {

graph::BipartiteGraph configuration_model(
    const std::vector<offset_t>& degrees_v1,
    const std::vector<offset_t>& degrees_v2, std::uint64_t seed) {
  const auto n1 = static_cast<vidx_t>(degrees_v1.size());
  const auto n2 = static_cast<vidx_t>(degrees_v2.size());
  const count_t sum1 =
      std::accumulate(degrees_v1.begin(), degrees_v1.end(), count_t{0});
  const count_t sum2 =
      std::accumulate(degrees_v2.begin(), degrees_v2.end(), count_t{0});
  require(sum1 == sum2, "configuration_model: degree sums differ");
  for (const offset_t d : degrees_v1)
    require(d >= 0 && d <= n2, "configuration_model: V1 degree out of range");
  for (const offset_t d : degrees_v2)
    require(d >= 0 && d <= n1, "configuration_model: V2 degree out of range");

  // Stub lists: vertex u appears deg(u) times.
  std::vector<vidx_t> stubs1, stubs2;
  stubs1.reserve(static_cast<std::size_t>(sum1));
  stubs2.reserve(static_cast<std::size_t>(sum1));
  for (vidx_t u = 0; u < n1; ++u)
    stubs1.insert(stubs1.end(),
                  static_cast<std::size_t>(degrees_v1[static_cast<std::size_t>(u)]),
                  u);
  for (vidx_t v = 0; v < n2; ++v)
    stubs2.insert(stubs2.end(),
                  static_cast<std::size_t>(degrees_v2[static_cast<std::size_t>(v)]),
                  v);

  Rng rng(seed);
  // A handful of reshuffle rounds resolves most duplicate pairings; any
  // remaining duplicates are merged by the COO builder (simple-graph
  // projection), slightly lowering realised degrees.
  constexpr int kRounds = 8;
  for (int round = 0; round < kRounds; ++round) {
    std::shuffle(stubs2.begin(), stubs2.end(), rng);
    std::vector<std::pair<vidx_t, vidx_t>> pairs(stubs1.size());
    for (std::size_t k = 0; k < stubs1.size(); ++k)
      pairs[k] = {stubs1[k], stubs2[k]};
    std::sort(pairs.begin(), pairs.end());
    const bool has_duplicate =
        std::adjacent_find(pairs.begin(), pairs.end()) != pairs.end();
    if (!has_duplicate || round == kRounds - 1) {
      sparse::CooBuilder builder(n1, n2);
      builder.reserve(pairs.size());
      for (const auto& [u, v] : pairs) builder.add(u, v);
      graph::BipartiteGraph g(builder.build());
      BFC_VALIDATE(g);
      return g;
    }
  }
  // Unreachable: the final round above always returns.
  return graph::BipartiteGraph(sparse::CsrPattern::empty(n1, n2));
}

}  // namespace bfc::gen
