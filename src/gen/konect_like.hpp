// Calibrated synthetic stand-ins for the five KONECT datasets in the
// paper's Fig. 9 (arXiv cond-mat, Producers, Record Labels, Occupations,
// GitHub). Each preset matches the published |V1|, |V2|, |E| and uses
// Chung–Lu power-law degree profiles typical of those collections; a scale
// factor shrinks all three proportionally so the full bench suite fits in a
// CI budget (DESIGN.md §4).
#pragma once

#include <string>
#include <vector>

#include "graph/bipartite_graph.hpp"
#include "util/common.hpp"

namespace bfc::gen {

struct KonectPreset {
  std::string name;       // paper's dataset name
  vidx_t n1 = 0;          // |V1| as published
  vidx_t n2 = 0;          // |V2| as published
  offset_t edges = 0;     // |E| as published
  double alpha_v1 = 0.7;  // power-law exponent for the V1 weight vector
  double alpha_v2 = 0.7;  // power-law exponent for the V2 weight vector
  count_t paper_butterflies = 0;  // Ξ_G as published (for the paper= column)
};

/// The five Fig. 9 presets, in the paper's row order.
[[nodiscard]] const std::vector<KonectPreset>& konect_presets();

/// Looks a preset up by (case-sensitive) name; throws if unknown.
[[nodiscard]] const KonectPreset& konect_preset(const std::string& name);

/// Instantiates a preset at `scale` in (0, 1]: |V1|, |V2| and |E| are all
/// multiplied by `scale` (so average degree is preserved and the
/// |V1|-vs-|V2| asymmetry that drives the paper's Fig. 10/11 conclusions is
/// preserved exactly). Deterministic in `seed`.
[[nodiscard]] graph::BipartiteGraph make_konect_like(const KonectPreset& preset,
                                                     double scale,
                                                     std::uint64_t seed);

}  // namespace bfc::gen
