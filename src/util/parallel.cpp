#include "util/parallel.hpp"

#include <omp.h>

namespace bfc {

int num_threads() noexcept { return omp_get_max_threads(); }

void set_num_threads(int n) noexcept {
  if (n > 0) omp_set_num_threads(n);
}

int thread_id() noexcept { return omp_get_thread_num(); }

int hardware_threads() noexcept { return omp_get_num_procs(); }

ThreadCountGuard::ThreadCountGuard(int n) noexcept
    : previous_(omp_get_max_threads()) {
  set_num_threads(n);
}

ThreadCountGuard::~ThreadCountGuard() { set_num_threads(previous_); }

}  // namespace bfc
