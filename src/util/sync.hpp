// Annotated synchronization layer: the only place in the library that may
// touch the standard sync primitives directly. bfc::Mutex / bfc::SharedMutex
// / bfc::CondVar and the MutexLock / WriterLock / SharedLock RAII guards
// wrap the std types with two orthogonal checking layers:
//
//   1. Clang Thread Safety Analysis capability attributes (the BFC_*
//      macros below, compiling to nothing off-clang). Annotating a field
//      with BFC_GUARDED_BY(mu_) and a lock-held helper with BFC_REQUIRES(mu_)
//      lets `clang++ -Werror=thread-safety` prove, at compile time, that no
//      code path reads or writes the field without holding the lock. The CI
//      clang-tsa lane builds all of src/ + tests/ under that flag.
//
//   2. The BFC_CHECKED runtime lock-order checker (chk/lockorder.hpp).
//      Every mutex names its construction site; each blocking acquisition
//      records held-site -> acquired-site edges into one global graph and
//      fails deterministically — naming both sites — the first time any two
//      locks are ever taken in inconsistent order on any threads. A
//      potential-deadlock detector, not an actual-deadlock detector.
//
// The project lint rule (scripts/lint.sh rule C) forbids the raw std
// primitives everywhere else in src/; the wrapper internals below carry the
// `bfc-lint: raw-sync-ok` allowance.
#pragma once

#include <condition_variable>  // bfc-lint: raw-sync-ok (wrapper internals)
#include <mutex>               // bfc-lint: raw-sync-ok (wrapper internals)
#include <shared_mutex>        // bfc-lint: raw-sync-ok (wrapper internals)

#include "chk/check.hpp"
#include "chk/lockorder.hpp"

// ---------------------------------------------------------------------------
// Clang Thread Safety Analysis attribute macros. Each expands to the
// corresponding __attribute__ under clang and to nothing elsewhere, so gcc
// builds see plain classes. Reference: clang.llvm.org/docs/ThreadSafetyAnalysis.
// ---------------------------------------------------------------------------
#if defined(__clang__)
#define BFC_TSA(x) __attribute__((x))
#else
#define BFC_TSA(x)
#endif

/// Marks a type as a capability (lockable) the analysis tracks.
#define BFC_CAPABILITY(x) BFC_TSA(capability(x))
/// Marks an RAII type whose constructor acquires and destructor releases.
#define BFC_SCOPED_CAPABILITY BFC_TSA(scoped_lockable)
/// Field may only be accessed while holding the named capability.
#define BFC_GUARDED_BY(x) BFC_TSA(guarded_by(x))
/// Pointee may only be accessed while holding the named capability.
#define BFC_PT_GUARDED_BY(x) BFC_TSA(pt_guarded_by(x))
/// Caller must hold the capability (exclusively) across the call.
#define BFC_REQUIRES(...) BFC_TSA(requires_capability(__VA_ARGS__))
/// Caller must hold the capability at least shared across the call.
#define BFC_REQUIRES_SHARED(...) BFC_TSA(requires_shared_capability(__VA_ARGS__))
/// Function acquires the capability exclusively and does not release it.
#define BFC_ACQUIRE(...) BFC_TSA(acquire_capability(__VA_ARGS__))
/// Function acquires the capability shared and does not release it.
#define BFC_ACQUIRE_SHARED(...) BFC_TSA(acquire_shared_capability(__VA_ARGS__))
/// Function releases an exclusively held capability.
#define BFC_RELEASE(...) BFC_TSA(release_capability(__VA_ARGS__))
/// Function releases a shared-held capability.
#define BFC_RELEASE_SHARED(...) BFC_TSA(release_shared_capability(__VA_ARGS__))
/// Function releases the capability however it was held.
#define BFC_RELEASE_GENERIC(...) BFC_TSA(release_generic_capability(__VA_ARGS__))
/// Function acquires the capability iff it returns the given value.
#define BFC_TRY_ACQUIRE(...) BFC_TSA(try_acquire_capability(__VA_ARGS__))
#define BFC_TRY_ACQUIRE_SHARED(...) \
  BFC_TSA(try_acquire_shared_capability(__VA_ARGS__))
/// Caller must NOT hold the capability (guards against self-deadlock).
#define BFC_EXCLUDES(...) BFC_TSA(locks_excluded(__VA_ARGS__))
/// Declares the function returns a reference to the named capability.
#define BFC_RETURN_CAPABILITY(x) BFC_TSA(lock_returned(x))
/// Runtime assertion that the capability is held (trusted by the analysis).
#define BFC_ASSERT_CAPABILITY(x) BFC_TSA(assert_capability(x))
/// Escape hatch: function body is not analyzed. The acceptance bar for this
/// repo is zero uses outside this header and at most two justified ones
/// elsewhere — prefer restructuring over escaping.
#define BFC_NO_THREAD_SAFETY_ANALYSIS BFC_TSA(no_thread_safety_analysis)

namespace bfc {

/// Exclusive mutex. `site` names the construction site for the checked-build
/// lock-order graph ("svc.executor", "obs.registry", ...); instances
/// constructed through one code path share the site and therefore one node
/// in the acquisition-order graph.
class BFC_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(const char* site) noexcept
      : site_(chk::lockorder::register_site(site)) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() BFC_ACQUIRE() {
    mu_.lock();
    if constexpr (chk::kCheckedEnabled) {
      // A lock-order violation throws out of the hook; re-throw with the
      // underlying mutex released so the caller's state stays consistent
      // (and tests can keep using the mutexes after catching).
      try {
        chk::lockorder::on_acquire(site_);
      } catch (...) {
        mu_.unlock();
        throw;
      }
    }
  }

  void unlock() BFC_RELEASE() {
    chk::lockorder::on_release(site_);
    mu_.unlock();
  }

  [[nodiscard]] bool try_lock() BFC_TRY_ACQUIRE(true) {
    const bool ok = mu_.try_lock();
    if (ok) chk::lockorder::on_try_acquire(site_);
    return ok;
  }

 private:
  std::mutex mu_;  // bfc-lint: raw-sync-ok (the wrapper itself)
  chk::lockorder::SiteId site_;
};

/// Reader/writer mutex. Shared acquisitions participate in lock-order
/// tracking exactly like exclusive ones (see chk/lockorder.hpp for why that
/// conservatism is deliberate).
class BFC_CAPABILITY("shared_mutex") SharedMutex {
 public:
  explicit SharedMutex(const char* site) noexcept
      : site_(chk::lockorder::register_site(site)) {}

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() BFC_ACQUIRE() {
    mu_.lock();
    if constexpr (chk::kCheckedEnabled) {
      try {
        chk::lockorder::on_acquire(site_);
      } catch (...) {
        mu_.unlock();
        throw;
      }
    }
  }

  void unlock() BFC_RELEASE() {
    chk::lockorder::on_release(site_);
    mu_.unlock();
  }

  [[nodiscard]] bool try_lock() BFC_TRY_ACQUIRE(true) {
    const bool ok = mu_.try_lock();
    if (ok) chk::lockorder::on_try_acquire(site_);
    return ok;
  }

  void lock_shared() BFC_ACQUIRE_SHARED() {
    mu_.lock_shared();
    if constexpr (chk::kCheckedEnabled) {
      try {
        chk::lockorder::on_acquire(site_);
      } catch (...) {
        mu_.unlock_shared();
        throw;
      }
    }
  }

  void unlock_shared() BFC_RELEASE_SHARED() {
    chk::lockorder::on_release(site_);
    mu_.unlock_shared();
  }

  [[nodiscard]] bool try_lock_shared() BFC_TRY_ACQUIRE_SHARED(true) {
    const bool ok = mu_.try_lock_shared();
    if (ok) chk::lockorder::on_try_acquire(site_);
    return ok;
  }

 private:
  std::shared_mutex mu_;  // bfc-lint: raw-sync-ok (the wrapper itself)
  chk::lockorder::SiteId site_;
};

/// RAII exclusive lock of a Mutex. Supports the worker-loop pattern of
/// temporarily dropping the lock around out-of-lock work via unlock()/lock()
/// — the analysis tracks the capability through those calls.
class BFC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) BFC_ACQUIRE(mu) : mu_(&mu), owns_(true) {
    mu_->lock();
  }

  ~MutexLock() BFC_RELEASE() {
    if (owns_) mu_->unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Drops the lock early (e.g. to run a callback that must not be held
  /// under it); pair with lock() to reacquire.
  void unlock() BFC_RELEASE() {
    mu_->unlock();
    owns_ = false;
  }

  void lock() BFC_ACQUIRE() {
    mu_->lock();
    owns_ = true;
  }

  /// The wrapped mutex — for CondVar::wait, which needs to release and
  /// reacquire it atomically with the sleep.
  [[nodiscard]] Mutex& mutex() noexcept { return *mu_; }

 private:
  Mutex* mu_;
  bool owns_;
};

/// RAII exclusive lock of a SharedMutex (the writer side).
class BFC_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) BFC_ACQUIRE(mu) : mu_(&mu) {
    mu_->lock();
  }
  ~WriterLock() BFC_RELEASE() { mu_->unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex* mu_;
};

/// RAII shared (reader) lock of a SharedMutex.
class BFC_SCOPED_CAPABILITY SharedLock {
 public:
  explicit SharedLock(SharedMutex& mu) BFC_ACQUIRE_SHARED(mu) : mu_(&mu) {
    mu_->lock_shared();
  }
  ~SharedLock() BFC_RELEASE_GENERIC() { mu_->unlock_shared(); }

  SharedLock(const SharedLock&) = delete;
  SharedLock& operator=(const SharedLock&) = delete;

 private:
  SharedMutex* mu_;
};

/// Condition variable bound to bfc::Mutex. wait() atomically releases the
/// lock, sleeps, and reacquires before returning; the release/reacquire is
/// invisible to the static analysis (the capability is held on entry and on
/// exit), and the lock-order checker observes the reacquisition through the
/// Mutex hooks. Spurious wakeups are possible — always wait in a predicate
/// loop:
///
///   while (!ready_)        // ready_ is BFC_GUARDED_BY(mu_)
///     cv_.wait(lock);      // lock is a MutexLock on mu_
///
/// Keeping the predicate in the caller (rather than a predicate-taking
/// overload) is deliberate: the loop reads guarded fields, and in caller
/// code the analysis can see the MutexLock that guards them.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(MutexLock& lock) { cv_.wait(lock.mutex()); }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  // condition_variable_any, not condition_variable: it waits on any
  // BasicLockable, so the sleep releases/reacquires through bfc::Mutex's
  // own lock()/unlock() and the lock-order hooks keep firing.
  std::condition_variable_any cv_;  // bfc-lint: raw-sync-ok (wrapper itself)
};

}  // namespace bfc
