// Cooperative cancellation for long-running kernels. A CancelToken carries
// an optional wall-clock deadline; kernels that may scan millions of rows
// call checkpoint() once per outer-loop row and abandon the pass with
// CancelledError when the deadline has passed. The clock is only consulted
// every 64th checkpoint, so the common (unarmed or not-yet-expired) path
// costs one branch and one increment per row.
//
// This lives in util/ rather than svc/ because the counting kernels
// (count::butterflies_per_v1, count::support_per_edge) take the token
// directly and must not depend on the serving layer; svc::Deadline converts
// itself into a token at submission time.
#pragma once

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace bfc {

/// Thrown by CancelToken::checkpoint when the deadline has passed; the
/// serving layer catches it and degrades the answer instead of finishing
/// a scan whose requester has already given up.
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(const std::string& where)
      : std::runtime_error("cancelled: deadline exceeded in " + where) {}
};

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// Unarmed token: checkpoint() never fires. This is the default every
  /// kernel overload without an explicit token uses.
  CancelToken() = default;

  /// Token that fires once `deadline` has passed.
  explicit CancelToken(Clock::time_point deadline) noexcept
      : at_(deadline), armed_(true) {}

  [[nodiscard]] bool armed() const noexcept { return armed_; }

  /// Immediate (non-strided) deadline test.
  [[nodiscard]] bool expired() const noexcept {
    return armed_ && Clock::now() >= at_;
  }

  /// Row-granularity cancellation point: cheap when unarmed, consults the
  /// clock on the first call and then every 64th, throws CancelledError
  /// (naming `where`) once the deadline has passed.
  void checkpoint(const char* where) const {
    if (!armed_) return;
    if ((ticks_++ & 63u) != 0) return;
    if (Clock::now() >= at_) throw CancelledError(where);
  }

 private:
  Clock::time_point at_{};
  bool armed_ = false;
  mutable std::uint32_t ticks_ = 0;
};

}  // namespace bfc
