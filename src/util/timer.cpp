#include "util/timer.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace bfc {

namespace {
void check_nonempty(std::size_t n) {
  if (n == 0) throw std::logic_error("Samples: no measurements recorded");
}
}  // namespace

double Samples::min() const {
  check_nonempty(values_.size());
  return *std::min_element(values_.begin(), values_.end());
}

double Samples::max() const {
  check_nonempty(values_.size());
  return *std::max_element(values_.begin(), values_.end());
}

double Samples::mean() const {
  check_nonempty(values_.size());
  return std::accumulate(values_.begin(), values_.end(), 0.0) /
         static_cast<double>(values_.size());
}

double Samples::stddev() const {
  check_nonempty(values_.size());
  if (values_.size() < 2) return 0.0;
  // Welford's online update: single pass, and M2 accumulates centered
  // squared deviations, so samples near 1e9 with tiny spread don't lose the
  // spread to catastrophic cancellation the way sum-of-squares formulas do.
  double mean = 0.0;
  double m2 = 0.0;
  double n = 0.0;
  for (const double v : values_) {
    n += 1.0;
    const double delta = v - mean;
    mean += delta / n;
    m2 += delta * (v - mean);
  }
  return std::sqrt(m2 / (n - 1.0));
}

double Samples::percentile(double p) const {
  check_nonempty(values_.size());
  if (p < 0.0 || p > 100.0)
    throw std::invalid_argument("Samples::percentile: p must be in [0, 100]");
  std::vector<double> v = values_;
  std::sort(v.begin(), v.end());
  const double rank = p / 100.0 * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  if (lo + 1 >= v.size()) return v.back();
  const double frac = rank - static_cast<double>(lo);
  return v[lo] + frac * (v[lo + 1] - v[lo]);
}

double Samples::median() const {
  check_nonempty(values_.size());
  std::vector<double> v = values_;
  const auto mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  if (v.size() % 2 == 1) return v[mid];
  const double hi = v[mid];
  const double lo =
      *std::max_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

}  // namespace bfc
