#include "util/timer.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace bfc {

namespace {
void check_nonempty(std::size_t n) {
  if (n == 0) throw std::logic_error("Samples: no measurements recorded");
}
}  // namespace

double Samples::min() const {
  check_nonempty(values_.size());
  return *std::min_element(values_.begin(), values_.end());
}

double Samples::max() const {
  check_nonempty(values_.size());
  return *std::max_element(values_.begin(), values_.end());
}

double Samples::mean() const {
  check_nonempty(values_.size());
  return std::accumulate(values_.begin(), values_.end(), 0.0) /
         static_cast<double>(values_.size());
}

double Samples::median() const {
  check_nonempty(values_.size());
  std::vector<double> v = values_;
  const auto mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  if (v.size() % 2 == 1) return v[mid];
  const double hi = v[mid];
  const double lo =
      *std::max_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

}  // namespace bfc
