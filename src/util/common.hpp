// Common fixed-width types and small helpers shared by every bfc module.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace bfc {

/// Vertex / row / column index. 32-bit: the paper's graphs (and anything this
/// library targets) stay well under 2^31 vertices per side.
using vidx_t = std::int32_t;

/// Offset into a nonzero array. 64-bit so nnz can exceed 2^31.
using offset_t = std::int64_t;

/// Butterfly / wedge counts. Counts grow as O(nnz^2) in the worst case, so
/// they always live in 64 bits (the paper's GitHub graph already has 5e7
/// butterflies at only 4.4e5 edges).
using count_t = std::int64_t;

/// Exact n-choose-2 without overflow for any non-negative 64-bit n whose
/// result fits in count_t.
[[nodiscard]] constexpr count_t choose2(count_t n) noexcept {
  return n <= 1 ? 0 : (n % 2 == 0 ? (n / 2) * (n - 1) : n * ((n - 1) / 2));
}

/// Throwing check used at API boundaries (argument validation), as opposed to
/// assert() which guards internal invariants.
inline void require(bool cond, const std::string& msg) {
  if (!cond) throw std::invalid_argument(msg);
}

}  // namespace bfc
