// Deterministic, fast pseudo-random number generation for graph generators
// and property tests. xoshiro256** (Blackman & Vigna) seeded via splitmix64,
// so the same seed produces the same graph on every platform — unlike
// std::uniform_int_distribution, whose output is implementation-defined.
#pragma once

#include <array>
#include <cstdint>

#include "util/common.hpp"

namespace bfc {

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Raw 64 random bits.
  std::uint64_t next() noexcept;

  // UniformRandomBitGenerator interface (usable with std::shuffle).
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }
  result_type operator()() noexcept { return next(); }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift rejection
  /// method; bound must be > 0.
  std::uint64_t bounded(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept;

  /// Standard-normal variate (polar Box-Muller; caches the pair).
  double normal() noexcept;

  /// Fork an independent stream (for per-thread generators): consumes one
  /// value from this stream and seeds a new generator with it.
  Rng fork() noexcept { return Rng(next()); }

 private:
  std::array<std::uint64_t, 4> s_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Zipf-distributed ranks over [0, n) with skew theta ∈ (0, 1) — the YCSB
/// generator (Gray et al.'s rejection-free inversion): P(rank = i) ∝
/// 1/(i+1)^theta, rank 0 hottest. Construction precomputes the harmonic
/// normaliser in O(n); each draw is then O(1) — one uniform variate, two
/// comparisons, one pow. With the serving bench's range partition, rank 0
/// lands in shard 0, so skewed keys concentrate traffic on the low shards
/// and the per-shard hit-rate spread becomes visible.
class Zipf {
 public:
  /// n must be >= 1; theta must be in (0, 1) — 0 is uniform (just use
  /// Rng::bounded), 1 diverges in this parameterisation.
  Zipf(std::uint64_t n, double theta);

  /// The next rank in [0, n), drawing uniforms from `rng`.
  std::uint64_t next(Rng& rng) const noexcept;

  [[nodiscard]] std::uint64_t n() const noexcept { return n_; }
  [[nodiscard]] double theta() const noexcept { return theta_; }

 private:
  std::uint64_t n_;
  double theta_;
  double zetan_;   // Σ_{i=1..n} i^-theta
  double eta_;
  double alpha_;   // 1 / (1 - theta)
  double half_pow_;  // 0.5^theta
};

}  // namespace bfc
