// Deterministic, fast pseudo-random number generation for graph generators
// and property tests. xoshiro256** (Blackman & Vigna) seeded via splitmix64,
// so the same seed produces the same graph on every platform — unlike
// std::uniform_int_distribution, whose output is implementation-defined.
#pragma once

#include <array>
#include <cstdint>

#include "util/common.hpp"

namespace bfc {

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Raw 64 random bits.
  std::uint64_t next() noexcept;

  // UniformRandomBitGenerator interface (usable with std::shuffle).
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }
  result_type operator()() noexcept { return next(); }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift rejection
  /// method; bound must be > 0.
  std::uint64_t bounded(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept;

  /// Standard-normal variate (polar Box-Muller; caches the pair).
  double normal() noexcept;

  /// Fork an independent stream (for per-thread generators): consumes one
  /// value from this stream and seeds a new generator with it.
  Rng fork() noexcept { return Rng(next()); }

 private:
  std::array<std::uint64_t, 4> s_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace bfc
