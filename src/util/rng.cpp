#include "util/rng.hpp"

#include <cmath>

namespace bfc {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::bounded(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) noexcept {
  return lo + static_cast<std::int64_t>(
                  bounded(static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::uniform() noexcept {
  // 53 random bits -> [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

Zipf::Zipf(std::uint64_t n, double theta) : n_(n), theta_(theta) {
  require(n >= 1, "Zipf: n must be >= 1");
  require(theta > 0.0 && theta < 1.0, "Zipf: theta must be in (0, 1)");
  zetan_ = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i)
    zetan_ += std::pow(static_cast<double>(i), -theta);
  alpha_ = 1.0 / (1.0 - theta);
  half_pow_ = std::pow(0.5, theta);
  const double zeta2 = 1.0 + half_pow_;
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2 / zetan_);
}

std::uint64_t Zipf::next(Rng& rng) const noexcept {
  const double u = rng.uniform();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + half_pow_) return 1;
  const auto rank = static_cast<std::uint64_t>(
      static_cast<double>(n_) *
      std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= n_ ? n_ - 1 : rank;  // pow rounding can graze n
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u, v, s;
  do {
    u = 2.0 * uniform() - 1.0;
    v = 2.0 * uniform() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double f = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * f;
  has_cached_normal_ = true;
  return u * f;
}

}  // namespace bfc
