// Plain-text table formatting so the bench binaries can print rows shaped
// like the paper's Figs. 9-11.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace bfc {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience cell formatters.
  static std::string num(std::int64_t v);          // with thousands separators
  static std::string fixed(double v, int digits);  // fixed-point

  /// Renders with column alignment and an underline below the header.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace bfc
