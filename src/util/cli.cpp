#include "util/cli.hpp"

#include <cstdlib>
#include <stdexcept>

namespace bfc {

Cli::Cli(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    if (const auto eq = name.find('='); eq != std::string::npos) {
      options_[name.substr(0, eq)] = name.substr(eq + 1);
      continue;
    }
    // "--name value" when the next token exists and is not another option;
    // otherwise a bare flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      options_[name] = argv[++i];
    } else {
      options_[name] = "";
    }
  }
}

std::vector<std::string> Cli::option_names() const {
  std::vector<std::string> names;
  names.reserve(options_.size());
  for (const auto& [name, value] : options_) names.push_back(name);
  return names;  // std::map iteration is already sorted
}

bool Cli::has(const std::string& name) const {
  return options_.contains(name);
}

std::string Cli::get(const std::string& name,
                     const std::string& fallback) const {
  const auto it = options_.find(name);
  return it == options_.end() ? fallback : it->second;
}

std::int64_t Cli::get_int(const std::string& name,
                          std::int64_t fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end() || it->second.empty()) return fallback;
  return std::stoll(it->second);
}

std::int64_t Cli::get_int_at_least(const std::string& name,
                                   std::int64_t fallback,
                                   std::int64_t min_value) const {
  const std::int64_t v = get_int(name, fallback);
  if (v < min_value)
    throw std::invalid_argument("Cli: --" + name + " must be at least " +
                                std::to_string(min_value) + ", got " +
                                std::to_string(v));
  return v;
}

double Cli::get_double(const std::string& name, double fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end() || it->second.empty()) return fallback;
  return std::stod(it->second);
}

bool Cli::get_bool(const std::string& name, bool fallback) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  const std::string& v = it->second;
  if (v.empty() || v == "1" || v == "true" || v == "yes" || v == "on")
    return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  throw std::invalid_argument("Cli: bad boolean value for --" + name + ": " +
                              v);
}

}  // namespace bfc
