// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) over raw bytes —
// the per-section integrity checksum of the binary snapshot format
// (graph/io_binary, svc/SnapshotStore::persist). Table-driven, header-only,
// with a constexpr-built table so the checksum costs one XOR + lookup per
// byte and nothing at startup.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace bfc {
namespace detail {

constexpr std::array<std::uint32_t, 256> make_crc32_table() noexcept {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit)
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table =
    make_crc32_table();

}  // namespace detail

/// CRC-32 of `len` bytes at `data`. Pass a previous result as `seed` to
/// checksum a logical section split across several buffers.
[[nodiscard]] inline std::uint32_t crc32(const void* data, std::size_t len,
                                         std::uint32_t seed = 0) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = ~seed;
  for (std::size_t i = 0; i < len; ++i)
    c = detail::kCrc32Table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  return ~c;
}

}  // namespace bfc
