// Thin OpenMP wrappers so callers don't scatter #ifdef _OPENMP or raw
// pragmas with bare loop indices across the codebase.
#pragma once

#include <cstdint>

namespace bfc {

/// Number of threads an upcoming parallel region will use.
[[nodiscard]] int num_threads() noexcept;

/// Caps the OpenMP thread count for subsequent parallel regions.
void set_num_threads(int n) noexcept;

/// Current thread id inside a parallel region (0 outside one).
[[nodiscard]] int thread_id() noexcept;

/// Maximum hardware concurrency visible to the runtime.
[[nodiscard]] int hardware_threads() noexcept;

/// RAII guard that sets the thread count and restores the previous value;
/// the table benches use it to pin "6 threads" like the paper's Fig. 11.
class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(int n) noexcept;
  ~ThreadCountGuard();
  ThreadCountGuard(const ThreadCountGuard&) = delete;
  ThreadCountGuard& operator=(const ThreadCountGuard&) = delete;

 private:
  int previous_;
};

}  // namespace bfc
