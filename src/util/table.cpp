#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace bfc {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size())
    throw std::invalid_argument("Table: row arity mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::num(std::int64_t v) {
  std::string digits = std::to_string(v < 0 ? -v : v);
  std::string out;
  const std::size_t n = digits.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0 && (n - i) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  return v < 0 ? "-" + out : out;
}

std::string Table::fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      // Left-align the first (name) column, right-align numeric columns.
      const auto pad = width[c] - cells[c].size();
      if (c == 0) {
        os << cells[c] << std::string(pad, ' ');
      } else {
        os << std::string(pad, ' ') << cells[c];
      }
    }
    os << '\n';
  };

  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c == 0 ? 0 : 2);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

}  // namespace bfc
