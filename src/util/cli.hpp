// Minimal command-line option parsing for the bench/example binaries.
// Supports "--name value", "--name=value" and boolean "--flag" forms.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace bfc {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  /// True if --name was present (with or without a value).
  [[nodiscard]] bool has(const std::string& name) const;

  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  /// get_int plus a lower bound: a parsed value below min_value throws
  /// std::invalid_argument naming the flag. The sizes and counts the bench
  /// and example binaries accept would otherwise wrap through static_casts
  /// to narrower or unsigned types before any library require() sees them.
  [[nodiscard]] std::int64_t get_int_at_least(const std::string& name,
                                              std::int64_t fallback,
                                              std::int64_t min_value) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Arguments that were not "--option" shaped, in order.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Names of every --option present, sorted; lets binaries reject typo'd
  /// flags instead of silently running with defaults.
  [[nodiscard]] std::vector<std::string> option_names() const;

  [[nodiscard]] const std::string& program() const noexcept { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace bfc
