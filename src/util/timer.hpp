// Wall-clock timing for the benchmark harness (the google-benchmark library
// drives microbenchmarks; this Timer drives the whole-table reproductions,
// which time one multi-second run per cell like the paper does).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace bfc {

class Timer {
 public:
  Timer() noexcept { reset(); }

  void reset() noexcept { start_ = Clock::now(); }

  /// Seconds since construction or the last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates repeated measurements of one quantity and reports summary
/// statistics; used by the table benches to run each cell a few times.
class Samples {
 public:
  void add(double v) { values_.push_back(v); }
  [[nodiscard]] std::size_t count() const noexcept { return values_.size(); }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] double median() const;
  /// Sample standard deviation (n-1 denominator); 0 with fewer than two
  /// measurements.
  [[nodiscard]] double stddev() const;
  /// Percentile p in [0, 100] with linear interpolation between order
  /// statistics (p=50 matches median()).
  [[nodiscard]] double percentile(double p) const;

  /// Raw measurements in insertion order (the RunReport serializes all of
  /// them rather than just a summary).
  [[nodiscard]] const std::vector<double>& values() const noexcept {
    return values_;
  }

 private:
  std::vector<double> values_;
};

}  // namespace bfc
