// Coordinate-format edge accumulator: the construction path from loaders and
// generators into CsrPattern. Duplicates are merged (the graphs are simple),
// and entries may arrive in any order.
#pragma once

#include <utility>
#include <vector>

#include "sparse/csr.hpp"
#include "util/common.hpp"

namespace bfc::sparse {

class CooBuilder {
 public:
  CooBuilder(vidx_t rows, vidx_t cols);

  /// Records one nonzero; throws on out-of-range indices.
  void add(vidx_t r, vidx_t c);

  /// Number of entries recorded so far (before dedup).
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  /// Pending entries in insertion order (chk::validate and tests).
  [[nodiscard]] const std::vector<std::pair<vidx_t, vidx_t>>& entries()
      const noexcept {
    return entries_;
  }

  void reserve(std::size_t n) { entries_.reserve(n); }

  [[nodiscard]] vidx_t rows() const noexcept { return rows_; }
  [[nodiscard]] vidx_t cols() const noexcept { return cols_; }

  /// Sorts, deduplicates, and produces the CSR pattern. The builder is left
  /// empty afterwards.
  [[nodiscard]] CsrPattern build();

 private:
  vidx_t rows_;
  vidx_t cols_;
  std::vector<std::pair<vidx_t, vidx_t>> entries_;
};

}  // namespace bfc::sparse
