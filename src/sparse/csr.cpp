#include "sparse/csr.hpp"

#include <algorithm>

#include "chk/validate.hpp"
#include "dense/dense_matrix.hpp"

namespace bfc::sparse {

CsrPattern::CsrPattern(vidx_t rows, vidx_t cols,
                       std::vector<offset_t> row_ptr,
                       std::vector<vidx_t> col_idx)
    : rows_(rows),
      cols_(cols),
      row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)) {
  // Construction is an API boundary, so the shape check stays unconditional
  // (chk::CheckError derives from std::invalid_argument); the checked build
  // re-runs the same validator on objects mid-flight via BFC_VALIDATE.
  chk::validate_csr_arrays(rows_, cols_, row_ptr_, col_idx_);
}

CsrPattern CsrPattern::empty(vidx_t rows, vidx_t cols) {
  return CsrPattern(rows, cols,
                    std::vector<offset_t>(static_cast<std::size_t>(rows) + 1, 0),
                    {});
}

CsrPattern CsrPattern::from_dense(const dense::DenseMatrix& d) {
  std::vector<offset_t> row_ptr(static_cast<std::size_t>(d.rows()) + 1, 0);
  std::vector<vidx_t> col_idx;
  for (vidx_t r = 0; r < d.rows(); ++r) {
    for (vidx_t c = 0; c < d.cols(); ++c)
      if (d(r, c) != 0) col_idx.push_back(c);
    row_ptr[static_cast<std::size_t>(r) + 1] =
        static_cast<offset_t>(col_idx.size());
  }
  return CsrPattern(d.rows(), d.cols(), std::move(row_ptr),
                    std::move(col_idx));
}

dense::DenseMatrix CsrPattern::to_dense() const {
  dense::DenseMatrix d(rows_, cols_);
  for (vidx_t r = 0; r < rows_; ++r)
    for (const vidx_t c : row(r)) d(r, c) = 1;
  return d;
}

bool CsrPattern::has(vidx_t r, vidx_t c) const {
  const auto cols = row(r);
  return std::binary_search(cols.begin(), cols.end(), c);
}

CsrPattern CsrPattern::transpose() const {
  std::vector<offset_t> t_ptr(static_cast<std::size_t>(cols_) + 1, 0);
  for (const vidx_t c : col_idx_) ++t_ptr[static_cast<std::size_t>(c) + 1];
  for (std::size_t c = 0; c < static_cast<std::size_t>(cols_); ++c)
    t_ptr[c + 1] += t_ptr[c];

  std::vector<vidx_t> t_idx(col_idx_.size());
  std::vector<offset_t> cursor(t_ptr.begin(), t_ptr.end() - 1);
  // Rows are visited in ascending order, so each transposed row comes out
  // sorted without a final sort pass.
  for (vidx_t r = 0; r < rows_; ++r)
    for (const vidx_t c : row(r))
      t_idx[static_cast<std::size_t>(cursor[static_cast<std::size_t>(c)]++)] = r;

  return CsrPattern(cols_, rows_, std::move(t_ptr), std::move(t_idx));
}

dense::DenseMatrix CsrCounts::to_dense() const {
  dense::DenseMatrix d(rows, cols);
  for (vidx_t r = 0; r < rows; ++r) {
    for (offset_t k = row_ptr[static_cast<std::size_t>(r)];
         k < row_ptr[static_cast<std::size_t>(r) + 1]; ++k) {
      d(r, col_idx[static_cast<std::size_t>(k)]) =
          values[static_cast<std::size_t>(k)];
    }
  }
  return d;
}

}  // namespace bfc::sparse
