// Sparse general matrix-matrix multiplication (Gustavson's row-wise
// algorithm with a dense accumulator) for pattern operands with count-valued
// output. Used for the mid-scale oracle B = AAᵀ and for the per-edge
// support computation AAᵀA (Eq. 25).
#pragma once

#include "sparse/csr.hpp"
#include "util/common.hpp"

namespace bfc::sparse {

/// C = A·B with C_ij = number of (A_ik, B_kj) pairs. Both operands binary.
[[nodiscard]] CsrCounts spgemm(const CsrPattern& a, const CsrPattern& b);

/// B = A·Aᵀ. `at` must be transpose(a); passing it explicitly lets callers
/// that already hold both orientations avoid recomputing the transpose.
[[nodiscard]] CsrCounts gram(const CsrPattern& a, const CsrPattern& at);

/// Σ_{i<j} C(B_ij, 2) computed row by row without materialising B — the
/// sparse form of the pairwise specification. `at` must be transpose(a).
[[nodiscard]] count_t gram_pairwise_butterflies(const CsrPattern& a,
                                                const CsrPattern& at);

}  // namespace bfc::sparse
