#include "sparse/spgemm.hpp"

#include <algorithm>

#include "chk/checked_math.hpp"
#include "obs/metrics.hpp"

namespace bfc::sparse {

CsrCounts spgemm(const CsrPattern& a, const CsrPattern& b) {
  require(a.cols() == b.rows(), "spgemm: inner dimension mismatch");
  CsrCounts c;
  c.rows = a.rows();
  c.cols = b.cols();
  c.row_ptr.assign(static_cast<std::size_t>(a.rows()) + 1, 0);

  std::vector<count_t> acc(static_cast<std::size_t>(b.cols()), 0);
  std::vector<vidx_t> touched;
  touched.reserve(static_cast<std::size_t>(b.cols()));

  for (vidx_t i = 0; i < a.rows(); ++i) {
    touched.clear();
    for (const vidx_t k : a.row(i)) {
      for (const vidx_t j : b.row(k)) {
        if (acc[static_cast<std::size_t>(j)] == 0) touched.push_back(j);
        ++acc[static_cast<std::size_t>(j)];
      }
    }
    std::sort(touched.begin(), touched.end());
    for (const vidx_t j : touched) {
      c.col_idx.push_back(j);
      c.values.push_back(acc[static_cast<std::size_t>(j)]);
      acc[static_cast<std::size_t>(j)] = 0;
    }
    c.row_ptr[static_cast<std::size_t>(i) + 1] =
        static_cast<offset_t>(c.col_idx.size());
  }
  return c;
}

CsrCounts gram(const CsrPattern& a, const CsrPattern& at) {
  require(at.rows() == a.cols() && at.cols() == a.rows(),
          "gram: at is not transpose-shaped");
  return spgemm(a, at);
}

count_t gram_pairwise_butterflies(const CsrPattern& a, const CsrPattern& at) {
  require(at.rows() == a.cols() && at.cols() == a.rows(),
          "gram_pairwise_butterflies: at is not transpose-shaped");
  std::vector<count_t> acc(static_cast<std::size_t>(a.rows()), 0);
  std::vector<vidx_t> touched;
  count_t total = 0;
  count_t obs_wedges = 0;
  for (vidx_t i = 0; i < a.rows(); ++i) {
    touched.clear();
    for (const vidx_t k : a.row(i)) {
      for (const vidx_t j : at.row(k)) {
        // Only pairs (i, j) with j > i contribute; each unordered pair is
        // visited exactly once this way.
        if (j <= i) continue;
        if (acc[static_cast<std::size_t>(j)] == 0) touched.push_back(j);
        ++acc[static_cast<std::size_t>(j)];
      }
    }
    for (const vidx_t j : touched) {
      if constexpr (obs::kMetricsEnabled)
        obs_wedges = chk::checked_add(obs_wedges, acc[static_cast<std::size_t>(j)]);
      total = chk::checked_add(
          total, chk::checked_choose2(acc[static_cast<std::size_t>(j)]));
      acc[static_cast<std::size_t>(j)] = 0;
    }
  }
  if constexpr (obs::kMetricsEnabled)
    BFC_COUNT_ADD("count.baseline.wedges", obs_wedges);
  return total;
}

}  // namespace bfc::sparse
