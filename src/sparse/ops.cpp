#include "sparse/ops.hpp"

namespace bfc::sparse {

std::vector<offset_t> row_degrees(const CsrPattern& a) {
  std::vector<offset_t> deg(static_cast<std::size_t>(a.rows()));
  for (vidx_t r = 0; r < a.rows(); ++r) deg[static_cast<std::size_t>(r)] =
      a.row_degree(r);
  return deg;
}

std::vector<offset_t> col_degrees(const CsrPattern& a) {
  std::vector<offset_t> deg(static_cast<std::size_t>(a.cols()), 0);
  for (const vidx_t c : a.col_idx()) ++deg[static_cast<std::size_t>(c)];
  return deg;
}

std::vector<count_t> spmv(const CsrPattern& a, std::span<const count_t> x) {
  require(x.size() == static_cast<std::size_t>(a.cols()),
          "spmv: vector length != cols");
  std::vector<count_t> y(static_cast<std::size_t>(a.rows()), 0);
  for (vidx_t r = 0; r < a.rows(); ++r) {
    count_t acc = 0;
    for (const vidx_t c : a.row(r)) acc += x[static_cast<std::size_t>(c)];
    y[static_cast<std::size_t>(r)] = acc;
  }
  return y;
}

std::vector<count_t> spmv_transpose(const CsrPattern& a,
                                    std::span<const count_t> x) {
  require(x.size() == static_cast<std::size_t>(a.rows()),
          "spmv_transpose: vector length != rows");
  std::vector<count_t> y(static_cast<std::size_t>(a.cols()), 0);
  for (vidx_t r = 0; r < a.rows(); ++r) {
    const count_t xr = x[static_cast<std::size_t>(r)];
    if (xr == 0) continue;
    for (const vidx_t c : a.row(r)) y[static_cast<std::size_t>(c)] += xr;
  }
  return y;
}

offset_t intersection_size(std::span<const vidx_t> a,
                           std::span<const vidx_t> b) {
  offset_t count = 0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

namespace {

template <typename KeepFn>
CsrPattern filter_entries(const CsrPattern& a, KeepFn&& keep) {
  std::vector<offset_t> row_ptr(static_cast<std::size_t>(a.rows()) + 1, 0);
  std::vector<vidx_t> col_idx;
  col_idx.reserve(static_cast<std::size_t>(a.nnz()));
  offset_t k = 0;
  for (vidx_t r = 0; r < a.rows(); ++r) {
    for (const vidx_t c : a.row(r)) {
      if (keep(r, c, k)) col_idx.push_back(c);
      ++k;
    }
    row_ptr[static_cast<std::size_t>(r) + 1] =
        static_cast<offset_t>(col_idx.size());
  }
  return CsrPattern(a.rows(), a.cols(), std::move(row_ptr),
                    std::move(col_idx));
}

}  // namespace

CsrPattern mask_rows(const CsrPattern& a, std::span<const std::uint8_t> row_mask) {
  require(row_mask.size() == static_cast<std::size_t>(a.rows()),
          "mask_rows: mask length != rows");
  return filter_entries(a, [&](vidx_t r, vidx_t, offset_t) {
    return row_mask[static_cast<std::size_t>(r)];
  });
}

CsrPattern mask_cols(const CsrPattern& a, std::span<const std::uint8_t> col_mask) {
  require(col_mask.size() == static_cast<std::size_t>(a.cols()),
          "mask_cols: mask length != cols");
  return filter_entries(a, [&](vidx_t, vidx_t c, offset_t) {
    return col_mask[static_cast<std::size_t>(c)];
  });
}

CsrPattern mask_entries(const CsrPattern& a, std::span<const std::uint8_t> keep) {
  require(keep.size() == static_cast<std::size_t>(a.nnz()),
          "mask_entries: mask length != nnz");
  return filter_entries(a, [&](vidx_t, vidx_t, offset_t k) {
    return keep[static_cast<std::size_t>(k)];
  });
}

vidx_t empty_row_count(const CsrPattern& a) {
  vidx_t count = 0;
  for (vidx_t r = 0; r < a.rows(); ++r)
    if (a.row_degree(r) == 0) ++count;
  return count;
}

std::vector<offset_t> transpose_entry_ids(const CsrPattern& a,
                                          const CsrPattern& at) {
  require(at.rows() == a.cols() && at.cols() == a.rows() &&
              at.nnz() == a.nnz(),
          "transpose_entry_ids: at is not transpose-shaped");
  std::vector<offset_t> eid(static_cast<std::size_t>(a.nnz()));
  std::vector<offset_t> cursor(at.row_ptr().begin(), at.row_ptr().end() - 1);
  offset_t k = 0;
  for (vidx_t r = 0; r < a.rows(); ++r) {
    for (const vidx_t c : a.row(r)) {
      eid[static_cast<std::size_t>(cursor[static_cast<std::size_t>(c)]++)] = k;
      ++k;
    }
  }
  return eid;
}

std::vector<std::pair<vidx_t, vidx_t>> edges(const CsrPattern& a) {
  std::vector<std::pair<vidx_t, vidx_t>> out;
  out.reserve(static_cast<std::size_t>(a.nnz()));
  for (vidx_t r = 0; r < a.rows(); ++r)
    for (const vidx_t c : a.row(r)) out.emplace_back(r, c);
  return out;
}

}  // namespace bfc::sparse
