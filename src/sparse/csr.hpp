// Compressed sparse row storage for 0/1 pattern matrices (biadjacency
// matrices are binary, so no value array is stored). A CSC view of a matrix
// A is simply the CsrPattern of Aᵀ; graph::BipartiteGraph keeps both
// orientations because the paper's invariants 1-4 want CSC and 5-8 want CSR
// (§V of the paper).
#pragma once

#include <span>
#include <vector>

#include "util/common.hpp"

namespace bfc::dense {
class DenseMatrix;
}

namespace bfc::sparse {

class CsrPattern {
 public:
  CsrPattern() = default;

  /// Takes ownership of prebuilt arrays; validates shape (monotone row_ptr,
  /// in-range sorted unique column indices).
  CsrPattern(vidx_t rows, vidx_t cols, std::vector<offset_t> row_ptr,
             std::vector<vidx_t> col_idx);

  /// Empty (all-zero) matrix of the given shape.
  static CsrPattern empty(vidx_t rows, vidx_t cols);

  /// Dense 0/1 matrix -> pattern (nonzero entries become edges).
  static CsrPattern from_dense(const dense::DenseMatrix& d);

  [[nodiscard]] dense::DenseMatrix to_dense() const;

  [[nodiscard]] vidx_t rows() const noexcept { return rows_; }
  [[nodiscard]] vidx_t cols() const noexcept { return cols_; }
  [[nodiscard]] offset_t nnz() const noexcept {
    return row_ptr_.empty() ? 0 : row_ptr_.back();
  }

  /// Column indices of row r, sorted ascending.
  [[nodiscard]] std::span<const vidx_t> row(vidx_t r) const {
    assert(r >= 0 && r < rows_);
    const auto lo = static_cast<std::size_t>(row_ptr_[static_cast<std::size_t>(r)]);
    const auto hi =
        static_cast<std::size_t>(row_ptr_[static_cast<std::size_t>(r) + 1]);
    return {col_idx_.data() + lo, hi - lo};
  }

  [[nodiscard]] offset_t row_degree(vidx_t r) const {
    return row_ptr_[static_cast<std::size_t>(r) + 1] -
           row_ptr_[static_cast<std::size_t>(r)];
  }

  /// Membership test by binary search within the row: O(log deg).
  [[nodiscard]] bool has(vidx_t r, vidx_t c) const;

  [[nodiscard]] const std::vector<offset_t>& row_ptr() const noexcept {
    return row_ptr_;
  }
  [[nodiscard]] const std::vector<vidx_t>& col_idx() const noexcept {
    return col_idx_;
  }

  /// Aᵀ in CSR form (i.e. the CSC arrays of A). Counting-sort based, O(nnz).
  [[nodiscard]] CsrPattern transpose() const;

  bool operator==(const CsrPattern& other) const = default;

 private:
  vidx_t rows_ = 0;
  vidx_t cols_ = 0;
  std::vector<offset_t> row_ptr_{0};
  std::vector<vidx_t> col_idx_;
};

/// Sparse matrix with integer values sharing the CSR index structure; the
/// SpGEMM kernels produce these (wedge-count matrices B = AAᵀ).
struct CsrCounts {
  vidx_t rows = 0;
  vidx_t cols = 0;
  std::vector<offset_t> row_ptr{0};
  std::vector<vidx_t> col_idx;
  std::vector<count_t> values;

  [[nodiscard]] offset_t nnz() const noexcept {
    return row_ptr.empty() ? 0 : row_ptr.back();
  }
  [[nodiscard]] dense::DenseMatrix to_dense() const;
};

}  // namespace bfc::sparse
