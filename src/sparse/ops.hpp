// Sparse kernels built on CsrPattern: degree vectors, sparse matrix-vector
// products, sorted-set intersection, and the masking primitives the peeling
// formulations (Eqs. 20-22, 26-27) need.
#pragma once

#include <span>
#include <vector>

#include "sparse/csr.hpp"
#include "util/common.hpp"

namespace bfc::sparse {

/// Row degrees (length rows()).
[[nodiscard]] std::vector<offset_t> row_degrees(const CsrPattern& a);

/// Column degrees (length cols()); single O(nnz) pass, no transpose.
[[nodiscard]] std::vector<offset_t> col_degrees(const CsrPattern& a);

/// y = A·x where x is an integer vector of length cols().
[[nodiscard]] std::vector<count_t> spmv(const CsrPattern& a,
                                        std::span<const count_t> x);

/// y = Aᵀ·x where x has length rows(); O(nnz) scatter, no transpose.
[[nodiscard]] std::vector<count_t> spmv_transpose(const CsrPattern& a,
                                                  std::span<const count_t> x);

/// |a ∩ b| for two ascending-sorted index spans (merge-based).
[[nodiscard]] offset_t intersection_size(std::span<const vidx_t> a,
                                         std::span<const vidx_t> b);

/// Keeps entry (r, c) iff row_mask[r]; dimensions are preserved so vertex
/// ids stay stable across peeling rounds (A₁ = A₀ ∘ M of Eq. 22 with the
/// V1 mask m).
[[nodiscard]] CsrPattern mask_rows(const CsrPattern& a,
                                   std::span<const std::uint8_t> row_mask);

/// Keeps entry (r, c) iff col_mask[c].
[[nodiscard]] CsrPattern mask_cols(const CsrPattern& a,
                                   std::span<const std::uint8_t> col_mask);

/// Keeps entry k (in CSR traversal order) iff keep[k]; this is the
/// element-wise A₀ ∘ M edge-mask of the k-wing iteration (Eq. 27).
[[nodiscard]] CsrPattern mask_entries(const CsrPattern& a,
                                      std::span<const std::uint8_t> keep);

/// Number of rows with zero entries.
[[nodiscard]] vidx_t empty_row_count(const CsrPattern& a);

/// Flat list of (row, col) edges in CSR order.
[[nodiscard]] std::vector<std::pair<vidx_t, vidx_t>> edges(const CsrPattern& a);

/// Entry-id correspondence between a matrix and its transpose: element k of
/// the result is the CSR position in `a` of the k-th entry of `at`. Lets
/// edge-indexed data be carried across orientations (wing peeling, the
/// support family).
[[nodiscard]] std::vector<offset_t> transpose_entry_ids(const CsrPattern& a,
                                                        const CsrPattern& at);

}  // namespace bfc::sparse
