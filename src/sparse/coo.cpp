#include "sparse/coo.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace bfc::sparse {

CooBuilder::CooBuilder(vidx_t rows, vidx_t cols) : rows_(rows), cols_(cols) {
  require(rows >= 0 && cols >= 0, "CooBuilder: negative dimension");
}

void CooBuilder::add(vidx_t r, vidx_t c) {
  require(r >= 0 && r < rows_, "CooBuilder::add: row out of range");
  require(c >= 0 && c < cols_, "CooBuilder::add: column out of range");
  entries_.emplace_back(r, c);
}

CsrPattern CooBuilder::build() {
  std::sort(entries_.begin(), entries_.end());
  [[maybe_unused]] const std::size_t before = entries_.size();
  entries_.erase(std::unique(entries_.begin(), entries_.end()),
                 entries_.end());
  BFC_COUNT_ADD("graph.coo.dedup_dropped",
                static_cast<std::int64_t>(before - entries_.size()));

  std::vector<offset_t> row_ptr(static_cast<std::size_t>(rows_) + 1, 0);
  std::vector<vidx_t> col_idx;
  col_idx.reserve(entries_.size());
  for (const auto& [r, c] : entries_) {
    ++row_ptr[static_cast<std::size_t>(r) + 1];
    col_idx.push_back(c);
  }
  for (std::size_t r = 0; r < static_cast<std::size_t>(rows_); ++r)
    row_ptr[r + 1] += row_ptr[r];

  entries_.clear();
  entries_.shrink_to_fit();
  return CsrPattern(rows_, cols_, std::move(row_ptr), std::move(col_idx));
}

}  // namespace bfc::sparse
