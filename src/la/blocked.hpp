// Blocked variants of the family. FLAME derivations name the Fig. 6/7
// algorithms "unblocked" because they expose one line a₁ per iteration; the
// corresponding blocked algorithms expose a panel A₁ of `block_size` lines,
// maintain the same loop invariants with the panel treated as one unit, and
// split each update into
//   (a) butterflies entirely inside the panel (pairwise within A₁), and
//   (b) butterflies between the panel and the peer partition P — computed
//       with ONE scan of P per panel instead of one per line, amortising
//       the peer traversal block_size-fold.
// This is the classic blocking payoff the FLAME worksheet predicts; the
// ablation bench sweeps block_size.
#pragma once

#include "la/invariants.hpp"
#include "la/kernels.hpp"
#include "sparse/csr.hpp"
#include "util/common.hpp"

namespace bfc::la {

/// Blocked counterpart of count_unblocked. `lines` as in the unblocked
/// kernels (rows enumerate the partitioned dimension). block_size >= 1;
/// block_size == 1 degenerates to the unblocked traversal.
[[nodiscard]] count_t count_blocked(const sparse::CsrPattern& lines,
                                    Direction direction, PeerSide peer,
                                    vidx_t block_size);

/// OpenMP version: panels are independent work units (each covers its own
/// pivot-pair set exactly once), so they distribute over threads with
/// per-thread scratch and an integer reduction.
[[nodiscard]] count_t count_blocked_parallel(const sparse::CsrPattern& lines,
                                             Direction direction,
                                             PeerSide peer, vidx_t block_size);

}  // namespace bfc::la
