#include "la/invariants.hpp"

#include <stdexcept>

namespace bfc::la {

InvariantTraits traits(Invariant inv) {
  switch (inv) {
    case Invariant::kInv1:
      return {Family::kColumns, Direction::kForward, PeerSide::kBefore, false};
    case Invariant::kInv2:
      return {Family::kColumns, Direction::kForward, PeerSide::kAfter, true};
    case Invariant::kInv3:
      // Backward traversal: indices below the pivot are future pivots, so
      // the A0 peer is a look-ahead access.
      return {Family::kColumns, Direction::kBackward, PeerSide::kBefore, true};
    case Invariant::kInv4:
      return {Family::kColumns, Direction::kBackward, PeerSide::kAfter, false};
    case Invariant::kInv5:
      return {Family::kRows, Direction::kForward, PeerSide::kBefore, false};
    case Invariant::kInv6:
      return {Family::kRows, Direction::kForward, PeerSide::kAfter, true};
    case Invariant::kInv7:
      return {Family::kRows, Direction::kBackward, PeerSide::kBefore, true};
    case Invariant::kInv8:
      return {Family::kRows, Direction::kBackward, PeerSide::kAfter, false};
  }
  throw std::invalid_argument("traits: bad invariant value");
}

const char* name(Invariant inv) {
  switch (inv) {
    case Invariant::kInv1: return "Inv. 1";
    case Invariant::kInv2: return "Inv. 2";
    case Invariant::kInv3: return "Inv. 3";
    case Invariant::kInv4: return "Inv. 4";
    case Invariant::kInv5: return "Inv. 5";
    case Invariant::kInv6: return "Inv. 6";
    case Invariant::kInv7: return "Inv. 7";
    case Invariant::kInv8: return "Inv. 8";
  }
  throw std::invalid_argument("name: bad invariant value");
}

Invariant invariant_from_number(int k) {
  require(k >= 1 && k <= 8, "invariant number must be 1..8");
  return static_cast<Invariant>(k);
}

}  // namespace bfc::la
