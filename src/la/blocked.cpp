#include "la/blocked.hpp"

#include <algorithm>
#include <bit>
#include <vector>

#include "chk/validate.hpp"
#include "chk/tsan_fence.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace bfc::la {
namespace {

/// Panels are encoded as bitmasks over the shared vertex dimension, so the
/// panel width is capped at the word size; wider requests are processed in
/// 64-line chunks by the driver.
constexpr vidx_t kMaxPanel = 64;

struct PanelScratch {
  std::vector<std::uint64_t> member;  // vertex -> bitmask of panel lines
  std::vector<count_t> t;             // per-panel-line overlap accumulator
  std::vector<vidx_t> touched;

  explicit PanelScratch(vidx_t vertex_dim)
      : member(static_cast<std::size_t>(vertex_dim), 0),
        t(kMaxPanel, 0) {}
};

/// Counts butterflies of one panel [b0, b1) against peer lines [peer_lo,
/// peer_hi) plus the pairs inside the panel itself.
count_t panel_update(const sparse::CsrPattern& lines, vidx_t b0, vidx_t b1,
                     vidx_t peer_lo, vidx_t peer_hi, PanelScratch& scratch) {
  // Register panel membership bitmasks.
  for (vidx_t p = b0; p < b1; ++p) {
    const std::uint64_t bit = 1ULL << (p - b0);
    for (const vidx_t i : lines.row(p))
      scratch.member[static_cast<std::size_t>(i)] |= bit;
  }

  count_t total = 0;
  count_t obs_wedges = 0, obs_nnz = 0;
  // The peer range is contiguous: its scanned entries are one row_ptr
  // difference, not a per-line degree lookup inside the scan loop.
  if constexpr (obs::kMetricsEnabled)
    obs_nnz = lines.row_ptr()[static_cast<std::size_t>(peer_hi)] -
              lines.row_ptr()[static_cast<std::size_t>(peer_lo)];

  // (b) Panel x peer: ONE scan of the peer partition recovers t_{c,q} for
  // every panel line q simultaneously — the blocking payoff.
  for (vidx_t c = peer_lo; c < peer_hi; ++c) {
    scratch.touched.clear();
    for (const vidx_t i : lines.row(c)) {
      std::uint64_t bits = scratch.member[static_cast<std::size_t>(i)];
      while (bits != 0) {
        const int q = std::countr_zero(bits);
        bits &= bits - 1;
        if (scratch.t[static_cast<std::size_t>(q)] == 0)
          scratch.touched.push_back(static_cast<vidx_t>(q));
        ++scratch.t[static_cast<std::size_t>(q)];
      }
    }
    for (const vidx_t q : scratch.touched) {
      if constexpr (obs::kMetricsEnabled)
        obs_wedges += scratch.t[static_cast<std::size_t>(q)];
      total += choose2(scratch.t[static_cast<std::size_t>(q)]);
      scratch.t[static_cast<std::size_t>(q)] = 0;
    }
  }

  // (a) Pairs inside the panel: expand each line against the bitmask of
  // STRICTLY LATER panel lines so each pair is counted once.
  for (vidx_t p = b0; p < b1; ++p) {
    const vidx_t q1 = p - b0;
    scratch.touched.clear();
    for (const vidx_t i : lines.row(p)) {
      // Keep only panel-mates with larger local index.
      std::uint64_t bits = scratch.member[static_cast<std::size_t>(i)] &
                           ~((q1 == 63) ? ~0ULL : ((2ULL << q1) - 1));
      while (bits != 0) {
        const int q2 = std::countr_zero(bits);
        bits &= bits - 1;
        if (scratch.t[static_cast<std::size_t>(q2)] == 0)
          scratch.touched.push_back(static_cast<vidx_t>(q2));
        ++scratch.t[static_cast<std::size_t>(q2)];
      }
    }
    for (const vidx_t q2 : scratch.touched) {
      if constexpr (obs::kMetricsEnabled)
        obs_wedges += scratch.t[static_cast<std::size_t>(q2)];
      total += choose2(scratch.t[static_cast<std::size_t>(q2)]);
      scratch.t[static_cast<std::size_t>(q2)] = 0;
    }
  }

  // Clear membership for the next panel.
  for (vidx_t p = b0; p < b1; ++p)
    for (const vidx_t i : lines.row(p))
      scratch.member[static_cast<std::size_t>(i)] = 0;

  if constexpr (obs::kMetricsEnabled) {
    BFC_COUNT_ADD("la.panels", 1);
    BFC_COUNT_ADD("la.lines_processed", b1 - b0);
    BFC_COUNT_ADD("la.wedges", obs_wedges);
    BFC_COUNT_ADD("la.nnz_scanned", obs_nnz);
  }
  return total;
}

}  // namespace

count_t count_blocked(const sparse::CsrPattern& lines, Direction direction,
                      PeerSide peer, vidx_t block_size) {
  require(block_size >= 1, "count_blocked: block_size must be >= 1");
  BFC_VALIDATE(lines);
  const vidx_t b = std::min(block_size, kMaxPanel);
  const vidx_t n = lines.rows();
  PanelScratch scratch(lines.cols());

  count_t total = 0;
  // Panels tile [0, n); the traversal direction only changes the order in
  // which they are visited (performance, not coverage), exactly as for the
  // unblocked family.
  const vidx_t panels = n == 0 ? 0 : (n + b - 1) / b;
  for (vidx_t k = 0; k < panels; ++k) {
    const vidx_t panel_idx =
        direction == Direction::kForward ? k : panels - 1 - k;
    const vidx_t b0 = panel_idx * b;
    const vidx_t b1 = std::min<vidx_t>(b0 + b, n);
    const vidx_t peer_lo = peer == PeerSide::kBefore ? 0 : b1;
    const vidx_t peer_hi = peer == PeerSide::kBefore ? b0 : n;
    total += panel_update(lines, b0, b1, peer_lo, peer_hi, scratch);
  }
  return total;
}

count_t count_blocked_parallel(const sparse::CsrPattern& lines,
                               Direction direction, PeerSide peer,
                               vidx_t block_size) {
  require(block_size >= 1, "count_blocked_parallel: block_size must be >= 1");
  BFC_VALIDATE(lines);
  const vidx_t b = std::min(block_size, kMaxPanel);
  const vidx_t n = lines.rows();
  const std::int64_t panels = n == 0 ? 0 : (n + b - 1) / b;
  count_t total = 0;
  chk::TsanOmpFence fence;

#pragma omp parallel
  {
    PanelScratch scratch(lines.cols());
    obs::ScopedTrace thread_span("kernel.blocked_parallel");
#pragma omp for schedule(dynamic, 1) reduction(+ : total)
    for (std::int64_t k = 0; k < panels; ++k) {
      const auto panel_idx = static_cast<vidx_t>(
          direction == Direction::kForward ? k : panels - 1 - k);
      const vidx_t b0 = panel_idx * b;
      const vidx_t b1 = std::min<vidx_t>(b0 + b, n);
      const vidx_t peer_lo = peer == PeerSide::kBefore ? 0 : b1;
      const vidx_t peer_hi = peer == PeerSide::kBefore ? b0 : n;
      total += panel_update(lines, b0, b1, peer_lo, peer_hi, scratch);
    }
    fence.thread_done();
  }
  fence.join();
  return total;
}

}  // namespace bfc::la
