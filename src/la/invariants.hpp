// The family of eight butterfly counting algorithms derived in §III of the
// paper, one per loop invariant (Figs. 4 and 5):
//
//   Invariant  partitioned set  traversal      update peer   algorithm
//   1          V2 (columns)     L -> R         A0 (before)   Fig. 6, Alg 1
//   2          V2 (columns)     L -> R         A2 (after)    Fig. 6, Alg 2
//   3          V2 (columns)     R -> L         A0 (before)   Fig. 6, Alg 3
//   4          V2 (columns)     R -> L         A2 (after)    Fig. 6, Alg 4
//   5          V1 (rows)        T -> B         A0 (before)   Fig. 7, Alg 5
//   6          V1 (rows)        T -> B         A2 (after)    Fig. 7, Alg 6
//   7          V1 (rows)        B -> T         A0 (before)   Fig. 7, Alg 7
//   8          V1 (rows)        B -> T         A2 (after)    Fig. 7, Alg 8
//
// "Look-ahead" marks algorithms whose update touches matrix parts that will
// be exposed in future iterations (peer set not yet traversed).
#pragma once

#include <array>
#include <string>

#include "util/common.hpp"

namespace bfc::la {

enum class Invariant {
  kInv1 = 1,
  kInv2 = 2,
  kInv3 = 3,
  kInv4 = 4,
  kInv5 = 5,
  kInv6 = 6,
  kInv7 = 7,
  kInv8 = 8,
};

/// Which vertex set the FLAME loop partitions.
enum class Family { kColumns, kRows };

/// Traversal order of the pivot over the partitioned dimension.
enum class Direction { kForward, kBackward };

/// Which side of the pivot the update's peer partition lies on:
/// kBefore = A0 (indices below the pivot), kAfter = A2 (indices above).
enum class PeerSide { kBefore, kAfter };

struct InvariantTraits {
  Family family;
  Direction direction;
  PeerSide peer;
  bool look_ahead;  // peer partition has not been traversed yet
};

[[nodiscard]] InvariantTraits traits(Invariant inv);

[[nodiscard]] const char* name(Invariant inv);

/// 1-8 -> Invariant; throws on anything else.
[[nodiscard]] Invariant invariant_from_number(int k);

[[nodiscard]] constexpr std::array<Invariant, 8> all_invariants() {
  return {Invariant::kInv1, Invariant::kInv2, Invariant::kInv3,
          Invariant::kInv4, Invariant::kInv5, Invariant::kInv6,
          Invariant::kInv7, Invariant::kInv8};
}

}  // namespace bfc::la
