#include "la/partition.hpp"
#include "chk/checked_math.hpp"

namespace bfc::la {

std::vector<Step> traversal_steps(vidx_t n, Direction direction,
                                  PeerSide peer) {
  require(n >= 0, "traversal_steps: negative dimension");
  std::vector<Step> steps;
  steps.reserve(static_cast<std::size_t>(n));
  for (vidx_t i = 0; i < n; ++i) {
    const vidx_t pivot = direction == Direction::kForward ? i : n - 1 - i;
    Step s;
    s.pivot = pivot;
    if (peer == PeerSide::kBefore) {
      s.peer_lo = 0;
      s.peer_hi = pivot;
    } else {
      s.peer_lo = pivot + 1;
      s.peer_hi = n;
    }
    steps.push_back(s);
  }
  return steps;
}

count_t total_peer_width(const std::vector<Step>& steps) {
  count_t total = 0;
  for (const Step& s : steps)
    total = chk::checked_add(total, s.peer_hi - s.peer_lo);
  return total;
}

}  // namespace bfc::la
