#include "la/count.hpp"

#include "la/blocked.hpp"
#include "util/parallel.hpp"

namespace bfc::la {
namespace {

UpdateForm resolve_update(CountOptions::Update update, const InvariantTraits& t) {
  switch (update) {
    case CountOptions::Update::kFused:
      return UpdateForm::kFused;
    case CountOptions::Update::kTwoTerm:
      return UpdateForm::kTwoTerm;
    case CountOptions::Update::kAuto:
      return t.peer == PeerSide::kAfter ? UpdateForm::kFused
                                        : UpdateForm::kTwoTerm;
  }
  throw std::invalid_argument("bad CountOptions::Update");
}

}  // namespace

count_t count_butterflies(const graph::BipartiteGraph& g, Invariant inv,
                          const CountOptions& options) {
  require(options.threads >= 1, "count_butterflies: threads must be >= 1");
  const InvariantTraits t = traits(inv);

  // "Lines" enumerate the partitioned dimension: columns of A for the V2
  // family (CSC view), rows of A for the V1 family (CSR view).
  const sparse::CsrPattern& lines =
      t.family == Family::kColumns ? g.csc() : g.csr();
  const sparse::CsrPattern& lines_t =
      t.family == Family::kColumns ? g.csr() : g.csc();

  if (options.storage == Storage::kMismatched) {
    require(options.engine == Engine::kUnblocked && options.threads == 1,
            "mismatched storage is only modelled for the sequential "
            "unblocked engine");
    // Only the wrong orientation is considered available: rows of `lines_t`
    // are the non-partitioned dimension.
    return count_mismatched(lines_t, t.direction, t.peer);
  }

  if (options.engine == Engine::kBlocked) {
    if (options.threads == 1)
      return count_blocked(lines, t.direction, t.peer, options.block_size);
    ThreadCountGuard guard(options.threads);
    return count_blocked_parallel(lines, t.direction, t.peer,
                                  options.block_size);
  }

  const UpdateForm form = resolve_update(options.update, t);
  if (options.engine == Engine::kUnblocked) {
    if (options.threads == 1)
      return count_unblocked(lines, t.direction, t.peer, form);
    ThreadCountGuard guard(options.threads);
    return count_unblocked_parallel(lines, t.direction, t.peer, form);
  }

  if (options.threads == 1)
    return count_wedge(lines, lines_t, t.direction, t.peer);
  ThreadCountGuard guard(options.threads);
  return count_wedge_parallel(lines, lines_t, t.direction, t.peer);
}

count_t count_butterflies(const graph::BipartiteGraph& g) {
  CountOptions options;
  options.engine = Engine::kWedge;
  // Partition the smaller vertex set, the paper's own selection rule (§V).
  const Invariant inv =
      g.n2() <= g.n1() ? Invariant::kInv2 : Invariant::kInv6;
  return count_butterflies(g, inv, options);
}

}  // namespace bfc::la
