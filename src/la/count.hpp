// Public entry point of the core library: count the butterflies of a
// bipartite graph with any of the paper's eight invariant-derived
// algorithms, in any engine/update/threading configuration.
//
//   graph::BipartiteGraph g = ...;
//   count_t x = la::count_butterflies(g, la::Invariant::kInv2);
//
// All configurations return the exact butterfly count Ξ_G; they differ only
// in traversal order, access pattern and cost (see DESIGN.md §2-3).
#pragma once

#include "graph/bipartite_graph.hpp"
#include "la/invariants.hpp"
#include "la/kernels.hpp"
#include "util/common.hpp"

namespace bfc::la {

enum class Engine {
  /// Paper-faithful unblocked kernel: rescans the peer partition from the
  /// invariant's preferred storage each step, O(p·nnz) total.
  kUnblocked,
  /// Optimised wedge-expansion kernel, O(Σ wedges) total; uses both
  /// storage orientations (listed under the paper's future-work
  /// optimisations).
  kWedge,
  /// FLAME blocked variant: exposes a panel of CountOptions::block_size
  /// lines per iteration and scans the peer partition once per PANEL,
  /// amortising the O(p·nnz) cost block_size-fold (see la/blocked.hpp).
  kBlocked,
};

enum class Storage {
  /// CSC for the column family (invariants 1-4), CSR for the row family
  /// (5-8) — the pairing §V describes.
  kMatched,
  /// Deliberately wrong orientation; only meaningful with Engine::kUnblocked
  /// and exercised by the storage-format ablation bench.
  kMismatched,
};

struct CountOptions {
  Engine engine = Engine::kUnblocked;
  /// kAuto follows the paper's implementation note: the literal two-term
  /// update for A0-peer invariants (1, 3, 5, 7) and the fused single-pass
  /// form for A2-peer invariants (2, 4, 6, 8), whose Eq. (18) discussion
  /// points out the subtraction term can be avoided.
  enum class Update { kAuto, kFused, kTwoTerm } update = Update::kAuto;
  Storage storage = Storage::kMatched;
  /// 1 = sequential; > 1 = OpenMP with that many threads.
  int threads = 1;
  /// Panel width for Engine::kBlocked (clamped to 64, the bitmask word).
  vidx_t block_size = 32;
};

/// Exact butterfly count Ξ_G of g using the given invariant's algorithm.
[[nodiscard]] count_t count_butterflies(const graph::BipartiteGraph& g,
                                        Invariant inv,
                                        const CountOptions& options = {});

/// Convenience: Inv. 2 (the paper's strongest column algorithm) with the
/// optimised wedge engine on the smaller vertex set — what a downstream
/// user should call when they just want the count.
[[nodiscard]] count_t count_butterflies(const graph::BipartiteGraph& g);

}  // namespace bfc::la
