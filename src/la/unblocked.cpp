#include "chk/validate.hpp"
#include "la/kernels.hpp"
#include "la/partition.hpp"
#include "obs/metrics.hpp"

namespace bfc::la {
namespace {

/// t_c = |a₁ ∩ line c| by scanning line c against the pivot's mark array.
inline count_t line_overlap(const sparse::CsrPattern& lines, vidx_t c,
                            const std::vector<std::uint8_t>& marked) {
  count_t t = 0;
  for (const vidx_t i : lines.row(c)) t += marked[static_cast<std::size_t>(i)];
  return t;
}

}  // namespace

count_t count_unblocked(const sparse::CsrPattern& lines, Direction direction,
                        PeerSide peer, UpdateForm form) {
  BFC_VALIDATE(lines);
  const vidx_t n = lines.rows();
  std::vector<std::uint8_t> marked(static_cast<std::size_t>(lines.cols()), 0);
  count_t total = 0;
  // Kernel work counters, accumulated locally and published once at the end
  // so the hot loops never touch a shared shard. `wedges` is Σ t_c over all
  // processed (pivot, peer) pairs; `nnz_scanned` the peer entries read.
  count_t obs_lines = 0, obs_wedges = 0, obs_nnz = 0;

  for (const Step& step : traversal_steps(n, direction, peer)) {
    const auto pivot_line = lines.row(step.pivot);
    // A pivot with fewer than 2 entries contributes zero under either form
    // (t_c ≤ 1 everywhere, so Σ C(t_c,2) = 0 and Σ t_c² = Σ t_c); skipping
    // it in both keeps the two-term/fused ablation a pure one-pass vs
    // two-pass comparison.
    if (pivot_line.size() < 2) continue;
    for (const vidx_t i : pivot_line) marked[static_cast<std::size_t>(i)] = 1;

    // The peer range is contiguous, so the entries it scans are one O(1)
    // row_ptr difference — never a per-line degree lookup inside the hot
    // loop (measurably expensive at O(p·nnz) trip counts).
    if constexpr (obs::kMetricsEnabled) {
      const auto& ptr = lines.row_ptr();
      const offset_t range_nnz = ptr[static_cast<std::size_t>(step.peer_hi)] -
                                 ptr[static_cast<std::size_t>(step.peer_lo)];
      obs_nnz += (form == UpdateForm::kFused ? 1 : 2) * range_nnz;
    }
    if (form == UpdateForm::kFused) {
      // Σ_c C(t_c, 2): single pass, no subtraction term.
      count_t step_sum = 0;
      count_t step_wedges = 0;
      for (vidx_t c = step.peer_lo; c < step.peer_hi; ++c) {
        const count_t t = line_overlap(lines, c, marked);
        step_sum += choose2(t);
        if constexpr (obs::kMetricsEnabled) step_wedges += t;
      }
      total += step_sum;
      if constexpr (obs::kMetricsEnabled) obs_wedges += step_wedges;
    } else {
      // Literal Eq. (17)/(18): ½·a₁ᵀPPᵀa₁ as Σ t_c² in one pass over the
      // peer partition, then ½·Γ(a₁a₁ᵀ∘PPᵀ) as Σ t_c in a second pass.
      count_t quad = 0;
      for (vidx_t c = step.peer_lo; c < step.peer_hi; ++c) {
        const count_t t = line_overlap(lines, c, marked);
        quad += t * t;
      }
      count_t lin = 0;
      for (vidx_t c = step.peer_lo; c < step.peer_hi; ++c)
        lin += line_overlap(lines, c, marked);
      total += (quad - lin) / 2;
      if constexpr (obs::kMetricsEnabled) obs_wedges += lin;
    }

    if constexpr (obs::kMetricsEnabled) ++obs_lines;
    for (const vidx_t i : pivot_line) marked[static_cast<std::size_t>(i)] = 0;
  }
  if constexpr (obs::kMetricsEnabled) {
    BFC_COUNT_ADD("la.lines_processed", obs_lines);
    BFC_COUNT_ADD("la.wedges", obs_wedges);
    BFC_COUNT_ADD("la.nnz_scanned", obs_nnz);
  }
  return total;
}

count_t count_mismatched(const sparse::CsrPattern& other, Direction direction,
                         PeerSide peer) {
  BFC_VALIDATE(other);
  // `other` stores the non-partitioned dimension as rows (e.g. the CSR of A
  // while running a column-family traversal). The pivot line a₁ is not
  // directly addressable, so each step rebuilds it by binary-searching the
  // pivot id in every stored row — the access-pattern penalty of storing
  // the matrix in the wrong format for the chosen invariant family.
  const vidx_t n = other.cols();  // partitioned dimension size
  std::vector<vidx_t> pivot_line;
  std::vector<count_t> acc(static_cast<std::size_t>(n), 0);
  std::vector<vidx_t> touched;
  count_t total = 0;
  count_t obs_lines = 0, obs_wedges = 0;

  for (const Step& step : traversal_steps(n, direction, peer)) {
    pivot_line.clear();
    for (vidx_t r = 0; r < other.rows(); ++r)
      if (other.has(r, step.pivot)) pivot_line.push_back(r);
    if (pivot_line.size() < 2) continue;

    // With row-major storage the peer columns cannot be scanned directly;
    // expand the pivot's wedges row by row instead.
    touched.clear();
    for (const vidx_t i : pivot_line) {
      for (const vidx_t c : other.row(i)) {
        if (c < step.peer_lo || c >= step.peer_hi) continue;
        if (acc[static_cast<std::size_t>(c)] == 0) touched.push_back(c);
        ++acc[static_cast<std::size_t>(c)];
      }
    }
    for (const vidx_t c : touched) {
      if constexpr (obs::kMetricsEnabled)
        obs_wedges += acc[static_cast<std::size_t>(c)];
      total += choose2(acc[static_cast<std::size_t>(c)]);
      acc[static_cast<std::size_t>(c)] = 0;
    }
    if constexpr (obs::kMetricsEnabled) ++obs_lines;
  }
  if constexpr (obs::kMetricsEnabled) {
    BFC_COUNT_ADD("la.lines_processed", obs_lines);
    BFC_COUNT_ADD("la.wedges", obs_wedges);
  }
  return total;
}

}  // namespace bfc::la
