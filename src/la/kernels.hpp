// Update kernels shared by all eight invariants. Both families reduce to
// the same computation once the partitioned dimension is presented as the
// rows of a CsrPattern:
//   - column family (invariants 1-4): lines = CSC of A (rows are V2
//     vertices, entries are V1 ids), matching the paper's CSC storage;
//   - row family (invariants 5-8): lines = CSR of A.
// Each step evaluates the Fig. 6/7 update
//   Ξ += ½·a₁ᵀ P Pᵀ a₁ − ½·Γ(a₁a₁ᵀ ∘ P Pᵀ)
// for pivot line a₁ and peer partition P ∈ {A0, A2}.
#pragma once

#include "la/invariants.hpp"
#include "sparse/csr.hpp"
#include "util/common.hpp"

namespace bfc::la {

/// How the per-step update is evaluated.
enum class UpdateForm {
  /// Literal two-term evaluation: one pass over the peer partition for
  /// a₁ᵀPPᵀa₁ (Σ t_c²) and a second pass for Γ(a₁a₁ᵀ∘PPᵀ) (Σ t_c) — the
  /// straightforward reading of Eq. (17)/(18).
  kTwoTerm,
  /// Single fused pass accumulating Σ C(t_c, 2), "avoiding the computation
  /// of the subtraction term" as §III-C suggests.
  kFused,
};

/// Paper-faithful unblocked kernel: for every step, the peer partition is
/// re-scanned in the stored format, so one invariant run costs
/// O(Σ_steps nnz(peer)) ≈ O(p · nnz) where p is the partitioned dimension —
/// the cost model behind the paper's Fig. 10/11 shapes. Sequential.
[[nodiscard]] count_t count_unblocked(const sparse::CsrPattern& lines,
                                      Direction direction, PeerSide peer,
                                      UpdateForm form);

/// OpenMP version of count_unblocked: pivots are distributed over threads,
/// each with private mark scratch; the step sums are combined with a
/// deterministic integer reduction.
[[nodiscard]] count_t count_unblocked_parallel(const sparse::CsrPattern& lines,
                                               Direction direction,
                                               PeerSide peer, UpdateForm form);

/// Optimised wedge-expansion kernel (needs both orientations): instead of
/// scanning the whole peer partition, each pivot expands only its actual
/// wedges through lines_t, costing O(Σ wedges) overall. Fused update only.
[[nodiscard]] count_t count_wedge(const sparse::CsrPattern& lines,
                                  const sparse::CsrPattern& lines_t,
                                  Direction direction, PeerSide peer);

/// OpenMP version of count_wedge.
[[nodiscard]] count_t count_wedge_parallel(const sparse::CsrPattern& lines,
                                           const sparse::CsrPattern& lines_t,
                                           Direction direction, PeerSide peer);

/// Storage-format-mismatch kernel for the A4 ablation: runs a column-family
/// style traversal when only the opposite orientation (`other`, whose rows
/// are the NON-partitioned dimension) is stored. Recovering each pivot line
/// costs a binary-search scan over all stored rows, which is exactly the
/// penalty §V's storage-format discussion predicts.
[[nodiscard]] count_t count_mismatched(const sparse::CsrPattern& other,
                                       Direction direction, PeerSide peer);

}  // namespace bfc::la
