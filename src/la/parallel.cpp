#include <omp.h>

#include "la/kernels.hpp"
#include "la/partition.hpp"

namespace bfc::la {
namespace {

inline count_t line_overlap(const sparse::CsrPattern& lines, vidx_t c,
                            const std::vector<std::uint8_t>& marked) {
  count_t t = 0;
  for (const vidx_t i : lines.row(c)) t += marked[static_cast<std::size_t>(i)];
  return t;
}

}  // namespace

count_t count_unblocked_parallel(const sparse::CsrPattern& lines,
                                 Direction direction, PeerSide peer,
                                 UpdateForm form) {
  const auto steps = traversal_steps(lines.rows(), direction, peer);
  const auto n_steps = static_cast<std::int64_t>(steps.size());
  count_t total = 0;

#pragma omp parallel
  {
    // Private mark scratch per thread; butterfly contributions of distinct
    // pivots are independent, so the steps parallelise trivially and the
    // integer reduction is deterministic.
    std::vector<std::uint8_t> marked(static_cast<std::size_t>(lines.cols()),
                                     0);
#pragma omp for schedule(dynamic, 16) reduction(+ : total)
    for (std::int64_t s = 0; s < n_steps; ++s) {
      const Step& step = steps[static_cast<std::size_t>(s)];
      const auto pivot_line = lines.row(step.pivot);
      // Zero-contribution pivots are skipped under both forms (see the
      // sequential kernel).
      if (pivot_line.size() < 2) continue;
      for (const vidx_t i : pivot_line)
        marked[static_cast<std::size_t>(i)] = 1;

      if (form == UpdateForm::kFused) {
        count_t step_sum = 0;
        for (vidx_t c = step.peer_lo; c < step.peer_hi; ++c)
          step_sum += choose2(line_overlap(lines, c, marked));
        total += step_sum;
      } else {
        count_t quad = 0;
        for (vidx_t c = step.peer_lo; c < step.peer_hi; ++c) {
          const count_t t = line_overlap(lines, c, marked);
          quad += t * t;
        }
        count_t lin = 0;
        for (vidx_t c = step.peer_lo; c < step.peer_hi; ++c)
          lin += line_overlap(lines, c, marked);
        total += (quad - lin) / 2;
      }

      for (const vidx_t i : pivot_line)
        marked[static_cast<std::size_t>(i)] = 0;
    }
  }
  return total;
}

count_t count_wedge_parallel(const sparse::CsrPattern& lines,
                             const sparse::CsrPattern& lines_t,
                             Direction direction, PeerSide peer) {
  require(lines_t.rows() == lines.cols() && lines_t.cols() == lines.rows(),
          "count_wedge_parallel: lines_t is not the transpose of lines");
  const auto steps = traversal_steps(lines.rows(), direction, peer);
  const auto n_steps = static_cast<std::int64_t>(steps.size());
  const vidx_t n = lines.rows();
  count_t total = 0;

#pragma omp parallel
  {
    std::vector<count_t> acc(static_cast<std::size_t>(n), 0);
    std::vector<vidx_t> touched;
#pragma omp for schedule(dynamic, 64) reduction(+ : total)
    for (std::int64_t s = 0; s < n_steps; ++s) {
      const Step& step = steps[static_cast<std::size_t>(s)];
      const auto pivot_line = lines.row(step.pivot);
      if (pivot_line.size() < 2) continue;
      touched.clear();
      for (const vidx_t i : pivot_line) {
        for (const vidx_t c : lines_t.row(i)) {
          if (c < step.peer_lo || c >= step.peer_hi) continue;
          if (acc[static_cast<std::size_t>(c)] == 0) touched.push_back(c);
          ++acc[static_cast<std::size_t>(c)];
        }
      }
      for (const vidx_t c : touched) {
        total += choose2(acc[static_cast<std::size_t>(c)]);
        acc[static_cast<std::size_t>(c)] = 0;
      }
    }
  }
  return total;
}

}  // namespace bfc::la
