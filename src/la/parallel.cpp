#include <omp.h>

#include "chk/validate.hpp"
#include "chk/tsan_fence.hpp"
#include "la/kernels.hpp"
#include "la/partition.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace bfc::la {
namespace {

inline count_t line_overlap(const sparse::CsrPattern& lines, vidx_t c,
                            const std::vector<std::uint8_t>& marked) {
  count_t t = 0;
  for (const vidx_t i : lines.row(c)) t += marked[static_cast<std::size_t>(i)];
  return t;
}

}  // namespace

count_t count_unblocked_parallel(const sparse::CsrPattern& lines,
                                 Direction direction, PeerSide peer,
                                 UpdateForm form) {
  BFC_VALIDATE(lines);
  const auto steps = traversal_steps(lines.rows(), direction, peer);
  const auto n_steps = static_cast<std::int64_t>(steps.size());
  count_t total = 0;
  chk::TsanOmpFence fence;

#pragma omp parallel
  {
    // Private mark scratch per thread; butterfly contributions of distinct
    // pivots are independent, so the steps parallelise trivially and the
    // integer reduction is deterministic.
    std::vector<std::uint8_t> marked(static_cast<std::size_t>(lines.cols()),
                                     0);
    // One trace span and one work-histogram sample per thread per region,
    // so imbalance across the dynamic schedule is visible per track.
    obs::ScopedTrace thread_span("kernel.unblocked_parallel");
    count_t my_lines = 0, my_wedges = 0, my_nnz = 0;
#pragma omp for schedule(dynamic, 16) reduction(+ : total)
    for (std::int64_t s = 0; s < n_steps; ++s) {
      const Step& step = steps[static_cast<std::size_t>(s)];
      const auto pivot_line = lines.row(step.pivot);
      // Zero-contribution pivots are skipped under both forms (see the
      // sequential kernel).
      if (pivot_line.size() < 2) continue;
      for (const vidx_t i : pivot_line)
        marked[static_cast<std::size_t>(i)] = 1;

      // The contiguous peer range's entry count is one row_ptr difference;
      // keep the degree lookup out of the O(p·nnz) loops (see unblocked.cpp).
      if constexpr (obs::kMetricsEnabled) {
        const auto& ptr = lines.row_ptr();
        const offset_t range_nnz =
            ptr[static_cast<std::size_t>(step.peer_hi)] -
            ptr[static_cast<std::size_t>(step.peer_lo)];
        my_nnz += (form == UpdateForm::kFused ? 1 : 2) * range_nnz;
      }
      if (form == UpdateForm::kFused) {
        count_t step_sum = 0;
        count_t step_wedges = 0;
        for (vidx_t c = step.peer_lo; c < step.peer_hi; ++c) {
          const count_t t = line_overlap(lines, c, marked);
          step_sum += choose2(t);
          if constexpr (obs::kMetricsEnabled) step_wedges += t;
        }
        total += step_sum;
        if constexpr (obs::kMetricsEnabled) my_wedges += step_wedges;
      } else {
        count_t quad = 0;
        for (vidx_t c = step.peer_lo; c < step.peer_hi; ++c) {
          const count_t t = line_overlap(lines, c, marked);
          quad += t * t;
        }
        count_t lin = 0;
        for (vidx_t c = step.peer_lo; c < step.peer_hi; ++c)
          lin += line_overlap(lines, c, marked);
        total += (quad - lin) / 2;
        if constexpr (obs::kMetricsEnabled) my_wedges += lin;
      }

      if constexpr (obs::kMetricsEnabled) ++my_lines;
      for (const vidx_t i : pivot_line)
        marked[static_cast<std::size_t>(i)] = 0;
    }
    if constexpr (obs::kMetricsEnabled) {
      BFC_COUNT_ADD("la.lines_processed", my_lines);
      BFC_COUNT_ADD("la.wedges", my_wedges);
      BFC_COUNT_ADD("la.nnz_scanned", my_nnz);
      BFC_HIST_OBSERVE("la.thread_lines", my_lines);
    }
    fence.thread_done();
  }
  fence.join();
  return total;
}

count_t count_wedge_parallel(const sparse::CsrPattern& lines,
                             const sparse::CsrPattern& lines_t,
                             Direction direction, PeerSide peer) {
  require(lines_t.rows() == lines.cols() && lines_t.cols() == lines.rows(),
          "count_wedge_parallel: lines_t is not the transpose of lines");
  if constexpr (chk::kCheckedEnabled) chk::validate_mirror(lines, lines_t);
  const auto steps = traversal_steps(lines.rows(), direction, peer);
  const auto n_steps = static_cast<std::int64_t>(steps.size());
  const vidx_t n = lines.rows();
  count_t total = 0;
  chk::TsanOmpFence fence;

#pragma omp parallel
  {
    std::vector<count_t> acc(static_cast<std::size_t>(n), 0);
    std::vector<vidx_t> touched;
    obs::ScopedTrace thread_span("kernel.wedge_parallel");
    count_t my_lines = 0, my_wedges = 0;
#pragma omp for schedule(dynamic, 64) reduction(+ : total)
    for (std::int64_t s = 0; s < n_steps; ++s) {
      const Step& step = steps[static_cast<std::size_t>(s)];
      const auto pivot_line = lines.row(step.pivot);
      if (pivot_line.size() < 2) continue;
      touched.clear();
      for (const vidx_t i : pivot_line) {
        for (const vidx_t c : lines_t.row(i)) {
          if (c < step.peer_lo || c >= step.peer_hi) continue;
          if (acc[static_cast<std::size_t>(c)] == 0) touched.push_back(c);
          ++acc[static_cast<std::size_t>(c)];
        }
      }
      for (const vidx_t c : touched) {
        if constexpr (obs::kMetricsEnabled)
          my_wedges += acc[static_cast<std::size_t>(c)];
        total += choose2(acc[static_cast<std::size_t>(c)]);
        acc[static_cast<std::size_t>(c)] = 0;
      }
      if constexpr (obs::kMetricsEnabled) ++my_lines;
    }
    if constexpr (obs::kMetricsEnabled) {
      BFC_COUNT_ADD("la.lines_processed", my_lines);
      BFC_COUNT_ADD("la.wedges", my_wedges);
      BFC_HIST_OBSERVE("la.thread_lines", my_lines);
    }
    fence.thread_done();
  }
  fence.join();
  return total;
}

}  // namespace bfc::la
