#include "chk/validate.hpp"
#include "la/kernels.hpp"
#include "la/partition.hpp"
#include "obs/metrics.hpp"

namespace bfc::la {

count_t count_wedge(const sparse::CsrPattern& lines,
                    const sparse::CsrPattern& lines_t, Direction direction,
                    PeerSide peer) {
  require(lines_t.rows() == lines.cols() && lines_t.cols() == lines.rows(),
          "count_wedge: lines_t is not the transpose of lines");
  if constexpr (chk::kCheckedEnabled) chk::validate_mirror(lines, lines_t);
  const vidx_t n = lines.rows();
  std::vector<count_t> acc(static_cast<std::size_t>(n), 0);
  std::vector<vidx_t> touched;
  count_t total = 0;
  count_t obs_lines = 0, obs_wedges = 0;

  for (const Step& step : traversal_steps(n, direction, peer)) {
    const auto pivot_line = lines.row(step.pivot);
    if (pivot_line.size() < 2) continue;
    touched.clear();
    // Expand only the pivot's wedges: i is a shared endpoint, c a peer line
    // containing it, so after the loop acc[c] = t_c.
    for (const vidx_t i : pivot_line) {
      for (const vidx_t c : lines_t.row(i)) {
        if (c < step.peer_lo || c >= step.peer_hi) continue;
        if (acc[static_cast<std::size_t>(c)] == 0) touched.push_back(c);
        ++acc[static_cast<std::size_t>(c)];
      }
    }
    for (const vidx_t c : touched) {
      // acc[c] = t_c, so summing it here counts every expanded wedge
      // without touching the inner expansion loop.
      if constexpr (obs::kMetricsEnabled)
        obs_wedges += acc[static_cast<std::size_t>(c)];
      total += choose2(acc[static_cast<std::size_t>(c)]);
      acc[static_cast<std::size_t>(c)] = 0;
    }
    if constexpr (obs::kMetricsEnabled) ++obs_lines;
  }
  if constexpr (obs::kMetricsEnabled) {
    BFC_COUNT_ADD("la.lines_processed", obs_lines);
    BFC_COUNT_ADD("la.wedges", obs_wedges);
  }
  return total;
}

}  // namespace bfc::la
