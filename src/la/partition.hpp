// FLAME-style traversal bookkeeping. A counting loop repeatedly exposes one
// pivot line a₁ of the partitioned dimension (a column of A for the V2
// family, a row for the V1 family) and pairs it with a contiguous peer
// range (A0 = indices below the pivot, A2 = indices above). Materialising
// the steps makes the update kernels independent of the traversal algebra
// and lets tests assert the repartitioning logic in isolation.
#pragma once

#include <vector>

#include "la/invariants.hpp"
#include "util/common.hpp"

namespace bfc::la {

struct Step {
  vidx_t pivot = 0;    // index of the exposed line a₁
  vidx_t peer_lo = 0;  // peer range [peer_lo, peer_hi)
  vidx_t peer_hi = 0;
};

/// The n steps of a traversal over dimension size n. Forward visits pivots
/// 0..n-1, backward n-1..0; the peer range is [0, pivot) for kBefore and
/// (pivot, n) for kAfter.
[[nodiscard]] std::vector<Step> traversal_steps(vidx_t n, Direction direction,
                                                PeerSide peer);

/// Sum over all steps of the peer-range width — the pair-enumeration volume.
/// Every traversal covers each unordered pair exactly once, so this always
/// equals C(n, 2); tests use it as a partitioning sanity check.
[[nodiscard]] count_t total_peer_width(const std::vector<Step>& steps);

}  // namespace bfc::la
