#include "dense/dense_matrix.hpp"
#include "chk/checked_math.hpp"

#include <ostream>

namespace bfc::dense {

DenseMatrix::DenseMatrix(vidx_t rows, vidx_t cols)
    : rows_(rows),
      cols_(cols),
      data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
            0) {
  require(rows >= 0 && cols >= 0, "DenseMatrix: negative dimension");
}

DenseMatrix::DenseMatrix(
    std::initializer_list<std::initializer_list<count_t>> rows) {
  rows_ = static_cast<vidx_t>(rows.size());
  cols_ = rows_ == 0 ? 0 : static_cast<vidx_t>(rows.begin()->size());
  data_.reserve(static_cast<std::size_t>(rows_) *
                static_cast<std::size_t>(cols_));
  for (const auto& row : rows) {
    require(static_cast<vidx_t>(row.size()) == cols_,
            "DenseMatrix: ragged initializer");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

DenseMatrix DenseMatrix::zeros(vidx_t rows, vidx_t cols) {
  return DenseMatrix(rows, cols);
}

DenseMatrix DenseMatrix::ones(vidx_t rows, vidx_t cols) {
  DenseMatrix m(rows, cols);
  for (vidx_t r = 0; r < rows; ++r)
    for (vidx_t c = 0; c < cols; ++c) m(r, c) = 1;
  return m;
}

DenseMatrix DenseMatrix::identity(vidx_t n) {
  DenseMatrix m(n, n);
  for (vidx_t i = 0; i < n; ++i) m(i, i) = 1;
  return m;
}

count_t& DenseMatrix::at(vidx_t r, vidx_t c) {
  require(r >= 0 && r < rows_ && c >= 0 && c < cols_,
          "DenseMatrix::at out of range");
  return (*this)(r, c);
}

count_t DenseMatrix::at(vidx_t r, vidx_t c) const {
  require(r >= 0 && r < rows_ && c >= 0 && c < cols_,
          "DenseMatrix::at out of range");
  return (*this)(r, c);
}

DenseMatrix DenseMatrix::transpose() const {
  DenseMatrix t(cols_, rows_);
  for (vidx_t r = 0; r < rows_; ++r)
    for (vidx_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

count_t DenseMatrix::sum() const {
  count_t total = 0;
  for (const count_t v : data_) total = chk::checked_add(total, v);
  return total;
}

count_t DenseMatrix::trace() const {
  require(rows_ == cols_, "trace: matrix not square");
  count_t total = 0;
  for (vidx_t i = 0; i < rows_; ++i)
    total = chk::checked_add(total, (*this)(i, i));
  return total;
}

DenseMatrix DenseMatrix::diag_vector() const {
  require(rows_ == cols_, "diag_vector: matrix not square");
  DenseMatrix v(rows_, 1);
  for (vidx_t i = 0; i < rows_; ++i) v(i, 0) = (*this)(i, i);
  return v;
}

DenseMatrix multiply(const DenseMatrix& a, const DenseMatrix& b) {
  require(a.cols() == b.rows(), "multiply: inner dimension mismatch");
  DenseMatrix c(a.rows(), b.cols());
  for (vidx_t i = 0; i < a.rows(); ++i) {
    for (vidx_t k = 0; k < a.cols(); ++k) {
      const count_t aik = a(i, k);
      if (aik == 0) continue;
      for (vidx_t j = 0; j < b.cols(); ++j) c(i, j) += aik * b(k, j);
    }
  }
  return c;
}

DenseMatrix hadamard(const DenseMatrix& a, const DenseMatrix& b) {
  require(a.rows() == b.rows() && a.cols() == b.cols(),
          "hadamard: dimension mismatch");
  DenseMatrix c(a.rows(), a.cols());
  for (vidx_t i = 0; i < a.rows(); ++i)
    for (vidx_t j = 0; j < a.cols(); ++j) c(i, j) = a(i, j) * b(i, j);
  return c;
}

DenseMatrix add(const DenseMatrix& a, const DenseMatrix& b) {
  require(a.rows() == b.rows() && a.cols() == b.cols(),
          "add: dimension mismatch");
  DenseMatrix c(a.rows(), a.cols());
  for (vidx_t i = 0; i < a.rows(); ++i)
    for (vidx_t j = 0; j < a.cols(); ++j) c(i, j) = a(i, j) + b(i, j);
  return c;
}

DenseMatrix subtract(const DenseMatrix& a, const DenseMatrix& b) {
  require(a.rows() == b.rows() && a.cols() == b.cols(),
          "subtract: dimension mismatch");
  DenseMatrix c(a.rows(), a.cols());
  for (vidx_t i = 0; i < a.rows(); ++i)
    for (vidx_t j = 0; j < a.cols(); ++j) c(i, j) = a(i, j) - b(i, j);
  return c;
}

DenseMatrix scale(const DenseMatrix& a, count_t k) {
  DenseMatrix c(a.rows(), a.cols());
  for (vidx_t i = 0; i < a.rows(); ++i)
    for (vidx_t j = 0; j < a.cols(); ++j) c(i, j) = k * a(i, j);
  return c;
}

DenseMatrix slice_cols(const DenseMatrix& a, vidx_t lo, vidx_t hi) {
  require(0 <= lo && lo <= hi && hi <= a.cols(), "slice_cols: bad range");
  DenseMatrix c(a.rows(), hi - lo);
  for (vidx_t i = 0; i < a.rows(); ++i)
    for (vidx_t j = lo; j < hi; ++j) c(i, j - lo) = a(i, j);
  return c;
}

DenseMatrix slice_rows(const DenseMatrix& a, vidx_t lo, vidx_t hi) {
  require(0 <= lo && lo <= hi && hi <= a.rows(), "slice_rows: bad range");
  DenseMatrix c(hi - lo, a.cols());
  for (vidx_t i = lo; i < hi; ++i)
    for (vidx_t j = 0; j < a.cols(); ++j) c(i - lo, j) = a(i, j);
  return c;
}

std::ostream& operator<<(std::ostream& os, const DenseMatrix& m) {
  for (vidx_t r = 0; r < m.rows(); ++r) {
    for (vidx_t c = 0; c < m.cols(); ++c)
      os << (c == 0 ? "" : " ") << m(r, c);
    os << '\n';
  }
  return os;
}

}  // namespace bfc::dense
