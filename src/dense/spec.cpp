#include "dense/spec.hpp"
#include "chk/checked_math.hpp"

namespace bfc::dense {
namespace {

/// ¼Γ(BB − B∘B − JB + B) for a symmetric Gram matrix B: the bracketed
/// quantity inside Eq. (7). Asserts exact divisibility by 4, which the
/// derivation guarantees.
count_t butterflies_from_gram(const DenseMatrix& b) {
  const count_t t_bb = multiply(b, b).trace();
  const count_t t_bhb = hadamard(b, b).trace();
  const count_t t_jb = multiply(DenseMatrix::ones(b.rows(), b.rows()), b).trace();
  const count_t t_b = b.trace();
  const count_t numerator = t_bb - t_bhb - t_jb + t_b;
  require(numerator % 4 == 0, "butterfly spec: numerator not divisible by 4");
  return numerator / 4;
}

/// ½Γ(X·Y − X∘Y) for symmetric X, Y — the crossing-category count of
/// Eq. (10)/(12).
count_t crossing_from_grams(const DenseMatrix& x, const DenseMatrix& y) {
  const count_t numerator =
      multiply(x, y).trace() - hadamard(x, y).trace();
  require(numerator % 2 == 0, "crossing spec: numerator not divisible by 2");
  return numerator / 2;
}

}  // namespace

count_t butterflies_brute(const DenseMatrix& a) {
  const vidx_t m = a.rows();
  const vidx_t n = a.cols();
  count_t total = 0;
  for (vidx_t i = 0; i < m; ++i)
    for (vidx_t j = i + 1; j < m; ++j)
      for (vidx_t k = 0; k < n; ++k)
        for (vidx_t p = k + 1; p < n; ++p)
          if (a(i, k) != 0 && a(i, p) != 0 && a(j, k) != 0 && a(j, p) != 0)
            ++total;
  return total;
}

count_t butterflies_spec(const DenseMatrix& a) {
  return butterflies_from_gram(multiply(a, a.transpose()));
}

count_t butterflies_pairwise(const DenseMatrix& a) {
  const DenseMatrix b = multiply(a, a.transpose());
  count_t total = 0;
  for (vidx_t i = 0; i < b.rows(); ++i)
    for (vidx_t j = i + 1; j < b.cols(); ++j)
      total = chk::checked_add(total, chk::checked_choose2(b(i, j)));
  return total;
}

count_t wedges_spec(const DenseMatrix& a) {
  const DenseMatrix b = multiply(a, a.transpose());
  const count_t t_jbt =
      multiply(DenseMatrix::ones(b.rows(), b.rows()), b.transpose()).trace();
  const count_t numerator = t_jbt - b.trace();
  require(numerator % 2 == 0, "wedge spec: numerator not divisible by 2");
  return numerator / 2;
}

PartitionCounts butterflies_col_partition(const DenseMatrix& a, vidx_t split) {
  require(0 <= split && split <= a.cols(), "col partition: bad split");
  const DenseMatrix al = slice_cols(a, 0, split);
  const DenseMatrix ar = slice_cols(a, split, a.cols());
  // Gram matrices over V1 (m x m): wedge points are columns (V2 vertices).
  const DenseMatrix bl = multiply(al, al.transpose());
  const DenseMatrix br = multiply(ar, ar.transpose());
  PartitionCounts out;
  out.both_left = butterflies_from_gram(bl);
  out.crossing = crossing_from_grams(bl, br);
  out.both_right = butterflies_from_gram(br);
  return out;
}

PartitionCounts butterflies_row_partition(const DenseMatrix& a, vidx_t split) {
  require(0 <= split && split <= a.rows(), "row partition: bad split");
  const DenseMatrix at = slice_rows(a, 0, split);
  const DenseMatrix ab = slice_rows(a, split, a.rows());
  // Wedge points are rows (V1 vertices), so the Gram matrices live over V2.
  // Note: the paper's Eq. (12) prints the crossing term with A_T A_Tᵀ, which
  // does not conform dimensionally (t×t vs b×b); the derivation clearly
  // intends the n×n Gram matrices AᵀA used here.
  const DenseMatrix bt = multiply(at.transpose(), at);
  const DenseMatrix bb = multiply(ab.transpose(), ab);
  PartitionCounts out;
  out.both_left = butterflies_from_gram(bt);
  out.crossing = crossing_from_grams(bt, bb);
  out.both_right = butterflies_from_gram(bb);
  return out;
}

std::vector<count_t> tip_vector_spec(const DenseMatrix& a) {
  const DenseMatrix b = multiply(a, a.transpose());
  const DenseMatrix j = DenseMatrix::ones(b.rows(), b.rows());
  const DenseMatrix expr = add(
      subtract(subtract(multiply(b, b), hadamard(b, b)), multiply(j, b)), b);
  // Note: the paper's Eq. (19) prints a ¼ factor, but the i-th diagonal
  // entry of (BB − B∘B − JB + B) equals exactly 2·(butterflies at vertex i):
  // Σ_{j≠i}(B_ij² − B_ij) = 2·Σ_{j≠i} C(B_ij, 2). The ¼ in Eq. (7) is
  // correct only for the TRACE, which additionally sums each butterfly over
  // both of its V1 vertices. Verified against brute-force enumeration in
  // tests/test_spec.cpp (TipVectorMatchesBruteForce).
  std::vector<count_t> s(static_cast<std::size_t>(b.rows()));
  for (vidx_t i = 0; i < b.rows(); ++i) {
    const count_t v = expr(i, i);
    require(v % 2 == 0, "tip spec: diagonal entry not divisible by 2");
    s[static_cast<std::size_t>(i)] = v / 2;
  }
  return s;
}

std::vector<count_t> tip_vector_spec_v2(const DenseMatrix& a) {
  return tip_vector_spec(a.transpose());
}

DenseMatrix wing_support_spec(const DenseMatrix& a) {
  const vidx_t m = a.rows();
  const vidx_t n = a.cols();
  const DenseMatrix b_row = multiply(a, a.transpose());   // m x m
  const DenseMatrix b_col = multiply(a.transpose(), a);   // n x n
  const DenseMatrix aat_a = multiply(b_row, a);           // m x n

  // diag(AAᵀ)·1ᵀ : column vector of row degrees broadcast across columns.
  // 1·diag(AᵀA)ᵀ : row vector of column degrees broadcast down rows.
  DenseMatrix core(m, n);
  for (vidx_t i = 0; i < m; ++i)
    for (vidx_t j = 0; j < n; ++j)
      core(i, j) = aat_a(i, j) - b_row(i, i) - b_col(j, j) + 1;
  return hadamard(core, a);
}

}  // namespace bfc::dense
