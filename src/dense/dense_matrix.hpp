// Exact integer dense matrices. This is the *specification* substrate: the
// paper's equations (7), (9), (19), (25) are evaluated literally on these
// matrices and every derived sparse algorithm is tested against the result.
// Entries are 64-bit integers so all oracle arithmetic is exact.
#pragma once

#include <initializer_list>
#include <iosfwd>
#include <vector>

#include "util/common.hpp"

namespace bfc::dense {

class DenseMatrix {
 public:
  DenseMatrix() = default;

  /// rows x cols matrix of zeros.
  DenseMatrix(vidx_t rows, vidx_t cols);

  /// Row-major literal, e.g. DenseMatrix({{1,0},{0,1}}).
  DenseMatrix(std::initializer_list<std::initializer_list<count_t>> rows);

  [[nodiscard]] static DenseMatrix zeros(vidx_t rows, vidx_t cols);
  [[nodiscard]] static DenseMatrix ones(vidx_t rows, vidx_t cols);
  [[nodiscard]] static DenseMatrix identity(vidx_t n);

  [[nodiscard]] vidx_t rows() const noexcept { return rows_; }
  [[nodiscard]] vidx_t cols() const noexcept { return cols_; }

  [[nodiscard]] count_t& at(vidx_t r, vidx_t c);
  [[nodiscard]] count_t at(vidx_t r, vidx_t c) const;

  [[nodiscard]] count_t operator()(vidx_t r, vidx_t c) const {
    return data_[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) +
                 static_cast<std::size_t>(c)];
  }
  [[nodiscard]] count_t& operator()(vidx_t r, vidx_t c) {
    return data_[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) +
                 static_cast<std::size_t>(c)];
  }

  [[nodiscard]] DenseMatrix transpose() const;

  /// Sum of all entries.
  [[nodiscard]] count_t sum() const;

  /// Trace (square matrices only).
  [[nodiscard]] count_t trace() const;

  /// Diagonal as a column vector (n x 1), per the paper's DIAG().
  [[nodiscard]] DenseMatrix diag_vector() const;

  bool operator==(const DenseMatrix& other) const = default;

 private:
  vidx_t rows_ = 0;
  vidx_t cols_ = 0;
  std::vector<count_t> data_;
};

/// Matrix product (exact; throws on dimension mismatch).
[[nodiscard]] DenseMatrix multiply(const DenseMatrix& a, const DenseMatrix& b);

/// Hadamard (element-wise) product, the paper's "∘".
[[nodiscard]] DenseMatrix hadamard(const DenseMatrix& a, const DenseMatrix& b);

[[nodiscard]] DenseMatrix add(const DenseMatrix& a, const DenseMatrix& b);
[[nodiscard]] DenseMatrix subtract(const DenseMatrix& a, const DenseMatrix& b);

/// Scalar multiple.
[[nodiscard]] DenseMatrix scale(const DenseMatrix& a, count_t k);

/// Column slice [lo, hi) — used by partitioning tests (A -> (A_L | A_R)).
[[nodiscard]] DenseMatrix slice_cols(const DenseMatrix& a, vidx_t lo, vidx_t hi);

/// Row slice [lo, hi) — used by partitioning tests (A -> (A_T / A_B)).
[[nodiscard]] DenseMatrix slice_rows(const DenseMatrix& a, vidx_t lo, vidx_t hi);

std::ostream& operator<<(std::ostream& os, const DenseMatrix& m);

}  // namespace bfc::dense
