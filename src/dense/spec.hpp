// Literal, executable forms of the paper's specifications. These are the
// correctness oracles: slow (dense, O(m^2 n) and worse) but written exactly
// as the equations appear in the paper, so a bug in the fast sparse
// algorithms cannot hide behind a shared implementation.
#pragma once

#include "dense/dense_matrix.hpp"
#include "util/common.hpp"

namespace bfc::dense {

/// Total butterflies by brute-force enumeration of vertex quadruples
/// (i<j in V1, k<p in V2 with all four edges present). The most primitive
/// oracle of all; only usable on tiny graphs.
[[nodiscard]] count_t butterflies_brute(const DenseMatrix& a);

/// Eq. (7): Ξ_G = ¼Γ(AAᵀAAᵀ) − ¼Γ(AAᵀ∘AAᵀ) − (¼Γ(J·AAᵀ) − ¼Γ(AAᵀ)).
[[nodiscard]] count_t butterflies_spec(const DenseMatrix& a);

/// Σ_{i<j} C(B_ij, 2) with B = AAᵀ — the pairwise-wedge specification from
/// §II used to motivate Eq. (1).
[[nodiscard]] count_t butterflies_pairwise(const DenseMatrix& a);

/// Eq. (6): W = ½Γ(J·Bᵀ) − ½Γ(B), the number of wedges with distinct
/// endpoints in V1.
[[nodiscard]] count_t wedges_spec(const DenseMatrix& a);

/// Eq. (10): the three disjoint butterfly categories under a column
/// partition A -> (A_L | A_R). Returned in order {Ξ_L, Ξ_LR, Ξ_R}.
struct PartitionCounts {
  count_t both_left = 0;    // Ξ_L  (or Ξ_T for the row partition)
  count_t crossing = 0;     // Ξ_LR (or Ξ_TB)
  count_t both_right = 0;   // Ξ_R  (or Ξ_B)
  [[nodiscard]] count_t total() const noexcept {
    return both_left + crossing + both_right;
  }
};
[[nodiscard]] PartitionCounts butterflies_col_partition(const DenseMatrix& a,
                                                        vidx_t split);

/// Eq. (12): same three categories under a row partition A -> (A_T / A_B).
[[nodiscard]] PartitionCounts butterflies_row_partition(const DenseMatrix& a,
                                                        vidx_t split);

/// Eq. (19): s = ¼·DIAG(AAᵀAAᵀ − AAᵀ∘AAᵀ − J·AAᵀ + AAᵀ), the number of
/// butterflies each V1 vertex participates in. Returned as an m-vector.
[[nodiscard]] std::vector<count_t> tip_vector_spec(const DenseMatrix& a);

/// Butterflies each V2 vertex participates in (the symmetric form of
/// Eq. (19) applied to Aᵀ).
[[nodiscard]] std::vector<count_t> tip_vector_spec_v2(const DenseMatrix& a);

/// Eq. (25): S_w = (AAᵀA − diag(AAᵀ)·1ᵀ − 1·diag(AᵀA)ᵀ + J) ∘ A, the
/// per-edge butterfly support matrix (m x n; zero where A is zero).
[[nodiscard]] DenseMatrix wing_support_spec(const DenseMatrix& a);

}  // namespace bfc::dense
