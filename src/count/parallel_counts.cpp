#include "chk/checked_math.hpp"
#include "count/parallel_counts.hpp"

#include "util/parallel.hpp"
#include "chk/tsan_fence.hpp"

namespace bfc::count {
namespace {

/// Parallel per-line butterfly counts over the rows of `lines` (transpose
/// in `lines_t`): the same expansion as count/per_vertex.cpp with the outer
/// loop distributed.
std::vector<count_t> per_line_parallel(const sparse::CsrPattern& lines,
                                       const sparse::CsrPattern& lines_t,
                                       int threads) {
  const vidx_t n = lines.rows();
  std::vector<count_t> out(static_cast<std::size_t>(n), 0);
  ThreadCountGuard guard(threads);
  chk::TsanOmpFence fence;

#pragma omp parallel
  {
    std::vector<count_t> acc(static_cast<std::size_t>(n), 0);
    std::vector<vidx_t> touched;
#pragma omp for schedule(dynamic, 64)
    for (vidx_t i = 0; i < n; ++i) {
      touched.clear();
      for (const vidx_t k : lines.row(i)) {
        for (const vidx_t j : lines_t.row(k)) {
          if (j == i) continue;
          if (acc[static_cast<std::size_t>(j)] == 0) touched.push_back(j);
          ++acc[static_cast<std::size_t>(j)];
        }
      }
      count_t total = 0;
      for (const vidx_t j : touched) {
        total = chk::checked_add(
            total, chk::checked_choose2(acc[static_cast<std::size_t>(j)]));
        acc[static_cast<std::size_t>(j)] = 0;
      }
      out[static_cast<std::size_t>(i)] = total;
    }
    fence.thread_done();
  }
  fence.join();
  return out;
}

}  // namespace

count_t wedge_reference_parallel(const graph::BipartiteGraph& g,
                                 int threads) {
  require(threads >= 1, "wedge_reference_parallel: threads must be >= 1");
  // Expand from the side with the cheaper wedge sum, as in the sequential
  // reference; only pairs j > i are charged, so halve nothing.
  count_t cost_v1_side = 0, cost_v2_side = 0;
  for (vidx_t v = 0; v < g.n2(); ++v) {
    const count_t d = g.csc().row_degree(v);
    cost_v1_side = chk::checked_add(cost_v1_side, chk::checked_mul(d, d));
  }
  for (vidx_t u = 0; u < g.n1(); ++u) {
    const count_t d = g.csr().row_degree(u);
    cost_v2_side += d * d;
  }
  const sparse::CsrPattern& lines =
      cost_v1_side <= cost_v2_side ? g.csr() : g.csc();
  const sparse::CsrPattern& lines_t =
      cost_v1_side <= cost_v2_side ? g.csc() : g.csr();

  const vidx_t n = lines.rows();
  count_t total = 0;
  ThreadCountGuard guard(threads);
  chk::TsanOmpFence fence;

#pragma omp parallel
  {
    std::vector<count_t> acc(static_cast<std::size_t>(n), 0);
    std::vector<vidx_t> touched;
#pragma omp for schedule(dynamic, 64) reduction(+ : total)
    for (vidx_t i = 0; i < n; ++i) {
      touched.clear();
      for (const vidx_t k : lines.row(i)) {
        for (const vidx_t j : lines_t.row(k)) {
          if (j <= i) continue;
          if (acc[static_cast<std::size_t>(j)] == 0) touched.push_back(j);
          ++acc[static_cast<std::size_t>(j)];
        }
      }
      for (const vidx_t j : touched) {
        total = chk::checked_add(
            total, chk::checked_choose2(acc[static_cast<std::size_t>(j)]));
        acc[static_cast<std::size_t>(j)] = 0;
      }
    }
    fence.thread_done();
  }
  fence.join();
  return total;
}

std::vector<count_t> butterflies_per_v1_parallel(
    const graph::BipartiteGraph& g, int threads) {
  require(threads >= 1, "butterflies_per_v1_parallel: threads must be >= 1");
  return per_line_parallel(g.csr(), g.csc(), threads);
}

std::vector<count_t> butterflies_per_v2_parallel(
    const graph::BipartiteGraph& g, int threads) {
  require(threads >= 1, "butterflies_per_v2_parallel: threads must be >= 1");
  return per_line_parallel(g.csc(), g.csr(), threads);
}

std::vector<count_t> support_per_edge_parallel(const graph::BipartiteGraph& g,
                                               int threads) {
  require(threads >= 1, "support_per_edge_parallel: threads must be >= 1");
  const auto& a = g.csr();
  const auto& at = g.csc();
  std::vector<count_t> support(static_cast<std::size_t>(a.nnz()), 0);
  ThreadCountGuard guard(threads);
  chk::TsanOmpFence fence;

#pragma omp parallel
  {
    std::vector<count_t> acc(static_cast<std::size_t>(a.rows()), 0);
    std::vector<vidx_t> touched;
#pragma omp for schedule(dynamic, 32)
    for (vidx_t u = 0; u < a.rows(); ++u) {
      touched.clear();
      for (const vidx_t k : a.row(u)) {
        for (const vidx_t w : at.row(k)) {
          if (acc[static_cast<std::size_t>(w)] == 0) touched.push_back(w);
          ++acc[static_cast<std::size_t>(w)];
        }
      }
      const count_t deg_u = a.row_degree(u);
      offset_t edge_id = a.row_ptr()[static_cast<std::size_t>(u)];
      for (const vidx_t v : a.row(u)) {
        count_t wedge_sum = 0;
        for (const vidx_t w : at.row(v))
          wedge_sum =
              chk::checked_add(wedge_sum, acc[static_cast<std::size_t>(w)]);
        support[static_cast<std::size_t>(edge_id)] =
            wedge_sum - deg_u - at.row_degree(v) + 1;
        ++edge_id;
      }
      for (const vidx_t w : touched) acc[static_cast<std::size_t>(w)] = 0;
    }
    fence.thread_done();
  }
  fence.join();
  return support;
}

}  // namespace bfc::count
