#include <algorithm>
#include <numeric>

#include "count/baselines.hpp"
#include "chk/checked_math.hpp"

namespace bfc::count {
namespace {

// Unified-vertex-set view: V1 vertices keep their ids, V2 vertex v becomes
// n1 + v. Neighbour spans come from the matching orientation.
struct Unified {
  const graph::BipartiteGraph& g;

  [[nodiscard]] vidx_t size() const { return g.n1() + g.n2(); }

  [[nodiscard]] std::span<const vidx_t> neighbors(vidx_t x,
                                                  std::vector<vidx_t>& tmp) const {
    // Neighbour ids are returned in unified numbering; V1 rows need the
    // n1 offset applied, so they go through the scratch buffer.
    if (x < g.n1()) {
      const auto row = g.csr().row(x);
      tmp.assign(row.begin(), row.end());
      for (vidx_t& v : tmp) v += g.n1();
      return tmp;
    }
    return g.csc().row(x - g.n1());
  }

  [[nodiscard]] offset_t degree(vidx_t x) const {
    return x < g.n1() ? g.csr().row_degree(x)
                      : g.csc().row_degree(x - g.n1());
  }
};

}  // namespace

count_t vertex_priority(const graph::BipartiteGraph& g) {
  const Unified u{g};
  const vidx_t n = u.size();

  // rank[x] = position in (degree desc, id asc) order; lower rank = higher
  // priority. Each butterfly is counted exactly once, at its
  // highest-priority vertex.
  std::vector<vidx_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](vidx_t a, vidx_t b) {
    const offset_t da = u.degree(a);
    const offset_t db = u.degree(b);
    return da != db ? da > db : a < b;
  });
  std::vector<vidx_t> rank(static_cast<std::size_t>(n));
  for (vidx_t i = 0; i < n; ++i)
    rank[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] = i;

  std::vector<count_t> acc(static_cast<std::size_t>(n), 0);
  std::vector<vidx_t> touched;
  std::vector<vidx_t> tmp_x, tmp_w;
  count_t total = 0;

  for (vidx_t x = 0; x < n; ++x) {
    touched.clear();
    const vidx_t rx = rank[static_cast<std::size_t>(x)];
    for (const vidx_t w : u.neighbors(x, tmp_x)) {
      if (rank[static_cast<std::size_t>(w)] <= rx) continue;  // need p(w) < p(x)
      for (const vidx_t y : u.neighbors(w, tmp_w)) {
        if (y == x) continue;
        if (rank[static_cast<std::size_t>(y)] <= rx) continue;
        if (acc[static_cast<std::size_t>(y)] == 0) touched.push_back(y);
        ++acc[static_cast<std::size_t>(y)];
      }
    }
    for (const vidx_t y : touched) {
      total = chk::checked_add(total,
                               chk::checked_choose2(acc[static_cast<std::size_t>(y)]));
      acc[static_cast<std::size_t>(y)] = 0;
    }
  }
  return total;
}

}  // namespace bfc::count
